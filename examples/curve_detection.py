#!/usr/bin/env python
"""Curve detection by DP — the vision workload the paper cites (ref. [9]).

Clarke & Dyer built a systolic array for curve and line detection
formulated as DP; this example reproduces the formulation: a bright,
roughly-vertical curve is hidden in a noisy synthetic image, image rows
become stages, column positions become states, and the DP balances
following brightness against bending the track.  The recovered track is
overlaid on an ASCII rendering of the image, and the same instance runs
on the Fig. 3 pipelined array after virtual-terminal framing.

Run:  python examples/curve_detection.py
"""

from __future__ import annotations

import numpy as np

from repro.dp import solve_backward
from repro.graphs import add_virtual_terminals, curve_tracking_problem
from repro.systolic import PipelinedMatrixStringArray

SHADES = " .:-=+*#%@"


def render(image: np.ndarray, track: list[int]) -> str:
    lo, hi = image.min(), image.max()
    rows = []
    for r in range(image.shape[0]):
        cells = []
        for c in range(image.shape[1]):
            if c == track[r]:
                cells.append("O")
            else:
                level = int((image[r, c] - lo) / (hi - lo) * (len(SHADES) - 1))
                cells.append(SHADES[level])
        rows.append("".join(cells))
    return "\n".join(rows)


def main() -> None:
    rng = np.random.default_rng(42)
    rows, cols = 16, 24
    graph = curve_tracking_problem(rng, rows, cols, smoothness=0.7, noise=0.15)

    sol = solve_backward(graph)
    track = list(sol.path.nodes)
    print(f"Recovered track (cost {sol.optimum:.3f}); 'O' marks the DP path:\n")

    # Rebuild the intensity field from the cost matrices for display:
    # cost(c -> c') = smoothness*|c - c'| - intensity[r+1, c'], so row
    # r+1's intensity is recoverable from the c = c' diagonal.
    image = np.zeros((rows, cols))
    for r in range(rows - 1):
        image[r + 1] = -np.diag(graph.costs[r])
    image[0] = image[1]
    print(render(image, track))

    jumps = [abs(a - b) for a, b in zip(track, track[1:])]
    print(f"\nTrack smoothness: max column jump {max(jumps)} (bend cost keeps it small)")

    framed = add_virtual_terminals(graph)
    res = PipelinedMatrixStringArray().run_graph(framed)
    assert np.isclose(float(res.value), solve_backward(framed).optimum)
    print(
        f"Fig. 3 array (after virtual-terminal framing): optimum "
        f"{float(res.value):.3f} in {res.report.iterations} iterations on "
        f"{res.report.num_pes} PEs"
    )


if __name__ == "__main__":
    main()
