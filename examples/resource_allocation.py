#!/usr/bin/env python
"""Monadic-nonserial DP: staffing with sliding-window interactions (§6.1).

A service schedules staffing levels ``V_k`` for N consecutive shifts.
Costs couple *three* consecutive shifts (handover + fatigue effects), so
the objective is monadic-nonserial:

    min Σ_k g_k(V_k, V_{k+1}, V_{k+2})

This script solves it three ways, per Section 6.1 of the paper:

1. direct variable elimination (eqs. 34-39), with the step count
   checked against eq. (40);
2. the grouping transform (eq. 41): composite variables
   ``V'_k = (V_k, V_{k+1})`` turn the problem monadic-serial, solvable
   on the Section-3 machinery;
3. the one-call dispatcher.

Run:  python examples/resource_allocation.py
"""

from __future__ import annotations

import numpy as np

from repro import solve
from repro.dp import (
    NonserialObjective,
    eliminate,
    eq40_step_count,
    group_variables_to_serial,
    solve_backward,
)


def build_problem(n_shifts: int, max_staff: int) -> NonserialObjective:
    """Staffing objective over three-shift windows."""
    demand = 2.0 + 1.5 * np.sin(np.arange(n_shifts) * 0.9)

    def window_cost(k: int):
        def g(a, b, c):
            under = np.maximum(demand[k] - a, 0) ** 2  # unmet demand
            wage = 1.0 * a + 1.0 * b + 1.0 * c
            churn = 0.8 * np.abs(a - b) + 0.8 * np.abs(b - c)  # handovers
            fatigue = 0.3 * np.maximum(a + b + c - 3 * demand[k], 0)
            return under + 0.2 * wage + churn + fatigue

        return g

    domains = {f"V{k + 1}": np.arange(max_staff + 1, dtype=float) for k in range(n_shifts)}
    terms = tuple(
        ((f"V{k + 1}", f"V{k + 2}", f"V{k + 3}"), window_cost(k))
        for k in range(n_shifts - 2)
    )
    return NonserialObjective(domains=domains, terms=terms)


def main() -> None:
    n_shifts, max_staff = 8, 4
    obj = build_problem(n_shifts, max_staff)
    sizes = [obj.domains[v].size for v in obj.variables]
    print(f"Staffing {n_shifts} shifts, {max_staff + 1} levels each; "
          f"objective couples 3-shift windows (monadic-nonserial)\n")

    res = eliminate(obj)
    print(f"Variable elimination: optimum = {res.optimum:.3f}")
    print("  staffing plan:", {v: int(obj.domains[v][i]) for v, i in sorted(res.assignment.items())})
    print(f"  steps: {res.total_steps} (eq. 40 predicts {eq40_step_count(sizes)}), "
          f"peak table: {res.max_table_size}\n")
    assert res.total_steps == eq40_step_count(sizes)

    graph, states = group_variables_to_serial(obj)
    serial = solve_backward(graph)
    print(f"Grouping transform (eq. 41): composite stages {graph.stage_sizes}")
    print(f"  serial-sweep optimum = {serial.optimum:.3f}")
    assert np.isclose(serial.optimum, res.optimum)

    report = solve(obj)
    print(f"\nsolve() dispatch: {report.method}, optimum {report.optimum:.3f}, "
          f"validated={report.validated}")
    assert np.isclose(report.optimum, res.optimum)
    print("\nAll three routes agree.")


if __name__ == "__main__":
    main()
