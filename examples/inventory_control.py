#!/usr/bin/env python
"""Inventory control on the feedback array, with a space-time diagram.

Section 3.2 of the paper notes the matrix-string machinery "can be
extended to many practical sequentially controlled systems, such as
Kalman filtering, inventory systems, and multistage production
processes".  This example runs the inventory workload on the Fig. 5
feedback array, prints the restocking policy recovered from the path
registers, and renders the array's space-time diagram — the same view
the paper's Figure 5(a) schedule table gives — from the recorded trace.

Run:  python examples/inventory_control.py
"""

from __future__ import annotations

import numpy as np

from repro.dp import solve_node_value
from repro.graphs import inventory_problem
from repro.search import branch_and_bound
from repro.systolic import FeedbackSystolicArray, render_spacetime


def main() -> None:
    rng = np.random.default_rng(11)
    periods, max_stock = 6, 5
    problem = inventory_problem(rng, periods, max_stock)
    print(f"Inventory over {periods} periods, stock levels 0..{max_stock}\n")

    res = FeedbackSystolicArray().run(problem, record_trace=True)
    print(f"Optimal total cost: {res.optimum:.2f}")
    print("Stock policy (end-of-period level):")
    for k, node in enumerate(res.path.nodes):
        print(f"  period {k + 1}: keep {int(problem.values[k][node])} units")

    ref = solve_node_value(problem)
    assert np.isclose(res.optimum, ref.optimum)

    m = problem.stage_sizes[0]
    print(
        f"\nSpace-time diagram ({m} PEs x {res.report.iterations} iterations; "
        f"'xk,j' = stage-k value j in flight, '-' = stage-1 transit, "
        f"'F0' = final comparison sweep):\n"
    )
    print(render_spacetime(res.trace, m, res.report.iterations))

    # The same problem as a search: DP is B&B with dominance.
    g = problem.to_graph()
    full = branch_and_bound(g, dominance=False, use_bound=False)
    dom = branch_and_bound(g)
    print(
        f"\nSearch view: plain OR-tree search expands {full.nodes_expanded} "
        f"partial plans; with the dominance test (= the Principle of "
        f"Optimality) only {dom.nodes_expanded}."
    )
    assert np.isclose(dom.optimum, res.optimum)


if __name__ == "__main__":
    main()
