#!/usr/bin/env python
"""Traffic-signal coordination on the Fig. 5 feedback systolic array.

The paper motivates serial DP with traffic control (Section 2.2): each
intersection ``i`` along an arterial road picks a green-onset time
``X_i`` from a set of quantized candidates; the cost between adjacent
intersections is the timing mismatch seen by a platoon of vehicles.
The problem is monadic-serial in node-value form — exactly the shape
the Fig. 5 array was designed for: only the candidate times enter the
array (``N·m`` words), edge costs are computed on the fly by each PE's
F unit, and the optimal timing plan is traced from the path registers.

Run:  python examples/traffic_control.py
"""

from __future__ import annotations

import numpy as np

from repro import solve
from repro.dp import solve_node_value
from repro.graphs import traffic_light_problem
from repro.systolic import FeedbackSystolicArray, feedback_pu


def main() -> None:
    rng = np.random.default_rng(2026)
    n_intersections, n_timings = 10, 8
    problem = traffic_light_problem(rng, n_intersections, n_timings, cycle=60.0)

    print(f"Arterial with {n_intersections} intersections, "
          f"{n_timings} candidate green-onset times each (60 s cycle)\n")

    array = FeedbackSystolicArray()
    result = array.run(problem)

    print(f"Optimal total offset penalty: {result.optimum:.2f} s")
    print("Timing plan (intersection -> green onset):")
    for k, node in enumerate(result.path.nodes):
        t = problem.values[k][node]
        print(f"  intersection {k + 1:2d}: {t:6.2f} s  (candidate #{node})")

    rep = result.report
    print(
        f"\nArray schedule: {rep.num_pes} PEs, {rep.iterations} iterations "
        f"(= (N+1)*m = {(n_intersections + 1) * n_timings}), "
        f"PU = {rep.processor_utilization:.3f} "
        f"(paper formula: {feedback_pu(n_intersections, n_timings):.3f})"
    )
    node_words, edge_words = problem.input_bandwidth()
    print(
        f"Input traffic: {rep.input_words} node values "
        f"(edge-cost feeding would need {edge_words} words — "
        f"{edge_words / node_words:.1f}x more)"
    )

    # Cross-check against the sequential oracle and the dispatcher.
    seq = solve_node_value(problem)
    assert np.isclose(result.optimum, seq.optimum)
    report = solve(problem)
    assert report.method == "fig5-feedback-array"
    assert np.isclose(report.optimum, result.optimum)
    print("\nValidated against the sequential sweep and solve() dispatch.")


if __name__ == "__main__":
    main()
