#!/usr/bin/env python
"""Optimal matrix-chain ordering: the polyadic-nonserial showcase (§6.2).

The secondary optimization problem: pick the multiplication order of
``M₁ × … × M_N`` minimizing scalar multiplications (eq. 6).  This script

1. solves it with the sequential DP,
2. runs both Section-6.2 processor mappings — broadcast buses
   (``T_d(N) = N`` steps, Prop. 2) and the serialized planar systolic
   design (``T_p(N) = 2N`` steps, Prop. 3),
3. shows the Figure-8 serialization explicitly (AND/OR graph → dummy
   nodes → planar mapping), and
4. executes the optimal order on real NumPy matrices to show the win
   over naive left-to-right evaluation.

Run:  python examples/matrix_chain_ordering.py
"""

from __future__ import annotations

import numpy as np

from repro import MatrixChainProblem, solve
from repro.andor import matrix_chain_andor, serialize, map_to_array
from repro.dp import multiply_in_order, solve_matrix_chain
from repro.systolic import BroadcastParenthesizer, SystolicParenthesizer


def render(expr) -> str:
    if isinstance(expr, int):
        return f"M{expr}"
    left, right = expr
    return f"({render(left)}{render(right)})"


def main() -> None:
    dims = [30, 35, 15, 5, 10, 20, 25]  # the classic CLRS instance
    n = len(dims) - 1
    print(f"Chain of {n} matrices, dimensions {dims}\n")

    order = solve_matrix_chain(dims)
    print(f"Sequential DP (eq. 6): cost = {order.cost} scalar multiplications")
    print(f"  optimal order: {render(order.expression)}\n")

    b = BroadcastParenthesizer().run(dims)
    s = SystolicParenthesizer().run(dims)
    print(f"Broadcast mapping:  {b.steps} steps on {b.num_processors} processors "
          f"(Prop. 2: T_d(N) = N = {n})")
    print(f"Systolic mapping:   {s.steps} steps "
          f"(Prop. 3: T_p(N) = 2N = {2 * n})")
    assert b.order.cost == s.order.cost == order.cost

    mc = matrix_chain_andor(dims)
    ser = serialize(mc.graph)
    mapping = map_to_array(ser.graph)
    print(
        f"\nFigure-8 serialization: {len(mc.graph)} AND/OR nodes + "
        f"{ser.dummies_added} dummy pass-throughs -> planar array with "
        f"{mapping.num_levels} levels (widest level: {mapping.max_width} PEs)"
    )

    rng = np.random.default_rng(7)
    mats = [rng.uniform(-1, 1, (dims[i], dims[i + 1])) for i in range(n)]
    _, best_cost = multiply_in_order(mats, order.expression)
    naive_expr = 1
    for i in range(2, n + 1):
        naive_expr = (naive_expr, i)
    _, naive_cost = multiply_in_order(mats, naive_expr)
    print(
        f"\nExecuting on real matrices: optimal order costs {best_cost} "
        f"scalar multiplications vs {naive_cost} naive left-to-right "
        f"({naive_cost / best_cost:.2f}x saved)"
    )

    report = solve(MatrixChainProblem(tuple(dims)))
    print(f"\nsolve() dispatch: {report.method}, optimum {report.optimum:.0f}, "
          f"validated={report.validated}")


if __name__ == "__main__":
    main()
