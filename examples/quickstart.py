#!/usr/bin/env python
"""Quickstart: solve a multistage shortest-path problem every way the paper can.

Builds the paper's Figure 1(a) example graph (one source, three interior
stages of three vertices, one sink), classifies it, and solves it:

* sequentially with the backward functional equation (eq. 1),
* on the Fig. 3 pipelined systolic array,
* on the Fig. 4 broadcast systolic array,
* through the one-call Table-1 dispatcher ``repro.solve``.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import classify, recommend, solve
from repro.dp import solve_backward
from repro.graphs import fig1a_graph
from repro.systolic import BroadcastMatrixStringArray, PipelinedMatrixStringArray


def main() -> None:
    graph = fig1a_graph()
    print("Multistage graph (Figure 1(a) of the paper)")
    print(f"  stages: {graph.stage_sizes}, edges: {graph.num_edges()}")
    print(f"  class:  {classify(graph).name}")
    rec = recommend(graph)
    print(f"  Table-1 guidance: {rec.method}  [{rec.architecture}]\n")

    seq = solve_backward(graph)
    print(f"Sequential sweep (eq. 1):  optimum = {seq.optimum}")
    print(f"  optimal path (per-stage vertex indices): {seq.path.nodes}")
    print(f"  operations: {seq.op_count}\n")

    pipe = PipelinedMatrixStringArray().run_graph(graph)
    print(f"Fig. 3 pipelined array:    optimum = {float(pipe.value)}")
    print(
        f"  {pipe.report.num_pes} PEs, {pipe.report.iterations} iterations "
        f"({pipe.report.wall_ticks} wall ticks with fill/drain), "
        f"PU = {pipe.report.processor_utilization:.3f}"
    )

    bcast = BroadcastMatrixStringArray().run_graph(graph)
    print(f"Fig. 4 broadcast array:    optimum = {float(bcast.value)}")
    print(
        f"  {bcast.report.num_pes} PEs, {bcast.report.iterations} iterations, "
        f"{bcast.report.broadcast_words} bus words\n"
    )

    report = solve(graph)
    print(f"Dispatcher solve():        optimum = {report.optimum}")
    print(f"  routed to: {report.method} (validated={report.validated})")

    assert np.isclose(seq.optimum, float(pipe.value))
    assert np.isclose(seq.optimum, float(bcast.value))
    assert np.isclose(seq.optimum, report.optimum)
    print("\nAll four routes agree.")


if __name__ == "__main__":
    main()
