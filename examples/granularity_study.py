#!/usr/bin/env python
"""Granularity study: how many systolic arrays should multiply a chain?

Regenerates the Section-4 analysis interactively:

* the Figure-6 sweep — T and K·T² against K for N = 4096 (eq. 29), with
  an ASCII rendering of the K·T² valley;
* the Proposition-1 utilization regimes (PU limits by c∞);
* a live run: a 64-matrix min-plus chain actually multiplied on
  K ∈ {1, 4, 8, 16} simulated arrays, validated against the sequential
  product.

Run:  python examples/granularity_study.py
"""

from __future__ import annotations

import math

import numpy as np

from repro.dnc import (
    argmin_kt2,
    asymptotic_pu,
    asymptotic_pu_limit,
    kt2,
    optimal_granularity,
    schedule_time,
    simulate_chain_product,
)
from repro.semiring import MIN_PLUS, chain_product


def ascii_curve(n: int, ks: list[int], width: int = 50) -> None:
    values = [kt2(n, k) for k in ks]
    lo, hi = min(values), max(values)
    for k, v in zip(ks, values):
        bar = int((v - lo) / (hi - lo) * width) if hi > lo else 0
        print(f"  K={k:5d}  KT^2={v:10.0f}  |{'#' * bar}")


def main() -> None:
    n = 4096
    print(f"=== Figure 6: K*T^2 for N = {n} (eq. 29) ===")
    ks = [32, 64, 128, 256, 341, 399, 431, 465, 512, 768, 1024, 2048, 4096]
    ascii_curve(n, ks)
    best_k, best_v = argmin_kt2(n, k_min=2, k_max=n)
    print(f"\n  exact argmin: K = {best_k} (KT^2 = {best_v:.0f})")
    print(f"  N/log2(N) rule of thumb: {optimal_granularity(n):.0f}")
    print(f"  paper's quoted minima: 431 (KT^2 = {kt2(n, 431):.0f}), "
          f"465 (KT^2 = {kt2(n, 465):.0f}) — same valley\n")

    print("=== Proposition 1: asymptotic PU by regime ===")
    regimes = [
        ("k = sqrt(N)", lambda x: int(math.sqrt(x)), 0.0),
        ("k = N/log2N", lambda x: max(1, int(x / math.log2(x))), 1.0),
        ("k = N", lambda x: x, float("inf")),
    ]
    ns = [2**i for i in range(10, 23, 4)]
    for name, fn, c in regimes:
        pts = asymptotic_pu(fn, ns)
        series = ", ".join(f"{pu:.3f}" for _n, pu in pts)
        print(f"  {name:14s}: PU = [{series}] -> limit {asymptotic_pu_limit(c):.3f}")

    print("\n=== Live run: 64-matrix min-plus chain on K arrays ===")
    rng = np.random.default_rng(1)
    mats = [rng.uniform(0, 9, (8, 8)) for _ in range(64)]
    ref = chain_product(MIN_PLUS, mats)
    for k in (1, 4, 8, 16):
        res = simulate_chain_product(64, k, matrices=mats)
        assert np.allclose(res.product, ref)
        st = schedule_time(64, k)
        print(
            f"  K={k:2d}: {res.rounds} rounds "
            f"(eq. 29: {st.total}), PU = {res.processor_utilization:.3f}, "
            f"KT^2 = {res.kt2}"
        )
    print("\nAll schedules produced the exact sequential product.")


if __name__ == "__main__":
    main()
