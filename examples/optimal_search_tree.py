#!/usr/bin/env python
"""Optimal binary search trees on the generalized triangular arrays.

Section 2.1 of the paper names OBST alongside matrix-chain ordering as a
polyadic formulation; both share the triangular recurrence shape, so the
Section-6.2 processor organizations solve both.  This example builds a
dictionary with skewed lookup frequencies, finds the optimal BST, runs
the same problem on the broadcast and serialized array mappings
(schedules ``n + 1`` and ``≈ 2n`` steps), and draws the tree.

Run:  python examples/optimal_search_tree.py
"""

from __future__ import annotations

import numpy as np

from repro.dp import expected_depth_cost, solve_obst
from repro.systolic import ObstSpec, TriangularArray, obst_t_d


WORDS = ["ant", "bee", "cat", "dog", "elk", "fox", "gnu", "hen"]
# Zipf-ish hit frequencies plus miss weights between/outside words.
P = [0.22, 0.05, 0.14, 0.03, 0.11, 0.02, 0.08, 0.04]
Q = [0.05, 0.04, 0.03, 0.04, 0.03, 0.04, 0.03, 0.04, 0.01]


def draw(tree, depth: int = 0) -> None:
    if tree is None:
        return
    r, left, right = tree
    draw(right, depth + 1)
    print("        " + "      " * depth + WORDS[r - 1])
    draw(left, depth + 1)


def main() -> None:
    n = len(WORDS)
    print(f"Dictionary of {n} keys with skewed access frequencies\n")

    sol = solve_obst(P, Q)
    print(f"Sequential DP: expected comparisons = {sol.cost:.4f}")
    print(f"  optimal root: {WORDS[sol.root[(1, n)] - 1]!r}\n")
    print("Optimal tree (rotated 90°, root at the left):")
    draw(sol.tree)

    # A balanced tree for contrast.
    def balanced(i: int, j: int):
        if j < i:
            return None
        mid = (i + j + 1) // 2
        return (mid, balanced(i, mid - 1), balanced(mid + 1, j))

    bal = balanced(1, n)
    bal_cost = expected_depth_cost(P, Q, bal)
    print(f"\nBalanced tree would cost {bal_cost:.4f} "
          f"({bal_cost / sol.cost:.2f}x the optimum)")

    spec = ObstSpec(P, Q)
    b = TriangularArray("broadcast").run(spec)
    s = TriangularArray("systolic").run(spec)
    print(
        f"\nBroadcast array: cost {b.value:.4f} in {b.steps} steps "
        f"(law: n + 1 = {obst_t_d(n)}) on {b.num_processors} processors"
    )
    print(f"Serialized systolic array: cost {s.value:.4f} in {s.steps} steps "
          f"(~2n = {2 * n})")
    assert np.isclose(b.value, sol.cost) and np.isclose(s.value, sol.cost)
    print("\nBoth array mappings reproduce the DP optimum on schedule.")


if __name__ == "__main__":
    main()
