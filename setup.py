"""Setup shim for environments without the ``wheel`` package.

The offline evaluation environment lacks ``wheel``, so PEP 660 editable
installs cannot build; this shim lets ``pip install -e .`` take the
legacy ``setup.py develop`` path.  All metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
