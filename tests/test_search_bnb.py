"""Unit tests for branch-and-bound with dominance (DP-as-B&B)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dp import solve_backward
from repro.graphs import MultistageGraph, fig1a_graph, random_multistage, uniform_multistage
from repro.search import branch_and_bound
from repro.semiring import MAX_PLUS


class TestCorrectness:
    def test_fig1a(self):
        res = branch_and_bound(fig1a_graph())
        assert res.optimum == 6.0
        assert np.isclose(fig1a_graph().path_cost(res.path.nodes), 6.0)

    @pytest.mark.parametrize("dominance", [True, False])
    @pytest.mark.parametrize("use_bound", [True, False])
    def test_all_switch_combos_optimal(self, rng, dominance, use_bound):
        g = uniform_multistage(rng, 5, 3)
        res = branch_and_bound(g, dominance=dominance, use_bound=use_bound)
        assert np.isclose(res.optimum, solve_backward(g).optimum)
        assert np.isclose(g.path_cost(res.path.nodes), res.optimum)

    def test_missing_edges_skipped(self, rng):
        g = random_multistage(rng, [2, 3, 3, 2], edge_probability=0.5)
        res = branch_and_bound(g)
        assert np.isclose(res.optimum, solve_backward(g).optimum)

    def test_disconnected_graph_rejected(self):
        costs = (np.array([[np.inf]]), np.array([[np.inf]]))
        g = MultistageGraph(costs=costs)
        with pytest.raises(ValueError, match="no finite"):
            branch_and_bound(g)

    def test_max_plus_rejected(self, rng):
        costs = tuple(rng.uniform(0, 1, (2, 2)) for _ in range(2))
        g = MultistageGraph(costs=costs, semiring=MAX_PLUS)
        with pytest.raises(ValueError, match="min-plus"):
            branch_and_bound(g)


class TestDominanceIsDP:
    def test_dominance_collapses_expansion(self, rng):
        # Without dominance the OR-tree is exponential; with it, the
        # expansion count is bounded by the number of DP states.
        g = uniform_multistage(rng, 7, 3)
        full = branch_and_bound(g, dominance=False, use_bound=False)
        dom = branch_and_bound(g, dominance=True, use_bound=False)
        assert dom.nodes_expanded < full.nodes_expanded
        n_states = sum(g.stage_sizes[:-1])
        assert dom.nodes_expanded <= n_states

    def test_exponential_without_dominance(self, rng):
        # Every full path's prefix tree is expanded: m^(k) growth.
        g = uniform_multistage(rng, 6, 2)
        full = branch_and_bound(g, dominance=False, use_bound=False)
        expected = sum(2**k for k in range(1, 6))  # nodes of the 2-ary tree
        assert full.nodes_expanded == pytest.approx(expected, abs=2)

    def test_bound_prunes_on_top_of_dominance(self, rng):
        g = uniform_multistage(rng, 10, 5)
        dom = branch_and_bound(g, dominance=True, use_bound=False)
        both = branch_and_bound(g, dominance=True, use_bound=True)
        assert both.nodes_expanded <= dom.nodes_expanded
        assert np.isclose(both.optimum, dom.optimum)

    def test_accounting_fields(self, rng):
        g = uniform_multistage(rng, 6, 4)
        res = branch_and_bound(g)
        assert res.total_pruned == res.pruned_by_dominance + res.pruned_by_bound
        assert res.nodes_generated >= res.nodes_expanded


@given(
    n_stages=st.integers(min_value=2, max_value=6),
    m=st.integers(min_value=1, max_value=4),
    seed=st.integers(min_value=0, max_value=200),
)
@settings(max_examples=30, deadline=None)
def test_property_bnb_equals_dp(n_stages, m, seed):
    rng = np.random.default_rng(seed)
    g = uniform_multistage(rng, n_stages, m)
    res = branch_and_bound(g)
    assert np.isclose(res.optimum, solve_backward(g).optimum)
