"""Unit tests for the general bandwidth-w grouping transform (Section 6.1)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dp import (
    banded_objective,
    banded_objective_w,
    brute_force_minimum,
    eliminate,
    group_variables_to_serial,
    group_variables_to_serial_w,
    solve_backward,
)


class TestBandedObjectiveW:
    def test_bandwidth_3_matches_original_structure(self, rng):
        obj = banded_objective_w(rng, [2, 3, 2, 3], 3)
        assert [tvars for tvars, _ in obj.terms] == [
            ("V1", "V2", "V3"),
            ("V2", "V3", "V4"),
        ]

    def test_bandwidth_validation(self, rng):
        with pytest.raises(ValueError):
            banded_objective_w(rng, [2, 2], 1)
        with pytest.raises(ValueError):
            banded_objective_w(rng, [2, 2], 4)

    def test_elimination_optimal(self, rng):
        obj = banded_objective_w(rng, [2, 3, 2, 3, 2], 4)
        res = eliminate(obj, joint_tail=3)
        ref, _ = brute_force_minimum(obj)
        assert np.isclose(res.optimum, ref)


class TestGroupingW:
    def test_matches_bandwidth3_transform(self, rng):
        obj = banded_objective(rng, [3, 2, 3, 2])
        g3, s3 = group_variables_to_serial(obj)
        gw, sw = group_variables_to_serial_w(obj, 3)
        assert g3.stage_sizes == gw.stage_sizes
        assert np.isclose(
            solve_backward(g3).optimum, solve_backward(gw).optimum
        )
        assert s3 == sw

    def test_bandwidth_4_equivalence(self, rng):
        obj = banded_objective_w(rng, [2, 3, 2, 3, 2], 4)
        g, states = group_variables_to_serial_w(obj, 4)
        direct = eliminate(obj, joint_tail=3)
        assert np.isclose(solve_backward(g).optimum, direct.optimum)
        # Composite domains are products of w-1 = 3 originals.
        assert g.stage_sizes == (2 * 3 * 2, 3 * 2 * 3, 2 * 3 * 2)
        assert len(states[0][0]) == 3

    def test_bandwidth_2_is_identity_chain(self, rng):
        obj = banded_objective_w(rng, [3, 4, 2], 2)
        g, states = group_variables_to_serial_w(obj, 2)
        assert g.stage_sizes == (3, 4, 2)  # composites = single originals
        ref = eliminate(obj, joint_tail=1)
        assert np.isclose(solve_backward(g).optimum, ref.optimum)

    def test_composite_path_decodes(self, rng):
        obj = banded_objective_w(rng, [2, 2, 3, 2, 2], 4)
        g, states = group_variables_to_serial_w(obj, 4)
        sol = solve_backward(g)
        assign = {}
        for stage, node in enumerate(sol.path.nodes):
            for d, idx in enumerate(states[stage][node]):
                assign[f"V{stage + d + 1}"] = idx
        assert np.isclose(obj.evaluate(assign), sol.optimum)

    def test_inconsistent_transitions_blocked(self, rng):
        obj = banded_objective_w(rng, [2, 2, 2, 2], 3)
        g, states = group_variables_to_serial_w(obj, 3)
        for a, row in enumerate(states[0]):
            for b, col in enumerate(states[1]):
                if row[1:] != col[:-1]:
                    assert np.isinf(g.costs[0][a, b])
                else:
                    assert np.isfinite(g.costs[0][a, b])

    def test_non_banded_rejected(self, rng):
        obj = banded_objective(rng, [2, 2, 2, 2])
        with pytest.raises(ValueError, match="bandwidth-4"):
            group_variables_to_serial_w(obj, 4)
        with pytest.raises(ValueError):
            group_variables_to_serial_w(obj, 1)


@given(
    seed=st.integers(min_value=0, max_value=300),
    w=st.integers(min_value=2, max_value=4),
    extra=st.integers(min_value=0, max_value=2),
)
@settings(max_examples=25, deadline=None)
def test_property_grouping_w_equals_elimination(seed, w, extra):
    rng = np.random.default_rng(seed)
    n = w + 1 + extra
    sizes = list(rng.integers(2, 4, size=n))
    obj = banded_objective_w(rng, sizes, w)
    g, _states = group_variables_to_serial_w(obj, w)
    direct = eliminate(obj, joint_tail=min(w - 1, n - 1) if w > 2 else 1)
    assert np.isclose(solve_backward(g).optimum, direct.optimum)
