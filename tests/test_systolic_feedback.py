"""Unit tests for the Fig. 5 feedback systolic array."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dp import solve_node_value
from repro.graphs import NodeValueProblem, fig1b_problem, traffic_light_problem
from repro.semiring import MAX_PLUS
from repro.systolic import FeedbackSystolicArray, SystolicError, feedback_pu


@pytest.fixture
def array():
    return FeedbackSystolicArray()


def random_problem(seed: int, n_stages: int, m: int) -> NodeValueProblem:
    rng = np.random.default_rng(seed)
    values = tuple(rng.uniform(0, 10, m) for _ in range(n_stages))
    return NodeValueProblem(values=values, edge_cost=lambda a, b: (a - b) ** 2 + 0.1 * a)


class TestCorrectness:
    def test_fig1b_example(self, array):
        p = fig1b_problem()
        res = array.run(p)
        ref = solve_node_value(p)
        assert np.isclose(res.optimum, ref.optimum)

    def test_fifteen_iterations_for_fig1b(self, array):
        # The paper: "the process is completed in 15 iterations".
        res = array.run(fig1b_problem())
        assert res.report.iterations == 15

    def test_final_stage_values_match_forward_sweep(self, array):
        p = fig1b_problem()
        res = array.run(p)
        ref = solve_node_value(p)
        assert np.allclose(res.final_stage_values, ref.stage_values[-1])

    def test_path_is_optimal(self, array, rng):
        p = traffic_light_problem(rng, 6, 4)
        res = array.run(p)
        g = p.to_graph()
        assert np.isclose(g.path_cost(res.path.nodes), res.optimum)
        assert np.isclose(res.optimum, solve_node_value(p).optimum)

    def test_random_instances(self, array):
        for seed in range(6):
            p = random_problem(seed, n_stages=5, m=4)
            res = array.run(p)
            assert np.isclose(res.optimum, solve_node_value(p).optimum)
            assert np.isclose(p.to_graph().path_cost(res.path.nodes), res.optimum)

    def test_two_stages_minimum(self, array):
        p = random_problem(1, n_stages=2, m=3)
        res = array.run(p)
        assert np.isclose(res.optimum, solve_node_value(p).optimum)

    def test_single_value_per_stage(self, array):
        p = random_problem(2, n_stages=4, m=1)
        res = array.run(p)
        assert np.isclose(res.optimum, solve_node_value(p).optimum)
        assert res.path.nodes == (0, 0, 0, 0)

    def test_max_plus_variant(self):
        arr = FeedbackSystolicArray(MAX_PLUS)
        rng = np.random.default_rng(0)
        values = tuple(rng.uniform(0, 10, 3) for _ in range(4))
        p = NodeValueProblem(
            values=values, edge_cost=lambda a, b: a + b, semiring=MAX_PLUS
        )
        res = arr.run(p)
        assert np.isclose(res.optimum, solve_node_value(p).optimum)


class TestSchedule:
    def test_iteration_count_formula(self, array):
        # (N + 1) * m iterations exactly.
        for n, m in [(3, 3), (5, 2), (4, 6), (7, 4)]:
            p = random_problem(n * m, n, m)
            res = array.run(p)
            assert res.report.iterations == (n + 1) * m

    def test_wall_equals_iterations(self, array):
        p = random_problem(3, 5, 3)
        res = array.run(p)
        assert res.report.wall_ticks == res.report.iterations

    def test_pu_matches_paper_formula(self, array):
        for n, m in [(4, 3), (8, 5)]:
            p = random_problem(n + m, n, m)
            res = array.run(p)
            assert res.report.processor_utilization == pytest.approx(
                feedback_pu(n, m)
            )

    def test_pu_approaches_one(self):
        assert feedback_pu(100, 8) > 0.97
        assert feedback_pu(4, 3) < 0.7

    def test_input_traffic_is_node_values_only(self, array):
        # The Section-3.2 bandwidth claim: N*m node values enter, not
        # (N-1)*m^2 edge costs.
        p = random_problem(5, 5, 4)
        res = array.run(p)
        assert res.report.input_words == 5 * 4
        node, edge = p.input_bandwidth()
        assert res.report.input_words == node < edge


class TestValidation:
    def test_nonuniform_rejected(self, array):
        p = NodeValueProblem(
            values=(np.array([1.0, 2.0]), np.array([1.0])),
            edge_cost=lambda a, b: a - b,
        )
        with pytest.raises(SystolicError, match="uniform"):
            array.run(p)

    def test_semiring_mismatch_rejected(self, array):
        p = NodeValueProblem(
            values=(np.array([1.0]), np.array([2.0])),
            edge_cost=lambda a, b: a + b,
            semiring=MAX_PLUS,
        )
        with pytest.raises(SystolicError, match="semiring"):
            array.run(p)

    def test_needs_argreduce(self):
        from repro.semiring import PLUS_TIMES

        with pytest.raises(SystolicError, match="arg-reduction"):
            FeedbackSystolicArray(PLUS_TIMES)


@given(
    n_stages=st.integers(min_value=2, max_value=7),
    m=st.integers(min_value=1, max_value=5),
    seed=st.integers(min_value=0, max_value=500),
)
@settings(max_examples=30, deadline=None)
def test_property_matches_sequential_with_valid_path(n_stages, m, seed):
    p = random_problem(seed, n_stages, m)
    res = FeedbackSystolicArray().run(p)
    ref = solve_node_value(p)
    assert np.isclose(res.optimum, ref.optimum)
    assert np.isclose(p.to_graph().path_cost(res.path.nodes), res.optimum)
    assert res.report.iterations == (n_stages + 1) * m
