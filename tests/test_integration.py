"""Integration tests: the same instance through every solving route.

The paper's central observation is that one DP problem admits many
formulations (folded OR-tree, AND-tree, folded AND/OR-tree, AND/OR
graph), each with its own architecture.  These tests push single
instances through *all* routes and require bit-identical optima.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import MatrixChainProblem, solve
from repro.andor import bottom_up, fold_multistage, matrix_chain_andor, serialize, map_to_array, ao_star
from repro.dnc import simulate_chain_product
from repro.dp import (
    solve_backward,
    solve_forward,
    solve_matrix_chain,
    solve_node_value,
    solve_polyadic,
)
from repro.graphs import single_source_sink, uniform_multistage
from repro.semiring import MIN_PLUS, chain_product, chain_product_tree
from repro.systolic import (
    BroadcastMatrixStringArray,
    BroadcastParenthesizer,
    FeedbackSystolicArray,
    PipelinedMatrixStringArray,
    SystolicParenthesizer,
)


class TestEveryRouteAgreesOnMultistage:
    def test_seven_routes_one_optimum(self, rng):
        # Uniform 5-stage graph: every formulation must coincide.
        g = uniform_multistage(rng, 5, 3)
        optimum = g.brute_force_optimum()[0]
        # 1-2: monadic sweeps.
        assert np.isclose(solve_backward(g).optimum, optimum)
        assert np.isclose(solve_forward(g).optimum, optimum)
        # 3: polyadic divide-and-conquer.
        assert np.isclose(solve_polyadic(g).optimum, optimum)
        # 4: direct chain products (both association orders).
        mats = g.as_matrices()
        assert np.isclose(chain_product(MIN_PLUS, mats).min(), optimum)
        assert np.isclose(chain_product_tree(MIN_PLUS, mats).min(), optimum)
        # 5: K-array scheduled product.
        sched = simulate_chain_product(len(mats), 2, matrices=mats)
        assert np.isclose(sched.product.min(), optimum)
        # 6: folded AND/OR tree (Fig. 7).
        fm = fold_multistage(g, p=2)
        vals = fm.graph.evaluate()
        root_min = min(
            vals[int(fm.root_or[u, v])] for u in range(3) for v in range(3)
        )
        assert np.isclose(root_min, optimum)
        # 7: AO* top-down search of the same graph.
        best_root = min(
            (int(fm.root_or[u, v]) for u in range(3) for v in range(3)),
            key=lambda nid: vals[nid],
        )
        assert np.isclose(ao_star(fm.graph, best_root).cost, optimum)

    def test_systolic_arrays_agree_with_all(self, rng):
        g = single_source_sink(rng, 4, 4)
        optimum = solve_backward(g).optimum
        assert np.isclose(
            float(PipelinedMatrixStringArray().run_graph(g).value), optimum
        )
        assert np.isclose(
            float(BroadcastMatrixStringArray().run_graph(g).value), optimum
        )


class TestEveryRouteAgreesOnMatrixChain:
    def test_five_routes_one_cost(self, rng):
        dims = list(rng.integers(1, 40, size=8))
        ref = solve_matrix_chain(dims).cost
        assert BroadcastParenthesizer().run(dims).order.cost == ref
        assert SystolicParenthesizer().run(dims).order.cost == ref
        mc = matrix_chain_andor(dims)
        assert bottom_up(mc.graph).values[mc.root] == ref
        assert ao_star(mc.graph, mc.root).cost == ref
        ser = serialize(mc.graph)
        assert map_to_array(ser.graph).values[ser.node_map[mc.root]] == ref


class TestNodeValueRoutes:
    def test_feedback_array_vs_materialized_graph_routes(self, rng):
        from repro.graphs import circuit_design_problem

        p = circuit_design_problem(rng, 5, 3)
        optimum = solve_node_value(p).optimum
        fb = FeedbackSystolicArray().run(p)
        assert np.isclose(fb.optimum, optimum)
        g = p.to_graph()
        assert np.isclose(solve_polyadic(g).optimum, optimum)
        assert np.isclose(g.brute_force_optimum()[0], optimum)


class TestDispatchEndToEnd:
    def test_dispatcher_covers_all_four_classes(self, rng):
        from repro.dp import banded_objective
        from repro.graphs import traffic_light_problem

        reports = [
            solve(traffic_light_problem(rng, 5, 4)),  # monadic-serial
            solve(uniform_multistage(rng, 40, 3)),  # polyadic-serial
            solve(banded_objective(rng, [3, 2, 3])),  # monadic-nonserial
            solve(MatrixChainProblem((5, 10, 3, 12, 5))),  # polyadic-nonserial
        ]
        classes = {r.dp_class for r in reports}
        assert len(classes) == 4
        assert all(r.validated for r in reports)


class TestCrossSemiringConsistency:
    def test_longest_path_via_negated_shortest(self, rng):
        from repro.graphs import MultistageGraph
        from repro.semiring import MAX_PLUS

        costs = tuple(rng.uniform(0, 5, (3, 3)) for _ in range(3))
        g_max = MultistageGraph(costs=costs, semiring=MAX_PLUS)
        g_min_neg = MultistageGraph(costs=tuple(-c for c in costs))
        assert np.isclose(
            solve_backward(g_max).optimum, -solve_backward(g_min_neg).optimum
        )
