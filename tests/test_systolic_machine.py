"""Unit tests for the shared SystolicMachine, its event bus, and the
backend dispatch helpers — the layer every array design now runs on."""

from __future__ import annotations

import pytest

from repro.systolic import (
    AUTO_VALIDATE_LIMIT,
    BackendMismatch,
    EventBus,
    RunReport,
    SystolicError,
    SystolicMachine,
    TraceEvent,
    TraceSink,
    normalize_backend,
    run_with_backend,
)


class TestMachineTicks:
    def test_tick_starts_at_one_and_advances(self):
        m = SystolicMachine("t")
        assert m.tick == 1
        m.end_tick()
        assert m.tick == 2
        assert m.stats.wall_ticks == 1

    def test_latch_does_not_advance(self):
        # advance=False models latch-only control actions (MOVE).
        m = SystolicMachine("t")
        m.add_pes(1)
        m.pes[0].reg("R", 0.0)
        m.pes[0]["R"].set(5.0)
        m.latch()
        assert m.pes[0]["R"].value == 5.0
        assert m.tick == 1
        assert m.stats.wall_ticks == 0

    def test_end_tick_latches_all_pes(self):
        m = SystolicMachine("t")
        m.add_pes(2)
        for pe in m.pes:
            pe.reg("R", 0.0)
            pe["R"].set(1.0)
        m.end_tick()
        assert all(pe["R"].value == 1.0 for pe in m.pes)

    def test_phase_accounting(self):
        m = SystolicMachine("t")
        assert m.phase == -1
        m.begin_phase("a")
        assert m.phase == 0
        assert m.phase_start == 0
        m.end_tick()
        m.end_tick()
        m.begin_phase("b")
        assert m.phase == 1
        assert m.phase_start == 2

    def test_overlapped_tick_skew(self):
        m = SystolicMachine("t", hop_delay=1)
        m.begin_phase("p", start=6)
        assert m.overlapped_tick(0, 0) == 7
        assert m.overlapped_tick(2, 1) == 10  # pe*hop + step + 1

    def test_after_delivers_at_start_tick(self):
        m = SystolicMachine("t")
        hits = []
        m.after(1, lambda: hits.append(m.tick))
        m.start_tick()
        assert hits == []  # due at tick 2
        m.end_tick()
        m.start_tick()
        assert hits == [2]

    def test_after_rejects_negative_delay(self):
        m = SystolicMachine("t")
        with pytest.raises(SystolicError):
            m.after(-1, lambda: None)


class TestEventBus:
    def test_emit_without_sink_is_dropped(self):
        m = SystolicMachine("t")
        m.add_pes(1)
        m.emit("op", 0, "x")  # no sink: free no-op
        assert m.trace_events() == ()
        assert not m.tracing

    def test_traced_machine_collects_typed_events(self):
        m = SystolicMachine("t", record_trace=True)
        m.add_pes(1)
        m.begin_phase("p0")
        m.emit("op", 0, "x1")
        m.end_tick()
        events = m.trace_events()
        assert any(ev.kind == "phase" for ev in events)
        ops = [ev for ev in events if ev.kind == "op"]
        assert ops == [TraceEvent(tick=1, pe=0, kind="op", label="x1", phase=0)]
        assert m.legacy_trace() == ((1, 0, "x1"),)

    def test_emit_rejects_unknown_kind(self):
        m = SystolicMachine("t", record_trace=True)
        with pytest.raises(SystolicError):
            m.emit("bogus", 0, "x")

    def test_io_helpers_count_and_emit(self):
        m = SystolicMachine("t", record_trace=True)
        m.read_input(3, label="in")
        m.write_output(2, label="out")
        m.put_on_bus(1, label="bus")
        assert m.stats.input_words == 3
        assert m.stats.output_words == 2
        assert m.stats.broadcast_words == 1
        kinds = [ev.kind for ev in m.trace_events()]
        assert kinds.count("io") == 2
        assert kinds.count("broadcast") == 1

    def test_unsubscribe(self):
        bus = EventBus()
        sink = TraceSink()
        off = bus.subscribe(sink)
        bus.emit(TraceEvent(tick=1, pe=0, kind="op", label="a"))
        off()
        assert not bus.active
        bus.emit(TraceEvent(tick=2, pe=0, kind="op", label="b"))
        assert [ev.label for ev in sink.events] == ["a"]


class TestEmptyRunReports:
    def make(self, **kw) -> RunReport:
        base = dict(
            design="t", num_pes=0, iterations=0, wall_ticks=0,
            pe_busy_ticks=(), pe_op_counts=(), serial_ops=0,
            input_words=0, output_words=0, broadcast_words=0,
        )
        base.update(kw)
        return RunReport(**base)

    def test_empty_run_marked_and_finite(self):
        rep = self.make()
        assert rep.is_empty
        assert rep.processor_utilization == 0.0
        assert rep.busy_fraction == 0.0

    def test_zero_iterations_with_pes_is_empty(self):
        rep = self.make(num_pes=2, pe_busy_ticks=(0, 0), pe_op_counts=(0, 0))
        assert rep.is_empty
        assert rep.processor_utilization == 0.0

    def test_nonempty_run_not_marked(self):
        rep = self.make(
            num_pes=2, iterations=4, wall_ticks=4,
            pe_busy_ticks=(4, 2), pe_op_counts=(4, 2), serial_ops=6,
        )
        assert not rep.is_empty
        assert rep.processor_utilization == 6 / 8
        assert rep.busy_fraction == 6 / 8

    def test_machine_finalize_empty(self):
        rep = SystolicMachine("t").finalize(iterations=0, serial_ops=0)
        assert rep.is_empty
        assert rep.busy_fraction == 0.0


class TestBackendDispatch:
    def test_normalize_accepts_known(self):
        assert normalize_backend("rtl") == "rtl"
        assert normalize_backend(None, "fast") == "fast"
        with pytest.raises(SystolicError):
            normalize_backend("gpu")

    def test_rtl_and_fast_select_their_lane(self):
        calls = []
        run_with_backend(
            "rtl", work=1,
            rtl=lambda: calls.append("rtl"),
            fast=lambda: calls.append("fast"),
            validate=lambda a, b: calls.append("validate"),
        )
        run_with_backend(
            "fast", work=1,
            rtl=lambda: calls.append("rtl"),
            fast=lambda: calls.append("fast"),
            validate=lambda a, b: calls.append("validate"),
        )
        assert calls == ["rtl", "fast"]

    def test_auto_validates_small_instances(self):
        calls = []
        out = run_with_backend(
            "auto", work=AUTO_VALIDATE_LIMIT,
            rtl=lambda: "rtl-result",
            fast=lambda: "fast-result",
            validate=lambda r, f: calls.append((r, f)),
        )
        assert out == "fast-result"
        assert calls == [("rtl-result", "fast-result")]

    def test_auto_skips_validation_above_limit(self):
        out = run_with_backend(
            "auto", work=AUTO_VALIDATE_LIMIT + 1,
            rtl=lambda: (_ for _ in ()).throw(AssertionError("rtl ran")),
            fast=lambda: "fast-result",
            validate=lambda r, f: (_ for _ in ()).throw(AssertionError()),
        )
        assert out == "fast-result"

    def test_backend_mismatch_is_systolic_error(self):
        assert issubclass(BackendMismatch, SystolicError)
