"""Unit tests for the fault injector's latch-edge hooks.

Each mode is exercised on a hand-built :class:`SystolicMachine`, so the
expected corrupted values can be asserted exactly, independent of any
array design's schedule.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.faults import FaultInjector, FaultPlan, FaultSpec
from repro.systolic import PipelinedMatrixStringArray
from repro.systolic.fabric import SystolicMachine


def _machine(plan, *, n_pes=2, regs=("R", "ACC"), record_trace=False):
    machine = SystolicMachine(
        "test", record_trace=record_trace, injector=FaultInjector(plan)
    )
    for pe in machine.add_pes(n_pes):
        for name in regs:
            pe.reg(name, 0.0)
    return machine


def _step(machine, **writes):
    """Stage ``reg=value`` writes on PE 0 and clock one edge."""
    for name, value in writes.items():
        machine.pes[0][name].set(value)
    machine.end_tick()


class TestTransientFlip:
    def test_fires_once_with_default_delta(self):
        plan = FaultPlan(specs=(FaultSpec(mode="transient_flip", pe=0, reg="R", tick=2),))
        m = _machine(plan)
        _step(m, R=5.0)
        assert m.pes[0]["R"].value == 5.0  # not armed yet
        _step(m, R=6.0)
        assert m.pes[0]["R"].value == 103.0  # 6.0 + default delta 97
        _step(m, R=7.0)
        assert m.pes[0]["R"].value == 7.0  # fired once, gone
        assert len(m.injector.injections) == 1
        inj = m.injector.injections[0]
        assert inj.mode == "transient_flip" and inj.tick == 2

    def test_infinity_becomes_phantom_finite_value(self):
        # A flip on an ∞ (no-edge) entry materializes a phantom path
        # with cost `delta` — detectable, unlike ∞ + δ = ∞.
        plan = FaultPlan(
            specs=(FaultSpec(mode="transient_flip", pe=0, reg="R", tick=1, delta=9.0),)
        )
        m = _machine(plan)
        _step(m, R=float("inf"))
        assert m.pes[0]["R"].value == 9.0

    def test_waits_for_a_perturbable_value(self):
        # Armed at tick 1 but the register holds None until tick 3.
        plan = FaultPlan(specs=(FaultSpec(mode="transient_flip", pe=0, reg="R", tick=1),))
        m = SystolicMachine("test", injector=FaultInjector(plan))
        m.add_pes(1)[0].reg("R", None)
        m.end_tick()
        m.end_tick()
        assert m.pes[0]["R"].value is None
        m.pes[0]["R"].set(1.0)
        m.end_tick()
        assert m.pes[0]["R"].value == 98.0
        assert [i.tick for i in m.injector.injections] == [3]


class TestStuckAt:
    def test_forces_value_every_armed_tick(self):
        plan = FaultPlan(
            specs=(FaultSpec(mode="stuck_at", pe=0, reg="R", tick=2, value=42.0),)
        )
        m = _machine(plan)
        _step(m, R=1.0)
        assert m.pes[0]["R"].value == 1.0
        _step(m, R=2.0)
        assert m.pes[0]["R"].value == 42.0
        _step(m, R=3.0)
        assert m.pes[0]["R"].value == 42.0
        # Recorded once (on the first actual corruption), not per tick.
        assert len(m.injector.injections) == 1

    def test_bounded_window_releases_the_register(self):
        plan = FaultPlan(
            specs=(
                FaultSpec(mode="stuck_at", pe=0, reg="R", tick=1, duration=2, value=0.5),
            )
        )
        m = _machine(plan)
        _step(m, R=1.0)
        _step(m, R=2.0)
        assert m.pes[0]["R"].value == 0.5
        _step(m, R=3.0)
        assert m.pes[0]["R"].value == 3.0


class TestDropDelivery:
    def test_staged_write_never_arrives(self):
        plan = FaultPlan(specs=(FaultSpec(mode="drop_delivery", pe=0, reg="R", tick=2),))
        m = _machine(plan)
        _step(m, R=1.0)
        _step(m, R=2.0)  # dropped
        assert m.pes[0]["R"].value == 1.0
        _step(m, R=3.0)
        assert m.pes[0]["R"].value == 3.0
        assert len(m.injector.injections) == 1

    def test_no_injection_recorded_without_a_staged_write(self):
        plan = FaultPlan(specs=(FaultSpec(mode="drop_delivery", pe=0, reg="R", tick=2),))
        m = _machine(plan)
        _step(m, R=1.0)
        m.end_tick()  # tick 2: nothing staged, nothing to drop
        assert m.injector.injections == []


class TestDuplicateDelivery:
    def test_replays_the_captured_value_once(self):
        plan = FaultPlan(
            specs=(FaultSpec(mode="duplicate_delivery", pe=0, reg="R", tick=2),)
        )
        m = _machine(plan)
        _step(m, R=1.0)
        _step(m, R=2.0)  # captured after this edge
        assert m.pes[0]["R"].value == 2.0
        _step(m, R=3.0)  # fresh delivery overwritten by the stutter
        assert m.pes[0]["R"].value == 2.0
        _step(m, R=4.0)
        assert m.pes[0]["R"].value == 4.0
        assert len(m.injector.injections) == 1


class TestDeadPeAndLink:
    def test_dead_pe_freezes_every_register(self):
        plan = FaultPlan(specs=(FaultSpec(mode="dead_pe", pe=0, tick=2),))
        m = _machine(plan)
        _step(m, R=1.0, ACC=10.0)
        _step(m, R=2.0, ACC=20.0)
        _step(m, R=3.0, ACC=30.0)
        assert m.pes[0]["R"].value == 1.0
        assert m.pes[0]["ACC"].value == 10.0

    def test_dead_pe_leaves_other_pes_alone(self):
        plan = FaultPlan(specs=(FaultSpec(mode="dead_pe", pe=0, tick=1),))
        m = _machine(plan)
        m.pes[1]["R"].set(7.0)
        m.end_tick()
        assert m.pes[1]["R"].value == 7.0

    def test_dead_link_freezes_only_the_named_register(self):
        plan = FaultPlan(specs=(FaultSpec(mode="dead_link", pe=0, reg="R", tick=2),))
        m = _machine(plan)
        _step(m, R=1.0, ACC=10.0)
        _step(m, R=2.0, ACC=20.0)
        assert m.pes[0]["R"].value == 1.0  # link down
        assert m.pes[0]["ACC"].value == 20.0  # local state still latches


class TestBookkeeping:
    def test_fault_events_reach_the_trace_bus(self):
        plan = FaultPlan(specs=(FaultSpec(mode="stuck_at", pe=1, reg="ACC", tick=1, value=0.0),))
        m = _machine(plan, record_trace=True)
        m.pes[1]["ACC"].set(5.0)
        m.end_tick()
        faults = [ev for ev in m.trace_events() if ev.kind == "fault"]
        assert len(faults) == 1
        assert faults[0].pe == 1
        assert "stuck_at" in faults[0].label and "ACC" in faults[0].label

    def test_injection_record_round_trips(self):
        plan = FaultPlan(specs=(FaultSpec(mode="transient_flip", pe=0, reg="R", tick=1),))
        m = _machine(plan)
        _step(m, R=1.0)
        d = m.injector.injections[0].to_dict()
        assert d["mode"] == "transient_flip" and d["pe"] == 0 and d["reg"] == "R"
        assert isinstance(d["before"], str) and isinstance(d["after"], str)

    def test_inert_specs_flag_bad_addresses(self):
        plan = FaultPlan(
            specs=(
                FaultSpec(mode="transient_flip", pe=99, reg="R", tick=1),
                FaultSpec(mode="stuck_at", pe=0, reg="NOPE", tick=1, value=0.0),
                FaultSpec(mode="transient_flip", pe=0, reg="R", tick=1),
            )
        )
        m = _machine(plan)
        _step(m, R=1.0)
        assert m.injector.inert_specs() == (0, 1)  # spec indices
        assert len(m.injector.injections) == 1

    def test_empty_plan_is_bit_identical_to_no_injector(self, rng):
        mats = [rng.integers(0, 7, size=(4, 4)).astype(float) for _ in range(3)]
        mats.append(rng.integers(0, 7, size=(4, 1)).astype(float))
        arr = PipelinedMatrixStringArray()
        clean = arr.run([m.copy() for m in mats], backend="rtl")
        injector = FaultInjector(FaultPlan(design="pipelined"))
        faulty = arr.run([m.copy() for m in mats], backend="rtl", injector=injector)
        assert np.array_equal(np.asarray(clean.value), np.asarray(faulty.value))
        assert injector.injections == []
