"""Unit tests for MultistageGraph and NodeValueProblem."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs import GraphError, MultistageGraph, NodeValueProblem, fig1a_graph, fig1b_problem
from repro.semiring import MAX_PLUS, MIN_PLUS, chain_product


class TestConstruction:
    def test_basic_shape_queries(self):
        g = MultistageGraph(costs=(np.zeros((2, 3)), np.zeros((3, 4))))
        assert g.num_stages == 3
        assert g.num_layers == 2
        assert g.stage_sizes == (2, 3, 4)
        assert not g.is_single_source_sink

    def test_single_source_sink_flag(self):
        g = MultistageGraph(costs=(np.zeros((1, 3)), np.zeros((3, 1))))
        assert g.is_single_source_sink

    def test_empty_costs_rejected(self):
        with pytest.raises(GraphError):
            MultistageGraph(costs=())

    def test_mismatched_layers_rejected(self):
        with pytest.raises(GraphError, match="stage-size mismatch"):
            MultistageGraph(costs=(np.zeros((2, 3)), np.zeros((4, 2))))

    def test_non_2d_rejected(self):
        with pytest.raises(GraphError, match="2-D"):
            MultistageGraph(costs=(np.zeros(3),))

    def test_empty_stage_rejected(self):
        with pytest.raises(GraphError, match="empty stage"):
            MultistageGraph(costs=(np.zeros((0, 3)),))

    def test_num_edges_counts_finite_costs(self):
        c = np.array([[1.0, np.inf], [np.inf, 2.0]])
        g = MultistageGraph(costs=(c,))
        assert g.num_edges() == 2


class TestPathOperations:
    def test_path_cost_accumulates(self):
        g = fig1a_graph()
        # path s -> A2 -> B1 -> C3 -> t: 5 + 2 + 2 + 2? compute explicitly
        cost = g.path_cost((0, 1, 0, 2, 0))
        expected = g.costs[0][0, 1] + g.costs[1][1, 0] + g.costs[2][0, 2] + g.costs[3][2, 0]
        assert np.isclose(cost, expected)

    def test_path_wrong_length_rejected(self):
        g = fig1a_graph()
        with pytest.raises(GraphError, match="path length"):
            g.path_cost((0, 1, 2))

    def test_path_out_of_range_rejected(self):
        g = fig1a_graph()
        with pytest.raises(GraphError, match="outside stage"):
            g.path_cost((0, 5, 0, 0, 0))

    def test_iter_paths_count(self):
        g = fig1a_graph()
        assert sum(1 for _ in g.iter_paths()) == 1 * 3 * 3 * 3 * 1

    def test_brute_force_is_minimum(self):
        g = fig1a_graph()
        best, path = g.brute_force_optimum()
        costs = [g.path_cost(p) for p in g.iter_paths()]
        assert np.isclose(best, min(costs))
        assert np.isclose(g.path_cost(path), best)

    def test_max_plus_brute_force_is_maximum(self, rng):
        costs = tuple(rng.uniform(0, 5, (3, 3)) for _ in range(2))
        g = MultistageGraph(costs=costs, semiring=MAX_PLUS)
        best, path = g.brute_force_optimum()
        all_costs = [g.path_cost(p) for p in g.iter_paths()]
        assert np.isclose(best, max(all_costs))


class TestMatrixStringView:
    def test_as_matrices_copies(self):
        g = fig1a_graph()
        mats = g.as_matrices()
        mats[0][0, 0] = 999.0
        assert g.costs[0][0, 0] != 999.0

    def test_string_product_equals_brute_force(self, rng):
        costs = (rng.uniform(0, 5, (1, 3)), rng.uniform(0, 5, (3, 3)), rng.uniform(0, 5, (3, 1)))
        g = MultistageGraph(costs=costs)
        prod = chain_product(MIN_PLUS, g.as_matrices())
        assert np.isclose(prod[0, 0], g.brute_force_optimum()[0])

    def test_serial_op_count_formula(self):
        # (N+1)-stage single-source/sink, m wide: (N-2)m^2 + m.
        m, n_layers = 4, 6
        sizes = [1] + [m] * (n_layers - 1) + [1]
        costs = tuple(np.zeros((sizes[i], sizes[i + 1])) for i in range(n_layers))
        g = MultistageGraph(costs=costs)
        assert g.serial_op_count() == (n_layers - 2) * m * m + m

    def test_reversed_preserves_optimum(self, rng):
        costs = tuple(rng.uniform(0, 5, s) for s in [(2, 3), (3, 3), (3, 2)])
        g = MultistageGraph(costs=costs)
        r = g.reversed()
        assert r.stage_sizes == tuple(reversed(g.stage_sizes))
        assert np.isclose(g.brute_force_optimum()[0], r.brute_force_optimum()[0])


class TestNodeValueProblem:
    def test_fig1b_shape(self):
        p = fig1b_problem()
        assert p.num_stages == 4
        assert p.stage_sizes == (3, 3, 3, 3)
        assert p.is_uniform

    def test_cost_matrix_values(self):
        p = fig1b_problem()
        c = p.cost_matrix(0)
        for i in range(3):
            for j in range(3):
                assert np.isclose(c[i, j], (p.values[0][i] - p.values[1][j]) ** 2)

    def test_cost_matrix_out_of_range(self):
        p = fig1b_problem()
        with pytest.raises(GraphError, match="out of range"):
            p.cost_matrix(3)

    def test_to_graph_roundtrip(self):
        p = fig1b_problem()
        g = p.to_graph()
        assert g.num_stages == p.num_stages
        assert g.stage_sizes == p.stage_sizes

    def test_nonuniform_stages(self):
        p = NodeValueProblem(
            values=(np.array([1.0, 2.0]), np.array([3.0]), np.array([4.0, 5.0, 6.0])),
            edge_cost=lambda a, b: np.abs(a - b),
        )
        assert not p.is_uniform
        assert p.stage_sizes == (2, 1, 3)

    def test_too_few_stages_rejected(self):
        with pytest.raises(GraphError):
            NodeValueProblem(values=(np.array([1.0]),), edge_cost=lambda a, b: a - b)

    def test_empty_stage_rejected(self):
        with pytest.raises(GraphError):
            NodeValueProblem(
                values=(np.array([1.0]), np.array([])), edge_cost=lambda a, b: a - b
            )

    def test_non_vectorized_cost_rejected(self):
        p = NodeValueProblem(
            values=(np.array([1.0, 2.0]), np.array([3.0, 4.0])),
            edge_cost=lambda a, b: np.float64(1.0),  # ignores shapes
        )
        with pytest.raises(GraphError, match="vectorized"):
            p.cost_matrix(0)

    def test_input_bandwidth_ratio(self):
        # The Section-3.2 claim: node form needs Σm vs Σm² words.
        p = fig1b_problem()
        node, edge = p.input_bandwidth()
        assert node == 4 * 3
        assert edge == 3 * 9
        assert edge / node == 2.25
