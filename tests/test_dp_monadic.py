"""Unit tests for the monadic-serial sequential solvers (eqs. 1-2)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dp import solve_backward, solve_forward, solve_node_value
from repro.graphs import (
    MultistageGraph,
    fig1a_graph,
    fig1b_problem,
    random_multistage,
    single_source_sink,
    uniform_multistage,
)
from repro.semiring import MAX_PLUS, PLUS_TIMES


class TestBackward:
    def test_fig1a_optimum(self):
        sol = solve_backward(fig1a_graph())
        assert sol.optimum == 6.0
        assert sol.direction == "backward"

    def test_matches_brute_force(self, rng):
        for _ in range(5):
            g = random_multistage(rng, [2, 4, 3, 4, 2])
            sol = solve_backward(g)
            assert np.isclose(sol.optimum, g.brute_force_optimum()[0])

    def test_path_realizes_optimum(self, rng):
        g = uniform_multistage(rng, 7, 3)
        sol = solve_backward(g)
        assert np.isclose(g.path_cost(sol.path.nodes), sol.optimum)

    def test_stage_values_are_costs_to_sink(self, rng):
        g = uniform_multistage(rng, 5, 3)
        sol = solve_backward(g)
        # Stage-k value of node i == optimum of the subgraph from stage k.
        sub = MultistageGraph(costs=g.costs[2:], semiring=g.semiring)
        sub_sol = solve_backward(sub)
        assert np.allclose(sol.stage_values[2], sub_sol.stage_values[0])

    def test_decisions_are_consistent(self, rng):
        g = uniform_multistage(rng, 6, 4)
        sol = solve_backward(g)
        for k in range(g.num_stages - 1):
            for i in range(g.stage_sizes[k]):
                j = sol.decisions[k][i]
                expected = g.costs[k][i, j] + sol.stage_values[k + 1][j]
                assert np.isclose(sol.stage_values[k][i], expected)

    def test_op_count_formula(self, rng):
        g = single_source_sink(rng, 5, 4)  # 7 stages, N = 6 layers
        sol = solve_backward(g)
        assert sol.op_count == (6 - 2) * 16 + 4 + 4  # all layers relaxed

    def test_missing_edges_respected(self):
        costs = (
            np.array([[1.0, np.inf]]),
            np.array([[np.inf], [5.0]]),
        )
        g = MultistageGraph(costs=costs)
        sol = solve_backward(g)
        assert np.isinf(sol.optimum)  # only path uses a missing edge


class TestForward:
    def test_fig1a_optimum(self):
        sol = solve_forward(fig1a_graph())
        assert sol.optimum == 6.0
        assert sol.direction == "forward"

    def test_agrees_with_backward(self, rng):
        for _ in range(5):
            g = random_multistage(rng, [3, 5, 2, 4, 3])
            assert np.isclose(
                solve_forward(g).optimum, solve_backward(g).optimum
            )

    def test_path_realizes_optimum(self, rng):
        g = uniform_multistage(rng, 6, 4)
        sol = solve_forward(g)
        assert np.isclose(g.path_cost(sol.path.nodes), sol.optimum)

    def test_stage_values_are_costs_from_source(self, rng):
        g = uniform_multistage(rng, 5, 3)
        sol = solve_forward(g)
        sub = MultistageGraph(costs=g.costs[:2], semiring=g.semiring)
        sub_sol = solve_forward(sub)
        assert np.allclose(sol.stage_values[2], sub_sol.stage_values[-1])


class TestSemiringVariants:
    def test_max_plus_longest_path(self, rng):
        costs = tuple(rng.uniform(0, 5, (3, 3)) for _ in range(3))
        g = MultistageGraph(costs=costs, semiring=MAX_PLUS)
        sol = solve_backward(g)
        all_costs = [g.path_cost(p) for p in g.iter_paths()]
        assert np.isclose(sol.optimum, max(all_costs))
        assert np.isclose(g.path_cost(sol.path.nodes), sol.optimum)

    def test_plus_times_rejected(self):
        g = MultistageGraph(costs=(np.ones((2, 2)),), semiring=PLUS_TIMES)
        with pytest.raises(ValueError, match="decision extraction"):
            solve_backward(g)
        with pytest.raises(ValueError, match="decision extraction"):
            solve_forward(g)


class TestNodeValue:
    def test_matches_materialized_graph(self):
        p = fig1b_problem()
        sol = solve_node_value(p)
        ref = solve_forward(p.to_graph())
        assert np.isclose(sol.optimum, ref.optimum)

    def test_h_values_are_forward_values(self, rng):
        from repro.graphs import traffic_light_problem

        p = traffic_light_problem(rng, 5, 4)
        sol = solve_node_value(p)
        # h(x_N) must be the per-node shortest path from stage 1.
        assert len(sol.stage_values[-1]) == 4
        assert np.isclose(min(sol.stage_values[-1]), sol.optimum)
