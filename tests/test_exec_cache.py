"""The digest-keyed solve cache: keys, LRU, and the bypass contract.

The bypass rules are the load-bearing part: observers (``sinks``),
injectors (``fault_plan``), cycle-accurate runs (``backend="rtl"``) and
the hazard sanitizer (``strict``) must see *every* execution — a cached
report would silently swallow their side effects — so those runs skip
the cache entirely, in both ``solve_batch`` and ``solve(cache=...)``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import SolveCache, solve, solve_batch
from repro.exec import cache_key, default_cache, problem_digest
from repro.faults import FaultPlan, FaultSpec
from repro.graphs import (
    NodeValueProblem,
    random_multistage,
    traffic_light_problem,
    uniform_multistage,
)


@pytest.fixture
def graph(rng):
    return uniform_multistage(rng, 4, 3)


def _flip(reg="ACC", *, pe=0, tick=1):
    return FaultPlan(
        specs=(
            FaultSpec(mode="transient_flip", pe=pe, reg=reg, tick=tick, delta=-1000.0),
        )
    )


class TestDigest:
    def test_equal_content_equal_digest(self, rng):
        a = traffic_light_problem(np.random.default_rng(3), 5, 4)
        b = traffic_light_problem(np.random.default_rng(3), 5, 4)
        assert a is not b
        assert problem_digest(a) == problem_digest(b)

    def test_different_content_different_digest(self, rng):
        a = traffic_light_problem(np.random.default_rng(3), 5, 4)
        b = traffic_light_problem(np.random.default_rng(4), 5, 4)
        assert problem_digest(a) != problem_digest(b)

    def test_node_value_digest_uses_materialized_costs(self, rng):
        values = tuple(rng.uniform(0, 5, 3) for _ in range(4))
        a = NodeValueProblem(values=values, edge_cost=lambda x, y: np.abs(x - y))
        b = NodeValueProblem(values=values, edge_cost=lambda x, y: abs(x - y))
        # Different closures, same eq.-4 cost matrices: same digest.
        assert problem_digest(a) == problem_digest(b)

    def test_unknown_problem_digests_to_none(self):
        assert problem_digest(object()) is None
        assert cache_key(object(), backend="fast", prefer=None) is None

    def test_cache_key_varies_with_backend_and_prefer(self, graph):
        k1 = cache_key(graph, backend="fast", prefer=None)
        k2 = cache_key(graph, backend="rtl", prefer=None)
        k3 = cache_key(graph, backend="fast", prefer="broadcast")
        assert len({k1, k2, k3}) == 3


class TestSolveCacheLRU:
    def test_put_get_roundtrip_is_independent_copy(self, graph):
        cache = SolveCache(capacity=4)
        report = solve(graph, backend="fast")
        key = cache_key(graph, backend="fast", prefer=None)
        cache.put(key, report)
        hit1 = cache.get(key)
        hit2 = cache.get(key)
        assert hit1 is not report and hit1 is not hit2
        assert hit1.optimum == report.optimum
        assert hit1.method == report.method

    def test_lru_eviction_order(self):
        cache = SolveCache(capacity=2)
        cache.put(("a",), "ra")
        cache.put(("b",), "rb")
        assert cache.get(("a",)) == "ra"  # refresh 'a'
        cache.put(("c",), "rc")  # evicts 'b', the least recent
        assert cache.get(("b",)) is None
        assert cache.get(("a",)) == "ra"
        assert cache.get(("c",)) == "rc"
        assert cache.stats.evictions == 1

    def test_stats_and_clear(self):
        cache = SolveCache(capacity=4)
        cache.put(("k",), "r")
        cache.get(("k",))
        cache.get(("missing",))
        stats = cache.stats
        assert stats.hits == 1 and stats.misses == 1 and stats.size == 1
        assert stats.hit_rate == pytest.approx(0.5)
        cache.clear()
        assert cache.stats.size == 0

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            SolveCache(capacity=0)


class TestSolveIntegration:
    def test_single_solve_hits_shared_cache(self, graph):
        cache = SolveCache()
        first = solve(graph, backend="fast", cache=cache)
        second = solve(graph, backend="fast", cache=cache)
        assert cache.stats.hits == 1 and cache.stats.misses == 1
        assert second is not first
        assert second.optimum == first.optimum

    def test_solve_and_solve_batch_share_one_cache(self, rng):
        cache = SolveCache()
        probs = [traffic_light_problem(rng, 5, 4) for _ in range(3)]
        solve(probs[0], backend="fast", cache=cache)
        result = solve_batch(probs, cache=cache)
        assert result.stats.cache_hits == 1
        assert result.stats.executed == 2

    def test_default_rtl_solve_bypasses_cache(self, graph):
        cache = SolveCache()
        solve(graph, cache=cache)  # solve() defaults to backend="rtl"
        solve(graph, cache=cache)
        assert cache.stats.size == 0 and cache.stats.hits == 0

    def test_default_cache_is_process_wide(self, graph):
        default_cache().clear()
        try:
            solve(graph, backend="fast", cache=True)
            solve(graph, backend="fast", cache=True)
            assert default_cache().stats.hits >= 1
        finally:
            default_cache().clear()


class TestBypassSemantics:
    def test_cached_hits_are_equal_but_independent(self, rng):
        cache = SolveCache()
        probs = [traffic_light_problem(rng, 5, 4) for _ in range(3)]
        first = solve_batch(probs, cache=cache)
        second = solve_batch(probs, cache=cache)
        assert second.stats.cache_hits == 3 and second.stats.executed == 0
        for a, b in zip(first, second):
            assert a is not b
            assert a.optimum == b.optimum and a.method == b.method
            assert a.solution is not b.solution or isinstance(a.solution, float)

    def test_sinks_force_reexecution_with_events_both_times(self, rng):
        cache = SolveCache()
        probs = [uniform_multistage(rng, 4, 3) for _ in range(2)]
        events: list = []
        solve_batch(probs, backend="rtl", sinks=[events.append], cache=cache)
        first_count = len(events)
        assert first_count > 0
        solve_batch(probs, backend="rtl", sinks=[events.append], cache=cache)
        assert len(events) == 2 * first_count
        assert cache.stats.size == 0  # nothing was ever stored

    def test_fault_plan_forces_reexecution_with_faults_both_times(self):
        cache = SolveCache()
        graph = random_multistage(np.random.default_rng(1), [1, 3, 3, 1])
        for _ in range(2):
            result = solve_batch(
                [graph], fault_plan=_flip("ACC"), recovery="retry", cache=cache
            )
            report = result.reports[0]
            assert report.faults is not None
            assert len(report.faults.injections) >= 1
            assert report.validated
        assert cache.stats.size == 0

    def test_rtl_and_strict_batches_bypass(self, rng):
        cache = SolveCache()
        probs = [uniform_multistage(rng, 4, 3) for _ in range(2)]
        solve_batch(probs, backend="rtl", cache=cache)
        solve_batch(probs, backend="fast", strict=True, cache=cache)
        assert cache.stats.size == 0

    def test_warm_cache_is_ignored_by_side_effectful_run(self, rng):
        cache = SolveCache()
        probs = [uniform_multistage(rng, 4, 3) for _ in range(2)]
        solve_batch(probs, cache=cache)  # warm it on the fast path
        events: list = []
        result = solve_batch(
            probs, backend="rtl", sinks=[events.append], cache=cache
        )
        assert result.stats.cache_hits == 0
        assert len(events) > 0
