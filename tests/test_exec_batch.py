"""solve_batch(): grouping, vectorized kernels, bit-identity to solve().

The batch engine's whole contract is that its stacked kernels are an
*execution strategy*, not a different algorithm: every report must be
bit-for-bit what a looped :func:`repro.solve` would have produced —
optimum, reference, traced path and closed-form counters included.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import MatrixChainProblem, solve, solve_batch
from repro.exec import group_problems
from repro.graphs import (
    NodeValueProblem,
    single_source_sink,
    traffic_light_problem,
    uniform_multistage,
)
from repro.telemetry import MetricsRegistry


def assert_same_report(a, b):
    """Bit-for-bit equality of two SolveReports (modulo object identity)."""
    assert a.method == b.method
    assert a.dp_class == b.dp_class
    assert a.optimum == b.optimum
    assert a.reference == b.reference
    assert a.validated == b.validated
    sa, sb = a.solution, b.solution
    if isinstance(sa, np.ndarray) or isinstance(sb, np.ndarray):
        assert np.array_equal(np.asarray(sa), np.asarray(sb))
    elif hasattr(sa, "nodes"):
        assert sa.nodes == sb.nodes
    else:
        assert sa == sb
    ra = getattr(a.detail, "report", None)
    rb = getattr(b.detail, "report", None)
    assert ra == rb


def assert_batch_matches_loop(problems, *, backend="fast", **kwargs):
    result = solve_batch(problems, backend=backend, **kwargs)
    assert len(result) == len(problems)
    for rep, problem in zip(result, problems):
        assert_same_report(rep, solve(problem, backend=backend))
    return result


class TestGrouping:
    def test_uniform_feedback_instances_form_one_vectorized_group(self, rng):
        probs = [traffic_light_problem(rng, 5, 4) for _ in range(6)]
        groups = group_problems(probs, list(range(6)), prefer=None, vectorize=True)
        assert len(groups) == 1
        assert groups[0].kind == "feedback"
        assert len(groups[0]) == 6

    def test_shape_mismatch_splits_groups(self, rng):
        probs = [
            traffic_light_problem(rng, 5, 4),
            traffic_light_problem(rng, 5, 4),
            traffic_light_problem(rng, 6, 4),  # different stage count
        ]
        groups = group_problems(probs, [0, 1, 2], prefer=None, vectorize=True)
        assert sorted(len(g) for g in groups) == [1, 2]

    def test_vectorize_false_demotes_to_scalar(self, rng):
        probs = [traffic_light_problem(rng, 5, 4) for _ in range(4)]
        groups = group_problems(probs, [0, 1, 2, 3], prefer=None, vectorize=False)
        assert all(g.kind == "scalar" for g in groups)

    def test_group_indices_partition_the_batch(self, rng):
        probs = [traffic_light_problem(rng, 5, 4) for _ in range(3)]
        probs += [uniform_multistage(rng, 4, 3) for _ in range(3)]
        groups = group_problems(probs, list(range(6)), prefer=None, vectorize=True)
        seen = sorted(i for g in groups for i in g.indices)
        assert seen == list(range(6))


class TestVectorizedKernels:
    def test_feedback_batch_bit_identical(self, rng):
        probs = [traffic_light_problem(rng, 6, 5) for _ in range(8)]
        result = assert_batch_matches_loop(probs)
        assert result.stats.vectorized_groups == 1
        assert result.stats.fill_factor == 1.0

    def test_node_value_problem_batch(self, rng):
        probs = []
        for _ in range(5):
            values = tuple(rng.uniform(0, 5, 4) for _ in range(5))
            probs.append(
                NodeValueProblem(
                    values=values, edge_cost=lambda a, b: np.abs(a - b)
                )
            )
        assert_batch_matches_loop(probs)

    def test_pipelined_framed_graph_batch(self, rng):
        probs = [uniform_multistage(rng, 5, 4) for _ in range(6)]
        result = assert_batch_matches_loop(probs)
        assert result.stats.vectorized_groups == 1

    def test_pipelined_fitting_graph_batch(self, rng):
        probs = [single_source_sink(rng, 4, 3) for _ in range(6)]
        assert_batch_matches_loop(probs)

    def test_chain_problems_run_scalar(self, rng):
        probs = [
            MatrixChainProblem(tuple(int(d) for d in rng.integers(2, 40, size=5)))
            for _ in range(4)
        ]
        result = assert_batch_matches_loop(probs)
        assert result.stats.vectorized_groups == 0

    def test_mixed_batch_preserves_order(self, rng):
        probs = [traffic_light_problem(rng, 5, 4) for _ in range(3)]
        probs += [uniform_multistage(rng, 4, 3) for _ in range(3)]
        probs += [
            MatrixChainProblem(tuple(int(d) for d in rng.integers(2, 40, size=5)))
            for _ in range(2)
        ]
        order = rng.permutation(len(probs))
        shuffled = [probs[i] for i in order]
        assert_batch_matches_loop(shuffled)

    def test_rtl_backend_stays_scalar_and_identical(self, rng):
        probs = [uniform_multistage(rng, 4, 3) for _ in range(3)]
        result = solve_batch(probs, backend="rtl")
        assert result.stats.vectorized_groups == 0
        for rep, problem in zip(result, probs):
            assert_same_report(rep, solve(problem, backend="rtl"))

    def test_empty_batch(self):
        result = solve_batch([])
        assert len(result) == 0
        assert result.stats.total == 0
        assert result.stats.problems_per_second == 0.0 or result.stats.total == 0

    def test_single_problem_batch(self, rng):
        probs = [traffic_light_problem(rng, 5, 4)]
        assert_batch_matches_loop(probs)


class TestCrossBackendFuzz:
    @pytest.mark.parametrize("seed", range(6))
    def test_batched_matches_looped_solve(self, seed):
        rng = np.random.default_rng(seed)
        probs = []
        n = int(rng.integers(4, 8))
        m = int(rng.integers(2, 6))
        for _ in range(int(rng.integers(2, 5))):
            probs.append(traffic_light_problem(rng, n, m))
        for _ in range(int(rng.integers(2, 5))):
            probs.append(uniform_multistage(rng, n, m))
        for _ in range(int(rng.integers(1, 3))):
            probs.append(
                MatrixChainProblem(
                    tuple(int(d) for d in rng.integers(2, 30, size=n))
                )
            )
        shuffled = [probs[i] for i in rng.permutation(len(probs))]
        for backend in ("fast", "rtl"):
            result = solve_batch(shuffled, backend=backend)
            for rep, problem in zip(result, shuffled):
                assert_same_report(rep, solve(problem, backend=backend))


class TestStatsAndMetrics:
    def test_stats_accounting(self, rng):
        probs = [traffic_light_problem(rng, 5, 4) for _ in range(4)]
        probs += [
            MatrixChainProblem(tuple(int(d) for d in rng.integers(2, 30, size=5)))
            for _ in range(2)
        ]
        stats = solve_batch(probs).stats
        assert stats.total == 6
        assert stats.executed == 6
        assert stats.cache_hits == 0
        assert stats.vectorized_problems == 4
        assert stats.fill_factor == pytest.approx(4 / 6)
        assert stats.wall_seconds > 0
        assert stats.problems_per_second > 0

    def test_registry_receives_throughput_counters(self, rng):
        registry = MetricsRegistry()
        probs = [traffic_light_problem(rng, 5, 4) for _ in range(4)]
        solve_batch(probs, registry=registry)
        names = set(registry.snapshot()["metrics"])
        assert "repro_batch_problems_total" in names
        assert "repro_batch_cache_hits_total" in names
        assert "repro_batch_problems_per_second" in names
        assert "repro_batch_group_fill_factor" in names
        assert "repro_batch_shard_wall_seconds" in names
