"""Unit tests for the Figure-7 and Figure-2 AND/OR graph builders."""

from __future__ import annotations

import numpy as np
import pytest

from repro.andor import (
    NodeKind,
    fold_multistage,
    matrix_chain_andor,
    u_and_nodes,
    u_or_nodes,
    u_total_nodes,
)
from repro.dp import solve_matrix_chain
from repro.graphs import uniform_multistage
from repro.semiring import MIN_PLUS, chain_product


class TestFoldMultistage:
    @pytest.mark.parametrize("n_layers,p,m", [(2, 2, 2), (4, 2, 3), (4, 4, 2), (8, 2, 2), (9, 3, 2)])
    def test_node_count_matches_eq32(self, rng, n_layers, p, m):
        g = uniform_multistage(rng, n_layers + 1, m)
        fm = fold_multistage(g, p=p)
        assert len(fm.graph) == u_total_nodes(n_layers, m, p)
        assert fm.graph.count_kind(NodeKind.AND) == u_and_nodes(n_layers, m, p)
        or_and_leaves = fm.graph.count_kind(NodeKind.OR) + fm.graph.count_kind(
            NodeKind.LEAF
        )
        assert or_and_leaves == u_or_nodes(n_layers, m, p)

    @pytest.mark.parametrize("p", [2, 4])
    def test_values_match_chain_product(self, rng, p):
        g = uniform_multistage(rng, 5, 3)  # 4 layers
        fm = fold_multistage(g, p=p)
        vals = fm.graph.evaluate()
        root = np.array(
            [[vals[fm.root_or[u, v]] for v in range(3)] for u in range(3)]
        )
        ref = chain_product(MIN_PLUS, g.as_matrices())
        assert np.allclose(root, ref)

    def test_graph_is_serial(self, rng):
        g = uniform_multistage(rng, 5, 2)
        fm = fold_multistage(g, p=2)
        assert fm.graph.is_serial()

    def test_height_is_2_logp_n(self, rng):
        g = uniform_multistage(rng, 9, 2)  # N = 8 layers
        fm = fold_multistage(g, p=2)
        root = int(fm.root_or[0, 0])
        assert fm.graph.height(root) == 2 * 3  # 2·log2(8)

    def test_solution_tree_is_valid_path(self, rng):
        g = uniform_multistage(rng, 5, 3)
        fm = fold_multistage(g, p=2)
        vals = fm.graph.evaluate()
        best = min(
            (int(fm.root_or[u, v]) for u in range(3) for v in range(3)),
            key=lambda nid: vals[nid],
        )
        tree = fm.graph.solution_tree(best)
        # The chosen leaves form a source->sink path: one per layer.
        leaves = [
            fm.graph.nodes[n]
            for n in tree.nodes
            if fm.graph.nodes[n].kind is NodeKind.LEAF
        ]
        assert len(leaves) == g.num_layers
        total = sum(leaf.cost for leaf in leaves)
        assert np.isclose(total, tree.cost)

    def test_invalid_p_rejected(self, rng):
        g = uniform_multistage(rng, 5, 2)
        with pytest.raises(ValueError):
            fold_multistage(g, p=1)
        with pytest.raises(ValueError, match="power"):
            fold_multistage(g, p=3)  # 4 layers not a power of 3

    def test_nonuniform_rejected(self, rng):
        from repro.graphs import random_multistage

        g = random_multistage(rng, [2, 3, 2])
        with pytest.raises(ValueError, match="uniform"):
            fold_multistage(g, p=2)


class TestMatrixChainAndor:
    def test_root_value_is_dp_optimum(self, rng):
        for _ in range(5):
            dims = list(rng.integers(1, 30, size=rng.integers(3, 9)))
            mc = matrix_chain_andor(dims)
            vals = mc.graph.evaluate()
            assert vals[mc.root] == solve_matrix_chain(dims).cost

    def test_every_subchain_value(self, rng):
        dims = list(rng.integers(1, 20, size=6))
        mc = matrix_chain_andor(dims)
        vals = mc.graph.evaluate()
        for (i, j), nid in mc.or_node.items():
            sub = solve_matrix_chain(dims[i - 1 : j + 1])
            assert vals[nid] == sub.cost, (i, j)

    def test_figure2_shape_for_four_matrices(self):
        mc = matrix_chain_andor([2, 3, 4, 5, 6])
        g = mc.graph
        # 4 leaves + OR nodes for 6 proper subchains + AND per split:
        # spans 2,3,4 -> 3+2+1 = 6 ORs; ANDs = 3*1 + 2*2 + 1*3 = 10.
        assert g.count_kind(NodeKind.LEAF) == 4
        assert g.count_kind(NodeKind.OR) == 6
        assert g.count_kind(NodeKind.AND) == 10

    def test_nonserial_for_three_plus(self):
        assert not matrix_chain_andor([2, 3, 4, 5]).graph.is_serial()

    def test_serial_for_two(self):
        # Two matrices: single split, arcs all adjacent.
        assert matrix_chain_andor([2, 3, 4]).graph.is_serial()

    def test_and_local_costs(self):
        dims = [2, 3, 4, 5]
        mc = matrix_chain_andor(dims)
        and_costs = sorted(
            n.cost for n in mc.graph.nodes if n.kind is NodeKind.AND
        )
        # (1,1,3): r0*r1*r3 = 30; (1,2,3): r0*r2*r3 = 40; plus the two
        # span-2 ANDs 24 and 60.
        assert and_costs == [24.0, 30.0, 40.0, 60.0]

    def test_validation(self):
        with pytest.raises(ValueError):
            matrix_chain_andor([5])
        with pytest.raises(ValueError):
            matrix_chain_andor([2, 0, 3])
