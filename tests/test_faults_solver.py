"""solve(fault_plan=...): the dispatch solver's recovery integration."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import solve
from repro.core.problem import MatrixChainProblem
from repro.dp.nonserial import NonserialObjective
from repro.faults import FaultDetected, FaultPlan, FaultSpec
from repro.graphs import NodeValueProblem, random_multistage


@pytest.fixture()
def graph():
    return random_multistage(np.random.default_rng(1), [1, 3, 3, 1])


@pytest.fixture()
def node_value_problem(rng):
    values = tuple(rng.uniform(0, 5, 3) for _ in range(4))
    return NodeValueProblem(values=values, edge_cost=lambda a, b: np.abs(a - b))


def _flip(reg, *, pe=0, tick=1):
    # δ = −1000 beats every legal min-plus candidate: provably effective.
    return FaultPlan(
        specs=(FaultSpec(mode="transient_flip", pe=pe, reg=reg, tick=tick, delta=-1000.0),)
    )


class TestRecoveredDispatch:
    def test_graph_retry_recovers_and_validates(self, graph):
        report = solve(graph, fault_plan=_flip("ACC"), recovery="retry")
        assert report.method == "fig3-pipelined-array+faults"
        assert report.validated
        assert report.faults is not None
        assert report.faults.outcome == "recovered" and report.faults.effective
        assert np.isclose(report.optimum, report.reference)

    def test_feedback_retry_recovers(self, node_value_problem):
        report = solve(node_value_problem, fault_plan=_flip("PAIR"), recovery="retry")
        assert report.method == "fig5-feedback-array+faults"
        assert report.validated and report.faults.outcome == "recovered"
        assert report.solution is not None  # the traced optimal path

    def test_chain_retry_recovers(self):
        chain = MatrixChainProblem(dims=(4, 7, 3, 5, 2))
        report = solve(chain, fault_plan=_flip("M"), recovery="retry")
        assert report.method.endswith("+faults")
        assert report.validated and report.faults.outcome == "recovered"

    def test_clean_plan_reports_clean(self, graph):
        report = solve(graph, fault_plan=FaultPlan(), recovery="retry")
        assert report.validated and report.faults.outcome == "clean"

    def test_broadcast_preference_is_honored(self, graph):
        report = solve(
            graph, fault_plan=_flip("ACC"), recovery="retry", prefer="broadcast"
        )
        assert report.method == "fig4-broadcast-array+faults"
        assert report.validated


class TestDegradedDispatch:
    def test_spare_policy_degrades_and_validates(self, graph):
        plan = FaultPlan(specs=(FaultSpec(mode="dead_pe", pe=1, tick=2),))
        report = solve(graph, fault_plan=plan, recovery="spare")
        assert report.validated
        assert report.faults.outcome == "degraded"
        assert report.faults.degraded  # the eq. 9 comparison rides along

    def test_warn_policy_returns_flagged_result(self, graph):
        with pytest.warns(RuntimeWarning, match="degrade-and-warn"):
            report = solve(graph, fault_plan=_flip("ACC"), recovery="warn")
        # No AssertionError despite the disagreement: the report is
        # explicitly flagged instead.
        assert not report.validated
        assert report.faults.outcome == "detected"
        assert report.optimum != pytest.approx(report.reference)


class TestFailurePaths:
    def test_fail_fast_raises(self, graph):
        with pytest.raises(FaultDetected):
            solve(graph, fault_plan=_flip("ACC"), recovery="fail_fast")

    def test_unrecoverable_plan_raises(self, graph):
        # A persistent stuck-at survives every retry: no usable result.
        plan = FaultPlan(
            specs=(FaultSpec(mode="stuck_at", pe=0, reg="ACC", tick=1, value=-1000.0),)
        )
        with pytest.raises(FaultDetected):
            solve(graph, fault_plan=plan, recovery="retry")

    def test_non_array_problems_are_rejected(self):
        objective = NonserialObjective(
            domains={"a": np.array([0.0, 1.0]), "b": np.array([0.0, 1.0])},
            terms=((("a", "b"), lambda a, b: a + b),),
        )
        with pytest.raises(TypeError, match="fault injection"):
            solve(objective, fault_plan=FaultPlan())
