"""Unit tests for the AND/OR graph data structure."""

from __future__ import annotations

import numpy as np
import pytest

from repro.andor import AndOrGraph, NodeKind
from repro.semiring import MAX_PLUS


def small_graph() -> tuple[AndOrGraph, int]:
    """OR(AND(2, 3) + 1, leaf 10) -> root; AND has local cost 1."""
    g = AndOrGraph()
    l2 = g.add_leaf(2.0)
    l3 = g.add_leaf(3.0)
    l10 = g.add_leaf(10.0)
    a = g.add_and([l2, l3], cost=1.0)
    root = g.add_or([a, l10])
    return g, root


class TestConstruction:
    def test_counts(self):
        g, _ = small_graph()
        assert len(g) == 5
        assert g.count_kind(NodeKind.LEAF) == 3
        assert g.count_kind(NodeKind.AND) == 1
        assert g.count_kind(NodeKind.OR) == 1
        assert g.num_arcs() == 4

    def test_forward_reference_rejected(self):
        g = AndOrGraph()
        g.add_leaf(1.0)
        with pytest.raises(ValueError, match="bottom-up"):
            g.add_or([5])

    def test_childless_internal_rejected(self):
        g = AndOrGraph()
        with pytest.raises(ValueError):
            g.add_and([])
        with pytest.raises(ValueError):
            g.add_or([])


class TestEvaluation:
    def test_min_plus_semantics(self):
        g, root = small_graph()
        vals = g.evaluate()
        # AND = 2 + 3 + 1 = 6; OR = min(6, 10) = 6.
        assert vals[root] == 6.0

    def test_or_picks_cheaper_leaf(self):
        g = AndOrGraph()
        l2 = g.add_leaf(2.0)
        l3 = g.add_leaf(3.0)
        l10 = g.add_leaf(1.0)
        a = g.add_and([l2, l3], cost=1.0)
        root = g.add_or([a, l10])
        assert g.evaluate()[root] == 1.0

    def test_max_plus_semantics(self):
        g = AndOrGraph(MAX_PLUS)
        a = g.add_leaf(2.0)
        b = g.add_leaf(7.0)
        root = g.add_or([a, b])
        assert g.evaluate()[root] == 7.0

    def test_shared_subgraph_evaluated_once(self):
        # Folded graph: one leaf feeding two AND parents.
        g = AndOrGraph()
        shared = g.add_leaf(5.0)
        a1 = g.add_and([shared], cost=1.0)
        a2 = g.add_and([shared], cost=2.0)
        root = g.add_or([a1, a2])
        assert g.evaluate()[root] == 6.0


class TestLevelsAndSeriality:
    def test_levels_longest_path(self):
        g, root = small_graph()
        lv = g.levels()
        assert lv[root] == 2
        assert g.height(root) == 2

    def test_serial_detection(self):
        g, _root = small_graph()
        # leaf 10 connects level 0 -> level 2 OR: nonserial.
        assert not g.is_serial()

    def test_strictly_layered_graph_is_serial(self):
        g = AndOrGraph()
        l1 = g.add_leaf(1.0)
        l2 = g.add_leaf(2.0)
        a = g.add_and([l1, l2])
        b = g.add_and([l1, l2])
        g.add_or([a, b])
        assert g.is_serial()


class TestSolutionTree:
    def test_tree_contains_winning_branch(self):
        g, root = small_graph()
        tree = g.solution_tree(root)
        assert tree.cost == 6.0
        assert tree.chosen[root] == 3  # the AND node id
        assert 0 in tree.nodes and 1 in tree.nodes  # both AND children
        assert 2 not in tree.nodes  # losing leaf excluded

    def test_tree_switches_with_costs(self):
        g = AndOrGraph()
        l_a = g.add_leaf(9.0)
        l_b = g.add_leaf(1.0)
        root = g.add_or([l_a, l_b])
        tree = g.solution_tree(root)
        assert tree.chosen[root] == l_b

    def test_reuses_precomputed_values(self):
        g, root = small_graph()
        vals = g.evaluate()
        tree = g.solution_tree(root, vals)
        assert tree.cost == vals[root]
