"""Recovery policies, fault-run reports, and seeded campaigns."""

from __future__ import annotations

import numpy as np
import pytest

from repro.faults import (
    DESIGNS,
    CampaignReport,
    Detection,
    DesignHarness,
    FaultDetected,
    FaultPlan,
    FaultPlanError,
    FaultRunReport,
    FaultSpec,
    make_harness,
    run_campaign,
    run_guarded,
    run_with_recovery,
)
from repro.telemetry import MetricsRegistry


@pytest.fixture()
def pipelined_harness():
    return make_harness("pipelined", np.random.default_rng(0xC0FFEE), n=6, m=4)


# A transient flip that provably corrupts the 0xC0FFEE pipelined
# instance (δ = −1000 wins every min-plus reduction it touches) but
# fires once, so a retry clears it.
EFFECTIVE_FLIP = FaultSpec(
    mode="transient_flip", pe=1, reg="ACC", tick=1, delta=-1000.0
)
EFFECTIVE_STUCK = FaultSpec(mode="stuck_at", pe=1, reg="ACC", tick=1, value=-1000.0)


class TestRunGuarded:
    def test_crash_becomes_a_detection(self):
        class Exploding(DesignHarness):
            design = "exploding"

            def run(self, **_kw):
                raise ValueError("register held a pair, expected a float")

        result, detections = run_guarded(Exploding())
        assert result is None
        assert len(detections) == 1
        assert detections[0].detector == "crash"
        assert "ValueError" in detections[0].message

    def test_clean_run_has_no_detections(self, pipelined_harness):
        result, detections = run_guarded(pipelined_harness)
        assert result is not None and detections == []


class TestPolicies:
    def test_no_fault_is_clean(self, pipelined_harness):
        result, report = run_with_recovery(
            pipelined_harness, FaultPlan(design="pipelined"), policy="retry"
        )
        assert report.outcome == "clean" and not report.effective
        assert result is not None and report.attempts == 1

    def test_retry_recovers_a_transient(self, pipelined_harness):
        result, report = run_with_recovery(
            pipelined_harness,
            FaultPlan(specs=(EFFECTIVE_FLIP,), design="pipelined"),
            policy="retry",
        )
        assert report.effective
        assert report.outcome == "recovered" and report.recovered
        assert report.attempts == 2
        assert {d.detector for d in report.detections} >= {"abft_checksum"}
        assert report.injections and report.injections[0]["mode"] == "transient_flip"
        # The recovered result matches the clean reference exactly.
        assert pipelined_harness.canonical(result) == pipelined_harness.canonical(
            pipelined_harness.clean_result()
        )

    def test_retry_cannot_fix_persistent_faults(self, pipelined_harness):
        result, report = run_with_recovery(
            pipelined_harness,
            FaultPlan(specs=(EFFECTIVE_STUCK,), design="pipelined"),
            policy="retry",
            max_retries=2,
        )
        assert report.outcome == "failed" and result is None
        assert report.attempts == 3  # first run + both retries

    def test_spare_fences_a_dead_pe(self, pipelined_harness):
        result, report = run_with_recovery(
            pipelined_harness,
            FaultPlan(specs=(FaultSpec(mode="dead_pe", pe=1, tick=2),), design="pipelined"),
            policy="spare",
        )
        assert report.outcome == "degraded" and report.recovered
        assert result is not None
        (est,) = report.degraded
        assert est["dead_pe"] == 1 and est["active_pes"] == pipelined_harness.num_pes - 1
        # Losing a PE costs utilization relative to the healthy array,
        # and the paper's eq. 9 prediction rides along for comparison.
        assert 0.0 < est["measured_pu"] < est["clean_pu"]
        assert est["predicted_pu"] is not None  # eq. 9 yardstick present

    def test_warn_returns_the_flagged_result(self, pipelined_harness):
        result, report = run_with_recovery(
            pipelined_harness,
            FaultPlan(specs=(EFFECTIVE_FLIP,), design="pipelined"),
            policy="warn",
        )
        assert report.outcome == "detected" and not report.recovered
        assert result is not None  # degraded-and-warned, not withheld

    def test_fail_fast_raises(self, pipelined_harness):
        with pytest.raises(FaultDetected) as excinfo:
            run_with_recovery(
                pipelined_harness,
                FaultPlan(specs=(EFFECTIVE_FLIP,), design="pipelined"),
                policy="fail_fast",
            )
        assert excinfo.value.detections

    def test_unknown_policy_rejected(self, pipelined_harness):
        with pytest.raises(FaultPlanError, match="policy"):
            run_with_recovery(
                pipelined_harness, FaultPlan(design="pipelined"), policy="pray"
            )

    def test_detect_and_recover_events_reach_sinks(self, pipelined_harness):
        events = []
        run_with_recovery(
            pipelined_harness,
            FaultPlan(specs=(EFFECTIVE_FLIP,), design="pipelined"),
            policy="retry",
            sinks=[events.append],
        )
        kinds = {ev.kind for ev in events}
        assert {"fault", "detect", "recover"} <= kinds


class TestReports:
    def test_fault_run_report_round_trip(self, pipelined_harness):
        _, report = run_with_recovery(
            pipelined_harness,
            FaultPlan(specs=(EFFECTIVE_FLIP,), design="pipelined"),
            policy="retry",
        )
        again = FaultRunReport.from_dict(report.to_dict())
        assert again == report

    def test_fault_run_report_rejects_wrong_kind(self):
        with pytest.raises(FaultPlanError, match="fault_run"):
            FaultRunReport.from_dict({"kind": "systolic_run"})

    def test_fault_run_report_rejects_malformed(self):
        with pytest.raises(FaultPlanError, match="malformed"):
            FaultRunReport.from_dict({"kind": "fault_run", "design": "x"})

    def test_campaign_report_round_trip(self):
        report = run_campaign("mesh", seed=3, trials=5, n=6, m=4)
        again = CampaignReport.from_dict(report.to_dict())
        assert again == report

    def test_campaign_report_rejects_wrong_kind(self):
        with pytest.raises(FaultPlanError):
            CampaignReport.from_dict({"kind": "fault_run"})


class TestCampaigns:
    def test_pipelined_acceptance_campaign(self):
        # The acceptance bar: ≥100 seeded faults, zero silent corruptions
        # (every effective fault detected), and retry actually recovers.
        registry = MetricsRegistry()
        report = run_campaign(
            "pipelined", seed=0, trials=100, policy="retry", registry=registry
        )
        assert report.faults_injected >= 100
        assert report.effective > 0  # the campaign actually bites
        assert report.undetected_effective == 0
        assert report.detection_rate == 1.0
        assert report.recovered > 0
        metrics = registry.snapshot()["metrics"]
        assert "repro_faults_injected_total" in metrics
        assert "repro_faults_effective_total" in metrics
        assert "repro_faults_detected_total" in metrics
        assert "repro_faults_recovered_total" in metrics

    @pytest.mark.parametrize("design", [d for d in DESIGNS if d != "pipelined"])
    def test_every_design_detects_all_effective_faults(self, design):
        report = run_campaign(design, seed=1, trials=25, policy="retry")
        assert report.undetected_effective == 0
        assert report.detection_rate == 1.0

    def test_campaigns_are_reproducible(self):
        a = run_campaign("broadcast", seed=7, trials=10)
        b = run_campaign("broadcast", seed=7, trials=10)
        assert a == b

    def test_fail_fast_campaign_still_aggregates(self):
        report = run_campaign("pipelined", seed=2, trials=10, policy="fail_fast")
        assert report.trials == 10
        assert report.undetected_effective == 0
