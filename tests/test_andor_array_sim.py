"""Unit tests for the clocked AND/OR planar-array simulator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.andor import (
    fold_multistage,
    map_to_array,
    matrix_chain_andor,
    serialize,
    simulate_andor_array,
)
from repro.dp import solve_matrix_chain
from repro.graphs import uniform_multistage


class TestValues:
    def test_matches_evaluate_on_folded_graph(self, rng):
        g = uniform_multistage(rng, 5, 3)
        fm = fold_multistage(g, p=2)
        run = simulate_andor_array(fm.graph)
        assert np.allclose(run.values, fm.graph.evaluate())

    def test_matches_dp_on_serialized_chain_graph(self, rng):
        dims = list(rng.integers(1, 25, size=7))
        mc = matrix_chain_andor(dims)
        ser = serialize(mc.graph)
        run = simulate_andor_array(ser.graph)
        assert run.values[ser.node_map[mc.root]] == solve_matrix_chain(dims).cost

    def test_dummies_pass_through(self, rng):
        dims = list(rng.integers(1, 15, size=6))
        mc = matrix_chain_andor(dims)
        ser = serialize(mc.graph)
        run = simulate_andor_array(ser.graph)
        orig = mc.graph.evaluate()
        for old, new in ser.node_map.items():
            assert run.values[new] == orig[old]


class TestSchedule:
    def test_ticks_match_analytic_mapping(self, rng):
        for n in (4, 6, 8):
            dims = list(rng.integers(1, 15, size=n + 1))
            ser = serialize(matrix_chain_andor(dims).graph)
            run = simulate_andor_array(ser.graph)
            lm = map_to_array(ser.graph)
            assert run.report.iterations == lm.steps
            assert run.report.wall_ticks == lm.steps

    def test_capacity_effect_matches_mapping(self, rng):
        g = uniform_multistage(rng, 9, 3)
        fm = fold_multistage(g, p=2)
        for cap in (1, 2, 4):
            run = simulate_andor_array(fm.graph, compare_capacity=cap)
            lm = map_to_array(fm.graph, compare_capacity=cap)
            assert run.report.iterations == lm.steps, cap

    def test_levels_take_at_least_one_tick(self, rng):
        g = uniform_multistage(rng, 3, 2)
        fm = fold_multistage(g, p=2)
        run = simulate_andor_array(fm.graph)
        assert all(t >= 1 for t in run.ticks_per_level)
        assert len(run.ticks_per_level) == int(run.level_of.max()) + 1

    def test_or_folds_counted(self, rng):
        g = uniform_multistage(rng, 3, 3)  # OR nodes have 3 alternatives
        fm = fold_multistage(g, p=2)
        run = simulate_andor_array(fm.graph, compare_capacity=1)
        # With capacity 1, the OR level needs 1 + (m-1 - 1) extra ticks:
        # first alternative seeds the accumulator, two folds remain.
        or_level_ticks = run.ticks_per_level[2]
        assert or_level_ticks == 2


class TestValidation:
    def test_rejects_nonserial(self):
        mc = matrix_chain_andor([2, 3, 4, 5])
        with pytest.raises(ValueError, match="serialize"):
            simulate_andor_array(mc.graph)

    def test_rejects_bad_capacity(self, rng):
        g = uniform_multistage(rng, 3, 2)
        fm = fold_multistage(g, p=2)
        with pytest.raises(ValueError):
            simulate_andor_array(fm.graph, compare_capacity=0)
