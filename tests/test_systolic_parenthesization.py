"""Unit tests for the Section-6.2 parenthesization arrays (Props. 2-3)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dp import solve_matrix_chain
from repro.systolic import (
    BroadcastParenthesizer,
    SystolicParenthesizer,
    t_d_recurrence,
    t_p_recurrence,
)


class TestRecurrences:
    def test_proposition_2_closed_form(self):
        # T_d(N) = N for all N.
        for n in range(1, 80):
            assert t_d_recurrence(n) == n

    def test_proposition_3_closed_form(self):
        # T_p(N) = 2N for all N.
        for n in range(1, 80):
            assert t_p_recurrence(n) == 2 * n

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            t_d_recurrence(0)
        with pytest.raises(ValueError):
            t_p_recurrence(-1)


class TestBroadcastMapping:
    def test_cost_matches_dp(self, rng):
        for _ in range(5):
            dims = list(rng.integers(1, 40, size=rng.integers(3, 10)))
            run = BroadcastParenthesizer().run(dims)
            assert run.order.cost == solve_matrix_chain(dims).cost

    def test_schedule_length_is_n(self, rng):
        for n in (2, 3, 5, 8, 13, 21):
            dims = list(rng.integers(1, 20, size=n + 1))
            run = BroadcastParenthesizer().run(dims)
            assert run.steps == n

    def test_processor_count(self, rng):
        dims = list(rng.integers(1, 9, size=7))  # N = 6
        run = BroadcastParenthesizer().run(dims)
        assert run.num_processors == 6 * 5 // 2

    def test_alternatives_total(self, rng):
        # Every (i, j, k) alternative evaluated exactly once: sum over
        # spans s of (n - s + 1)(s - 1).
        n = 6
        dims = list(rng.integers(1, 9, size=n + 1))
        run = BroadcastParenthesizer().run(dims)
        expected = sum((n - s + 1) * (s - 1) for s in range(2, n + 1))
        assert run.alternatives_evaluated == expected

    def test_per_size_completion_matches_recurrence(self, rng):
        n = 10
        dims = list(rng.integers(1, 9, size=n + 1))
        run = BroadcastParenthesizer().run(dims)
        comp = run.per_size_completion
        for size in range(1, n + 1):
            assert comp[size] == t_d_recurrence(size)


class TestSystolicMapping:
    def test_cost_matches_dp(self, rng):
        for _ in range(5):
            dims = list(rng.integers(1, 40, size=rng.integers(3, 10)))
            run = SystolicParenthesizer().run(dims)
            assert run.order.cost == solve_matrix_chain(dims).cost

    def test_schedule_length_is_2n(self, rng):
        for n in (2, 3, 5, 8, 13):
            dims = list(rng.integers(1, 20, size=n + 1))
            run = SystolicParenthesizer().run(dims)
            assert run.steps == 2 * n

    def test_per_size_completion_matches_recurrence(self, rng):
        n = 9
        dims = list(rng.integers(1, 9, size=n + 1))
        run = SystolicParenthesizer().run(dims)
        comp = run.per_size_completion
        for size in range(1, n + 1):
            assert comp[size] == t_p_recurrence(size)

    def test_exactly_twice_broadcast_time(self, rng):
        dims = list(rng.integers(1, 15, size=8))
        b = BroadcastParenthesizer().run(dims)
        s = SystolicParenthesizer().run(dims)
        assert s.steps == 2 * b.steps


class TestEdgeCases:
    def test_single_matrix(self):
        run = BroadcastParenthesizer().run([3, 4])
        assert run.order.cost == 0
        assert run.steps == 1  # T_d(1) = 1
        run2 = SystolicParenthesizer().run([3, 4])
        assert run2.steps == 2  # T_p(1) = 2

    def test_bad_dims(self):
        with pytest.raises(ValueError):
            BroadcastParenthesizer().run([5])
        with pytest.raises(ValueError):
            SystolicParenthesizer().run([5, -1, 3])

    def test_expression_is_executable(self, rng):
        from repro.dp import count_scalar_multiplications

        dims = list(rng.integers(1, 20, size=7))
        run = SystolicParenthesizer().run(dims)
        cost, _shape = count_scalar_multiplications(dims, run.order.expression)
        assert cost == run.order.cost


@given(
    dims=st.lists(st.integers(min_value=1, max_value=25), min_size=3, max_size=12),
)
@settings(max_examples=40, deadline=None)
def test_property_both_mappings_solve_eq6_on_schedule(dims):
    n = len(dims) - 1
    ref = solve_matrix_chain(dims).cost
    b = BroadcastParenthesizer().run(dims)
    s = SystolicParenthesizer().run(dims)
    assert b.order.cost == ref and b.steps == n
    assert s.order.cost == ref and s.steps == 2 * n
