"""Unit tests for the secondary optimization problem (stage-reduction order)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dp import (
    execute_reduction,
    optimal_reduction_order,
    reduction_cost,
    solve_backward,
    ternary_reduction_cost,
)
from repro.graphs import random_multistage
from repro.semiring import MIN_PLUS, chain_product


class TestOptimalOrder:
    def test_plan_fields(self, rng):
        g = random_multistage(rng, [2, 9, 2, 9, 2])
        plan = optimal_reduction_order(g)
        assert plan.stage_sizes == (2, 9, 2, 9, 2)
        assert plan.optimal_comparisons <= plan.naive_comparisons
        assert plan.savings >= 1.0

    def test_skewed_sizes_yield_big_savings(self, rng):
        g = random_multistage(rng, [100, 2, 100, 2, 100])
        plan = optimal_reduction_order(g)
        assert plan.savings > 2.5

    def test_uniform_sizes_indifferent(self, rng):
        g = random_multistage(rng, [4, 4, 4, 4])
        plan = optimal_reduction_order(g)
        # All orders cost the same for uniform m.
        assert plan.optimal_comparisons == plan.naive_comparisons

    def test_optimal_cost_matches_reduction_cost(self, rng):
        g = random_multistage(rng, [3, 7, 2, 8, 4])
        plan = optimal_reduction_order(g)
        assert plan.optimal_comparisons == reduction_cost(
            g.stage_sizes, plan.order.expression
        )


class TestExecuteReduction:
    def test_result_is_order_invariant(self, rng):
        g = random_multistage(rng, [2, 5, 3, 6, 2])
        plan = optimal_reduction_order(g)
        via_optimal = execute_reduction(g, plan.order.expression)
        naive: int | tuple = 1
        for i in range(2, g.num_layers + 1):
            naive = (naive, i)
        via_naive = execute_reduction(g, naive)
        assert np.allclose(via_optimal, via_naive)
        assert np.allclose(via_optimal, chain_product(MIN_PLUS, g.as_matrices()))

    def test_reduction_agrees_with_dp_optimum(self, rng):
        g = random_multistage(rng, [2, 4, 3, 5, 2])
        plan = optimal_reduction_order(g)
        reduced = execute_reduction(g, plan.order.expression)
        assert np.isclose(reduced.min(), solve_backward(g).optimum)

    def test_partial_expression_rejected(self, rng):
        g = random_multistage(rng, [2, 3, 4, 2])
        with pytest.raises(ValueError, match="whole graph"):
            execute_reduction(g, (1, 2))

    def test_noncontiguous_rejected(self, rng):
        g = random_multistage(rng, [2, 3, 4, 2])
        with pytest.raises(ValueError, match="non-contiguous"):
            execute_reduction(g, ((1, 3), 2))


class TestTernaryArgument:
    def test_binary_never_loses(self, rng):
        for _ in range(100):
            ms = rng.integers(2, 12, size=4)
            ternary, binary = ternary_reduction_cost(*ms)
            assert binary <= ternary

    def test_can_tie_at_two(self):
        # m_i = 2 everywhere: 16 vs min(2*2*4, 2*2*4) = 16.
        ternary, binary = ternary_reduction_cost(2, 2, 2, 2)
        assert ternary == binary == 16

    def test_size_one_can_favor_ternary(self):
        # The paper's bound assumes m_i >= 2; with degenerate size-1
        # stages the binary route can cost more.
        ternary, binary = ternary_reduction_cost(1, 5, 1, 5)
        assert ternary == 25
        assert binary == 10  # still wins here
        assert ternary_reduction_cost(5, 1, 5, 1)[1] <= 25

    def test_validation(self):
        with pytest.raises(ValueError):
            ternary_reduction_cost(0, 1, 1, 1)
