"""Unit tests for the ABFT checksum and invariant detectors."""

from __future__ import annotations

import numpy as np
import pytest

from repro.faults import (
    Detection,
    FaultDetected,
    abft_matmul,
    abft_matvec,
    bounds_matvec,
    traceback_in_range,
    values_match,
)
from repro.semiring import MIN_PLUS, PLUS_TIMES, matvec


def _clean_phase(rng, m=5):
    mat = rng.integers(0, 9, size=(m, m)).astype(float)
    x = rng.integers(0, 9, size=m).astype(float)
    y = matvec(MIN_PLUS, mat, x)
    return mat, x, y


class TestAbftMatvec:
    def test_clean_phase_passes(self, rng):
        mat, x, y = _clean_phase(rng)
        assert abft_matvec(MIN_PLUS, mat, x, y) is None

    def test_lowered_output_is_caught(self, rng):
        # Lowering any y_i changes the min-reduction: always detectable.
        mat, x, y = _clean_phase(rng)
        y = y.copy()
        y[2] = y.min() - 5.0
        det = abft_matvec(MIN_PLUS, mat, x, y, phase=3)
        assert det is not None
        assert det.detector == "abft_checksum" and det.phase == 3

    def test_corrupted_winner_is_caught(self):
        # Deterministic instance with a UNIQUE minimum: raising the
        # winner moves the min-reduction (a tied winner could mask it).
        mat = np.array([[0.0, 9.0], [9.0, 0.0]])
        x = np.array([1.0, 5.0])
        y = matvec(MIN_PLUS, mat, x)  # [1., 5.]
        y[0] += 97.0
        assert abft_matvec(MIN_PLUS, mat, x, y) is not None

    def test_idempotent_masking_is_documented_behavior(self, rng):
        # Raising a NON-winning entry leaves the min-reduction unchanged:
        # the checksum cannot see it (and neither can any downstream
        # output — the fault is benign).  The shadow oracle covers the
        # final-answer completeness instead.
        mat, x, y = _clean_phase(rng)
        y = y.copy()
        loser = int(np.argmax(y))
        if loser == int(np.argmin(y)):  # degenerate all-equal draw
            pytest.skip("degenerate instance: all outputs tie")
        y[loser] += 97.0
        assert abft_matvec(MIN_PLUS, mat, x, y) is None

    def test_non_idempotent_semiring_catches_any_change(self, rng):
        # Over plus-times the ⊕-reduction is a sum: every perturbation
        # of any entry moves it.
        mat = rng.integers(1, 5, size=(4, 4)).astype(float)
        x = rng.integers(1, 5, size=4).astype(float)
        y = matvec(PLUS_TIMES, mat, x)
        assert abft_matvec(PLUS_TIMES, mat, x, y) is None
        y[3] += 1.0
        assert abft_matvec(PLUS_TIMES, mat, x, y) is not None


class TestAbftMatmul:
    def test_clean_product_passes(self, rng):
        a = rng.integers(0, 9, size=(4, 4)).astype(float)
        b = rng.integers(0, 9, size=(4, 4)).astype(float)
        c = np.min(a[:, :, None] + b[None, :, :], axis=1)
        assert abft_matmul(MIN_PLUS, a, b, c) is None

    def test_lowered_cell_is_caught(self, rng):
        a = rng.integers(0, 9, size=(4, 4)).astype(float)
        b = rng.integers(0, 9, size=(4, 4)).astype(float)
        c = np.min(a[:, :, None] + b[None, :, :], axis=1)
        c[1, 2] = -50.0
        det = abft_matmul(MIN_PLUS, a, b, c)
        assert det is not None and "checksum" in det.message


class TestBoundsMatvec:
    def test_clean_phase_passes(self, rng):
        mat, x, y = _clean_phase(rng)
        assert bounds_matvec(MIN_PLUS, mat, x, y) is None

    def test_phantom_shortcut_violates_lower_bound(self, rng):
        # An output cheaper than every candidate cost is impossible —
        # caught even though it still "wins" a consistent reduction.
        mat, x, y = _clean_phase(rng)
        y = y.copy()
        y[0] = -100.0
        det = bounds_matvec(MIN_PLUS, mat, x, y, phase=1)
        assert det is not None
        assert det.detector == "bounds" and det.pe == 0

    def test_non_ordered_semiring_opts_out(self, rng):
        mat, x, y = _clean_phase(rng)
        assert bounds_matvec(PLUS_TIMES, mat, x, y * 0 - 100.0) is None


class TestTracebackInRange:
    def test_valid_pointers_pass(self):
        assert traceback_in_range([0, 3, 2], 4) is None

    def test_out_of_range_pointer_is_caught(self):
        det = traceback_in_range([0, 7, 2], 4, what="path")
        assert det is not None
        assert "path[1]" in det.message and det.pe == 1

    def test_non_integer_pointer_is_caught(self):
        assert traceback_in_range([0, 1.5], 4) is not None


class TestValuesMatch:
    def test_matching_infinities(self):
        assert values_match([1.0, np.inf], [1.0, np.inf])
        assert not values_match([np.inf], [-np.inf])
        assert not values_match([np.inf], [1.0])

    def test_shape_mismatch_is_a_mismatch(self):
        assert not values_match([1.0, 2.0], [1.0])

    def test_scalar_tolerance(self):
        assert values_match(1.0, 1.0 + 1e-12)
        assert not values_match(1.0, 1.1)


class TestDetectionPlumbing:
    def test_round_trip(self):
        det = Detection(detector="abft_checksum", message="boom", phase=2, pe=1)
        assert Detection.from_dict(det.to_dict()) == det

    def test_to_dict_drops_nones(self):
        d = Detection(detector="oracle", message="m").to_dict()
        assert "phase" not in d and "pe" not in d

    def test_fault_detected_message_joins_detections(self):
        exc = FaultDetected(
            [Detection(detector="a", message="first"),
             Detection(detector="b", message="second")]
        )
        assert "first" in str(exc) and "second" in str(exc)
        assert len(exc.detections) == 2
