"""Failure-injection tests: the fabric must catch wiring mistakes.

The two classic systolic-simulator bugs are same-tick forwarding and
double-driven nets.  The first is structurally impossible (reads always
return pre-tick state); the second raises.  These tests build small
deliberately-broken arrays and assert the discipline holds under
composition, not just on a lone register.
"""

from __future__ import annotations

import pytest

from repro.systolic import ProcessingElement, Register, SystolicError


class TestSameTickIsolation:
    def test_neighbour_reads_previous_tick_value(self):
        # A two-PE shift chain: PE1 must see PE0's *old* value even when
        # PE0 wrote first within the same tick.
        p0, p1 = ProcessingElement(0), ProcessingElement(1)
        r0, r1 = p0.reg("R", "old"), p1.reg("R", None)
        r0.set("new")
        r1.set(r0.value)  # the wire from PE0 to PE1
        p0.end_tick()
        p1.end_tick()
        assert r1.value == "old"  # previous-tick data moved, not same-tick
        assert r0.value == "new"

    def test_chain_moves_one_hop_per_tick(self):
        pes = [ProcessingElement(i) for i in range(4)]
        regs = [pe.reg("R", None) for pe in pes]
        regs[0].set("token")
        for pe in pes:
            pe.end_tick()
        for tick in range(1, 4):
            for i in range(3, 0, -1):
                regs[i].set(regs[i - 1].value)
            regs[0].set(None)
            for pe in pes:
                pe.end_tick()
            assert regs[tick].value == "token"
            assert all(
                regs[j].value != "token" for j in range(4) if j != tick
            )

    def test_write_order_within_tick_is_irrelevant(self):
        # Forward and reverse PE iteration must produce identical state.
        def run(order):
            pes = [ProcessingElement(i) for i in range(3)]
            regs = [pe.reg("R", i * 10) for i, pe in enumerate(pes)]
            for i in order:
                if i > 0:
                    regs[i].set(regs[i - 1].value)
            for pe in pes:
                pe.end_tick()
            return [r.value for r in regs]

        assert run([1, 2]) == run([2, 1])


class TestDoubleDriveDetection:
    def test_two_drivers_same_tick(self):
        pe = ProcessingElement(0)
        r = pe.reg("BUS")
        r.set(1)
        with pytest.raises(SystolicError, match="driven twice"):
            r.set(2)

    def test_error_names_the_net(self):
        pe = ProcessingElement(7)
        r = pe.reg("H")
        r.set(0)
        with pytest.raises(SystolicError, match="P7.H"):
            r.set(1)

    def test_recovers_after_latch(self):
        r = Register("wire")
        r.set(1)
        r.latch()
        r.set(2)  # legal: new tick
        r.latch()
        assert r.value == 2


class TestAccountingInvariants:
    def test_op_count_independent_of_busy_ticks(self):
        pe = ProcessingElement(0)
        pe.count_op(5)
        pe.end_tick()
        pe.end_tick()  # idle tick
        pe.count_op()
        pe.end_tick()
        assert pe.op_count == 6
        assert pe.busy_ticks == 2

    def test_shipped_arrays_have_consistent_accounting(self, rng):
        # Busy ticks can never exceed wall ticks; ops bound busy ticks.
        from repro.graphs import single_source_sink, traffic_light_problem
        from repro.systolic import (
            FeedbackSystolicArray,
            MeshMatrixMultiplier,
            PipelinedMatrixStringArray,
        )

        reports = [
            PipelinedMatrixStringArray().run_graph(
                single_source_sink(rng, 3, 4)
            ).report,
            FeedbackSystolicArray().run(traffic_light_problem(rng, 5, 4)).report,
            MeshMatrixMultiplier().run(
                rng.uniform(0, 9, (4, 4)), rng.uniform(0, 9, (4, 4))
            ).report,
        ]
        for rep in reports:
            assert all(b <= rep.wall_ticks for b in rep.pe_busy_ticks), rep.design
            assert all(
                ops >= busy for ops, busy in zip(rep.pe_op_counts, rep.pe_busy_ticks)
            ), rep.design
            assert 0.0 < rep.busy_fraction <= 1.0
