"""Unit tests for the generalized triangular-recurrence array engine."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dp import random_obst_weights, solve_matrix_chain, solve_obst
from repro.systolic import (
    BroadcastParenthesizer,
    MatrixChainSpec,
    ObstSpec,
    SystolicParenthesizer,
    TriangularArray,
    obst_t_d,
    t_d_recurrence,
    t_p_recurrence,
)


class TestMatrixChainSpec:
    def test_values_match_dp(self, rng):
        dims = list(rng.integers(1, 30, size=7))
        run = TriangularArray("broadcast").run(MatrixChainSpec(dims))
        assert run.value == solve_matrix_chain(dims).cost

    def test_schedules_match_dedicated_engine(self, rng):
        # The generalized engine must reproduce the Prop-2/3 schedules
        # of the dedicated parenthesizer exactly.
        for n in (3, 5, 8, 12):
            dims = list(rng.integers(1, 20, size=n + 1))
            gb = TriangularArray("broadcast").run(MatrixChainSpec(dims))
            gs = TriangularArray("systolic").run(MatrixChainSpec(dims))
            db = BroadcastParenthesizer().run(dims)
            ds = SystolicParenthesizer().run(dims)
            assert gb.steps == db.steps == t_d_recurrence(n)
            assert gs.steps == ds.steps == t_p_recurrence(n)
            assert gb.value == db.order.cost
            assert gs.value == ds.order.cost

    def test_subproblem_values_all_correct(self, rng):
        dims = list(rng.integers(1, 20, size=6))
        run = TriangularArray("broadcast").run(MatrixChainSpec(dims))
        for (i, j), v in run.values.items():
            assert v == solve_matrix_chain(dims[i - 1 : j + 1]).cost


class TestObstSpec:
    def test_value_matches_dp(self):
        for seed in range(5):
            p, q = random_obst_weights(np.random.default_rng(seed), 6)
            run = TriangularArray("broadcast").run(ObstSpec(p, q))
            assert run.value == pytest.approx(solve_obst(p, q).cost)

    def test_broadcast_schedule_is_n_plus_1(self):
        for n in (1, 2, 4, 7, 12):
            p, q = random_obst_weights(np.random.default_rng(n), n)
            run = TriangularArray("broadcast").run(ObstSpec(p, q))
            assert run.steps == obst_t_d(n) == n + 1

    def test_systolic_schedule_doubles(self):
        for n in (2, 5, 9):
            p, q = random_obst_weights(np.random.default_rng(n), n)
            b = TriangularArray("broadcast").run(ObstSpec(p, q))
            s = TriangularArray("systolic").run(ObstSpec(p, q))
            assert pytest.approx(s.value) == b.value
            # Systolic transfer doubles the per-halving cost, same shape
            # as Prop. 3: 2n + O(1).
            assert 2 * n <= s.steps <= 2 * n + 3

    def test_decisions_reconstruct_roots(self):
        p, q = random_obst_weights(np.random.default_rng(3), 5)
        run = TriangularArray("broadcast").run(ObstSpec(p, q))
        sol = solve_obst(p, q)
        # The winning alternative at the goal is the optimal root
        # (modulo cost ties): alternative index r - i.
        i, j = 1, 5
        chosen_root = i + run.decisions[(i, j)]
        alt_cost = (
            run.values[(i, chosen_root - 1)]
            + run.values[(chosen_root + 1, j)]
        )
        best_cost = run.values[(i, sol.root[(i, j)] - 1)] + run.values[(sol.root[(i, j)] + 1, j)]
        assert alt_cost == pytest.approx(best_cost)

    def test_zero_keys(self):
        run = TriangularArray("broadcast").run(ObstSpec([], [1.0]))
        assert run.value == pytest.approx(1.0)
        assert run.num_processors == 0


class TestEngineOptions:
    def test_capacity_one_slows_schedule(self, rng):
        dims = list(rng.integers(1, 20, size=9))
        fast = TriangularArray("broadcast", alternatives_per_step=2).run(
            MatrixChainSpec(dims)
        )
        slow = TriangularArray("broadcast", alternatives_per_step=1).run(
            MatrixChainSpec(dims)
        )
        assert slow.steps > fast.steps
        assert slow.value == fast.value

    def test_large_capacity_hits_dependency_floor(self, rng):
        dims = list(rng.integers(1, 20, size=9))
        run = TriangularArray("broadcast", alternatives_per_step=100).run(
            MatrixChainSpec(dims)
        )
        # With unlimited fold capacity only the dependency chain remains:
        # ceil(log2) halvings, each 1 step.
        assert run.steps <= t_d_recurrence(8)

    def test_validation(self):
        with pytest.raises(ValueError, match="transfer"):
            TriangularArray("warp")
        with pytest.raises(ValueError):
            TriangularArray(alternatives_per_step=0)

    def test_alternatives_counted_once(self, rng):
        dims = list(rng.integers(1, 20, size=6))
        run = TriangularArray("broadcast").run(MatrixChainSpec(dims))
        n = 5
        expected = sum((n - s + 1) * (s - 1) for s in range(2, n + 1))
        assert run.alternatives_evaluated == expected


@given(
    n=st.integers(min_value=1, max_value=8),
    seed=st.integers(min_value=0, max_value=100),
)
@settings(max_examples=25, deadline=None)
def test_property_obst_array_equals_dp(n, seed):
    p, q = random_obst_weights(np.random.default_rng(seed), n)
    run = TriangularArray("broadcast").run(ObstSpec(p, q))
    assert run.value == pytest.approx(solve_obst(p, q).cost)
    assert run.steps == n + 1
