"""Timeline sink: busy accounting, phases, PU breakdowns, renderings.

The load-bearing invariant — for every shipped design, the timeline the
sink reconstructs from live bus events agrees *exactly* with the
:class:`RunReport` busy accounting — is checked both on the fixed
coverage set and property-style on random instances.
"""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.metrics import eq9_pu
from repro.graphs import fig1b_problem, single_source_sink, traffic_light_problem
from repro.systolic import (
    BroadcastMatrixStringArray,
    BroadcastParenthesizer,
    FeedbackSystolicArray,
    MatrixChainSpec,
    MeshMatrixMultiplier,
    PipelinedMatrixStringArray,
    SystolicParenthesizer,
    TriangularArray,
)
from repro.systolic.feedback_array import feedback_pu
from repro.telemetry import TimelineSink, paper_reference_pu


def _matrix_string(rng, n, m):
    mats = [rng.uniform(0, 9, size=(m, m)) for _ in range(n - 1)]
    mats.append(rng.uniform(0, 9, size=(m, 1)))
    return mats


def _sinked_design_runs():
    """One run per shipped design, traced through a live TimelineSink."""
    rng = np.random.default_rng(11)
    dims = (8, 30, 35, 15, 5, 10)
    chain = MatrixChainSpec(dims)
    runs = []

    def run(name, fn):
        timeline = TimelineSink(name)
        res = fn(timeline)
        runs.append((name, res, timeline))

    run("pipelined", lambda s: PipelinedMatrixStringArray().run(
        _matrix_string(rng, 4, 3), sinks=[s]))
    run("broadcast", lambda s: BroadcastMatrixStringArray().run(
        _matrix_string(rng, 4, 3), sinks=[s]))
    run("feedback", lambda s: FeedbackSystolicArray().run(
        fig1b_problem(), sinks=[s]))
    run("mesh", lambda s: MeshMatrixMultiplier().run(
        rng.uniform(0, 9, size=(3, 4)), rng.uniform(0, 9, size=(4, 2)),
        sinks=[s]))
    run("triangular-broadcast", lambda s: TriangularArray("broadcast").run(
        chain, sinks=[s]))
    run("triangular-systolic", lambda s: TriangularArray("systolic").run(
        chain, sinks=[s]))
    run("paren-broadcast", lambda s: BroadcastParenthesizer().run(
        dims, sinks=[s]))
    run("paren-systolic", lambda s: SystolicParenthesizer().run(
        dims, sinks=[s]))
    return runs


class TestBusyAccounting:
    def test_busy_ticks_match_report_every_design(self):
        for name, res, timeline in _sinked_design_runs():
            report = res.report
            got = timeline.busy_ticks_per_pe(report.num_pes)
            assert got == report.pe_busy_ticks, name
            assert len(timeline.busy_cells()) == sum(report.pe_busy_ticks), name

    def test_busy_fraction_matches_report_every_design(self):
        for name, res, timeline in _sinked_design_runs():
            report = res.report
            got = timeline.busy_fraction(
                wall_ticks=report.wall_ticks, num_pes=report.num_pes
            )
            assert got == pytest.approx(report.busy_fraction), name

    def test_phase_table_busy_sums_to_total(self):
        for name, res, timeline in _sinked_design_runs():
            table = timeline.phase_table(
                iterations=res.report.iterations, num_pes=res.report.num_pes
            )
            assert table, name
            assert sum(r["busy_ticks"] for r in table) == len(
                timeline.busy_cells()
            ), name
            for row in table:
                assert 0.0 <= row["occupancy"] <= 1.0, name

    def test_intervals_cover_occupied_ticks(self):
        for name, res, timeline in _sinked_design_runs():
            occupied = timeline.occupied_cells()
            for pe in range(res.report.num_pes):
                ticks = {t for p, t in occupied if p == pe}
                from_intervals = {
                    t
                    for lo, hi in timeline.intervals(pe)
                    for t in range(lo, hi + 1)
                }
                assert from_intervals == ticks, (name, pe)


class TestBusyAccountingProperty:
    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        n=st.integers(2, 5),
        m=st.integers(2, 5),
    )
    def test_pipelined_random_instances(self, seed, n, m):
        rng = np.random.default_rng(seed)
        timeline = TimelineSink()
        res = PipelinedMatrixStringArray().run(
            _matrix_string(rng, n, m), backend="rtl", sinks=[timeline]
        )
        assert timeline.busy_ticks_per_pe(res.report.num_pes) == res.report.pe_busy_ticks

    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        n=st.integers(2, 5),
        m=st.integers(2, 5),
    )
    def test_feedback_random_instances(self, seed, n, m):
        rng = np.random.default_rng(seed)
        problem = traffic_light_problem(rng, n, m)
        timeline = TimelineSink()
        res = FeedbackSystolicArray().run(problem, backend="rtl", sinks=[timeline])
        assert timeline.busy_ticks_per_pe(res.report.num_pes) == res.report.pe_busy_ticks

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 10_000), n=st.integers(3, 6))
    def test_paren_random_instances(self, seed, n):
        rng = np.random.default_rng(seed)
        dims = tuple(int(d) for d in rng.integers(2, 50, size=n + 1))
        timeline = TimelineSink()
        res = SystolicParenthesizer().run(dims, backend="rtl", sinks=[timeline])
        assert timeline.busy_ticks_per_pe(res.report.num_pes) == res.report.pe_busy_ticks


class TestTelemetryIsFree:
    def test_results_identical_with_and_without_sinks(self):
        # Subscribing telemetry must not perturb the computation: the
        # answers and the report are byte-identical either way.
        rng = np.random.default_rng(5)
        mats = _matrix_string(rng, 4, 3)
        plain = PipelinedMatrixStringArray().run(mats, backend="rtl")
        traced = PipelinedMatrixStringArray().run(
            mats, backend="rtl", sinks=[TimelineSink()]
        )
        np.testing.assert_array_equal(plain.value, traced.value)
        assert plain.report == traced.report

        problem = fig1b_problem()
        plain = FeedbackSystolicArray().run(problem, backend="rtl")
        traced = FeedbackSystolicArray().run(
            problem, backend="rtl", sinks=[TimelineSink()]
        )
        assert plain.optimum == traced.optimum
        assert plain.path == traced.path
        assert plain.report == traced.report

    def test_sinks_force_rtl_backend(self):
        rng = np.random.default_rng(5)
        res = PipelinedMatrixStringArray().run(
            _matrix_string(rng, 4, 3), sinks=[TimelineSink()]
        )
        assert res.report.backend == "rtl"


class TestPaperPU:
    @pytest.mark.parametrize("n_layers,m", [(4, 3), (8, 3), (8, 8)])
    def test_eq9_matches_measured_on_reference_sizes(self, n_layers, m):
        # Acceptance criterion: per-phase measured PU from the timeline
        # matches eq. (9) under the measured iteration convention on the
        # paper's single-source/sink shape (same tolerance as the
        # eq. (9) benchmark).
        rng = np.random.default_rng(n_layers * 31 + m)
        graph = single_source_sink(rng, n_layers - 1, m)
        timeline = TimelineSink()
        res = PipelinedMatrixStringArray().run_graph(graph, sinks=[timeline])
        pu = timeline.pu_breakdown(res.report)
        assert "paper_pu" in pu
        assert pu["paper_pu"] == pytest.approx(eq9_pu(n_layers, m))
        assert pu["measured_pu"] == pytest.approx(
            pu["paper_pu_measured_convention"], abs=2e-4
        )

    @pytest.mark.parametrize("n_stages,m", [(4, 3), (8, 5), (6, 5)])
    def test_fig5_form_matches_measured_exactly(self, n_stages, m):
        rng = np.random.default_rng(n_stages * 17 + m)
        problem = traffic_light_problem(rng, n_stages, m)
        timeline = TimelineSink()
        res = FeedbackSystolicArray().run(problem, sinks=[timeline])
        pu = timeline.pu_breakdown(res.report)
        assert pu["paper_pu"] == feedback_pu(n_stages, m)
        assert pu["measured_pu"] == pu["paper_pu"]

    def test_no_closed_form_for_dense_instances(self):
        # A dense matrix string is not the single-source/sink shape, so
        # no eq. (9) claim is made for it.
        rng = np.random.default_rng(2)
        timeline = TimelineSink()
        res = PipelinedMatrixStringArray().run(
            _matrix_string(rng, 4, 3), sinks=[timeline]
        )
        assert paper_reference_pu(
            res.report, num_phases=len(timeline.phases())
        ) == {}
        pu = timeline.pu_breakdown(res.report)
        assert "paper_pu" not in pu
        assert pu["measured_pu"] == res.report.processor_utilization


class TestRenderings:
    def _pipelined(self):
        rng = np.random.default_rng(9)
        timeline = TimelineSink("fig3-pipelined")
        res = PipelinedMatrixStringArray().run(
            _matrix_string(rng, 4, 3), sinks=[timeline]
        )
        return res, timeline

    def test_heatmap_shape_and_phase_ruler(self):
        res, timeline = self._pipelined()
        out = timeline.render_heatmap()
        lines = out.splitlines()
        assert lines[0].startswith("space-time occupancy:")
        pe_rows = [ln for ln in lines if ln.startswith("P")]
        assert len(pe_rows) == res.report.num_pes
        assert lines[-1].startswith("phases: ")
        assert "|" in lines[1]  # ruler row marks phase starts

    def test_heatmap_bins_long_schedules(self):
        res, timeline = self._pipelined()
        narrow = timeline.render_heatmap(max_width=4)
        for ln in narrow.splitlines():
            if ln.startswith("P"):
                assert len(ln.split(" ", 1)[1]) <= 4

    def test_heatmap_empty_sink(self):
        assert TimelineSink().render_heatmap() == "(no PE activity traced)"

    def test_spacetime_delegates_to_classic_renderer(self):
        res, timeline = self._pipelined()
        out = timeline.render_spacetime(res.report.num_pes)
        assert out.splitlines()[1].startswith("P1")

    def test_to_json_is_jsonable_and_complete(self):
        res, timeline = self._pipelined()
        record = timeline.to_json(res.report)
        json.dumps(record)
        assert record["kind"] == "telemetry_timeline"
        assert record["design"] == "fig3-pipelined"
        assert len(record["pes"]) == res.report.num_pes
        assert [p["busy_ticks"] for p in record["pes"]] == list(
            res.report.pe_busy_ticks
        )
        assert record["pu"]["measured_pu"] == res.report.processor_utilization
        assert len(record["phases"]) == len(timeline.phases())
