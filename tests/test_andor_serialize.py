"""Unit tests for the Figure-8 serialization transform."""

from __future__ import annotations

import numpy as np
import pytest

from repro.andor import (
    NodeKind,
    bottom_up,
    fold_multistage,
    matrix_chain_andor,
    serialize,
)
from repro.graphs import uniform_multistage


class TestSerialize:
    def test_output_is_serial(self, rng):
        for size in (4, 6, 9):
            dims = list(rng.integers(1, 20, size=size))
            ser = serialize(matrix_chain_andor(dims).graph)
            assert ser.graph.is_serial()

    def test_values_preserved_node_for_node(self, rng):
        dims = list(rng.integers(1, 20, size=7))
        mc = matrix_chain_andor(dims)
        orig_vals = mc.graph.evaluate()
        ser = serialize(mc.graph)
        new_vals = ser.graph.evaluate()
        for old, new in ser.node_map.items():
            assert new_vals[new] == orig_vals[old]

    def test_levels_unchanged(self, rng):
        dims = list(rng.integers(1, 20, size=6))
        mc = matrix_chain_andor(dims)
        ser = serialize(mc.graph)
        assert ser.original_levels == ser.serialized_levels
        old_levels = mc.graph.levels()
        new_levels = ser.graph.levels()
        for old, new in ser.node_map.items():
            assert new_levels[new] == old_levels[old]

    def test_serial_graph_needs_no_dummies(self, rng):
        g = uniform_multistage(rng, 5, 2)
        fm = fold_multistage(g, p=2)
        assert fm.graph.is_serial()
        ser = serialize(fm.graph)
        assert ser.dummies_added == 0
        assert len(ser.graph) == len(fm.graph)

    def test_dummy_count_for_four_matrix_chain(self):
        # Figure 8 setting: N = 4 matrices.
        mc = matrix_chain_andor([2, 3, 4, 5, 6])
        ser = serialize(mc.graph)
        assert ser.dummies_added > 0
        # Each dummy is a single-child OR labelled as such.
        dummies = [
            n
            for n in ser.graph.nodes
            if isinstance(n.label, tuple) and n.label[:1] == ("dummy",)
        ]
        assert len(dummies) == ser.dummies_added
        assert all(len(n.children) == 1 for n in dummies)

    def test_dummy_chains_are_shared(self, rng):
        # A deep leaf consumed by several parents gets one chain, not one
        # per parent: dummies <= sum over arcs of (span - 1) strictly.
        dims = list(rng.integers(1, 9, size=8))
        mc = matrix_chain_andor(dims)
        levels = mc.graph.levels()
        naive = sum(
            int(levels[n.id]) - int(levels[c]) - 1
            for n in mc.graph.nodes
            for c in n.children
        )
        ser = serialize(mc.graph)
        assert ser.dummies_added < naive

    def test_all_arcs_adjacent_after(self, rng):
        dims = list(rng.integers(1, 15, size=6))
        ser = serialize(matrix_chain_andor(dims).graph)
        levels = ser.graph.levels()
        for node in ser.graph.nodes:
            for c in node.children:
                assert levels[node.id] - levels[c] == 1

    def test_idempotent(self, rng):
        dims = list(rng.integers(1, 15, size=6))
        once = serialize(matrix_chain_andor(dims).graph)
        twice = serialize(once.graph)
        assert twice.dummies_added == 0
        assert len(twice.graph) == len(once.graph)
