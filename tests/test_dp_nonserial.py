"""Unit + property tests for nonserial variable elimination (Section 6.1)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dp import (
    NonserialObjective,
    banded_objective,
    brute_force_minimum,
    eliminate,
    eq40_step_count,
    group_variables_to_serial,
    solve_backward,
)


def small_banded(seed: int, sizes):
    return banded_objective(np.random.default_rng(seed), sizes)


class TestObjective:
    def test_variables_in_appearance_order(self, rng):
        obj = banded_objective(rng, [2, 3, 2, 3])
        assert obj.variables == ("V1", "V2", "V3", "V4")

    def test_term_table_shape(self, rng):
        obj = banded_objective(rng, [2, 3, 4])
        tvars, table = obj.term_table(0)
        assert tvars == ("V1", "V2", "V3")
        assert table.shape == (2, 3, 4)

    def test_unknown_variable_rejected(self):
        with pytest.raises(ValueError, match="unknown"):
            NonserialObjective(
                domains={"a": np.array([1.0])},
                terms=((("a", "b"), lambda x, y: x + y),),
            )

    def test_empty_terms_rejected(self):
        with pytest.raises(ValueError):
            NonserialObjective(domains={"a": np.array([1.0])}, terms=())

    def test_evaluate_sums_terms(self, rng):
        obj = banded_objective(rng, [2, 2, 2, 2])
        val = obj.evaluate({"V1": 0, "V2": 1, "V3": 0, "V4": 1})
        _, t0 = obj.term_table(0)
        _, t1 = obj.term_table(1)
        assert np.isclose(val, t0[0, 1, 0] + t1[1, 0, 1])


class TestEliminate:
    def test_matches_brute_force(self):
        for seed in range(4):
            obj = small_banded(seed, [3, 2, 3, 2])
            res = eliminate(obj)
            ref, _ = brute_force_minimum(obj)
            assert np.isclose(res.optimum, ref)

    def test_assignment_achieves_optimum(self):
        obj = small_banded(9, [2, 3, 2, 3, 2])
        res = eliminate(obj)
        assert np.isclose(obj.evaluate(res.assignment), res.optimum)

    def test_step_count_matches_eq40(self):
        sizes = [3, 4, 2, 5, 3]
        obj = small_banded(2, sizes)
        res = eliminate(obj)
        assert res.total_steps == eq40_step_count(sizes)

    def test_eq40_closed_form(self):
        sizes = [2, 3, 4, 5]
        expected = 2 * 3 * 4 + 3 * 4 * 5 + 4 * 5
        assert eq40_step_count(sizes) == expected

    def test_eq40_needs_three_variables(self):
        with pytest.raises(ValueError):
            eq40_step_count([2, 3])

    def test_custom_order_same_optimum(self):
        obj = small_banded(5, [2, 3, 2, 3])
        natural = eliminate(obj)
        reversed_order = eliminate(obj, order=("V4", "V3", "V2", "V1"))
        assert np.isclose(natural.optimum, reversed_order.optimum)

    def test_bad_order_rejected(self):
        obj = small_banded(1, [2, 2, 2])
        with pytest.raises(ValueError, match="permutation"):
            eliminate(obj, order=("V1", "V2"))

    def test_joint_tail_variants_agree(self):
        obj = small_banded(3, [2, 3, 2, 3])
        full = eliminate(obj, joint_tail=1)
        pair = eliminate(obj, joint_tail=2)
        triple = eliminate(obj, joint_tail=3)
        assert np.isclose(full.optimum, pair.optimum)
        assert np.isclose(pair.optimum, triple.optimum)

    def test_bad_joint_tail_rejected(self):
        obj = small_banded(1, [2, 2, 2])
        with pytest.raises(ValueError):
            eliminate(obj, joint_tail=0)
        with pytest.raises(ValueError):
            eliminate(obj, joint_tail=4)

    def test_elimination_order_hurts_steps(self):
        # Eliminating a middle variable first inflates the joint tables.
        sizes = [4, 4, 4, 4, 4]
        obj = small_banded(7, sizes)
        natural = eliminate(obj)
        bad = eliminate(obj, order=("V3", "V1", "V2", "V4", "V5"))
        assert np.isclose(natural.optimum, bad.optimum)
        assert bad.total_steps > natural.total_steps

    def test_max_table_size_reported(self):
        sizes = [3, 4, 5]
        obj = small_banded(0, sizes)
        res = eliminate(obj)
        assert res.max_table_size == 3 * 4 * 5

    @given(
        sizes=st.lists(st.integers(min_value=2, max_value=4), min_size=3, max_size=5),
        seed=st.integers(min_value=0, max_value=100),
    )
    @settings(max_examples=25, deadline=None)
    def test_property_elimination_optimal(self, sizes, seed):
        obj = small_banded(seed, sizes)
        res = eliminate(obj)
        ref, _ = brute_force_minimum(obj)
        assert np.isclose(res.optimum, ref)
        assert np.isclose(obj.evaluate(res.assignment), res.optimum)
        assert res.total_steps == eq40_step_count(sizes)


class TestNonBandedObjectives:
    def papers_example(self, rng):
        # min {g1(X1,X2,X4) + g2(X3,X4) + g3(X2,X5)} — Section 2.2.
        domains = {f"X{i}": np.arange(2.0) for i in range(1, 6)}
        t1 = rng.uniform(0, 9, (2, 2, 2))
        t2 = rng.uniform(0, 9, (2, 2))
        t3 = rng.uniform(0, 9, (2, 2))
        return NonserialObjective(
            domains=domains,
            terms=(
                (("X1", "X2", "X4"), lambda a, b, c: t1[a.astype(int), b.astype(int), c.astype(int)]),
                (("X3", "X4"), lambda a, b: t2[a.astype(int), b.astype(int)]),
                (("X2", "X5"), lambda a, b: t3[a.astype(int), b.astype(int)]),
            ),
        )

    def test_papers_nonserial_example(self, rng):
        obj = self.papers_example(rng)
        res = eliminate(obj)
        ref, _ = brute_force_minimum(obj)
        assert np.isclose(res.optimum, ref)
        assert np.isclose(obj.evaluate(res.assignment), res.optimum)

    def test_min_degree_order_works(self, rng):
        obj = self.papers_example(rng)
        order = obj.interaction_graph().min_degree_order()
        res = eliminate(obj, order=order, joint_tail=1)
        ref, _ = brute_force_minimum(obj)
        assert np.isclose(res.optimum, ref)


class TestGroupingTransform:
    def test_equivalence_with_elimination(self):
        for seed in range(3):
            obj = small_banded(seed, [3, 2, 3, 2])
            graph, _states = group_variables_to_serial(obj)
            serial = solve_backward(graph)
            direct = eliminate(obj)
            assert np.isclose(serial.optimum, direct.optimum)

    def test_composite_state_sizes(self, rng):
        obj = banded_objective(rng, [2, 3, 4])
        graph, states = group_variables_to_serial(obj)
        assert graph.stage_sizes == (2 * 3, 3 * 4)
        assert len(states[0]) == 6
        assert len(states[1]) == 12

    def test_inconsistent_composites_blocked(self, rng):
        # Edges between composites that disagree on the shared variable
        # must carry the semiring zero (no path through them).
        obj = banded_objective(rng, [2, 2, 2])
        graph, states = group_variables_to_serial(obj)
        for a, row in enumerate(states[0]):
            for b, col in enumerate(states[1]):
                if row[1] != col[0]:
                    assert np.isinf(graph.costs[0][a, b])
                else:
                    assert np.isfinite(graph.costs[0][a, b])

    def test_serial_path_decodes_to_assignment(self, rng):
        obj = banded_objective(rng, [3, 2, 3, 2])
        graph, states = group_variables_to_serial(obj)
        sol = solve_backward(graph)
        # Decode composite path back to original variable indices.
        assign = {}
        for stage, node in enumerate(sol.path.nodes):
            a, b = states[stage][node]
            assign[f"V{stage + 1}"] = a
            assign[f"V{stage + 2}"] = b
        assert np.isclose(obj.evaluate(assign), sol.optimum)

    def test_rejects_non_banded(self, rng):
        domains = {"a": np.arange(2.0), "b": np.arange(2.0)}
        obj = NonserialObjective(
            domains=domains, terms=((("a", "b"), lambda x, y: x + y),)
        )
        with pytest.raises(ValueError):
            group_variables_to_serial(obj)
