"""Unit tests for the AND-tree structures behind the D&C analysis."""

from __future__ import annotations

import math

import pytest

from repro.dnc import balanced_tree, schedule_tree_height


class TestBalancedTree:
    def test_leaf_count(self):
        for n in (1, 2, 5, 16, 33):
            assert balanced_tree(n).num_leaves == n

    def test_internal_count(self):
        for n in (1, 2, 5, 16, 33):
            assert balanced_tree(n).count_internal() == n - 1

    def test_height_is_ceil_log2(self):
        for n in (1, 2, 3, 4, 7, 8, 9, 100):
            expected = math.ceil(math.log2(n)) if n > 1 else 0
            assert balanced_tree(n).height() == expected

    def test_depth_histogram_sums_to_internal(self):
        tree = balanced_tree(16)
        hist = tree.iter_internal_by_depth()
        assert sum(hist.values()) == 15
        assert hist[1] == 8  # lowest level pairs all leaves

    def test_invalid(self):
        with pytest.raises(ValueError):
            balanced_tree(0)


class TestScheduleTreeHeight:
    def test_many_processors_balanced(self):
        for n in (2, 8, 16, 31):
            assert schedule_tree_height(n, n) == math.ceil(math.log2(n))

    def test_single_processor_linear_chain_still_shallowish(self):
        # Leftmost pairing with K=1 pairs (0,1), then... produces a
        # deeper tree than balanced but height <= N - 1.
        h = schedule_tree_height(8, 1)
        assert math.ceil(math.log2(8)) <= h <= 7

    def test_height_monotone_in_processors(self):
        n = 64
        heights = [schedule_tree_height(n, k) for k in (1, 2, 8, 32)]
        assert heights == sorted(heights, reverse=True)

    def test_validation(self):
        with pytest.raises(ValueError):
            schedule_tree_height(0, 1)
        with pytest.raises(ValueError):
            schedule_tree_height(4, 0)

    def test_single_leaf(self):
        assert schedule_tree_height(1, 3) == 0
