"""Unit + property tests for the optimal-binary-search-tree substrate."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dp import (
    brute_force_obst,
    expected_depth_cost,
    random_obst_weights,
    solve_obst,
)


class TestSolve:
    def test_clrs_instance(self):
        # CLRS 3e, Figure 15.9: known optimum 2.75.
        p = [0.15, 0.10, 0.05, 0.10, 0.20]
        q = [0.05, 0.10, 0.05, 0.05, 0.05, 0.10]
        sol = solve_obst(p, q)
        assert sol.cost == pytest.approx(2.75)
        assert sol.root[(1, 5)] == 2  # k2 is the optimal root

    def test_single_key(self):
        sol = solve_obst([0.5], [0.25, 0.25])
        # Tree: root k1 depth 1, both misses depth 2.
        assert sol.cost == pytest.approx(0.5 * 1 + 0.25 * 2 + 0.25 * 2)
        assert sol.tree == (1, None, None)

    def test_zero_keys(self):
        sol = solve_obst([], [1.0])
        assert sol.cost == pytest.approx(1.0)
        assert sol.tree is None

    def test_tree_realizes_cost(self, rng):
        for seed in range(5):
            p, q = random_obst_weights(np.random.default_rng(seed), 6)
            sol = solve_obst(p, q)
            assert expected_depth_cost(p, q, sol.tree) == pytest.approx(sol.cost)

    def test_matches_brute_force(self):
        for seed in range(5):
            p, q = random_obst_weights(np.random.default_rng(seed), 5)
            sol = solve_obst(p, q)
            bf, _tree = brute_force_obst(p, q)
            assert sol.cost == pytest.approx(bf)

    def test_skewed_weights_pull_root(self):
        # Overwhelming weight on key 4 makes it the root.
        p = [0.01, 0.01, 0.01, 0.9]
        q = [0.01] * 5
        sol = solve_obst(p, q)
        assert sol.root[(1, 4)] == 4

    def test_validation(self):
        with pytest.raises(ValueError):
            solve_obst([0.5], [0.5])  # wrong q length
        with pytest.raises(ValueError):
            solve_obst([-0.1], [0.5, 0.6])


class TestOracle:
    def test_depth_cost_rejects_bad_tree(self):
        p = [0.5]
        q = [0.25, 0.25]
        with pytest.raises(ValueError):
            expected_depth_cost(p, q, (2, None, None))  # root out of span
        with pytest.raises(ValueError):
            expected_depth_cost(p, q, None)  # leaf cannot cover a key

    def test_random_weights_shape(self, rng):
        p, q = random_obst_weights(rng, 7)
        assert p.shape == (7,) and q.shape == (8,)
        assert p.sum() + q.sum() == pytest.approx(1.0)

    def test_unnormalized(self, rng):
        p, q = random_obst_weights(rng, 3, normalize=False)
        assert (p <= 1.0).all() and (q <= 1.0).all()


@given(
    n=st.integers(min_value=1, max_value=6),
    seed=st.integers(min_value=0, max_value=200),
)
@settings(max_examples=30, deadline=None)
def test_property_dp_is_optimal(n, seed):
    p, q = random_obst_weights(np.random.default_rng(seed), n)
    sol = solve_obst(p, q)
    bf, _ = brute_force_obst(p, q)
    assert sol.cost == pytest.approx(bf)
    assert expected_depth_cost(p, q, sol.tree) == pytest.approx(sol.cost)
