"""Unit tests for the 2-D mesh matrix-multiplication array."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.semiring import MAX_PLUS, MIN_PLUS, PLUS_TIMES, matmul
from repro.systolic import MeshMatrixMultiplier, SystolicError, mesh_cycles


class TestCorrectness:
    def test_square_min_plus(self, rng):
        a = rng.uniform(0, 9, (5, 5))
        b = rng.uniform(0, 9, (5, 5))
        res = MeshMatrixMultiplier().run(a, b)
        assert np.allclose(res.value, matmul(MIN_PLUS, a, b))

    def test_rectangular(self, rng):
        a = rng.uniform(0, 9, (2, 6))
        b = rng.uniform(0, 9, (6, 4))
        res = MeshMatrixMultiplier().run(a, b)
        assert np.allclose(res.value, matmul(MIN_PLUS, a, b))

    def test_plus_times_matches_numpy(self, rng):
        a = rng.uniform(-1, 1, (4, 3))
        b = rng.uniform(-1, 1, (3, 4))
        res = MeshMatrixMultiplier(PLUS_TIMES).run(a, b)
        assert np.allclose(res.value, a @ b)

    def test_max_plus(self, rng):
        a = rng.uniform(0, 9, (3, 3))
        b = rng.uniform(0, 9, (3, 3))
        res = MeshMatrixMultiplier(MAX_PLUS).run(a, b)
        assert np.allclose(res.value, matmul(MAX_PLUS, a, b))

    def test_one_by_one(self):
        res = MeshMatrixMultiplier().run(np.array([[2.0]]), np.array([[3.0]]))
        assert float(res.value[0, 0]) == 5.0
        assert res.report.wall_ticks == 1


class TestSchedule:
    def test_classic_3m_minus_2(self, rng):
        for m in (1, 2, 4, 7):
            a = rng.uniform(0, 9, (m, m))
            b = rng.uniform(0, 9, (m, m))
            res = MeshMatrixMultiplier().run(a, b)
            assert res.report.wall_ticks == 3 * m - 2
            assert mesh_cycles(m, m, m) == 3 * m - 2

    def test_rectangular_cycles(self):
        assert mesh_cycles(2, 3, 4) == 2 + 4 + 3 - 2

    def test_each_pe_does_k_ops(self, rng):
        a = rng.uniform(0, 9, (3, 5))
        b = rng.uniform(0, 9, (5, 4))
        res = MeshMatrixMultiplier().run(a, b)
        assert all(ops == 5 for ops in res.report.pe_op_counts)
        assert res.report.total_ops == res.report.serial_ops == 3 * 5 * 4

    def test_io_words(self, rng):
        a = rng.uniform(0, 9, (3, 4))
        b = rng.uniform(0, 9, (4, 2))
        res = MeshMatrixMultiplier().run(a, b)
        assert res.report.input_words == a.size + b.size
        assert res.report.output_words == 3 * 2

    def test_pu_formula(self, rng):
        # PU = n*k*m / ((n+m+k-2) * n*m) -> ~1/3 for large square.
        m = 8
        a = rng.uniform(0, 9, (m, m))
        b = rng.uniform(0, 9, (m, m))
        res = MeshMatrixMultiplier().run(a, b)
        expected = m**3 / ((3 * m - 2) * m * m)
        assert res.report.processor_utilization == pytest.approx(expected)


class TestValidation:
    def test_shape_mismatch(self):
        with pytest.raises(SystolicError, match="inner dimensions"):
            MeshMatrixMultiplier().run(np.zeros((2, 3)), np.zeros((2, 3)))

    def test_non_2d(self):
        with pytest.raises(SystolicError):
            MeshMatrixMultiplier().run(np.zeros(3), np.zeros((3, 3)))

    def test_bad_cycles_args(self):
        with pytest.raises(ValueError):
            mesh_cycles(0, 1, 1)


@given(
    n=st.integers(min_value=1, max_value=4),
    k=st.integers(min_value=1, max_value=4),
    m=st.integers(min_value=1, max_value=4),
    seed=st.integers(min_value=0, max_value=100),
)
@settings(max_examples=30, deadline=None)
def test_property_mesh_matches_vectorized(n, k, m, seed):
    rng = np.random.default_rng(seed)
    a = rng.uniform(0, 9, (n, k))
    b = rng.uniform(0, 9, (k, m))
    res = MeshMatrixMultiplier().run(a, b)
    assert np.allclose(res.value, matmul(MIN_PLUS, a, b))
    assert res.report.wall_ticks == mesh_cycles(n, k, m)
