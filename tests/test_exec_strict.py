"""Hazard sanitizer × batch engine: strict runs compose with sharding.

``strict=True`` wires a :class:`~repro.analysis.HazardSanitizer` into
every machine the run builds.  Sanitizers are stateful monitors, so the
batch engine must never share one across instances or workers: strict
batches skip the vectorized kernels (per-instance machines only) and,
when sharded, every worker process constructs its own sanitizer.  The
fixture designs under ``tests/fixtures`` pin that isolation — a seeded
hazard is detected identically in every worker, and a clean design
stays clean, with no cross-talk between concurrent runs.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor

import pytest

from repro import solve, solve_batch
from repro.analysis import HazardError
from repro.graphs import uniform_multistage

from .fixtures import clean_shift, hazard_staged_read, hazard_write_write
from .test_exec_batch import assert_same_report


class TestStrictBatches:
    def test_strict_rtl_batch_matches_looped_solve(self, rng):
        probs = [uniform_multistage(rng, 4, 3) for _ in range(4)]
        result = solve_batch(probs, backend="rtl", strict=True)
        assert result.stats.vectorized_groups == 0
        for rep, problem in zip(result, probs):
            assert_same_report(rep, solve(problem, backend="rtl", strict=True))
            assert rep.detail.report.hazards == 0

    def test_strict_rtl_batch_sharded_across_two_workers(self, rng):
        # MultistageGraph pickles, so strict rtl groups shard; each worker
        # builds its own machines and sanitizers per instance.
        probs = [uniform_multistage(rng, 4, 3) for _ in range(8)]
        result = solve_batch(
            probs, backend="rtl", strict=True, workers=2, min_shard_items=4
        )
        assert result.stats.shards >= 2
        for rep, problem in zip(result, probs):
            assert_same_report(rep, solve(problem, backend="rtl", strict=True))
            assert rep.detail.report.hazards == 0

    def test_strict_fast_batch_skips_vectorized_kernels(self, rng):
        probs = [uniform_multistage(rng, 4, 3) for _ in range(4)]
        result = solve_batch(probs, backend="fast", strict=True)
        assert result.stats.vectorized_groups == 0
        for rep, problem in zip(result, probs):
            assert_same_report(rep, solve(problem, backend="fast", strict=True))


class TestFixtureDesignsAcrossWorkers:
    """Seeded-hazard fixtures run per-worker with independent sanitizers."""

    def test_hazard_detected_identically_in_every_worker(self):
        with ProcessPoolExecutor(max_workers=2) as pool:
            reports = [
                f.result()
                for f in [pool.submit(hazard_write_write.run, "record")
                          for _ in range(4)]
            ]
        counts = {r.hazards for r in reports}
        assert len(counts) == 1
        assert counts.pop() > 0

    def test_clean_design_stays_clean_beside_hazardous_neighbors(self):
        # Interleave clean and broken designs across the same pool: a
        # shared sanitizer would leak the neighbor's hazards into the
        # clean run's report.
        with ProcessPoolExecutor(max_workers=2) as pool:
            futures = [
                pool.submit(clean_shift.run, "record"),
                pool.submit(hazard_staged_read.run, "record"),
                pool.submit(clean_shift.run, "record"),
                pool.submit(hazard_write_write.run, "record"),
            ]
            clean_a, dirty_a, clean_b, dirty_b = [f.result() for f in futures]
        assert clean_a.hazards == 0 and clean_b.hazards == 0
        assert dirty_a.hazards > 0 and dirty_b.hazards > 0

    def test_raise_mode_propagates_from_worker(self):
        with ProcessPoolExecutor(max_workers=2) as pool:
            future = pool.submit(hazard_write_write.run, "raise")
            with pytest.raises(HazardError):
                future.result()
