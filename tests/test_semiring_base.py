"""Unit tests for the Semiring abstraction and its law checker."""

from __future__ import annotations

import numpy as np
import pytest

from repro.semiring import (
    ALL_SEMIRINGS,
    BOOLEAN,
    MAX_PLUS,
    MAX_TIMES,
    MIN_MAX,
    MIN_PLUS,
    PLUS_TIMES,
    Semiring,
    SemiringError,
    by_name,
)


SAMPLE = {
    "min-plus": np.array([0.0, 1.0, 2.5, 7.0, np.inf]),
    "max-plus": np.array([0.0, 1.0, 2.5, 7.0, -np.inf]),
    "plus-times": np.array([0.0, 1.0, 2.5, 7.0, -3.0]),
    "max-times": np.array([0.0, 0.25, 0.5, 1.0]),
    "min-max": np.array([-np.inf, 0.0, 1.0, 5.0, np.inf]),
    "boolean": np.array([0.0, 1.0]),
}


class TestLaws:
    @pytest.mark.parametrize("sr", ALL_SEMIRINGS, ids=lambda s: s.name)
    def test_axioms_hold_on_samples(self, sr: Semiring):
        sr.check_laws(SAMPLE[sr.name])

    def test_broken_semiring_detected(self):
        # subtraction is not associative: the checker must object.
        broken = Semiring(
            name="broken",
            add=np.subtract,
            mul=np.add,
            zero=0.0,
            one=0.0,
            add_reduce=np.subtract.reduce,
        )
        with pytest.raises(SemiringError):
            broken.check_laws(np.array([1.0, 2.0, 5.0]))

    def test_wrong_identity_detected(self):
        bad_zero = Semiring(
            name="bad-zero",
            add=np.minimum,
            mul=np.add,
            zero=0.0,  # should be +inf for min
            one=0.0,
            add_reduce=np.minimum.reduce,
        )
        with pytest.raises(SemiringError):
            bad_zero.check_laws(np.array([1.0, 2.0]))

    def test_false_idempotence_detected(self):
        lying = Semiring(
            name="lying",
            add=np.add,
            mul=np.multiply,
            zero=0.0,
            one=1.0,
            add_reduce=np.add.reduce,
            idempotent_add=True,  # plus is not idempotent
        )
        with pytest.raises(SemiringError):
            lying.check_laws(np.array([1.0, 2.0]))

    def test_empty_sample_rejected(self):
        with pytest.raises(SemiringError):
            MIN_PLUS.check_laws(np.array([]))


class TestScalarOps:
    def test_min_plus_scalar(self):
        assert MIN_PLUS.scalar_add(3.0, 5.0) == 3.0
        assert MIN_PLUS.scalar_mul(3.0, 5.0) == 8.0

    def test_max_plus_scalar(self):
        assert MAX_PLUS.scalar_add(3.0, 5.0) == 5.0
        assert MAX_PLUS.scalar_mul(3.0, 5.0) == 8.0

    def test_plus_times_scalar(self):
        assert PLUS_TIMES.scalar_add(3.0, 5.0) == 8.0
        assert PLUS_TIMES.scalar_mul(3.0, 5.0) == 15.0

    def test_min_plus_infinity_annihilates(self):
        assert MIN_PLUS.scalar_mul(np.inf, 5.0) == np.inf
        assert MIN_PLUS.scalar_add(np.inf, 5.0) == 5.0

    def test_min_plus_mixed_infinities_stay_zero(self):
        # (+inf) ⊗ (-inf) must be the annihilator, not NaN.
        assert MIN_PLUS.scalar_mul(np.inf, -np.inf) == np.inf
        assert MAX_PLUS.scalar_mul(-np.inf, np.inf) == -np.inf


class TestArrayHelpers:
    def test_zeros_is_add_identity(self):
        z = MIN_PLUS.zeros((2, 3))
        assert z.shape == (2, 3)
        assert np.all(np.isinf(z))

    def test_ones_is_mul_identity(self):
        o = MIN_PLUS.ones(4)
        assert np.all(o == 0.0)

    def test_eye_structure(self):
        e = MIN_PLUS.eye(3)
        assert np.all(np.diag(e) == 0.0)
        off = e[~np.eye(3, dtype=bool)]
        assert np.all(np.isinf(off))

    def test_eye_is_matmul_identity(self):
        from repro.semiring import matmul

        a = np.array([[1.0, 2.0], [3.0, 4.0]])
        e = MIN_PLUS.eye(2)
        assert np.allclose(matmul(MIN_PLUS, a, e), a)
        assert np.allclose(matmul(MIN_PLUS, e, a), a)

    def test_asarray_dtype(self):
        out = MIN_PLUS.asarray([1, 2, 3])
        assert out.dtype == np.float64


class TestRegistry:
    def test_by_name_roundtrip(self):
        for sr in ALL_SEMIRINGS:
            assert by_name(sr.name) is sr

    def test_by_name_unknown(self):
        with pytest.raises(KeyError, match="unknown semiring"):
            by_name("tropical-deluxe")

    def test_all_names_unique(self):
        names = [s.name for s in ALL_SEMIRINGS]
        assert len(names) == len(set(names))

    def test_idempotence_flags(self):
        assert MIN_PLUS.idempotent_add
        assert MAX_PLUS.idempotent_add
        assert MIN_MAX.idempotent_add
        assert BOOLEAN.idempotent_add
        assert MAX_TIMES.idempotent_add
        assert not PLUS_TIMES.idempotent_add
