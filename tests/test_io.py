"""Unit tests for problem/result persistence."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.dp import solve_backward
from repro.graphs import MultistageGraph, fig1a_graph, random_multistage
from repro.io import (
    graph_from_dict,
    graph_to_dict,
    load_graph,
    load_run,
    path_from_dict,
    path_to_dict,
    report_from_dict,
    report_to_dict,
    save_graph,
    save_run,
    trace_from_dicts,
    trace_to_dicts,
)
from repro.semiring import MAX_PLUS
from repro.systolic import PipelinedMatrixStringArray


class TestNpzRoundTrip:
    def test_costs_and_semiring_preserved(self, rng, tmp_path):
        g = random_multistage(rng, [2, 4, 3, 2])
        f = tmp_path / "g.npz"
        save_graph(f, g)
        back = load_graph(f)
        assert back.semiring.name == g.semiring.name
        assert back.stage_sizes == g.stage_sizes
        for a, b in zip(g.costs, back.costs):
            assert np.array_equal(a, b)

    def test_optimum_survives_roundtrip(self, rng, tmp_path):
        g = random_multistage(rng, [3, 3, 3], edge_probability=0.7)
        f = tmp_path / "g.npz"
        save_graph(f, g)
        assert np.isclose(
            solve_backward(load_graph(f)).optimum, solve_backward(g).optimum,
            equal_nan=True,
        )

    def test_max_plus_semiring_roundtrip(self, rng, tmp_path):
        costs = tuple(rng.uniform(0, 5, (2, 2)) for _ in range(2))
        g = MultistageGraph(costs=costs, semiring=MAX_PLUS)
        f = tmp_path / "g.npz"
        save_graph(f, g)
        assert load_graph(f).semiring.name == "max-plus"

    def test_empty_archive_rejected(self, tmp_path):
        f = tmp_path / "bad.npz"
        np.savez(f, semiring=np.asarray("min-plus"))
        with pytest.raises(ValueError, match="no layer"):
            load_graph(f)


class TestDictForms:
    def test_graph_dict_roundtrip_is_json_safe(self, rng):
        g = random_multistage(rng, [2, 3, 2])
        d = graph_to_dict(g)
        encoded = json.dumps(d)  # must not raise
        back = graph_from_dict(json.loads(encoded))
        for a, b in zip(g.costs, back.costs):
            assert np.allclose(a, b)

    def test_graph_dict_kind_checked(self):
        with pytest.raises(ValueError, match="kind"):
            graph_from_dict({"kind": "zebra"})

    def test_path_roundtrip(self):
        sol = solve_backward(fig1a_graph())
        d = path_to_dict(sol.path)
        json.dumps(d)
        back = path_from_dict(d)
        assert back == sol.path

    def test_path_kind_checked(self):
        with pytest.raises(ValueError):
            path_from_dict({"kind": "nope"})

    def test_report_dict_json_safe(self):
        res = PipelinedMatrixStringArray().run_graph(fig1a_graph())
        d = report_to_dict(res.report)
        encoded = json.dumps(d)
        decoded = json.loads(encoded)
        assert decoded["design"] == "fig3-pipelined"
        assert decoded["iterations"] == res.report.iterations
        assert decoded["processor_utilization"] == pytest.approx(
            res.report.processor_utilization
        )
        assert decoded["backend"] == "rtl"
        assert decoded["is_empty"] is False

    def test_report_roundtrip(self):
        res = PipelinedMatrixStringArray().run_graph(fig1a_graph())
        back = report_from_dict(json.loads(json.dumps(report_to_dict(res.report))))
        assert back == res.report


class TestRunPersistence:
    def test_trace_dicts_roundtrip(self):
        res = PipelinedMatrixStringArray().run_graph(fig1a_graph(), record_trace=True)
        dicts = trace_to_dicts(res.events)
        json.dumps(dicts)
        assert trace_from_dicts(json.loads(json.dumps(dicts))) == res.events

    def test_save_load_run(self, tmp_path):
        res = PipelinedMatrixStringArray().run_graph(fig1a_graph(), record_trace=True)
        f = tmp_path / "run.json"
        save_run(f, res.report, res.events)
        report, events = load_run(f)
        assert report == res.report
        assert events == res.events

    def test_load_run_kind_checked(self, tmp_path):
        f = tmp_path / "bad.json"
        f.write_text(json.dumps({"kind": "zebra"}))
        with pytest.raises(ValueError, match="kind"):
            load_run(f)


class TestRunRecordErrors:
    """load_run_record raises one typed error for every failure shape."""

    def test_missing_file(self, tmp_path):
        from repro.io import RunRecordError, load_run_record

        with pytest.raises(RunRecordError, match="cannot read"):
            load_run_record(tmp_path / "nope.json")

    def test_corrupted_json_is_not_a_decode_error(self, tmp_path):
        from repro.io import RunRecordError, load_run_record

        f = tmp_path / "bad.json"
        f.write_text('{"kind": "systolic_run", "report": {')
        with pytest.raises(RunRecordError, match="corrupted JSON"):
            load_run_record(f)

    def test_non_dict_payload(self, tmp_path):
        from repro.io import RunRecordError, load_run_record

        f = tmp_path / "list.json"
        f.write_text("[1, 2, 3]")
        with pytest.raises(RunRecordError, match="not a systolic-run"):
            load_run_record(f)

    def test_missing_report_key_is_not_a_key_error(self, tmp_path):
        from repro.io import RunRecordError, load_run_record

        f = tmp_path / "norep.json"
        f.write_text(json.dumps({"kind": "systolic_run", "events": []}))
        with pytest.raises(RunRecordError, match="malformed"):
            load_run_record(f)

    def test_run_record_error_is_a_value_error(self):
        from repro.io import RunRecordError

        assert issubclass(RunRecordError, ValueError)


class TestFaultPayloadPersistence:
    def _run(self):
        return PipelinedMatrixStringArray().run_graph(fig1a_graph(), record_trace=True)

    def test_fault_run_payload_round_trips(self, tmp_path):
        import numpy as np

        from repro.faults import FaultPlan, FaultRunReport, FaultSpec, make_harness, run_with_recovery
        from repro.io import load_run_record

        harness = make_harness("pipelined", np.random.default_rng(0xC0FFEE), n=6, m=4)
        plan = FaultPlan(
            specs=(FaultSpec(mode="transient_flip", pe=1, reg="ACC", tick=1, delta=-1000.0),),
            design="pipelined",
        )
        _, fault_report = run_with_recovery(harness, plan, policy="retry")
        res = self._run()
        f = tmp_path / "run.json"
        save_run(f, res.report, res.events, faults=fault_report.to_dict())
        rec = load_run_record(f)
        assert rec.faults is not None
        assert FaultRunReport.from_dict(rec.faults) == fault_report

    def test_campaign_payload_round_trips(self, tmp_path):
        from repro.faults import CampaignReport, run_campaign
        from repro.io import load_run_record

        campaign = run_campaign("mesh", seed=5, trials=3, n=6, m=4)
        res = self._run()
        f = tmp_path / "run.json"
        save_run(f, res.report, res.events, faults=campaign.to_dict())
        rec = load_run_record(f)
        assert CampaignReport.from_dict(rec.faults) == campaign

    def test_healthy_record_has_no_faults(self, tmp_path):
        from repro.io import load_run_record

        res = self._run()
        f = tmp_path / "run.json"
        save_run(f, res.report, res.events)
        assert load_run_record(f).faults is None
