"""Unit tests for the Fig. 3 pipelined matrix-string array."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dp import solve_backward
from repro.graphs import fig1a_graph, random_multistage, single_source_sink
from repro.semiring import MAX_PLUS, MIN_PLUS, chain_product
from repro.systolic import PipelinedMatrixStringArray, SystolicError


@pytest.fixture
def array():
    return PipelinedMatrixStringArray()


class TestCorrectness:
    def test_fig1a_example(self, array):
        g = fig1a_graph()
        res = array.run_graph(g)
        assert float(res.value) == 6.0

    def test_matches_sequential_on_randoms(self, array, rng):
        for n_inter in (1, 2, 3, 4, 5):
            g = single_source_sink(rng, n_inter, 4)
            res = array.run_graph(g)
            assert np.isclose(float(res.value), solve_backward(g).optimum)

    def test_multi_source_vector_result(self, array, rng):
        g = random_multistage(rng, [4, 4, 4, 4, 1])
        res = array.run_graph(g)
        ref = chain_product(MIN_PLUS, g.as_matrices())[:, 0]
        assert np.allclose(np.asarray(res.value), ref)

    def test_both_phase_parities(self, array, rng):
        # Even and odd numbers of products must both work (ODD control).
        for n_layers in (2, 3, 4, 5, 6, 7):
            sizes = [1] + [3] * (n_layers - 1) + [1]
            g = random_multistage(rng, sizes)
            res = array.run_graph(g)
            assert np.isclose(float(res.value), solve_backward(g).optimum), n_layers

    def test_width_one_degenerate(self, array, rng):
        g = random_multistage(rng, [1, 1, 1, 1])
        res = array.run_graph(g)
        assert np.isclose(float(np.asarray(res.value).squeeze()), solve_backward(g).optimum)

    def test_max_plus_variant(self, rng):
        arr = PipelinedMatrixStringArray(MAX_PLUS)
        costs = tuple(rng.uniform(0, 5, s) for s in [(1, 3), (3, 3), (3, 1)])
        from repro.graphs import MultistageGraph

        g = MultistageGraph(costs=costs, semiring=MAX_PLUS)
        res = arr.run_graph(g)
        assert np.isclose(float(res.value), solve_backward(g).optimum)

    def test_raw_matrix_string(self, array, rng):
        mats = [rng.uniform(0, 5, (3, 3)) for _ in range(4)] + [rng.uniform(0, 5, 3)]
        res = array.run(mats)
        ref = chain_product(MIN_PLUS, mats[:-1] + [np.asarray(mats[-1])[:, None]])[:, 0]
        assert np.allclose(np.asarray(res.value), ref)


class TestSchedule:
    def test_iteration_count_is_products_times_m(self, array, rng):
        # P matrices (incl. the vector) -> P - 1 products of m iterations.
        for n_inter, m in [(2, 3), (4, 3), (3, 5)]:
            g = single_source_sink(rng, n_inter, m)
            res = array.run_graph(g)
            n_products = g.num_layers - 1
            assert res.report.iterations == n_products * m

    def test_wall_clock_includes_drain(self, array, rng):
        g = single_source_sink(rng, 3, 4)
        res = array.run_graph(g)
        n_products = g.num_layers - 1
        assert res.report.wall_ticks == n_products * 4 + (4 - 1)

    def test_fig1a_nine_iterations(self, array):
        # The paper's walkthrough: three products x three iterations.
        res = array.run_graph(fig1a_graph())
        assert res.report.iterations == 9

    def test_pu_approaches_one_for_long_graphs(self, array, rng):
        g_short = single_source_sink(rng, 2, 4)
        g_long = single_source_sink(rng, 30, 4)
        pu_short = array.run_graph(g_short).report.processor_utilization
        pu_long = array.run_graph(g_long).report.processor_utilization
        assert pu_long > pu_short
        assert pu_long > 0.9

    def test_interior_pes_busy_every_phase(self, array, rng):
        g = single_source_sink(rng, 4, 3)
        res = array.run_graph(g)
        # Full-matrix phases keep all PEs busy m ticks each; only the
        # final scalar phase narrows to one PE.
        full_phases = g.num_layers - 2
        assert max(res.report.pe_busy_ticks) >= full_phases * 3

    def test_io_accounting(self, array, rng):
        g = single_source_sink(rng, 2, 3)
        res = array.run_graph(g)
        # v (m) + interior matrix (m*m) + row vector (m) matrix words.
        assert res.report.input_words == 3 + 9 + 3
        assert res.report.output_words == 1


class TestValidation:
    def test_needs_two_operands(self, array):
        with pytest.raises(SystolicError):
            array.run([np.zeros((3, 3))])

    def test_last_operand_must_be_vector(self, array):
        with pytest.raises(SystolicError, match="column vector"):
            array.run([np.zeros((3, 3)), np.zeros((3, 3))])

    def test_interior_must_be_square(self, array):
        with pytest.raises(SystolicError):
            array.run([np.zeros((3, 3)), np.zeros((2, 3)), np.zeros(3)])

    def test_first_rows_constrained(self, array):
        with pytest.raises(SystolicError, match="leftmost"):
            array.run([np.zeros((2, 3)), np.zeros((3, 3)), np.zeros(3)])

    def test_semiring_mismatch_rejected(self, array, rng):
        from repro.graphs import MultistageGraph

        g = MultistageGraph(
            costs=(rng.uniform(0, 1, (1, 2)), rng.uniform(0, 1, (2, 1))),
            semiring=MAX_PLUS,
        )
        with pytest.raises(SystolicError, match="semiring"):
            array.run_graph(g)


@given(
    n_layers=st.integers(min_value=2, max_value=6),
    m=st.integers(min_value=1, max_value=5),
    seed=st.integers(min_value=0, max_value=1000),
)
@settings(max_examples=30, deadline=None)
def test_property_always_matches_sequential(n_layers, m, seed):
    rng = np.random.default_rng(seed)
    sizes = [1] + [m] * (n_layers - 1) + [1]
    g = random_multistage(rng, sizes)
    res = PipelinedMatrixStringArray().run_graph(g)
    assert np.isclose(
        float(np.asarray(res.value).squeeze()), solve_backward(g).optimum
    )
