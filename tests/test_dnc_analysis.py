"""Unit tests for the Section-4 closed-form analysis (eq. 29, Prop. 1, Thm. 1)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.dnc import (
    argmin_kt2,
    asymptotic_pu,
    asymptotic_pu_limit,
    at2_lower_bound,
    at2_surface,
    kt2,
    kt2_curve,
    optimal_granularity,
    processor_utilization,
    schedule_time,
)


class TestScheduleTime:
    def test_eq29_worked_example(self):
        # N=8, K=2: Tc = floor(7/2) = 3; residue = 8+1-6 = 3; Tw = 1.
        st = schedule_time(8, 2)
        assert st.computation == 3
        assert st.wind_down == 1
        assert st.total == 4

    def test_single_matrix(self):
        assert schedule_time(1, 5).total == 0

    def test_single_processor(self):
        # All N-1 multiplications sequential; wind-down collapses.
        st = schedule_time(100, 1)
        assert st.total == 99

    def test_bad_args(self):
        with pytest.raises(ValueError):
            schedule_time(0, 1)
        with pytest.raises(ValueError):
            schedule_time(4, 0)

    def test_time_decreases_with_processors(self):
        times = [schedule_time(1024, k).total for k in (1, 2, 4, 8, 16)]
        assert times == sorted(times, reverse=True)


class TestProcessorUtilization:
    def test_full_utilization_single_processor(self):
        assert processor_utilization(50, 1) == pytest.approx(1.0)

    def test_explicit_time_override(self):
        assert processor_utilization(10, 3, time=3) == pytest.approx(1.0)

    def test_pu_decreases_with_oversubscription(self):
        n = 1 << 14
        pus = [processor_utilization(n, k) for k in (16, 256, 4096)]
        assert pus == sorted(pus, reverse=True)


class TestProposition1:
    def test_limit_values(self):
        assert asymptotic_pu_limit(0.0) == 1.0
        assert asymptotic_pu_limit(1.0) == 0.5
        assert asymptotic_pu_limit(3.0) == 0.25
        assert asymptotic_pu_limit(float("inf")) == 0.0
        with pytest.raises(ValueError):
            asymptotic_pu_limit(-1.0)

    def test_sqrt_n_processors_pu_tends_to_one(self):
        # c∞ = 0 regime: k(N) = sqrt(N).
        pts = asymptotic_pu(lambda n: int(math.sqrt(n)), [2**i for i in range(8, 22, 2)])
        pus = [pu for _n, pu in pts]
        assert pus[-1] > 0.97
        assert pus[-1] > pus[0]

    def test_c_one_regime_tends_to_half(self):
        # k(N) = N/log2 N -> PU -> 1/2.
        pts = asymptotic_pu(
            lambda n: int(n / math.log2(n)), [2**i for i in range(10, 24, 2)]
        )
        final = pts[-1][1]
        assert abs(final - 0.5) < 0.08

    def test_c_infinity_regime_tends_to_zero(self):
        # k(N) = N processors: PU -> 0.
        pts = asymptotic_pu(lambda n: n, [2**i for i in range(8, 22, 2)])
        pus = [pu for _n, pu in pts]
        assert pus[-1] < 0.12
        assert pus[-1] < pus[0]

    def test_c_two_regime(self):
        pts = asymptotic_pu(
            lambda n: int(2 * n / math.log2(n)), [2**i for i in range(12, 24, 2)]
        )
        assert abs(pts[-1][1] - asymptotic_pu_limit(2.0)) < 0.06


class TestTheorem1:
    def test_at2_minimum_region(self):
        # S·T² is minimized (order-wise) at S = Θ(N/log₂N).
        n = 1 << 16
        s_opt = int(optimal_granularity(n))
        at_opt = at2_surface(n, s_opt)
        assert at_opt < at2_surface(n, max(1, s_opt // 50))
        assert at_opt < at2_surface(n, min(n, s_opt * 50))

    def test_at2_lower_bound_order(self):
        # The achieved AT² at the optimal granularity is within a small
        # constant of N log N.
        for exp in (12, 16, 20):
            n = 1 << exp
            s_opt = int(optimal_granularity(n))
            ratio = at2_surface(n, s_opt) / at2_lower_bound(n)
            assert 0.5 < ratio < 8.0

    def test_at2_validation(self):
        with pytest.raises(ValueError):
            at2_surface(0, 1)
        with pytest.raises(ValueError):
            at2_surface(8, 0)


class TestFigure6:
    def test_kt2_curve_shape(self):
        ks = list(range(2, 4097))
        curve = kt2_curve(4096, ks)
        best = int(np.argmin(curve))
        best_k = ks[best]
        # The minimum falls near N/log2 N = 341 (paper quotes 431/465
        # from its own evaluation; same valley).
        assert 250 <= best_k <= 700

    def test_argmin_matches_curve(self):
        k, v = argmin_kt2(4096, k_min=2, k_max=4096)
        ks = list(range(2, 4097))
        curve = kt2_curve(4096, ks)
        assert v == pytest.approx(curve.min())
        assert k == ks[int(np.argmin(curve))]

    def test_curve_is_jagged(self):
        # The paper notes the curve is not smooth: adjacent K can jump.
        ks = list(range(300, 600))
        curve = kt2_curve(4096, ks)
        diffs = np.diff(curve)
        assert (diffs > 0).any() and (diffs < 0).any()

    def test_kt2_scales_with_t1(self):
        assert kt2(128, 8, t1=2.0) == pytest.approx(4 * kt2(128, 8, t1=1.0))

    def test_paper_quoted_minima_are_near_optimal(self):
        # K = 431 and K = 465 (the paper's reported minima) are within
        # 10% of the exact argmin of eq. (29)'s KT².
        _, vbest = argmin_kt2(4096, k_min=2, k_max=4096)
        assert kt2(4096, 431) <= 1.10 * vbest
        assert kt2(4096, 465) <= 1.10 * vbest


class TestGranularity:
    def test_optimal_granularity_values(self):
        assert optimal_granularity(4096) == pytest.approx(4096 / 12)
        assert optimal_granularity(1) == 1.0
