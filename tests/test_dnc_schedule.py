"""Unit tests for the K-array divide-and-conquer scheduler."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dnc import rounds_only, schedule_time, simulate_chain_product
from repro.semiring import MAX_PLUS, MIN_PLUS, chain_product


class TestScheduleShape:
    def test_single_processor_takes_n_minus_1_rounds(self):
        res = simulate_chain_product(10, 1)
        assert res.rounds == 9
        assert res.total_multiplications == 9
        assert res.processor_utilization == 1.0

    def test_unlimited_processors_take_log_rounds(self):
        res = simulate_chain_product(16, 100)
        assert res.rounds == 4  # ceil(log2(16))

    def test_total_work_invariant(self, rng):
        for k in (1, 2, 3, 7):
            res = simulate_chain_product(23, k)
            assert res.total_multiplications == 22

    def test_computation_plus_winddown(self):
        res = simulate_chain_product(64, 4)
        assert res.computation_rounds + res.wind_down_rounds == res.rounds
        # With few processors most rounds are fully busy.
        assert res.computation_rounds > res.wind_down_rounds

    def test_busy_profile_monotone_tail(self):
        # Once the segment count drops below 2K, busy counts shrink.
        res = simulate_chain_product(40, 8)
        busy = res.busy_per_round
        tail = busy[res.computation_rounds :]
        assert all(b < 8 for b in tail)

    def test_kt2_property(self):
        res = simulate_chain_product(100, 10)
        assert res.kt2 == 10 * res.rounds**2


class TestAgainstEq29:
    @pytest.mark.parametrize("n", [4, 10, 33, 100, 257, 1024, 4096])
    def test_matches_closed_form_in_domain(self, n):
        # Eq. (29) models the regime K <= N/2 (wind-down starts with at
        # least K live nodes); the simulator confirms it exactly there.
        for k in range(1, n // 2 + 1, max(1, n // 20)):
            assert rounds_only(n, k) == schedule_time(n, k).total, (n, k)

    def test_diverges_when_oversubscribed(self):
        # With K > N/2 the formula overestimates: documented limitation.
        assert rounds_only(2, 3) == 1
        assert schedule_time(2, 3).total > 1

    def test_rounds_only_equals_simulation(self, rng):
        for _ in range(10):
            n = int(rng.integers(2, 200))
            k = int(rng.integers(1, 50))
            assert rounds_only(n, k) == simulate_chain_product(n, k).rounds


class TestPolicies:
    def test_policies_have_equal_rounds(self, rng):
        for _ in range(8):
            n = int(rng.integers(2, 64))
            k = int(rng.integers(1, 12))
            a = simulate_chain_product(n, k, policy="leftmost")
            b = simulate_chain_product(n, k, policy="balanced")
            assert a.rounds == b.rounds, (n, k)

    def test_both_policies_compute_correct_product(self, rng):
        mats = [rng.uniform(0, 5, (3, 3)) for _ in range(13)]
        ref = chain_product(MIN_PLUS, mats)
        for pol in ("leftmost", "balanced"):
            res = simulate_chain_product(13, 4, policy=pol, matrices=mats)
            assert np.allclose(res.product, ref), pol

    def test_rectangular_chain_product(self, rng):
        shapes = [(2, 3), (3, 5), (5, 4), (4, 1), (1, 6)]
        mats = [rng.uniform(0, 5, s) for s in shapes]
        res = simulate_chain_product(5, 2, matrices=mats)
        assert np.allclose(res.product, chain_product(MIN_PLUS, mats))

    def test_max_plus_chain(self, rng):
        mats = [rng.uniform(0, 5, (2, 2)) for _ in range(6)]
        res = simulate_chain_product(
            6, 2, matrices=mats, semiring=MAX_PLUS
        )
        assert np.allclose(res.product, chain_product(MAX_PLUS, mats))

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="policy"):
            simulate_chain_product(8, 2, policy="random")


class TestValidation:
    def test_bad_sizes(self):
        with pytest.raises(ValueError):
            simulate_chain_product(0, 2)
        with pytest.raises(ValueError):
            simulate_chain_product(4, 0)
        with pytest.raises(ValueError):
            rounds_only(0, 1)

    def test_matrix_count_mismatch(self, rng):
        with pytest.raises(ValueError):
            simulate_chain_product(3, 1, matrices=[rng.uniform(0, 1, (2, 2))])

    def test_single_matrix_zero_rounds(self):
        res = simulate_chain_product(1, 4)
        assert res.rounds == 0
        assert res.total_multiplications == 0


@given(
    n=st.integers(min_value=1, max_value=500),
    k=st.integers(min_value=1, max_value=64),
)
@settings(max_examples=60, deadline=None)
def test_property_sim_equals_recurrence(n, k):
    assert rounds_only(n, k) == simulate_chain_product(n, k).rounds


@given(
    n=st.integers(min_value=4, max_value=500),
)
@settings(max_examples=40, deadline=None)
def test_property_eq29_exact_in_domain(n):
    for k in range(1, n // 2 + 1):
        assert rounds_only(n, k) == schedule_time(n, k).total
