"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic RNG; every test gets a fresh, identical stream."""
    return np.random.default_rng(0xC0FFEE)


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "slow: long-running exhaustive checks (run by default)"
    )
