"""Unit tests for the sequential-control workloads (paper Section 3.2)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dp import solve_node_value
from repro.graphs import (
    GraphError,
    gain_schedule_problem,
    inventory_problem,
    production_problem,
)
from repro.systolic import FeedbackSystolicArray


class TestInventory:
    def test_shapes(self, rng):
        p = inventory_problem(rng, 6, 5)
        assert p.num_stages == 6
        assert p.stage_sizes == (6,) * 6  # stock levels 0..5

    def test_shortage_penalized(self, rng):
        p = inventory_problem(rng, 4, 8, shortage=50.0)
        # Dropping stock by far more than mean demand implies negative
        # ordering: must cost more than a feasible transition.
        feasible = float(p.edge_cost(np.asarray(2.0), np.asarray(3.0)))
        infeasible = float(p.edge_cost(np.asarray(8.0), np.asarray(0.0)))
        assert infeasible > feasible

    def test_holding_cost_grows_with_stock(self, rng):
        p = inventory_problem(rng, 4, 8, holding=5.0)
        lo = float(p.edge_cost(np.asarray(4.0), np.asarray(4.0)))
        hi = float(p.edge_cost(np.asarray(4.0), np.asarray(8.0)))
        assert hi > lo

    def test_validation(self, rng):
        with pytest.raises(GraphError):
            inventory_problem(rng, 1, 5)


class TestProduction:
    def test_changeover_quadratic(self, rng):
        p = production_problem(rng, 4, 5, changeover=3.0)
        small = float(p.edge_cost(np.asarray(5.0), np.asarray(5.5)))
        big = float(p.edge_cost(np.asarray(5.0), np.asarray(9.0)))
        assert big > small

    def test_validation(self, rng):
        with pytest.raises(GraphError):
            production_problem(rng, 4, 0)


class TestGainSchedule:
    def test_extreme_gains_cost_more(self, rng):
        p = gain_schedule_problem(rng, 4, 5, process_noise=1.0, measurement_noise=1.0)
        mid = float(p.edge_cost(np.asarray(0.5), np.asarray(0.5)))
        hi = float(p.edge_cost(np.asarray(0.5), np.asarray(0.95)))
        lo = float(p.edge_cost(np.asarray(0.5), np.asarray(0.05)))
        assert mid < hi and mid < lo  # symmetric noise: balanced gain wins

    def test_validation(self, rng):
        with pytest.raises(GraphError):
            gain_schedule_problem(rng, 1, 4)


class TestEndToEnd:
    def test_all_workloads_run_on_feedback_array(self, rng):
        arr = FeedbackSystolicArray()
        for p in (
            inventory_problem(rng, 6, 4),
            production_problem(rng, 6, 4),
            gain_schedule_problem(rng, 6, 4),
        ):
            res = arr.run(p)
            ref = solve_node_value(p)
            assert np.isclose(res.optimum, ref.optimum)
            assert np.isclose(p.to_graph().path_cost(res.path.nodes), res.optimum)

    def test_workloads_match_brute_force(self, rng):
        for p in (
            inventory_problem(rng, 4, 3),
            production_problem(rng, 4, 3),
            gain_schedule_problem(rng, 4, 3),
        ):
            assert np.isclose(
                solve_node_value(p).optimum, p.to_graph().brute_force_optimum()[0]
            )
