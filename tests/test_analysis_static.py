"""Static design checker: each rule has a positive and a negative case."""

from __future__ import annotations

import pathlib
import textwrap

import pytest

from repro.analysis import check_file, check_source
from repro.analysis.static_check import extract_link_graph

from .fixtures import FIXTURES, clean_shift

FIXTURE_DIR = pathlib.Path(__file__).parent / "fixtures"


def rules_in(source: str) -> set[str]:
    return {f.rule for f in check_source(textwrap.dedent(source))}


class TestFixtureFiles:
    @pytest.mark.parametrize("rule", sorted(FIXTURES))
    def test_fixture_is_flagged_with_its_rule(self, rule):
        findings = check_file(pathlib.Path(FIXTURES[rule].__file__))
        assert {f.rule for f in findings} == {rule}

    def test_clean_fixture_has_no_findings(self):
        assert check_file(pathlib.Path(clean_shift.__file__)) == []

    def test_findings_carry_location(self):
        path = pathlib.Path(FIXTURES["write-write"].__file__)
        (finding,) = check_file(path)[:1]
        assert finding.path.endswith("hazard_write_write.py")
        assert finding.line > 0
        assert "write-write" in str(finding)


class TestWriteWrite:
    def test_double_set_in_pe_loop(self):
        assert "write-write" in rules_in("""
            def step(machine, pes):
                for i, pe in enumerate(pes):
                    pe["R"].set(1.0)
                    pe["R"].set(2.0)
                machine.end_tick()
        """)

    def test_set_after_latch_is_fine(self):
        assert "write-write" not in rules_in("""
            def step(machine, pes):
                for i, pe in enumerate(pes):
                    pe["R"].set(1.0)
                machine.end_tick()
                for i, pe in enumerate(pes):
                    pe["R"].set(2.0)
                machine.end_tick()
        """)

    def test_distinct_pes_same_register_name_is_fine(self):
        assert "write-write" not in rules_in("""
            def step(machine, pes):
                pes[0]["R"].set(1.0)
                pes[1]["R"].set(2.0)
                machine.end_tick()
        """)

    def test_branches_do_not_double_count(self):
        # A set in only one arm of an if is not a double drive.
        assert "write-write" not in rules_in("""
            def step(machine, pes, flag):
                for i, pe in enumerate(pes):
                    if flag:
                        pe["R"].set(1.0)
                    else:
                        pe["R"].set(2.0)
                machine.end_tick()
        """)


class TestStagedRead:
    def test_read_back_after_set(self):
        assert "read-after-staged-write" in rules_in("""
            def step(machine, pes):
                for i, pe in enumerate(pes):
                    pe["ACC"].set(1.0)
                    y = pe["ACC"].value
                machine.end_tick()
        """)

    def test_read_before_set_is_fine(self):
        assert "read-after-staged-write" not in rules_in("""
            def step(machine, pes):
                for i, pe in enumerate(pes):
                    y = pe["ACC"].value
                    pe["ACC"].set(y + 1.0)
                machine.end_tick()
        """)

    def test_read_after_latch_is_fine(self):
        assert "read-after-staged-write" not in rules_in("""
            def step(machine, pes):
                for i, pe in enumerate(pes):
                    pe["ACC"].set(1.0)
                machine.end_tick()
                for i, pe in enumerate(pes):
                    y = pe["ACC"].value
        """)


class TestCrossPeWrite:
    def test_offset_write_in_pe_loop(self):
        assert "cross-pe-write" in rules_in("""
            def step(machine, pes):
                for i, pe in enumerate(pes):
                    pes[i + 1]["R"].set(1.0)
                machine.end_tick()
        """)

    def test_own_register_write_is_fine(self):
        assert "cross-pe-write" not in rules_in("""
            def step(machine, pes):
                for i, pe in enumerate(pes):
                    pe["R"].set(1.0)
                machine.end_tick()
        """)

    def test_reading_the_neighbor_is_not_a_write(self):
        assert "cross-pe-write" not in rules_in("""
            def step(machine, pes):
                for i, pe in enumerate(pes):
                    pe["R"].set(pes[i - 1]["R"].value)
                machine.end_tick()
        """)


class TestNonNeighborLink:
    def test_two_hop_read_on_line(self):
        assert "non-neighbor-link" in rules_in("""
            def step(machine, pes):
                for i, pe in enumerate(pes):
                    y = pes[i + 2]["R"].value
                machine.end_tick()
        """)

    def test_one_hop_read_is_fine(self):
        assert "non-neighbor-link" not in rules_in("""
            def step(machine, pes):
                for i, pe in enumerate(pes):
                    y = pes[i - 1]["R"].value
                machine.end_tick()
        """)

    def test_complete_topology_module_allows_any_hop(self):
        assert "non-neighbor-link" not in rules_in("""
            from repro.systolic.fabric import SystolicMachine

            def build():
                return SystolicMachine("bus", topology="complete")

            def step(machine, pes):
                for i, pe in enumerate(pes):
                    y = pes[i + 3]["R"].value
                machine.end_tick()
        """)

    def test_grid_diagonal_read_is_flagged(self):
        assert "non-neighbor-link" in rules_in("""
            def step(machine, pes):
                for i in range(4):
                    for j in range(4):
                        y = pes[i - 1][j - 1]["R"].value
                machine.end_tick()
        """)

    def test_grid_orthogonal_read_is_fine(self):
        assert "non-neighbor-link" not in rules_in("""
            def step(machine, pes):
                for i in range(4):
                    for j in range(4):
                        y = pes[i - 1][j]["R"].value
                machine.end_tick()
        """)


class TestIdiomRules:
    def test_forced_write_flagged_outside_faults(self):
        assert "forced-write" in rules_in("""
            def hack(reg):
                reg.force(1.0)
        """)

    def test_register_internals_flagged(self):
        assert "register-internals" in rules_in("""
            def peek(reg):
                return reg._current
        """)

    def test_latch_bypass_flagged_on_pe_receiver(self):
        assert "latch-bypass" in rules_in("""
            def step(pes):
                for pe in pes:
                    pe.end_tick()
        """)

    def test_machine_latch_is_fine(self):
        src = """
            def step(machine):
                machine.end_tick()
                machine.latch()
        """
        found = rules_in(src)
        assert "latch-bypass" not in found

    def test_silent_op_flagged(self):
        assert "silent-op" in rules_in("""
            def step(machine, pes):
                for i, pe in enumerate(pes):
                    pe.count_op()
                machine.end_tick()
        """)

    def test_counted_and_emitted_is_fine(self):
        assert "silent-op" not in rules_in("""
            def step(machine, pes):
                for i, pe in enumerate(pes):
                    pe.count_op()
                    machine.emit("op", i, "x")
                machine.end_tick()
        """)


class TestSuppression:
    SRC = """
        def hack(reg):
            reg.force(1.0)  # systolic: allow(forced-write) test scaffolding
    """

    def test_allow_comment_suppresses(self):
        assert check_source(textwrap.dedent(self.SRC)) == []

    def test_suppressed_findings_still_visible_on_request(self):
        findings = check_source(
            textwrap.dedent(self.SRC), include_suppressed=True
        )
        assert [f.rule for f in findings] == ["forced-write"]
        assert findings[0].suppressed
        assert findings[0].justification == "test scaffolding"

    def test_bare_allow_is_itself_a_finding(self):
        found = rules_in("""
            def hack(reg):
                reg.force(1.0)  # systolic: allow(forced-write)
        """)
        assert "bare-allow" in found

    def test_allow_on_previous_line(self):
        assert check_source(textwrap.dedent("""
            def hack(reg):
                # systolic: allow(forced-write) scan-chain restore
                reg.force(1.0)
        """)) == []

    def test_allow_only_covers_named_rules(self):
        found = rules_in("""
            def hack(reg):
                reg.force(1.0)  # systolic: allow(silent-op) wrong rule named
        """)
        assert "forced-write" in found

    def test_fabric_internal_pragma_disables_internals_rule(self):
        src = """
            # systolic: fabric-internal test double
            def peek(reg):
                return reg._current
        """
        assert "register-internals" not in rules_in(src)


class TestLinkGraph:
    def test_shift_chain_reads_one_hop(self):
        graph = extract_link_graph(textwrap.dedent("""
            def step(machine, pes):
                for i, pe in enumerate(pes):
                    pe["R"].set(pes[i - 1]["R"].value)
                machine.end_tick()
        """))
        (entry,) = graph
        assert entry["function"] == "step"
        assert ["R", "-1"] in entry["reads"]
        assert "R" in entry["writes"]

    def test_whole_package_is_statically_clean(self):
        # The tentpole gate: the shipped tree carries no active findings.
        src_root = pathlib.Path(__file__).parent.parent / "src" / "repro"
        bad = []
        for path in sorted(src_root.rglob("*.py")):
            bad.extend(check_file(path))
        assert bad == [], "\n".join(str(f) for f in bad)
