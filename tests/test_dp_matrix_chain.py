"""Unit + property tests for matrix-chain parenthesization (eq. 6)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dp import (
    brute_force_matrix_chain,
    count_scalar_multiplications,
    enumerate_parenthesizations,
    multiply_in_order,
    solve_matrix_chain,
)


class TestSolve:
    def test_textbook_instance(self):
        # Classic CLRS instance.
        order = solve_matrix_chain([30, 35, 15, 5, 10, 20, 25])
        assert order.cost == 15125

    def test_known_small_instance(self):
        order = solve_matrix_chain([10, 20, 50, 1, 100])
        assert order.cost == 2200
        assert order.expression == ((1, (2, 3)), 4)

    def test_single_matrix(self):
        order = solve_matrix_chain([4, 7])
        assert order.cost == 0
        assert order.expression == 1
        assert order.num_matrices == 1

    def test_two_matrices(self):
        order = solve_matrix_chain([2, 3, 4])
        assert order.cost == 24
        assert order.expression == (1, 2)

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            solve_matrix_chain([5])
        with pytest.raises(ValueError):
            solve_matrix_chain([5, 0, 3])


class TestBruteForceAgreement:
    def test_matches_dp_on_randoms(self, rng):
        for _ in range(10):
            dims = list(rng.integers(1, 40, size=rng.integers(2, 8)))
            assert solve_matrix_chain(dims).cost == brute_force_matrix_chain(dims).cost

    @given(
        dims=st.lists(st.integers(min_value=1, max_value=30), min_size=2, max_size=7)
    )
    @settings(max_examples=60, deadline=None)
    def test_dp_never_beaten(self, dims):
        dp = solve_matrix_chain(dims)
        n = len(dims) - 1
        for expr in enumerate_parenthesizations(n):
            cost, _ = count_scalar_multiplications(dims, expr)
            assert dp.cost <= cost
        # And the DP's own expression achieves its reported cost.
        cost, _ = count_scalar_multiplications(dims, dp.expression)
        assert cost == dp.cost


class TestEnumeration:
    def test_catalan_counts(self):
        catalan = [1, 1, 2, 5, 14, 42]
        for n in range(1, 6):
            assert sum(1 for _ in enumerate_parenthesizations(n)) == catalan[n - 1]

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            list(enumerate_parenthesizations(0))


class TestCounting:
    def test_noncontiguous_rejected(self):
        with pytest.raises(ValueError, match="non-contiguous"):
            count_scalar_multiplications([2, 3, 4, 5], ((1, 3), 2))

    def test_out_of_range_index_rejected(self):
        with pytest.raises(ValueError):
            count_scalar_multiplications([2, 3], (1, 2))

    def test_result_shape(self):
        cost, shape = count_scalar_multiplications([2, 3, 4], (1, 2))
        assert shape == (2, 4)
        assert cost == 24


class TestExecution:
    def test_multiply_matches_numpy(self, rng):
        dims = [3, 4, 2, 5]
        mats = [rng.uniform(-1, 1, (dims[i], dims[i + 1])) for i in range(3)]
        order = solve_matrix_chain(dims)
        product, cost = multiply_in_order(mats, order.expression)
        assert np.allclose(product, mats[0] @ mats[1] @ mats[2])
        assert cost == order.cost

    def test_dp_order_beats_naive_on_skewed_dims(self, rng):
        dims = [100, 2, 100, 2, 100]
        mats = [rng.uniform(0, 1, (dims[i], dims[i + 1])) for i in range(4)]
        order = solve_matrix_chain(dims)
        _, dp_cost = multiply_in_order(mats, order.expression)
        naive = (((1, 2), 3), 4)
        _, naive_cost = multiply_in_order(mats, naive)
        assert dp_cost < naive_cost

    def test_incompatible_matrices_rejected(self, rng):
        mats = [rng.uniform(0, 1, (2, 3)), rng.uniform(0, 1, (4, 5))]
        with pytest.raises(ValueError, match="incompatible"):
            multiply_in_order(mats, (1, 2))
