"""Unit tests for the polyadic divide-and-conquer solver (eq. 3/15)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dp import solve_backward, solve_polyadic, stage_cost_matrix
from repro.dp.polyadic import MultiplyNode, _build_tree
from repro.graphs import random_multistage, uniform_multistage
from repro.semiring import MIN_PLUS, chain_product


class TestStageCostMatrix:
    def test_adjacent_stages_are_raw_costs(self, rng):
        g = uniform_multistage(rng, 5, 3)
        assert np.array_equal(stage_cost_matrix(g, 1, 2), g.costs[1])

    def test_full_span_matches_chain_product(self, rng):
        g = uniform_multistage(rng, 6, 3)
        full = stage_cost_matrix(g, 0, 5)
        assert np.allclose(full, chain_product(MIN_PLUS, g.as_matrices()))

    def test_eq15_split_identity(self, rng):
        # f3(Vi, Vj) == f3(Vi, Vk) · f3(Vk, Vj) for any intermediate k.
        from repro.semiring import matmul

        g = uniform_multistage(rng, 7, 3)
        whole = stage_cost_matrix(g, 1, 5)
        for k in (2, 3, 4):
            split = matmul(MIN_PLUS, stage_cost_matrix(g, 1, k), stage_cost_matrix(g, k, 5))
            assert np.allclose(whole, split)

    def test_invalid_span_rejected(self, rng):
        g = uniform_multistage(rng, 4, 2)
        with pytest.raises(ValueError):
            stage_cost_matrix(g, 2, 2)
        with pytest.raises(ValueError):
            stage_cost_matrix(g, 3, 1)
        with pytest.raises(ValueError):
            stage_cost_matrix(g, 0, 9)


class TestSolvePolyadic:
    def test_agrees_with_monadic(self, rng):
        for _ in range(5):
            g = random_multistage(rng, [2, 4, 4, 3, 2])
            assert np.isclose(
                solve_polyadic(g).optimum, solve_backward(g).optimum
            )

    def test_multiplication_count(self, rng):
        g = uniform_multistage(rng, 9, 2)  # 8 layers
        sol = solve_polyadic(g)
        assert sol.num_multiplications == 8 - 1

    def test_cost_matrix_shape(self, rng):
        g = random_multistage(rng, [2, 3, 3, 4])
        sol = solve_polyadic(g)
        assert sol.cost_matrix.shape == (2, 4)


class TestMultiplyTree:
    def test_balanced_height(self):
        tree = _build_tree(0, 8)
        assert tree.depth == 3  # log2(8)

    def test_uneven_height(self):
        tree = _build_tree(0, 5)
        assert tree.depth == 3  # ceil(log2(5))

    def test_leaf_properties(self):
        leaf = MultiplyNode(lo=2, hi=3)
        assert leaf.is_leaf
        assert leaf.depth == 0
        assert leaf.count_internal() == 0

    def test_internal_count_is_layers_minus_one(self):
        for n in (1, 2, 3, 7, 16):
            assert _build_tree(0, n).count_internal() == n - 1
