"""Unit tests for the four-way classifier and Table-1 recommendations."""

from __future__ import annotations

import numpy as np
import pytest

from repro import Arity, DPClass, MatrixChainProblem, Structure, classify, recommend
from repro.core import classify_terms
from repro.dp import NonserialObjective, banded_objective
from repro.graphs import Term, fig1a_graph, fig1b_problem, uniform_multistage


def serial_objective():
    domains = {f"X{i}": np.arange(3.0) for i in range(1, 5)}
    return NonserialObjective(
        domains=domains,
        terms=tuple(
            ((f"X{i}", f"X{i+1}"), lambda a, b: np.abs(a - b)) for i in range(1, 4)
        ),
    )


class TestClassify:
    def test_multistage_graph_defaults_monadic_serial(self):
        assert classify(fig1a_graph()) is DPClass.MONADIC_SERIAL

    def test_polyadic_view_of_serial_problem(self):
        assert classify(fig1a_graph(), arity=Arity.POLYADIC) is DPClass.POLYADIC_SERIAL

    def test_node_value_problem(self):
        assert classify(fig1b_problem()) is DPClass.MONADIC_SERIAL

    def test_matrix_chain_always_polyadic_nonserial(self):
        p = MatrixChainProblem((2, 3, 4))
        assert classify(p) is DPClass.POLYADIC_NONSERIAL
        assert classify(p, arity=Arity.MONADIC) is DPClass.POLYADIC_NONSERIAL

    def test_banded_objective_is_monadic_nonserial(self, rng):
        assert classify(banded_objective(rng, [2, 2, 2])) is DPClass.MONADIC_NONSERIAL

    def test_serial_objective_is_serial(self):
        assert classify(serial_objective()) is DPClass.MONADIC_SERIAL

    def test_unknown_type_rejected(self):
        with pytest.raises(TypeError):
            classify(42)

    def test_class_properties(self):
        assert DPClass.MONADIC_SERIAL.arity is Arity.MONADIC
        assert DPClass.MONADIC_SERIAL.structure is Structure.SERIAL
        assert DPClass.POLYADIC_NONSERIAL.arity is Arity.POLYADIC
        assert DPClass.POLYADIC_NONSERIAL.structure is Structure.NONSERIAL


class TestClassifyTerms:
    def test_chain_terms(self):
        terms = [Term(("a", "b")), Term(("b", "c"))]
        assert classify_terms(terms) is Structure.SERIAL

    def test_papers_nonserial_example(self):
        terms = [Term(("X1", "X2", "X4")), Term(("X3", "X4")), Term(("X2", "X5"))]
        assert classify_terms(terms) is Structure.NONSERIAL


class TestRecommend:
    def test_wide_graph_gets_systolic(self, rng):
        g = uniform_multistage(rng, 4, 8)  # few stages, many states
        rec = recommend(g)
        assert rec.dp_class is DPClass.MONADIC_SERIAL
        assert "matrix multiplications" in rec.method

    def test_long_graph_gets_dnc(self, rng):
        g = uniform_multistage(rng, 40, 3)  # many stages
        rec = recommend(g)
        assert rec.dp_class is DPClass.POLYADIC_SERIAL
        assert "divide-and-conquer" in rec.method

    def test_threshold_tunable(self, rng):
        g = uniform_multistage(rng, 20, 3)
        assert recommend(g, stage_ratio_threshold=10.0).dp_class is DPClass.MONADIC_SERIAL
        assert recommend(g, stage_ratio_threshold=2.0).dp_class is DPClass.POLYADIC_SERIAL

    def test_matrix_chain_row(self):
        rec = recommend(MatrixChainProblem((2, 3, 4, 5)))
        assert rec.dp_class is DPClass.POLYADIC_NONSERIAL
        assert "AND/OR" in rec.method

    def test_nonserial_objective_row(self, rng):
        rec = recommend(banded_objective(rng, [2, 2, 2, 2]))
        assert rec.dp_class is DPClass.MONADIC_NONSERIAL
        assert "grouping" in rec.method

    def test_serial_objective_row(self):
        rec = recommend(serial_objective())
        assert rec.dp_class is DPClass.MONADIC_SERIAL

    def test_unknown_type_rejected(self):
        with pytest.raises(TypeError):
            recommend("nope")


class TestMatrixChainProblem:
    def test_validation(self):
        with pytest.raises(ValueError):
            MatrixChainProblem((5,))
        with pytest.raises(ValueError):
            MatrixChainProblem((2, -1))

    def test_num_matrices(self):
        assert MatrixChainProblem((2, 3, 4)).num_matrices == 2
