"""Seeded-hazard fixture designs for the analysis-layer tests.

Each ``hazard_*`` module is a deliberately broken miniature systolic
design that violates exactly one discipline rule, written so that BOTH
detection layers fire on it: :func:`repro.analysis.check_file` flags
the source and a strict-mode run records the same rule dynamically.
``clean_shift`` is the negative control — a correct neighbor shift
chain that passes both layers.

Every module exposes ``run(mode="record")`` returning the finished
:class:`~repro.systolic.fabric.RunReport` (``mode="raise"`` instead
raises :class:`~repro.analysis.HazardError` at finalize).
"""

from . import (  # noqa: F401
    clean_shift,
    hazard_cross_pe_write,
    hazard_forced_write,
    hazard_non_neighbor,
    hazard_silent_op,
    hazard_staged_read,
    hazard_write_write,
)

FIXTURES = {
    "write-write": hazard_write_write,
    "read-after-staged-write": hazard_staged_read,
    "cross-pe-write": hazard_cross_pe_write,
    "non-neighbor-link": hazard_non_neighbor,
    "forced-write": hazard_forced_write,
    "silent-op": hazard_silent_op,
}
