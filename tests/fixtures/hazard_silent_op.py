"""Seeded hazard: PEs count work without publishing trace events."""

from __future__ import annotations

from repro.analysis import HazardSanitizer
from repro.systolic.fabric import RunReport, SystolicMachine


def run(mode: str = "record") -> RunReport:
    # record_trace activates the trace bus: counted ops must emit.
    machine = SystolicMachine(
        "fixture-silent-op", record_trace=True,
        sanitizer=HazardSanitizer(mode=mode),
    )
    pes = machine.add_pes(2)
    for pe in pes:
        pe.reg("R", 0.0)
    for tick in range(2):
        for i, pe in enumerate(pes):
            machine.enter_pe(i)
            pe["R"].set(float(i + tick))
            pe.count_op()  # busy and counted, but never emits
            machine.exit_pe()
        machine.end_tick()
    return machine.finalize(iterations=2, serial_ops=4)
