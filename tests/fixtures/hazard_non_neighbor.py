"""Seeded hazard: a PE reads two hops away on a line topology."""

from __future__ import annotations

from repro.analysis import HazardSanitizer
from repro.systolic.fabric import RunReport, SystolicMachine


def run(mode: str = "record") -> RunReport:
    machine = SystolicMachine(
        "fixture-non-neighbor", sanitizer=HazardSanitizer(mode=mode)
    )
    pes = machine.add_pes(4)
    for pe in pes:
        pe.reg("R", 1.0)
    for i, pe in enumerate(pes):
        machine.enter_pe(i)
        if i + 2 < len(pes):
            pe["R"].set(pes[i + 2]["R"].value)  # skips a hop on the line
        pe.count_op()
        machine.emit("op", i, "skip")
        machine.exit_pe()
    machine.end_tick()
    return machine.finalize(iterations=1, serial_ops=2)
