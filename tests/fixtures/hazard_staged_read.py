"""Seeded hazard: a PE reads back a register it just staged."""

from __future__ import annotations

from repro.analysis import HazardSanitizer
from repro.systolic.fabric import RunReport, SystolicMachine


def run(mode: str = "record") -> RunReport:
    machine = SystolicMachine(
        "fixture-staged-read", sanitizer=HazardSanitizer(mode=mode)
    )
    pes = machine.add_pes(2)
    for pe in pes:
        pe.reg("ACC", 0.0)
    for tick in range(2):
        for i, pe in enumerate(pes):
            machine.enter_pe(i)
            pe["ACC"].set(float(tick))
            stale = pe["ACC"].value  # still pre-tick: the set has not latched
            pe.count_op()
            machine.emit("op", i, f"v{stale}")
            machine.exit_pe()
        machine.end_tick()
    return machine.finalize(iterations=2, serial_ops=4)
