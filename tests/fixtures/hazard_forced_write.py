"""Seeded hazard: design code forces a register outside an injector."""

from __future__ import annotations

from repro.analysis import HazardSanitizer
from repro.systolic.fabric import RunReport, SystolicMachine


def run(mode: str = "record") -> RunReport:
    machine = SystolicMachine(
        "fixture-forced-write", sanitizer=HazardSanitizer(mode=mode)
    )
    pes = machine.add_pes(2)
    for pe in pes:
        pe.reg("R", 0.0)
    for i, pe in enumerate(pes):
        machine.enter_pe(i)
        pe["R"].force(42.0)  # bypasses the latch discipline entirely
        pe.count_op()
        machine.emit("op", i, "force")
        machine.exit_pe()
    machine.end_tick()
    return machine.finalize(iterations=1, serial_ops=2)
