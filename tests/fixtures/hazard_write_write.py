"""Seeded hazard: the same register driven twice in one tick."""

from __future__ import annotations

from repro.analysis import HazardSanitizer
from repro.systolic.fabric import RunReport, SystolicMachine


def run(mode: str = "record") -> RunReport:
    machine = SystolicMachine(
        "fixture-write-write", sanitizer=HazardSanitizer(mode=mode)
    )
    pes = machine.add_pes(2)
    for pe in pes:
        pe.reg("R", 0.0)
    for tick in range(2):
        for i, pe in enumerate(pes):
            machine.enter_pe(i)
            pe["R"].set(float(tick))
            pe["R"].set(float(tick) + 1.0)  # double drive: no latch between
            pe.count_op()
            machine.emit("op", i, "w")
            machine.exit_pe()
        machine.end_tick()
    return machine.finalize(iterations=2, serial_ops=4)
