"""Negative control: a correct neighbor shift chain, hazard-free."""

from __future__ import annotations

from repro.analysis import HazardSanitizer
from repro.systolic.fabric import RunReport, SystolicMachine


def run(mode: str = "raise") -> RunReport:
    machine = SystolicMachine(
        "fixture-clean-shift", record_trace=True,
        sanitizer=HazardSanitizer(mode=mode),
    )
    pes = machine.add_pes(4)
    for pe in pes:
        pe.reg("R", 0.0)
    for tick in range(4):
        for i, pe in enumerate(pes):
            machine.enter_pe(i)
            if i > 0:
                pe["R"].set(pes[i - 1]["R"].value)  # one hop west, pre-tick
            else:
                pe["R"].set(float(tick))
            pe.count_op()
            machine.emit("op", i, "shift")
            machine.exit_pe()
        machine.end_tick()
    return machine.finalize(iterations=4, serial_ops=16)
