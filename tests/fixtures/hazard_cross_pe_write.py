"""Seeded hazard: a PE writes into its neighbour's register file."""

from __future__ import annotations

from repro.analysis import HazardSanitizer
from repro.systolic.fabric import RunReport, SystolicMachine


def run(mode: str = "record") -> RunReport:
    machine = SystolicMachine(
        "fixture-cross-pe-write", sanitizer=HazardSanitizer(mode=mode)
    )
    pes = machine.add_pes(3)
    for pe in pes:
        pe.reg("R", 1.0)
    for i in range(len(pes) - 1):
        pe = pes[i]
        machine.enter_pe(i)
        pes[i + 1]["R"].set(pe["R"].value)  # pushes into the neighbour
        pe.count_op()
        machine.emit("op", i, "push")
        machine.exit_pe()
    machine.end_tick()
    return machine.finalize(iterations=1, serial_ops=2)
