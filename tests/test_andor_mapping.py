"""Unit tests for the level-synchronous array mapping."""

from __future__ import annotations

import numpy as np
import pytest

from repro.andor import (
    fold_multistage,
    map_to_array,
    matrix_chain_andor,
    serialize,
)
from repro.dp import solve_matrix_chain
from repro.graphs import uniform_multistage
from repro.systolic import t_p_recurrence


class TestMapping:
    def test_rejects_nonserial(self, rng):
        mc = matrix_chain_andor([2, 3, 4, 5])
        with pytest.raises(ValueError, match="serialize"):
            map_to_array(mc.graph)

    def test_maps_serialized_chain_graph(self, rng):
        dims = list(rng.integers(1, 20, size=6))
        mc = matrix_chain_andor(dims)
        ser = serialize(mc.graph)
        lm = map_to_array(ser.graph)
        assert lm.values[ser.node_map[mc.root]] == solve_matrix_chain(dims).cost
        assert lm.num_levels == ser.serialized_levels
        assert lm.dummy_nodes == ser.dummies_added
        assert lm.num_pes == len(ser.graph)

    def test_chain_levels_are_2n_minus_1(self, rng):
        # Leaf level + (AND level + OR level) per span 2..N.
        for n in (3, 5, 7):
            dims = list(rng.integers(1, 9, size=n + 1))
            ser = serialize(matrix_chain_andor(dims).graph)
            lm = map_to_array(ser.graph)
            assert lm.num_levels == 2 * n - 1

    def test_steps_track_tp_order(self, rng):
        # The mapped schedule length grows like T_p(N) = 2N: same order,
        # within a small additive constant of the Prop-3 recurrence.
        for n in (4, 6, 8):
            dims = list(rng.integers(1, 9, size=n + 1))
            ser = serialize(matrix_chain_andor(dims).graph)
            steps = map_to_array(ser.graph).steps
            assert abs(steps - t_p_recurrence(n)) <= n  # same 2N order
            assert steps >= 2 * n - 1

    def test_folded_multistage_maps_directly(self, rng):
        g = uniform_multistage(rng, 5, 2)
        fm = fold_multistage(g, p=2)
        lm = map_to_array(fm.graph)
        assert lm.dummy_nodes == 0
        assert lm.num_levels == fm.graph.height(int(fm.root_or[0, 0])) + 1

    def test_compare_capacity_shortens_or_levels(self, rng):
        g = uniform_multistage(rng, 9, 3)  # wide OR nodes (m^{p-1}=3 arcs)
        fm = fold_multistage(g, p=2)
        slow = map_to_array(fm.graph, compare_capacity=1)
        fast = map_to_array(fm.graph, compare_capacity=8)
        assert fast.steps <= slow.steps

    def test_bad_capacity_rejected(self, rng):
        g = uniform_multistage(rng, 3, 2)
        fm = fold_multistage(g, p=2)
        with pytest.raises(ValueError):
            map_to_array(fm.graph, compare_capacity=0)

    def test_ops_accounting(self, rng):
        g = uniform_multistage(rng, 3, 2)  # N=2, p=2 folded graph
        fm = fold_multistage(g, p=2)
        lm = map_to_array(fm.graph)
        # Level 1: m^3 AND nodes with 2 children each -> 2 ops apiece.
        assert lm.ops_per_level[1] == 8 * 2
        # Level 2: m^2 OR nodes over m alternatives -> m-1 folds apiece.
        assert lm.ops_per_level[2] == 4 * 1
