"""The lint driver and its CLI subcommand: gates, JSON, exit codes."""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.__main__ import main
from repro.analysis import run_lint
from repro.analysis.lint import LintReport, default_lint_paths

REPO = pathlib.Path(__file__).parent.parent
FIXTURE_DIR = pathlib.Path(__file__).parent / "fixtures"


class TestRunLint:
    def test_shipped_tree_is_clean(self):
        report = run_lint([REPO / "src" / "repro"], run_tools=False)
        assert report.findings == []
        assert report.ok
        assert report.files_checked > 50

    def test_fixture_tree_fails(self):
        report = run_lint([FIXTURE_DIR], run_tools=False)
        assert not report.ok
        rules = {f.rule for f in report.findings}
        assert {
            "write-write", "read-after-staged-write", "cross-pe-write",
            "non-neighbor-link", "forced-write", "silent-op",
        } <= rules

    def test_single_file_path(self):
        report = run_lint(
            [FIXTURE_DIR / "hazard_forced_write.py"], run_tools=False
        )
        assert report.files_checked == 1
        assert [f.rule for f in report.findings] == ["forced-write"]

    def test_default_paths_point_at_the_package(self):
        (pkg,) = default_lint_paths()
        assert pkg.name == "repro"
        assert (pkg / "systolic" / "fabric.py").exists()

    def test_skipped_tools_do_not_fail_the_gate(self):
        report = run_lint([FIXTURE_DIR / "clean_shift.py"], run_tools=False)
        assert report.tools["ruff"]["status"] == "skipped"
        assert report.tools["mypy"]["status"] == "skipped"
        assert report.ok

    def test_unavailable_or_ok_tools_when_enabled(self):
        # Without ruff/mypy installed the sections degrade gracefully;
        # with them installed (CI) they must actually pass.
        report = run_lint([FIXTURE_DIR / "clean_shift.py"], run_tools=True)
        for name in ("ruff", "mypy"):
            assert report.tools[name]["status"] in ("ok", "unavailable", "failed")
        if all(
            report.tools[n]["status"] == "unavailable" for n in ("ruff", "mypy")
        ):
            assert report.ok

    def test_report_json_shape(self):
        report = run_lint(
            [FIXTURE_DIR / "hazard_silent_op.py"],
            include_suppressed=True, run_tools=False,
        )
        data = json.loads(report.to_json())
        assert data["kind"] == "lint_report"
        assert data["ok"] is False
        assert data["findings"][0]["rule"] == "silent-op"
        assert isinstance(data["link_graph"], dict)

    def test_failed_tool_fails_the_gate(self):
        report = LintReport(
            files_checked=1, findings=[], suppressed=[], link_graph={},
            tools={"ruff": {"status": "failed", "findings": 3}},
        )
        assert not report.ok


class TestCliLint:
    def test_clean_tree_exits_zero(self, capsys):
        rc = main(["lint", str(REPO / "src" / "repro"), "--no-tools"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "lint clean" in out

    def test_fixture_tree_exits_one(self, capsys):
        rc = main(["lint", str(FIXTURE_DIR), "--no-tools"])
        out = capsys.readouterr().out
        assert rc == 1
        assert "lint FAILED" in out
        assert "forced-write" in out

    def test_json_artifact(self, tmp_path, capsys):
        out_file = tmp_path / "lint.json"
        rc = main([
            "lint", str(FIXTURE_DIR / "clean_shift.py"),
            "--no-tools", "--json", str(out_file),
        ])
        capsys.readouterr()
        assert rc == 0
        data = json.loads(out_file.read_text())
        assert data["kind"] == "lint_report" and data["ok"]

    def test_missing_path_exits_two(self, capsys):
        rc = main(["lint", "/no/such/tree", "--no-tools"])
        err = capsys.readouterr().err
        assert rc == 2
        assert "error:" in err

    def test_include_suppressed_lists_them(self, tmp_path, capsys):
        src = tmp_path / "suppressed.py"
        src.write_text(
            "def hack(reg):\n"
            "    reg.force(1.0)  # systolic: allow(forced-write) scan restore\n"
        )
        rc = main(["lint", str(src), "--no-tools", "--include-suppressed"])
        out = capsys.readouterr().out
        assert rc == 0  # suppressed findings never fail the gate
        assert "suppressed: scan restore" in out


class TestCliStrictTrace:
    def test_strict_trace_clean_design(self, capsys):
        rc = main([
            "trace", "--design", "mesh", "--export", "ascii", "--strict",
            "--n", "3", "--m", "3",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "hazard sanitizer: 0 hazard(s)" in out

    @pytest.mark.parametrize("design", ["pipelined", "broadcast", "feedback", "paren"])
    def test_strict_trace_all_designs(self, design, capsys):
        rc = main([
            "trace", "--design", design, "--export", "ascii", "--strict",
            "--n", "4", "--m", "3",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "hazard sanitizer: 0 hazard(s)" in out
