"""Unit tests for semiring matrix algebra."""

from __future__ import annotations

import numpy as np
import pytest

from repro.semiring import (
    BOOLEAN,
    MAX_PLUS,
    MIN_MAX,
    MIN_PLUS,
    PLUS_TIMES,
    SemiringError,
    chain_product,
    chain_product_tree,
    closure,
    matmul,
    matmul_with_arg,
    matrix_power,
    matvec,
    vecmat,
)


def brute_minplus_matmul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    n, k = a.shape
    _, m = b.shape
    out = np.full((n, m), np.inf)
    for i in range(n):
        for j in range(m):
            for kk in range(k):
                out[i, j] = min(out[i, j], a[i, kk] + b[kk, j])
    return out


class TestMatmul:
    def test_against_brute_force(self, rng):
        a = rng.uniform(0, 9, (4, 5))
        b = rng.uniform(0, 9, (5, 3))
        assert np.allclose(matmul(MIN_PLUS, a, b), brute_minplus_matmul(a, b))

    def test_plus_times_matches_numpy(self, rng):
        a = rng.uniform(-2, 2, (6, 4))
        b = rng.uniform(-2, 2, (4, 7))
        assert np.allclose(matmul(PLUS_TIMES, a, b), a @ b)

    def test_blocking_matches_unblocked(self, rng):
        a = rng.uniform(0, 5, (17, 9))
        b = rng.uniform(0, 5, (9, 11))
        full = matmul(MIN_PLUS, a, b)
        blocked = matmul(MIN_PLUS, a, b, block_rows=3)
        assert np.array_equal(full, blocked)

    def test_missing_edges_propagate(self):
        a = np.array([[np.inf, 1.0], [2.0, np.inf]])
        b = np.array([[np.inf, 3.0], [4.0, np.inf]])
        c = matmul(MIN_PLUS, a, b)
        assert c[0, 0] == 5.0  # via a[0,1] + b[1,0]
        assert np.isinf(c[0, 1])

    def test_shape_mismatch(self):
        with pytest.raises(SemiringError, match="inner dimensions"):
            matmul(MIN_PLUS, np.zeros((2, 3)), np.zeros((2, 3)))

    def test_non_2d_rejected(self):
        with pytest.raises(SemiringError, match="2-D"):
            matmul(MIN_PLUS, np.zeros(3), np.zeros((3, 3)))

    def test_min_max_bottleneck(self):
        # min-max: cheapest worst edge on a two-hop path.
        a = np.array([[2.0, 9.0]])
        b = np.array([[5.0], [1.0]])
        c = matmul(MIN_MAX, a, b)
        # paths: max(2,5)=5 or max(9,1)=9 -> min is 5
        assert c[0, 0] == 5.0

    def test_boolean_reachability(self):
        a = np.array([[1.0, 0.0], [0.0, 1.0]])
        b = np.array([[0.0, 1.0], [1.0, 0.0]])
        c = matmul(BOOLEAN, a, b)
        assert np.array_equal(c, np.array([[0.0, 1.0], [1.0, 0.0]]))


class TestMatmulWithArg:
    def test_values_match_matmul(self, rng):
        a = rng.uniform(0, 9, (4, 6))
        b = rng.uniform(0, 9, (6, 5))
        val, arg = matmul_with_arg(MIN_PLUS, a, b)
        assert np.allclose(val, matmul(MIN_PLUS, a, b))

    def test_arg_identifies_winner(self, rng):
        a = rng.uniform(0, 9, (3, 4))
        b = rng.uniform(0, 9, (4, 3))
        val, arg = matmul_with_arg(MIN_PLUS, a, b)
        for i in range(3):
            for j in range(3):
                k = arg[i, j]
                assert np.isclose(a[i, k] + b[k, j], val[i, j])

    def test_rejects_semiring_without_argreduce(self):
        with pytest.raises(SemiringError, match="arg-reduction"):
            matmul_with_arg(PLUS_TIMES, np.zeros((2, 2)), np.zeros((2, 2)))


class TestMatvecVecmat:
    def test_matvec_matches_matmul(self, rng):
        a = rng.uniform(0, 9, (4, 5))
        x = rng.uniform(0, 9, 5)
        assert np.allclose(matvec(MIN_PLUS, a, x), matmul(MIN_PLUS, a, x[:, None])[:, 0])

    def test_vecmat_matches_matmul(self, rng):
        a = rng.uniform(0, 9, (4, 5))
        x = rng.uniform(0, 9, 4)
        assert np.allclose(vecmat(MIN_PLUS, x, a), matmul(MIN_PLUS, x[None, :], a)[0])

    def test_matvec_shape_errors(self):
        with pytest.raises(SemiringError):
            matvec(MIN_PLUS, np.zeros((2, 3)), np.zeros(2))
        with pytest.raises(SemiringError):
            matvec(MIN_PLUS, np.zeros((2, 3)), np.zeros((3, 1)))

    def test_vecmat_shape_errors(self):
        with pytest.raises(SemiringError):
            vecmat(MIN_PLUS, np.zeros(3), np.zeros((2, 3)))


class TestChainProducts:
    def test_left_and_tree_orders_agree(self, rng):
        mats = [rng.uniform(0, 5, (3, 3)) for _ in range(9)]
        assert np.allclose(
            chain_product(MIN_PLUS, mats), chain_product_tree(MIN_PLUS, mats)
        )

    def test_rectangular_chain(self, rng):
        shapes = [(2, 4), (4, 3), (3, 5), (5, 1)]
        mats = [rng.uniform(0, 5, s) for s in shapes]
        out = chain_product(MIN_PLUS, mats)
        assert out.shape == (2, 1)
        tree = chain_product_tree(MIN_PLUS, mats)
        assert np.allclose(out, tree)

    def test_single_matrix(self, rng):
        m = rng.uniform(0, 5, (3, 3))
        assert np.array_equal(chain_product(MIN_PLUS, [m]), m)
        assert np.array_equal(chain_product_tree(MIN_PLUS, [m]), m)

    def test_empty_chain_rejected(self):
        with pytest.raises(SemiringError):
            chain_product(MIN_PLUS, [])
        with pytest.raises(SemiringError):
            chain_product_tree(MIN_PLUS, [])

    def test_odd_length_tree(self, rng):
        mats = [rng.uniform(0, 5, (2, 2)) for _ in range(7)]
        assert np.allclose(
            chain_product(MIN_PLUS, mats), chain_product_tree(MIN_PLUS, mats)
        )

    def test_max_plus_chain(self, rng):
        mats = [rng.uniform(0, 5, (3, 3)) for _ in range(4)]
        left = chain_product(MAX_PLUS, mats)
        tree = chain_product_tree(MAX_PLUS, mats)
        assert np.allclose(left, tree)


class TestMatrixPower:
    def test_power_zero_is_identity(self):
        a = np.array([[1.0, 2.0], [3.0, 4.0]])
        assert np.array_equal(matrix_power(MIN_PLUS, a, 0), MIN_PLUS.eye(2))

    def test_power_one(self, rng):
        a = rng.uniform(0, 5, (3, 3))
        assert np.allclose(matrix_power(MIN_PLUS, a, 1), a)

    def test_power_matches_repeated_matmul(self, rng):
        a = rng.uniform(0, 5, (4, 4))
        expected = a
        for _ in range(4):
            expected = matmul(MIN_PLUS, expected, a)
        assert np.allclose(matrix_power(MIN_PLUS, a, 5), expected)

    def test_power_counts_exact_walk_lengths(self):
        # Path graph 0->1->2: A^2 reaches 2 from 0; A^1 does not.
        a = np.full((3, 3), np.inf)
        a[0, 1] = 1.0
        a[1, 2] = 1.0
        assert np.isinf(matrix_power(MIN_PLUS, a, 1)[0, 2])
        assert matrix_power(MIN_PLUS, a, 2)[0, 2] == 2.0

    def test_negative_power_rejected(self):
        with pytest.raises(SemiringError):
            matrix_power(MIN_PLUS, np.zeros((2, 2)), -1)

    def test_non_square_rejected(self):
        with pytest.raises(SemiringError):
            matrix_power(MIN_PLUS, np.zeros((2, 3)), 2)


class TestClosure:
    def test_shortest_paths_unbounded_length(self):
        # Cycle 0->1->2->0 with cheap long way around.
        a = np.full((3, 3), np.inf)
        a[0, 1] = 1.0
        a[1, 2] = 1.0
        a[2, 0] = 1.0
        c = closure(MIN_PLUS, a)
        assert c[0, 0] == 0.0  # reflexive
        assert c[0, 2] == 2.0
        assert c[2, 1] == 2.0

    def test_closure_fixed_point(self, rng):
        a = rng.uniform(1, 5, (4, 4))
        c = closure(MIN_PLUS, a)
        again = matmul(MIN_PLUS, c, c)
        assert np.allclose(np.minimum(again, c), c)

    def test_closure_rejects_non_idempotent(self):
        with pytest.raises(SemiringError, match="idempotent"):
            closure(PLUS_TIMES, np.zeros((2, 2)))

    def test_closure_non_square_rejected(self):
        with pytest.raises(SemiringError):
            closure(MIN_PLUS, np.zeros((2, 3)))

    def test_boolean_transitive_closure(self):
        a = np.zeros((4, 4))
        a[0, 1] = a[1, 2] = a[2, 3] = 1.0
        c = closure(BOOLEAN, a)
        assert c[0, 3] == 1.0
        assert c[3, 0] == 0.0
