"""Unit tests for the Theorem-2 node-count analysis (eq. 32-33)."""

from __future__ import annotations

import pytest

from repro.andor import du_dp, is_valid_instance, optimal_partition, u_total_nodes
from repro.andor.counts import u_and_nodes, u_or_nodes


class TestClosedForm:
    def test_levels_sum_directly(self):
        # Recompute u(p) as the explicit level sums of the proof.
        import math

        for n, m, p in [(8, 3, 2), (16, 2, 2), (9, 2, 3), (16, 2, 4)]:
            q = int(math.log(n, p) + 0.5)
            and_sum = sum(p**i * m ** (p + 1) for i in range(q))
            or_sum = sum(p**j * m * m for j in range(q + 1))
            assert u_and_nodes(n, m, p) == and_sum
            assert u_or_nodes(n, m, p) == or_sum
            assert u_total_nodes(n, m, p) == and_sum + or_sum

    def test_example_small(self):
        # N=2, p=2, m: one AND level m^3, OR levels m^2 + 2m^2.
        assert u_total_nodes(2, 3, 2) == 27 + 9 + 18

    def test_invalid_combo_rejected(self):
        with pytest.raises(ValueError):
            u_total_nodes(6, 3, 4)  # 6 not a power of 4
        with pytest.raises(ValueError):
            u_total_nodes(4, 0, 2)


class TestTheorem2:
    def test_binary_beats_larger_p_for_m3(self):
        # m >= 3, p >= 2: u increases monotonically in p.
        n = 64
        m = 3
        values = [u_total_nodes(n, m, p) for p in (2, 4, 8) if is_valid_instance(n, p)]
        assert values == sorted(values)
        assert values[0] < values[1] < values[2]

    def test_binary_beats_larger_p_for_m2(self):
        n = 64
        values = [u_total_nodes(n, 2, p) for p in (2, 4, 8)]
        assert values[0] <= values[1] <= values[2]

    def test_derivative_positive_in_most_of_theorem_region(self):
        # ∂u/∂p > 0 for m >= 4 at p = 2, and for m >= 2 at p >= 3.
        assert du_dp(16, 4, 2.0) > 0
        assert du_dp(16, 5, 2.5) > 0
        assert du_dp(16, 2, 3.0) > 0
        assert du_dp(16, 3, 2.5) > 0

    def test_paper_derivative_claim_fails_at_m3_p2(self):
        # Reproduction finding (recorded in EXPERIMENTS.md): eq. (33) is
        # *negative* at exactly (m=3, p=2) — 27·(ln3 − 1) < 9 — so the
        # paper's "∂u/∂p ≥ 0 for p ≥ 2, m ≥ 3" is slightly overstated.
        # Theorem 2's integer conclusion survives: u(2) < u(p) for all
        # admissible p > 2 (test_binary_beats_larger_p_for_m3).
        assert du_dp(16, 3, 2.0) < 0

    def test_derivative_at_m2_p2_is_negative(self):
        # The theorem's excluded corner: m=2, p=2 is where monotonicity
        # is not guaranteed by the derivative argument.
        assert du_dp(16, 2, 2.0) < 0

    def test_derivative_validation(self):
        with pytest.raises(ValueError):
            du_dp(8, 3, 1.0)

    def test_optimal_partition_is_two(self):
        for n in (4, 16, 64):
            for m in (2, 3, 4):
                best, _ = optimal_partition(n, m)
                assert best == 2

    def test_optimal_partition_on_power_of_three(self):
        best, _ = optimal_partition(27, 3)
        assert best == 3  # only admissible factor

    def test_optimal_partition_no_candidates(self):
        with pytest.raises(ValueError):
            optimal_partition(1, 3)


class TestValidity:
    def test_is_valid_instance(self):
        assert is_valid_instance(8, 2)
        assert is_valid_instance(9, 3)
        assert not is_valid_instance(6, 4)
        assert not is_valid_instance(8, 1)
        assert not is_valid_instance(0, 2)
