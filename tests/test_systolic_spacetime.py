"""Unit tests for space-time diagram rendering and trace capture."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs import fig1b_problem
from repro.systolic import (
    BroadcastMatrixStringArray,
    BroadcastParenthesizer,
    FeedbackSystolicArray,
    MatrixChainSpec,
    MeshMatrixMultiplier,
    PipelinedMatrixStringArray,
    SystolicParenthesizer,
    TraceEvent,
    TriangularArray,
    cell_events,
    render_spacetime,
    trace_to_grid,
)


class TestGrid:
    def test_basic_bucketing(self):
        grid = trace_to_grid([(1, 0, "a"), (2, 1, "b")], num_pes=2, num_ticks=3)
        assert grid[0] == ["a", ".", "."]
        assert grid[1] == [".", "b", "."]

    def test_collision_marked(self):
        grid = trace_to_grid([(1, 0, "a"), (1, 0, "b")], 1, 1)
        assert grid[0][0] == "a/b"

    def test_range_validation(self):
        with pytest.raises(ValueError):
            trace_to_grid([(0, 0, "a")], 1, 1)
        with pytest.raises(ValueError):
            trace_to_grid([(1, 5, "a")], 1, 1)
        with pytest.raises(ValueError):
            trace_to_grid([], 0, 1)


class TestRender:
    def test_render_contains_rows_and_headers(self):
        out = render_spacetime([(1, 0, "x")], num_pes=2, num_ticks=2)
        lines = out.splitlines()
        assert lines[0].lstrip().startswith("t1")
        assert lines[1].startswith("P1")
        assert lines[2].startswith("P2")
        assert "x" in lines[1]


class TestFeedbackTrace:
    def test_trace_off_by_default(self):
        res = FeedbackSystolicArray().run(fig1b_problem())
        assert res.trace == ()

    def test_trace_matches_paper_schedule(self):
        # The Fig. 5 walkthrough: x_{2,1} enters P1 at iteration m+1 = 4;
        # the F=0 sweep occupies the last iterations; P_m sees the final
        # dummy at iteration (N+1)m = 15.
        res = FeedbackSystolicArray().run(fig1b_problem(), record_trace=True)
        events = {(t, pe): label for t, pe, label in res.trace}
        assert events[(4, 0)] == "x2,1"
        assert events[(5, 1)] == "x2,1"  # one PE per iteration
        assert events[(6, 2)] == "x2,1"
        assert events[(15, 2)] == "F0"
        assert events[(1, 0)] == "-"  # stage-1 transit

    def test_no_double_occupancy(self):
        # A PE processes at most one datum per tick (wiring invariant).
        res = FeedbackSystolicArray().run(fig1b_problem(), record_trace=True)
        seen = set()
        for t, pe, _label in res.trace:
            assert (t, pe) not in seen
            seen.add((t, pe))

    def test_render_roundtrip(self):
        res = FeedbackSystolicArray().run(fig1b_problem(), record_trace=True)
        out = render_spacetime(res.trace, 3, res.report.iterations)
        assert "x4,3" in out
        assert "/" not in out  # no collisions


def _matrix_string(rng, n, m):
    mats = [rng.uniform(0, 9, size=(m, m)) for _ in range(n - 1)]
    mats.append(rng.uniform(0, 9, size=(m, 1)))
    return mats


def _all_design_runs():
    """One traced run per shipped design (the event-bus coverage set)."""
    rng = np.random.default_rng(7)
    dims = (8, 30, 35, 15, 5, 10)
    chain = MatrixChainSpec(dims)
    return [
        ("pipelined", PipelinedMatrixStringArray().run(
            _matrix_string(rng, 4, 3), record_trace=True)),
        ("broadcast", BroadcastMatrixStringArray().run(
            _matrix_string(rng, 4, 3), record_trace=True)),
        ("feedback", FeedbackSystolicArray().run(
            fig1b_problem(), record_trace=True)),
        ("mesh", MeshMatrixMultiplier().run(
            rng.uniform(0, 9, size=(3, 4)), rng.uniform(0, 9, size=(4, 2)),
            record_trace=True)),
        ("triangular-broadcast", TriangularArray("broadcast").run(
            chain, record_trace=True)),
        ("triangular-systolic", TriangularArray("systolic").run(
            chain, record_trace=True)),
        ("paren-broadcast", BroadcastParenthesizer().run(
            dims, record_trace=True)),
        ("paren-systolic", SystolicParenthesizer().run(
            dims, record_trace=True)),
    ]


class TestAllDesignsTrace:
    def test_no_double_driven_cells_any_design(self):
        # The wiring invariant across the whole catalogue: bucketing any
        # shipped design's event stream never produces a "/"-joined
        # (double-driven) cell.
        for name, res in _all_design_runs():
            cells = cell_events(res.events)
            assert cells, f"{name}: traced run emitted no cell events"
            num_pes = res.report.num_pes
            num_ticks = max(res.report.wall_ticks, max(t for t, _, _ in cells))
            grid = trace_to_grid(res.events, num_pes, num_ticks)
            joined = [
                (p, t, cell)
                for p, row in enumerate(grid)
                for t, cell in enumerate(row)
                if "/" in cell
            ]
            assert not joined, f"{name}: double-driven cells {joined[:5]}"

    def test_events_are_typed_and_renderable(self):
        for name, res in _all_design_runs():
            assert all(isinstance(ev, TraceEvent) for ev in res.events), name
            kinds = {ev.kind for ev in res.events}
            assert "op" in kinds, name
            out = render_spacetime(
                res.events, res.report.num_pes, res.report.wall_ticks
            )
            assert out.splitlines()[1].startswith("P1"), name
