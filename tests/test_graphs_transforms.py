"""Unit tests for graph transforms and the curve-tracking workload."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dp import solve_backward
from repro.graphs import (
    GraphError,
    add_virtual_terminals,
    curve_tracking_problem,
    random_multistage,
    uniform_multistage,
)
from repro.semiring import MAX_PLUS, MIN_PLUS, chain_product
from repro.systolic import BroadcastMatrixStringArray, PipelinedMatrixStringArray


class TestVirtualTerminals:
    def test_shape(self, rng):
        g = uniform_multistage(rng, 4, 3)
        framed = add_virtual_terminals(g)
        assert framed.stage_sizes == (1, 3, 3, 3, 3, 1)
        assert framed.is_single_source_sink

    def test_optimum_preserved(self, rng):
        g = random_multistage(rng, [3, 4, 2])
        framed = add_virtual_terminals(g)
        full = chain_product(MIN_PLUS, g.as_matrices())
        assert np.isclose(solve_backward(framed).optimum, full.min())

    def test_max_plus_framing(self, rng):
        from repro.graphs import MultistageGraph

        costs = tuple(rng.uniform(0, 5, (3, 3)) for _ in range(2))
        g = MultistageGraph(costs=costs, semiring=MAX_PLUS)
        framed = add_virtual_terminals(g)
        full = chain_product(MAX_PLUS, g.as_matrices())
        assert np.isclose(solve_backward(framed).optimum, full.max())

    def test_framed_uniform_graph_runs_on_arrays(self, rng):
        g = uniform_multistage(rng, 5, 4)  # multi-source, multi-sink
        framed = add_virtual_terminals(g)
        ref = solve_backward(framed).optimum
        pipe = PipelinedMatrixStringArray().run_graph(framed)
        bcast = BroadcastMatrixStringArray().run_graph(framed)
        assert np.isclose(float(pipe.value), ref)
        assert np.isclose(float(bcast.value), ref)

    def test_solver_uses_framing_for_uniform_multisink(self, rng):
        from repro import solve

        g = uniform_multistage(rng, 5, 4)
        rep = solve(g)
        assert rep.method == "fig3-pipelined-array"
        assert np.isclose(rep.optimum, solve_backward(g).optimum)


class TestCurveTracking:
    def test_shape_and_cost_structure(self, rng):
        g = curve_tracking_problem(rng, 6, 8)
        assert g.stage_sizes == (8,) * 6
        # Edge costs grow with bend distance for a fixed target column.
        c = g.costs[0]
        assert c[0, 7] > c[0, 1]

    def test_dp_path_follows_bright_ridge(self):
        # With strong contrast the optimal path's mean intensity gain
        # must be near the ridge value; check the path is smooth too.
        rng = np.random.default_rng(3)
        g = curve_tracking_problem(rng, 12, 10, smoothness=0.8, noise=0.05)
        sol = solve_backward(g)
        jumps = [abs(a - b) for a, b in zip(sol.path.nodes, sol.path.nodes[1:])]
        assert max(jumps) <= 2  # smoothness keeps the track contiguous

    def test_framed_curve_runs_on_array(self, rng):
        g = curve_tracking_problem(rng, 7, 5)
        framed = add_virtual_terminals(g)
        res = PipelinedMatrixStringArray().run_graph(framed)
        assert np.isclose(float(res.value), solve_backward(framed).optimum)

    def test_validation(self, rng):
        with pytest.raises(GraphError):
            curve_tracking_problem(rng, 1, 5)
        with pytest.raises(GraphError):
            curve_tracking_problem(rng, 5, 1)
