"""Smoke tests: every shipped example must run clean end-to-end.

The examples assert their own cross-validation internally, so a passing
run is a real integration check, not just an import check.
"""

from __future__ import annotations

import pathlib
import runpy

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).resolve().parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script, capsys):
    runpy.run_path(str(script), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip()  # every example reports something


def test_all_expected_examples_present():
    names = {p.stem for p in EXAMPLES}
    assert {
        "quickstart",
        "traffic_control",
        "matrix_chain_ordering",
        "resource_allocation",
        "granularity_study",
        "inventory_control",
        "optimal_search_tree",
    } <= names
