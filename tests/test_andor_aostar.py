"""Unit tests for the explicit (Nilsson) AO* algorithm."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.andor import (
    NodeKind,
    ao_star,
    ao_star_explicit,
    fold_multistage,
    matrix_chain_andor,
)
from repro.dp import solve_matrix_chain
from repro.graphs import uniform_multistage
from repro.semiring import MAX_PLUS
from repro.andor.graph import AndOrGraph


class TestCorrectness:
    def test_matches_dp_on_chain_graphs(self):
        for seed in range(6):
            rng = np.random.default_rng(seed)
            dims = list(rng.integers(1, 40, size=7))
            mc = matrix_chain_andor(dims)
            res = ao_star_explicit(mc.graph, mc.root)
            assert res.cost == solve_matrix_chain(dims).cost

    def test_matches_memoized_variant(self, rng):
        dims = list(rng.integers(1, 30, size=8))
        mc = matrix_chain_andor(dims)
        assert (
            ao_star_explicit(mc.graph, mc.root).cost
            == ao_star(mc.graph, mc.root).cost
        )

    def test_folded_multistage_roots(self, rng):
        g = uniform_multistage(rng, 5, 2)
        fm = fold_multistage(g, p=2)
        vals = fm.graph.evaluate()
        for u in range(2):
            for v in range(2):
                nid = int(fm.root_or[u, v])
                assert ao_star_explicit(fm.graph, nid).cost == pytest.approx(
                    vals[nid]
                )

    def test_solution_tree_is_consistent(self, rng):
        dims = list(rng.integers(1, 30, size=6))
        mc = matrix_chain_andor(dims)
        res = ao_star_explicit(mc.graph, mc.root)
        # Recompute the cost along the marked tree only.
        vals = mc.graph.evaluate()
        for nid in res.solution_nodes:
            node = mc.graph.nodes[nid]
            if node.kind is NodeKind.OR:
                assert any(c in res.solution_nodes for c in node.children)
        assert res.cost == vals[mc.root]


class TestHeuristics:
    def test_exact_heuristic_minimizes_expansion(self, rng):
        dims = list(rng.integers(1, 60, size=9))
        mc = matrix_chain_andor(dims)
        blind = ao_star_explicit(mc.graph, mc.root)
        vals = mc.graph.evaluate()
        informed = ao_star_explicit(
            mc.graph, mc.root, heuristic=lambda n: float(vals[n])
        )
        assert informed.cost == blind.cost
        assert informed.nodes_expanded < blind.nodes_expanded
        # The informed search expands little beyond the solution tree.
        assert informed.nodes_expanded <= len(informed.solution_nodes) + 2

    def test_scaled_admissible_heuristic_stays_optimal(self, rng):
        dims = list(rng.integers(1, 40, size=7))
        mc = matrix_chain_andor(dims)
        vals = mc.graph.evaluate()
        res = ao_star_explicit(
            mc.graph, mc.root, heuristic=lambda n: 0.5 * float(vals[n])
        )
        assert res.cost == solve_matrix_chain(dims).cost

    def test_expansion_never_exceeds_total(self, rng):
        dims = list(rng.integers(1, 20, size=8))
        mc = matrix_chain_andor(dims)
        res = ao_star_explicit(mc.graph, mc.root)
        assert res.nodes_expanded <= res.nodes_total


class TestValidation:
    def test_requires_min_plus(self):
        g = AndOrGraph(MAX_PLUS)
        a = g.add_leaf(1.0)
        root = g.add_or([a])
        with pytest.raises(ValueError, match="min-plus"):
            ao_star_explicit(g, root)

    def test_bad_root(self, rng):
        mc = matrix_chain_andor([2, 3, 4])
        with pytest.raises(ValueError):
            ao_star_explicit(mc.graph, 99)

    def test_trivial_graphs(self):
        g = AndOrGraph()
        leaf = g.add_leaf(7.0)
        assert ao_star_explicit(g, leaf).cost == 7.0
        root = g.add_or([leaf])
        assert ao_star_explicit(g, root).cost == 7.0
        anded = g.add_and([leaf, leaf], cost=1.0)
        assert ao_star_explicit(g, anded).cost == 15.0


@given(
    seed=st.integers(min_value=0, max_value=500),
    n=st.integers(min_value=2, max_value=8),
)
@settings(max_examples=30, deadline=None)
def test_property_explicit_ao_star_optimal(seed, n):
    rng = np.random.default_rng(seed)
    dims = list(rng.integers(1, 30, size=n + 1))
    mc = matrix_chain_andor(dims)
    res = ao_star_explicit(mc.graph, mc.root)
    assert res.cost == solve_matrix_chain(dims).cost
