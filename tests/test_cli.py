"""Unit tests for the ``python -m repro`` command-line interface."""

from __future__ import annotations

import pytest

from repro.__main__ import main


class TestDemo:
    def test_demo_prints_all_classes(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        for cls in ("monadic-serial", "polyadic-serial", "monadic-nonserial", "polyadic-nonserial"):
            assert cls in out
        assert "True" in out and "False" not in out

    def test_demo_seed_changes_instances(self, capsys):
        main(["demo", "--seed", "1"])
        out1 = capsys.readouterr().out
        main(["demo", "--seed", "2"])
        out2 = capsys.readouterr().out
        assert out1 != out2  # random workloads differ
        main(["demo", "--seed", "1"])
        assert capsys.readouterr().out == out1  # but are reproducible


class TestFig6:
    def test_fig6_small_n(self, capsys):
        assert main(["fig6", "--n", "256"]) == 0
        out = capsys.readouterr().out
        assert "argmin of K*T^2" in out
        assert "N/log2(N) = 32" in out

    def test_fig6_default(self, capsys):
        assert main(["fig6"]) == 0
        out = capsys.readouterr().out
        assert "K = 399" in out  # the measured argmin for N=4096


class TestSpacetime:
    def test_spacetime_renders(self, capsys):
        assert main(["spacetime", "--stages", "3", "--values", "2"]) == 0
        out = capsys.readouterr().out
        assert "P1" in out and "P2" in out
        assert "F0" in out
        assert "8 iterations" in out  # (N+1)*m = 4*2

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestBench:
    def test_bench_times_both_backends(self, capsys):
        assert main(["bench", "--n", "6", "--m", "4"]) == 0
        out = capsys.readouterr().out
        assert "backend=rtl" in out
        assert "backend=fast" in out
        assert "speedup fast vs rtl" in out

    def test_bench_writes_record(self, tmp_path, capsys):
        import json

        f = tmp_path / "BENCH_smoke.json"
        assert main(["bench", "--n", "6", "--m", "4", "--json", str(f)]) == 0
        record = json.loads(f.read_text())
        assert record["design"] == "fig3-pipelined"
        assert record["N"] == 6 and record["m"] == 4
        assert record["iterations"] > 0

    def test_demo_backend_flag(self, capsys):
        assert main(["demo", "--backend", "fast"]) == 0
        out = capsys.readouterr().out
        assert out.count("True") == 4
