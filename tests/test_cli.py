"""Unit tests for the ``python -m repro`` command-line interface."""

from __future__ import annotations

import pytest

from repro.__main__ import main


class TestDemo:
    def test_demo_prints_all_classes(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        for cls in ("monadic-serial", "polyadic-serial", "monadic-nonserial", "polyadic-nonserial"):
            assert cls in out
        assert "True" in out and "False" not in out

    def test_demo_seed_changes_instances(self, capsys):
        main(["demo", "--seed", "1"])
        out1 = capsys.readouterr().out
        main(["demo", "--seed", "2"])
        out2 = capsys.readouterr().out
        assert out1 != out2  # random workloads differ
        main(["demo", "--seed", "1"])
        assert capsys.readouterr().out == out1  # but are reproducible


class TestFig6:
    def test_fig6_small_n(self, capsys):
        assert main(["fig6", "--n", "256"]) == 0
        out = capsys.readouterr().out
        assert "argmin of K*T^2" in out
        assert "N/log2(N) = 32" in out

    def test_fig6_default(self, capsys):
        assert main(["fig6"]) == 0
        out = capsys.readouterr().out
        assert "K = 399" in out  # the measured argmin for N=4096


class TestSpacetime:
    def test_spacetime_renders(self, capsys):
        assert main(["spacetime", "--stages", "3", "--values", "2"]) == 0
        out = capsys.readouterr().out
        assert "P1" in out and "P2" in out
        assert "F0" in out
        assert "8 iterations" in out  # (N+1)*m = 4*2

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestBench:
    def test_bench_times_both_backends(self, capsys):
        assert main(["bench", "--n", "6", "--m", "4"]) == 0
        out = capsys.readouterr().out
        assert "backend=rtl" in out
        assert "backend=fast" in out
        assert "speedup fast vs rtl" in out

    def test_bench_writes_record(self, tmp_path, capsys):
        import json

        f = tmp_path / "BENCH_smoke.json"
        assert main(["bench", "--n", "6", "--m", "4", "--json", str(f)]) == 0
        record = json.loads(f.read_text())
        assert record["design"] == "fig3-pipelined"
        assert record["N"] == 6 and record["m"] == 4
        assert record["iterations"] > 0

    def test_demo_backend_flag(self, capsys):
        assert main(["demo", "--backend", "fast"]) == 0
        out = capsys.readouterr().out
        assert out.count("True") == 4

    def test_bench_all_designs_writes_uniform_records(self, tmp_path, capsys):
        import json

        assert main(
            ["bench", "--design", "all", "--n", "4", "--m", "3",
             "--backend", "fast", "--out-dir", str(tmp_path)]
        ) == 0
        records = sorted(tmp_path.glob("BENCH_*.json"))
        assert len(records) == 5
        names = {json.loads(f.read_text())["design"] for f in records}
        assert names == {
            "fig3-pipelined", "fig4-broadcast", "fig5-feedback",
            "mesh-matmul", "parenthesizer-systolic",
        }
        keys = {"bench", "design", "backend", "N", "m", "wall_seconds",
                "iterations", "pu"}
        for f in records:
            record = json.loads(f.read_text())
            assert set(record) == keys
            assert record["backend"] == "fast"


class TestSpacetimeJson:
    def test_spacetime_json_timeline(self, capsys):
        import json

        assert main(["spacetime", "--stages", "3", "--values", "2", "--json"]) == 0
        record = json.loads(capsys.readouterr().out)
        assert record["kind"] == "telemetry_timeline"
        assert record["design"] == "fig5-feedback"
        assert record["num_pes"] == 2
        assert record["pu"]["iterations"] == 8  # (N+1)*m = 4*2


class TestTrace:
    @pytest.mark.parametrize(
        "design", ["pipelined", "broadcast", "feedback", "mesh", "paren"]
    )
    def test_trace_chrome_every_design(self, design, tmp_path, capsys):
        import json

        from repro.telemetry import validate_chrome_trace

        out = tmp_path / "trace.json"
        assert main(
            ["trace", "--design", design, "--export", "chrome",
             "--n", "4", "--m", "3", "--out", str(out)]
        ) == 0
        text = capsys.readouterr().out
        assert "(rtl):" in text and "PU " in text
        summary = validate_chrome_trace(json.loads(out.read_text()))
        assert summary["events"] > 0

    def test_trace_ascii_heatmap_and_phase_table(self, capsys):
        assert main(
            ["trace", "--design", "pipelined", "--export", "ascii",
             "--n", "4", "--m", "3"]
        ) == 0
        out = capsys.readouterr().out
        assert "space-time occupancy:" in out
        assert "phase  label" in out

    def test_trace_json_record_loads(self, tmp_path, capsys):
        from repro.io import load_run_record

        out = tmp_path / "run.json"
        assert main(
            ["trace", "--design", "feedback", "--export", "json",
             "--n", "4", "--m", "3", "--out", str(out)]
        ) == 0
        rec = load_run_record(out)
        assert rec.report.design == "fig5-feedback"
        assert rec.events
        assert rec.metrics is not None
        assert rec.timings is not None

    def test_trace_metrics_formats(self, tmp_path, capsys):
        import json

        snap = tmp_path / "metrics.json"
        prom = tmp_path / "metrics.prom"
        trace = tmp_path / "trace.json"
        assert main(
            ["trace", "--design", "feedback", "--n", "4", "--m", "3",
             "--out", str(trace), "--metrics", str(snap)]
        ) == 0
        assert json.loads(snap.read_text())["kind"] == "metrics_snapshot"
        assert main(
            ["trace", "--design", "feedback", "--n", "4", "--m", "3",
             "--out", str(trace), "--metrics", str(prom)]
        ) == 0
        assert "# TYPE repro_trace_events_total counter" in prom.read_text()


class TestCompare:
    def test_compare_identical_and_changed(self, tmp_path, capsys):
        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        assert main(
            ["trace", "--design", "feedback", "--export", "json",
             "--n", "4", "--m", "3", "--out", str(a)]
        ) == 0
        assert main(
            ["trace", "--design", "feedback", "--export", "json",
             "--n", "5", "--m", "3", "--out", str(b)]
        ) == 0
        capsys.readouterr()
        assert main(["compare", str(a), str(b)]) == 0
        out = capsys.readouterr().out
        assert out.splitlines()[0].split()[:3] == ["metric", "a.json", "b.json"]
        assert "iterations" in out
        assert main(["compare", str(a), str(a), "--only-changed"]) == 0
        out = capsys.readouterr().out
        # Identical runs: report scalars vanish; only wall-clock timings
        # (never reproducible) may remain.
        for line in out.splitlines()[2:]:
            assert line.startswith(("timing:", "(no metrics)"))
