"""Unit tests for the ``python -m repro`` command-line interface."""

from __future__ import annotations

import pytest

from repro.__main__ import main


class TestDemo:
    def test_demo_prints_all_classes(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        for cls in ("monadic-serial", "polyadic-serial", "monadic-nonserial", "polyadic-nonserial"):
            assert cls in out
        assert "True" in out and "False" not in out

    def test_demo_seed_changes_instances(self, capsys):
        main(["demo", "--seed", "1"])
        out1 = capsys.readouterr().out
        main(["demo", "--seed", "2"])
        out2 = capsys.readouterr().out
        assert out1 != out2  # random workloads differ
        main(["demo", "--seed", "1"])
        assert capsys.readouterr().out == out1  # but are reproducible


class TestFig6:
    def test_fig6_small_n(self, capsys):
        assert main(["fig6", "--n", "256"]) == 0
        out = capsys.readouterr().out
        assert "argmin of K*T^2" in out
        assert "N/log2(N) = 32" in out

    def test_fig6_default(self, capsys):
        assert main(["fig6"]) == 0
        out = capsys.readouterr().out
        assert "K = 399" in out  # the measured argmin for N=4096


class TestSpacetime:
    def test_spacetime_renders(self, capsys):
        assert main(["spacetime", "--stages", "3", "--values", "2"]) == 0
        out = capsys.readouterr().out
        assert "P1" in out and "P2" in out
        assert "F0" in out
        assert "8 iterations" in out  # (N+1)*m = 4*2

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestBench:
    def test_bench_times_both_backends(self, capsys):
        assert main(["bench", "--n", "6", "--m", "4"]) == 0
        out = capsys.readouterr().out
        assert "backend=rtl" in out
        assert "backend=fast" in out
        assert "speedup fast vs rtl" in out

    def test_bench_writes_record(self, tmp_path, capsys):
        import json

        f = tmp_path / "BENCH_smoke.json"
        assert main(["bench", "--n", "6", "--m", "4", "--json", str(f)]) == 0
        record = json.loads(f.read_text())
        assert record["design"] == "fig3-pipelined"
        assert record["N"] == 6 and record["m"] == 4
        assert record["iterations"] > 0

    def test_demo_backend_flag(self, capsys):
        assert main(["demo", "--backend", "fast"]) == 0
        out = capsys.readouterr().out
        assert out.count("True") == 4

    def test_bench_all_designs_writes_uniform_records(self, tmp_path, capsys):
        import json

        assert main(
            ["bench", "--design", "all", "--n", "4", "--m", "3",
             "--backend", "fast", "--out-dir", str(tmp_path)]
        ) == 0
        summary_path = tmp_path / "BENCH_all.json"
        records = sorted(
            f for f in tmp_path.glob("BENCH_*.json") if f != summary_path
        )
        assert len(records) == 5
        names = {json.loads(f.read_text())["design"] for f in records}
        assert names == {
            "fig3-pipelined", "fig4-broadcast", "fig5-feedback",
            "mesh-matmul", "parenthesizer-systolic",
        }
        keys = {"bench", "design", "backend", "N", "m", "wall_seconds",
                "iterations", "pu"}
        for f in records:
            record = json.loads(f.read_text())
            assert set(record) == keys
            assert record["backend"] == "fast"
        # `--design all` also consolidates every record into one summary.
        summary = json.loads(summary_path.read_text())
        assert summary["bench"] == "cli_smoke_suite"
        assert len(summary["records"]) == 5
        assert set(summary["designs"]) == names
        assert summary["total_wall_seconds"] == pytest.approx(
            sum(r["wall_seconds"] for r in summary["records"])
        )

    def test_bench_all_with_json_writes_consolidated_record(self, tmp_path, capsys):
        import json

        out = tmp_path / "suite.json"
        assert main(
            ["bench", "--design", "all", "--n", "4", "--m", "3",
             "--backend", "fast", "--json", str(out)]
        ) == 0
        suite = json.loads(out.read_text())
        assert suite["bench"] == "cli_smoke_suite"
        assert [r["design"] for r in suite["records"]] == suite["designs"]
        assert len(suite["records"]) == 5

    def test_bench_single_design_json_keeps_flat_record(self, tmp_path, capsys):
        import json

        out = tmp_path / "one.json"
        assert main(
            ["bench", "--design", "feedback", "--n", "4", "--m", "3",
             "--backend", "fast", "--json", str(out)]
        ) == 0
        record = json.loads(out.read_text())
        assert record["bench"] == "cli_smoke"
        assert "records" not in record


class TestBatch:
    def test_batch_mixed_kinds_with_json_record(self, tmp_path, capsys):
        import json

        out = tmp_path / "batch.json"
        assert main(
            ["batch", "--kind", "mixed", "--batch", "12", "--n", "4",
             "--m", "3", "--json", str(out)]
        ) == 0
        text = capsys.readouterr().out
        assert "solve_batch()" in text and "cache second pass" in text
        record = json.loads(out.read_text())
        assert record["bench"] == "batch_cli"
        assert record["batch"] == 12
        assert record["second_pass_cache_hits"] == 12
        assert record["speedup"] > 0

    def test_batch_feedback_sharded(self, capsys):
        assert main(
            ["batch", "--kind", "feedback", "--batch", "16", "--n", "4",
             "--m", "3", "--workers", "2", "--min-shard-items", "8"]
        ) == 0
        assert "shards=" in capsys.readouterr().out


class TestSpacetimeJson:
    def test_spacetime_json_timeline(self, capsys):
        import json

        assert main(["spacetime", "--stages", "3", "--values", "2", "--json"]) == 0
        record = json.loads(capsys.readouterr().out)
        assert record["kind"] == "telemetry_timeline"
        assert record["design"] == "fig5-feedback"
        assert record["num_pes"] == 2
        assert record["pu"]["iterations"] == 8  # (N+1)*m = 4*2


class TestTrace:
    @pytest.mark.parametrize(
        "design", ["pipelined", "broadcast", "feedback", "mesh", "paren"]
    )
    def test_trace_chrome_every_design(self, design, tmp_path, capsys):
        import json

        from repro.telemetry import validate_chrome_trace

        out = tmp_path / "trace.json"
        assert main(
            ["trace", "--design", design, "--export", "chrome",
             "--n", "4", "--m", "3", "--out", str(out)]
        ) == 0
        text = capsys.readouterr().out
        assert "(rtl):" in text and "PU " in text
        summary = validate_chrome_trace(json.loads(out.read_text()))
        assert summary["events"] > 0

    def test_trace_ascii_heatmap_and_phase_table(self, capsys):
        assert main(
            ["trace", "--design", "pipelined", "--export", "ascii",
             "--n", "4", "--m", "3"]
        ) == 0
        out = capsys.readouterr().out
        assert "space-time occupancy:" in out
        assert "phase  label" in out

    def test_trace_json_record_loads(self, tmp_path, capsys):
        from repro.io import load_run_record

        out = tmp_path / "run.json"
        assert main(
            ["trace", "--design", "feedback", "--export", "json",
             "--n", "4", "--m", "3", "--out", str(out)]
        ) == 0
        rec = load_run_record(out)
        assert rec.report.design == "fig5-feedback"
        assert rec.events
        assert rec.metrics is not None
        assert rec.timings is not None

    def test_trace_metrics_formats(self, tmp_path, capsys):
        import json

        snap = tmp_path / "metrics.json"
        prom = tmp_path / "metrics.prom"
        trace = tmp_path / "trace.json"
        assert main(
            ["trace", "--design", "feedback", "--n", "4", "--m", "3",
             "--out", str(trace), "--metrics", str(snap)]
        ) == 0
        assert json.loads(snap.read_text())["kind"] == "metrics_snapshot"
        assert main(
            ["trace", "--design", "feedback", "--n", "4", "--m", "3",
             "--out", str(trace), "--metrics", str(prom)]
        ) == 0
        assert "# TYPE repro_trace_events_total counter" in prom.read_text()


class TestCompare:
    def test_compare_identical_and_changed(self, tmp_path, capsys):
        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        assert main(
            ["trace", "--design", "feedback", "--export", "json",
             "--n", "4", "--m", "3", "--out", str(a)]
        ) == 0
        assert main(
            ["trace", "--design", "feedback", "--export", "json",
             "--n", "5", "--m", "3", "--out", str(b)]
        ) == 0
        capsys.readouterr()
        assert main(["compare", str(a), str(b)]) == 0
        out = capsys.readouterr().out
        assert out.splitlines()[0].split()[:3] == ["metric", "a.json", "b.json"]
        assert "iterations" in out
        assert main(["compare", str(a), str(a), "--only-changed"]) == 0
        out = capsys.readouterr().out
        # Identical runs: report scalars vanish; only wall-clock timings
        # (never reproducible) may remain.
        for line in out.splitlines()[2:]:
            assert line.startswith(("timing:", "(no metrics)"))


class TestInject:
    def _flip_plan(self, tmp_path):
        import json

        path = tmp_path / "flip.json"
        path.write_text(json.dumps({
            "kind": "fault_plan", "design": "pipelined",
            "specs": [{"mode": "transient_flip", "pe": 1, "reg": "ACC",
                       "tick": 1, "delta": -1000.0}],
        }))
        return path

    def test_campaign_table_and_health_line(self, capsys):
        assert main(["inject", "--design", "pipelined", "--trials", "5"]) == 0
        out = capsys.readouterr().out
        assert "design" in out and "silent" in out  # the rate table header
        assert "pipelined" in out
        assert "every output-corrupting fault was detected or recovered" in out

    def test_campaign_json_suite(self, tmp_path, capsys):
        import json

        f = tmp_path / "suite.json"
        assert main(
            ["inject", "--design", "mesh", "--trials", "5", "--json", str(f)]
        ) == 0
        payload = json.loads(f.read_text())
        assert payload["kind"] == "fault_campaign_suite"
        assert payload["campaigns"][0]["design"] == "mesh"
        assert payload["campaigns"][0]["undetected_effective"] == 0
        assert payload["metrics"]["kind"] == "metrics_snapshot"

    def test_plan_file_retry_recovers(self, tmp_path, capsys):
        plan = self._flip_plan(tmp_path)
        assert main(["inject", "--fault-plan", str(plan), "--policy", "retry"]) == 0
        out = capsys.readouterr().out
        assert "outcome recovered" in out

    def test_plan_file_spare_reports_degraded_pu(self, tmp_path, capsys):
        import json

        plan = tmp_path / "dead.json"
        plan.write_text(json.dumps({
            "kind": "fault_plan", "design": "pipelined",
            "specs": [{"mode": "dead_pe", "pe": 1, "tick": 2}],
        }))
        record = tmp_path / "run.json"
        assert main(
            ["inject", "--fault-plan", str(plan), "--policy", "spare",
             "--json", str(record)]
        ) == 0
        out = capsys.readouterr().out
        assert "outcome degraded" in out
        assert "spare-PE remap of PE 1" in out
        payload = json.loads(record.read_text())
        assert payload["kind"] == "fault_run_record"
        assert payload["run"]["outcome"] == "degraded"

    def test_plan_design_mismatch_is_a_cli_error(self, tmp_path, capsys):
        plan = self._flip_plan(tmp_path)
        assert main(
            ["inject", "--fault-plan", str(plan), "--design", "mesh"]
        ) == 2
        assert capsys.readouterr().err.startswith("error:")

    def test_missing_plan_file_exits_2(self, tmp_path, capsys):
        assert main(["inject", "--fault-plan", str(tmp_path / "nope.json")]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:") and err.count("\n") == 1

    def test_corrupted_plan_file_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert main(["inject", "--fault-plan", str(bad)]) == 2
        assert capsys.readouterr().err.startswith("error:")

    def test_unknown_design_rejected_by_argparse(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["inject", "--design", "hypercube"])
        assert excinfo.value.code == 2


class TestTraceFaultPlan:
    def test_trace_under_plan_reports_injections(self, tmp_path, capsys):
        import json

        from repro.io import load_run_record

        plan = tmp_path / "flip.json"
        plan.write_text(json.dumps({
            "kind": "fault_plan", "design": "pipelined",
            "specs": [{"mode": "transient_flip", "pe": 1, "reg": "ACC",
                       "tick": 1, "delta": -1000.0}],
        }))
        out_file = tmp_path / "run.json"
        assert main(
            ["trace", "--design", "pipelined", "--n", "4", "--m", "3",
             "--fault-plan", str(plan), "--export", "json", "--out", str(out_file)]
        ) == 0
        out = capsys.readouterr().out
        assert "1 spec(s), 1 injection(s) performed" in out
        rec = load_run_record(out_file)
        assert rec.faults is not None
        assert rec.faults["kind"] == "fault_trace"
        assert len(rec.faults["injections"]) == 1
        assert any(ev.kind == "fault" for ev in rec.events)

    def test_trace_plan_design_mismatch_exits_2(self, tmp_path, capsys):
        import json

        plan = tmp_path / "plan.json"
        plan.write_text(json.dumps({
            "kind": "fault_plan", "design": "mesh",
            "specs": [{"mode": "dead_pe", "pe": 0}],
        }))
        assert main(
            ["trace", "--design", "pipelined", "--fault-plan", str(plan)]
        ) == 2
        assert capsys.readouterr().err.startswith("error:")

    def test_trace_crash_under_injection_exits_1(self, tmp_path, capsys):
        import json

        plan = tmp_path / "dead.json"
        plan.write_text(json.dumps({
            "kind": "fault_plan", "design": "feedback",
            "specs": [{"mode": "dead_pe", "pe": 1, "tick": 2}],
        }))
        assert main(
            ["trace", "--design", "feedback", "--n", "4", "--m", "3",
             "--fault-plan", str(plan)]
        ) == 1
        out = capsys.readouterr().out
        assert "run crashed under fault injection" in out


class TestCliErrors:
    def test_compare_missing_file_exits_2(self, tmp_path, capsys):
        assert main(
            ["compare", str(tmp_path / "a.json"), str(tmp_path / "b.json")]
        ) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:") and err.count("\n") == 1

    def test_compare_corrupted_record_exits_2(self, tmp_path, capsys):
        a = tmp_path / "a.json"
        a.write_text("{broken")
        assert main(["compare", str(a), str(a)]) == 2
        assert capsys.readouterr().err.startswith("error:")

    def test_invalid_backend_rejected_by_argparse(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["demo", "--backend", "quantum"])
        assert excinfo.value.code == 2

    def test_unknown_trace_design_rejected(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["trace", "--design", "hypercube"])
        assert excinfo.value.code == 2
