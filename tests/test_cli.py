"""Unit tests for the ``python -m repro`` command-line interface."""

from __future__ import annotations

import pytest

from repro.__main__ import main


class TestDemo:
    def test_demo_prints_all_classes(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        for cls in ("monadic-serial", "polyadic-serial", "monadic-nonserial", "polyadic-nonserial"):
            assert cls in out
        assert "True" in out and "False" not in out

    def test_demo_seed_changes_instances(self, capsys):
        main(["demo", "--seed", "1"])
        out1 = capsys.readouterr().out
        main(["demo", "--seed", "2"])
        out2 = capsys.readouterr().out
        assert out1 != out2  # random workloads differ
        main(["demo", "--seed", "1"])
        assert capsys.readouterr().out == out1  # but are reproducible


class TestFig6:
    def test_fig6_small_n(self, capsys):
        assert main(["fig6", "--n", "256"]) == 0
        out = capsys.readouterr().out
        assert "argmin of K*T^2" in out
        assert "N/log2(N) = 32" in out

    def test_fig6_default(self, capsys):
        assert main(["fig6"]) == 0
        out = capsys.readouterr().out
        assert "K = 399" in out  # the measured argmin for N=4096


class TestSpacetime:
    def test_spacetime_renders(self, capsys):
        assert main(["spacetime", "--stages", "3", "--values", "2"]) == 0
        out = capsys.readouterr().out
        assert "P1" in out and "P2" in out
        assert "F0" in out
        assert "8 iterations" in out  # (N+1)*m = 4*2

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])
