"""Unit tests for interaction graphs and the seriality test."""

from __future__ import annotations

import pytest

from repro.graphs import InteractionGraph, Term, chain_order, is_serial_objective


def chain_terms(n: int) -> list[Term]:
    return [Term((f"X{i}", f"X{i+1}")) for i in range(1, n)]


class TestTerm:
    def test_arity(self):
        assert Term(("a", "b", "c")).arity == 3

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Term(())

    def test_duplicates_rejected(self):
        with pytest.raises(ValueError):
            Term(("a", "a"))


class TestInteractionGraph:
    def test_neighbors_and_degree(self):
        g = InteractionGraph([Term(("a", "b")), Term(("b", "c"))])
        assert g.neighbors("b") == {"a", "c"}
        assert g.degree("a") == 1
        assert g.num_edges() == 2

    def test_higher_arity_term_forms_clique(self):
        g = InteractionGraph([Term(("a", "b", "c"))])
        assert g.num_edges() == 3
        assert g.neighbors("a") == {"b", "c"}

    def test_chain_detection(self):
        assert InteractionGraph(chain_terms(5)).is_chain()

    def test_star_is_not_chain(self):
        g = InteractionGraph([Term(("hub", x)) for x in "abc"])
        assert not g.is_chain()

    def test_cycle_is_not_chain(self):
        g = InteractionGraph(
            [Term(("a", "b")), Term(("b", "c")), Term(("c", "a"))]
        )
        assert not g.is_chain()

    def test_disconnected_path_plus_cycle_rejected(self):
        # Degree profile can mimic a path; the walk must still reject it.
        terms = [
            Term(("p", "q")),  # isolated edge: two degree-1 vertices
            Term(("a", "b")),
            Term(("b", "c")),
            Term(("c", "a")),  # 3-cycle: all degree 2
        ]
        assert not InteractionGraph(terms).is_chain()

    def test_single_variable_is_chain(self):
        assert InteractionGraph([Term(("solo",))]).is_chain()

    def test_empty_terms_rejected(self):
        with pytest.raises(ValueError):
            InteractionGraph([])


class TestEliminationWidth:
    def test_chain_width_is_one(self):
        g = InteractionGraph(chain_terms(6))
        order = [f"X{i}" for i in range(1, 7)]
        assert g.elimination_width(order) == 1

    def test_banded_width_is_two(self):
        terms = [Term((f"V{i}", f"V{i+1}", f"V{i+2}")) for i in range(1, 4)]
        g = InteractionGraph(terms)
        assert g.elimination_width([f"V{i}" for i in range(1, 6)]) == 2

    def test_bad_order_hurts_chain(self):
        # Eliminating the middle first moralizes its two neighbours.
        g = InteractionGraph(chain_terms(5))
        middle_first = ["X3", "X1", "X2", "X4", "X5"]
        assert g.elimination_width(middle_first) >= 2

    def test_min_degree_default(self):
        g = InteractionGraph(chain_terms(8))
        assert g.elimination_width() == 1  # min-degree finds the ends

    def test_min_degree_order_is_permutation(self):
        g = InteractionGraph(chain_terms(5))
        order = g.min_degree_order()
        assert sorted(order) == sorted(g.variables)

    def test_incomplete_order_rejected(self):
        g = InteractionGraph(chain_terms(3))
        with pytest.raises(ValueError):
            g.elimination_width(["X1"])

    def test_duplicate_order_rejected(self):
        g = InteractionGraph(chain_terms(3))
        with pytest.raises(ValueError):
            g.elimination_width(["X1", "X1", "X2"])


class TestSeriality:
    def test_chain_is_serial(self):
        assert is_serial_objective(chain_terms(4))

    def test_ternary_term_is_nonserial(self):
        assert not is_serial_objective(
            [Term(("a", "b", "c")), Term(("c", "d"))]
        )

    def test_branching_is_nonserial(self):
        assert not is_serial_objective(
            [Term(("a", "b")), Term(("b", "c")), Term(("b", "d"))]
        )

    def test_papers_nonserial_example(self):
        # min {g1(X1,X2,X4) + g2(X3,X4) + g3(X2,X5)} from Section 2.2.
        terms = [Term(("X1", "X2", "X4")), Term(("X3", "X4")), Term(("X2", "X5"))]
        assert not is_serial_objective(terms)

    def test_duplicate_edge_terms_nonserial(self):
        # Two terms over the same pair: not a tiling of the chain.
        assert not is_serial_objective([Term(("a", "b")), Term(("a", "b"))])

    def test_chain_order_endpoints(self):
        order = chain_order(chain_terms(5))
        assert set(order) == {f"X{i}" for i in range(1, 6)}
        assert order[0] in ("X1", "X5") and order[-1] in ("X1", "X5")
        assert order[0] != order[-1]

    def test_chain_order_adjacency(self):
        order = chain_order(chain_terms(6))
        edges = {frozenset(t.variables) for t in chain_terms(6)}
        for a, b in zip(order, order[1:]):
            assert frozenset((a, b)) in edges

    def test_chain_order_rejects_nonserial(self):
        with pytest.raises(ValueError):
            chain_order([Term(("a", "b", "c"))])
