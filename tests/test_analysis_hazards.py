"""Dynamic hazard sanitizer: every rule fires, and only when it should."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import HAZARD_RULES, HazardError, HazardSanitizer
from repro.systolic.fabric import SystolicMachine, SystolicError

from .fixtures import FIXTURES, clean_shift


class TestFixtureDesigns:
    @pytest.mark.parametrize("rule", sorted(FIXTURES))
    def test_seeded_hazard_is_recorded(self, rule):
        machine_report = FIXTURES[rule].run(mode="record")
        assert machine_report.hazards > 0

    @pytest.mark.parametrize("rule", sorted(FIXTURES))
    def test_seeded_hazard_is_the_right_rule(self, rule):
        with pytest.raises(HazardError) as exc_info:
            FIXTURES[rule].run(mode="raise")
        report = exc_info.value.report
        assert report, "raise mode must carry the hazard report"
        assert {h.rule for h in report} == {rule}

    @pytest.mark.parametrize("rule", sorted(FIXTURES))
    def test_raise_mode_still_finishes_the_run_first(self, rule):
        # HazardError comes from finalize, not mid-run: the schedule
        # completes, so the report carries the full picture.
        with pytest.raises(HazardError) as exc_info:
            FIXTURES[rule].run(mode="raise")
        assert all(h.tick >= 1 for h in exc_info.value.report)

    def test_clean_design_passes_raise_mode(self):
        report = clean_shift.run(mode="raise")
        assert report.hazards == 0

    def test_hazard_entries_are_structured(self):
        san_report = None
        with pytest.raises(HazardError) as exc_info:
            FIXTURES["write-write"].run(mode="raise")
        for h in exc_info.value.report:
            assert h.rule in HAZARD_RULES
            d = h.as_dict()
            assert set(d) == {"rule", "tick", "pe", "owner", "reg", "detail"}


class TestSanitizerMechanics:
    def _machine(self, mode="record"):
        m = SystolicMachine("toy", sanitizer=HazardSanitizer(mode=mode))
        pes = m.add_pes(3)
        for pe in pes:
            pe.reg("R", 0.0)
        return m, pes

    def test_strict_flag_constructs_default_sanitizer(self):
        m = SystolicMachine("toy", strict=True)
        assert isinstance(m.sanitizer, HazardSanitizer)
        assert m.sanitizer.mode == "raise"

    def test_sanitizer_serves_one_machine(self):
        san = HazardSanitizer()
        SystolicMachine("a", sanitizer=san)
        with pytest.raises(SystolicError):
            SystolicMachine("b", sanitizer=san)

    def test_array_scope_is_exempt_from_ownership(self):
        # Controller code (no enter_pe) may touch any PE's registers.
        m, pes = self._machine()
        pes[0]["R"].set(1.0)
        pes[2]["R"].set(2.0)
        m.end_tick()
        assert m.sanitizer.report == []

    def test_array_scope_still_catches_staged_read(self):
        m, pes = self._machine()
        pes[0]["R"].set(1.0)
        _ = pes[0]["R"].value  # controller reads back its own staged write
        m.end_tick()
        assert m.sanitizer.counts() == {"read-after-staged-write": 1}

    def test_cross_scope_read_of_pending_register_is_legal(self):
        # The classic systolic overlap: PE1 reads PE0's latched value
        # while PE0's *next* value is still staged.
        m, pes = self._machine()
        m.enter_pe(0)
        pes[0]["R"].set(1.0)
        m.exit_pe()
        m.enter_pe(1)
        _ = pes[0]["R"].value  # neighbour, pre-tick state: fine
        m.exit_pe()
        m.end_tick()
        assert m.sanitizer.report == []

    def test_grid_topology_neighbors(self):
        m = SystolicMachine("grid", topology=("grid", 2, 3))
        assert m.neighbors(0, 1) and m.neighbors(0, 3)
        assert not m.neighbors(0, 4) and not m.neighbors(2, 3)

    def test_complete_topology_allows_any_link(self):
        m = SystolicMachine(
            "anyhop", sanitizer=HazardSanitizer(), topology="complete"
        )
        pes = m.add_pes(4)
        for pe in pes:
            pe.reg("R", 0.0)
        m.enter_pe(0)
        _ = pes[3]["R"].value
        m.exit_pe()
        m.end_tick()
        assert m.sanitizer.report == []

    def test_unknown_topology_raises(self):
        m = SystolicMachine("bad", topology="torus")
        with pytest.raises(SystolicError):
            m.neighbors(0, 1)

    def test_unmonitored_double_drive_still_raises(self):
        # Without a sanitizer the fabric's own hard check is unchanged.
        m = SystolicMachine("plain")
        (pe,) = m.add_pes(1)
        pe.reg("R", 0.0)
        pe["R"].set(1.0)
        with pytest.raises(SystolicError, match="driven twice"):
            pe["R"].set(2.0)

    def test_record_mode_counts_into_run_report(self):
        m, pes = self._machine(mode="record")
        m.enter_pe(0)
        pes[1]["R"].set(9.0)  # cross-PE write
        m.exit_pe()
        m.end_tick()
        report = m.finalize(iterations=1, serial_ops=1)
        assert report.hazards == 1
        assert m.sanitizer.counts() == {"cross-pe-write": 1}

    def test_hazard_events_reach_the_trace_bus(self):
        events = []
        m = SystolicMachine(
            "traced", record_trace=True, sinks=(events.append,),
            sanitizer=HazardSanitizer(mode="record"),
        )
        pes = m.add_pes(2)
        for pe in pes:
            pe.reg("R", 0.0)
        m.enter_pe(0)
        pes[1]["R"].set(5.0)
        m.exit_pe()
        m.end_tick()
        m.finalize(iterations=1, serial_ops=1)
        kinds = [e.kind for e in events]
        assert "hazard" in kinds
        hazard_events = [e for e in events if e.kind == "hazard"]
        assert all("cross-pe-write" in e.label for e in hazard_events)


class TestInjectorExemption:
    def test_injector_writes_are_not_design_hazards(self):
        from repro.faults import FaultInjector, FaultPlan, FaultSpec

        plan = FaultPlan(
            design="toy",
            specs=(
                FaultSpec(mode="transient_flip", pe=0, reg="R", tick=1),
                FaultSpec(
                    mode="stuck_at", pe=1, reg="R", tick=1, duration=2,
                    value=7.0,
                ),
            ),
        )
        injector = FaultInjector(plan)
        m = SystolicMachine(
            "toy", injector=injector, sanitizer=HazardSanitizer(mode="raise")
        )
        pes = m.add_pes(2)
        for pe in pes:
            pe.reg("R", 3.0)
        for i, pe in enumerate(pes):
            m.enter_pe(i)
            pe["R"].set(float(i))
            m.exit_pe()
        m.end_tick()
        m.end_tick()
        report = m.finalize(iterations=2, serial_ops=2)
        assert len(injector.injections) >= 2
        assert report.hazards == 0  # forces/doubles attributed to injector

    def test_design_hazards_still_caught_under_injection(self):
        from repro.faults import FaultInjector, FaultPlan, FaultSpec

        plan = FaultPlan(
            design="toy",
            specs=(FaultSpec(mode="transient_flip", pe=0, reg="R", tick=1),),
        )
        m = SystolicMachine(
            "toy", injector=FaultInjector(plan),
            sanitizer=HazardSanitizer(mode="record"),
        )
        pes = m.add_pes(2)
        for pe in pes:
            pe.reg("R", 0.0)
        m.enter_pe(0)
        pes[1]["R"].set(1.0)  # genuine design bug, same run
        m.exit_pe()
        m.end_tick()
        report = m.finalize(iterations=1, serial_ops=1)
        assert m.sanitizer.counts() == {"cross-pe-write": 1}
        assert report.hazards == 1

    def test_report_round_trips_hazard_count(self):
        from repro.io import report_from_dict, report_to_dict

        report = FIXTURES["write-write"].run(mode="record")
        clone = report_from_dict(report_to_dict(report))
        assert clone.hazards == report.hazards > 0
