"""Unit tests for the metrics registry and the trace-bus metrics sink."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.graphs import fig1b_problem
from repro.systolic import FeedbackSystolicArray, PipelinedMatrixStringArray
from repro.systolic.fabric import TraceEvent
from repro.telemetry import MetricsRegistry, MetricsSink
from repro.telemetry.metrics import Counter, Gauge, Histogram


class TestPrimitives:
    def test_counter_monotonic(self):
        c = Counter()
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_gauge_moves_both_ways(self):
        g = Gauge()
        g.set(4)
        g.inc()
        g.dec(2)
        assert g.value == 3.0

    def test_histogram_buckets_and_tail(self):
        h = Histogram((1.0, 10.0))
        for v in (0.5, 1.0, 5.0, 100.0):
            h.observe(v)
        # bisect_left puts v == bound into that bucket (le semantics).
        assert h.bucket_counts == [2, 1, 1]
        assert h.cumulative() == [("1", 2), ("10", 3), ("+Inf", 4)]
        assert h.sum == pytest.approx(106.5)
        assert h.count == 4


class TestRegistry:
    def test_label_schema_enforced(self):
        r = MetricsRegistry()
        fam = r.counter("repro_test_total", "help", ("design",))
        fam.labels(design="x").inc()
        with pytest.raises(ValueError):
            fam.labels(wrong="x")
        with pytest.raises(ValueError):
            r.gauge("repro_test_total")  # same name, different schema/kind

    def test_reregistration_returns_same_family(self):
        r = MetricsRegistry()
        a = r.counter("repro_events_total", "h", ("kind",))
        b = r.counter("repro_events_total", "h", ("kind",))
        assert a is b

    def test_invalid_names_rejected(self):
        r = MetricsRegistry()
        with pytest.raises(ValueError):
            r.counter("bad name")
        with pytest.raises(ValueError):
            r.counter("ok_name", label_names=("bad-label",))
        with pytest.raises(ValueError):
            r.histogram("h", buckets=(2.0, 1.0))  # not increasing

    def test_snapshot_is_jsonable_and_sorted(self):
        r = MetricsRegistry()
        r.counter("repro_b_total").labels().inc(2)
        r.gauge("repro_a").labels().set(7)
        snap = r.snapshot()
        json.dumps(snap)  # must be serializable as-is
        assert snap["kind"] == "metrics_snapshot"
        assert list(snap["metrics"]) == ["repro_a", "repro_b_total"]
        assert snap["metrics"]["repro_b_total"]["series"][0]["value"] == 2

    def test_prometheus_text_format(self):
        r = MetricsRegistry()
        r.counter("repro_ops_total", "ops", ("design",)).labels(design="fig3").inc(5)
        r.histogram("repro_tick", "ticks", ("kind",), buckets=(4.0,)).labels(
            kind="op"
        ).observe(3)
        text = r.to_prometheus()
        assert "# HELP repro_ops_total ops" in text
        assert "# TYPE repro_ops_total counter" in text
        assert 'repro_ops_total{design="fig3"} 5' in text
        assert 'repro_tick_bucket{kind="op",le="4"} 1' in text
        assert 'repro_tick_bucket{kind="op",le="+Inf"} 1' in text
        assert 'repro_tick_count{kind="op"} 1' in text
        assert text.endswith("\n")


class TestMetricsSink:
    def _run_traced(self):
        rng = np.random.default_rng(3)
        mats = [rng.integers(0, 9, size=(3, 3)).astype(float) for _ in range(3)]
        mats.append(rng.integers(0, 9, size=(3, 1)).astype(float))
        sink = MetricsSink("fig3-pipelined")
        res = PipelinedMatrixStringArray().run(mats, record_trace=True, sinks=[sink])
        return res, sink

    def test_op_events_match_report_op_counts(self):
        res, sink = self._run_traced()
        by_name = {f.name: f for f in sink.registry.families()}
        pe_events = by_name["repro_pe_events_total"]
        for pe, ops in enumerate(res.report.pe_op_counts):
            child = pe_events.labels(design="fig3-pipelined", pe=pe, kind="op")
            assert child.value == ops
        total = by_name["repro_trace_events_total"].labels(
            design="fig3-pipelined", kind="op"
        )
        assert total.value == res.report.total_ops

    def test_io_direction_parsed_from_labels(self):
        res, sink = self._run_traced()
        fam = {f.name: f for f in sink.registry.families()}["repro_io_events_total"]
        directions = {k[-1] for k in fam.children}
        assert directions == {"in", "out"}
        counted = sum(c.value for c in fam.children.values())
        assert counted == sum(1 for e in res.events if e.kind == "io")

    def test_phase_and_tick_gauges(self):
        res, sink = self._run_traced()
        fams = {f.name: f for f in sink.registry.families()}
        last_phase = fams["repro_current_phase"].labels(design="fig3-pipelined")
        high_water = fams["repro_tick_high_water"].labels(design="fig3-pipelined")
        assert last_phase.value == max(e.phase for e in res.events)
        assert high_water.value == max(e.tick for e in res.events)

    def test_unlabeled_broadcast_counts_as_trace_event_only(self):
        sink = MetricsSink("d")
        sink(TraceEvent(tick=1, pe=-1, kind="broadcast", label="bus:x"))
        fams = {f.name: f for f in sink.registry.families()}
        assert fams["repro_trace_events_total"].labels(
            design="d", kind="broadcast"
        ).value == 1
        assert not fams["repro_pe_events_total"].children

    def test_two_designs_share_one_registry(self):
        registry = MetricsRegistry()
        pipe_sink = MetricsSink("fig3-pipelined", registry)
        feed_sink = MetricsSink("fig5-feedback", registry)
        rng = np.random.default_rng(0)
        mats = [rng.integers(0, 9, size=(2, 2)).astype(float),
                rng.integers(0, 9, size=(2, 1)).astype(float)]
        PipelinedMatrixStringArray().run(mats, sinks=[pipe_sink])
        FeedbackSystolicArray().run(fig1b_problem(), sinks=[feed_sink])
        fams = {f.name: f for f in registry.families()}
        designs = {k[0] for k in fams["repro_trace_events_total"].children}
        assert designs == {"fig3-pipelined", "fig5-feedback"}
