"""Unit tests for workload generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs import (
    GraphError,
    circuit_design_problem,
    fig1a_graph,
    fig1b_problem,
    fluid_flow_problem,
    random_multistage,
    scheduling_problem,
    single_source_sink,
    traffic_light_problem,
    uniform_multistage,
)


class TestRandomMultistage:
    def test_shapes(self, rng):
        g = random_multistage(rng, [2, 5, 3, 4])
        assert g.stage_sizes == (2, 5, 3, 4)

    def test_reproducible(self):
        a = random_multistage(np.random.default_rng(5), [3, 3, 3])
        b = random_multistage(np.random.default_rng(5), [3, 3, 3])
        for ca, cb in zip(a.costs, b.costs):
            assert np.array_equal(ca, cb)

    def test_cost_range(self, rng):
        g = random_multistage(rng, [4, 4, 4], low=2.0, high=3.0)
        for c in g.costs:
            assert np.all(c >= 2.0) and np.all(c < 3.0)

    def test_sparse_stays_connected(self, rng):
        g = random_multistage(rng, [4, 4, 4, 4], edge_probability=0.3)
        # Every non-final vertex keeps an out-edge, every non-first an in-edge.
        for c in g.costs:
            assert np.all(np.isfinite(c).any(axis=1))
            assert np.all(np.isfinite(c).any(axis=0))
        # And therefore a finite path exists.
        assert np.isfinite(g.brute_force_optimum()[0])

    def test_bad_probability_rejected(self, rng):
        with pytest.raises(GraphError):
            random_multistage(rng, [2, 2], edge_probability=0.0)

    def test_too_few_stages_rejected(self, rng):
        with pytest.raises(GraphError):
            random_multistage(rng, [3])


class TestShapedGenerators:
    def test_uniform(self, rng):
        g = uniform_multistage(rng, 5, 4)
        assert g.stage_sizes == (4,) * 5

    def test_single_source_sink(self, rng):
        g = single_source_sink(rng, 3, 6)
        assert g.stage_sizes == (1, 6, 6, 6, 1)
        assert g.is_single_source_sink

    def test_single_source_sink_needs_interior(self, rng):
        with pytest.raises(GraphError):
            single_source_sink(rng, 0, 4)

    def test_fig1a_fixed_instance(self):
        g = fig1a_graph()
        assert g.stage_sizes == (1, 3, 3, 3, 1)
        assert g.brute_force_optimum()[0] == 6.0  # known optimum

    def test_fig1a_random_instance(self, rng):
        g = fig1a_graph(rng)
        assert g.stage_sizes == (1, 3, 3, 3, 1)
        assert np.all(np.stack([c.ravel() for c in g.costs[1:3]]) >= 1)

    def test_fig1b_fixed_instance(self):
        p = fig1b_problem()
        assert p.stage_sizes == (3, 3, 3, 3)


class TestDomainWorkloads:
    def test_traffic_costs_are_circular(self, rng):
        p = traffic_light_problem(rng, 4, 5, cycle=60.0)
        c = p.cost_matrix(0)
        assert np.all(c >= 0.0)
        assert np.all(c <= 30.0)  # circular distance is at most cycle/2

    def test_traffic_validation(self, rng):
        with pytest.raises(GraphError):
            traffic_light_problem(rng, 1, 5)

    def test_circuit_power_is_quadratic(self, rng):
        p = circuit_design_problem(rng, 3, 4, conductance=2.0)
        c = p.cost_matrix(0)
        v1 = p.values[0][:, None]
        v2 = p.values[1][None, :]
        assert np.allclose(c, 2.0 * (v1 - v2) ** 2)

    def test_circuit_validation(self, rng):
        with pytest.raises(GraphError):
            circuit_design_problem(rng, 2, 0)

    def test_fluid_flow_prefers_downhill(self, rng):
        p = fluid_flow_problem(rng, 3, 4)
        # A positive gradient (downstream flow) must cost less than the
        # same magnitude adverse gradient.
        down = float(p.edge_cost(np.asarray(80.0), np.asarray(20.0)))
        up = float(p.edge_cost(np.asarray(20.0), np.asarray(80.0)))
        assert down < up

    def test_scheduling_penalizes_overlap(self, rng):
        p = scheduling_problem(rng, 3, 4, setup=2.0)
        ok = float(p.edge_cost(np.asarray(0.0), np.asarray(10.0)))
        clash = float(p.edge_cost(np.asarray(10.0), np.asarray(10.5)))
        assert clash > ok + 50.0

    def test_workloads_solvable_end_to_end(self, rng):
        from repro.dp import solve_node_value

        for p in (
            traffic_light_problem(rng, 5, 3),
            circuit_design_problem(rng, 5, 3),
            fluid_flow_problem(rng, 5, 3),
            scheduling_problem(rng, 5, 3),
        ):
            sol = solve_node_value(p)
            assert np.isclose(
                sol.optimum, p.to_graph().brute_force_optimum()[0]
            )
