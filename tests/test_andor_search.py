"""Unit tests for bottom-up and AO*-style AND/OR search."""

from __future__ import annotations

import numpy as np
import pytest

from repro.andor import ao_star, bottom_up, fold_multistage, matrix_chain_andor
from repro.dp import solve_matrix_chain
from repro.graphs import uniform_multistage


class TestBottomUp:
    def test_values_and_widths(self, rng):
        dims = list(rng.integers(1, 20, size=6))
        mc = matrix_chain_andor(dims)
        res = bottom_up(mc.graph)
        assert res.values[mc.root] == solve_matrix_chain(dims).cost
        assert sum(res.level_widths) == len(mc.graph)
        assert res.num_levels == len(res.level_widths)
        assert res.max_width == max(res.level_widths)

    def test_leaves_at_level_zero(self, rng):
        g = uniform_multistage(rng, 3, 2)
        fm = fold_multistage(g, p=2)
        res = bottom_up(fm.graph)
        from repro.andor import NodeKind

        n_leaves = fm.graph.count_kind(NodeKind.LEAF)
        assert res.level_widths[0] == n_leaves


class TestAOStar:
    def test_matches_bottom_up(self, rng):
        for _ in range(5):
            dims = list(rng.integers(1, 25, size=rng.integers(3, 9)))
            mc = matrix_chain_andor(dims)
            ref = bottom_up(mc.graph).values[mc.root]
            res = ao_star(mc.graph, mc.root)
            assert res.cost == ref

    def test_matches_on_folded_multistage(self, rng):
        g = uniform_multistage(rng, 5, 3)
        fm = fold_multistage(g, p=2)
        vals = fm.graph.evaluate()
        for u in range(3):
            for v in range(3):
                nid = int(fm.root_or[u, v])
                assert ao_star(fm.graph, nid).cost == pytest.approx(vals[nid])

    def test_pruning_can_fire(self, rng):
        # With spread-out costs some AND expansions must be cut.
        fired = 0
        for seed in range(10):
            r = np.random.default_rng(seed)
            dims = list(r.integers(1, 100, size=8))
            mc = matrix_chain_andor(dims)
            fired += ao_star(mc.graph, mc.root).pruned_and_nodes
        assert fired > 0

    def test_prune_false_visits_everything_reachable(self, rng):
        dims = list(rng.integers(1, 20, size=7))
        mc = matrix_chain_andor(dims)
        res = ao_star(mc.graph, mc.root, prune=False)
        assert res.pruned_and_nodes == 0
        assert res.cost == solve_matrix_chain(dims).cost
        assert res.nodes_visited == res.nodes_total

    def test_visits_never_exceed_total(self, rng):
        dims = list(rng.integers(1, 20, size=9))
        mc = matrix_chain_andor(dims)
        res = ao_star(mc.graph, mc.root)
        assert res.nodes_visited <= res.nodes_total

    def test_bad_root_rejected(self, rng):
        mc = matrix_chain_andor([2, 3, 4])
        with pytest.raises(ValueError):
            ao_star(mc.graph, 999)
