"""Chrome-trace export, run comparison, timing spans, and persistence."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro import io as repro_io
from repro.graphs import fig1b_problem
from repro.systolic import FeedbackSystolicArray, PipelinedMatrixStringArray
from repro.systolic.fabric import TraceEvent
from repro.telemetry import (
    MetricsSink,
    RunComparison,
    TimelineSink,
    chrome_trace,
    collect_timings,
    span,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.telemetry.compare import flatten_metrics, flatten_report
from repro.telemetry.export import TICK_USECS


def _matrix_string(rng, n, m):
    mats = [rng.uniform(0, 9, size=(m, m)) for _ in range(n - 1)]
    mats.append(rng.uniform(0, 9, size=(m, 1)))
    return mats


def _traced_pipelined():
    rng = np.random.default_rng(13)
    return PipelinedMatrixStringArray().run(
        _matrix_string(rng, 4, 3), record_trace=True
    )


class TestChromeTrace:
    def test_structure_matches_run(self):
        res = _traced_pipelined()
        data = chrome_trace(res.events, design="fig3-pipelined")
        events = data["traceEvents"]
        assert data["displayTimeUnit"] == "ms"

        names = {
            ev["tid"]: ev["args"]["name"]
            for ev in events
            if ev["ph"] == "M" and ev["name"] == "thread_name"
        }
        # One lane per PE plus the array-level lane.
        assert names == {
            **{pe: f"PE{pe + 1}" for pe in range(res.report.num_pes)},
            res.report.num_pes: "array",
        }

        cells = [ev for ev in events if ev["ph"] == "X"]
        assert len(cells) == sum(
            1 for e in res.events if e.kind in ("op", "shift", "broadcast")
            and e.pe >= 0
        )
        for ev in cells:
            assert ev["dur"] == TICK_USECS
            assert ev["ts"] == (ev["args"]["tick"] - 1) * TICK_USECS

        begins = [ev for ev in events if ev["ph"] == "b"]
        ends = [ev for ev in events if ev["ph"] == "e"]
        n_phase_marks = sum(1 for e in res.events if e.kind == "phase")
        assert len(begins) == len(ends) == n_phase_marks
        assert sorted(ev["id"] for ev in begins) == sorted(
            ev["id"] for ev in ends
        )

        instants = [ev for ev in events if ev["ph"] == "i"]
        assert len(instants) == sum(1 for e in res.events if e.kind == "io")
        assert all(ev["tid"] == res.report.num_pes for ev in instants)

    def test_validator_accepts_all_designs(self):
        rng = np.random.default_rng(17)
        runs = [
            PipelinedMatrixStringArray().run(
                _matrix_string(rng, 4, 3), record_trace=True
            ),
            FeedbackSystolicArray().run(fig1b_problem(), record_trace=True),
        ]
        for res in runs:
            stats = validate_chrome_trace(chrome_trace(res.events))
            assert stats["events"] > 0
            assert stats["lanes"] == res.report.num_pes + 1

    def test_validator_rejects_malformed(self):
        with pytest.raises(ValueError, match="traceEvents"):
            validate_chrome_trace({"foo": []})
        with pytest.raises(ValueError, match="missing 'dur'"):
            validate_chrome_trace(
                {"traceEvents": [{"ph": "X", "ts": 0, "pid": 1, "tid": 0,
                                  "name": "x"}]}
            )
        with pytest.raises(ValueError, match="non-positive duration"):
            validate_chrome_trace(
                {"traceEvents": [{"ph": "X", "ts": 0, "dur": 0, "pid": 1,
                                  "tid": 0, "name": "x"}]}
            )
        with pytest.raises(ValueError, match="no open b span"):
            validate_chrome_trace({"traceEvents": [{"ph": "e", "id": 3}]})
        with pytest.raises(ValueError, match="unterminated"):
            validate_chrome_trace(
                {"traceEvents": [{"ph": "b", "id": 3, "ts": 0}]}
            )
        with pytest.raises(ValueError, match="unnamed lanes"):
            validate_chrome_trace(
                {"traceEvents": [{"ph": "i", "ts": 0, "pid": 1, "tid": 9,
                                  "name": "x"}]}
            )

    def test_write_round_trips(self, tmp_path):
        res = _traced_pipelined()
        out = tmp_path / "trace.json"
        written = write_chrome_trace(out, res.events, design="fig3-pipelined")
        loaded = json.loads(out.read_text())
        assert loaded == written
        validate_chrome_trace(loaded)


class TestTimingSpans:
    def test_span_is_noop_without_collector(self):
        # No collector installed: the shared null span, nothing recorded.
        cm = span("anything")
        with cm:
            pass
        assert span("other") is cm  # same shared object every time

    def test_backend_calls_timed_under_collector(self):
        rng = np.random.default_rng(19)
        mats = _matrix_string(rng, 4, 3)
        with collect_timings() as timings:
            PipelinedMatrixStringArray().run(mats, backend="rtl")
            PipelinedMatrixStringArray().run(mats, backend="fast")
        summary = timings.summary()
        assert summary["fig3-pipelined.backend.rtl"]["count"] == 1
        assert summary["fig3-pipelined.backend.fast"]["count"] == 1
        for stats in summary.values():
            assert stats["total_seconds"] > 0
            assert stats["max_seconds"] <= stats["total_seconds"]
        json.dumps(summary)

    def test_collectors_nest_innermost_wins(self):
        with collect_timings() as outer:
            with collect_timings() as inner:
                with span("x"):
                    pass
            assert "x" in inner.spans
            assert "x" not in outer.spans


class TestRunComparison:
    def test_rtl_vs_fast_counters_agree(self):
        rng = np.random.default_rng(23)
        mats = _matrix_string(rng, 4, 3)
        rtl = PipelinedMatrixStringArray().run(mats, backend="rtl")
        fast = PipelinedMatrixStringArray().run(mats, backend="fast")
        cmp = RunComparison.from_reports(rtl.report, fast.report)
        changed = [d.name for d in cmp.deltas(only_changed=True)]
        # The cross-backend contract: every diffed counter agrees.
        assert changed == []

    def test_deltas_and_render(self):
        cmp = RunComparison("a", "b", {"x": 2.0, "y": 1.0}, {"x": 3.0, "z": 4.0})
        by_name = {d.name: d for d in cmp.deltas()}
        assert by_name["x"].delta == 1.0
        assert by_name["x"].pct == pytest.approx(50.0)
        assert by_name["y"].b is None and by_name["y"].changed
        assert by_name["z"].a is None
        text = cmp.render()
        lines = text.splitlines()
        assert lines[0].split() == ["metric", "a", "b", "delta", "delta%"]
        assert any(ln.startswith("x") and "+50.00%" in ln for ln in lines)
        only = cmp.render(only_changed=True)
        assert "x" in only

    def test_from_files_with_telemetry_payloads(self, tmp_path):
        rng = np.random.default_rng(29)
        mats = _matrix_string(rng, 4, 3)
        sink = MetricsSink("fig3-pipelined")
        with collect_timings() as timings:
            res = PipelinedMatrixStringArray().run(
                mats, record_trace=True, sinks=[sink]
            )
        path_a = tmp_path / "a.json"
        path_b = tmp_path / "b.json"
        repro_io.save_run(
            path_a,
            res.report,
            res.events,
            metrics=sink.registry.snapshot(),
            timings=timings.summary(),
        )
        repro_io.save_run(path_b, res.report, res.events)
        cmp = RunComparison.from_files(path_a, path_b)
        assert cmp.label_a == "a.json"
        names = {d.name for d in cmp.deltas()}
        assert "processor_utilization" in names
        assert any(n.startswith("repro_trace_events_total") for n in names)
        assert any(n.startswith("timing:") for n in names)
        # Report scalars are identical; telemetry is one-sided.
        for d in cmp.deltas():
            if d.name in flatten_report(res.report):
                assert not d.changed

    def test_flatten_metrics_histograms_to_count_and_sum(self):
        sink = MetricsSink("d")
        sink(TraceEvent(tick=3, pe=0, kind="op", label="x"))
        flat = flatten_metrics(sink.registry.snapshot())
        assert flat['repro_event_tick_count{design="d",kind="op"}'] == 1.0
        assert flat['repro_event_tick_sum{design="d",kind="op"}'] == 3.0
        assert not any("_bucket" in name for name in flat)


class TestRunRecordIO:
    def test_save_run_without_telemetry_has_no_new_keys(self, tmp_path):
        res = _traced_pipelined()
        path = tmp_path / "run.json"
        repro_io.save_run(path, res.report, res.events)
        data = json.loads(path.read_text())
        assert "metrics" not in data and "timings" not in data
        report, events = repro_io.load_run(path)
        assert report == res.report
        assert events == res.events

    def test_load_run_record_round_trips_telemetry(self, tmp_path):
        res = _traced_pipelined()
        sink = MetricsSink(res.report.design)
        for e in res.events:
            sink(e)
        path = tmp_path / "run.json"
        repro_io.save_run(
            path, res.report, res.events, metrics=sink.registry.snapshot(),
            timings={"x": {"count": 1, "total_seconds": 0.5,
                           "mean_seconds": 0.5, "max_seconds": 0.5}},
        )
        rec = repro_io.load_run_record(path)
        assert rec.report == res.report
        assert rec.events == res.events
        assert rec.metrics == sink.registry.snapshot()
        assert rec.timings["x"]["count"] == 1
        # load_run keeps its legacy 2-tuple shape on telemetry files too.
        report, events = repro_io.load_run(path)
        assert report == res.report


class TestTimelineFromSavedEvents:
    def test_extend_reconstructs_timeline_offline(self, tmp_path):
        res = _traced_pipelined()
        path = tmp_path / "run.json"
        repro_io.save_run(path, res.report, res.events)
        rec = repro_io.load_run_record(path)
        timeline = TimelineSink(rec.report.design)
        timeline.extend(rec.events)
        assert timeline.busy_ticks_per_pe(rec.report.num_pes) == (
            rec.report.pe_busy_ticks
        )
