"""Unit tests for decision tracking / path traceback on the Fig. 4 array."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dp import solve_backward
from repro.graphs import fig1a_graph, random_multistage, single_source_sink
from repro.systolic import BroadcastMatrixStringArray, SystolicError


@pytest.fixture
def array():
    return BroadcastMatrixStringArray()


class TestDecisionTracking:
    def test_decisions_off_by_default(self, array):
        res = array.run_graph(fig1a_graph())
        assert res.decisions is None

    def test_decision_shapes(self, array):
        res = array.run(fig1a_graph().as_matrices(), track_decisions=True)
        assert res.decisions is not None
        # Three phases: two width-3 vectors plus the scalar phase.
        assert [d.shape for d in res.decisions] == [(3,), (3,), (1,)]

    def test_decisions_are_argmins(self, array, rng):
        g = single_source_sink(rng, 3, 4)
        res = array.run(g.as_matrices(), track_decisions=True)
        mats = g.as_matrices()
        # Phase 0 evaluates the second-to-last layer against v.
        v = mats[-1][:, 0]
        first = mats[-2]
        expected = np.argmin(first + v[None, :], axis=1)
        assert np.array_equal(res.decisions[0], expected)


class TestPathTraceback:
    def test_fig1a_path(self, array):
        g = fig1a_graph()
        path, res = array.run_graph_with_path(g)
        assert path.cost == 6.0
        assert np.isclose(g.path_cost(path.nodes), 6.0)
        ref = solve_backward(g)
        assert np.isclose(path.cost, ref.optimum)

    def test_random_instances(self, array, rng):
        for n_inter, m in [(1, 3), (3, 4), (5, 5), (7, 2)]:
            g = single_source_sink(rng, n_inter, m)
            path, res = array.run_graph_with_path(g)
            assert np.isclose(g.path_cost(path.nodes), path.cost)
            assert np.isclose(path.cost, solve_backward(g).optimum)

    def test_path_has_one_node_per_stage(self, array, rng):
        g = single_source_sink(rng, 4, 3)
        path, _res = array.run_graph_with_path(g)
        assert len(path.nodes) == g.num_stages
        assert path.nodes[0] == 0 and path.nodes[-1] == 0

    def test_multi_sink_rejected(self, array, rng):
        g = random_multistage(rng, [1, 3, 3])
        with pytest.raises(SystolicError, match="single-source/sink"):
            array.run_graph_with_path(g)

    def test_sparse_graph_traceback(self, array, rng):
        g = single_source_sink(rng, 4, 4)
        # Knock out some edges; connectivity is preserved by request.
        from repro.graphs import random_multistage as rms

        g2 = rms(rng, [1, 4, 4, 4, 4, 1], edge_probability=0.6)
        path, _res = array.run_graph_with_path(g2)
        assert np.isfinite(path.cost)
        assert np.isclose(g2.path_cost(path.nodes), path.cost)


@given(
    n_inter=st.integers(min_value=1, max_value=6),
    m=st.integers(min_value=1, max_value=5),
    seed=st.integers(min_value=0, max_value=500),
)
@settings(max_examples=30, deadline=None)
def test_property_traced_path_realizes_optimum(n_inter, m, seed):
    rng = np.random.default_rng(seed)
    g = single_source_sink(rng, n_inter, m)
    path, res = BroadcastMatrixStringArray().run_graph_with_path(g)
    assert np.isclose(g.path_cost(path.nodes), path.cost)
    assert np.isclose(path.cost, solve_backward(g).optimum)
