"""Unit tests for the RTL simulation fabric."""

from __future__ import annotations

import pytest

from repro.systolic import ArrayStats, ProcessingElement, Register, RunReport, SystolicError
from repro.systolic.fabric import EventBus, SystolicMachine, TraceEvent, finalize_report


class TestRegister:
    def test_two_phase_semantics(self):
        r = Register("r", 0)
        r.set(5)
        assert r.value == 0  # staged write invisible before latch
        r.latch()
        assert r.value == 5

    def test_latch_without_write_is_noop(self):
        r = Register("r", 7)
        r.latch()
        assert r.value == 7

    def test_double_drive_detected(self):
        r = Register("r")
        r.set(1)
        with pytest.raises(SystolicError, match="driven twice"):
            r.set(2)

    def test_can_write_again_after_latch(self):
        r = Register("r")
        r.set(1)
        r.latch()
        r.set(2)
        r.latch()
        assert r.value == 2


class TestProcessingElement:
    def test_reg_is_idempotent(self):
        pe = ProcessingElement(3)
        a = pe.reg("ACC", 0.0)
        b = pe.reg("ACC", 99.0)
        assert a is b
        assert a.value == 0.0

    def test_busy_counts_once_per_tick(self):
        pe = ProcessingElement(0)
        pe.count_op()
        pe.count_op()
        pe.count_op()
        pe.end_tick()
        assert pe.busy_ticks == 1
        assert pe.op_count == 3

    def test_idle_tick_not_counted(self):
        pe = ProcessingElement(0)
        pe.end_tick()
        assert pe.busy_ticks == 0

    def test_end_tick_latches_registers(self):
        pe = ProcessingElement(0)
        r = pe.reg("R", 0)
        r.set(9)
        pe.end_tick()
        assert r.value == 9

    def test_getitem(self):
        pe = ProcessingElement(1)
        pe.reg("X", 4)
        assert pe["X"].value == 4


class TestReports:
    def make_report(self) -> RunReport:
        pes = [ProcessingElement(i) for i in range(3)]
        for pe in pes:
            pe.count_op(4)
            pe.end_tick()
        stats = ArrayStats()
        for _ in range(10):
            stats.record_tick()
        stats.input_words = 6
        return finalize_report("test", pes, stats, iterations=12, serial_ops=30)

    def test_report_fields(self):
        rep = self.make_report()
        assert rep.num_pes == 3
        assert rep.wall_ticks == 10
        assert rep.iterations == 12
        assert rep.total_ops == 12
        assert rep.input_words == 6

    def test_processor_utilization(self):
        rep = self.make_report()
        assert rep.processor_utilization == pytest.approx(30 / (12 * 3))

    def test_busy_fraction(self):
        rep = self.make_report()
        assert rep.busy_fraction == pytest.approx(3 / (10 * 3))


class TestEventBusReentrancy:
    """Regression: sinks that mutate the subscription list during emit.

    ``EventBus.emit`` must iterate over a snapshot — a sink that
    unsubscribes itself (one-shot sinks) or subscribes another sink
    mid-delivery previously mutated ``self._sinks`` under the loop,
    skipping sinks or delivering to half-registered ones.
    """

    def _event(self, tick: int = 1) -> TraceEvent:
        return TraceEvent(tick=tick, pe=0, kind="op", label="x")

    def test_sink_unsubscribing_itself_does_not_skip_others(self):
        bus = EventBus()
        seen: list[str] = []
        unsubscribe_holder: list = []

        def one_shot(event: TraceEvent) -> None:
            seen.append("one_shot")
            unsubscribe_holder[0]()  # remove self while emit iterates

        unsubscribe_holder.append(bus.subscribe(one_shot))
        bus.subscribe(lambda event: seen.append("stable"))
        bus.emit(self._event())
        # Pre-fix the list shifted under the loop and "stable" was skipped.
        assert seen == ["one_shot", "stable"]
        bus.emit(self._event(2))
        assert seen == ["one_shot", "stable", "stable"]

    def test_sink_subscribing_new_sink_sees_next_event_only(self):
        bus = EventBus()
        seen: list[tuple[str, int]] = []

        def late(event: TraceEvent) -> None:
            seen.append(("late", event.tick))

        def spawner(event: TraceEvent) -> None:
            seen.append(("spawner", event.tick))
            if event.tick == 1:
                bus.subscribe(late)

        bus.subscribe(spawner)
        bus.emit(self._event(1))
        assert seen == [("spawner", 1)]  # late sink not retro-delivered
        bus.emit(self._event(2))
        assert seen == [("spawner", 1), ("spawner", 2), ("late", 2)]

    def test_machine_accepts_external_sinks(self):
        collected: list[TraceEvent] = []
        machine = SystolicMachine("test", sinks=[collected.append])
        machine.add_pes(1)
        machine.emit("op", 0, "x")
        assert [e.label for e in collected] == ["x"]
        assert machine.tracing  # external sinks activate the bus


class TestEventBusSinkIsolation:
    """Regression: one throwing sink must not break the run or its peers.

    ``EventBus.emit`` swallows per-sink exceptions, counts them in
    ``sink_errors``, keeps a bounded sample, and the machine surfaces
    the count on :attr:`RunReport.sink_errors`.
    """

    def _event(self, tick: int = 1) -> TraceEvent:
        return TraceEvent(tick=tick, pe=0, kind="op", label="x")

    def test_throwing_sink_does_not_starve_later_sinks(self):
        bus = EventBus()
        seen: list[int] = []

        def broken(event: TraceEvent) -> None:
            raise RuntimeError("telemetry backend down")

        bus.subscribe(broken)
        bus.subscribe(lambda event: seen.append(event.tick))
        bus.emit(self._event(1))
        bus.emit(self._event(2))
        assert seen == [1, 2]
        assert bus.sink_errors == 2

    def test_error_samples_are_bounded(self):
        bus = EventBus()
        bus.subscribe(lambda event: (_ for _ in ()).throw(ValueError("boom")))
        for tick in range(1, 21):
            bus.emit(self._event(tick))
        assert bus.sink_errors == 20
        assert len(bus.sink_error_samples) == EventBus.MAX_ERROR_SAMPLES
        assert "ValueError" in bus.sink_error_samples[0][1]

    def test_machine_run_survives_and_reports_sink_errors(self):
        def broken(event: TraceEvent) -> None:
            raise RuntimeError("down")

        machine = SystolicMachine("test", sinks=[broken])
        machine.add_pes(1)[0].count_op()
        machine.emit("op", 0, "x")
        machine.end_tick()
        report = machine.finalize(iterations=1, serial_ops=1)
        assert report.sink_errors >= 1
