"""End-to-end semantics of each built-in semiring on path problems.

The point of keeping the algebra first-class (paper §3.1) is that the
*same* solvers compute different objectives under different semirings.
These tests pin the semantics: bottleneck paths under min-max,
reliability routing under max-times, reachability under boolean, and
path counting under plus-times — each validated against a brute-force
oracle on enumerable graphs.
"""

from __future__ import annotations

import itertools

import numpy as np
import pytest

from repro.dp import solve_backward, solve_forward
from repro.graphs import MultistageGraph
from repro.semiring import (
    BOOLEAN,
    MAX_TIMES,
    MIN_MAX,
    MIN_PLUS,
    PLUS_TIMES,
    chain_product,
)


def enumerate_paths(sizes):
    return itertools.product(*[range(s) for s in sizes])


class TestBottleneckPaths:
    """min-max: minimize the worst edge along the path (capacity routing)."""

    def make(self, rng, sizes):
        costs = tuple(
            rng.uniform(0, 100, (sizes[k], sizes[k + 1]))
            for k in range(len(sizes) - 1)
        )
        return MultistageGraph(costs=costs, semiring=MIN_MAX)

    def test_matches_brute_force(self, rng):
        g = self.make(rng, [2, 3, 3, 2])
        sol = solve_backward(g)
        best = min(
            max(g.costs[k][p[k], p[k + 1]] for k in range(3))
            for p in enumerate_paths(g.stage_sizes)
        )
        assert np.isclose(sol.optimum, best)

    def test_path_realizes_bottleneck(self, rng):
        g = self.make(rng, [3, 4, 3])
        sol = solve_backward(g)
        worst_edge = max(
            g.costs[k][sol.path.nodes[k], sol.path.nodes[k + 1]] for k in range(2)
        )
        assert np.isclose(worst_edge, sol.optimum)

    def test_forward_backward_agree(self, rng):
        g = self.make(rng, [2, 4, 4, 2])
        assert np.isclose(solve_forward(g).optimum, solve_backward(g).optimum)


class TestReliabilityRouting:
    """max-times: maximize the product of per-edge success probabilities."""

    def make(self, rng, sizes):
        costs = tuple(
            rng.uniform(0.1, 1.0, (sizes[k], sizes[k + 1]))
            for k in range(len(sizes) - 1)
        )
        return MultistageGraph(costs=costs, semiring=MAX_TIMES)

    def test_matches_brute_force(self, rng):
        g = self.make(rng, [2, 3, 2])
        sol = solve_backward(g)
        best = max(
            np.prod([g.costs[k][p[k], p[k + 1]] for k in range(2)])
            for p in enumerate_paths(g.stage_sizes)
        )
        assert np.isclose(sol.optimum, best)

    def test_reliability_in_unit_interval(self, rng):
        g = self.make(rng, [3, 3, 3, 3])
        sol = solve_backward(g)
        assert 0.0 < sol.optimum <= 1.0

    def test_log_transform_duality(self, rng):
        # max-times == exp(max-plus of logs): the standard reduction.
        g = self.make(rng, [2, 3, 3, 2])
        from repro.semiring import MAX_PLUS

        logs = tuple(np.log(c) for c in g.costs)
        g_log = MultistageGraph(costs=logs, semiring=MAX_PLUS)
        assert np.isclose(
            solve_backward(g).optimum, np.exp(solve_backward(g_log).optimum)
        )


class TestReachability:
    """boolean: does any path exist through present edges?"""

    def test_connected(self):
        costs = (np.array([[1.0, 0.0], [0.0, 1.0]]), np.array([[0.0], [1.0]]))
        g = MultistageGraph(costs=costs, semiring=BOOLEAN)
        assert solve_backward(g).optimum == 1.0

    def test_disconnected(self):
        costs = (np.array([[1.0, 0.0]]), np.array([[0.0], [1.0]]))
        g = MultistageGraph(costs=costs, semiring=BOOLEAN)
        # Only edge out of source reaches node 0, which has no sink edge.
        assert solve_backward(g).optimum == 0.0

    def test_matches_min_plus_finiteness(self, rng):
        # boolean reachability == (min-plus optimum is finite).
        from repro.graphs import random_multistage

        for seed in range(5):
            r = np.random.default_rng(seed)
            g = random_multistage(r, [1, 3, 3, 1], edge_probability=0.4)
            reach = MultistageGraph(
                costs=tuple(np.isfinite(c).astype(float) for c in g.costs),
                semiring=BOOLEAN,
            )
            finite = np.isfinite(solve_backward(g).optimum)
            assert (chain_product(BOOLEAN, reach.as_matrices())[0, 0] == 1.0) == finite


class TestPathCounting:
    """plus-times over 0/1 matrices counts source->sink paths."""

    def test_complete_layers(self):
        sizes = [1, 3, 4, 1]
        costs = tuple(
            np.ones((sizes[k], sizes[k + 1])) for k in range(len(sizes) - 1)
        )
        count = chain_product(PLUS_TIMES, list(costs))[0, 0]
        assert count == 3 * 4

    def test_sparse_counts(self, rng):
        sizes = [1, 3, 3, 1]
        masks = [rng.random((sizes[k], sizes[k + 1])) < 0.6 for k in range(3)]
        costs = [m.astype(float) for m in masks]
        count = chain_product(PLUS_TIMES, costs)[0, 0]
        brute = sum(
            all(masks[k][p[k], p[k + 1]] for k in range(3))
            for p in enumerate_paths(sizes)
        )
        assert count == brute


class TestMinPlusIsTheDefaultStory:
    def test_default_semiring_everywhere(self, rng):
        from repro.graphs import uniform_multistage

        g = uniform_multistage(rng, 4, 3)
        assert g.semiring is MIN_PLUS
        assert solve_backward(g).optimum <= solve_backward(g).stage_values[0].max()
