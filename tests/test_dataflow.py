"""Unit tests for the asynchronous dataflow engine and chain builders."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataflow import (
    Task,
    execute_dataflow,
    tasks_balanced_tree,
    tasks_from_expression,
)
from repro.dnc import rounds_only
from repro.dp import solve_matrix_chain
from repro.systolic import mesh_cycles


class TestEngine:
    def test_single_task(self):
        s = execute_dataflow([Task("a", 5.0)], 2)
        assert s.makespan == 5.0
        assert s.start_times["a"] == 0.0

    def test_chain_respects_dependencies(self):
        tasks = [Task("a", 2.0), Task("b", 3.0, deps=("a",)), Task("c", 1.0, deps=("b",))]
        s = execute_dataflow(tasks, 4)
        assert s.makespan == 6.0
        assert s.start_times["b"] == 2.0
        assert s.start_times["c"] == 5.0

    def test_parallel_independent_tasks(self):
        tasks = [Task(f"t{i}", 1.0) for i in range(6)]
        assert execute_dataflow(tasks, 3).makespan == 2.0
        assert execute_dataflow(tasks, 6).makespan == 1.0
        assert execute_dataflow(tasks, 1).makespan == 6.0

    def test_longest_first_priority(self):
        # One long + two short on 2 procs: long must start immediately.
        tasks = [Task("short1", 1.0), Task("long", 3.0), Task("short2", 1.0)]
        s = execute_dataflow(tasks, 2)
        assert s.makespan == 3.0
        assert s.start_times["long"] == 0.0

    def test_makespan_bounds(self):
        tasks = [
            Task("a", 2.0),
            Task("b", 4.0),
            Task("c", 3.0, deps=("a", "b")),
        ]
        s = execute_dataflow(tasks, 2)
        assert s.makespan >= s.critical_path_length({t.name: t for t in tasks})
        assert s.makespan <= s.busy_time

    def test_utilization(self):
        tasks = [Task("a", 4.0), Task("b", 4.0)]
        s = execute_dataflow(tasks, 2)
        assert s.utilization == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError, match="duplicate"):
            execute_dataflow([Task("a", 1.0), Task("a", 1.0)], 1)
        with pytest.raises(ValueError, match="unknown"):
            execute_dataflow([Task("a", 1.0, deps=("zz",))], 1)
        with pytest.raises(ValueError):
            execute_dataflow([Task("a", 1.0)], 0)
        with pytest.raises(ValueError):
            Task("neg", -1.0)

    def test_cycle_detected(self):
        tasks = [Task("a", 1.0, deps=("b",)), Task("b", 1.0, deps=("a",))]
        with pytest.raises(ValueError, match="cycle"):
            execute_dataflow(tasks, 2)

    def test_processors_never_oversubscribed(self):
        tasks = [Task(f"t{i}", float(1 + i % 3)) for i in range(10)]
        s = execute_dataflow(tasks, 3)
        # No two tasks on one processor overlap in time.
        by_proc: dict[int, list[tuple[float, float]]] = {}
        for name in s.start_times:
            by_proc.setdefault(s.processor_of[name], []).append(
                (s.start_times[name], s.finish_times[name])
            )
        for spans in by_proc.values():
            spans.sort()
            for (s1, f1), (s2, _f2) in zip(spans, spans[1:]):
                assert s2 >= f1 - 1e-12


class TestChainBuilders:
    def test_expression_tasks_cover_internal_nodes(self, rng):
        dims = [5, 3, 8, 2, 7]
        order = solve_matrix_chain(dims)
        tasks, root = tasks_from_expression(dims, order.expression)
        assert len(tasks) == 4 - 1
        assert root == "m1_4"

    def test_durations_follow_mesh_model(self):
        dims = [4, 3, 5]
        tasks, _root = tasks_from_expression(dims, (1, 2))
        assert tasks[0].duration == mesh_cycles(4, 3, 5)

    def test_single_matrix_expression(self):
        tasks, root = tasks_from_expression([3, 4], 1)
        assert len(tasks) == 1 and tasks[0].duration == 0.0

    def test_noncontiguous_rejected(self):
        with pytest.raises(ValueError):
            tasks_from_expression([2, 3, 4, 5], ((1, 3), 2))

    def test_balanced_tree_counts(self):
        tasks, root = tasks_balanced_tree(16)
        assert len(tasks) == 15
        assert root == "t0_16"

    def test_balanced_tree_single_leaf(self):
        tasks, _root = tasks_balanced_tree(1)
        assert len(tasks) == 1 and tasks[0].duration == 0.0


class TestDataflowVsRounds:
    @pytest.mark.parametrize("n,k", [(8, 2), (16, 4), (33, 5), (64, 8), (100, 3)])
    def test_fixed_tree_never_beats_adaptive_pairing(self, n, k):
        # rounds_only() re-pairs adjacent segments every round (it picks
        # its own tree), so it lower-bounds any schedule of a *fixed*
        # tree; the balanced tree matches it at the extremes (K = 1 and
        # K >= n/2) but loses in between.
        tasks, _root = tasks_balanced_tree(n)
        s = execute_dataflow(tasks, k)
        assert s.makespan >= rounds_only(n, k)

    @pytest.mark.parametrize("n", [2, 4, 8, 16, 32, 64])
    def test_fixed_tree_matches_at_full_parallelism(self, n):
        tasks, _root = tasks_balanced_tree(n)
        s = execute_dataflow(tasks, n)
        assert s.makespan == rounds_only(n, n)  # = ceil(log2 n)

    @pytest.mark.parametrize("n", [2, 5, 9, 17])
    def test_fixed_tree_matches_single_processor(self, n):
        tasks, _root = tasks_balanced_tree(n)
        s = execute_dataflow(tasks, 1)
        assert s.makespan == n - 1 == rounds_only(n, 1)

    def test_async_wins_on_skewed_durations(self, rng):
        # The Section-4 point: once durations differ (rectangular
        # multiplies), asynchronous firing beats a round barrier.
        dims = [50, 2, 40, 3, 60, 2, 30]  # skewed: costs vary wildly
        order = solve_matrix_chain(dims)
        tasks, _root = tasks_from_expression(dims, order.expression)
        k = 3
        s = execute_dataflow(tasks, k)
        # A synchronous schedule pays the max duration every round:
        # lower-bound its makespan by rounds x the mean of round maxima,
        # conservatively: rounds * max duration is a safe upper bound on
        # what async must beat at equality; assert async <= that.
        durations = sorted((t.duration for t in tasks), reverse=True)
        rounds = rounds_only(len(dims) - 1, k)
        sync_bound = rounds * durations[0]
        assert s.makespan <= sync_bound
        assert s.makespan >= max(durations)


@given(
    n=st.integers(min_value=2, max_value=64),
    k=st.integers(min_value=1, max_value=8),
)
@settings(max_examples=40, deadline=None)
def test_property_fixed_tree_bracketed_by_bounds(n, k):
    tasks, _root = tasks_balanced_tree(n)
    s = execute_dataflow(tasks, k)
    # Lower bound: the adaptive pairing floor; upper: serial execution.
    assert rounds_only(n, k) <= s.makespan <= n - 1
