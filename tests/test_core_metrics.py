"""Unit tests for the metric closed forms."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import eq9_pu, feedback_pu, measured_pu, speedup
from repro.graphs import single_source_sink
from repro.systolic import PipelinedMatrixStringArray


class TestEq9:
    def test_formula_identity(self):
        # ((N-2)m² + m)/(N m²) == (N-2)/N + 1/(N m).
        for n, m in [(4, 3), (10, 5), (100, 8)]:
            assert eq9_pu(n, m) == pytest.approx((n - 2) / n + 1 / (n * m))

    def test_limit_is_one(self):
        assert eq9_pu(10_000, 64) > 0.999

    def test_validation(self):
        with pytest.raises(ValueError):
            eq9_pu(0, 3)

    def test_close_to_measured_pu(self, rng):
        # Measured PU differs from eq. (9) only through the paper's
        # N·m vs (N-1)·m iteration-count convention.
        n_inter, m = 19, 4  # N = 20 layers
        g = single_source_sink(rng, n_inter, m)
        res = PipelinedMatrixStringArray().run_graph(g)
        n = g.num_layers
        paper = eq9_pu(n, m)
        measured = measured_pu(res.report)
        assert measured == pytest.approx(paper * n / (n - 1), rel=1e-9)
        assert abs(measured - paper) < 0.06


class TestFeedbackPU:
    def test_known_value(self):
        # Paper: ((N-1)m² + m)/((N+1)m²) for N=4, m=3.
        assert feedback_pu(4, 3) == pytest.approx((3 * 9 + 3) / (5 * 9))

    def test_limit_is_one(self):
        assert feedback_pu(10_000, 16) > 0.999


class TestSpeedup:
    def test_basic(self):
        assert speedup(100, 10) == 10.0

    def test_validation(self):
        with pytest.raises(ValueError):
            speedup(10, 0)


class TestSummarizeReport:
    def test_summary_fields(self, rng):
        g = single_source_sink(rng, 3, 3)
        res = PipelinedMatrixStringArray().run_graph(g)
        from repro.core import summarize_report

        s = summarize_report(res.report)
        assert s["design"] == "fig3-pipelined"
        assert s["backend"] == "rtl"
        assert s["iterations"] == res.report.iterations
        assert s["is_empty"] is False
        assert s["processor_utilization"] == res.report.processor_utilization

    def test_empty_run_summary_is_finite(self):
        from repro.core import summarize_report
        from repro.systolic import SystolicMachine

        rep = SystolicMachine("t").finalize(iterations=0, serial_ops=0)
        s = summarize_report(rep)
        assert s["is_empty"] is True
        assert s["processor_utilization"] == 0.0
        assert s["busy_fraction"] == 0.0
