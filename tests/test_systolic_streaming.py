"""Unit tests for instance streaming through the pipelined array."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dp import solve_backward
from repro.graphs import single_source_sink
from repro.systolic import PipelinedMatrixStringArray, SystolicError, run_stream


class TestRunStream:
    def make_graphs(self, rng, count, n_inter=3, m=4):
        return [single_source_sink(rng, n_inter, m) for _ in range(count)]

    def test_values_match_individual_runs(self, rng):
        graphs = self.make_graphs(rng, 5)
        arr = PipelinedMatrixStringArray()
        res = run_stream(arr, graphs)
        for g, v in zip(graphs, res.values):
            assert np.isclose(float(np.asarray(v).squeeze()), solve_backward(g).optimum)

    def test_drain_amortized_once(self, rng):
        graphs = self.make_graphs(rng, 8, n_inter=3, m=4)
        arr = PipelinedMatrixStringArray()
        single = arr.run_graph(graphs[0]).report
        res = run_stream(arr, graphs)
        per_instance_compute = single.wall_ticks - (4 - 1)
        assert res.total_wall_ticks == 8 * per_instance_compute + (4 - 1)
        # Amortized per-instance time beats the stand-alone time.
        assert res.per_instance_wall_ticks < single.wall_ticks

    def test_amortization_improves_with_stream_length(self, rng):
        arr = PipelinedMatrixStringArray()
        short = run_stream(arr, self.make_graphs(rng, 2))
        long = run_stream(arr, self.make_graphs(rng, 16))
        assert long.per_instance_wall_ticks < short.per_instance_wall_ticks

    def test_mixed_shapes_rejected(self, rng):
        arr = PipelinedMatrixStringArray()
        graphs = [single_source_sink(rng, 3, 4), single_source_sink(rng, 3, 5)]
        with pytest.raises(SystolicError, match="shape"):
            run_stream(arr, graphs)

    def test_empty_stream_rejected(self, rng):
        with pytest.raises(SystolicError):
            run_stream(PipelinedMatrixStringArray(), [])
