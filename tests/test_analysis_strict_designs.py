"""The five shipped designs are hazard-clean under the strict sanitizer.

This is the contract the static-analysis layer enforces on the repo
itself: every array design runs with ``strict=True`` (raise mode) with
zero hazards, on every execution mode, and stays clean when the PR 3
fault injector is simultaneously rewriting registers — injections are
attributed to the injector, never to the design.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs import fig1b_problem, random_multistage
from repro.systolic import (
    BroadcastMatrixStringArray,
    FeedbackSystolicArray,
    MeshMatrixMultiplier,
    PipelinedMatrixStringArray,
)
from repro.systolic.parenthesization import (
    BroadcastParenthesizer,
    SystolicParenthesizer,
)


@pytest.fixture
def rng():
    return np.random.default_rng(7)


def matrix_string(rng, n=3, m=5):
    mats = [rng.integers(0, 9, size=(m, m)).astype(float) for _ in range(n)]
    mats.append(rng.integers(0, 9, size=(m, 1)).astype(float))
    return mats


class TestDesignsStrictClean:
    def test_pipelined_matrix_string(self, rng):
        res = PipelinedMatrixStringArray().run(matrix_string(rng), strict=True)
        assert res.report.hazards == 0

    def test_pipelined_row_vector_head(self, rng):
        mats = matrix_string(rng)
        mats[0] = mats[0][:1]  # 1 x m head: the scalar-phase path
        res = PipelinedMatrixStringArray().run(mats, strict=True)
        assert res.report.hazards == 0

    def test_broadcast_matrix_string(self, rng):
        res = BroadcastMatrixStringArray().run(matrix_string(rng), strict=True)
        assert res.report.hazards == 0

    def test_broadcast_with_decision_tracking(self, rng):
        res = BroadcastMatrixStringArray().run(
            matrix_string(rng), strict=True, track_decisions=True
        )
        assert res.report.hazards == 0

    def test_broadcast_graph_with_path(self, rng):
        g = random_multistage(rng, [1, 4, 4, 4, 1])
        path, res = BroadcastMatrixStringArray().run_graph_with_path(
            g, strict=True
        )
        assert res.report.hazards == 0
        assert path.nodes[0] == 0

    def test_feedback(self):
        res = FeedbackSystolicArray().run(fig1b_problem(), strict=True)
        assert res.report.hazards == 0

    def test_mesh_square_and_rect(self, rng):
        mesh = MeshMatrixMultiplier()
        a = rng.integers(0, 9, size=(4, 4)).astype(float)
        b = rng.integers(0, 9, size=(4, 4)).astype(float)
        assert mesh.run(a, b, strict=True).report.hazards == 0
        a = rng.integers(0, 9, size=(3, 5)).astype(float)
        b = rng.integers(0, 9, size=(5, 2)).astype(float)
        assert mesh.run(a, b, strict=True).report.hazards == 0

    @pytest.mark.parametrize("cls", [BroadcastParenthesizer, SystolicParenthesizer])
    def test_parenthesization(self, cls, rng):
        dims = tuple(int(d) for d in rng.integers(2, 30, size=8))
        res = cls().run(dims, strict=True)
        assert res.report.hazards == 0

    def test_strict_forces_rtl_backend(self, rng):
        # strict is cycle-level: even with backend="fast" requested, the
        # run must go through the machine.
        res = PipelinedMatrixStringArray().run(
            matrix_string(rng), backend="fast", strict=True
        )
        assert res.report.backend == "rtl"

    def test_strict_matches_non_strict_results(self, rng):
        mats = matrix_string(rng)
        plain = PipelinedMatrixStringArray().run(
            [m.copy() for m in mats], backend="rtl"
        )
        strict = PipelinedMatrixStringArray().run(
            [m.copy() for m in mats], strict=True
        )
        assert np.array_equal(np.asarray(plain.value), np.asarray(strict.value))
        assert plain.report.iterations == strict.report.iterations


class TestStrictUnderFaultInjection:
    def test_campaign_style_injection_reports_no_design_hazards(self, rng):
        from repro.faults import FaultInjector, FaultPlan, FaultSpec

        mats = matrix_string(rng)
        plan = FaultPlan(
            design="pipelined",
            specs=(
                FaultSpec(mode="transient_flip", pe=0, reg="ACC", tick=2),
                FaultSpec(
                    mode="stuck_at", pe=1, reg="R", tick=3, duration=4,
                    value=99.0,
                ),
                FaultSpec(mode="drop_delivery", pe=2, reg="R", tick=4),
            ),
        )
        injector = FaultInjector(plan)
        res = PipelinedMatrixStringArray().run(
            mats, strict=True, injector=injector
        )
        assert len(injector.injections) >= 2
        assert res.report.hazards == 0

    def test_mesh_injection_clean(self, rng):
        from repro.faults import FaultInjector, FaultPlan, FaultSpec

        a = rng.integers(0, 9, size=(4, 4)).astype(float)
        b = rng.integers(0, 9, size=(4, 4)).astype(float)
        plan = FaultPlan(
            design="mesh-matmul",
            specs=(FaultSpec(mode="transient_flip", pe=5, reg="C", tick=4),),
        )
        injector = FaultInjector(plan)
        res = MeshMatrixMultiplier().run(a, b, strict=True, injector=injector)
        assert len(injector.injections) == 1
        assert res.report.hazards == 0

    def test_feedback_injection_clean(self):
        from repro.faults import FaultInjector, FaultPlan, FaultSpec

        plan = FaultPlan(
            design="fig5-feedback",
            specs=(FaultSpec(mode="transient_flip", pe=0, reg="H", tick=3),),
        )
        injector = FaultInjector(plan)
        res = FeedbackSystolicArray().run(
            fig1b_problem(), strict=True, injector=injector
        )
        assert res.report.hazards == 0
