"""Property-based tests (hypothesis) for the semiring substrate."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.semiring import (
    MAX_PLUS,
    MIN_PLUS,
    PLUS_TIMES,
    chain_product,
    chain_product_tree,
    closure,
    matmul,
    matrix_power,
    matvec,
)

finite = st.floats(min_value=0.0, max_value=100.0, allow_nan=False)


def square(n: int):
    return arrays(np.float64, (n, n), elements=finite)


@given(a=square(3), b=square(3), c=square(3))
@settings(max_examples=50, deadline=None)
def test_minplus_matmul_associative(a, b, c):
    left = matmul(MIN_PLUS, matmul(MIN_PLUS, a, b), c)
    right = matmul(MIN_PLUS, a, matmul(MIN_PLUS, b, c))
    assert np.allclose(left, right)


@given(a=square(4))
@settings(max_examples=50, deadline=None)
def test_minplus_identity_laws(a):
    e = MIN_PLUS.eye(4)
    assert np.allclose(matmul(MIN_PLUS, a, e), a)
    assert np.allclose(matmul(MIN_PLUS, e, a), a)


@given(a=square(3), b=square(3), c=square(3))
@settings(max_examples=50, deadline=None)
def test_minplus_distributes_over_elementwise_min(a, b, c):
    # A(B ⊕ C) == AB ⊕ AC where ⊕ is elementwise min.
    left = matmul(MIN_PLUS, a, np.minimum(b, c))
    right = np.minimum(matmul(MIN_PLUS, a, b), matmul(MIN_PLUS, a, c))
    assert np.allclose(left, right)


@given(
    mats=st.lists(square(2), min_size=1, max_size=8),
)
@settings(max_examples=40, deadline=None)
def test_chain_orders_agree(mats):
    assert np.allclose(
        chain_product(MIN_PLUS, mats), chain_product_tree(MIN_PLUS, mats)
    )


@given(a=square(3), n=st.integers(min_value=0, max_value=6))
@settings(max_examples=40, deadline=None)
def test_power_additivity(a, n):
    # A^n ⊗ A == A^(n+1)
    assert np.allclose(
        matmul(MIN_PLUS, matrix_power(MIN_PLUS, a, n), a),
        matrix_power(MIN_PLUS, a, n + 1),
    )


@given(a=square(4))
@settings(max_examples=40, deadline=None)
def test_closure_dominates_all_powers(a):
    # A* ⊕ A^k == A* for any k (closure covers all walk lengths).
    c = closure(MIN_PLUS, a)
    for k in range(4):
        pk = matrix_power(MIN_PLUS, a, k)
        assert np.allclose(np.minimum(c, pk), c)


@given(a=square(3), x=arrays(np.float64, 3, elements=finite))
@settings(max_examples=50, deadline=None)
def test_matvec_lower_bound(a, x):
    # Each y_i is achieved by some j and is <= every candidate.
    y = matvec(MIN_PLUS, a, x)
    cand = a + x[None, :]
    assert np.allclose(y, cand.min(axis=1))


@given(a=square(3), b=square(3))
@settings(max_examples=40, deadline=None)
def test_plus_times_matches_numpy(a, b):
    assert np.allclose(matmul(PLUS_TIMES, a, b), a @ b, rtol=1e-9, atol=1e-9)


@given(a=square(3), b=square(3))
@settings(max_examples=40, deadline=None)
def test_maxplus_is_minplus_negated(a, b):
    # max-plus(a, b) == -min-plus(-a, -b): duality of the tropical pair.
    neg = matmul(MIN_PLUS, -a, -b)
    assert np.allclose(matmul(MAX_PLUS, a, b), -neg)
