"""Unit tests for batched semiring operations (Section 3.2 vector elements)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.semiring import (
    MIN_PLUS,
    PLUS_TIMES,
    SemiringError,
    batched_chain_product,
    batched_matmul,
    chain_product,
    matmul,
)


class TestBatchedMatmul:
    def test_matches_per_slice_matmul(self, rng):
        a = rng.uniform(0, 9, (5, 3, 4))
        b = rng.uniform(0, 9, (5, 4, 2))
        out = batched_matmul(MIN_PLUS, a, b)
        assert out.shape == (5, 3, 4 and 2) == (5, 3, 2)
        for i in range(5):
            assert np.allclose(out[i], matmul(MIN_PLUS, a[i], b[i]))

    def test_unbatched_degenerates_to_matmul(self, rng):
        a = rng.uniform(0, 9, (3, 4))
        b = rng.uniform(0, 9, (4, 5))
        assert np.allclose(batched_matmul(MIN_PLUS, a, b), matmul(MIN_PLUS, a, b))

    def test_batch_broadcasting(self, rng):
        a = rng.uniform(0, 9, (4, 3, 3))  # batch of 4
        b = rng.uniform(0, 9, (3, 3))  # shared operand
        out = batched_matmul(MIN_PLUS, a, b)
        for i in range(4):
            assert np.allclose(out[i], matmul(MIN_PLUS, a[i], b))

    def test_plus_times_matches_numpy(self, rng):
        a = rng.uniform(-1, 1, (6, 2, 3))
        b = rng.uniform(-1, 1, (6, 3, 4))
        assert np.allclose(batched_matmul(PLUS_TIMES, a, b), a @ b)

    def test_validation(self):
        with pytest.raises(SemiringError):
            batched_matmul(MIN_PLUS, np.zeros(3), np.zeros((3, 3)))
        with pytest.raises(SemiringError, match="inner"):
            batched_matmul(MIN_PLUS, np.zeros((2, 3, 4)), np.zeros((2, 3, 4)))


class TestBatchedChain:
    def test_matches_per_slice_chain(self, rng):
        mats = [rng.uniform(0, 9, (4, 3, 3)) for _ in range(5)]
        out = batched_chain_product(MIN_PLUS, mats)
        for i in range(4):
            ref = chain_product(MIN_PLUS, [m[i] for m in mats])
            assert np.allclose(out[i], ref)

    def test_quantized_value_elements(self, rng):
        # The paper's Kalman/inventory remark: each "element" carries B
        # quantized values; the batched product solves all B problem
        # variants in one pass.
        B = 8
        layers = [rng.uniform(0, 9, (B, 1, 3)), rng.uniform(0, 9, (B, 3, 3)), rng.uniform(0, 9, (B, 3, 1))]
        out = batched_chain_product(MIN_PLUS, layers)
        assert out.shape == (B, 1, 1)
        for i in range(B):
            ref = chain_product(MIN_PLUS, [m[i] for m in layers])
            assert np.isclose(out[i, 0, 0], ref[0, 0])

    def test_empty_rejected(self):
        with pytest.raises(SemiringError):
            batched_chain_product(MIN_PLUS, [])


finite = st.floats(min_value=0.0, max_value=50.0, allow_nan=False)


@given(
    a=arrays(np.float64, (3, 2, 2), elements=finite),
    b=arrays(np.float64, (3, 2, 2), elements=finite),
)
@settings(max_examples=40, deadline=None)
def test_property_batched_equals_slicewise(a, b):
    out = batched_matmul(MIN_PLUS, a, b)
    for i in range(3):
        assert np.allclose(out[i], matmul(MIN_PLUS, a[i], b[i]))
