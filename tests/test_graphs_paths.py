"""Unit tests for path objects and validation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs import (
    GraphError,
    StagePath,
    all_shortest_paths_equal,
    fig1a_graph,
    validate_path,
)
from repro.dp import solve_backward, solve_forward


class TestStagePath:
    def test_len_and_edges(self):
        p = StagePath(nodes=(0, 2, 1), cost=5.0)
        assert len(p) == 3
        assert p.edges() == ((0, 2), (2, 1))


class TestValidatePath:
    def test_valid_path_passes(self):
        g = fig1a_graph()
        sol = solve_backward(g)
        validate_path(g, sol.path)

    def test_cost_mismatch_rejected(self):
        g = fig1a_graph()
        sol = solve_backward(g)
        bad = StagePath(nodes=sol.path.nodes, cost=sol.path.cost + 1.0)
        with pytest.raises(GraphError, match="disagrees"):
            validate_path(g, bad)

    def test_missing_edge_rejected(self):
        g = fig1a_graph()
        costs = [c.copy() for c in g.costs]
        costs[1][:] = np.inf
        from repro.graphs import MultistageGraph

        g2 = MultistageGraph(costs=tuple(costs))
        p = StagePath(nodes=(0, 0, 0, 0, 0), cost=3.0)
        with pytest.raises(GraphError, match="missing edge"):
            validate_path(g2, p)

    def test_wrong_length_rejected(self):
        g = fig1a_graph()
        with pytest.raises(GraphError):
            validate_path(g, StagePath(nodes=(0, 1), cost=1.0))


class TestCrossSolverAgreement:
    def test_forward_and_backward_paths_agree_in_cost(self, rng):
        from repro.graphs import uniform_multistage

        g = uniform_multistage(rng, 6, 4)
        paths = [solve_backward(g).path, solve_forward(g).path]
        assert all_shortest_paths_equal(g, paths)

    def test_empty_list_is_trivially_equal(self):
        g = fig1a_graph()
        assert all_shortest_paths_equal(g, [])

    def test_disagreeing_costs_detected(self):
        g = fig1a_graph()
        good = solve_backward(g).path
        # A deliberately suboptimal (but valid) path: cost recomputed so
        # validate passes, then equality must fail.
        nodes = tuple(
            (n + 1) % s for n, s in zip(good.nodes, g.stage_sizes)
        )
        other_cost = g.path_cost(nodes)
        if np.isclose(other_cost, good.cost):  # pragma: no cover - unlucky tie
            pytest.skip("tie on this instance")
        other = StagePath(nodes=nodes, cost=other_cost)
        assert not all_shortest_paths_equal(g, [good, other])
