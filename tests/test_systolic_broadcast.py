"""Unit tests for the Fig. 4 broadcast matrix-string array."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dp import solve_backward
from repro.graphs import fig1a_graph, random_multistage, single_source_sink
from repro.semiring import MIN_PLUS, chain_product
from repro.systolic import BroadcastMatrixStringArray, PipelinedMatrixStringArray, SystolicError


@pytest.fixture
def array():
    return BroadcastMatrixStringArray()


class TestCorrectness:
    def test_fig1a_example(self, array):
        assert float(array.run_graph(fig1a_graph()).value) == 6.0

    def test_matches_sequential(self, array, rng):
        for n_inter in (1, 2, 3, 5):
            g = single_source_sink(rng, n_inter, 4)
            res = array.run_graph(g)
            assert np.isclose(float(res.value), solve_backward(g).optimum)

    def test_vector_result(self, array, rng):
        g = random_multistage(rng, [5, 5, 5, 1])
        res = array.run_graph(g)
        ref = chain_product(MIN_PLUS, g.as_matrices())[:, 0]
        assert np.allclose(np.asarray(res.value), ref)

    def test_agrees_with_pipelined_design(self, rng):
        # Functional equivalence of the two Section-3.2 designs.
        pipe = PipelinedMatrixStringArray()
        for _ in range(4):
            g = single_source_sink(rng, 3, 4)
            a = array_run = BroadcastMatrixStringArray().run_graph(g)
            b = pipe.run_graph(g)
            assert np.isclose(float(a.value), float(b.value))

    def test_width_one(self, array, rng):
        g = random_multistage(rng, [1, 1, 1])
        res = array.run_graph(g)
        assert np.isclose(float(np.asarray(res.value).squeeze()), solve_backward(g).optimum)


class TestSchedule:
    def test_iteration_count(self, array, rng):
        for n_inter, m in [(2, 3), (4, 5)]:
            g = single_source_sink(rng, n_inter, m)
            res = array.run_graph(g)
            assert res.report.iterations == (g.num_layers - 1) * m

    def test_no_skew_in_wall_clock(self, array, rng):
        # Broadcast delivers to all PEs at once: no fill/drain.
        g = single_source_sink(rng, 3, 4)
        res = array.run_graph(g)
        assert res.report.wall_ticks == res.report.iterations

    def test_broadcast_traffic_counted(self, array, rng):
        g = single_source_sink(rng, 2, 3)
        res = array.run_graph(g)
        # One bus word per iteration.
        assert res.report.broadcast_words == res.report.iterations

    def test_same_pu_as_pipelined(self, rng):
        # Eq. (9) covers both designs.
        g = single_source_sink(rng, 4, 3)
        a = BroadcastMatrixStringArray().run_graph(g).report
        b = PipelinedMatrixStringArray().run_graph(g).report
        assert a.processor_utilization == pytest.approx(b.processor_utilization)


class TestValidation:
    def test_operand_contract_shared_with_fig3(self, array):
        with pytest.raises(SystolicError):
            array.run([np.zeros((3, 3)), np.zeros((3, 3))])

    def test_row_vector_must_be_leftmost(self, array):
        # A 1xm operand in the interior trips shape validation.
        with pytest.raises(SystolicError, match="leftmost|interior"):
            array.run([np.zeros((3, 3)), np.zeros((1, 3)), np.zeros(3)])


@given(
    n_layers=st.integers(min_value=2, max_value=6),
    m=st.integers(min_value=1, max_value=5),
    seed=st.integers(min_value=0, max_value=1000),
)
@settings(max_examples=30, deadline=None)
def test_property_always_matches_sequential(n_layers, m, seed):
    rng = np.random.default_rng(seed)
    sizes = [1] + [m] * (n_layers - 1) + [1]
    g = random_multistage(rng, sizes)
    res = BroadcastMatrixStringArray().run_graph(g)
    assert np.isclose(
        float(np.asarray(res.value).squeeze()), solve_backward(g).optimum
    )
