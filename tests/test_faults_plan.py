"""Unit tests for declarative fault plans and their serialization."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.faults import (
    FAULT_MODES,
    PERSISTENT_MODES,
    TRANSIENT_MODES,
    FaultPlan,
    FaultPlanError,
    FaultSpec,
    random_plan,
)


class TestFaultSpecValidation:
    def test_modes_partition(self):
        assert set(TRANSIENT_MODES) | set(PERSISTENT_MODES) == set(FAULT_MODES)
        assert not set(TRANSIENT_MODES) & set(PERSISTENT_MODES)

    def test_unknown_mode_rejected(self):
        with pytest.raises(FaultPlanError, match="mode"):
            FaultSpec(mode="gamma_ray", pe=0, reg="R")

    def test_stuck_at_requires_value(self):
        with pytest.raises(FaultPlanError, match="value"):
            FaultSpec(mode="stuck_at", pe=0, reg="R")

    def test_register_modes_require_reg(self):
        for mode in ("transient_flip", "stuck_at", "drop_delivery",
                     "duplicate_delivery", "dead_link"):
            with pytest.raises(FaultPlanError, match="reg"):
                FaultSpec(mode=mode, pe=0, value=1.0)

    def test_dead_pe_needs_no_reg(self):
        spec = FaultSpec(mode="dead_pe", pe=3, tick=2)
        assert spec.reg is None and not spec.transient

    def test_tick_must_be_positive(self):
        with pytest.raises(FaultPlanError, match="tick"):
            FaultSpec(mode="transient_flip", pe=0, reg="R", tick=0)

    def test_duration_must_be_positive(self):
        with pytest.raises(FaultPlanError, match="duration"):
            FaultSpec(mode="stuck_at", pe=0, reg="R", value=1.0, duration=0)


class TestWindows:
    def test_transient_default_window_is_one_tick(self):
        spec = FaultSpec(mode="drop_delivery", pe=0, reg="R", tick=5)
        assert spec.window() == (5, 5)
        assert not spec.armed_at(4)
        assert spec.armed_at(5)
        assert not spec.armed_at(6)

    def test_persistent_default_window_is_unbounded(self):
        spec = FaultSpec(mode="dead_pe", pe=0, tick=3)
        lo, hi = spec.window()
        assert lo == 3 and hi == float("inf")
        assert spec.armed_at(10_000)

    def test_explicit_duration(self):
        spec = FaultSpec(mode="stuck_at", pe=0, reg="R", value=0.0, tick=2, duration=3)
        assert [spec.armed_at(t) for t in range(1, 7)] == [
            False, True, True, True, False, False,
        ]


class TestRoundTrip:
    def test_spec_dict_roundtrip(self):
        spec = FaultSpec(mode="stuck_at", pe=2, reg="ACC", tick=4, value=9.5)
        again = FaultSpec.from_dict(spec.to_dict())
        assert again == spec

    def test_spec_dict_drops_nones(self):
        d = FaultSpec(mode="dead_pe", pe=1).to_dict()
        assert "reg" not in d and "value" not in d

    def test_spec_unknown_keys_rejected(self):
        with pytest.raises(FaultPlanError, match="unknown"):
            FaultSpec.from_dict({"mode": "dead_pe", "pe": 0, "bogus": 1})

    def test_plan_file_roundtrip(self, tmp_path):
        plan = FaultPlan(
            specs=(
                FaultSpec(mode="transient_flip", pe=0, reg="R", tick=2),
                FaultSpec(mode="dead_pe", pe=1, tick=3),
            ),
            design="pipelined",
            seed=42,
        )
        path = tmp_path / "plan.json"
        plan.save(path)
        again = FaultPlan.load(path)
        assert again == plan
        assert json.loads(path.read_text())["kind"] == "fault_plan"

    def test_load_missing_file_is_typed(self, tmp_path):
        with pytest.raises(FaultPlanError):
            FaultPlan.load(tmp_path / "nope.json")

    def test_load_corrupted_json_is_typed(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"kind": "fault_plan", "specs": [')
        with pytest.raises(FaultPlanError, match="JSON"):
            FaultPlan.load(path)

    def test_wrong_kind_rejected(self):
        with pytest.raises(FaultPlanError, match="kind"):
            FaultPlan.from_dict({"kind": "systolic_run", "specs": []})


class TestPlanSurgery:
    def _plan(self):
        return FaultPlan(
            specs=(
                FaultSpec(mode="transient_flip", pe=0, reg="R", tick=1),
                FaultSpec(mode="stuck_at", pe=1, reg="R", tick=1, value=0.0),
                FaultSpec(mode="dead_pe", pe=2, tick=1),
            ),
            design="pipelined",
        )

    def test_drop_transients_keeps_persistent(self):
        reduced = self._plan().drop_transients()
        assert [s.mode for s in reduced] == ["stuck_at", "dead_pe"]

    def test_without_pe(self):
        reduced = self._plan().without_pe(2)
        assert all(s.pe != 2 for s in reduced)
        assert len(reduced) == 2

    def test_dead_pes_covers_every_persistent_fault(self):
        # stuck_at on PE 1 is broken hardware too, not just dead_pe.
        assert self._plan().dead_pes() == (1, 2)

    def test_persistent_specs(self):
        assert all(
            s.mode in PERSISTENT_MODES for s in self._plan().persistent_specs
        )


class TestRandomPlan:
    def test_same_seed_same_plan(self):
        kwargs = dict(
            design="pipelined", num_pes=4, registers=("R", "ACC"),
            horizon=20, n_faults=3,
        )
        a = random_plan(np.random.default_rng(7), **kwargs)
        b = random_plan(np.random.default_rng(7), **kwargs)
        assert a.specs == b.specs

    def test_specs_respect_geometry(self):
        plan = random_plan(
            np.random.default_rng(0), design="mesh", num_pes=9,
            registers=("C", "A", "B"), horizon=12, n_faults=50,
        )
        for spec in plan:
            assert 0 <= spec.pe < 9
            assert 1 <= spec.tick <= 12
            assert spec.mode in FAULT_MODES
            if spec.mode != "dead_pe":
                assert spec.reg in ("C", "A", "B")
