"""Cross-solver fuzz suite: every route must agree on random instances.

Heavier randomized integration checks than the per-module property
tests: instances are drawn with varied shapes, sparsity and semirings,
and pushed through every applicable solver pair.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dnc import simulate_chain_product
from repro.dp import solve_backward, solve_forward, solve_polyadic
from repro.graphs import MultistageGraph, random_multistage
from repro.search import branch_and_bound
from repro.semiring import MAX_PLUS, MIN_PLUS, chain_product
from repro.systolic import (
    BroadcastMatrixStringArray,
    FeedbackSystolicArray,
    PipelinedMatrixStringArray,
)


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    n_stages=st.integers(min_value=2, max_value=7),
    sizes=st.lists(st.integers(min_value=1, max_value=5), min_size=2, max_size=7),
)
@settings(max_examples=40, deadline=None)
def test_fuzz_monadic_polyadic_bnb_agree(seed, n_stages, sizes):
    rng = np.random.default_rng(seed)
    g = random_multistage(rng, sizes)
    back = solve_backward(g).optimum
    fwd = solve_forward(g).optimum
    poly = solve_polyadic(g).optimum
    bnb = branch_and_bound(g).optimum
    assert np.isclose(back, fwd)
    assert np.isclose(back, poly)
    assert np.isclose(back, bnb)


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    n_layers=st.integers(min_value=2, max_value=6),
    m=st.integers(min_value=1, max_value=4),
    prob=st.floats(min_value=0.4, max_value=1.0),
)
@settings(max_examples=40, deadline=None)
def test_fuzz_sparse_graphs_through_arrays(seed, n_layers, m, prob):
    rng = np.random.default_rng(seed)
    sizes = [1] + [m] * (n_layers - 1) + [1]
    g = random_multistage(rng, sizes, edge_probability=prob)
    ref = solve_backward(g).optimum
    pipe = float(np.asarray(PipelinedMatrixStringArray().run_graph(g).value).squeeze())
    bcast = float(np.asarray(BroadcastMatrixStringArray().run_graph(g).value).squeeze())
    assert np.isclose(pipe, ref, equal_nan=True) or (np.isinf(pipe) and np.isinf(ref))
    assert np.isclose(bcast, ref, equal_nan=True) or (np.isinf(bcast) and np.isinf(ref))


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    n=st.integers(min_value=2, max_value=12),
    k=st.integers(min_value=1, max_value=5),
)
@settings(max_examples=30, deadline=None)
def test_fuzz_scheduled_products_exact(seed, n, k):
    rng = np.random.default_rng(seed)
    mats = [rng.uniform(0, 9, (3, 3)) for _ in range(n)]
    ref = chain_product(MIN_PLUS, mats)
    for policy in ("leftmost", "balanced"):
        res = simulate_chain_product(n, k, policy=policy, matrices=mats)
        assert np.allclose(res.product, ref)


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    n_stages=st.integers(min_value=2, max_value=6),
    m=st.integers(min_value=1, max_value=4),
)
@settings(max_examples=30, deadline=None)
def test_fuzz_feedback_array_with_awkward_costs(seed, n_stages, m):
    # Cost functions with negatives and plateaus (ties) — the argmin
    # bookkeeping must still trace a path that re-costs to the optimum.
    rng = np.random.default_rng(seed)
    values = tuple(rng.uniform(-5, 5, m) for _ in range(n_stages))
    from repro.graphs import NodeValueProblem

    p = NodeValueProblem(
        values=values,
        edge_cost=lambda a, b: np.round(np.abs(a - b), 1) - 2.0,
    )
    res = FeedbackSystolicArray().run(p)
    from repro.dp import solve_node_value

    ref = solve_node_value(p)
    assert np.isclose(res.optimum, ref.optimum)
    assert np.isclose(p.to_graph().path_cost(res.path.nodes), res.optimum)


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    n_layers=st.integers(min_value=1, max_value=5),
    m=st.integers(min_value=1, max_value=4),
)
@settings(max_examples=30, deadline=None)
def test_fuzz_max_plus_duality_everywhere(seed, n_layers, m):
    rng = np.random.default_rng(seed)
    costs = tuple(rng.uniform(0, 9, (m, m)) for _ in range(n_layers))
    g_max = MultistageGraph(costs=costs, semiring=MAX_PLUS)
    g_neg = MultistageGraph(costs=tuple(-c for c in costs), semiring=MIN_PLUS)
    assert np.isclose(
        solve_backward(g_max).optimum, -solve_backward(g_neg).optimum
    )
    assert np.isclose(
        solve_polyadic(g_max).optimum, -solve_polyadic(g_neg).optimum
    )
