"""Cross-solver fuzz suite: every route must agree on random instances.

Heavier randomized integration checks than the per-module property
tests: instances are drawn with varied shapes, sparsity and semirings,
and pushed through every applicable solver pair.

Every test here is fully deterministic: ``derandomize=True`` makes
Hypothesis derive its examples from the test structure alone (no
ambient entropy, no example database), and each test ``note()``s the
instance seed, so a failure prints exactly which ``np.random``
generator seed to replay.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, note, settings
from hypothesis import strategies as st

from repro.dnc import simulate_chain_product
from repro.dp import solve_backward, solve_forward, solve_polyadic
from repro.graphs import MultistageGraph, random_multistage
from repro.search import branch_and_bound
from repro.semiring import MAX_PLUS, MIN_PLUS, PLUS_TIMES, chain_product
from repro.systolic import (
    BroadcastMatrixStringArray,
    BroadcastParenthesizer,
    FeedbackSystolicArray,
    PipelinedMatrixStringArray,
    SystolicParenthesizer,
)

# PLUS_TIMES is the counting semiring (non-idempotent ⊕); integer-valued
# matrices keep its sums exact, so the cross-backend checks below can
# demand *bit-identical* floats even though the fast backend may reduce
# in a different association order than the RTL sweep.
CROSS_SEMIRINGS = (MIN_PLUS, MAX_PLUS, PLUS_TIMES)


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    n_stages=st.integers(min_value=2, max_value=7),
    sizes=st.lists(st.integers(min_value=1, max_value=5), min_size=2, max_size=7),
)
@settings(max_examples=40, deadline=None, derandomize=True, print_blob=True)
def test_fuzz_monadic_polyadic_bnb_agree(seed, n_stages, sizes):
    note(f"instance seed={seed}")
    rng = np.random.default_rng(seed)
    g = random_multistage(rng, sizes)
    back = solve_backward(g).optimum
    fwd = solve_forward(g).optimum
    poly = solve_polyadic(g).optimum
    bnb = branch_and_bound(g).optimum
    assert np.isclose(back, fwd)
    assert np.isclose(back, poly)
    assert np.isclose(back, bnb)


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    n_layers=st.integers(min_value=2, max_value=6),
    m=st.integers(min_value=1, max_value=4),
    prob=st.floats(min_value=0.4, max_value=1.0),
)
@settings(max_examples=40, deadline=None, derandomize=True, print_blob=True)
def test_fuzz_sparse_graphs_through_arrays(seed, n_layers, m, prob):
    note(f"instance seed={seed}")
    rng = np.random.default_rng(seed)
    sizes = [1] + [m] * (n_layers - 1) + [1]
    g = random_multistage(rng, sizes, edge_probability=prob)
    ref = solve_backward(g).optimum
    pipe = float(np.asarray(PipelinedMatrixStringArray().run_graph(g).value).squeeze())
    bcast = float(np.asarray(BroadcastMatrixStringArray().run_graph(g).value).squeeze())
    assert np.isclose(pipe, ref, equal_nan=True) or (np.isinf(pipe) and np.isinf(ref))
    assert np.isclose(bcast, ref, equal_nan=True) or (np.isinf(bcast) and np.isinf(ref))


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    n=st.integers(min_value=2, max_value=12),
    k=st.integers(min_value=1, max_value=5),
)
@settings(max_examples=30, deadline=None, derandomize=True, print_blob=True)
def test_fuzz_scheduled_products_exact(seed, n, k):
    note(f"instance seed={seed}")
    rng = np.random.default_rng(seed)
    mats = [rng.uniform(0, 9, (3, 3)) for _ in range(n)]
    ref = chain_product(MIN_PLUS, mats)
    for policy in ("leftmost", "balanced"):
        res = simulate_chain_product(n, k, policy=policy, matrices=mats)
        assert np.allclose(res.product, ref)


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    n_stages=st.integers(min_value=2, max_value=6),
    m=st.integers(min_value=1, max_value=4),
)
@settings(max_examples=30, deadline=None, derandomize=True, print_blob=True)
def test_fuzz_feedback_array_with_awkward_costs(seed, n_stages, m):
    # Cost functions with negatives and plateaus (ties) — the argmin
    # bookkeeping must still trace a path that re-costs to the optimum.
    note(f"instance seed={seed}")
    rng = np.random.default_rng(seed)
    values = tuple(rng.uniform(-5, 5, m) for _ in range(n_stages))
    from repro.graphs import NodeValueProblem

    p = NodeValueProblem(
        values=values,
        edge_cost=lambda a, b: np.round(np.abs(a - b), 1) - 2.0,
    )
    res = FeedbackSystolicArray().run(p)
    from repro.dp import solve_node_value

    ref = solve_node_value(p)
    assert np.isclose(res.optimum, ref.optimum)
    assert np.isclose(p.to_graph().path_cost(res.path.nodes), res.optimum)


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    n_layers=st.integers(min_value=1, max_value=5),
    m=st.integers(min_value=1, max_value=4),
)
@settings(max_examples=30, deadline=None, derandomize=True, print_blob=True)
def test_fuzz_max_plus_duality_everywhere(seed, n_layers, m):
    note(f"instance seed={seed}")
    rng = np.random.default_rng(seed)
    costs = tuple(rng.uniform(0, 9, (m, m)) for _ in range(n_layers))
    g_max = MultistageGraph(costs=costs, semiring=MAX_PLUS)
    g_neg = MultistageGraph(costs=tuple(-c for c in costs), semiring=MIN_PLUS)
    assert np.isclose(
        solve_backward(g_max).optimum, -solve_backward(g_neg).optimum
    )
    assert np.isclose(
        solve_polyadic(g_max).optimum, -solve_polyadic(g_neg).optimum
    )


# ----------------------------------------------------------------------
# Cross-backend (RTL vs. vectorized fast) agreement
# ----------------------------------------------------------------------


def _int_matrix_string(rng, n_layers, m, *, leftmost_row):
    """Random integer-valued matrix string, optionally in 1×m row form."""
    mats = [rng.integers(0, 7, size=(m, m)).astype(float) for _ in range(n_layers - 1)]
    mats.append(rng.integers(0, 7, size=(m, 1)).astype(float))
    if leftmost_row and mats:
        mats[0] = mats[0][:1, :] if mats[0].shape[0] > 1 else mats[0]
    return mats


def _assert_reports_match(rtl, fast, what):
    assert rtl.backend == "rtl" and fast.backend == "fast", what
    assert rtl.iterations == fast.iterations, what
    assert rtl.wall_ticks == fast.wall_ticks, what
    assert rtl.serial_ops == fast.serial_ops, what
    assert rtl.processor_utilization == fast.processor_utilization, what
    assert rtl.busy_fraction == fast.busy_fraction, what


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    n_layers=st.integers(min_value=2, max_value=6),
    m=st.integers(min_value=1, max_value=5),
    sr_idx=st.integers(min_value=0, max_value=2),
    leftmost_row=st.booleans(),
)
@settings(max_examples=60, deadline=None, derandomize=True, print_blob=True)
def test_fuzz_pipelined_backends_bit_identical(seed, n_layers, m, sr_idx, leftmost_row):
    note(f"instance seed={seed}")
    rng = np.random.default_rng(seed)
    sr = CROSS_SEMIRINGS[sr_idx]
    mats = _int_matrix_string(rng, n_layers, m, leftmost_row=leftmost_row)
    arr = PipelinedMatrixStringArray(sr)
    rtl = arr.run(mats, backend="rtl")
    fast = arr.run(mats, backend="fast")
    assert np.array_equal(np.asarray(rtl.value), np.asarray(fast.value))
    _assert_reports_match(rtl.report, fast.report, (sr.name, n_layers, m))


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    n_layers=st.integers(min_value=2, max_value=6),
    m=st.integers(min_value=1, max_value=5),
    sr_idx=st.integers(min_value=0, max_value=2),
)
@settings(max_examples=60, deadline=None, derandomize=True, print_blob=True)
def test_fuzz_broadcast_backends_bit_identical(seed, n_layers, m, sr_idx):
    note(f"instance seed={seed}")
    rng = np.random.default_rng(seed)
    sr = CROSS_SEMIRINGS[sr_idx]
    mats = _int_matrix_string(rng, n_layers, m, leftmost_row=False)
    arr = BroadcastMatrixStringArray(sr)
    track = sr.add_argreduce is not None
    rtl = arr.run(mats, track_decisions=track, backend="rtl")
    fast = arr.run(mats, track_decisions=track, backend="fast")
    assert np.array_equal(np.asarray(rtl.value), np.asarray(fast.value))
    _assert_reports_match(rtl.report, fast.report, (sr.name, n_layers, m))
    if track:
        assert len(rtl.decisions) == len(fast.decisions)
        for d_rtl, d_fast in zip(rtl.decisions, fast.decisions):
            assert np.array_equal(d_rtl, d_fast)


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    n_stages=st.integers(min_value=2, max_value=6),
    m=st.integers(min_value=1, max_value=4),
)
@settings(max_examples=40, deadline=None, derandomize=True, print_blob=True)
def test_fuzz_feedback_backends_bit_identical(seed, n_stages, m):
    from repro.graphs import NodeValueProblem

    note(f"instance seed={seed}")
    rng = np.random.default_rng(seed)
    values = tuple(rng.integers(-5, 6, m).astype(float) for _ in range(n_stages))
    p = NodeValueProblem(
        values=values, edge_cost=lambda a, b: np.abs(a - b) - 2.0
    )
    arr = FeedbackSystolicArray()
    rtl = arr.run(p, backend="rtl")
    fast = arr.run(p, backend="fast")
    assert rtl.optimum == fast.optimum
    assert rtl.path.nodes == fast.path.nodes
    assert np.array_equal(rtl.final_stage_values, fast.final_stage_values)
    _assert_reports_match(rtl.report, fast.report, (n_stages, m))


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    n_mats=st.integers(min_value=1, max_value=8),
    systolic=st.booleans(),
)
@settings(max_examples=40, deadline=None, derandomize=True, print_blob=True)
def test_fuzz_parenthesizer_backends_agree(seed, n_mats, systolic):
    note(f"instance seed={seed}")
    rng = np.random.default_rng(seed)
    dims = tuple(int(d) for d in rng.integers(1, 30, size=n_mats + 1))
    engine = SystolicParenthesizer() if systolic else BroadcastParenthesizer()
    rtl = engine.run(dims, backend="rtl")
    fast = engine.run(dims, backend="fast")
    assert rtl.order.cost == fast.order.cost
    assert rtl.steps == fast.steps
    assert rtl.subproblem_completion == fast.subproblem_completion
    assert rtl.alternatives_evaluated == fast.alternatives_evaluated
    _assert_reports_match(rtl.report, fast.report, (dims, systolic))


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    n_layers=st.integers(min_value=2, max_value=5),
    m=st.integers(min_value=1, max_value=4),
)
@settings(max_examples=30, deadline=None, derandomize=True, print_blob=True)
def test_fuzz_auto_backend_matches_both(seed, n_layers, m):
    # "auto" must return the fast result and silently pass its
    # cross-validation against RTL on these small instances.
    note(f"instance seed={seed}")
    rng = np.random.default_rng(seed)
    mats = _int_matrix_string(rng, n_layers, m, leftmost_row=False)
    arr = PipelinedMatrixStringArray(PLUS_TIMES)
    auto = arr.run(mats, backend="auto")
    fast = arr.run(mats, backend="fast")
    assert auto.report.backend == "fast"
    assert np.array_equal(np.asarray(auto.value), np.asarray(fast.value))
