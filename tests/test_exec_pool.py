"""Eq.-29 shard planning, process-pool execution, and report pickling.

``plan_shards`` is the paper's granularity result turned scheduler: the
computation shards carry ``T_c = ceil((n-1)/K)``-ish equal loads and the
wind-down tail halves (eq. 29's ``T_w = log2`` term).  The pool tests
pin the engine contract — sharded execution is bit-identical to
in-process execution — and the pickle round-trips are what make the
pool possible at all: every report (including nested fault and hazard
payloads) must survive a worker boundary unchanged.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro import MatrixChainProblem, solve, solve_batch
from repro.dnc import kt2, plan_shards, schedule_time
from repro.faults import FaultPlan, FaultSpec
from repro.graphs import random_multistage, traffic_light_problem, uniform_multistage

from .test_exec_batch import assert_same_report


class TestPlanShards:
    @pytest.mark.parametrize("n,workers", [(1, 1), (7, 2), (64, 2), (257, 4), (1000, 8)])
    def test_sizes_partition_the_items(self, n, workers):
        plan = plan_shards(n, workers)
        assert sum(plan.sizes) == n
        assert all(s > 0 for s in plan.sizes)
        offsets = plan.offsets()
        assert offsets[0][0] == 0 and offsets[-1][1] == n
        for (_, hi), (lo, _) in zip(offsets, offsets[1:]):
            assert hi == lo

    def test_kt2_strategy_minimizes_kt2_over_worker_range(self):
        n, workers = 256, 4
        plan = plan_shards(n, workers)
        assert plan.kt2 == min(kt2(n, k) for k in range(1, workers + 1))
        assert plan.schedule == schedule_time(n, plan.num_workers)

    def test_kt2_wind_down_tail_halves(self):
        plan = plan_shards(257, 4)
        # Computation shards all carry T_c items; the residue drains in
        # halving steps, eq. 29's log2 wind-down.
        t_c = plan.schedule.computation
        head = [s for s in plan.sizes if s == t_c]
        tail = plan.sizes[len(head):]
        assert sum(tail) == 257 - t_c * len(head)
        for a, b in zip(tail, tail[1:]):
            assert b <= a

    def test_even_strategy_splits_equally(self):
        plan = plan_shards(100, 4, strategy="even")
        assert plan.sizes == (25, 25, 25, 25)
        plan = plan_shards(10, 3, strategy="even")
        assert sum(plan.sizes) == 10
        assert max(plan.sizes) - min(plan.sizes) <= 1

    def test_zero_items_empty_plan(self):
        plan = plan_shards(0, 4)
        assert plan.sizes == ()
        assert plan.offsets() == ()

    def test_validation(self):
        with pytest.raises(ValueError):
            plan_shards(-1, 2)
        with pytest.raises(ValueError):
            plan_shards(4, 0)
        with pytest.raises(ValueError):
            plan_shards(4, 2, strategy="bogus")


class TestShardedExecution:
    def test_vectorized_group_sharded_across_two_workers(self, rng):
        probs = [traffic_light_problem(rng, 5, 4) for _ in range(24)]
        result = solve_batch(probs, workers=2, min_shard_items=8)
        assert result.stats.shards >= 2
        assert sum(result.stats.shard_sizes) == 24
        assert len(result.stats.per_shard_seconds) == result.stats.shards
        for rep, problem in zip(result, probs):
            assert_same_report(rep, solve(problem, backend="fast"))

    def test_scalar_picklable_group_sharded(self, rng):
        probs = [
            MatrixChainProblem(tuple(int(d) for d in rng.integers(2, 30, size=5)))
            for _ in range(12)
        ]
        result = solve_batch(probs, workers=2, min_shard_items=4)
        assert result.stats.shards >= 2
        for rep, problem in zip(result, probs):
            assert_same_report(rep, solve(problem, backend="fast"))

    def test_small_groups_stay_in_process(self, rng):
        probs = [traffic_light_problem(rng, 5, 4) for _ in range(4)]
        result = solve_batch(probs, workers=2, min_shard_items=64)
        assert result.stats.shards == 0

    def test_even_strategy_end_to_end(self, rng):
        probs = [traffic_light_problem(rng, 5, 4) for _ in range(16)]
        result = solve_batch(
            probs, workers=2, min_shard_items=8, shard_strategy="even"
        )
        assert result.stats.shard_strategy == "even"
        for rep, problem in zip(result, probs):
            assert_same_report(rep, solve(problem, backend="fast"))


class TestReportPickleRoundTrip:
    def _roundtrip(self, report):
        clone = pickle.loads(pickle.dumps(report))
        # Field-wise: dataclass == would hit ndarray truth-value ambiguity.
        assert_same_report(clone, report)
        assert clone.faults == report.faults
        return clone

    def test_fast_graph_report(self, rng):
        self._roundtrip(solve(uniform_multistage(rng, 4, 3), backend="fast"))

    def test_rtl_feedback_report(self, rng):
        report = solve(traffic_light_problem(rng, 5, 4), backend="rtl")
        clone = self._roundtrip(report)
        assert clone.detail.report == report.detail.report

    def test_chain_report(self, rng):
        dims = tuple(int(d) for d in rng.integers(2, 30, size=5))
        self._roundtrip(solve(MatrixChainProblem(dims), backend="fast"))

    def test_report_with_fault_payload(self):
        graph = random_multistage(np.random.default_rng(1), [1, 3, 3, 1])
        plan = FaultPlan(
            specs=(
                FaultSpec(
                    mode="transient_flip", pe=0, reg="ACC", tick=1, delta=-1000.0
                ),
            )
        )
        report = solve(graph, fault_plan=plan, recovery="retry")
        assert report.faults is not None and report.faults.injections
        clone = self._roundtrip(report)
        assert clone.faults == report.faults

    def test_strict_rtl_report_with_hazard_counters(self, rng):
        report = solve(uniform_multistage(rng, 4, 3), backend="rtl", strict=True)
        clone = self._roundtrip(report)
        assert clone.detail.report.hazards == 0
