"""Unit tests for the Table-1 dispatch solver."""

from __future__ import annotations

import numpy as np
import pytest

from repro import DPClass, MatrixChainProblem, solve
from repro.dp import banded_objective, eliminate, solve_backward, solve_matrix_chain
from repro.graphs import (
    StagePath,
    fig1a_graph,
    fig1b_problem,
    random_multistage,
    traffic_light_problem,
    uniform_multistage,
)


class TestNodeValueDispatch:
    def test_uniform_problem_goes_to_feedback_array(self, rng):
        rep = solve(traffic_light_problem(rng, 6, 4))
        assert rep.method == "fig5-feedback-array"
        assert rep.validated
        assert isinstance(rep.solution, StagePath)

    def test_optimum_matches_oracle(self, rng):
        p = traffic_light_problem(rng, 5, 3)
        rep = solve(p)
        from repro.dp import solve_node_value

        assert np.isclose(rep.optimum, solve_node_value(p).optimum)

    def test_long_node_value_problem_goes_to_dnc(self, rng):
        p = traffic_light_problem(rng, 30, 3)
        rep = solve(p)
        assert rep.dp_class is DPClass.POLYADIC_SERIAL
        assert rep.method.startswith("divide-and-conquer")
        assert rep.validated


class TestGraphDispatch:
    def test_fig1a_goes_to_pipelined(self):
        rep = solve(fig1a_graph())
        assert rep.method == "fig3-pipelined-array"
        assert rep.optimum == 6.0

    def test_prefer_broadcast(self):
        rep = solve(fig1a_graph(), prefer="broadcast")
        assert rep.method == "fig4-broadcast-array"
        assert rep.optimum == 6.0

    def test_prefer_sequential(self):
        rep = solve(fig1a_graph(), prefer="sequential")
        assert rep.method == "sequential-sweep"
        assert rep.optimum == 6.0

    def test_long_graph_goes_to_dnc(self, rng):
        g = uniform_multistage(rng, 40, 3)
        rep = solve(g)
        assert rep.method.startswith("divide-and-conquer")
        assert np.isclose(rep.optimum, solve_backward(g).optimum)

    def test_prefer_dnc_on_short_graph(self, rng):
        g = uniform_multistage(rng, 6, 3)
        rep = solve(g, prefer="dnc")
        assert rep.method.startswith("divide-and-conquer")
        assert np.isclose(rep.optimum, solve_backward(g).optimum)

    def test_awkward_shape_falls_back_to_sequential(self, rng):
        g = random_multistage(rng, [2, 4, 3, 5])  # non-uniform, multi-sink
        rep = solve(g)
        assert rep.method == "sequential-sweep"
        assert rep.validated


class TestChainDispatch:
    def test_default_systolic_mapping(self):
        rep = solve(MatrixChainProblem((10, 20, 50, 1, 100)))
        assert rep.method == "parenthesizer-systolic"
        assert rep.optimum == 2200.0
        assert rep.validated

    def test_broadcast_mapping(self):
        rep = solve(MatrixChainProblem((10, 20, 50, 1, 100)), prefer="broadcast")
        assert rep.method == "parenthesizer-broadcast"
        assert rep.optimum == 2200.0

    def test_solution_is_executable_order(self, rng):
        dims = tuple(int(x) for x in rng.integers(1, 30, size=7))
        rep = solve(MatrixChainProblem(dims))
        assert rep.solution.cost == solve_matrix_chain(dims).cost


class TestNonserialDispatch:
    def test_banded_uses_grouping_transform(self, rng):
        obj = banded_objective(rng, [3, 2, 3, 2])
        rep = solve(obj)
        assert rep.method == "grouping-transform+serial-sweep"
        assert np.isclose(rep.optimum, eliminate(obj).optimum)
        assert rep.validated

    def test_non_banded_uses_elimination_alone(self, rng):
        from repro.dp import NonserialObjective

        domains = {v: np.arange(2.0) for v in ("a", "b", "c", "d")}
        t = rng.uniform(0, 9, (2, 2, 2))
        obj = NonserialObjective(
            domains=domains,
            terms=(
                (("a", "b"), lambda x, y: x + y),
                (("b", "c", "d"), lambda x, y, z: t[x.astype(int), y.astype(int), z.astype(int)]),
                (("a", "d"), lambda x, y: x * y),
            ),
        )
        rep = solve(obj)
        assert rep.method == "variable-elimination"
        assert rep.validated

    def test_assignment_achieves_optimum(self, rng):
        obj = banded_objective(rng, [2, 3, 2, 3])
        rep = solve(obj)
        assert np.isclose(obj.evaluate(rep.solution), rep.optimum)


class TestReport:
    def test_unknown_type_rejected(self):
        with pytest.raises(TypeError):
            solve([1, 2, 3])

    def test_report_carries_recommendation(self):
        rep = solve(fig1a_graph())
        assert rep.recommendation.dp_class is rep.dp_class

    def test_validation_failure_raises(self):
        from repro.core.solver import SolveReport
        from repro.core.classification import recommend

        rec = recommend(fig1a_graph())
        with pytest.raises(AssertionError, match="disagrees"):
            SolveReport(
                dp_class=DPClass.MONADIC_SERIAL,
                method="bogus",
                optimum=1.0,
                reference=2.0,
                validated=False,
                solution=None,
                detail=None,
                recommendation=rec,
            )


class TestBroadcastPathDispatch:
    def test_broadcast_route_returns_traced_path(self):
        from repro.graphs import StagePath

        rep = solve(fig1a_graph(), prefer="broadcast")
        assert isinstance(rep.solution, StagePath)
        assert rep.solution.cost == 6.0
        assert np.isclose(
            fig1a_graph().path_cost(rep.solution.nodes), rep.optimum
        )

    def test_broadcast_route_on_framed_uniform_graph(self, rng):
        from repro.graphs import StagePath, add_virtual_terminals

        g = uniform_multistage(rng, 5, 4)
        rep = solve(g, prefer="broadcast")
        assert isinstance(rep.solution, StagePath)
        framed = add_virtual_terminals(g)
        assert np.isclose(framed.path_cost(rep.solution.nodes), rep.optimum)
        assert np.isclose(rep.optimum, solve_backward(g).optimum)


class TestBackendThreading:
    def test_fast_backend_matches_rtl_everywhere(self, rng):
        problems = [
            traffic_light_problem(rng, 5, 4),
            fig1a_graph(),
            MatrixChainProblem((30, 35, 15, 5, 10, 20)),
        ]
        for problem in problems:
            rtl = solve(problem, backend="rtl")
            fast = solve(problem, backend="fast")
            auto = solve(problem, backend="auto")
            assert rtl.optimum == fast.optimum == auto.optimum
            assert rtl.method == fast.method

    def test_unknown_backend_rejected(self):
        from repro.systolic import SystolicError

        with pytest.raises(SystolicError):
            solve(fig1a_graph(), backend="gpu")
