"""Unit tests for Fig. 3 trace capture and its overlapped schedule."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs import fig1a_graph, single_source_sink
from repro.systolic import PipelinedMatrixStringArray, render_spacetime


class TestTrace:
    def test_off_by_default(self):
        res = PipelinedMatrixStringArray().run_graph(fig1a_graph())
        assert res.trace == ()

    def test_event_count_equals_total_ops(self, rng):
        g = single_source_sink(rng, 3, 4)
        res = PipelinedMatrixStringArray().run_graph(g, record_trace=True)
        assert len(res.trace) == res.report.total_ops

    def test_no_double_occupancy(self, rng):
        g = single_source_sink(rng, 4, 5)
        res = PipelinedMatrixStringArray().run_graph(g, record_trace=True)
        seen = set()
        for t, pe, _label in res.trace:
            assert (t, pe) not in seen
            seen.add((t, pe))

    def test_skew_structure(self):
        # PE i starts phase p at overlapped tick p*m + i + 1.
        res = PipelinedMatrixStringArray().run_graph(
            fig1a_graph(), record_trace=True
        )
        firsts: dict[tuple[str, int], int] = {}
        for t, pe, label in res.trace:
            phase = label.split(":")[0]
            key = (phase, pe)
            firsts[key] = min(firsts.get(key, 10**9), t)
        m = 3
        for (phase, pe), t in firsts.items():
            p = int(phase[1:])
            assert t == p * m + pe + 1

    def test_paper_walkthrough_shape(self):
        # Phase 0 and 1 occupy all PEs; the final scalar phase runs in
        # P1 alone ("A and f(B) are shifted into P1").
        res = PipelinedMatrixStringArray().run_graph(
            fig1a_graph(), record_trace=True
        )
        by_phase: dict[str, set[int]] = {}
        for _t, pe, label in res.trace:
            by_phase.setdefault(label.split(":")[0], set()).add(pe)
        assert by_phase["p0"] == {0, 1, 2}
        assert by_phase["p1"] == {0, 1, 2}
        assert by_phase["p2"] == {0}

    def test_phase_parity_labels(self):
        # Even phases move x (Mode A), odd phases move y (Mode B).
        res = PipelinedMatrixStringArray().run_graph(
            fig1a_graph(), record_trace=True
        )
        for _t, _pe, label in res.trace:
            phase, datum = label.split(":")
            p = int(phase[1:])
            if p == 2:
                continue  # scalar phase mixes conventions
            assert datum.startswith("x" if p % 2 == 0 else "y")

    def test_render_within_wall_ticks(self, rng):
        g = single_source_sink(rng, 3, 3)
        res = PipelinedMatrixStringArray().run_graph(g, record_trace=True)
        out = render_spacetime(res.trace, 3, res.report.wall_ticks)
        assert "p0:x1" in out

    def test_ticks_bounded_by_wall(self, rng):
        g = single_source_sink(rng, 5, 4)
        res = PipelinedMatrixStringArray().run_graph(g, record_trace=True)
        assert max(t for t, _pe, _l in res.trace) <= res.report.wall_ticks
