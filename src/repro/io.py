"""Persistence: save/load problems and results.

Downstream users need to pin instances (regression corpora, shared
benchmarks), so the library ships a compact ``.npz``-based format for
the array-backed problem types and a JSON-able dict form for reports.

Node-value problems carry a *function* (the stage cost), which does not
serialize; they round-trip through their materialized edge-cost graph —
the paper's own equivalence (eq. 4 → cost matrices) — with the loss of
bandwidth metadata noted explicitly.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
from typing import Any

import numpy as np

from .graphs import MultistageGraph, NodeValueProblem, StagePath
from .semiring import by_name
from .systolic.fabric import RunReport, TraceEvent

__all__ = [
    "RunRecordError",
    "save_graph",
    "load_graph",
    "graph_to_dict",
    "graph_from_dict",
    "report_to_dict",
    "report_from_dict",
    "trace_to_dicts",
    "trace_from_dicts",
    "save_run",
    "load_run",
    "RunRecord",
    "load_run_record",
    "path_to_dict",
    "path_from_dict",
]


class RunRecordError(ValueError):
    """A run-record file is unreadable, not JSON, or structurally wrong.

    Raised by :func:`load_run_record` / :func:`load_run` instead of the
    raw ``OSError`` / ``json.JSONDecodeError`` / ``KeyError`` zoo, so
    callers (the CLI in particular) can report one typed failure.
    """


def save_graph(path: str | pathlib.Path, graph: MultistageGraph) -> None:
    """Write a multistage graph to ``path`` as a ``.npz`` archive.

    Layer matrices are stored as ``layer_<k>`` arrays plus the semiring
    name; loadable by :func:`load_graph`.
    """
    path = pathlib.Path(path)
    arrays = {f"layer_{k}": np.asarray(c) for k, c in enumerate(graph.costs)}
    arrays["semiring"] = np.asarray(graph.semiring.name)
    np.savez_compressed(path, **arrays)


def load_graph(path: str | pathlib.Path) -> MultistageGraph:
    """Read a multistage graph written by :func:`save_graph`."""
    with np.load(pathlib.Path(path), allow_pickle=False) as data:
        name = str(data["semiring"])
        layers = sorted(
            (k for k in data.files if k.startswith("layer_")),
            key=lambda k: int(k.split("_")[1]),
        )
        if not layers:
            raise ValueError(f"{path} holds no layer arrays")
        costs = tuple(np.asarray(data[k], dtype=np.float64) for k in layers)
    return MultistageGraph(costs=costs, semiring=by_name(name))


def graph_to_dict(graph: MultistageGraph) -> dict[str, Any]:
    """JSON-able dict form of a multistage graph (lists, not arrays)."""
    return {
        "kind": "multistage_graph",
        "semiring": graph.semiring.name,
        "costs": [np.asarray(c).tolist() for c in graph.costs],
    }


def graph_from_dict(data: dict[str, Any]) -> MultistageGraph:
    """Inverse of :func:`graph_to_dict`.

    Accepts the output of :func:`graph_to_dict` only (checked ``kind``).
    """
    if data.get("kind") != "multistage_graph":
        raise ValueError(f"not a multistage-graph dict: kind={data.get('kind')!r}")
    costs = tuple(np.asarray(c, dtype=np.float64) for c in data["costs"])
    return MultistageGraph(costs=costs, semiring=by_name(data["semiring"]))


def path_to_dict(path: StagePath) -> dict[str, Any]:
    """JSON-able dict form of a stage path."""
    return {"kind": "stage_path", "nodes": list(path.nodes), "cost": float(path.cost)}


def path_from_dict(data: dict[str, Any]) -> StagePath:
    """Inverse of :func:`path_to_dict`."""
    if data.get("kind") != "stage_path":
        raise ValueError(f"not a stage-path dict: kind={data.get('kind')!r}")
    return StagePath(nodes=tuple(int(n) for n in data["nodes"]), cost=float(data["cost"]))


def report_to_dict(report: RunReport) -> dict[str, Any]:
    """JSON-able dict of a systolic run report (for logging pipelines).

    Derived metrics (PU, busy fraction) are included for convenience;
    they are recomputable from the stored fields.
    """
    out = dataclasses.asdict(report)
    out["pe_busy_ticks"] = list(report.pe_busy_ticks)
    out["pe_op_counts"] = list(report.pe_op_counts)
    out["processor_utilization"] = report.processor_utilization
    out["busy_fraction"] = report.busy_fraction
    out["is_empty"] = report.is_empty
    json.dumps(out)  # guarantee JSON-ability at the source
    return out


def report_from_dict(data: dict[str, Any]) -> RunReport:
    """Inverse of :func:`report_to_dict` (derived fields are dropped)."""
    fields = {f.name for f in dataclasses.fields(RunReport)}
    kwargs = {k: v for k, v in data.items() if k in fields}
    kwargs["pe_busy_ticks"] = tuple(int(v) for v in kwargs.get("pe_busy_ticks", ()))
    kwargs["pe_op_counts"] = tuple(int(v) for v in kwargs.get("pe_op_counts", ()))
    return RunReport(**kwargs)


def trace_to_dicts(events: tuple[TraceEvent, ...] | list[TraceEvent]) -> list[dict[str, Any]]:
    """JSON-able dict list of a typed trace-event stream."""
    return [dataclasses.asdict(ev) for ev in events]


def trace_from_dicts(data: list[dict[str, Any]]) -> tuple[TraceEvent, ...]:
    """Inverse of :func:`trace_to_dicts`."""
    return tuple(
        TraceEvent(
            tick=int(d["tick"]),
            pe=int(d["pe"]),
            kind=str(d["kind"]),
            label=str(d["label"]),
            phase=int(d.get("phase", 0)),
        )
        for d in data
    )


def save_run(
    path: str | pathlib.Path,
    report: RunReport,
    events: tuple[TraceEvent, ...] | list[TraceEvent] = (),
    *,
    metrics: dict[str, Any] | None = None,
    timings: dict[str, Any] | None = None,
    faults: dict[str, Any] | None = None,
) -> None:
    """Write a run report (and optional typed trace) to ``path`` as JSON.

    ``metrics`` (a :meth:`~repro.telemetry.MetricsRegistry.snapshot`
    dict) and ``timings`` (a
    :meth:`~repro.telemetry.TimingCollector.summary` dict) are stored
    alongside the report when provided; the keys are omitted otherwise,
    so pre-telemetry files and writers stay valid.  ``faults`` takes a
    fault-layer payload the same way — a
    :meth:`~repro.faults.FaultRunReport.to_dict` or
    :meth:`~repro.faults.CampaignReport.to_dict` dict — and round-trips
    it verbatim.
    """
    record: dict[str, Any] = {
        "kind": "systolic_run",
        "report": report_to_dict(report),
        "events": trace_to_dicts(tuple(events)),
    }
    if metrics is not None:
        record["metrics"] = metrics
    if timings is not None:
        record["timings"] = timings
    if faults is not None:
        record["faults"] = faults
    json.dumps(record)  # guarantee JSON-ability at the source
    pathlib.Path(path).write_text(json.dumps(record, indent=2) + "\n")


def load_run(path: str | pathlib.Path) -> tuple[RunReport, tuple[TraceEvent, ...]]:
    """Read a ``(report, events)`` pair written by :func:`save_run`.

    Telemetry payloads, if any, are ignored here; use
    :func:`load_run_record` to get them too.
    """
    record = load_run_record(path)
    return record.report, record.events


@dataclasses.dataclass(frozen=True)
class RunRecord:
    """Everything a ``systolic_run`` file holds.

    ``metrics`` and ``timings`` are ``None`` when the file predates the
    telemetry layer (or the run carried no sinks/collectors).
    """

    report: RunReport
    events: tuple[TraceEvent, ...]
    metrics: dict[str, Any] | None = None
    timings: dict[str, Any] | None = None
    #: Fault-layer payload (``fault_run`` or ``fault_campaign`` dict);
    #: ``None`` for healthy runs and pre-fault-layer files.
    faults: dict[str, Any] | None = None


def load_run_record(path: str | pathlib.Path) -> RunRecord:
    """Read a full :class:`RunRecord` written by :func:`save_run`.

    Raises :class:`RunRecordError` — not ``OSError`` / ``KeyError`` /
    ``json.JSONDecodeError`` — for an unreadable file, corrupted JSON,
    or a structurally wrong record.
    """
    path = pathlib.Path(path)
    try:
        text = path.read_text()
    except OSError as exc:
        raise RunRecordError(f"cannot read run record {path}: {exc}") from exc
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise RunRecordError(f"corrupted JSON in run record {path}: {exc}") from exc
    if not isinstance(data, dict) or data.get("kind") != "systolic_run":
        kind = data.get("kind") if isinstance(data, dict) else type(data).__name__
        raise RunRecordError(f"not a systolic-run file: kind={kind!r}")
    try:
        return RunRecord(
            report=report_from_dict(data["report"]),
            events=trace_from_dicts(data["events"]),
            metrics=data.get("metrics"),
            timings=data.get("timings"),
            faults=data.get("faults"),
        )
    except (KeyError, TypeError, ValueError) as exc:
        if isinstance(exc, RunRecordError):
            raise
        raise RunRecordError(f"malformed run record {path}: {exc}") from exc
