"""The Fig. 4 design: a linear systolic array with broadcasts.

Functionally identical to the Fig. 3 pipelined array (it evaluates the
same right-to-left matrix-vector string of eq. 8), but the moving vector
is *broadcast* to all PEs instead of shifted through them, which lets
every input matrix be fed in the same (untransposed) format:

* Each product takes ``m`` iterations.  At iteration ``j`` the bus
  carries ``x_j``; PE ``i`` accumulates ``y_i ⊕= M[i, j] ⊗ x_j`` into its
  stationary accumulator.
* At the phase boundary the MOVE signal gates the accumulators into the
  ``S_i`` registers; with FIRST = 0 the ``S`` values are then fed back
  onto the bus one per iteration (round-robin) as the next product's
  input — no transposition, no inter-PE shifting, and no fill/drain skew.

The final row-vector product (single-source graph) accumulates the
scalar result in ``P₁`` while the bus carries the fed-back vector, as in
the paper's last three example iterations.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..graphs import MultistageGraph
from ..semiring import MIN_PLUS, Semiring
from .fabric import ArrayStats, ProcessingElement, RunReport, SystolicError, finalize_report
from .pipelined_array import _normalize_string

__all__ = ["BroadcastArrayResult", "BroadcastMatrixStringArray"]


@dataclasses.dataclass(frozen=True)
class BroadcastArrayResult:
    """Output of a broadcast-array run."""

    value: np.ndarray  # final vector (shape (m,)) or scalar (shape ())
    report: RunReport
    #: With ``track_decisions``: per evaluated layer (sink side first),
    #: the winning next-stage vertex per PE — the matrix-string analogue
    #: of the Fig. 5 path registers.
    decisions: tuple[np.ndarray, ...] | None = None


class BroadcastMatrixStringArray:
    """Simulator of the Fig. 4 broadcast systolic array."""

    design_name = "fig4-broadcast"

    def __init__(self, semiring: Semiring = MIN_PLUS):
        self.sr = semiring

    def run(
        self, matrices: list[np.ndarray], *, track_decisions: bool = False
    ) -> BroadcastArrayResult:
        """Evaluate the matrix string right-to-left on the array.

        Same operand contract as the Fig. 3 array: ``matrices[-1]`` is the
        sink-side column vector, interior operands are ``m × m``, and the
        leftmost operand may be a ``1 × m`` row vector yielding a scalar.

        With ``track_decisions``, each PE carries an ``ARG`` register
        recording the broadcast index ``j`` that last improved its
        accumulator — one extra register per PE, exactly the Fig. 5
        path-register idea transplanted — and the per-phase decision
        vectors come back for traceback (:meth:`run_graph_with_path`).
        """
        sr = self.sr
        mats, vec, m = _normalize_string(sr, matrices)
        pes = [ProcessingElement(i) for i in range(m)]
        for pe in pes:
            pe.reg("ACC", sr.zero)
            pe.reg("S", sr.zero)  # gated copy of the accumulator (MOVE)
            pe.reg("ARG", -1)  # winning broadcast index (path register)
        stats = ArrayStats()
        stats.input_words += m  # initial vector v

        bus_source: list[float] = [float(x) for x in vec]  # FIRST = 1 phase input
        num_phases = len(mats)
        serial_ops = 0
        scalar_result: float | None = None
        decisions: list[np.ndarray] = []

        for phase in range(num_phases):
            mat = mats[num_phases - 1 - phase]
            is_row_vector = mat.shape[0] == 1 and m > 1
            serial_ops += mat.shape[0] * mat.shape[1]
            if is_row_vector and phase != num_phases - 1:
                raise SystolicError("row-vector operand must be leftmost")
            if is_row_vector:
                pes[0]["ACC"].set(sr.zero)
                pes[0]["ARG"].set(-1)
                pes[0].end_tick()
            else:
                for pe in pes:
                    pe["ACC"].set(sr.zero)
                    pe["ARG"].set(-1)
                for pe in pes:
                    pe.end_tick()
            for j in range(m):
                x_j = bus_source[j]
                stats.broadcast_words += 1
                if is_row_vector:
                    # Scalar product forms in P1 alone.
                    pe = pes[0]
                    self._accumulate(pe, float(mat[0, j]), x_j, j, track_decisions)
                    pe.count_op()
                    stats.input_words += 1
                else:
                    for i, pe in enumerate(pes):
                        self._accumulate(pe, float(mat[i, j]), x_j, j, track_decisions)
                        pe.count_op()
                    stats.input_words += m  # one matrix element per PE per tick
                for pe in pes:
                    pe.end_tick()
                stats.record_tick()
            if track_decisions:
                width = 1 if is_row_vector else m
                decisions.append(
                    np.asarray([pes[i]["ARG"].value for i in range(width)], dtype=np.intp)
                )
            if is_row_vector:
                scalar_result = float(pes[0]["ACC"].value)
            else:
                # MOVE: gate accumulators into S; they become the next
                # phase's bus source (FIRST = 0 feedback path).
                for pe in pes:
                    pe["S"].set(pe["ACC"].value)
                for pe in pes:
                    pe.end_tick()
                bus_source = [float(pe["S"].value) for pe in pes]

        value = (
            sr.asarray(scalar_result)
            if scalar_result is not None
            else sr.asarray(bus_source)
        )
        stats.output_words += int(np.asarray(value).size)
        report = finalize_report(
            self.design_name,
            pes,
            stats,
            iterations=num_phases * m,
            serial_ops=serial_ops,
        )
        return BroadcastArrayResult(
            value=value,
            report=report,
            decisions=tuple(decisions) if track_decisions else None,
        )

    def _accumulate(
        self, pe: ProcessingElement, m_elem: float, x_j: float, j: int, track: bool
    ) -> None:
        """One shift-multiply-accumulate slot, with optional ARG update."""
        sr = self.sr
        old = pe["ACC"].value
        cand = sr.scalar_mul(m_elem, x_j)
        merged = sr.scalar_add(old, cand)
        pe["ACC"].set(merged)
        if track and (merged != old or pe["ARG"].value < 0):
            if merged == cand:
                pe["ARG"].set(j)

    def run_graph(self, graph: MultistageGraph) -> BroadcastArrayResult:
        """Evaluate a single-sink multistage graph (backward formulation)."""
        if graph.semiring.name != self.sr.name:
            raise SystolicError("graph and array use different semirings")
        return self.run(graph.as_matrices())

    def run_graph_with_path(self, graph: MultistageGraph):
        """Solve a single-source/sink graph and trace the optimal path.

        Phase ``p`` evaluates layer ``L = num_layers − 2 − p``, so its
        decision vector holds, for each stage-``L`` vertex, the winning
        stage-``L+1`` vertex; the traceback starts at the single source
        and follows decisions toward the sink (the last layer's target
        is the lone sink).  Returns ``(StagePath, BroadcastArrayResult)``;
        tests validate the path re-costs to the array's optimum.
        """
        from ..graphs import StagePath

        if not graph.is_single_source_sink:
            raise SystolicError("path traceback needs a single-source/sink graph")
        res = self.run(graph.as_matrices(), track_decisions=True)
        assert res.decisions is not None
        n_layers = graph.num_layers
        nodes = [0]
        # decisions[p] covers layer L = n_layers - 2 - p; walk L = 0.. up.
        for layer in range(n_layers - 1):
            dec = res.decisions[n_layers - 2 - layer]
            nodes.append(int(dec[nodes[-1]]))
        nodes.append(0)  # the lone sink
        # m = 1 degenerates to a length-1 vector rather than a scalar.
        path = StagePath(
            nodes=tuple(nodes), cost=float(np.asarray(res.value).squeeze())
        )
        return path, res
