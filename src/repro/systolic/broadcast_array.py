"""The Fig. 4 design: a linear systolic array with broadcasts.

Functionally identical to the Fig. 3 pipelined array (it evaluates the
same right-to-left matrix-vector string of eq. 8), but the moving vector
is *broadcast* to all PEs instead of shifted through them, which lets
every input matrix be fed in the same (untransposed) format:

* Each product takes ``m`` iterations.  At iteration ``j`` the bus
  carries ``x_j``; PE ``i`` accumulates ``y_i ⊕= M[i, j] ⊗ x_j`` into its
  stationary accumulator.
* At the phase boundary the MOVE signal gates the accumulators into the
  ``S_i`` registers; with FIRST = 0 the ``S`` values are then fed back
  onto the bus one per iteration (round-robin) as the next product's
  input — no transposition, no inter-PE shifting, and no fill/drain skew.

The final row-vector product (single-source graph) accumulates the
scalar result in ``P₁`` while the bus carries the fed-back vector, as in
the paper's last three example iterations.

The RTL backend runs on :class:`~repro.systolic.fabric.SystolicMachine`
and publishes ``op``/``broadcast``/``io`` events on its trace bus; the
fast backend evaluates the same string with whole-array semiring
reductions (including the ARG decision registers, via
``add_argreduce``) and reports the schedule's closed-form counters.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Iterable

import numpy as np

from ..graphs import MultistageGraph
from ..semiring import MIN_PLUS, Semiring
from ..semiring.matrix import matvec
from .fabric import (
    BackendMismatch,
    ProcessingElement,
    RunReport,
    SystolicError,
    SystolicMachine,
    TraceEvent,
    normalize_backend,
    run_with_backend,
)
from .pipelined_array import _normalize_string

__all__ = ["BroadcastArrayResult", "BroadcastMatrixStringArray"]


@dataclasses.dataclass(frozen=True)
class BroadcastArrayResult:
    """Output of a broadcast-array run."""

    value: np.ndarray  # final vector (shape (m,)) or scalar (shape ())
    report: RunReport
    #: With ``track_decisions``: per evaluated layer (sink side first),
    #: the winning next-stage vertex per PE — the matrix-string analogue
    #: of the Fig. 5 path registers.
    decisions: tuple[np.ndarray, ...] | None = None
    #: (tick, pe, label) cell events when ``record_trace`` was requested;
    #: there is no fill/drain skew, so ticks are the plain iteration
    #: numbers.  Labels are ``p<phase>:x<j>`` for the bus value consumed.
    trace: tuple[tuple[int, int, str], ...] = ()
    #: The full typed event stream from the machine's trace bus.
    events: tuple[TraceEvent, ...] = ()
    #: Per-phase ``(x, y)`` boundary vectors (bus source entering the
    #: phase, accumulators as latched at its end), captured when
    #: ``observe`` was requested — the ABFT detector inputs.
    phase_values: tuple[tuple[np.ndarray, np.ndarray], ...] = ()


class BroadcastMatrixStringArray:
    """Simulator of the Fig. 4 broadcast systolic array."""

    design_name = "fig4-broadcast"

    def __init__(self, semiring: Semiring = MIN_PLUS, backend: str = "rtl") -> None:
        self.sr = semiring
        self.backend = normalize_backend(backend)

    def run(
        self,
        matrices: list[np.ndarray],
        *,
        track_decisions: bool = False,
        record_trace: bool = False,
        backend: str | None = None,
        sinks: Iterable[Callable[[TraceEvent], None]] = (),
        injector: object = None,
        observe: bool | None = None,
        strict: bool = False,
    ) -> BroadcastArrayResult:
        """Evaluate the matrix string right-to-left on the array.

        Same operand contract as the Fig. 3 array: ``matrices[-1]`` is the
        sink-side column vector, interior operands are ``m × m``, and the
        leftmost operand may be a ``1 × m`` row vector yielding a scalar.

        With ``track_decisions``, each PE carries an ``ARG`` register
        recording the broadcast index ``j`` that last improved its
        accumulator — one extra register per PE, exactly the Fig. 5
        path-register idea transplanted — and the per-phase decision
        vectors come back for traceback (:meth:`run_graph_with_path`).

        ``backend`` selects RTL simulation, the vectorized fast path, or
        ``"auto"`` cross-validation; ``record_trace=True`` always runs
        RTL (tracing is cycle-level), as does subscribing telemetry
        ``sinks`` to the machine's event bus.  ``strict`` enables the
        hazard sanitizer (:mod:`repro.analysis.hazards`), which is also
        cycle-level and forces RTL.
        """
        sr = self.sr
        resolved = normalize_backend(backend, self.backend)
        sinks = tuple(sinks)
        if record_trace or sinks or injector is not None or strict:
            resolved = "rtl"
        if observe is None:
            observe = injector is not None
        if track_decisions and sr.add_argreduce is None and resolved != "rtl":
            resolved = "rtl"  # fast decisions need an argreduce; RTL tracks inline
        mats, vec, m = _normalize_string(sr, matrices)
        work = sum(int(mm.shape[0]) * int(mm.shape[1]) for mm in mats)
        return run_with_backend(
            resolved,
            work=work,
            rtl=lambda: self._run_rtl(
                mats,
                vec,
                m,
                track_decisions=track_decisions,
                record_trace=record_trace,
                sinks=sinks,
                injector=injector,
                observe=bool(observe),
                strict=strict,
            ),
            fast=lambda: self._run_fast(mats, vec, m, track_decisions=track_decisions),
            validate=self._validate,
            design=self.design_name,
        )

    def _validate(self, rtl: BroadcastArrayResult, fast: BroadcastArrayResult) -> None:
        ok = np.allclose(
            np.asarray(rtl.value), np.asarray(fast.value), equal_nan=True
        ) and (rtl.report.iterations, rtl.report.wall_ticks, rtl.report.serial_ops) == (
            fast.report.iterations,
            fast.report.wall_ticks,
            fast.report.serial_ops,
        )
        if ok and rtl.decisions is not None and fast.decisions is not None:
            ok = len(rtl.decisions) == len(fast.decisions) and all(
                np.array_equal(a, b) for a, b in zip(rtl.decisions, fast.decisions)
            )
        if not ok:
            raise BackendMismatch(
                f"{self.design_name}: rtl/fast disagree "
                f"(rtl value {rtl.value!r}, fast value {fast.value!r})"
            )

    # ------------------------------------------------------------------
    # RTL backend
    # ------------------------------------------------------------------
    def _run_rtl(
        self,
        mats: list[np.ndarray],
        vec: np.ndarray,
        m: int,
        *,
        track_decisions: bool = False,
        record_trace: bool = False,
        sinks: Iterable[Callable[[TraceEvent], None]] = (),
        injector: object = None,
        observe: bool = False,
        strict: bool = False,
    ) -> BroadcastArrayResult:
        sr = self.sr
        # The broadcast bus is array-owned (all scoped traffic is each
        # PE's own registers), so the link topology stays the line.
        machine = SystolicMachine(
            self.design_name, record_trace=record_trace, sinks=sinks,
            injector=injector, strict=strict,
        )
        pes = machine.add_pes(m)
        for pe in pes:
            pe.reg("ACC", sr.zero)
            pe.reg("S", sr.zero)  # gated copy of the accumulator (MOVE)
            pe.reg("ARG", -1)  # winning broadcast index (path register)
        machine.read_input(m, label="in:v")  # initial vector v

        bus_source: list[float] = [float(x) for x in vec]  # FIRST = 1 phase input
        num_phases = len(mats)
        serial_ops = 0
        scalar_result: float | None = None
        decisions: list[np.ndarray] = []
        phase_values: list[tuple[np.ndarray, np.ndarray]] = []

        for phase in range(num_phases):
            mat = mats[num_phases - 1 - phase]
            is_row_vector = mat.shape[0] == 1 and m > 1
            serial_ops += mat.shape[0] * mat.shape[1]
            if is_row_vector and phase != num_phases - 1:
                raise SystolicError("row-vector operand must be leftmost")
            machine.begin_phase(f"p{phase}")
            x_snap = sr.asarray(bus_source) if observe else None
            if is_row_vector:
                # Only P1 participates, but the latch is still the
                # machine's: a per-PE end_tick() would desynchronize the
                # array clock (and is a latch-bypass lint violation).
                pes[0]["ACC"].set(sr.zero)
                pes[0]["ARG"].set(-1)
                machine.latch()
            else:
                for pe in pes:
                    pe["ACC"].set(sr.zero)
                    pe["ARG"].set(-1)
                machine.latch()
            for j in range(m):
                x_j = bus_source[j]
                machine.put_on_bus(1, label=f"bus:x{j + 1}")
                if is_row_vector:
                    # Scalar product forms in P1 alone.
                    pe = pes[0]
                    machine.enter_pe(0)
                    self._accumulate(pe, float(mat[0, j]), x_j, j, track_decisions)
                    machine.exit_pe()
                    pe.count_op()
                    machine.emit("op", 0, f"p{phase}:x{j + 1}")
                    machine.stats.input_words += 1
                else:
                    for i, pe in enumerate(pes):
                        machine.enter_pe(i)
                        self._accumulate(pe, float(mat[i, j]), x_j, j, track_decisions)
                        machine.exit_pe()
                        pe.count_op()
                        machine.emit("op", i, f"p{phase}:x{j + 1}")
                    machine.stats.input_words += m  # one matrix element per PE per tick
                machine.end_tick()
            if track_decisions:
                width = 1 if is_row_vector else m
                decisions.append(
                    np.asarray([pes[i]["ARG"].value for i in range(width)], dtype=np.intp)
                )
            if is_row_vector:
                scalar_result = float(pes[0]["ACC"].value)
                if x_snap is not None:
                    phase_values.append((x_snap, sr.asarray([scalar_result])))
            else:
                # MOVE: gate accumulators into S; they become the next
                # phase's bus source (FIRST = 0 feedback path).
                for pe in pes:
                    pe["S"].set(pe["ACC"].value)
                machine.latch()
                bus_source = [float(pe["S"].value) for pe in pes]
                if x_snap is not None:
                    phase_values.append((x_snap, sr.asarray(bus_source)))

        value = (
            sr.asarray(scalar_result)
            if scalar_result is not None
            else sr.asarray(bus_source)
        )
        machine.write_output(int(np.asarray(value).size), label="out:f")
        report = machine.finalize(iterations=num_phases * m, serial_ops=serial_ops)
        return BroadcastArrayResult(
            value=value,
            report=report,
            decisions=tuple(decisions) if track_decisions else None,
            trace=machine.legacy_trace(),
            events=machine.trace_events(),
            phase_values=tuple(phase_values),
        )

    # ------------------------------------------------------------------
    # Fast backend
    # ------------------------------------------------------------------
    def _run_fast(
        self,
        mats: list[np.ndarray],
        vec: np.ndarray,
        m: int,
        *,
        track_decisions: bool = False,
    ) -> BroadcastArrayResult:
        """Whole-array evaluation with vectorized decision tracking.

        The per-PE ARG register implements "first broadcast index that
        achieves the final accumulator value", which for a whole phase is
        exactly ``add_argreduce`` along the broadcast axis.
        """
        sr = self.sr
        num_phases = len(mats)
        x = np.asarray(vec)
        serial_ops = 0
        scalar_result: float | None = None
        decisions: list[np.ndarray] = []
        ops = [0] * m

        for phase in range(num_phases):
            mat = mats[num_phases - 1 - phase]
            is_row_vector = mat.shape[0] == 1 and m > 1
            serial_ops += int(mat.shape[0]) * int(mat.shape[1])
            if is_row_vector and phase != num_phases - 1:
                raise SystolicError("row-vector operand must be leftmost")
            if track_decisions:
                prod = sr.mul(mat, x[None, :])
                decisions.append(np.asarray(sr.add_argreduce(prod, axis=1), dtype=np.intp))
            y = matvec(sr, mat, x)
            if is_row_vector:
                scalar_result = float(y[0])
                ops[0] += m
            else:
                x = y
                for i in range(m):
                    ops[i] += m

        value = (
            sr.asarray(scalar_result) if scalar_result is not None else sr.asarray(x)
        )
        report = RunReport(
            design=self.design_name,
            num_pes=m,
            iterations=num_phases * m,
            wall_ticks=num_phases * m,
            pe_busy_ticks=tuple(ops),
            pe_op_counts=tuple(ops),
            serial_ops=serial_ops,
            input_words=m + serial_ops,
            output_words=int(np.asarray(value).size),
            broadcast_words=num_phases * m,
            backend="fast",
        )
        return BroadcastArrayResult(
            value=value,
            report=report,
            decisions=tuple(decisions) if track_decisions else None,
        )

    def _accumulate(
        self, pe: ProcessingElement, m_elem: float, x_j: float, j: int, track: bool
    ) -> None:
        """One shift-multiply-accumulate slot, with optional ARG update."""
        sr = self.sr
        old = pe["ACC"].value
        cand = sr.scalar_mul(m_elem, x_j)
        merged = sr.scalar_add(old, cand)
        pe["ACC"].set(merged)
        if track and (merged != old or pe["ARG"].value < 0):
            if merged == cand:
                pe["ARG"].set(j)

    def run_graph(
        self,
        graph: MultistageGraph,
        *,
        backend: str | None = None,
        sinks: Iterable[Callable[[TraceEvent], None]] = (),
        injector: object = None,
        observe: bool | None = None,
        strict: bool = False,
    ) -> BroadcastArrayResult:
        """Evaluate a single-sink multistage graph (backward formulation)."""
        if graph.semiring.name != self.sr.name:
            raise SystolicError("graph and array use different semirings")
        return self.run(
            graph.as_matrices(), backend=backend, sinks=sinks,
            injector=injector, observe=observe, strict=strict,
        )

    def run_graph_with_path(
        self,
        graph: MultistageGraph,
        *,
        backend: str | None = None,
        sinks: Iterable[Callable[[TraceEvent], None]] = (),
        injector: object = None,
        observe: bool | None = None,
        strict: bool = False,
    ) -> tuple[StagePath, BroadcastArrayResult]:
        """Solve a single-source/sink graph and trace the optimal path.

        Phase ``p`` evaluates layer ``L = num_layers − 2 − p``, so its
        decision vector holds, for each stage-``L`` vertex, the winning
        stage-``L+1`` vertex; the traceback starts at the single source
        and follows decisions toward the sink (the last layer's target
        is the lone sink).  Returns ``(StagePath, BroadcastArrayResult)``;
        tests validate the path re-costs to the array's optimum.
        """
        from ..graphs import StagePath

        if not graph.is_single_source_sink:
            raise SystolicError("path traceback needs a single-source/sink graph")
        res = self.run(
            graph.as_matrices(), track_decisions=True, backend=backend, sinks=sinks,
            injector=injector, observe=observe, strict=strict,
        )
        assert res.decisions is not None
        n_layers = graph.num_layers
        nodes = [0]
        # decisions[p] covers layer L = n_layers - 2 - p; walk L = 0.. up.
        for layer in range(n_layers - 1):
            dec = res.decisions[n_layers - 2 - layer]
            nodes.append(int(dec[nodes[-1]]))
        nodes.append(0)  # the lone sink
        # m = 1 degenerates to a length-1 vector rather than a scalar.
        path = StagePath(
            nodes=tuple(nodes), cost=float(np.asarray(res.value).squeeze())
        )
        return path, res
