"""Space-time diagrams of systolic schedules.

The paper's Figures 3-5 communicate their designs through schedule
tables (which datum is where, at which iteration).  This module renders
the same view from simulator traces: one row per PE, one column per
clock tick, each cell naming the datum the PE processed — so a run of
the Fig. 5 array literally prints the schedule of the paper's
walkthrough ("x2,1 enters P1 while x1,1 feeds back" and so on).

Traces are either legacy ``(tick, pe_index, label)`` tuples or typed
:class:`~repro.systolic.fabric.TraceEvent` streams from a machine's
event bus — every array design emits the latter under ``record_trace``.
Typed streams may carry array-level bookkeeping (``io``/``phase``
events, ``pe = -1``); only the PE-occupying cell events are drawn.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from .fabric import CELL_KINDS, TraceEvent

__all__ = ["render_spacetime", "trace_to_grid", "cell_events"]


def cell_events(
    events: Iterable[tuple[int, int, str] | TraceEvent],
) -> list[tuple[int, int, str]]:
    """Normalize a mixed event stream to drawable ``(tick, pe, label)``.

    :class:`TraceEvent` instances are filtered to the PE-occupying kinds
    (``op``/``shift``/``broadcast`` with a real PE index); legacy tuples
    pass through untouched.
    """
    out: list[tuple[int, int, str]] = []
    for ev in events:
        if isinstance(ev, TraceEvent):
            if ev.kind in CELL_KINDS and ev.pe >= 0:
                out.append(ev.as_cell())
        else:
            tick, pe, label = ev
            out.append((int(tick), int(pe), str(label)))
    return out


def trace_to_grid(
    events: Iterable[tuple[int, int, str] | TraceEvent],
    num_pes: int,
    num_ticks: int,
    *,
    idle: str = ".",
) -> list[list[str]]:
    """Bucket events into a ``[pe][tick]`` grid of labels.

    Ticks are 1-based (matching the paper's iteration numbering);
    multiple events on one (tick, PE) cell join with ``/`` — which is
    itself a wiring red flag the tests check never happens for the
    shipped arrays.  Accepts legacy tuples and typed
    :class:`TraceEvent` streams alike (see :func:`cell_events`).
    """
    if num_pes < 1 or num_ticks < 1:
        raise ValueError("need at least one PE and one tick")
    grid = [[idle for _ in range(num_ticks)] for _ in range(num_pes)]
    for tick, pe, label in cell_events(events):
        if not 1 <= tick <= num_ticks:
            raise ValueError(f"tick {tick} outside 1..{num_ticks}")
        if not 0 <= pe < num_pes:
            raise ValueError(f"PE index {pe} outside 0..{num_pes - 1}")
        cell = grid[pe][tick - 1]
        grid[pe][tick - 1] = label if cell == idle else f"{cell}/{label}"
    return grid


def render_spacetime(
    events: Iterable[tuple[int, int, str] | TraceEvent],
    num_pes: int,
    num_ticks: int,
    *,
    idle: str = ".",
    tick_label: str = "t",
) -> str:
    """ASCII space-time diagram: PEs as rows, ticks as columns."""
    grid = trace_to_grid(events, num_pes, num_ticks, idle=idle)
    col_w = [
        max(len(f"{tick_label}{t + 1}"), max(len(grid[p][t]) for p in range(num_pes)))
        for t in range(num_ticks)
    ]
    header = "      " + "  ".join(
        f"{tick_label}{t + 1}".ljust(w) for t, w in enumerate(col_w)
    )
    lines = [header]
    for p in range(num_pes):
        row = "  ".join(grid[p][t].ljust(col_w[t]) for t in range(num_ticks))
        lines.append(f"P{p + 1:<4d} {row}")
    return "\n".join(lines)
