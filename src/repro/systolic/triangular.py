"""Generalized triangular-recurrence arrays (Section 6.2, both problems).

The paper names two polyadic problem families — matrix-chain ordering
(eq. 6) and optimal binary search trees — and both share the triangular
wavefront

    V(i, j) = min over alternatives a of  V(child₁(a)) + V(child₂(a)) + local(a)

whose AND/OR graph maps onto the same two processor organizations: the
multiple-broadcast-bus design (results visible everywhere one step after
completion) and the serialized planar systolic design (results hop one
level per step through the Figure-8 dummy cells).

This module factors the schedule engine out of the matrix-chain-specific
:mod:`repro.systolic.parenthesization` into a *problem spec* interface,
and provides specs for both families:

* :class:`MatrixChainSpec` — identical schedules to the original engine
  (asserted by the tests): ``T_d(N) = N``, ``T_p(N) = 2N``.
* :class:`ObstSpec` — optimal binary search trees; the analogous
  broadcast schedule is ``T_d(n) = n + 1`` for ``n`` keys (a size-``s``
  subproblem has ``s`` alternatives over children summing to ``s − 1``),
  which :func:`obst_t_d` evaluates and the benchmarks verify.
"""

from __future__ import annotations

import dataclasses
from typing import Hashable, Sequence

import numpy as np

from ..dp.matrix_chain import _check_dims
from ..dp.obst import _check_weights

__all__ = [
    "TriangularSpec",
    "MatrixChainSpec",
    "ObstSpec",
    "TriangularRun",
    "TriangularArray",
    "obst_t_d",
]


@dataclasses.dataclass(frozen=True)
class Alternative:
    """One AND-node: two child subproblems plus a local additive cost."""

    child_a: Hashable
    child_b: Hashable
    local: float


class TriangularSpec:
    """Problem interface for the generalized engine.

    Implementations provide base cases, the bottom-up subproblem order
    with each subproblem's alternatives, a ``size`` for the serialized
    transfer delay, and the goal key.
    """

    def leaves(self) -> dict[Hashable, float]:
        raise NotImplementedError

    def subproblems(self) -> Sequence[tuple[Hashable, list[Alternative]]]:
        """Keys with their alternatives, smaller subproblems first."""
        raise NotImplementedError

    def size(self, key: Hashable) -> int:
        """Level index for transfer delays (leaves have the minimum)."""
        raise NotImplementedError

    def goal(self) -> Hashable:
        raise NotImplementedError


class MatrixChainSpec(TriangularSpec):
    """Eq. (6): keys are 1-based subchains ``(i, j)``."""

    def __init__(self, dims: Sequence[int]):
        self.dims = _check_dims(dims)
        self.n = len(self.dims) - 1

    def leaves(self) -> dict[Hashable, float]:
        return {(i, i): 0.0 for i in range(1, self.n + 1)}

    def subproblems(self):
        r = self.dims
        out = []
        for span in range(2, self.n + 1):
            for i in range(1, self.n - span + 2):
                j = i + span - 1
                alts = [
                    Alternative((i, k), (k + 1, j), float(r[i - 1] * r[k] * r[j]))
                    for k in range(i, j)
                ]
                out.append(((i, j), alts))
        return out

    def size(self, key) -> int:
        i, j = key
        return j - i + 1

    def goal(self):
        return (1, self.n)


class ObstSpec(TriangularSpec):
    """Optimal binary search trees: keys are spans ``(i, j)`` with
    ``j ≥ i − 1``; the empty spans ``(i, i−1)`` are the ``q`` leaves."""

    def __init__(self, p: Sequence[float], q: Sequence[float]):
        self.p, self.q = _check_weights(p, q)
        self.n = self.p.size
        # Prefix sums for w(i, j) = sum(p_i..p_j) + sum(q_{i-1}..q_j).
        self._pc = np.concatenate([[0.0], np.cumsum(self.p)])
        self._qc = np.concatenate([[0.0], np.cumsum(self.q)])

    def _w(self, i: int, j: int) -> float:
        return float(self._pc[j] - self._pc[i - 1] + self._qc[j + 1] - self._qc[i - 1])

    def leaves(self) -> dict[Hashable, float]:
        return {(i, i - 1): float(self.q[i - 1]) for i in range(1, self.n + 2)}

    def subproblems(self):
        out = []
        for span in range(1, self.n + 1):
            for i in range(1, self.n - span + 2):
                j = i + span - 1
                w = self._w(i, j)
                alts = [
                    Alternative((i, r - 1), (r + 1, j), w) for r in range(i, j + 1)
                ]
                out.append(((i, j), alts))
        return out

    def size(self, key) -> int:
        i, j = key
        return j - i + 2  # empty spans sit at level 1... leaves level 1

    def goal(self):
        return (1, self.n) if self.n else (1, 0)


@dataclasses.dataclass(frozen=True)
class TriangularRun:
    """Schedule measurement of a generalized triangular-array run."""

    value: float  # optimal cost at the goal key
    values: dict[Hashable, float]  # every subproblem's optimal cost
    decisions: dict[Hashable, int]  # winning alternative index per key
    steps: int
    completion: dict[Hashable, int]
    alternatives_evaluated: int
    num_processors: int


class TriangularArray:
    """Step-driven engine shared by both processor organizations.

    ``transfer="broadcast"`` models the multiple-bus design (zero
    transfer delay); ``transfer="systolic"`` models the serialized
    planar design (delay = level difference, per Figure 8).  Processors
    fold up to ``alternatives_per_step`` available alternatives per
    step, as in the paper's timing arguments for eqs. (42)-(43).
    """

    def __init__(
        self,
        transfer: str = "broadcast",
        *,
        alternatives_per_step: int = 2,
        base_time: int | None = None,
    ):
        if transfer not in ("broadcast", "systolic"):
            raise ValueError(f"unknown transfer model {transfer!r}")
        if alternatives_per_step < 1:
            raise ValueError("alternatives_per_step must be >= 1")
        self.transfer = transfer
        self.alternatives_per_step = alternatives_per_step
        self.base_time = base_time if base_time is not None else (
            1 if transfer == "broadcast" else 2
        )

    def _delay(self, parent_size: int, child_size: int) -> int:
        if self.transfer == "broadcast":
            return 0
        return parent_size - child_size

    def run(self, spec: TriangularSpec) -> TriangularRun:
        values: dict[Hashable, float] = dict(spec.leaves())
        done: dict[Hashable, int] = {k: self.base_time for k in values}
        decisions: dict[Hashable, int] = {}
        subs = list(spec.subproblems())
        if not subs and spec.goal() in values:
            return TriangularRun(
                value=values[spec.goal()],
                values=dict(values),
                decisions={},
                steps=self.base_time,
                completion=dict(done),
                alternatives_evaluated=0,
                num_processors=0,
            )
        pending: dict[Hashable, list[tuple[int, Alternative]]] = {
            key: list(enumerate(alts)) for key, alts in subs
        }
        best: dict[Hashable, float] = {}
        unresolved = [key for key, _ in subs]
        evaluated = 0
        step = self.base_time
        max_steps = 8 * sum(len(alts) for _k, alts in subs) + 64
        while unresolved:
            step += 1
            still: list[Hashable] = []
            for key in unresolved:
                psize = spec.size(key)
                folded = 0
                remaining: list[tuple[int, Alternative]] = []
                for idx, alt in pending[key]:
                    ready = (
                        alt.child_a in done
                        and alt.child_b in done
                        and max(
                            done[alt.child_a]
                            + self._delay(psize, spec.size(alt.child_a)),
                            done[alt.child_b]
                            + self._delay(psize, spec.size(alt.child_b)),
                        )
                        <= step - 1
                    )
                    if ready and folded < self.alternatives_per_step:
                        cost = values[alt.child_a] + values[alt.child_b] + alt.local
                        if key not in best or cost < best[key]:
                            best[key] = cost
                            decisions[key] = idx
                        folded += 1
                        evaluated += 1
                    else:
                        remaining.append((idx, alt))
                pending[key] = remaining
                if remaining or key not in best:
                    still.append(key)
                else:
                    values[key] = best[key]
                    done[key] = step
            unresolved = still
            if step > max_steps:  # defensive: must converge
                raise RuntimeError("triangular schedule did not converge")
        goal = spec.goal()
        return TriangularRun(
            value=values[goal],
            values=dict(values),
            decisions=decisions,
            steps=done[goal],
            completion=dict(done),
            alternatives_evaluated=evaluated,
            num_processors=len(subs),
        )


def obst_t_d(n_keys: int) -> int:
    """Broadcast schedule length for an ``n``-key OBST.

    The recurrence ``T(s) = T(⌈(s−1)/2⌉) + ⌈s/2⌉`` with ``T(0) = 1``
    (a size-``s`` span has ``s`` alternatives whose children sum to
    ``s − 1``); it solves to ``T(n) = n + 1`` — one step more than the
    matrix-chain ``T_d(N) = N`` because of the extra alternative per
    subproblem.  Verified against measured schedules in the benchmarks.
    """
    if n_keys < 0:
        raise ValueError("n_keys must be nonnegative")
    t = 1
    sizes = []
    s = n_keys
    while s > 0:
        sizes.append(s)
        s = (s - 1 + 1) // 2 if s > 1 else 0  # ceil((s-1)/2)
    for s in reversed(sizes):
        t += (s + 1) // 2
    return t
