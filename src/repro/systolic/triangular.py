"""Generalized triangular-recurrence arrays (Section 6.2, both problems).

The paper names two polyadic problem families — matrix-chain ordering
(eq. 6) and optimal binary search trees — and both share the triangular
wavefront

    V(i, j) = min over alternatives a of  V(child₁(a)) + V(child₂(a)) + local(a)

whose AND/OR graph maps onto the same two processor organizations: the
multiple-broadcast-bus design (results visible everywhere one step after
completion) and the serialized planar systolic design (results hop one
level per step through the Figure-8 dummy cells).

This module factors the schedule engine out of the matrix-chain-specific
:mod:`repro.systolic.parenthesization` into a *problem spec* interface,
and provides specs for both families:

* :class:`MatrixChainSpec` — identical schedules to the original engine
  (asserted by the tests): ``T_d(N) = N``, ``T_p(N) = 2N``.
* :class:`ObstSpec` — optimal binary search trees; the analogous
  broadcast schedule is ``T_d(n) = n + 1`` for ``n`` keys (a size-``s``
  subproblem has ``s`` alternatives over children summing to ``s − 1``),
  which :func:`obst_t_d` evaluates and the benchmarks verify.

The RTL backend drives the step sweep on a
:class:`~repro.systolic.fabric.SystolicMachine` (one PE per OR-node,
one tick per array step, ``op`` events on the trace bus).  The fast
backend replaces the sweep with a single bottom-up pass — NumPy
reductions over each subproblem's alternatives plus an event-driven
greedy schedule (:func:`greedy_completion`) that yields the identical
completion steps, because capacity-limited folding of unit-time
alternatives is work-conserving: any fold order gives the same per-step
fold counts.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Hashable, Iterable, Sequence

import numpy as np

from ..dp.matrix_chain import _check_dims
from ..dp.obst import _check_weights
from .fabric import (
    BackendMismatch,
    RunReport,
    SystolicMachine,
    TraceEvent,
    normalize_backend,
    run_with_backend,
)

__all__ = [
    "TriangularSpec",
    "MatrixChainSpec",
    "ObstSpec",
    "TriangularRun",
    "TriangularArray",
    "obst_t_d",
    "greedy_completion",
]


@dataclasses.dataclass(frozen=True)
class Alternative:
    """One AND-node: two child subproblems plus a local additive cost."""

    child_a: Hashable
    child_b: Hashable
    local: float


class TriangularSpec:
    """Problem interface for the generalized engine.

    Implementations provide base cases, the bottom-up subproblem order
    with each subproblem's alternatives, a ``size`` for the serialized
    transfer delay, and the goal key.
    """

    def leaves(self) -> dict[Hashable, float]:
        raise NotImplementedError

    def subproblems(self) -> Sequence[tuple[Hashable, list[Alternative]]]:
        """Keys with their alternatives, smaller subproblems first."""
        raise NotImplementedError

    def size(self, key: Hashable) -> int:
        """Level index for transfer delays (leaves have the minimum)."""
        raise NotImplementedError

    def goal(self) -> Hashable:
        raise NotImplementedError


class MatrixChainSpec(TriangularSpec):
    """Eq. (6): keys are 1-based subchains ``(i, j)``."""

    def __init__(self, dims: Sequence[int]) -> None:
        self.dims = _check_dims(dims)
        self.n = len(self.dims) - 1

    def leaves(self) -> dict[Hashable, float]:
        return {(i, i): 0.0 for i in range(1, self.n + 1)}

    def subproblems(self) -> Sequence[tuple[Hashable, list[Alternative]]]:
        r = self.dims
        out = []
        for span in range(2, self.n + 1):
            for i in range(1, self.n - span + 2):
                j = i + span - 1
                alts = [
                    Alternative((i, k), (k + 1, j), float(r[i - 1] * r[k] * r[j]))
                    for k in range(i, j)
                ]
                out.append(((i, j), alts))
        return out

    def size(self, key: Hashable) -> int:
        i, j = key
        return j - i + 1

    def goal(self) -> Hashable:
        return (1, self.n)


class ObstSpec(TriangularSpec):
    """Optimal binary search trees: keys are spans ``(i, j)`` with
    ``j ≥ i − 1``; the empty spans ``(i, i−1)`` are the ``q`` leaves."""

    def __init__(self, p: Sequence[float], q: Sequence[float]) -> None:
        self.p, self.q = _check_weights(p, q)
        self.n = self.p.size
        # Prefix sums for w(i, j) = sum(p_i..p_j) + sum(q_{i-1}..q_j).
        self._pc = np.concatenate([[0.0], np.cumsum(self.p)])
        self._qc = np.concatenate([[0.0], np.cumsum(self.q)])

    def _w(self, i: int, j: int) -> float:
        return float(self._pc[j] - self._pc[i - 1] + self._qc[j + 1] - self._qc[i - 1])

    def leaves(self) -> dict[Hashable, float]:
        return {(i, i - 1): float(self.q[i - 1]) for i in range(1, self.n + 2)}

    def subproblems(self) -> Sequence[tuple[Hashable, list[Alternative]]]:
        out = []
        for span in range(1, self.n + 1):
            for i in range(1, self.n - span + 2):
                j = i + span - 1
                w = self._w(i, j)
                alts = [
                    Alternative((i, r - 1), (r + 1, j), w) for r in range(i, j + 1)
                ]
                out.append(((i, j), alts))
        return out

    def size(self, key: Hashable) -> int:
        i, j = key
        return j - i + 2  # empty spans sit at level 1... leaves level 1

    def goal(self) -> Hashable:
        return (1, self.n) if self.n else (1, 0)


def greedy_completion(avail_times: Sequence[int], capacity: int) -> tuple[int, int]:
    """Completion step and busy-step count of one capacity-limited PE.

    ``avail_times`` are the steps at which each unit-time alternative
    becomes available (foldable from the *next* step on); the PE folds
    at most ``capacity`` per step.  Because all alternatives take one
    slot, every work-conserving fold order gives the same per-step fold
    counts, so this sorted-order greedy reproduces the RTL sweep's
    completion step and busy-step count exactly.
    """
    t = 0
    used = capacity
    busy = 0
    for a in sorted(avail_times):
        earliest = a + 1
        if earliest > t:
            t, used, busy = earliest, 1, busy + 1
        elif used < capacity:
            used += 1
        else:
            t, used, busy = t + 1, 1, busy + 1
    return t, busy


def _key_label(key: Hashable) -> str:
    if isinstance(key, tuple) and len(key) == 2:
        return f"V{key[0]},{key[1]}"
    return f"V{key}"


@dataclasses.dataclass(frozen=True)
class TriangularRun:
    """Schedule measurement of a generalized triangular-array run."""

    value: float  # optimal cost at the goal key
    values: dict[Hashable, float]  # every subproblem's optimal cost
    decisions: dict[Hashable, int]  # winning alternative index per key
    steps: int
    completion: dict[Hashable, int]
    alternatives_evaluated: int
    num_processors: int
    #: Uniform measurement record (one PE per OR-node; a tick per step).
    report: RunReport | None = None
    #: (step, pe, label) cell events when ``record_trace`` was requested.
    trace: tuple[tuple[int, int, str], ...] = ()
    #: The full typed event stream from the machine's trace bus.
    events: tuple[TraceEvent, ...] = ()


class TriangularArray:
    """Step-driven engine shared by both processor organizations.

    ``transfer="broadcast"`` models the multiple-bus design (zero
    transfer delay); ``transfer="systolic"`` models the serialized
    planar design (delay = level difference, per Figure 8).  Processors
    fold up to ``alternatives_per_step`` available alternatives per
    step, as in the paper's timing arguments for eqs. (42)-(43).

    On cost ties between alternatives the RTL backend keeps the first
    alternative *folded* (earliest-available, then spec order) while the
    fast backend keeps the first in spec order; ``values``, ``steps``
    and ``completion`` are identical either way.
    """

    def __init__(
        self,
        transfer: str = "broadcast",
        *,
        alternatives_per_step: int = 2,
        base_time: int | None = None,
        backend: str = "rtl",
    ) -> None:
        if transfer not in ("broadcast", "systolic"):
            raise ValueError(f"unknown transfer model {transfer!r}")
        if alternatives_per_step < 1:
            raise ValueError("alternatives_per_step must be >= 1")
        self.transfer = transfer
        self.alternatives_per_step = alternatives_per_step
        self.base_time = base_time if base_time is not None else (
            1 if transfer == "broadcast" else 2
        )
        self.backend = normalize_backend(backend)

    @property
    def design_name(self) -> str:
        return f"triangular-{self.transfer}"

    def _delay(self, parent_size: int, child_size: int) -> int:
        if self.transfer == "broadcast":
            return 0
        return parent_size - child_size

    def run(
        self,
        spec: TriangularSpec,
        *,
        record_trace: bool = False,
        backend: str | None = None,
        sinks: Iterable[Callable[[TraceEvent], None]] = (),
    ) -> TriangularRun:
        resolved = normalize_backend(backend, self.backend)
        sinks = tuple(sinks)
        if record_trace or sinks:
            resolved = "rtl"
        subs = list(spec.subproblems())
        work = sum(len(alts) for _k, alts in subs)
        return run_with_backend(
            resolved,
            work=work,
            rtl=lambda: self._run_rtl(
                spec, subs, record_trace=record_trace, sinks=sinks
            ),
            fast=lambda: self._run_fast(spec, subs),
            validate=self._validate,
            design=self.design_name,
        )

    def _validate(self, rtl: TriangularRun, fast: TriangularRun) -> None:
        ok = (
            np.isclose(rtl.value, fast.value, equal_nan=True)
            and rtl.steps == fast.steps
            and rtl.completion == fast.completion
            and rtl.alternatives_evaluated == fast.alternatives_evaluated
        )
        if not ok:
            raise BackendMismatch(
                f"{self.design_name}: rtl/fast disagree "
                f"(rtl value {rtl.value!r}/{rtl.steps}, "
                f"fast value {fast.value!r}/{fast.steps})"
            )

    # ------------------------------------------------------------------
    # RTL backend
    # ------------------------------------------------------------------
    def _run_rtl(
        self,
        spec: TriangularSpec,
        subs: list[tuple[Hashable, list[Alternative]]],
        *,
        record_trace: bool = False,
        sinks: Iterable[Callable[[TraceEvent], None]] = (),
    ) -> TriangularRun:
        machine = SystolicMachine(
            self.design_name, record_trace=record_trace, sinks=sinks
        )
        values: dict[Hashable, float] = dict(spec.leaves())
        done: dict[Hashable, int] = {k: self.base_time for k in values}
        decisions: dict[Hashable, int] = {}
        serial_ops = sum(len(alts) for _k, alts in subs)
        for _ in range(self.base_time):  # leaves load during the base steps
            machine.end_tick()
        machine.read_input(len(values), label="in:leaves")
        if not subs and spec.goal() in values:
            machine.write_output(1, label="out:goal")
            return TriangularRun(
                value=values[spec.goal()],
                values=dict(values),
                decisions={},
                steps=self.base_time,
                completion=dict(done),
                alternatives_evaluated=0,
                num_processors=0,
                report=machine.finalize(iterations=self.base_time, serial_ops=0),
                trace=machine.legacy_trace(),
                events=machine.trace_events(),
            )
        machine.add_pes(len(subs))
        pe_index = {key: idx for idx, (key, _alts) in enumerate(subs)}
        pending: dict[Hashable, list[tuple[int, Alternative]]] = {
            key: list(enumerate(alts)) for key, alts in subs
        }
        best: dict[Hashable, float] = {}
        unresolved = [key for key, _ in subs]
        evaluated = 0
        step = self.base_time
        max_steps = 8 * serial_ops + 64
        while unresolved:
            step += 1
            still: list[Hashable] = []
            for key in unresolved:
                psize = spec.size(key)
                folded = 0
                remaining: list[tuple[int, Alternative]] = []
                for idx, alt in pending[key]:
                    ready = (
                        alt.child_a in done
                        and alt.child_b in done
                        and max(
                            done[alt.child_a]
                            + self._delay(psize, spec.size(alt.child_a)),
                            done[alt.child_b]
                            + self._delay(psize, spec.size(alt.child_b)),
                        )
                        <= step - 1
                    )
                    if ready and folded < self.alternatives_per_step:
                        cost = values[alt.child_a] + values[alt.child_b] + alt.local
                        if key not in best or cost < best[key]:
                            best[key] = cost
                            decisions[key] = idx
                        folded += 1
                        evaluated += 1
                    else:
                        remaining.append((idx, alt))
                pending[key] = remaining
                if folded:
                    machine.pes[pe_index[key]].count_op(folded)
                    machine.emit("op", pe_index[key], _key_label(key))
                    if self.transfer == "broadcast" and not remaining:
                        machine.put_on_bus(1, label=f"bus:{_key_label(key)}")
                if remaining or key not in best:
                    still.append(key)
                else:
                    values[key] = best[key]
                    done[key] = step
            unresolved = still
            machine.end_tick()
            if step > max_steps:  # defensive: must converge
                raise RuntimeError("triangular schedule did not converge")
        goal = spec.goal()
        machine.write_output(1, label="out:goal")
        return TriangularRun(
            value=values[goal],
            values=dict(values),
            decisions=decisions,
            steps=done[goal],
            completion=dict(done),
            alternatives_evaluated=evaluated,
            num_processors=len(subs),
            report=machine.finalize(iterations=done[goal], serial_ops=serial_ops),
            trace=machine.legacy_trace(),
            events=machine.trace_events(),
        )

    # ------------------------------------------------------------------
    # Fast backend
    # ------------------------------------------------------------------
    def _run_fast(
        self,
        spec: TriangularSpec,
        subs: list[tuple[Hashable, list[Alternative]]],
    ) -> TriangularRun:
        """Single bottom-up pass: NumPy reductions + greedy schedule."""
        values: dict[Hashable, float] = dict(spec.leaves())
        done: dict[Hashable, int] = {k: self.base_time for k in values}
        serial_ops = sum(len(alts) for _k, alts in subs)
        if not subs and spec.goal() in values:
            report = RunReport(
                design=self.design_name,
                num_pes=0,
                iterations=self.base_time,
                wall_ticks=self.base_time,
                pe_busy_ticks=(),
                pe_op_counts=(),
                serial_ops=0,
                input_words=len(values),
                output_words=1,
                broadcast_words=0,
                backend="fast",
            )
            return TriangularRun(
                value=values[spec.goal()],
                values=dict(values),
                decisions={},
                steps=self.base_time,
                completion=dict(done),
                alternatives_evaluated=0,
                num_processors=0,
                report=report,
            )
        decisions: dict[Hashable, int] = {}
        ops: list[int] = []
        busy: list[int] = []
        for key, alts in subs:
            psize = spec.size(key)
            costs = np.fromiter(
                (values[a.child_a] + values[a.child_b] + a.local for a in alts),
                dtype=float,
                count=len(alts),
            )
            win = int(np.argmin(costs))
            decisions[key] = win
            values[key] = float(costs[win])
            avail = [
                max(
                    done[a.child_a] + self._delay(psize, spec.size(a.child_a)),
                    done[a.child_b] + self._delay(psize, spec.size(a.child_b)),
                )
                for a in alts
            ]
            comp, busy_steps = greedy_completion(avail, self.alternatives_per_step)
            done[key] = comp
            ops.append(len(alts))
            busy.append(busy_steps)
        goal = spec.goal()
        wall = max(done.values())
        report = RunReport(
            design=self.design_name,
            num_pes=len(subs),
            iterations=done[goal],
            wall_ticks=wall,
            pe_busy_ticks=tuple(busy),
            pe_op_counts=tuple(ops),
            serial_ops=serial_ops,
            input_words=len(spec.leaves()),
            output_words=1,
            broadcast_words=len(subs) if self.transfer == "broadcast" else 0,
            backend="fast",
        )
        return TriangularRun(
            value=values[goal],
            values=dict(values),
            decisions=decisions,
            steps=done[goal],
            completion=dict(done),
            alternatives_evaluated=serial_ops,
            num_processors=len(subs),
            report=report,
        )


def obst_t_d(n_keys: int) -> int:
    """Broadcast schedule length for an ``n``-key OBST.

    The recurrence ``T(s) = T(⌈(s−1)/2⌉) + ⌈s/2⌉`` with ``T(0) = 1``
    (a size-``s`` span has ``s`` alternatives whose children sum to
    ``s − 1``); it solves to ``T(n) = n + 1`` — one step more than the
    matrix-chain ``T_d(N) = N`` because of the extra alternative per
    subproblem.  Verified against measured schedules in the benchmarks.
    """
    if n_keys < 0:
        raise ValueError("n_keys must be nonnegative")
    t = 1
    sizes = []
    s = n_keys
    while s > 0:
        sizes.append(s)
        s = (s - 1 + 1) // 2 if s > 1 else 0  # ceil((s-1)/2)
    for s in reversed(sizes):
        t += (s + 1) // 2
    return t
