"""Cycle-accurate simulators of the paper's systolic-array designs.

Every design runs on the shared :class:`SystolicMachine` (RTL backend)
and additionally ships a vectorized fast backend; select with
``backend="rtl" | "fast" | "auto"`` on the array constructors or their
``run`` methods.
"""

from .fabric import (
    ArrayStats,
    AUTO_VALIDATE_LIMIT,
    BACKENDS,
    BackendMismatch,
    EventBus,
    ProcessingElement,
    Register,
    RunReport,
    SystolicError,
    SystolicMachine,
    TraceEvent,
    TraceSink,
    normalize_backend,
    run_with_backend,
)
from .pipelined_array import (
    PipelinedArrayResult,
    PipelinedMatrixStringArray,
    StreamedRunResult,
    run_stream,
)
from .broadcast_array import BroadcastArrayResult, BroadcastMatrixStringArray
from .feedback_array import FeedbackArrayResult, FeedbackSystolicArray, feedback_pu
from .mesh_array import MeshArrayResult, MeshMatrixMultiplier, mesh_cycles
from .spacetime import cell_events, render_spacetime, trace_to_grid
from .triangular import (
    MatrixChainSpec,
    ObstSpec,
    TriangularArray,
    TriangularRun,
    TriangularSpec,
    greedy_completion,
    obst_t_d,
)
from .parenthesization import (
    BroadcastParenthesizer,
    ParenthesizationRun,
    SystolicParenthesizer,
    t_d_recurrence,
    t_p_recurrence,
)

__all__ = [
    "Register",
    "ProcessingElement",
    "ArrayStats",
    "RunReport",
    "SystolicError",
    "SystolicMachine",
    "TraceEvent",
    "TraceSink",
    "EventBus",
    "BackendMismatch",
    "BACKENDS",
    "AUTO_VALIDATE_LIMIT",
    "normalize_backend",
    "run_with_backend",
    "PipelinedMatrixStringArray",
    "PipelinedArrayResult",
    "StreamedRunResult",
    "run_stream",
    "BroadcastMatrixStringArray",
    "BroadcastArrayResult",
    "FeedbackSystolicArray",
    "FeedbackArrayResult",
    "feedback_pu",
    "BroadcastParenthesizer",
    "SystolicParenthesizer",
    "ParenthesizationRun",
    "t_d_recurrence",
    "t_p_recurrence",
    "MeshMatrixMultiplier",
    "MeshArrayResult",
    "mesh_cycles",
    "render_spacetime",
    "trace_to_grid",
    "cell_events",
    "TriangularSpec",
    "TriangularArray",
    "TriangularRun",
    "MatrixChainSpec",
    "ObstSpec",
    "obst_t_d",
    "greedy_completion",
]
