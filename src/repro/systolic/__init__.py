"""Cycle-accurate simulators of the paper's systolic-array designs."""

from .fabric import ArrayStats, ProcessingElement, Register, RunReport, SystolicError
from .pipelined_array import (
    PipelinedArrayResult,
    PipelinedMatrixStringArray,
    StreamedRunResult,
    run_stream,
)
from .broadcast_array import BroadcastArrayResult, BroadcastMatrixStringArray
from .feedback_array import FeedbackArrayResult, FeedbackSystolicArray, feedback_pu
from .mesh_array import MeshArrayResult, MeshMatrixMultiplier, mesh_cycles
from .spacetime import render_spacetime, trace_to_grid
from .triangular import (
    MatrixChainSpec,
    ObstSpec,
    TriangularArray,
    TriangularRun,
    TriangularSpec,
    obst_t_d,
)
from .parenthesization import (
    BroadcastParenthesizer,
    ParenthesizationRun,
    SystolicParenthesizer,
    t_d_recurrence,
    t_p_recurrence,
)

__all__ = [
    "Register",
    "ProcessingElement",
    "ArrayStats",
    "RunReport",
    "SystolicError",
    "PipelinedMatrixStringArray",
    "PipelinedArrayResult",
    "StreamedRunResult",
    "run_stream",
    "BroadcastMatrixStringArray",
    "BroadcastArrayResult",
    "FeedbackSystolicArray",
    "FeedbackArrayResult",
    "feedback_pu",
    "BroadcastParenthesizer",
    "SystolicParenthesizer",
    "ParenthesizationRun",
    "t_d_recurrence",
    "t_p_recurrence",
    "MeshMatrixMultiplier",
    "MeshArrayResult",
    "mesh_cycles",
    "render_spacetime",
    "trace_to_grid",
    "TriangularSpec",
    "TriangularArray",
    "TriangularRun",
    "MatrixChainSpec",
    "ObstSpec",
    "obst_t_d",
]
