"""The Fig. 3 design: a pipelined linear systolic array for matrix strings.

Computes ``M₀ ⊗ (M₁ ⊗ (… ⊗ (M_{P-2} ⊗ v)))`` — the monadic-serial DP
evaluation of eq. (8) — on ``m`` PEs connected in a line, where ``m`` is
the (uniform) interior stage width and ``v`` is the rightmost operand
(a column vector: the sink-side boundary).

Operation (paper Section 3.2):

* Phases alternate under the ODD control signal.  In an **ODD phase**
  (here ``Mode A``) the result vector is *stationary* in the per-PE
  accumulators ``A_i`` while the input vector shifts through the ``R_i``
  registers; PE ``i`` accumulates ``y_i = ⊕_j M[i, j] ⊗ x_j`` as the
  ``x_j`` stream marches past.  In an **EVEN phase** (``Mode B``) the
  roles swap: the input vector is stationary (MOVE latched it from the
  accumulators into the ``X_i`` registers at the phase boundary) and the
  *partial results* shift, each ``y_j`` visiting every PE and picking up
  ``M[j, i] ⊗ x_i`` — which is why the paper feeds matrix ``B``
  transposed, column ``i`` into ``P_i``.
* Control switching propagates with a one-cycle delay from ``P_i`` to
  ``P_{i+1}``, so phases overlap: the schedule length in the paper's
  iteration unit is ``m`` per matrix-vector product, ``(P-1)·m`` total,
  plus an ``m-1``-tick drain for the skew.

The RTL backend runs on :class:`~repro.systolic.fabric.SystolicMachine`:
cycle-accurate within each phase (two-phase register semantics), phases
stitched with the exact data hand-offs of the overlapped schedule (MOVE
for A→B, the P_m→P_1 feedback stream for B→A), so computed values and
per-PE iteration counts match the hardware exactly.  The fast backend
evaluates the same string with whole-array semiring reductions
(:func:`repro.semiring.matvec`) and reports the schedule's closed-form
counters; ``backend="auto"`` cross-validates the two on small instances.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Iterable

import numpy as np

from ..graphs import MultistageGraph
from ..semiring import MIN_PLUS, Semiring
from ..semiring.matrix import matvec
from .fabric import (
    BackendMismatch,
    RunReport,
    SystolicError,
    SystolicMachine,
    TraceEvent,
    normalize_backend,
    run_with_backend,
)

__all__ = ["PipelinedArrayResult", "PipelinedMatrixStringArray", "StreamedRunResult", "run_stream"]


@dataclasses.dataclass(frozen=True)
class PipelinedArrayResult:
    """Output of a pipelined-array run."""

    value: np.ndarray  # final vector (shape (m,)) or scalar (shape ())
    report: RunReport
    #: (overlapped tick, pe index, label) events when ``record_trace``
    #: was requested; labels are ``x<s>`` (moving input element) and
    #: ``y<s>`` (moving partial result) with the phase prefixed.
    trace: tuple[tuple[int, int, str], ...] = ()
    #: The full typed event stream (``op``/``io``/``phase``) from the
    #: machine's trace bus, when ``record_trace`` was requested.
    events: tuple[TraceEvent, ...] = ()
    #: Per-phase ``(x, y)`` boundary vectors (phase input as the array saw
    #: it, phase output as latched), captured when ``observe`` was
    #: requested — the data the ABFT detectors check.  Empty otherwise.
    phase_values: tuple[tuple[np.ndarray, np.ndarray], ...] = ()


def _normalize_string(
    sr: Semiring, matrices: list[np.ndarray]
) -> tuple[list[np.ndarray], np.ndarray, int]:
    """Validate the matrix string; return (matrices, sink vector, width m)."""
    if len(matrices) < 2:
        raise SystolicError("need at least two operands (one matrix and the vector)")
    mats = [sr.asarray(m) for m in matrices]
    last = mats[-1]
    if last.ndim == 2:
        if last.shape[1] != 1:
            raise SystolicError(
                "rightmost operand must be a column vector (single-sink form); "
                f"got shape {last.shape}"
            )
        last = last[:, 0]
    if last.ndim != 1:
        raise SystolicError(f"rightmost operand must be a vector, got {last.shape}")
    m = last.size
    for idx, mat in enumerate(mats[:-1]):
        if mat.ndim != 2:
            raise SystolicError(f"operand {idx} must be 2-D, got shape {mat.shape}")
        if mat.shape[1] != m:
            raise SystolicError(
                f"operand {idx} has {mat.shape[1]} columns, expected width {m}"
            )
        if idx > 0 and mat.shape[0] != m:
            raise SystolicError(
                f"interior operand {idx} must be {m}x{m}, got {mat.shape}"
            )
    if mats[0].shape[0] not in (1, m):
        raise SystolicError(
            f"leftmost operand must have 1 or {m} rows, got {mats[0].shape}"
        )
    return mats[:-1], last, m


class PipelinedMatrixStringArray:
    """Simulator of the Fig. 3 pipelined systolic array."""

    design_name = "fig3-pipelined"

    def __init__(self, semiring: Semiring = MIN_PLUS, backend: str = "rtl") -> None:
        self.sr = semiring
        self.backend = normalize_backend(backend)

    # ------------------------------------------------------------------
    def run(
        self,
        matrices: list[np.ndarray],
        *,
        record_trace: bool = False,
        backend: str | None = None,
        sinks: Iterable[Callable[[TraceEvent], None]] = (),
        injector: object = None,
        observe: bool | None = None,
        strict: bool = False,
    ) -> PipelinedArrayResult:
        """Evaluate the matrix string right-to-left on the array.

        ``matrices[-1]`` must be the sink-side column vector; interior
        operands must be ``m × m``; ``matrices[0]`` may be a ``1 × m``
        row vector (single-source graph), in which case the result is a
        scalar formed in a single PE, exactly as in the paper's last
        three example iterations.  With ``record_trace`` the overlapped
        schedule's per-tick PE activity is captured for space-time
        rendering: PE ``i`` executes local step ``s`` of phase ``p`` at
        overlapped tick ``p·m + i + s``.

        ``backend`` overrides the array default: ``"rtl"`` simulates the
        clocked machine, ``"fast"`` computes the same values with
        whole-array semiring reductions, ``"auto"`` cross-validates fast
        against RTL on small instances.  Tracing is a cycle-level
        feature, so ``record_trace=True`` always runs RTL; so do
        ``sinks`` — telemetry callables (e.g.
        :class:`~repro.telemetry.MetricsSink` /
        :class:`~repro.telemetry.TimelineSink`) subscribed to the
        machine's event bus for the duration of the run.

        ``injector`` attaches a fault injector (:mod:`repro.faults`) to
        the machine's tick loop, which also forces RTL — faults are a
        cycle-level phenomenon.  ``observe`` captures the per-phase
        boundary vectors for the ABFT detectors (defaults to on exactly
        when an injector is attached).

        ``strict`` turns on the hazard sanitizer
        (:mod:`repro.analysis.hazards`): every register read/write of
        the run is checked against the systolic discipline, and any
        violation raises ``HazardError`` at finalize.  Hazards are a
        cycle-level property, so strict mode also forces RTL — the fast
        vectorized path never pays for it.
        """
        resolved = normalize_backend(backend, self.backend)
        sinks = tuple(sinks)
        if record_trace or sinks or injector is not None or strict:
            resolved = "rtl"
        if observe is None:
            observe = injector is not None
        mats, vec, m = _normalize_string(self.sr, matrices)
        work = sum(int(mm.shape[0]) * int(mm.shape[1]) for mm in mats)
        return run_with_backend(
            resolved,
            work=work,
            rtl=lambda: self._run_rtl(
                mats, vec, m, record_trace=record_trace, sinks=sinks,
                injector=injector, observe=bool(observe), strict=strict,
            ),
            fast=lambda: self._run_fast(mats, vec, m),
            validate=self._validate,
            design=self.design_name,
        )

    def _validate(self, rtl: PipelinedArrayResult, fast: PipelinedArrayResult) -> None:
        if not np.allclose(
            np.asarray(rtl.value), np.asarray(fast.value), equal_nan=True
        ) or (rtl.report.iterations, rtl.report.wall_ticks, rtl.report.serial_ops) != (
            fast.report.iterations,
            fast.report.wall_ticks,
            fast.report.serial_ops,
        ):
            raise BackendMismatch(
                f"{self.design_name}: rtl/fast disagree "
                f"(rtl value {rtl.value!r}, fast value {fast.value!r})"
            )

    # ------------------------------------------------------------------
    # RTL backend
    # ------------------------------------------------------------------
    def _run_rtl(
        self,
        mats: list[np.ndarray],
        vec: np.ndarray,
        m: int,
        *,
        record_trace: bool = False,
        sinks: Iterable[Callable[[TraceEvent], None]] = (),
        injector: object = None,
        observe: bool = False,
        strict: bool = False,
    ) -> PipelinedArrayResult:
        sr = self.sr
        machine = SystolicMachine(
            self.design_name, record_trace=record_trace, sinks=sinks,
            injector=injector, strict=strict,
        )
        pes = machine.add_pes(m)
        for pe in pes:
            pe.reg("R", sr.zero)  # moving input slot
            pe.reg("ACC", sr.zero)  # stationary result accumulator
            pe.reg("X", sr.zero)  # stationary input (after MOVE)
            pe.reg("Y", sr.zero)  # moving partial-result slot
        machine.read_input(m, label="in:v")  # the initial vector v enters serially

        moving: list[float] = [float(x) for x in vec]
        scalar_result: float | None = None
        num_phases = len(mats)
        serial_ops = 0
        phase_values: list[tuple[np.ndarray, np.ndarray]] = []

        for phase in range(num_phases):
            mat = mats[num_phases - 1 - phase]  # right-to-left product order
            mode_a = phase % 2 == 0
            is_row_vector = mat.shape[0] == 1 and m > 1
            serial_ops += mat.shape[0] * mat.shape[1]
            machine.begin_phase(f"p{phase}:{'A' if mode_a else 'B'}", start=phase * m)
            x_snap: np.ndarray | None = None
            if observe:
                # The phase input as the array actually holds it: the
                # moving stream in Mode A, the post-MOVE X registers in
                # Mode B (a fault there must show up in the checks).
                x_snap = sr.asarray(
                    moving if mode_a else [pe["X"].value for pe in pes]
                )
            if is_row_vector:
                if phase != num_phases - 1:
                    raise SystolicError("row-vector operand must be leftmost")
                scalar_result = (
                    self._scalar_phase_a(machine, mat, moving)
                    if mode_a
                    else self._scalar_phase_b(machine, mat)
                )
                if observe and x_snap is not None:
                    phase_values.append((x_snap, sr.asarray([scalar_result])))
            elif mode_a:
                acc = self._phase_a(machine, mat, moving)
                if observe and x_snap is not None:
                    phase_values.append((x_snap, sr.asarray(acc)))
                # MOVE: stationary result becomes the stationary input of
                # the next (Mode B) phase.  A control action, not a
                # compute iteration — no tick charged (paper Fig. 3(b)).
                for i, pe in enumerate(pes):
                    pe["X"].set(acc[i])
                machine.latch()
                moving = []
            else:
                moving = self._phase_b(machine, mat)
                if observe and x_snap is not None:
                    phase_values.append((x_snap, sr.asarray(moving)))

        # Pipeline drain for the skewed schedule.
        for _ in range(m - 1):
            machine.end_tick()

        if scalar_result is not None:
            value = sr.asarray(scalar_result)
        elif moving:
            value = sr.asarray(moving)
        else:
            value = sr.asarray([pe["X"].value for pe in pes])
        machine.write_output(int(np.asarray(value).size), label="out:f")

        report = machine.finalize(iterations=num_phases * m, serial_ops=serial_ops)
        return PipelinedArrayResult(
            value=value,
            report=report,
            trace=machine.legacy_trace(),
            events=machine.trace_events(),
            phase_values=tuple(phase_values),
        )

    # ------------------------------------------------------------------
    # Fast backend
    # ------------------------------------------------------------------
    def _run_fast(
        self, mats: list[np.ndarray], vec: np.ndarray, m: int
    ) -> PipelinedArrayResult:
        """Whole-array evaluation: right-to-left semiring mat-vec chain.

        Values come from :func:`repro.semiring.matvec`; the report's
        counters are the overlapped schedule's closed forms — ``m``
        iterations per phase, an ``m−1``-tick drain, one input word per
        matrix element plus the initial vector — which the cross-backend
        fuzz suite checks against the RTL machine.
        """
        sr = self.sr
        num_phases = len(mats)
        value = np.asarray(vec)
        for mat in reversed(mats):
            value = matvec(sr, mat, value)
        is_row_vector = mats[0].shape[0] == 1 and m > 1
        if is_row_vector:
            value = sr.asarray(float(value[0]))
        serial_ops = sum(int(mm.shape[0]) * int(mm.shape[1]) for mm in mats)

        ops = [0] * m
        for phase in range(num_phases):
            mat = mats[num_phases - 1 - phase]
            if mat.shape[0] == 1 and m > 1:
                if phase % 2 == 0:  # moving input: P1 alone does all m steps
                    ops[0] += m
                else:  # one moving partial visits every PE once
                    for i in range(m):
                        ops[i] += 1
            else:
                for i in range(m):
                    ops[i] += m

        report = RunReport(
            design=self.design_name,
            num_pes=m,
            iterations=num_phases * m,
            wall_ticks=num_phases * m + (m - 1),
            pe_busy_ticks=tuple(ops),
            pe_op_counts=tuple(ops),
            serial_ops=serial_ops,
            input_words=m + serial_ops,
            output_words=int(np.asarray(value).size),
            broadcast_words=0,
            backend="fast",
        )
        return PipelinedArrayResult(value=value, report=report)

    def run_graph(
        self,
        graph: MultistageGraph,
        *,
        record_trace: bool = False,
        backend: str | None = None,
        sinks: Iterable[Callable[[TraceEvent], None]] = (),
        injector: object = None,
        observe: bool | None = None,
        strict: bool = False,
    ) -> PipelinedArrayResult:
        """Evaluate a single-sink multistage graph (backward formulation).

        The graph's cost matrices are exactly the string of eq. (8); the
        result is ``f(source stage)`` — a scalar for single-source
        graphs, the vector of source costs otherwise.
        """
        if graph.semiring.name != self.sr.name:
            raise SystolicError("graph and array use different semirings")
        return self.run(
            graph.as_matrices(),
            record_trace=record_trace,
            backend=backend,
            sinks=sinks,
            injector=injector,
            observe=observe,
            strict=strict,
        )

    # ------------------------------------------------------------------
    # Phase simulations (RTL)
    # ------------------------------------------------------------------
    def _phase_a(
        self,
        machine: SystolicMachine,
        mat: np.ndarray,
        moving: list[float],
    ) -> list[float]:
        """Mode A: input shifts through R, result stationary in ACC.

        PE ``i`` sees moving element ``x_s`` at local step ``s`` (global
        tick ``s + i`` inside the phase) and needs matrix element
        ``mat[i, s]`` then — the skewed feed the paper's Figure 3(a)
        depicts.
        """
        sr = self.sr
        pes = machine.pes
        m = len(pes)
        if len(moving) != m:
            raise SystolicError(f"moving stream has {len(moving)} elements, expected {m}")
        for pe in pes:
            pe["ACC"].set(sr.zero)
        machine.latch()
        for t in range(2 * m - 1):
            active = 0
            for i, pe in enumerate(pes):
                s = t - i
                if not 0 <= s < m:
                    continue
                machine.enter_pe(i)
                x_in = moving[s] if i == 0 else pes[i - 1]["R"].value
                pe["ACC"].set(
                    sr.scalar_add(pe["ACC"].value, sr.scalar_mul(float(mat[i, s]), x_in))
                )
                pe["R"].set(x_in)
                machine.exit_pe()
                pe.count_op()
                active += 1
                machine.emit(
                    "op", i, f"p{machine.phase}:x{s + 1}",
                    tick=machine.overlapped_tick(i, s),
                )
            machine.stats.input_words += active  # one matrix element per active PE
            machine.end_tick(advance=t < m)  # overlapped schedule: m ticks per phase
        return [pe["ACC"].value for pe in pes]

    def _phase_b(
        self,
        machine: SystolicMachine,
        mat: np.ndarray,
    ) -> list[float]:
        """Mode B: input stationary in X, partial results shift through Y.

        Partial ``y_s`` enters P₁ at local step ``s`` and picks up
        ``mat[s, i] ⊗ x_i`` at PE ``i`` — the transposed feed (column
        ``i`` of the matrix into ``P_i``) of the paper.
        """
        sr = self.sr
        pes = machine.pes
        m = len(pes)
        out: list[float] = [sr.zero] * m
        for t in range(2 * m - 1):
            active = 0
            for i, pe in enumerate(pes):
                s = t - i
                if not 0 <= s < m:
                    continue
                machine.enter_pe(i)
                part_in = sr.zero if i == 0 else pes[i - 1]["Y"].value
                part_out = sr.scalar_add(
                    part_in, sr.scalar_mul(float(mat[s, i]), pe["X"].value)
                )
                pe["Y"].set(part_out)
                machine.exit_pe()
                pe.count_op()
                active += 1
                machine.emit(
                    "op", i, f"p{machine.phase}:y{s + 1}",
                    tick=machine.overlapped_tick(i, s),
                )
            machine.stats.input_words += active
            machine.end_tick(advance=t < m)
            s_last = t - (m - 1)
            if 0 <= s_last < m:
                out[s_last] = pes[m - 1]["Y"].value
        return out

    def _scalar_phase_a(
        self,
        machine: SystolicMachine,
        row: np.ndarray,
        moving: list[float],
    ) -> float:
        """Final row-vector product with a *moving* input: P₁ alone
        accumulates the scalar as the stream and the row elements arrive
        ("input vectors A and f(B) are shifted into P₁")."""
        sr = self.sr
        pes = machine.pes
        m = len(pes)
        if len(moving) != m:
            raise SystolicError("moving stream width mismatch in scalar phase")
        pe = pes[0]
        pe["ACC"].set(sr.zero)
        machine.latch()
        for s in range(m):
            machine.enter_pe(0)
            pe["ACC"].set(
                sr.scalar_add(
                    pe["ACC"].value, sr.scalar_mul(float(row[0, s]), moving[s])
                )
            )
            machine.exit_pe()
            pe.count_op()
            machine.emit(
                "op", 0, f"p{machine.phase}:x{s + 1}",
                tick=machine.overlapped_tick(0, s),
            )
            machine.stats.input_words += 1
            machine.end_tick()
        return float(pe["ACC"].value)

    def _scalar_phase_b(
        self,
        machine: SystolicMachine,
        row: np.ndarray,
    ) -> float:
        """Final row-vector product with a *stationary* input: one moving
        partial traverses the array, gathering ``row[0, i] ⊗ x_i``."""
        sr = self.sr
        pes = machine.pes
        m = len(pes)
        for t in range(m):
            pe = pes[t]
            machine.enter_pe(t)
            part_in = sr.zero if t == 0 else pes[t - 1]["Y"].value
            pe["Y"].set(
                sr.scalar_add(part_in, sr.scalar_mul(float(row[0, t]), pe["X"].value))
            )
            machine.exit_pe()
            pe.count_op()
            machine.emit(
                "op", t, f"p{machine.phase}:y1",
                tick=machine.overlapped_tick(t, 0),
            )
            machine.stats.input_words += 1
            machine.end_tick()
        return float(pes[m - 1]["Y"].value)


@dataclasses.dataclass(frozen=True)
class StreamedRunResult:
    """Outcome of streaming several problem instances through the array."""

    values: tuple[np.ndarray, ...]
    total_iterations: int
    total_wall_ticks: int  # single fill/drain amortized over the stream
    per_instance_wall_ticks: float


def run_stream(
    array: PipelinedMatrixStringArray, graphs: list[MultistageGraph]
) -> StreamedRunResult:
    """Stream several same-shape instances back-to-back through one array.

    The paper notes "there is no delay between feeding successive input
    matrices into the systolic array"; the same property holds between
    *instances* of the same problem shape: the next instance's sink
    vector enters as the previous instance's result drains, so the
    ``m − 1``-tick fill/drain skew is paid once for the whole stream
    rather than once per instance.  The benchmarks use this to show the
    amortized per-instance time approaching the ideal ``(P−1)·m``.
    """
    if not graphs:
        raise SystolicError("need at least one instance")
    shape0 = graphs[0].stage_sizes
    for g in graphs[1:]:
        if g.stage_sizes != shape0:
            raise SystolicError("streamed instances must share one shape")
    values = []
    iterations = 0
    compute_ticks = 0
    m = 0
    for g in graphs:
        res = array.run_graph(g)
        values.append(np.asarray(res.value))
        iterations += res.report.iterations
        m = res.report.num_pes
        compute_ticks += res.report.wall_ticks - (m - 1)
    total_wall = compute_ticks + (m - 1)  # one shared fill/drain
    return StreamedRunResult(
        values=tuple(values),
        total_iterations=iterations,
        total_wall_ticks=total_wall,
        per_instance_wall_ticks=total_wall / len(graphs),
    )
