"""Section 6.2 arrays: optimal matrix-chain ordering as AND/OR-graph search.

The polyadic-nonserial recurrence of eq. (6) maps to an AND/OR-graph in
which AND-nodes are additions (``m_{i,k} + m_{k+1,j} + r_{i-1}·r_k·r_j``)
and OR-nodes are comparisons.  The paper gives two processor mappings:

* **Broadcast mapping** — one processor per OR-node (subproblem
  ``(i, j)``), connected by multiple broadcast buses so any completed
  result is visible to every processor in the next step.  Each processor
  evaluates two alternatives (two additions + two comparisons) per step;
  a size-``k`` subproblem therefore needs ``⌊k/2⌋`` steps once its
  size-``⌈k/2⌉`` inputs exist, giving the recurrence
  ``T_d(k) = T_d(⌈k/2⌉) + ⌊k/2⌋`` with ``T_d(1) = 1`` and the closed form
  ``T_d(N) = N``  (Proposition 2).
* **Serialized (systolic) mapping** — the nonserial AND/OR-graph is made
  serial by inserting dummy pass-through nodes (Figure 8) so results hop
  level-by-level between adjacent cells; a child result of size ``s``
  reaches a size-``k`` parent after ``k − s`` transfer steps, giving
  ``T_p(k) = T_p(⌈k/2⌉) + 2·⌊k/2⌋`` with ``T_p(1) = 2`` and the closed
  form ``T_p(N) = 2N``  (Proposition 3).  This is the planar design the
  paper identifies with Guibas–Kung–Thompson.

Both simulators compute the *actual* DP tables step by step (validated
against :func:`repro.dp.solve_matrix_chain`) while measuring schedule
length, so Propositions 2 and 3 are checked on real executions, not just
restated.
"""

from __future__ import annotations

import dataclasses
from typing import Sequence

import numpy as np

from ..dp.matrix_chain import ChainOrder, _check_dims

__all__ = [
    "ParenthesizationRun",
    "BroadcastParenthesizer",
    "SystolicParenthesizer",
    "t_d_recurrence",
    "t_p_recurrence",
]


@dataclasses.dataclass(frozen=True)
class ParenthesizationRun:
    """Result and schedule measurements of a parenthesization-array run."""

    order: ChainOrder
    steps: int  # schedule length in array steps
    num_processors: int  # one per OR-node: N(N-1)/2
    subproblem_completion: dict[tuple[int, int], int]  # (i, j) -> step
    alternatives_evaluated: int  # total AND-node evaluations

    @property
    def per_size_completion(self) -> dict[int, int]:
        """Completion step of the slowest subproblem of each size."""
        out: dict[int, int] = {}
        for (i, j), t in self.subproblem_completion.items():
            size = j - i + 1
            out[size] = max(out.get(size, 0), t)
        return out


def t_d_recurrence(n: int) -> int:
    """Evaluate ``T_d(k) = T_d(⌈k/2⌉) + ⌊k/2⌋``, ``T_d(1) = 1`` (eq. 42).

    Proposition 2 states the closed form ``T_d(N) = N``; the tests check
    the recurrence against it.
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    t = 1
    sizes = []
    k = n
    while k > 1:
        sizes.append(k)
        k = (k + 1) // 2
    for k in reversed(sizes):
        t += k // 2
    return t


def t_p_recurrence(n: int) -> int:
    """Evaluate ``T_p(k) = T_p(⌈k/2⌉) + 2·⌊k/2⌋``, ``T_p(1) = 2`` (eq. 43).

    Proposition 3 states the closed form ``T_p(N) = 2N``.
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    t = 2
    sizes = []
    k = n
    while k > 1:
        sizes.append(k)
        k = (k + 1) // 2
    for k in reversed(sizes):
        t += 2 * (k // 2)
    return t


class _ParenthesizerBase:
    """Shared step-driven engine for both processor mappings.

    A subproblem ``(i, j)`` (1-based, ``j ≥ i``) owns a processor that, at
    each step, folds up to ``alternatives_per_step`` *available*
    alternatives into its running minimum.  Alternative ``k`` becomes
    available at ``max(ready(i, k), ready(k+1, j))`` where ``ready`` is
    mapping-specific (instant visibility on the broadcast buses; transfer
    delays through dummy cells on the serialized design), and is consumed
    at the first later step with spare capacity.
    """

    design_name = "base"
    alternatives_per_step = 2
    base_time = 1  # completion step of the size-1 leaves

    def _transfer_delay(self, parent_size: int, child_size: int) -> int:
        raise NotImplementedError

    def run(self, dims: Sequence[int]) -> ParenthesizationRun:
        """Solve eq. (6) for ``dims`` on the array; measure the schedule."""
        dims = _check_dims(dims)
        n = len(dims) - 1
        r = np.asarray(dims, dtype=np.int64)
        m = {(i, i): 0 for i in range(1, n + 1)}
        split: dict[tuple[int, int], int] = {}
        done = {(i, i): self.base_time for i in range(1, n + 1)}
        alternatives = 0

        # Per-subproblem pending alternatives with availability times.
        pending: dict[tuple[int, int], list[tuple[int, int]]] = {}
        for span in range(2, n + 1):
            for i in range(1, n - span + 2):
                pending[(i, i + span - 1)] = [(0, k) for k in range(i, i + span - 1)]

        unresolved = set(pending)
        step = self.base_time
        # Availability is monotone, so sweeping steps forward and folding
        # whatever became available is an exact event-driven simulation.
        while unresolved:
            step += 1
            newly_done = []
            for key in sorted(unresolved):
                i, j = key
                size = j - i + 1
                capacity = self.alternatives_per_step
                remaining: list[tuple[int, int]] = []
                folded = 0
                for _prio, k in pending[key]:
                    left, right = (i, k), (k + 1, j)
                    if left not in done or right not in done:
                        remaining.append((_prio, k))
                        continue
                    avail = max(
                        done[left] + self._transfer_delay(size, k - i + 1),
                        done[right] + self._transfer_delay(size, j - k),
                    )
                    if avail <= step - 1 and folded < capacity:
                        cost = m[left] + m[right] + int(r[i - 1] * r[k] * r[j])
                        if key not in split or cost < m[key]:
                            m[key] = cost
                            split[key] = k
                        folded += 1
                        alternatives += 1
                    else:
                        remaining.append((_prio, k))
                pending[key] = remaining
                if not remaining and key in split:
                    done[key] = step
                    newly_done.append(key)
            for key in newly_done:
                unresolved.discard(key)
            if step > 4 * n * n + 8:  # defensive: schedule must terminate
                raise RuntimeError(f"{self.design_name}: schedule did not converge")

        def build(i: int, j: int):
            if i == j:
                return i
            k = split[(i, j)]
            return (build(i, k), build(k + 1, j))

        order = ChainOrder(dims=dims, expression=build(1, n), cost=int(m[(1, n)]))
        return ParenthesizationRun(
            order=order,
            steps=done[(1, n)],
            num_processors=n * (n - 1) // 2 if n > 1 else 1,
            subproblem_completion=dict(done),
            alternatives_evaluated=alternatives,
        )


class BroadcastParenthesizer(_ParenthesizerBase):
    """The multiple-broadcast-bus mapping; schedule length ``T_d(N) = N``."""

    design_name = "parenthesizer-broadcast"

    def _transfer_delay(self, parent_size: int, child_size: int) -> int:
        return 0  # bus: a completed result is visible everywhere next step


class SystolicParenthesizer(_ParenthesizerBase):
    """The serialized planar (Guibas-style) mapping; ``T_p(N) = 2N``.

    Results travel through the dummy pass-through cells added by the
    Figure-8 serialization, one level per step, so a size-``s`` child's
    value reaches its size-``k`` consumer ``k − s`` steps after
    completion.
    """

    design_name = "parenthesizer-systolic"
    base_time = 2  # T_p(1) = 2: leaves spend a step entering the fabric

    def _transfer_delay(self, parent_size: int, child_size: int) -> int:
        return parent_size - child_size
