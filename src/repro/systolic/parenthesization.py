"""Section 6.2 arrays: optimal matrix-chain ordering as AND/OR-graph search.

The polyadic-nonserial recurrence of eq. (6) maps to an AND/OR-graph in
which AND-nodes are additions (``m_{i,k} + m_{k+1,j} + r_{i-1}·r_k·r_j``)
and OR-nodes are comparisons.  The paper gives two processor mappings:

* **Broadcast mapping** — one processor per OR-node (subproblem
  ``(i, j)``), connected by multiple broadcast buses so any completed
  result is visible to every processor in the next step.  Each processor
  evaluates two alternatives (two additions + two comparisons) per step;
  a size-``k`` subproblem therefore needs ``⌊k/2⌋`` steps once its
  size-``⌈k/2⌉`` inputs exist, giving the recurrence
  ``T_d(k) = T_d(⌈k/2⌉) + ⌊k/2⌋`` with ``T_d(1) = 1`` and the closed form
  ``T_d(N) = N``  (Proposition 2).
* **Serialized (systolic) mapping** — the nonserial AND/OR-graph is made
  serial by inserting dummy pass-through nodes (Figure 8) so results hop
  level-by-level between adjacent cells; a child result of size ``s``
  reaches a size-``k`` parent after ``k − s`` transfer steps, giving
  ``T_p(k) = T_p(⌈k/2⌉) + 2·⌊k/2⌋`` with ``T_p(1) = 2`` and the closed
  form ``T_p(N) = 2N``  (Proposition 3).  This is the planar design the
  paper identifies with Guibas–Kung–Thompson.

Both simulators compute the *actual* DP tables step by step (validated
against :func:`repro.dp.solve_matrix_chain`) while measuring schedule
length, so Propositions 2 and 3 are checked on real executions, not just
restated.

The RTL backend drives the sweep on a
:class:`~repro.systolic.fabric.SystolicMachine` (one PE per OR-node);
the fast backend runs a vectorized per-diagonal DP — one NumPy reduction
across all same-span subproblems per split offset — plus a per-span
greedy schedule (:func:`repro.systolic.triangular.greedy_completion`):
all same-span subproblems share one alternative-availability multiset,
so their completion steps coincide, and the closed-form counters match
the RTL sweep exactly.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Iterable, Sequence

import numpy as np

from ..dp.matrix_chain import ChainOrder, _check_dims
from .fabric import (
    BackendMismatch,
    RunReport,
    SystolicError,
    SystolicMachine,
    TraceEvent,
    normalize_backend,
    run_with_backend,
)
from .triangular import greedy_completion

__all__ = [
    "ParenthesizationRun",
    "BroadcastParenthesizer",
    "SystolicParenthesizer",
    "t_d_recurrence",
    "t_p_recurrence",
]


@dataclasses.dataclass(frozen=True)
class ParenthesizationRun:
    """Result and schedule measurements of a parenthesization-array run."""

    order: ChainOrder
    steps: int  # schedule length in array steps
    num_processors: int  # one per OR-node: N(N-1)/2
    subproblem_completion: dict[tuple[int, int], int]  # (i, j) -> step
    alternatives_evaluated: int  # total AND-node evaluations
    #: Uniform measurement record (one PE per OR-node; a tick per step).
    report: RunReport | None = None
    #: (step, pe, label) cell events when ``record_trace`` was requested.
    trace: tuple[tuple[int, int, str], ...] = ()
    #: The full typed event stream from the machine's trace bus.
    events: tuple[TraceEvent, ...] = ()
    #: With ``observe``: the final per-subproblem cost table as read from
    #: the ``M`` registers, for cell-level cross-checks against the
    #: sequential DP table.  ``None`` otherwise.
    cost_table: dict[tuple[int, int], float] | None = None

    @property
    def per_size_completion(self) -> dict[int, int]:
        """Completion step of the slowest subproblem of each size."""
        out: dict[int, int] = {}
        for (i, j), t in self.subproblem_completion.items():
            size = j - i + 1
            out[size] = max(out.get(size, 0), t)
        return out


def t_d_recurrence(n: int) -> int:
    """Evaluate ``T_d(k) = T_d(⌈k/2⌉) + ⌊k/2⌋``, ``T_d(1) = 1`` (eq. 42).

    Proposition 2 states the closed form ``T_d(N) = N``; the tests check
    the recurrence against it.
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    t = 1
    sizes = []
    k = n
    while k > 1:
        sizes.append(k)
        k = (k + 1) // 2
    for k in reversed(sizes):
        t += k // 2
    return t


def t_p_recurrence(n: int) -> int:
    """Evaluate ``T_p(k) = T_p(⌈k/2⌉) + 2·⌊k/2⌋``, ``T_p(1) = 2`` (eq. 43).

    Proposition 3 states the closed form ``T_p(N) = 2N``.
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    t = 2
    sizes = []
    k = n
    while k > 1:
        sizes.append(k)
        k = (k + 1) // 2
    for k in reversed(sizes):
        t += 2 * (k // 2)
    return t


class _ParenthesizerBase:
    """Shared step-driven engine for both processor mappings.

    A subproblem ``(i, j)`` (1-based, ``j ≥ i``) owns a processor that, at
    each step, folds up to ``alternatives_per_step`` *available*
    alternatives into its running minimum.  Alternative ``k`` becomes
    available at ``max(ready(i, k), ready(k+1, j))`` where ``ready`` is
    mapping-specific (instant visibility on the broadcast buses; transfer
    delays through dummy cells on the serialized design), and is consumed
    at the first later step with spare capacity.

    On cost ties between splits the RTL backend keeps the first split
    *folded* (earliest-available, then ascending ``k``) while the fast
    backend keeps the lowest ``k``; costs, steps and completion times
    are identical either way.
    """

    design_name = "base"
    alternatives_per_step = 2
    base_time = 1  # completion step of the size-1 leaves

    def __init__(self, backend: str = "rtl") -> None:
        self.backend = normalize_backend(backend)

    def _transfer_delay(self, parent_size: int, child_size: int) -> int:
        raise NotImplementedError

    def run(
        self,
        dims: Sequence[int],
        *,
        record_trace: bool = False,
        backend: str | None = None,
        sinks: Iterable[Callable[[TraceEvent], None]] = (),
        injector: object = None,
        observe: bool | None = None,
        strict: bool = False,
    ) -> ParenthesizationRun:
        """Solve eq. (6) for ``dims`` on the array; measure the schedule."""
        dims = _check_dims(dims)
        n = len(dims) - 1
        resolved = normalize_backend(backend, self.backend)
        sinks = tuple(sinks)
        if record_trace or sinks or injector is not None or strict:
            resolved = "rtl"
        if observe is None:
            observe = injector is not None
        work = n * (n * n - 1) // 6  # total AND-nodes: sum of (span-1) per cell
        return run_with_backend(
            resolved,
            work=work,
            rtl=lambda: self._run_rtl(
                dims, n, record_trace=record_trace, sinks=sinks,
                injector=injector, observe=bool(observe), strict=strict,
            ),
            fast=lambda: self._run_fast(dims, n),
            validate=self._validate,
            design=self.design_name,
        )

    def _validate(self, rtl: ParenthesizationRun, fast: ParenthesizationRun) -> None:
        ok = (
            rtl.order.cost == fast.order.cost
            and rtl.steps == fast.steps
            and rtl.subproblem_completion == fast.subproblem_completion
            and rtl.alternatives_evaluated == fast.alternatives_evaluated
        )
        if not ok:
            raise BackendMismatch(
                f"{self.design_name}: rtl/fast disagree "
                f"(rtl cost {rtl.order.cost}/{rtl.steps}, "
                f"fast cost {fast.order.cost}/{fast.steps})"
            )

    # ------------------------------------------------------------------
    # RTL backend
    # ------------------------------------------------------------------
    def _run_rtl(
        self,
        dims: tuple[int, ...],
        n: int,
        *,
        record_trace: bool = False,
        sinks: Iterable[Callable[[TraceEvent], None]] = (),
        injector: object = None,
        observe: bool = False,
        strict: bool = False,
    ) -> ParenthesizationRun:
        r = np.asarray(dims, dtype=np.int64)
        split: dict[tuple[int, int], int] = {}
        done = {(i, i): self.base_time for i in range(1, n + 1)}
        alternatives = 0

        # Both mappings let any OR-node consume any completed child:
        # the broadcast design via its multiple broadcast buses, the
        # serialized design via the Figure-8 dummy pass-through cells
        # (modeled as availability delays rather than explicit hops).
        # Either way the *declared* link graph is all-to-all.
        machine = SystolicMachine(
            self.design_name, record_trace=record_trace, sinks=sinks,
            injector=injector, strict=strict, topology="complete",
        )
        for _ in range(self.base_time):  # leaves load during the base steps
            machine.end_tick()
        machine.read_input(len(dims), label="in:dims")

        # Per-subproblem pending alternatives with availability times.
        pending: dict[tuple[int, int], list[tuple[int, int]]] = {}
        for span in range(2, n + 1):
            for i in range(1, n - span + 2):
                pending[(i, i + span - 1)] = [(0, k) for k in range(i, i + span - 1)]
        machine.add_pes(len(pending))
        pe_index = {key: idx for idx, key in enumerate(sorted(pending))}
        # The OR-node's running minimum lives in a clocked register, so
        # the data plane (costs) is faultable state; the scheduling
        # scoreboard (`done`/`pending`) is the control plane and is
        # assumed fault-free.
        for pe in machine.pes:
            pe.reg("M", None)
        serial_ops = sum(len(alts) for alts in pending.values())

        def cell_value(key: tuple[int, int]) -> float:
            """Latched cost of a subproblem; a never-written M reads ∞."""
            i, j = key
            if i == j:
                return 0.0
            v = machine.pes[pe_index[key]]["M"].value
            return float("inf") if v is None else float(v)

        unresolved = set(pending)
        step = self.base_time
        # Availability is monotone, so sweeping steps forward and folding
        # whatever became available is an exact event-driven simulation.
        while unresolved:
            step += 1
            newly_done = []
            for key in sorted(unresolved):
                i, j = key
                size = j - i + 1
                capacity = self.alternatives_per_step
                remaining: list[tuple[int, int]] = []
                folded = 0
                pe = machine.pes[pe_index[key]]
                machine.enter_pe(pe_index[key])
                staged = pe["M"].value  # running minimum latched so far
                for _prio, k in pending[key]:
                    left, right = (i, k), (k + 1, j)
                    if left not in done or right not in done:
                        remaining.append((_prio, k))
                        continue
                    avail = max(
                        done[left] + self._transfer_delay(size, k - i + 1),
                        done[right] + self._transfer_delay(size, j - k),
                    )
                    if avail <= step - 1 and folded < capacity:
                        cost = (
                            cell_value(left)
                            + cell_value(right)
                            + float(r[i - 1] * r[k] * r[j])
                        )
                        if staged is None or cost < staged:
                            staged = cost
                            split[key] = k
                        folded += 1
                        alternatives += 1
                    else:
                        remaining.append((_prio, k))
                pending[key] = remaining
                if folded:
                    pe.count_op(folded)
                    machine.emit("op", pe_index[key], f"m{i},{j}")
                    pe["M"].set(staged)
                machine.exit_pe()
                if not remaining and key in split:
                    done[key] = step
                    newly_done.append(key)
                    if self._transfer_delay(2, 1) == 0:  # broadcast mapping
                        machine.put_on_bus(1, label=f"bus:m{i},{j}")
            for key in newly_done:
                unresolved.discard(key)
            machine.end_tick()
            if step > 4 * n * n + 8:  # defensive: schedule must terminate
                raise RuntimeError(f"{self.design_name}: schedule did not converge")

        def build(i: int, j: int) -> int | tuple:
            if i == j:
                return i
            k = split[(i, j)]
            return (build(i, k), build(k + 1, j))

        machine.write_output(1, label="out:cost")
        final_cost = cell_value((1, n)) if n > 1 else 0.0
        if not np.isfinite(final_cost):
            raise SystolicError(
                f"{self.design_name}: non-finite chain cost {final_cost!r} "
                "(a cost register never latched a value)"
            )
        order = ChainOrder(dims=dims, expression=build(1, n), cost=int(final_cost))
        goal_step = done[(1, n)]
        return ParenthesizationRun(
            order=order,
            steps=goal_step,
            num_processors=n * (n - 1) // 2 if n > 1 else 1,
            subproblem_completion=dict(done),
            alternatives_evaluated=alternatives,
            report=machine.finalize(iterations=goal_step, serial_ops=serial_ops),
            trace=machine.legacy_trace(),
            events=machine.trace_events(),
            cost_table=(
                {key: cell_value(key) for key in pe_index} if observe else None
            ),
        )

    # ------------------------------------------------------------------
    # Fast backend
    # ------------------------------------------------------------------
    def _run_fast(self, dims: tuple[int, ...], n: int) -> ParenthesizationRun:
        r = np.asarray(dims, dtype=np.int64)
        # Vectorized diagonal DP: M[i, j] over 1-based (i, j); for each
        # span, all split offsets reduce across the whole diagonal at
        # once (O(n) NumPy ops per span instead of O(n²) Python folds).
        M = np.zeros((n + 2, n + 2), dtype=np.int64)
        S = np.zeros((n + 2, n + 2), dtype=np.int64)
        done_span = {1: self.base_time}
        busy_span: dict[int, int] = {}
        alternatives = 0
        for span in range(2, n + 1):
            i_idx = np.arange(1, n - span + 2)
            j_idx = i_idx + span - 1
            costs = np.empty((span - 1, i_idx.size), dtype=np.int64)
            for off in range(span - 1):
                k = i_idx + off
                costs[off] = M[i_idx, k] + M[k + 1, j_idx] + r[i_idx - 1] * r[k] * r[j_idx]
            arg = np.argmin(costs, axis=0)
            M[i_idx, j_idx] = costs[arg, np.arange(i_idx.size)]
            S[i_idx, j_idx] = i_idx + arg
            # Schedule: every span-s cell shares one availability multiset
            # (child spans off+1 and span-off-1), so one greedy run covers
            # the whole diagonal.
            avail = [
                max(
                    done_span[off + 1] + self._transfer_delay(span, off + 1),
                    done_span[span - off - 1] + self._transfer_delay(span, span - off - 1),
                )
                for off in range(span - 1)
            ]
            done_span[span], busy_span[span] = greedy_completion(
                avail, self.alternatives_per_step
            )
            alternatives += (span - 1) * i_idx.size

        def build(i: int, j: int) -> int | tuple:
            if i == j:
                return i
            k = int(S[i, j])
            return (build(i, k), build(k + 1, j))

        completion = {(i, i): self.base_time for i in range(1, n + 1)}
        ops: list[int] = []
        busy: list[int] = []
        for span in range(2, n + 1):
            for i in range(1, n - span + 2):
                completion[(i, i + span - 1)] = done_span[span]
        for (i, j) in sorted(k for k in completion if k[1] > k[0]):
            ops.append(j - i)  # span-1 alternatives per PE
            busy.append(busy_span[j - i + 1])

        order = ChainOrder(dims=dims, expression=build(1, n), cost=int(M[1, n]))
        goal_step = done_span.get(n, self.base_time)
        num_pes = n * (n - 1) // 2
        report = RunReport(
            design=self.design_name,
            num_pes=num_pes,
            iterations=goal_step,
            wall_ticks=goal_step,
            pe_busy_ticks=tuple(busy),
            pe_op_counts=tuple(ops),
            serial_ops=alternatives,
            input_words=len(dims),
            output_words=1,
            broadcast_words=num_pes if self._transfer_delay(2, 1) == 0 else 0,
            backend="fast",
        )
        return ParenthesizationRun(
            order=order,
            steps=goal_step,
            num_processors=num_pes if n > 1 else 1,
            subproblem_completion=completion,
            alternatives_evaluated=alternatives,
            report=report,
        )


class BroadcastParenthesizer(_ParenthesizerBase):
    """The multiple-broadcast-bus mapping; schedule length ``T_d(N) = N``."""

    design_name = "parenthesizer-broadcast"

    def _transfer_delay(self, parent_size: int, child_size: int) -> int:
        return 0  # bus: a completed result is visible everywhere next step


class SystolicParenthesizer(_ParenthesizerBase):
    """The serialized planar (Guibas-style) mapping; ``T_p(N) = 2N``.

    Results travel through the dummy pass-through cells added by the
    Figure-8 serialization, one level per step, so a size-``s`` child's
    value reaches its size-``k`` consumer ``k − s`` steps after
    completion.
    """

    design_name = "parenthesizer-systolic"
    base_time = 2  # T_p(1) = 2: leaves spend a step entering the fabric

    def _transfer_delay(self, parent_size: int, child_size: int) -> int:
        return parent_size - child_size
