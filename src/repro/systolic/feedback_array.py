"""The Fig. 5 design: a feedback systolic array for node-value problems.

Solves the serial optimization problem of eq. (4),
``min Σ f(X_k, X_{k+1})``, in its node-value form: only the ``m``
quantized values of each stage variable enter the array — an
order-of-magnitude less input than feeding ``m²`` edge costs per layer —
and each PE *computes* edge costs on the fly with its ``F`` unit.

Architecture (paper Section 3.2, Figure 5):

* ``m`` PEs in a line.  PE ``P_i`` holds three registers — ``R_i`` (the
  moving slot of the input pipeline), ``K_i`` and ``H_i`` (a stationary
  predecessor value ``x_{k-1,i}`` and its optimal prefix cost
  ``h(x_{k-1,i})``) — and three operate units ``F`` (edge cost), ``A``
  (add) and ``C`` (compare/min).
* Stage values stream in one per iteration: ``x_{k,j}`` enters ``P₁`` at
  iteration ``(k-1)·m + j`` paired with a fresh partial ``h = ∞`` and
  marches one PE per iteration.  At PE ``i`` it improves its partial:
  ``h ← min(h, H_i + f(K_i, x_{k,j}))``.
* When a pair leaves ``P_m`` its ``h`` is complete; the **feedback
  controller** returns it on a bus (round-robin; the paper notes one bus
  with a circulating token suffices) to be latched into ``K_j/H_j`` of
  ``P_j`` one iteration later, becoming the stationary predecessor data
  for the next stage.  The bus value is also usable combinationally in
  the arrival tick (the paper's walkthrough computes with a value "fed
  back" in the same iteration), which the simulator honours via a bypass.
  The RTL backend models the one-iteration bus latency with the
  machine's deferred-delivery queue (:meth:`SystolicMachine.after`).
* The final ``m`` iterations set ``F = 0`` and circulate a dummy token
  that folds ``min_i H_i`` — the optimum — completing at iteration
  ``(N+1)·m`` exactly.

Optimal-path extraction: each moving pair carries the index of the PE
whose candidate last improved it (the winning predecessor); ``P_m``
stores it in the stage's *path register* as the pair completes, and the
run traces the registers back into a full :class:`~repro.graphs.StagePath`
— the paper's ``N`` path registers of ``m`` indices each.

The fast backend materializes each layer's cost matrix and performs the
stage recurrence ``h_k = h_{k-1} ⊗ C_{k-1}`` as one whole-array semiring
reduction per stage (with ``add_argreduce`` standing in for the path
registers), then reports the schedule's closed-form counters: the same
``(N+1)·m`` iterations, ``(N−1)·m² + m`` serial ops, and bus traffic.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Iterable

import numpy as np

from ..graphs import NodeValueProblem, StagePath
from ..semiring import MIN_PLUS, Semiring
from .fabric import (
    BackendMismatch,
    RunReport,
    SystolicError,
    SystolicMachine,
    TraceEvent,
    normalize_backend,
    run_with_backend,
)

__all__ = ["FeedbackArrayResult", "FeedbackSystolicArray", "feedback_pu"]


@dataclasses.dataclass(frozen=True)
class _Pair:
    """A moving token: (node value, partial h, winning predecessor, kind)."""

    x: float
    h: float
    arg: int
    stage: int  # 1-based stage of x; N+1 marks the final dummy sweep
    index: int  # 1-based position of x within its stage


@dataclasses.dataclass(frozen=True)
class FeedbackArrayResult:
    """Output of a feedback-array run."""

    optimum: float
    path: StagePath
    final_stage_values: np.ndarray  # h(x_{N,i}) for every i
    report: RunReport
    #: (iteration, pe index, label) events when ``record_trace`` was set;
    #: feeds :func:`repro.systolic.spacetime.render_spacetime`.
    trace: tuple[tuple[int, int, str], ...] = ()
    #: The full typed event stream from the machine's trace bus.
    events: tuple[TraceEvent, ...] = ()
    #: Per-stage ``h`` vectors as completed at P_m (index ``k-1`` holds
    #: stage ``k``; stage 1 must be all 1̄), captured when ``observe`` was
    #: requested — the ABFT detector inputs.  Empty otherwise.
    stage_values: tuple[np.ndarray, ...] = ()


def feedback_pu(num_stages: int, m: int) -> float:
    """The paper's PU expression for this design:
    ``((N-1)·m² + m) / ((N+1)·m·m)`` for ``N`` stages of ``m`` values."""
    n = num_stages
    return ((n - 1) * m * m + m) / ((n + 1) * m * m)


class FeedbackSystolicArray:
    """Simulator of the Fig. 5 feedback systolic array."""

    design_name = "fig5-feedback"

    def __init__(self, semiring: Semiring = MIN_PLUS, backend: str = "rtl") -> None:
        if semiring.add_argreduce is None:
            raise SystolicError("feedback array needs an arg-reduction for traceback")
        self.sr = semiring
        self.backend = normalize_backend(backend)

    def run(
        self,
        problem: NodeValueProblem,
        *,
        record_trace: bool = False,
        backend: str | None = None,
        sinks: Iterable[Callable[[TraceEvent], None]] = (),
        injector: object = None,
        observe: bool | None = None,
        strict: bool = False,
    ) -> FeedbackArrayResult:
        """Run the array on a node-value problem with uniform stage width.

        Executes exactly ``(N+1)·m`` iterations for ``N`` stages of ``m``
        quantized values, per the paper's schedule, and returns the
        optimum, a traced optimal path, the final-stage ``h`` values and
        the measurement report.  With ``record_trace`` the per-iteration
        PE activity is captured for space-time rendering: ``x{k},{j}``
        for a moving stage value, ``F0`` for the final comparison sweep,
        ``-`` for a stage-1 pass-through.

        ``backend`` selects RTL simulation, the vectorized fast path, or
        ``"auto"`` cross-validation; ``record_trace=True`` always runs
        RTL (tracing is cycle-level), as does subscribing telemetry
        ``sinks`` to the machine's event bus.  ``strict`` enables the
        hazard sanitizer (:mod:`repro.analysis.hazards`), which is also
        cycle-level and forces RTL.
        """
        sr = self.sr
        if problem.semiring.name != sr.name:
            raise SystolicError("problem and array use different semirings")
        if not problem.is_uniform:
            raise SystolicError(
                "the Fig. 5 array requires a uniform number of quantized values "
                f"per stage; got sizes {problem.stage_sizes}"
            )
        resolved = normalize_backend(backend, self.backend)
        sinks = tuple(sinks)
        if record_trace or sinks or injector is not None or strict:
            resolved = "rtl"
        if observe is None:
            observe = injector is not None
        n_stages = problem.num_stages
        m = problem.stage_sizes[0]
        work = (n_stages - 1) * m * m + m
        return run_with_backend(
            resolved,
            work=work,
            rtl=lambda: self._run_rtl(
                problem, n_stages, m, record_trace=record_trace, sinks=sinks,
                injector=injector, observe=bool(observe), strict=strict,
            ),
            fast=lambda: self._run_fast(problem, n_stages, m),
            validate=self._validate,
            design=self.design_name,
        )

    def _validate(self, rtl: FeedbackArrayResult, fast: FeedbackArrayResult) -> None:
        ok = (
            np.isclose(rtl.optimum, fast.optimum, equal_nan=True)
            and np.allclose(
                np.asarray(rtl.final_stage_values),
                np.asarray(fast.final_stage_values),
                equal_nan=True,
            )
            and rtl.path.nodes == fast.path.nodes
            and rtl.report.iterations == fast.report.iterations
            and rtl.report.serial_ops == fast.report.serial_ops
        )
        if not ok:
            raise BackendMismatch(
                f"{self.design_name}: rtl/fast disagree "
                f"(rtl optimum {rtl.optimum!r}, fast optimum {fast.optimum!r})"
            )

    # ------------------------------------------------------------------
    # RTL backend
    # ------------------------------------------------------------------
    def _run_rtl(
        self,
        problem: NodeValueProblem,
        n_stages: int,
        m: int,
        *,
        record_trace: bool = False,
        sinks: Iterable[Callable[[TraceEvent], None]] = (),
        injector: object = None,
        observe: bool = False,
        strict: bool = False,
    ) -> FeedbackArrayResult:
        sr = self.sr
        f: Callable[[float, float], float] = lambda a, b: float(
            problem.edge_cost(np.asarray(a), np.asarray(b))
        )

        # The feedback bus is driven by the array-level controller (the
        # deliver() actions run in start_tick at array scope), so the PE
        # link topology stays the line.
        machine = SystolicMachine(
            self.design_name, record_trace=record_trace, sinks=sinks,
            injector=injector, strict=strict,
        )
        pes = machine.add_pes(m)
        for pe in pes:
            pe.reg("PAIR", None)  # moving slot (R of the paper + its h/arg)
            pe.reg("K", None)  # stationary predecessor value
            pe.reg("H", None)  # stationary predecessor prefix cost

        # Input stream: stage-1 values ride through with h = 1̄ (= 0 cost
        # prefix); stages 2..N enter with fresh h = 0̄ (= ∞); the final m
        # iterations inject the F = 0 dummy sweep.
        def stream(it: int) -> _Pair | None:
            """Pair entering P₁ at 1-based iteration ``it``."""
            k, j = divmod(it - 1, m)
            k, j = k + 1, j + 1
            if k == 1:
                return _Pair(float(problem.values[0][j - 1]), sr.one, -1, 1, j)
            if k <= n_stages:
                return _Pair(float(problem.values[k - 1][j - 1]), sr.zero, -1, k, j)
            if k == n_stages + 1:
                return _Pair(0.0, sr.zero, -1, n_stages + 1, j)
            return None

        total_iterations = (n_stages + 1) * m
        # path_registers[k][i] = winning predecessor (0-based, stage k-1)
        # of value i of stage k; stage indices 2..N, plus the final sweep.
        path_registers: dict[int, list[int]] = {
            k: [-1] * m for k in range(2, n_stages + 1)
        }
        final_h = [sr.zero] * m
        # With ``observe``: h vectors per stage as completed at P_m, for
        # the per-stage ABFT checks (stage 1 must come out all 1̄).
        stage_h: list[list[float]] | None = (
            [[sr.zero] * m for _ in range(n_stages)] if observe else None
        )
        optimum: float | None = None
        best_final_index = -1
        # Combinational bypass of the feedback bus: values delivered this
        # iteration are visible before the latch (paper's walkthrough).
        bypass: dict[int, tuple[float, float]] = {}

        def deliver(tgt: int, fx: float, fh: float) -> Callable[[], None]:
            def action() -> None:
                bypass[tgt] = (fx, fh)
                pes[tgt]["K"].set(fx)
                pes[tgt]["H"].set(fh)
                machine.put_on_bus(2, label=f"fb:P{tgt + 1}")

            return action

        for it in range(1, total_iterations + 1):
            bypass.clear()
            # Deliver feedback scheduled to arrive this iteration; it is
            # latched at the tick edge but visible combinationally now.
            machine.start_tick()

            # Moving pairs advance one PE per iteration; PE i processes
            # the pair arriving from PE i-1 (or the input stream).
            for i in range(m - 1, -1, -1):
                pe = pes[i]
                machine.enter_pe(i)
                if i == 0:
                    pair = stream(it)
                    if pair is not None and pair.stage <= n_stages:
                        machine.stats.input_words += 1
                else:
                    pair = pes[i - 1]["PAIR"].value
                if pair is None:
                    pe["PAIR"].set(None)
                    machine.exit_pe()
                    continue
                if i in bypass:
                    k_val, h_val = bypass[i]
                else:
                    k_val, h_val = pe["K"].value, pe["H"].value
                if pair.stage == 1 or k_val is None:
                    # Stage-1 transit (or PE not yet armed): pure shift.
                    if machine.tracing:
                        label = "F0" if pair.stage > n_stages else (
                            "-" if pair.stage == 1 else f"x{pair.stage},{pair.index}"
                        )
                        machine.emit("shift", i, label)
                    pe["PAIR"].set(pair)
                    machine.exit_pe()
                    continue
                if machine.tracing:
                    label = "F0" if pair.stage > n_stages else f"x{pair.stage},{pair.index}"
                    machine.emit("op", i, label)
                if pair.stage <= n_stages:
                    cand = sr.scalar_mul(h_val, f(k_val, pair.x))
                else:
                    cand = sr.scalar_mul(h_val, sr.one)  # F = 0 sweep
                merged = sr.scalar_add(pair.h, cand)
                improved = merged != pair.h or pair.arg < 0
                pe.count_op()
                pe["PAIR"].set(
                    _Pair(
                        pair.x,
                        merged,
                        i if improved and merged == cand else pair.arg,
                        pair.stage,
                        pair.index,
                    )
                )
                machine.exit_pe()

            # Tick edge: latch registers, advance the clock.
            machine.end_tick()

            # The pair now resident in P_m just completed its traversal:
            # schedule its feedback and record path/answers.
            done = pes[m - 1]["PAIR"].value
            if done is not None:
                if (
                    stage_h is not None
                    and done.stage <= n_stages
                    and 1 <= done.index <= m
                ):
                    stage_h[done.stage - 1][done.index - 1] = done.h
                if done.stage <= n_stages:
                    machine.after(0, deliver(done.index - 1, done.x, done.h))
                if 2 <= done.stage <= n_stages:
                    path_registers[done.stage][done.index - 1] = done.arg
                if done.stage == n_stages:
                    final_h[done.index - 1] = done.h
                    machine.stats.output_words += 1
                if done.stage == n_stages + 1 and optimum is None:
                    optimum = done.h
                    best_final_index = done.arg
                    machine.stats.output_words += 1

        if optimum is None:
            raise SystolicError("schedule ended before the final sweep completed")

        nodes = [0] * n_stages
        nodes[n_stages - 1] = best_final_index
        for k in range(n_stages, 1, -1):
            nodes[k - 2] = path_registers[k][nodes[k - 1]]
        path = StagePath(nodes=tuple(nodes), cost=float(optimum))

        serial_ops = (n_stages - 1) * m * m + m
        report = machine.finalize(iterations=total_iterations, serial_ops=serial_ops)
        return FeedbackArrayResult(
            optimum=float(optimum),
            path=path,
            final_stage_values=sr.asarray(final_h),
            report=report,
            trace=machine.legacy_trace(),
            events=machine.trace_events(),
            stage_values=(
                tuple(sr.asarray(v) for v in stage_h) if stage_h is not None else ()
            ),
        )

    # ------------------------------------------------------------------
    # Fast backend
    # ------------------------------------------------------------------
    def _run_fast(
        self, problem: NodeValueProblem, n_stages: int, m: int
    ) -> FeedbackArrayResult:
        sr = self.sr
        # Stage recurrence: h_1 = 1̄; h_k[j] = ⊕_i h_{k-1}[i] ⊗ C[i, j].
        # The argreduce along the predecessor axis is exactly the path
        # register: the first PE index achieving the folded optimum, the
        # same tie-break as the moving pair's strict-improvement update.
        h = np.full(m, sr.one, dtype=float)
        preds: dict[int, np.ndarray] = {}
        for k in range(2, n_stages + 1):
            cand = sr.mul(h[:, None], problem.cost_matrix(k - 2))
            preds[k] = np.asarray(sr.add_argreduce(cand, axis=0), dtype=np.intp)
            h = sr.add_reduce(cand, axis=0)
        final_h = sr.asarray(h)
        optimum = float(sr.add_reduce(h))
        best_final_index = int(sr.add_argreduce(h))

        nodes = [0] * n_stages
        nodes[n_stages - 1] = best_final_index
        for k in range(n_stages, 1, -1):
            nodes[k - 2] = int(preds[k][nodes[k - 1]])
        path = StagePath(nodes=tuple(nodes), cost=optimum)

        total_iterations = (n_stages + 1) * m
        serial_ops = (n_stages - 1) * m * m + m
        # Every PE serves all m pairs of stages 2..N; of the final F = 0
        # sweep, pair j reaches PE i only while N·m + j + i ≤ (N+1)·m,
        # i.e. PE i sees m − i of them before the schedule ends.
        ops = tuple((n_stages - 1) * m + (m - i) for i in range(m))
        report = RunReport(
            design=self.design_name,
            num_pes=m,
            iterations=total_iterations,
            wall_ticks=total_iterations,
            pe_busy_ticks=ops,
            pe_op_counts=ops,
            serial_ops=serial_ops,
            input_words=n_stages * m,
            output_words=m + 1,
            broadcast_words=2 * n_stages * m,
            backend="fast",
        )
        return FeedbackArrayResult(
            optimum=optimum,
            path=path,
            final_stage_values=final_h,
            report=report,
        )
