"""The Fig. 5 design: a feedback systolic array for node-value problems.

Solves the serial optimization problem of eq. (4),
``min Σ f(X_k, X_{k+1})``, in its node-value form: only the ``m``
quantized values of each stage variable enter the array — an
order-of-magnitude less input than feeding ``m²`` edge costs per layer —
and each PE *computes* edge costs on the fly with its ``F`` unit.

Architecture (paper Section 3.2, Figure 5):

* ``m`` PEs in a line.  PE ``P_i`` holds three registers — ``R_i`` (the
  moving slot of the input pipeline), ``K_i`` and ``H_i`` (a stationary
  predecessor value ``x_{k-1,i}`` and its optimal prefix cost
  ``h(x_{k-1,i})``) — and three operate units ``F`` (edge cost), ``A``
  (add) and ``C`` (compare/min).
* Stage values stream in one per iteration: ``x_{k,j}`` enters ``P₁`` at
  iteration ``(k-1)·m + j`` paired with a fresh partial ``h = ∞`` and
  marches one PE per iteration.  At PE ``i`` it improves its partial:
  ``h ← min(h, H_i + f(K_i, x_{k,j}))``.
* When a pair leaves ``P_m`` its ``h`` is complete; the **feedback
  controller** returns it on a bus (round-robin; the paper notes one bus
  with a circulating token suffices) to be latched into ``K_j/H_j`` of
  ``P_j`` one iteration later, becoming the stationary predecessor data
  for the next stage.  The bus value is also usable combinationally in
  the arrival tick (the paper's walkthrough computes with a value "fed
  back" in the same iteration), which the simulator honours via a bypass.
* The final ``m`` iterations set ``F = 0`` and circulate a dummy token
  that folds ``min_i H_i`` — the optimum — completing at iteration
  ``(N+1)·m`` exactly.

Optimal-path extraction: each moving pair carries the index of the PE
whose candidate last improved it (the winning predecessor); ``P_m``
stores it in the stage's *path register* as the pair completes, and the
run traces the registers back into a full :class:`~repro.graphs.StagePath`
— the paper's ``N`` path registers of ``m`` indices each.
"""

from __future__ import annotations

import dataclasses
from typing import Callable

import numpy as np

from ..graphs import NodeValueProblem, StagePath
from ..semiring import MIN_PLUS, Semiring
from .fabric import ArrayStats, ProcessingElement, RunReport, SystolicError, finalize_report

__all__ = ["FeedbackArrayResult", "FeedbackSystolicArray", "feedback_pu"]


@dataclasses.dataclass(frozen=True)
class _Pair:
    """A moving token: (node value, partial h, winning predecessor, kind)."""

    x: float
    h: float
    arg: int
    stage: int  # 1-based stage of x; N+1 marks the final dummy sweep
    index: int  # 1-based position of x within its stage


@dataclasses.dataclass(frozen=True)
class FeedbackArrayResult:
    """Output of a feedback-array run."""

    optimum: float
    path: StagePath
    final_stage_values: np.ndarray  # h(x_{N,i}) for every i
    report: RunReport
    #: (iteration, pe index, label) events when ``record_trace`` was set;
    #: feeds :func:`repro.systolic.spacetime.render_spacetime`.
    trace: tuple[tuple[int, int, str], ...] = ()


def feedback_pu(num_stages: int, m: int) -> float:
    """The paper's PU expression for this design:
    ``((N-1)·m² + m) / ((N+1)·m·m)`` for ``N`` stages of ``m`` values."""
    n = num_stages
    return ((n - 1) * m * m + m) / ((n + 1) * m * m)


class FeedbackSystolicArray:
    """Simulator of the Fig. 5 feedback systolic array."""

    design_name = "fig5-feedback"

    def __init__(self, semiring: Semiring = MIN_PLUS):
        if semiring.add_argreduce is None:
            raise SystolicError("feedback array needs an arg-reduction for traceback")
        self.sr = semiring

    def run(
        self, problem: NodeValueProblem, *, record_trace: bool = False
    ) -> FeedbackArrayResult:
        """Run the array on a node-value problem with uniform stage width.

        Executes exactly ``(N+1)·m`` iterations for ``N`` stages of ``m``
        quantized values, per the paper's schedule, and returns the
        optimum, a traced optimal path, the final-stage ``h`` values and
        the measurement report.  With ``record_trace`` the per-iteration
        PE activity is captured for space-time rendering: ``x{k},{j}``
        for a moving stage value, ``F0`` for the final comparison sweep,
        ``-`` for a stage-1 pass-through.
        """
        sr = self.sr
        if problem.semiring.name != sr.name:
            raise SystolicError("problem and array use different semirings")
        if not problem.is_uniform:
            raise SystolicError(
                "the Fig. 5 array requires a uniform number of quantized values "
                f"per stage; got sizes {problem.stage_sizes}"
            )
        n_stages = problem.num_stages
        m = problem.stage_sizes[0]
        f: Callable[[float, float], float] = lambda a, b: float(
            problem.edge_cost(np.asarray(a), np.asarray(b))
        )

        pes = [ProcessingElement(i) for i in range(m)]
        for pe in pes:
            pe.reg("PAIR", None)  # moving slot (R of the paper + its h/arg)
            pe.reg("K", None)  # stationary predecessor value
            pe.reg("H", None)  # stationary predecessor prefix cost
        stats = ArrayStats()

        # Input stream: stage-1 values ride through with h = 1̄ (= 0 cost
        # prefix); stages 2..N enter with fresh h = 0̄ (= ∞); the final m
        # iterations inject the F = 0 dummy sweep.
        def stream(it: int) -> _Pair | None:
            """Pair entering P₁ at 1-based iteration ``it``."""
            k, j = divmod(it - 1, m)
            k, j = k + 1, j + 1
            if k == 1:
                return _Pair(float(problem.values[0][j - 1]), sr.one, -1, 1, j)
            if k <= n_stages:
                return _Pair(float(problem.values[k - 1][j - 1]), sr.zero, -1, k, j)
            if k == n_stages + 1:
                return _Pair(0.0, sr.zero, -1, n_stages + 1, j)
            return None

        total_iterations = (n_stages + 1) * m
        # path_registers[k][i] = winning predecessor (0-based, stage k-1)
        # of value i of stage k; stage indices 2..N, plus the final sweep.
        path_registers: dict[int, list[int]] = {
            k: [-1] * m for k in range(2, n_stages + 1)
        }
        final_h = [sr.zero] * m
        optimum: float | None = None
        best_final_index = -1
        feedback: tuple[int, float, float] | None = None  # (target pe, x, h)
        trace: list[tuple[int, int, str]] = []

        for it in range(1, total_iterations + 1):
            # Deliver feedback scheduled to arrive this iteration; it is
            # latched at the tick edge but visible combinationally now.
            bypass: dict[int, tuple[float, float]] = {}
            if feedback is not None:
                tgt, fx, fh = feedback
                bypass[tgt] = (fx, fh)
                pes[tgt]["K"].set(fx)
                pes[tgt]["H"].set(fh)
                stats.broadcast_words += 2
                feedback = None

            # Moving pairs advance one PE per iteration; PE i processes
            # the pair arriving from PE i-1 (or the input stream).
            for i in range(m - 1, -1, -1):
                pe = pes[i]
                if i == 0:
                    pair = stream(it)
                    if pair is not None and pair.stage <= n_stages:
                        stats.input_words += 1
                else:
                    pair = pes[i - 1]["PAIR"].value
                if pair is None:
                    pe["PAIR"].set(None)
                    continue
                if record_trace:
                    if pair.stage > n_stages:
                        label = "F0"
                    elif pair.stage == 1:
                        label = "-"
                    else:
                        label = f"x{pair.stage},{pair.index}"
                    trace.append((it, i, label))
                if i in bypass:
                    k_val, h_val = bypass[i]
                else:
                    k_val, h_val = pe["K"].value, pe["H"].value
                if pair.stage == 1 or k_val is None:
                    # Stage-1 transit (or PE not yet armed): pure shift.
                    pe["PAIR"].set(pair)
                    continue
                if pair.stage <= n_stages:
                    cand = sr.scalar_mul(h_val, f(k_val, pair.x))
                else:
                    cand = sr.scalar_mul(h_val, sr.one)  # F = 0 sweep
                merged = sr.scalar_add(pair.h, cand)
                improved = merged != pair.h or pair.arg < 0
                pe.count_op()
                pe["PAIR"].set(
                    _Pair(
                        pair.x,
                        merged,
                        i if improved and merged == cand else pair.arg,
                        pair.stage,
                        pair.index,
                    )
                )

            # Tick edge: latch registers, advance the clock.
            for pe in pes:
                pe.end_tick()
            stats.record_tick()

            # The pair now resident in P_m just completed its traversal:
            # schedule its feedback and record path/answers.
            done = pes[m - 1]["PAIR"].value
            if done is not None:
                if done.stage <= n_stages:
                    feedback = (done.index - 1, done.x, done.h)
                if 2 <= done.stage <= n_stages:
                    path_registers[done.stage][done.index - 1] = done.arg
                if done.stage == n_stages:
                    final_h[done.index - 1] = done.h
                    stats.output_words += 1
                if done.stage == n_stages + 1 and optimum is None:
                    optimum = done.h
                    best_final_index = done.arg
                    stats.output_words += 1

        if optimum is None:
            raise SystolicError("schedule ended before the final sweep completed")

        nodes = [0] * n_stages
        nodes[n_stages - 1] = best_final_index
        for k in range(n_stages, 1, -1):
            nodes[k - 2] = path_registers[k][nodes[k - 1]]
        path = StagePath(nodes=tuple(nodes), cost=float(optimum))

        serial_ops = (n_stages - 1) * m * m + m
        report = finalize_report(
            self.design_name,
            pes,
            stats,
            iterations=total_iterations,
            serial_ops=serial_ops,
        )
        return FeedbackArrayResult(
            optimum=float(optimum),
            path=path,
            final_stage_values=sr.asarray(final_h),
            report=report,
            trace=tuple(trace),
        )
