"""Register-transfer-level simulation fabric for systolic arrays.

The paper's systolic designs are specified as clocked hardware: processing
elements (PEs) with named registers, combinational operate units, control
signals (FIRST, ODD, MOVE, F=0), nearest-neighbour shift paths and
broadcast buses.  This module provides the simulation substrate those
designs are built on:

* :class:`Register` — a value with two-phase (compute → latch) semantics,
  so every PE in a tick observes the *previous* tick's outputs, exactly
  like edge-triggered hardware.  Forgetting the two-phase discipline is
  the classic systolic-simulator bug (PE *i+1* would see PE *i*'s
  same-tick output); the fabric makes it structurally impossible.
* :class:`ProcessingElement` — a register container with per-PE activity
  accounting (busy ticks, operation counts).
* :class:`ArrayStats` / :class:`RunReport` — uniform measurement records:
  iteration counts, wall-clock ticks, per-PE utilization, and I/O-port
  traffic, which the benchmarks compare against the paper's closed forms
  (eq. 9 and friends).

The concrete array designs (Figs. 3, 4, 5 and the Section-6.2
parenthesization arrays) each own their tick loop — their control
structures differ too much to share one — but all are built from these
parts and all emit :class:`RunReport`.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Iterable

__all__ = [
    "Register",
    "ProcessingElement",
    "ArrayStats",
    "RunReport",
    "SystolicError",
]


class SystolicError(RuntimeError):
    """Raised for schedule violations inside an array simulation."""


class Register:
    """A clocked register with compute/latch two-phase semantics.

    During a tick, PEs read ``value`` (the state latched at the previous
    clock edge) and stage updates with :meth:`set`.  The array calls
    :meth:`latch` on every register at the tick boundary.  Reading always
    returns pre-tick state; staged writes are invisible until latched.
    """

    __slots__ = ("name", "_current", "_next", "_dirty")

    def __init__(self, name: str, initial: Any = None):
        self.name = name
        self._current: Any = initial
        self._next: Any = None
        self._dirty = False

    @property
    def value(self) -> Any:
        """State as of the last clock edge."""
        return self._current

    def set(self, value: Any) -> None:
        """Stage a write for the next clock edge.

        Two staged writes to one register in one tick indicate a wiring
        bug (two drivers on one net) and raise :class:`SystolicError`.
        """
        if self._dirty:
            raise SystolicError(f"register {self.name!r} driven twice in one tick")
        self._next = value
        self._dirty = True

    def latch(self) -> None:
        """Clock edge: staged value (if any) becomes visible."""
        if self._dirty:
            self._current = self._next
            self._next = None
            self._dirty = False

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Register({self.name}={self._current!r})"


class ProcessingElement:
    """A PE: a bundle of named registers plus activity accounting.

    Subclasses (or owning arrays) create registers with :meth:`reg` and
    record work with :meth:`count_op`.  ``busy_ticks`` increments at most
    once per tick regardless of how many elementary operations the PE
    performed in it, matching the paper's definition of an *iteration* as
    one shift-multiply-accumulate slot.
    """

    def __init__(self, index: int):
        self.index = index
        self.registers: dict[str, Register] = {}
        self.busy_ticks = 0
        self.op_count = 0
        self._busy_this_tick = False

    def reg(self, name: str, initial: Any = None) -> Register:
        """Create (or return) the named register."""
        if name not in self.registers:
            self.registers[name] = Register(f"P{self.index}.{name}", initial)
        return self.registers[name]

    def __getitem__(self, name: str) -> Register:
        return self.registers[name]

    def count_op(self, n: int = 1) -> None:
        """Record ``n`` elementary operations in the current tick."""
        self.op_count += n
        self._busy_this_tick = True

    def end_tick(self) -> None:
        """Latch all registers and fold busy flag into the tick count."""
        if self._busy_this_tick:
            self.busy_ticks += 1
            self._busy_this_tick = False
        for r in self.registers.values():
            r.latch()


@dataclasses.dataclass
class ArrayStats:
    """Mutable counters an array accumulates while running."""

    wall_ticks: int = 0
    input_words: int = 0  # words entering the array through I/O ports
    output_words: int = 0  # words leaving through I/O ports
    broadcast_words: int = 0  # words placed on a broadcast bus

    def record_tick(self) -> None:
        self.wall_ticks += 1


@dataclasses.dataclass(frozen=True)
class RunReport:
    """Measurement record of one array execution.

    Attributes
    ----------
    design:
        Name of the array design (``"fig3-pipelined"`` …).
    num_pes:
        PEs instantiated.
    iterations:
        Schedule length in the paper's *iteration* unit (per-PE
        shift-multiply-accumulate slots); the quantity the paper's
        formulas (``N·m``, ``(N+1)·m`` …) predict.
    wall_ticks:
        Global clock ticks actually simulated, including pipeline
        fill/drain skew.
    pe_busy_ticks:
        Per-PE busy-tick counts.
    pe_op_counts:
        Per-PE elementary-operation counts.
    serial_ops:
        Elementary operations a single PE would need for the same job
        (the numerator of PU).
    input_words / output_words / broadcast_words:
        I/O-port traffic, for the input-bandwidth comparison of
        Section 3.2.
    """

    design: str
    num_pes: int
    iterations: int
    wall_ticks: int
    pe_busy_ticks: tuple[int, ...]
    pe_op_counts: tuple[int, ...]
    serial_ops: int
    input_words: int
    output_words: int
    broadcast_words: int

    @property
    def total_ops(self) -> int:
        return int(sum(self.pe_op_counts))

    @property
    def processor_utilization(self) -> float:
        """Measured PU: serial work over (parallel iterations × PEs).

        This is the paper's PU definition ("ratio of the number of serial
        iterations to the product of the number of parallel iterations
        and the number of processors"), using measured quantities.
        """
        denom = self.iterations * self.num_pes
        return self.serial_ops / denom if denom else float("nan")

    @property
    def busy_fraction(self) -> float:
        """Mean fraction of wall ticks each PE spent busy."""
        if self.wall_ticks == 0 or self.num_pes == 0:
            return float("nan")
        return sum(self.pe_busy_ticks) / (self.wall_ticks * self.num_pes)


def finalize_report(
    design: str,
    pes: Iterable[ProcessingElement],
    stats: ArrayStats,
    *,
    iterations: int,
    serial_ops: int,
) -> RunReport:
    """Assemble the immutable :class:`RunReport` from live simulation state."""
    pes = list(pes)
    return RunReport(
        design=design,
        num_pes=len(pes),
        iterations=iterations,
        wall_ticks=stats.wall_ticks,
        pe_busy_ticks=tuple(p.busy_ticks for p in pes),
        pe_op_counts=tuple(p.op_count for p in pes),
        serial_ops=serial_ops,
        input_words=stats.input_words,
        output_words=stats.output_words,
        broadcast_words=stats.broadcast_words,
    )
