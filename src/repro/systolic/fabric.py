"""Register-transfer-level simulation fabric for systolic arrays.

The paper's systolic designs are specified as clocked hardware: processing
elements (PEs) with named registers, combinational operate units, control
signals (FIRST, ODD, MOVE, F=0), nearest-neighbour shift paths and
broadcast buses.  This module provides the simulation substrate those
designs are built on:

* :class:`Register` — a value with two-phase (compute → latch) semantics,
  so every PE in a tick observes the *previous* tick's outputs, exactly
  like edge-triggered hardware.  Forgetting the two-phase discipline is
  the classic systolic-simulator bug (PE *i+1* would see PE *i*'s
  same-tick output); the fabric makes it structurally impossible.
* :class:`ProcessingElement` — a register container with per-PE activity
  accounting (busy ticks, operation counts).
* :class:`SystolicMachine` — the shared simulation machine every array
  design runs on: it owns the clock (tick counter + latch-all), phase
  accounting with per-hop control-signal delay (the ODD/MOVE signals of
  Fig. 3 propagate one PE per tick, which is what skews the overlapped
  schedule), a deferred-delivery queue for feedback/control buses, the
  I/O-port counters, and the structured :class:`EventBus` that trace
  sinks subscribe to.
* :class:`TraceEvent` / :class:`EventBus` / :class:`TraceSink` — the
  typed trace bus.  Simulators emit ``op`` / ``shift`` / ``broadcast`` /
  ``io`` / ``phase`` events; pluggable sinks consume them (the built-in
  :class:`TraceSink` collects them for space-time rendering and JSON
  export).
* :class:`ArrayStats` / :class:`RunReport` — uniform measurement records:
  iteration counts, wall-clock ticks, per-PE utilization, and I/O-port
  traffic, which the benchmarks compare against the paper's closed forms
  (eq. 9 and friends).

Every array design — Figs. 3, 4, 5, the mesh multiplier, and the
Section-6.2 triangular/parenthesization arrays — is built on the machine
and emits :class:`RunReport`.  Each design additionally ships a
*vectorized fast backend* (whole-array NumPy semiring reductions, no
per-tick Python loop) that reproduces the RTL backend's values and
closed-form counters; :func:`run_with_backend` implements the shared
``"rtl" | "fast" | "auto"`` dispatch, where ``auto`` cross-validates the
two backends on small instances and trusts the fast one above
:data:`AUTO_VALIDATE_LIMIT`.
"""

from __future__ import annotations

# systolic: fabric-internal — this module *is* the register/latch
# implementation, so the repo-wide lint rules about touching register
# internals and bypassing end_tick do not apply here.

import dataclasses
import heapq
from typing import Any, Callable, Iterable

__all__ = [
    "Register",
    "ProcessingElement",
    "ArrayStats",
    "RunReport",
    "SystolicError",
    "BackendMismatch",
    "TraceEvent",
    "EventBus",
    "TraceSink",
    "SystolicMachine",
    "BACKENDS",
    "AUTO_VALIDATE_LIMIT",
    "normalize_backend",
    "run_with_backend",
    "finalize_report",
]

#: Recognized execution backends (see :func:`run_with_backend`).
BACKENDS = ("rtl", "fast", "auto")

#: ``backend="auto"`` cross-validates fast against RTL whenever the
#: instance's serial-op count is at most this; larger instances run the
#: fast backend alone (the RTL run would dominate wall time, which is
#: the point of having a fast backend).
AUTO_VALIDATE_LIMIT = 4096


class SystolicError(RuntimeError):
    """Raised for schedule violations inside an array simulation."""


class BackendMismatch(SystolicError):
    """Raised when ``backend="auto"`` finds RTL and fast disagreeing."""


class Register:
    """A clocked register with compute/latch two-phase semantics.

    During a tick, PEs read ``value`` (the state latched at the previous
    clock edge) and stage updates with :meth:`set`.  The array calls
    :meth:`latch` on every register at the tick boundary.  Reading always
    returns pre-tick state; staged writes are invisible until latched.

    ``owner`` is the index of the PE the register belongs to (``None``
    for free-standing registers); ``monitor`` is an optional hazard
    monitor (:class:`repro.analysis.hazards.HazardSanitizer`) notified
    on every read/stage/force.  Both are wired by the machine when
    strict mode is on and cost a single ``is not None`` test otherwise.
    """

    __slots__ = ("name", "owner", "_current", "_next", "_dirty", "_monitor",
                 "_staged_scope")

    def __init__(
        self,
        name: str,
        initial: Any = None,
        owner: int | None = None,
        monitor: Any = None,
    ) -> None:
        self.name = name
        self.owner = owner
        self._current: Any = initial
        self._next: Any = None
        self._dirty = False
        self._monitor = monitor
        self._staged_scope: Any = None

    @property
    def value(self) -> Any:
        """State as of the last clock edge."""
        if self._monitor is not None:
            self._monitor.on_read(self)
        return self._current

    @property
    def pending(self) -> bool:
        """True when a write is staged for the next clock edge."""
        return self._dirty

    def cancel(self) -> Any:
        """Discard the staged write, if any; returns the cancelled value.

        Exists for the fault layer (:mod:`repro.faults`): a dropped shift
        delivery or a dead link is exactly "the staged write never
        arrives".  Normal array code never cancels.
        """
        if self._monitor is not None:
            self._monitor.on_cancel(self)
        staged = self._next
        self._next = None
        self._dirty = False
        self._staged_scope = None
        return staged

    def force(self, value: Any) -> None:
        """Overwrite the *latched* state directly, bypassing the clock.

        Exists for the fault layer: a register upset corrupts state
        between clock edges, which no two-phase ``set``/``latch``
        sequence can express.  Normal array code never forces; under a
        strict-mode monitor a force outside the fault injector's latch
        hooks is a ``forced-write`` hazard.
        """
        if self._monitor is not None:
            self._monitor.on_force(self)
        self._current = value

    def set(self, value: Any) -> None:
        """Stage a write for the next clock edge.

        Two staged writes to one register in one tick indicate a wiring
        bug (two drivers on one net) and raise :class:`SystolicError`.
        Under a strict-mode monitor the double drive is recorded as a
        ``write-write`` hazard instead and the run continues with the
        last write, so one run surfaces every hazard at once.
        """
        mon = self._monitor
        if mon is not None:
            mon.on_set(self, double=self._dirty)
        elif self._dirty:
            raise SystolicError(f"register {self.name!r} driven twice in one tick")
        self._next = value
        self._dirty = True

    def latch(self) -> None:
        """Clock edge: staged value (if any) becomes visible."""
        if self._dirty:
            self._current = self._next
            self._next = None
            self._dirty = False
            self._staged_scope = None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Register({self.name}={self._current!r})"


class ProcessingElement:
    """A PE: a bundle of named registers plus activity accounting.

    Subclasses (or owning arrays) create registers with :meth:`reg` and
    record work with :meth:`count_op`.  ``busy_ticks`` increments at most
    once per tick regardless of how many elementary operations the PE
    performed in it, matching the paper's definition of an *iteration* as
    one shift-multiply-accumulate slot.
    """

    def __init__(self, index: int, monitor: Any = None) -> None:
        self.index = index
        self.registers: dict[str, Register] = {}
        self.busy_ticks = 0
        self.op_count = 0
        self._busy_this_tick = False
        self._monitor = monitor

    def reg(self, name: str, initial: Any = None) -> Register:
        """Create (or return) the named register."""
        if name not in self.registers:
            self.registers[name] = Register(
                f"P{self.index}.{name}", initial, owner=self.index,
                monitor=self._monitor,
            )
        return self.registers[name]

    def __getitem__(self, name: str) -> Register:
        return self.registers[name]

    def count_op(self, n: int = 1) -> None:
        """Record ``n`` elementary operations in the current tick."""
        self.op_count += n
        self._busy_this_tick = True

    def end_tick(self) -> None:
        """Latch all registers and fold busy flag into the tick count."""
        if self._busy_this_tick:
            self.busy_ticks += 1
            self._busy_this_tick = False
        for r in self.registers.values():
            r.latch()


# ----------------------------------------------------------------------
# Typed trace bus
# ----------------------------------------------------------------------

#: Event kinds carried on the bus.  ``op`` is a shift-multiply-accumulate
#: slot, ``shift`` a pure data movement, ``broadcast`` a bus placement,
#: ``io`` a port transfer, ``phase`` a control-phase change.  The last
#: three belong to the fault layer (:mod:`repro.faults`): ``fault`` marks
#: an injected hardware fault taking effect, ``detect`` a detector
#: flagging a suspect run, ``recover`` a recovery action.  ``hazard``
#: belongs to the analysis layer (:mod:`repro.analysis`): a strict-mode
#: sanitizer caught a systolic-discipline violation.
TRACE_KINDS = (
    "op", "shift", "broadcast", "io", "phase", "fault", "detect", "recover",
    "hazard",
)

#: Kinds that occupy a PE for a tick, i.e. that belong in a space-time
#: diagram cell.  ``io`` and ``phase`` are array-level bookkeeping.
CELL_KINDS = frozenset({"op", "shift", "broadcast"})


@dataclasses.dataclass(frozen=True)
class TraceEvent:
    """One typed event on a machine's trace bus.

    ``tick`` is 1-based (the paper's iteration numbering).  ``pe`` is the
    PE index, or ``-1`` for array-level events (``io`` / ``phase``).
    ``phase`` is the control phase the event occurred in (0 when the
    design has no phase structure).
    """

    tick: int
    pe: int
    kind: str
    label: str
    phase: int = 0

    def as_cell(self) -> tuple[int, int, str]:
        """Legacy ``(tick, pe, label)`` form used by space-time grids."""
        return (self.tick, self.pe, self.label)


class EventBus:
    """Pluggable sink fan-out for :class:`TraceEvent` streams.

    Emission is a no-op while no sink is subscribed, so instrumented
    simulators pay nothing when tracing is off (guard hot paths with
    :attr:`active` to skip even event construction).

    A sink that raises does not kill the simulation: per-sink exceptions
    are swallowed, counted in :attr:`sink_errors`, and a bounded sample
    of them is kept in :attr:`sink_error_samples` for the run report.
    """

    __slots__ = ("_sinks", "sink_errors", "sink_error_samples")

    #: At most this many ``(sink repr, exception repr)`` samples are kept.
    MAX_ERROR_SAMPLES = 8

    def __init__(self) -> None:
        self._sinks: list[Callable[[TraceEvent], None]] = []
        self.sink_errors = 0
        self.sink_error_samples: list[tuple[str, str]] = []

    @property
    def active(self) -> bool:
        """True when at least one sink is subscribed."""
        return bool(self._sinks)

    def subscribe(self, sink: Callable[[TraceEvent], None]) -> Callable[[], None]:
        """Attach ``sink``; returns a zero-argument unsubscribe callable."""
        self._sinks.append(sink)

        def unsubscribe() -> None:
            if sink in self._sinks:
                self._sinks.remove(sink)

        return unsubscribe

    def emit(self, event: TraceEvent) -> None:
        """Deliver ``event`` to every sink subscribed at call time.

        Delivery iterates over a snapshot of the sink list, so a sink
        that unsubscribes itself (or subscribes a new sink) *during*
        ``emit`` cannot mutate the list mid-iteration; a sink added
        while an event is being delivered first sees the next event.

        A sink that raises is isolated: the exception is counted (see
        :attr:`sink_errors`) and delivery continues with the remaining
        sinks, so one misbehaving telemetry consumer cannot abort the
        simulation.  The count surfaces in
        :attr:`RunReport.sink_errors`.
        """
        for sink in tuple(self._sinks):
            try:
                sink(event)
            except Exception as exc:  # noqa: BLE001 - sink isolation
                self.sink_errors += 1
                if len(self.sink_error_samples) < self.MAX_ERROR_SAMPLES:
                    self.sink_error_samples.append((repr(sink), repr(exc)))


class TraceSink:
    """The built-in collecting sink: stores every event, in emit order."""

    def __init__(self) -> None:
        self._events: list[TraceEvent] = []

    def __call__(self, event: TraceEvent) -> None:
        self._events.append(event)

    @property
    def events(self) -> tuple[TraceEvent, ...]:
        """Every collected event, including ``io`` and ``phase``."""
        return tuple(self._events)

    def cell_events(self) -> tuple[TraceEvent, ...]:
        """Only the PE-occupying events (``op``/``shift``/``broadcast``)."""
        return tuple(e for e in self._events if e.kind in CELL_KINDS and e.pe >= 0)

    def legacy(self) -> tuple[tuple[int, int, str], ...]:
        """Cell events as ``(tick, pe, label)`` tuples (pre-bus format)."""
        return tuple(e.as_cell() for e in self.cell_events())


# ----------------------------------------------------------------------
# Measurement records
# ----------------------------------------------------------------------


@dataclasses.dataclass
class ArrayStats:
    """Mutable counters an array accumulates while running."""

    wall_ticks: int = 0
    input_words: int = 0  # words entering the array through I/O ports
    output_words: int = 0  # words leaving through I/O ports
    broadcast_words: int = 0  # words placed on a broadcast bus

    def record_tick(self) -> None:
        self.wall_ticks += 1


@dataclasses.dataclass(frozen=True)
class RunReport:
    """Measurement record of one array execution.

    Attributes
    ----------
    design:
        Name of the array design (``"fig3-pipelined"`` …).
    backend:
        Execution backend that produced the record: ``"rtl"`` for the
        cycle-accurate machine, ``"fast"`` for the vectorized backend
        (whose counters are closed forms of the same schedule).
    num_pes:
        PEs instantiated.
    iterations:
        Schedule length in the paper's *iteration* unit (per-PE
        shift-multiply-accumulate slots); the quantity the paper's
        formulas (``N·m``, ``(N+1)·m`` …) predict.
    wall_ticks:
        Global clock ticks actually simulated, including pipeline
        fill/drain skew.
    pe_busy_ticks:
        Per-PE busy-tick counts.
    pe_op_counts:
        Per-PE elementary-operation counts.
    serial_ops:
        Elementary operations a single PE would need for the same job
        (the numerator of PU).
    input_words / output_words / broadcast_words:
        I/O-port traffic, for the input-bandwidth comparison of
        Section 3.2.
    sink_errors:
        Exceptions raised by subscribed trace sinks during the run
        (isolated per sink, never aborting the simulation; see
        :meth:`EventBus.emit`).  0 for healthy telemetry.
    hazards:
        Systolic-discipline violations the strict-mode hazard sanitizer
        recorded during the run (see :mod:`repro.analysis.hazards`).
        Always 0 without ``strict=True``; a strict run that completes
        with ``hazards > 0`` only exists in the sanitizer's ``"record"``
        mode (the default ``"raise"`` mode aborts at finalize).
    """

    design: str
    num_pes: int
    iterations: int
    wall_ticks: int
    pe_busy_ticks: tuple[int, ...]
    pe_op_counts: tuple[int, ...]
    serial_ops: int
    input_words: int
    output_words: int
    broadcast_words: int
    backend: str = "rtl"
    sink_errors: int = 0
    hazards: int = 0

    @property
    def total_ops(self) -> int:
        return int(sum(self.pe_op_counts))

    @property
    def is_empty(self) -> bool:
        """Explicit empty-run marker: no schedule or no PEs.

        Utilization ratios are undefined for such runs; rather than
        propagating NaN into JSON exports and benchmark aggregation,
        :attr:`processor_utilization` and :attr:`busy_fraction` return
        0.0 and this flag records *why*.
        """
        return self.iterations == 0 or self.num_pes == 0 or self.wall_ticks == 0

    @property
    def processor_utilization(self) -> float:
        """Measured PU: serial work over (parallel iterations × PEs).

        This is the paper's PU definition ("ratio of the number of serial
        iterations to the product of the number of parallel iterations
        and the number of processors"), using measured quantities.
        Returns 0.0 for empty runs (see :attr:`is_empty`).
        """
        denom = self.iterations * self.num_pes
        return self.serial_ops / denom if denom else 0.0

    @property
    def busy_fraction(self) -> float:
        """Mean fraction of wall ticks each PE spent busy.

        Returns 0.0 for empty runs (see :attr:`is_empty`).
        """
        denom = self.wall_ticks * self.num_pes
        return sum(self.pe_busy_ticks) / denom if denom else 0.0


def finalize_report(
    design: str,
    pes: Iterable[ProcessingElement],
    stats: ArrayStats,
    *,
    iterations: int,
    serial_ops: int,
    backend: str = "rtl",
    sink_errors: int = 0,
    hazards: int = 0,
) -> RunReport:
    """Assemble the immutable :class:`RunReport` from live simulation state."""
    pes = list(pes)
    return RunReport(
        design=design,
        num_pes=len(pes),
        iterations=iterations,
        wall_ticks=stats.wall_ticks,
        pe_busy_ticks=tuple(p.busy_ticks for p in pes),
        pe_op_counts=tuple(p.op_count for p in pes),
        serial_ops=serial_ops,
        input_words=stats.input_words,
        output_words=stats.output_words,
        broadcast_words=stats.broadcast_words,
        backend=backend,
        sink_errors=sink_errors,
        hazards=hazards,
    )


# ----------------------------------------------------------------------
# The shared simulation machine
# ----------------------------------------------------------------------


class SystolicMachine:
    """The clocked simulation machine all array designs run on.

    The machine owns what used to be duplicated per design:

    * the **clock** — a 1-based tick counter, the latch-all at every
      edge (:meth:`end_tick`), and the distinction between a *counted*
      tick and a latch-only control action such as Fig. 3's MOVE
      (``end_tick(advance=False)``);
    * **phase accounting with per-hop control delay** — control signals
      (ODD, MOVE, FIRST) enter at P₁ and propagate ``hop_delay`` ticks
      per PE, so phase ``p`` reaches PE ``i`` at
      ``phase_start + i·hop_delay``; :meth:`overlapped_tick` turns a
      (PE, local step) pair into the overlapped-schedule tick that
      space-time diagrams use;
    * a **deferred-delivery queue** (:meth:`after` / :meth:`start_tick`)
      for feedback buses and other signals that arrive a fixed number of
      ticks after being driven (the Fig. 5 feedback controller);
    * the **I/O counters** (:meth:`read_input` / :meth:`write_output` /
      :meth:`put_on_bus`), which also publish ``io``/``broadcast``
      events; and
    * the **event bus** — every emission goes through :meth:`emit`,
      which is free when no sink is subscribed.

    A design builds its PEs with :meth:`add_pes`, drives its schedule by
    staging register writes and calling :meth:`end_tick`, and closes
    with :meth:`finalize` to obtain the uniform :class:`RunReport`.
    """

    def __init__(
        self,
        design: str,
        *,
        record_trace: bool = False,
        hop_delay: int = 1,
        sinks: Iterable[Callable[[TraceEvent], None]] = (),
        injector: Any = None,
        strict: bool = False,
        sanitizer: Any = None,
        topology: Any = "line",
    ) -> None:
        if hop_delay < 0:
            raise SystolicError("hop_delay must be nonnegative")
        self.design = design
        self.hop_delay = hop_delay
        #: Interconnect the design claims: ``"line"`` (nearest-neighbour
        #: chain, the default), ``("grid", rows, cols)`` (4-neighbour mesh
        #: over row-major flattened indices), or ``"complete"`` (every PE
        #: reaches every PE — broadcast-bus designs).  Only consulted by
        #: the strict-mode sanitizer's ``non-neighbor-link`` rule.
        self.topology = topology
        #: Hazard sanitizer (:class:`repro.analysis.hazards.HazardSanitizer`)
        #: or ``None``.  ``strict=True`` constructs the default sanitizer;
        #: passing ``sanitizer=`` explicitly implies strict mode.  The
        #: import is deferred: the analysis package consumes this module.
        if sanitizer is None and strict:
            from ..analysis.hazards import HazardSanitizer  # deferred

            sanitizer = HazardSanitizer()
        self.sanitizer = sanitizer
        if sanitizer is not None:
            sanitizer.attach(self)
        #: Optional fault injector (:class:`repro.faults.FaultInjector`):
        #: any object with ``before_latch(machine)`` / ``after_latch(machine)``
        #: hooks, called around every clock edge.  ``None`` (the default)
        #: keeps the tick loop byte-for-byte on the healthy path.
        self.injector = injector
        self.pes: list[ProcessingElement] = []
        self.stats = ArrayStats()
        self.bus = EventBus()
        self.trace: TraceSink | None = None
        if record_trace:
            self.trace = TraceSink()
            self.bus.subscribe(self.trace)
        for sink in sinks:  # external telemetry sinks (metrics, timelines, …)
            self.bus.subscribe(sink)
        self.tick = 1  # the tick currently being simulated (1-based)
        self.phase = -1  # index of the current control phase
        self.phase_start = 0  # overlapped-tick origin of the current phase
        self._pending: list[tuple[int, int, Callable[[], None]]] = []
        self._pending_seq = 0

    # -- construction ---------------------------------------------------
    def add_pes(self, n: int) -> list[ProcessingElement]:
        """Append ``n`` fresh PEs; returns the full PE list."""
        base = len(self.pes)
        self.pes.extend(
            ProcessingElement(base + i, monitor=self.sanitizer) for i in range(n)
        )
        return self.pes

    # -- strict-mode acting scope ---------------------------------------
    def enter_pe(self, index: int) -> None:
        """Declare that subsequent register traffic acts *as* PE ``index``.

        The strict-mode sanitizer attributes reads and writes to the
        acting PE to enforce the ownership rules (``cross-pe-write``,
        ``non-neighbor-link``, same-scope ``read-after-staged-write``).
        Plain methods, not a context manager: the scope switch sits on
        the per-PE hot path and must stay two attribute stores when
        strict mode is off.
        """
        san = self.sanitizer
        if san is not None:
            san.scope = index

    def exit_pe(self) -> None:
        """Return to array-scope (controller) register traffic."""
        san = self.sanitizer
        if san is not None:
            san.scope = None

    def neighbors(self, a: int, b: int) -> bool:
        """True when PEs ``a`` and ``b`` are linked under :attr:`topology`.

        A PE is always its own neighbour.  Unknown topology values fail
        loudly rather than silently allowing everything.
        """
        if a == b:
            return True
        topo = self.topology
        if topo == "line":
            return abs(a - b) == 1
        if topo == "complete":
            return True
        if isinstance(topo, tuple) and len(topo) == 3 and topo[0] == "grid":
            _kind, _rows, cols = topo
            ra, ca = divmod(a, cols)
            rb, cb = divmod(b, cols)
            return abs(ra - rb) + abs(ca - cb) == 1
        raise SystolicError(f"unknown topology {topo!r}")

    # -- event emission -------------------------------------------------
    @property
    def tracing(self) -> bool:
        """True when at least one sink listens (guard for hot paths)."""
        return self.bus.active

    def emit(
        self, kind: str, pe: int, label: str, *, tick: int | None = None
    ) -> None:
        """Publish one typed event (no-op without subscribed sinks)."""
        if self.sanitizer is not None and kind in CELL_KINDS and pe >= 0:
            self.sanitizer.on_emit(pe)
        if self.bus.active:
            if kind not in TRACE_KINDS:
                raise SystolicError(f"unknown trace-event kind {kind!r}")
            self.bus.emit(
                TraceEvent(
                    tick=self.tick if tick is None else tick,
                    pe=pe,
                    kind=kind,
                    label=label,
                    phase=max(self.phase, 0),
                )
            )

    # -- phase / control-signal accounting ------------------------------
    def begin_phase(self, label: str | None = None, *, start: int | None = None) -> int:
        """Enter the next control phase.

        ``start`` pins the overlapped-tick origin of the phase (Fig. 3's
        phases start every ``m`` ticks); by default the phase starts at
        the current tick.  Emits a ``phase`` event and returns the new
        phase index.
        """
        self.phase += 1
        self.phase_start = (self.tick - 1) if start is None else start
        self.emit(
            "phase", -1, label if label is not None else f"phase{self.phase}",
            tick=self.phase_start + 1,
        )
        return self.phase

    def overlapped_tick(self, pe: int, step: int) -> int:
        """Overlapped-schedule tick of local ``step`` at PE ``pe``.

        The control signal that opens the current phase reaches PE ``i``
        after ``i·hop_delay`` ticks, so PE ``i`` executes its local step
        ``s`` at ``phase_start + i·hop_delay + s`` (1-based).
        """
        return self.phase_start + pe * self.hop_delay + step + 1

    # -- deferred delivery (feedback/control buses) ----------------------
    def after(self, delay: int, action: Callable[[], None]) -> None:
        """Schedule ``action`` to run at the start of tick ``tick+delay``.

        ``delay`` counts from the current tick counter; ``delay=0`` runs
        at the next :meth:`start_tick` (used when the driving edge has
        already been latched, e.g. a feedback bus loaded from post-latch
        state that must arrive one iteration after the drive).
        """
        if delay < 0:
            raise SystolicError("deferred actions cannot run in the past")
        self._pending_seq += 1
        heapq.heappush(self._pending, (self.tick + delay, self._pending_seq, action))

    def start_tick(self) -> None:
        """Run deferred actions due at the current tick (call at tick top)."""
        while self._pending and self._pending[0][0] <= self.tick:
            _due, _seq, action = heapq.heappop(self._pending)
            action()

    # -- the clock -------------------------------------------------------
    def end_tick(self, *, advance: bool = True) -> None:
        """Clock edge: latch every PE; count the tick unless ``advance=False``.

        ``advance=False`` models control actions that latch registers
        without consuming an iteration slot (Fig. 3's MOVE).

        When a fault :attr:`injector` is attached it is invoked around
        the latch: ``before_latch`` may cancel staged writes (dropped
        deliveries, dead PEs/links), ``after_latch`` may corrupt latched
        state (transient flips, stuck-at registers).
        """
        injector = self.injector
        san = self.sanitizer
        if san is not None:
            san.on_end_tick(self, advance=advance)
        if injector is not None:
            if san is not None:
                san.enter_injector()
            injector.before_latch(self)
            if san is not None:
                san.exit_injector()
        for pe in self.pes:
            pe.end_tick()
        if injector is not None:
            if san is not None:
                san.enter_injector()
            injector.after_latch(self)
            if san is not None:
                san.exit_injector()
        if advance:
            self.stats.record_tick()
            self.tick += 1

    def latch(self) -> None:
        """Latch-only edge (``end_tick(advance=False)``)."""
        self.end_tick(advance=False)

    # -- I/O accounting --------------------------------------------------
    def read_input(
        self, words: int = 1, *, pe: int = -1, label: str | None = None,
        tick: int | None = None,
    ) -> None:
        """Count ``words`` entering through I/O ports (emits an ``io`` event)."""
        self.stats.input_words += words
        if self.bus.active:
            self.emit("io", pe, label if label is not None else f"in:{words}", tick=tick)

    def write_output(
        self, words: int = 1, *, pe: int = -1, label: str | None = None,
        tick: int | None = None,
    ) -> None:
        """Count ``words`` leaving through I/O ports (emits an ``io`` event)."""
        self.stats.output_words += words
        if self.bus.active:
            self.emit("io", pe, label if label is not None else f"out:{words}", tick=tick)

    def put_on_bus(
        self, words: int = 1, *, label: str | None = None, tick: int | None = None
    ) -> None:
        """Count ``words`` placed on a broadcast bus (array-level event).

        Emits a ``broadcast`` event with ``pe = -1``: the bus belongs to
        the array, not a PE, so the event never occupies a space-time
        cell (see :data:`CELL_KINDS` filtering on the PE index).
        """
        self.stats.broadcast_words += words
        if self.bus.active:
            self.emit(
                "broadcast", -1,
                label if label is not None else f"bus:{words}", tick=tick,
            )

    # -- teardown --------------------------------------------------------
    def trace_events(self) -> tuple[TraceEvent, ...]:
        """All events the built-in sink collected (empty without tracing)."""
        return self.trace.events if self.trace is not None else ()

    def legacy_trace(self) -> tuple[tuple[int, int, str], ...]:
        """Cell events in the legacy ``(tick, pe, label)`` form."""
        return self.trace.legacy() if self.trace is not None else ()

    def finalize(self, *, iterations: int, serial_ops: int) -> RunReport:
        """Assemble the uniform :class:`RunReport` for this run.

        With a strict-mode sanitizer attached this is also the hazard
        checkpoint: every hazard collected over the whole run is counted
        into :attr:`RunReport.hazards`, and in the sanitizer's default
        ``"raise"`` mode a non-empty report aborts here with
        :class:`repro.analysis.hazards.HazardError` — *after* the run,
        so a single strict run surfaces all hazards at once.
        """
        san = self.sanitizer
        report = finalize_report(
            self.design,
            self.pes,
            self.stats,
            iterations=iterations,
            serial_ops=serial_ops,
            backend="rtl",
            sink_errors=self.bus.sink_errors,
            hazards=0 if san is None else len(san.report),
        )
        if san is not None:
            san.finish(self)
        return report


# ----------------------------------------------------------------------
# Backend dispatch
# ----------------------------------------------------------------------


def normalize_backend(backend: str | None, default: str = "rtl") -> str:
    """Validate a backend name; ``None`` resolves to ``default``."""
    resolved = default if backend is None else backend
    if resolved not in BACKENDS:
        raise SystolicError(
            f"unknown backend {resolved!r}; expected one of {BACKENDS}"
        )
    return resolved


def run_with_backend(
    backend: str,
    *,
    work: int,
    rtl: Callable[[], Any],
    fast: Callable[[], Any],
    validate: Callable[[Any, Any], None],
    validate_limit: int = AUTO_VALIDATE_LIMIT,
    design: str = "array",
) -> Any:
    """Shared ``rtl | fast | auto`` dispatch used by every array design.

    ``work`` is the instance's serial-op count.  ``auto`` always returns
    the fast result; below ``validate_limit`` it additionally runs the
    RTL backend and calls ``validate(rtl_result, fast_result)``, which
    must raise :class:`BackendMismatch` on disagreement.

    Each backend invocation runs under a ``<design>.backend.<name>``
    timing span (:mod:`repro.telemetry.timing`), so rtl and fast
    executions yield comparable wall-clock telemetry even though the
    fast path never ticks a machine.  The import is deferred — the
    telemetry package consumes this module — and the span is a shared
    no-op unless a :func:`~repro.telemetry.timing.collect_timings`
    collector is installed.
    """
    from ..telemetry.timing import span  # deferred: telemetry imports fabric

    if backend == "rtl":
        with span(f"{design}.backend.rtl"):
            return rtl()
    if backend == "fast":
        with span(f"{design}.backend.fast"):
            return fast()
    with span(f"{design}.backend.fast"):
        fast_result = fast()
    if work <= validate_limit:
        with span(f"{design}.backend.rtl"):
            rtl_result = rtl()
        validate(rtl_result, fast_result)
    return fast_result
