"""A 2-D mesh systolic array for semiring matrix-matrix multiplication.

Section 4 of the paper allocates whole "matrix-multiplication systolic
arrays" as the processors of the divide-and-conquer schedule, citing the
authors' own design paper ([19], Li & Wah, *Design of Optimal Systolic
Arrays*).  This module supplies that unit as a cycle-accurate simulator,
so the granularity analysis can be expressed in *clock cycles* rather
than abstract ``T₁`` rounds:

* ``m × m`` PEs in a mesh; the result element ``C[i, j]`` is stationary
  in PE ``(i, j)``.
* Operand ``A`` streams left→right along the rows and ``B`` top→bottom
  along the columns, each fed in the classic diagonal skew: row ``i`` of
  ``A`` is delayed ``i`` ticks, column ``j`` of ``B`` is delayed ``j``
  ticks, so ``a_{ik}`` and ``b_{kj}`` meet in PE ``(i, j)`` at tick
  ``i + j + k`` and the PE performs one ⊗ and one ⊕ per meeting.
* The last meeting happens at tick ``(m−1) + (m−1) + (m−1)``, giving the
  classic ``3m − 2`` cycle schedule (``T₁`` in cycles), which
  :func:`mesh_cycles` exposes and the tests verify against the
  simulation.

Rectangular operands (``n × k`` times ``k × m``) are supported with an
``n × m`` mesh and schedule length ``n + m + k − 2``.

The RTL backend runs on :class:`~repro.systolic.fabric.SystolicMachine`
(with ``record_trace`` publishing an ``op`` event per PE meeting); the
fast backend is one call to the blocked :func:`repro.semiring.matmul`
plus the schedule's closed-form counters.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Iterable

import numpy as np

from ..semiring import MIN_PLUS, Semiring, matmul
from .fabric import (
    BackendMismatch,
    RunReport,
    SystolicError,
    SystolicMachine,
    TraceEvent,
    normalize_backend,
    run_with_backend,
)

__all__ = ["MeshArrayResult", "MeshMatrixMultiplier", "mesh_cycles"]


def mesh_cycles(n: int, k: int, m: int) -> int:
    """Schedule length (clock cycles) of an ``n×k`` by ``k×m`` product.

    ``n + m + k − 2``; the square case gives the classic ``3m − 2``.
    """
    if min(n, k, m) < 1:
        raise ValueError("all dimensions must be positive")
    return n + m + k - 2


@dataclasses.dataclass(frozen=True)
class MeshArrayResult:
    """Output of a mesh-array run."""

    value: np.ndarray  # the product matrix
    report: RunReport
    #: (tick, pe, label) cell events when ``record_trace`` was requested;
    #: PE (i, j) is flattened to index ``i·m + j`` and labels name the
    #: inner index met that tick (``k<kk>``).
    trace: tuple[tuple[int, int, str], ...] = ()
    #: The full typed event stream from the machine's trace bus.
    events: tuple[TraceEvent, ...] = ()


class MeshMatrixMultiplier:
    """Cycle-accurate 2-D mesh semiring matrix multiplier."""

    design_name = "mesh-matmul"

    def __init__(self, semiring: Semiring = MIN_PLUS, backend: str = "rtl") -> None:
        self.sr = semiring
        self.backend = normalize_backend(backend)

    def run(
        self,
        a: np.ndarray,
        b: np.ndarray,
        *,
        record_trace: bool = False,
        backend: str | None = None,
        sinks: Iterable[Callable[[TraceEvent], None]] = (),
        injector: object = None,
        strict: bool = False,
    ) -> MeshArrayResult:
        """Multiply ``a ⊗ b`` on an ``n × m`` mesh of PEs.

        Validated cell-for-cell against the vectorized
        :func:`repro.semiring.matmul` by the tests; the report's
        ``wall_ticks`` equals :func:`mesh_cycles`.  ``backend`` selects
        RTL simulation, the vectorized fast path, or ``"auto"``
        cross-validation; ``record_trace=True`` always runs RTL, as
        does subscribing telemetry ``sinks`` to the event bus.
        ``strict`` enables the hazard sanitizer
        (:mod:`repro.analysis.hazards`), which is also cycle-level and
        forces RTL.
        """
        sr = self.sr
        a = sr.asarray(a)
        b = sr.asarray(b)
        if a.ndim != 2 or b.ndim != 2:
            raise SystolicError("mesh array multiplies 2-D matrices")
        n, k = a.shape
        k2, m = b.shape
        if k != k2:
            raise SystolicError(f"inner dimensions differ: {a.shape} x {b.shape}")
        resolved = normalize_backend(backend, self.backend)
        sinks = tuple(sinks)
        if record_trace or sinks or injector is not None or strict:
            resolved = "rtl"
        return run_with_backend(
            resolved,
            work=n * k * m,
            rtl=lambda: self._run_rtl(
                a, b, n, k, m, record_trace=record_trace, sinks=sinks,
                injector=injector, strict=strict,
            ),
            fast=lambda: self._run_fast(a, b, n, k, m),
            validate=self._validate,
            design=self.design_name,
        )

    def _validate(self, rtl: MeshArrayResult, fast: MeshArrayResult) -> None:
        if not np.allclose(rtl.value, fast.value, equal_nan=True) or (
            rtl.report.iterations,
            rtl.report.wall_ticks,
            rtl.report.serial_ops,
        ) != (fast.report.iterations, fast.report.wall_ticks, fast.report.serial_ops):
            raise BackendMismatch(f"{self.design_name}: rtl/fast disagree")

    # ------------------------------------------------------------------
    # RTL backend
    # ------------------------------------------------------------------
    def _run_rtl(
        self,
        a: np.ndarray,
        b: np.ndarray,
        n: int,
        k: int,
        m: int,
        *,
        record_trace: bool = False,
        sinks: Iterable[Callable[[TraceEvent], None]] = (),
        injector: object = None,
        strict: bool = False,
    ) -> MeshArrayResult:
        sr = self.sr
        machine = SystolicMachine(
            self.design_name, record_trace=record_trace, sinks=sinks,
            injector=injector, strict=strict, topology=("grid", n, m),
        )
        machine.add_pes(n * m)
        pes = [[machine.pes[i * m + j] for j in range(m)] for i in range(n)]
        for row in pes:
            for pe in row:
                pe.reg("C", sr.zero)  # stationary accumulator
                pe.reg("A", None)  # eastbound operand slot
                pe.reg("B", None)  # southbound operand slot

        total = mesh_cycles(n, k, m)
        for t in range(total):
            for i in range(n):
                for j in range(m):
                    pe = pes[i][j]
                    machine.enter_pe(pe.index)
                    # The A element entering PE (i, j) this tick: from the
                    # west neighbour's latch, or the skewed feed at j = 0.
                    if j == 0:
                        kk = t - i  # diagonal skew of row i
                        a_in = float(a[i, kk]) if 0 <= kk < k else None
                        if a_in is not None:
                            machine.stats.input_words += 1
                    else:
                        a_in = pes[i][j - 1]["A"].value
                    if i == 0:
                        kk = t - j
                        b_in = float(b[kk, j]) if 0 <= kk < k else None
                        if b_in is not None:
                            machine.stats.input_words += 1
                    else:
                        b_in = pes[i - 1][j]["B"].value
                    if a_in is not None and b_in is not None:
                        pe["C"].set(
                            sr.scalar_add(pe["C"].value, sr.scalar_mul(a_in, b_in))
                        )
                        pe.count_op()
                        machine.emit("op", pe.index, f"k{t - i - j + 1}")
                    pe["A"].set(a_in)
                    pe["B"].set(b_in)
                    machine.exit_pe()
            machine.end_tick()

        out = sr.asarray(
            [[pes[i][j]["C"].value for j in range(m)] for i in range(n)]
        )
        machine.stats.output_words += out.size
        report = machine.finalize(iterations=total, serial_ops=n * k * m)
        return MeshArrayResult(
            value=out,
            report=report,
            trace=machine.legacy_trace(),
            events=machine.trace_events(),
        )

    # ------------------------------------------------------------------
    # Fast backend
    # ------------------------------------------------------------------
    def _run_fast(
        self, a: np.ndarray, b: np.ndarray, n: int, k: int, m: int
    ) -> MeshArrayResult:
        out = matmul(self.sr, a, b)
        total = mesh_cycles(n, k, m)
        report = RunReport(
            design=self.design_name,
            num_pes=n * m,
            iterations=total,
            wall_ticks=total,
            pe_busy_ticks=(k,) * (n * m),  # every PE meets k operand pairs
            pe_op_counts=(k,) * (n * m),
            serial_ops=n * k * m,
            input_words=n * k + k * m,
            output_words=n * m,
            broadcast_words=0,
            backend="fast",
        )
        return MeshArrayResult(value=out, report=report)
