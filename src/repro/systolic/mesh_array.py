"""A 2-D mesh systolic array for semiring matrix-matrix multiplication.

Section 4 of the paper allocates whole "matrix-multiplication systolic
arrays" as the processors of the divide-and-conquer schedule, citing the
authors' own design paper ([19], Li & Wah, *Design of Optimal Systolic
Arrays*).  This module supplies that unit as a cycle-accurate simulator,
so the granularity analysis can be expressed in *clock cycles* rather
than abstract ``T₁`` rounds:

* ``m × m`` PEs in a mesh; the result element ``C[i, j]`` is stationary
  in PE ``(i, j)``.
* Operand ``A`` streams left→right along the rows and ``B`` top→bottom
  along the columns, each fed in the classic diagonal skew: row ``i`` of
  ``A`` is delayed ``i`` ticks, column ``j`` of ``B`` is delayed ``j``
  ticks, so ``a_{ik}`` and ``b_{kj}`` meet in PE ``(i, j)`` at tick
  ``i + j + k`` and the PE performs one ⊗ and one ⊕ per meeting.
* The last meeting happens at tick ``(m−1) + (m−1) + (m−1)``, giving the
  classic ``3m − 2`` cycle schedule (``T₁`` in cycles), which
  :func:`mesh_cycles` exposes and the tests verify against the
  simulation.

Rectangular operands (``n × k`` times ``k × m``) are supported with an
``n × m`` mesh and schedule length ``n + m + k − 2``.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..semiring import MIN_PLUS, Semiring, matmul
from .fabric import ArrayStats, ProcessingElement, RunReport, SystolicError, finalize_report

__all__ = ["MeshArrayResult", "MeshMatrixMultiplier", "mesh_cycles"]


def mesh_cycles(n: int, k: int, m: int) -> int:
    """Schedule length (clock cycles) of an ``n×k`` by ``k×m`` product.

    ``n + m + k − 2``; the square case gives the classic ``3m − 2``.
    """
    if min(n, k, m) < 1:
        raise ValueError("all dimensions must be positive")
    return n + m + k - 2


@dataclasses.dataclass(frozen=True)
class MeshArrayResult:
    """Output of a mesh-array run."""

    value: np.ndarray  # the product matrix
    report: RunReport


class MeshMatrixMultiplier:
    """Cycle-accurate 2-D mesh semiring matrix multiplier."""

    design_name = "mesh-matmul"

    def __init__(self, semiring: Semiring = MIN_PLUS):
        self.sr = semiring

    def run(self, a: np.ndarray, b: np.ndarray) -> MeshArrayResult:
        """Multiply ``a ⊗ b`` on an ``n × m`` mesh of PEs.

        Validated cell-for-cell against the vectorized
        :func:`repro.semiring.matmul` by the tests; the report's
        ``wall_ticks`` equals :func:`mesh_cycles`.
        """
        sr = self.sr
        a = sr.asarray(a)
        b = sr.asarray(b)
        if a.ndim != 2 or b.ndim != 2:
            raise SystolicError("mesh array multiplies 2-D matrices")
        n, k = a.shape
        k2, m = b.shape
        if k != k2:
            raise SystolicError(f"inner dimensions differ: {a.shape} x {b.shape}")

        pes = [[ProcessingElement(i * m + j) for j in range(m)] for i in range(n)]
        for row in pes:
            for pe in row:
                pe.reg("C", sr.zero)  # stationary accumulator
                pe.reg("A", None)  # eastbound operand slot
                pe.reg("B", None)  # southbound operand slot
        stats = ArrayStats()

        total = mesh_cycles(n, k, m)
        for t in range(total):
            for i in range(n):
                for j in range(m):
                    pe = pes[i][j]
                    # The A element entering PE (i, j) this tick: from the
                    # west neighbour's latch, or the skewed feed at j = 0.
                    if j == 0:
                        kk = t - i  # diagonal skew of row i
                        a_in = float(a[i, kk]) if 0 <= kk < k else None
                        if a_in is not None:
                            stats.input_words += 1
                    else:
                        a_in = pes[i][j - 1]["A"].value
                    if i == 0:
                        kk = t - j
                        b_in = float(b[kk, j]) if 0 <= kk < k else None
                        if b_in is not None:
                            stats.input_words += 1
                    else:
                        b_in = pes[i - 1][j]["B"].value
                    if a_in is not None and b_in is not None:
                        pe["C"].set(
                            sr.scalar_add(pe["C"].value, sr.scalar_mul(a_in, b_in))
                        )
                        pe.count_op()
                    pe["A"].set(a_in)
                    pe["B"].set(b_in)
            for row in pes:
                for pe in row:
                    pe.end_tick()
            stats.record_tick()

        out = sr.asarray(
            [[pes[i][j]["C"].value for j in range(m)] for i in range(n)]
        )
        stats.output_words += out.size
        flat = [pe for row in pes for pe in row]
        report = finalize_report(
            self.design_name,
            flat,
            stats,
            iterations=total,
            serial_ops=n * k * m,
        )
        return MeshArrayResult(value=out, report=report)
