"""The ``python -m repro lint`` driver: static rules + external tools.

Runs the fabric-discipline static checker (:mod:`.static_check`) over a
source tree, optionally shells out to ``ruff`` and ``mypy`` when they
are installed, and assembles everything into one machine-readable
:class:`LintReport` for CI.

External tools are *gated*, not required: the checker's own rules are
pure stdlib ``ast``, so the lint pass degrades gracefully on machines
without ruff/mypy (their sections report ``status: "unavailable"``,
which is not a failure — CI installs them and gets ``"ok"``/
``"failed"`` for real).
"""

from __future__ import annotations

import dataclasses
import json
import shutil
import subprocess
import sys
from pathlib import Path
from typing import Any

from .static_check import StaticFinding, check_file, extract_link_graph

__all__ = ["LintReport", "run_lint", "default_lint_paths"]

#: Subpackages mypy checks strictly (relative to the ``repro`` package).
MYPY_STRICT_TARGETS = ("systolic", "core")

#: Wall-clock ceiling for one external tool invocation.
TOOL_TIMEOUT_S = 300


@dataclasses.dataclass
class LintReport:
    """Everything one lint pass produced.

    ``ok`` is the CI gate: true iff there are no active (unsuppressed)
    findings and no external tool *failed* (an unavailable tool does not
    fail the gate — it simply did not run).
    """

    files_checked: int
    findings: list[StaticFinding]
    suppressed: list[StaticFinding]
    link_graph: dict[str, list[dict[str, Any]]]
    tools: dict[str, dict[str, Any]]

    @property
    def ok(self) -> bool:
        if self.findings:
            return False
        return all(t.get("status") != "failed" for t in self.tools.values())

    def as_dict(self) -> dict[str, Any]:
        return {
            "kind": "lint_report",
            "ok": self.ok,
            "files_checked": self.files_checked,
            "findings": [f.as_dict() for f in self.findings],
            "suppressed": [f.as_dict() for f in self.suppressed],
            "link_graph": self.link_graph,
            "tools": self.tools,
        }

    def to_json(self, **kwargs: Any) -> str:
        kwargs.setdefault("indent", 2)
        kwargs.setdefault("sort_keys", True)
        return json.dumps(self.as_dict(), **kwargs)


def default_lint_paths() -> list[Path]:
    """The ``repro`` package directory (what a bare ``repro lint`` checks)."""
    return [Path(__file__).resolve().parent.parent]


def _iter_py_files(paths: list[Path]) -> list[Path]:
    files: list[Path] = []
    for path in paths:
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            files.append(path)
    # De-duplicate while keeping order (a file given twice checks once).
    seen: set[Path] = set()
    unique: list[Path] = []
    for f in files:
        r = f.resolve()
        if r not in seen:
            seen.add(r)
            unique.append(f)
    return unique


def _run_tool(argv: list[str]) -> tuple[int | None, str]:
    """Run one external tool; returns (exit code or None on crash, output)."""
    try:
        proc = subprocess.run(
            argv,
            capture_output=True,
            text=True,
            timeout=TOOL_TIMEOUT_S,
            check=False,
        )
    except (OSError, subprocess.TimeoutExpired) as exc:
        return None, f"{type(exc).__name__}: {exc}"
    out = (proc.stdout or "") + (proc.stderr or "")
    return proc.returncode, out


def _repo_root() -> Path | None:
    """Nearest ancestor of the package holding mypy.ini/ruff.toml, if any."""
    here = Path(__file__).resolve()
    for parent in here.parents:
        if (parent / "mypy.ini").exists() or (parent / "ruff.toml").exists():
            return parent
    return None


def _ruff_section(paths: list[Path]) -> dict[str, Any]:
    exe = shutil.which("ruff")
    if exe is None:
        return {"status": "unavailable", "detail": "ruff not on PATH"}
    argv = [exe, "check", "--output-format", "json"]
    root = _repo_root()
    if root is not None and (root / "ruff.toml").exists():
        argv += ["--config", str(root / "ruff.toml")]
    argv += [str(p) for p in paths]
    code, out = _run_tool(argv)
    if code is None:
        return {"status": "failed", "detail": out}
    try:
        diagnostics = json.loads(out) if out.strip() else []
        count = len(diagnostics)
        sample = [
            f"{d.get('filename')}:{d.get('location', {}).get('row')}: "
            f"{d.get('code')} {d.get('message')}"
            for d in diagnostics[:10]
        ]
    except (json.JSONDecodeError, AttributeError, TypeError):
        count = -1
        sample = out.strip().splitlines()[:10]
    status = "ok" if code == 0 else "failed"
    return {"status": status, "exit_code": code, "violations": count,
            "sample": sample}


def _mypy_section() -> dict[str, Any]:
    exe = shutil.which("mypy")
    if exe is None:
        return {"status": "unavailable", "detail": "mypy not on PATH"}
    pkg = Path(__file__).resolve().parent.parent
    targets = [pkg / t for t in MYPY_STRICT_TARGETS if (pkg / t).is_dir()]
    if not targets:
        return {"status": "unavailable", "detail": "no strict targets found"}
    argv = [exe]
    root = _repo_root()
    if root is not None and (root / "mypy.ini").exists():
        argv += ["--config-file", str(root / "mypy.ini")]
    argv += [str(t) for t in targets]
    code, out = _run_tool(argv)
    if code is None:
        return {"status": "failed", "detail": out}
    errors = [ln for ln in out.splitlines() if ": error:" in ln]
    status = "ok" if code == 0 else "failed"
    return {"status": status, "exit_code": code, "errors": len(errors),
            "sample": errors[:10]}


def run_lint(
    paths: list[Path] | None = None,
    *,
    include_suppressed: bool = False,
    run_tools: bool = True,
) -> LintReport:
    """Lint ``paths`` (files or directories; default: the repro package).

    ``include_suppressed=True`` lists suppressed findings in the report
    (they never affect :attr:`LintReport.ok`); ``run_tools=False`` skips
    the ruff/mypy subprocesses entirely (``status: "skipped"``).
    """
    resolved = paths if paths else default_lint_paths()
    files = _iter_py_files(resolved)
    findings: list[StaticFinding] = []
    suppressed: list[StaticFinding] = []
    link_graph: dict[str, list[dict[str, Any]]] = {}
    for f in files:
        try:
            source = f.read_text(encoding="utf-8")
        except OSError as exc:
            findings.append(
                StaticFinding(
                    rule="register-internals", path=str(f), line=0, col=0,
                    message=f"unreadable: {exc}",
                )
            )
            continue
        for finding in check_file(f, include_suppressed=True):
            (suppressed if finding.suppressed else findings).append(finding)
        graph = extract_link_graph(source, str(f))
        if graph:
            link_graph[str(f)] = graph
    if not include_suppressed:
        suppressed = []
    if run_tools:
        tools = {"ruff": _ruff_section(resolved), "mypy": _mypy_section()}
    else:
        tools = {
            "ruff": {"status": "skipped"},
            "mypy": {"status": "skipped"},
        }
    return LintReport(
        files_checked=len(files),
        findings=findings,
        suppressed=suppressed,
        link_graph=link_graph,
        tools=tools,
    )


def main(argv: list[str] | None = None) -> int:  # pragma: no cover - thin
    """Standalone entry (the CLI subcommand wraps :func:`run_lint`)."""
    from ..__main__ import main as cli_main

    return cli_main(["lint"] + (argv if argv is not None else sys.argv[1:]))
