"""Dynamic hazard sanitizer for strict-mode systolic runs.

The fabric's two-phase registers make the classic systolic bug (PE *i+1*
seeing PE *i*'s same-tick output) structurally impossible, but several
subtler discipline violations still slip through because the MIN/+
semiring masks ordering mistakes: two drivers on one net, a PE reading
back its own staged (not yet latched) value, a PE writing a register it
does not own, communication outside the declared link topology, and
clock-bypassing ``force()`` calls.  The :class:`HazardSanitizer` watches
every register read/stage/force of a run and reports each violation as a
typed :class:`Hazard`.

Wiring
------
``SystolicMachine(..., strict=True)`` constructs a sanitizer and hands
it to every :class:`~repro.systolic.fabric.Register` as its monitor.
Design step loops bracket per-PE work with ``machine.enter_pe(i)`` /
``machine.exit_pe()`` so the sanitizer knows *who* is acting; register
traffic outside any PE scope is array-level controller work (schedule
drivers, feedback-bus controllers) and is exempt from the ownership and
topology rules.  The fault injector's ``before_latch``/``after_latch``
hooks run inside :meth:`enter_injector`/:meth:`exit_injector`, so
injected corruption is attributed to injection rather than reported as
a design hazard.

Every hazard is also published as a ``hazard`` event on the machine's
trace bus, so :class:`repro.telemetry.metrics.MetricsSink` counts them
under ``repro_trace_events_total{kind="hazard"}`` for free.

In the default ``mode="raise"`` the run itself always completes — the
sanitizer collects silently and :meth:`HazardSanitizer.finish` (called
from ``SystolicMachine.finalize``) raises :class:`HazardError` carrying
the full report, so one strict run surfaces *every* hazard at once.
``mode="record"`` never raises; the count lands in
:attr:`repro.systolic.fabric.RunReport.hazards`.
"""

from __future__ import annotations

# systolic: fabric-internal — the sanitizer is the one component that
# must inspect registers' staged state without tripping its own rules.

import dataclasses
from typing import TYPE_CHECKING, Any

from ..systolic.fabric import SystolicError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..systolic.fabric import Register, SystolicMachine

__all__ = ["HAZARD_RULES", "Hazard", "HazardError", "HazardSanitizer"]

#: Every rule the dynamic sanitizer can report.  The static checker
#: (:mod:`repro.analysis.static_check`) proves the first four without
#: running the design; ``forced-write`` and ``silent-op`` have static
#: counterparts of the same name.
HAZARD_RULES = (
    "write-write",
    "read-after-staged-write",
    "cross-pe-write",
    "non-neighbor-link",
    "forced-write",
    "silent-op",
)

#: Acting-scope marker for array-level controller code (``scope=None``).
#: Kept distinct from any PE index so "controller staged, controller
#: read back" is still a same-scope read-after-staged-write.
_ARRAY_SCOPE = "array"


@dataclasses.dataclass(frozen=True)
class Hazard:
    """One recorded discipline violation.

    Attributes
    ----------
    rule:
        One of :data:`HAZARD_RULES`.
    tick:
        Machine tick (1-based) the violation occurred in.
    pe:
        Acting PE index at the time, or ``-1`` for array-scope code.
    owner:
        Owning PE of the register involved, or ``-1`` for free-standing
        registers (and for ``silent-op``, where ``pe`` is the culprit).
    reg:
        Register name (``"P3.ACC"`` style), or ``""`` when the hazard is
        not about a single register.
    detail:
        Human-readable one-liner with the specifics.
    """

    rule: str
    tick: int
    pe: int
    owner: int
    reg: str
    detail: str

    def as_dict(self) -> dict[str, Any]:
        return dataclasses.asdict(self)


class HazardError(SystolicError):
    """A strict-mode run finished with a non-empty hazard report.

    Raised by :meth:`HazardSanitizer.finish` (``mode="raise"``) *after*
    the run completed, carrying every collected :class:`Hazard` in
    :attr:`report`.
    """

    def __init__(self, design: str, report: tuple[Hazard, ...]):
        self.design = design
        self.report = report
        counts: dict[str, int] = {}
        for h in report:
            counts[h.rule] = counts.get(h.rule, 0) + 1
        summary = ", ".join(f"{rule}×{n}" for rule, n in sorted(counts.items()))
        lines = [
            f"strict run of {design!r} recorded {len(report)} hazard(s): {summary}"
        ]
        for h in report[:8]:
            lines.append(f"  tick {h.tick} pe {h.pe}: [{h.rule}] {h.detail}")
        if len(report) > 8:
            lines.append(f"  … and {len(report) - 8} more")
        super().__init__("\n".join(lines))

    def __reduce__(self) -> tuple[type, tuple[str, tuple[Hazard, ...]]]:
        # Default exception pickling replays ``Cls(*args)``, but args
        # holds the rendered message — a strict failure crossing a
        # process-pool boundary would arrive as a TypeError without this.
        return (HazardError, (self.design, self.report))


class HazardSanitizer:
    """Register monitor implementing the dynamic discipline rules.

    One sanitizer instance serves one machine run.  The fabric calls the
    ``on_*`` hooks; designs only ever touch :attr:`scope` indirectly via
    ``machine.enter_pe``/``machine.exit_pe``.

    Parameters
    ----------
    mode:
        ``"raise"`` (default) raises :class:`HazardError` at finalize
        when the report is non-empty; ``"record"`` only collects.
    """

    def __init__(self, mode: str = "raise"):
        if mode not in ("raise", "record"):
            raise SystolicError(f"unknown sanitizer mode {mode!r}")
        self.mode = mode
        #: Acting PE index, or ``None`` for array-scope controller code.
        self.scope: int | None = None
        self.report: list[Hazard] = []
        self._machine: SystolicMachine | None = None
        self._injector_depth = 0
        self._emitted: set[int] = set()

    # -- machine wiring --------------------------------------------------
    def attach(self, machine: SystolicMachine) -> None:
        """Bind to ``machine`` (called from ``SystolicMachine.__init__``)."""
        if self._machine is not None and self._machine is not machine:
            raise SystolicError(
                "a HazardSanitizer serves one machine; build a fresh one"
            )
        self._machine = machine

    def enter_injector(self) -> None:
        """Fault-injector hook entry: exempt traffic until exit."""
        self._injector_depth += 1

    def exit_injector(self) -> None:
        self._injector_depth -= 1

    @property
    def in_injector(self) -> bool:
        return self._injector_depth > 0

    # -- recording -------------------------------------------------------
    def _record(self, rule: str, reg: Register | None, detail: str) -> None:
        machine = self._machine
        tick = machine.tick if machine is not None else 0
        pe = -1 if self.scope is None else self.scope
        owner = -1
        name = ""
        if reg is not None:
            owner = -1 if reg.owner is None else reg.owner
            name = reg.name
        self.report.append(
            Hazard(rule=rule, tick=tick, pe=pe, owner=owner, reg=name,
                   detail=detail)
        )
        if machine is not None:
            machine.emit("hazard", pe, f"{rule}:{name or detail}")

    def _acting(self) -> Any:
        return _ARRAY_SCOPE if self.scope is None else self.scope

    # -- register hooks --------------------------------------------------
    def on_read(self, reg: Register) -> None:
        if self._injector_depth:
            return
        if reg.pending and reg._staged_scope == self._acting():
            self._record(
                "read-after-staged-write", reg,
                f"{reg.name} read while its own staged write is pending; "
                "the read returns pre-tick state (stale)",
            )
        scope = self.scope
        if (
            scope is not None
            and reg.owner is not None
            and reg.owner != scope
            and self._machine is not None
            and not self._machine.neighbors(scope, reg.owner)
        ):
            self._record(
                "non-neighbor-link", reg,
                f"PE {scope} read {reg.name} owned by PE {reg.owner}, "
                f"not adjacent under topology {self._machine.topology!r}",
            )

    def on_set(self, reg: Register, *, double: bool) -> None:
        if self._injector_depth:
            reg._staged_scope = self._acting()
            return
        if double:
            self._record(
                "write-write", reg,
                f"{reg.name} driven twice in one tick "
                f"(earlier drive by scope {reg._staged_scope!r}); "
                "last write wins",
            )
        scope = self.scope
        if scope is not None and reg.owner is not None and reg.owner != scope:
            self._record(
                "cross-pe-write", reg,
                f"PE {scope} wrote {reg.name} owned by PE {reg.owner}; "
                "systolic PEs drive only their own registers",
            )
        reg._staged_scope = self._acting()

    def on_force(self, reg: Register) -> None:
        if self._injector_depth:
            return
        self._record(
            "forced-write", reg,
            f"{reg.name} forced outside the fault injector's latch hooks, "
            "bypassing the clock",
        )

    def on_cancel(self, reg: Register) -> None:
        if self._injector_depth:
            return
        self._record(
            "forced-write", reg,
            f"staged write to {reg.name} cancelled outside the fault "
            "injector's latch hooks",
        )

    # -- machine hooks ---------------------------------------------------
    def on_emit(self, pe: int) -> None:
        """A cell event (op/shift/broadcast) was emitted for PE ``pe``."""
        self._emitted.add(pe)

    def on_end_tick(self, machine: SystolicMachine, *, advance: bool) -> None:
        """Clock edge: run the per-tick ``silent-op`` check, reset state.

        Only counted ticks (``advance=True``) with an active trace bus
        are checked: the rule is "no un-emitted state changes *under
        tracing*", and latch-only control edges (Fig. 3's MOVE) are not
        iteration slots.
        """
        if advance and machine.bus.active:
            for pe in machine.pes:
                if pe._busy_this_tick and pe.index not in self._emitted:
                    saved, self.scope = self.scope, pe.index
                    self._record(
                        "silent-op", None,
                        f"PE {pe.index} counted work at tick {machine.tick} "
                        "but emitted no op/shift/broadcast event while "
                        "tracing is on",
                    )
                    self.scope = saved
        if advance:
            self._emitted.clear()

    def finish(self, machine: SystolicMachine) -> None:
        """End of run: raise in ``"raise"`` mode if hazards were recorded."""
        if self.report and self.mode == "raise":
            raise HazardError(machine.design, tuple(self.report))

    # -- introspection ---------------------------------------------------
    def counts(self) -> dict[str, int]:
        """Hazard counts by rule (only rules that occurred)."""
        out: dict[str, int] = {}
        for h in self.report:
            out[h.rule] = out.get(h.rule, 0) + 1
        return out
