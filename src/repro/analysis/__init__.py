"""Static and dynamic discipline checking for systolic array designs.

The paper's correctness arguments (Figs. 3-5, eq. 9, Thms. 1-2) assume a
strict systolic discipline: each PE reads only *latched* neighbour state,
drives each register at most once per tick, and communicates only over
the fixed links the design declares.  Nothing in the RTL fabric enforces
that by construction — idempotent semiring reductions (MIN/+) happily
mask an accidental same-tick read or a double drive — so this package
closes the gap three ways:

* :mod:`repro.analysis.hazards` — a **dynamic hazard sanitizer**
  (:class:`~repro.analysis.hazards.HazardSanitizer`) threaded through
  :class:`repro.systolic.fabric.SystolicMachine` when ``strict=True``.
  It observes every register read/stage/force during a run and reports
  typed :class:`~repro.analysis.hazards.Hazard` records.
* :mod:`repro.analysis.static_check` — an **AST design checker** that
  proves neighbour-only topology, single-writer-per-register and
  latch-before-read ordering for a design's step functions without
  running them, plus repo-wide fabric-idiom lint rules.
* :mod:`repro.analysis.lint` — the ``python -m repro lint`` driver:
  runs the static checker over a source tree, optionally shells out to
  ``ruff``/``mypy`` when available, and writes a machine-readable JSON
  report for CI.
"""

from .hazards import (
    HAZARD_RULES,
    Hazard,
    HazardError,
    HazardSanitizer,
)
from .lint import LintReport, run_lint
from .static_check import StaticFinding, check_file, check_source

__all__ = [
    "HAZARD_RULES",
    "Hazard",
    "HazardError",
    "HazardSanitizer",
    "StaticFinding",
    "check_file",
    "check_source",
    "LintReport",
    "run_lint",
]
