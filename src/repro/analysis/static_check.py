"""AST-based static checker for systolic designs and fabric idioms.

Two layers of rules run over a Python source file:

**Design rules** — active inside *PE loops* (loops whose body acts as one
PE at a time), they prove the discipline the dynamic sanitizer
(:mod:`repro.analysis.hazards`) checks at runtime, without running the
design:

* ``non-neighbor-link`` — a PE-scoped *read* of another PE's register at
  an offset the module's declared topology does not link (``line``:
  ``±1`` on the chain; ``grid``: one step on one axis; ``complete``:
  anything goes).
* ``cross-pe-write`` — a PE-scoped *write* to a register at a nonzero
  (or unresolvable) offset; systolic PEs drive only their own registers.
* ``write-write`` — the same register staged twice on one straight-line
  path with no latch (``machine.end_tick()`` / ``machine.latch()``)
  between the writes.
* ``read-after-staged-write`` — a register read on a path after its own
  staged write and before the latch; the read returns stale pre-tick
  state.

**Idiom rules** — active everywhere (repo-wide fabric discipline):

* ``register-internals`` — touching ``Register`` internals
  (``._current`` / ``._next`` / ``._dirty`` / ``._staged_scope``)
  outside the fabric itself.
* ``latch-bypass`` — calling ``.end_tick()`` / ``.latch()`` on anything
  but the machine (per-PE latching desynchronizes the array clock).
* ``silent-op`` — a function that calls ``.count_op(`` but never
  ``.emit(``: under tracing its state changes are invisible to every
  telemetry sink.
* ``forced-write`` — a ``.force(`` call outside :mod:`repro.faults`.
* ``bare-allow`` — a suppression comment with no justification text.

Suppressions
------------
A finding on line *L* is suppressed by a comment on line *L* or *L-1*::

    pe["M"].value  # systolic: allow(non-neighbor-link) broadcast bus, Sec. 6.2

    # systolic: allow(cross-pe-write, write-write) controller-owned scoreboard
    target["K"].set(v)

The justification text is mandatory (``bare-allow`` otherwise).  A file
containing the pragma ``# systolic: fabric-internal`` is exempt from
``register-internals`` and ``latch-bypass`` — it *is* the
implementation those rules protect.
"""

from __future__ import annotations

import ast
import dataclasses
import re
from pathlib import Path
from typing import Any, Iterable

__all__ = [
    "STATIC_RULES",
    "StaticFinding",
    "check_file",
    "check_source",
    "extract_link_graph",
]

#: Every rule this checker can report.
STATIC_RULES = (
    "write-write",
    "read-after-staged-write",
    "cross-pe-write",
    "non-neighbor-link",
    "forced-write",
    "silent-op",
    "register-internals",
    "latch-bypass",
    "bare-allow",
)

#: ``Register`` attributes nothing outside the fabric may touch.
_REGISTER_INTERNALS = frozenset(
    {"_current", "_next", "_dirty", "_staged_scope"}
)

_ALLOW_RE = re.compile(
    r"#\s*systolic:\s*allow\(\s*([a-z\-]+(?:\s*,\s*[a-z\-]+)*)\s*\)\s*(.*)"
)
_PRAGMA_RE = re.compile(r"#\s*systolic:\s*fabric-internal")


@dataclasses.dataclass(frozen=True)
class StaticFinding:
    """One rule violation found in source, with suppression state."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    suppressed: bool = False
    justification: str = ""

    def as_dict(self) -> dict[str, Any]:
        return dataclasses.asdict(self)

    def __str__(self) -> str:
        tag = " (suppressed)" if self.suppressed else ""
        return f"{self.path}:{self.line}:{self.col}: [{self.rule}]{tag} {self.message}"


# ----------------------------------------------------------------------
# Small AST helpers
# ----------------------------------------------------------------------


def _dotted(node: ast.AST) -> str:
    """Best-effort dotted name of an expression (``machine.pes`` …)."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = _dotted(node.value)
        return f"{base}.{node.attr}" if base else node.attr
    return ""


def _machine_like(node: ast.AST) -> bool:
    """Heuristic: does this expression denote the machine (or self)?"""
    name = _dotted(node)
    if not name:
        return False
    last = name.rsplit(".", 1)[-1]
    return last in ("self",) or "machine" in last


def _is_pes_expr(node: ast.AST) -> bool:
    """Does this expression denote the PE list (``pes`` / ``machine.pes``)?"""
    name = _dotted(node)
    last = name.rsplit(".", 1)[-1] if name else ""
    return last in ("pes", "pe_list", "pe_row", "row_pes")


def _const_int(node: ast.AST) -> int | None:
    if isinstance(node, ast.Constant) and isinstance(node.value, int):
        return node.value
    if (
        isinstance(node, ast.UnaryOp)
        and isinstance(node.op, ast.USub)
        and isinstance(node.operand, ast.Constant)
        and isinstance(node.operand.value, int)
    ):
        return -node.operand.value
    return None


# Offset of a subscript index relative to the loop axes.
# int  -> resolved offset from the axis variable
# None -> unresolvable (opaque index)
def _axis_offset(index: ast.AST, axes: dict[str, int]) -> int | None:
    if isinstance(index, ast.Name) and index.id in axes:
        return 0
    if isinstance(index, ast.BinOp) and isinstance(index.op, (ast.Add, ast.Sub)):
        left, right = index.left, index.right
        if isinstance(left, ast.Name) and left.id in axes:
            k = _const_int(right)
            if k is not None:
                return k if isinstance(index.op, ast.Add) else -k
        if (
            isinstance(index.op, ast.Add)
            and isinstance(right, ast.Name)
            and right.id in axes
        ):
            k = _const_int(left)
            if k is not None:
                return k
    return None


# ----------------------------------------------------------------------
# The checker
# ----------------------------------------------------------------------


class _Checker:
    def __init__(self, source: str, path: str):
        self.source = source
        self.path = path
        self.findings: list[StaticFinding] = []
        self.link_graph: list[dict[str, Any]] = []
        self.lines = source.splitlines()
        # line -> (rules, justification) for every allow() comment
        self.allows: dict[int, tuple[frozenset[str], str]] = {}
        self.fabric_internal = False
        for lineno, text in enumerate(self.lines, start=1):
            if _PRAGMA_RE.search(text):
                self.fabric_internal = True
            m = _ALLOW_RE.search(text)
            if m:
                rules = frozenset(r.strip() for r in m.group(1).split(","))
                self.allows[lineno] = (rules, m.group(2).strip())
        self.topology: Any = "line"

    # -- reporting -------------------------------------------------------
    def report(self, rule: str, node: ast.AST, message: str) -> None:
        line = getattr(node, "lineno", 0)
        col = getattr(node, "col_offset", 0)
        suppressed = False
        justification = ""
        for at in (line, line - 1):
            allow = self.allows.get(at)
            if allow is not None and rule in allow[0]:
                suppressed = True
                justification = allow[1]
                break
        self.findings.append(
            StaticFinding(
                rule=rule,
                path=self.path,
                line=line,
                col=col,
                message=message,
                suppressed=suppressed,
                justification=justification,
            )
        )

    # -- entry -----------------------------------------------------------
    def run(self) -> None:
        try:
            tree = ast.parse(self.source, filename=self.path)
        except SyntaxError as exc:
            self.report(
                "register-internals",
                ast.Module(body=[], type_ignores=[]),
                f"could not parse: {exc}",
            )
            return
        self._detect_topology(tree)
        self._check_bare_allows()
        self._idiom_pass(tree)
        for fn in (
            n for n in ast.walk(tree)
            if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
        ):
            self._design_pass(fn)

    def _check_bare_allows(self) -> None:
        for lineno, (rules, justification) in sorted(self.allows.items()):
            if not justification:
                anchor = ast.Module(body=[], type_ignores=[])
                anchor.lineno = lineno  # type: ignore[attr-defined]
                anchor.col_offset = 0  # type: ignore[attr-defined]
                self.report(
                    "bare-allow",
                    anchor,
                    f"allow({', '.join(sorted(rules))}) without a "
                    "justification; say why the rule does not apply here",
                )

    def _detect_topology(self, tree: ast.Module) -> None:
        """Find the topology the module's machine construction declares.

        Takes the most permissive topology any ``SystolicMachine(...)``
        call in the module declares (``complete`` > ``grid`` > ``line``):
        the static rules must not be stricter than the declared wiring.
        """
        best = "line"
        for node in ast.walk(tree):
            if not (isinstance(node, ast.Call) and _dotted(node.func).endswith(
                "SystolicMachine"
            )):
                continue
            for kw in node.keywords:
                if kw.arg != "topology":
                    continue
                if isinstance(kw.value, ast.Constant) and kw.value.value == "complete":
                    best = "complete"
                elif isinstance(kw.value, ast.Tuple) and best != "complete":
                    elts = kw.value.elts
                    if elts and isinstance(elts[0], ast.Constant) and elts[0].value == "grid":
                        best = "grid"
        self.topology = best

    # -- idiom rules -----------------------------------------------------
    def _idiom_pass(self, tree: ast.Module) -> None:
        in_faults = "faults" in Path(self.path).parts
        for node in ast.walk(tree):
            if isinstance(node, ast.Attribute) and node.attr in _REGISTER_INTERNALS:
                if not self.fabric_internal:
                    self.report(
                        "register-internals",
                        node,
                        f"access to Register internal {node.attr!r}; use the "
                        "public value/set/pending/cancel API",
                    )
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                attr = node.func.attr
                recv = node.func.value
                if attr in ("end_tick", "latch") and not self.fabric_internal:
                    if not _machine_like(recv):
                        self.report(
                            "latch-bypass",
                            node,
                            f"{_dotted(node.func) or attr}() latches outside "
                            "the machine clock; use machine.end_tick() / "
                            "machine.latch() so every PE latches together",
                        )
                if attr == "force" and not in_faults and not self.fabric_internal:
                    self.report(
                        "forced-write",
                        node,
                        f"{_dotted(node.func) or 'force'}() bypasses the "
                        "clock; only the fault layer (repro.faults) forces "
                        "registers",
                    )
        # silent-op: a function that counts work but never emits.
        for fn in (
            n for n in ast.walk(tree)
            if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
        ):
            count_site: ast.AST | None = None
            emits = False
            for node in ast.walk(fn):
                if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                    if node.func.attr == "count_op" and count_site is None:
                        count_site = node
                    if node.func.attr == "emit":
                        emits = True
            if count_site is not None and not emits:
                self.report(
                    "silent-op",
                    count_site,
                    f"function {fn.name!r} calls count_op() but never "
                    "emit(); under tracing its work is invisible to every "
                    "telemetry sink",
                )

    # -- design rules ----------------------------------------------------
    def _design_pass(self, fn: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        reads: set[tuple[str, str]] = set()
        writes: set[str] = set()
        self._scan_block(fn.body, axes={}, aliases={}, staged=set(),
                         reads=reads, writes=writes)
        if reads or writes:
            self.link_graph.append(
                {
                    "function": fn.name,
                    "line": fn.lineno,
                    "reads": sorted([reg, off] for reg, off in reads),
                    "writes": sorted(writes),
                }
            )

    # A "PE loop" establishes axes (loop index vars) and aliases
    # (names bound to the acting PE).  Alias values are offset tuples;
    # () means "the acting PE reached through an opaque index".
    def _scan_block(
        self,
        stmts: Iterable[ast.stmt],
        *,
        axes: dict[str, int],
        aliases: dict[str, tuple[int, ...]],
        staged: set[str],
        reads: set[tuple[str, str]],
        writes: set[str],
    ) -> None:
        for stmt in stmts:
            if isinstance(stmt, ast.For):
                new_axes = dict(axes)
                new_aliases = dict(aliases)
                # for i, pe in enumerate(pes):
                if (
                    isinstance(stmt.target, ast.Tuple)
                    and len(stmt.target.elts) == 2
                    and isinstance(stmt.iter, ast.Call)
                    and _dotted(stmt.iter.func) == "enumerate"
                    and stmt.iter.args
                    and _is_pes_expr(stmt.iter.args[0])
                ):
                    ivar, pevar = stmt.target.elts
                    if isinstance(ivar, ast.Name):
                        new_axes[ivar.id] = len(axes)
                    if isinstance(pevar, ast.Name):
                        new_aliases[pevar.id] = (0,) * max(1, len(new_axes))
                elif isinstance(stmt.target, ast.Name) and _is_pes_expr(stmt.iter):
                    # for pe in pes:  — each iteration acts as one PE
                    new_aliases[stmt.target.id] = (0,)
                elif isinstance(stmt.target, ast.Name):
                    # for i in range(...)  /  for key in <opaque>
                    new_axes[stmt.target.id] = len(axes)
                self._bind_aliases(stmt.body, new_axes, new_aliases)
                self._scan_block(
                    stmt.body, axes=new_axes, aliases=new_aliases,
                    staged=set(), reads=reads, writes=writes,
                )
                if stmt.orelse:
                    self._scan_block(
                        stmt.orelse, axes=axes, aliases=aliases,
                        staged=staged, reads=reads, writes=writes,
                    )
                continue
            if isinstance(stmt, ast.While):
                self._scan_expr(stmt.test, axes, aliases, staged, reads, writes)
                self._scan_block(
                    stmt.body, axes=axes, aliases=aliases, staged=set(),
                    reads=reads, writes=writes,
                )
                continue
            if isinstance(stmt, ast.If):
                self._scan_expr(stmt.test, axes, aliases, staged, reads, writes)
                body_staged = set(staged)
                else_staged = set(staged)
                self._scan_block(
                    stmt.body, axes=axes, aliases=aliases, staged=body_staged,
                    reads=reads, writes=writes,
                )
                self._scan_block(
                    stmt.orelse, axes=axes, aliases=aliases, staged=else_staged,
                    reads=reads, writes=writes,
                )
                # Conservative join: only registers staged on *both* paths
                # stay staged (avoids false write-write positives).
                joined = body_staged & else_staged
                staged.clear()
                staged.update(joined)
                continue
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                # Closures run at call time with their own scope; analyzed
                # as independent functions by _design_pass via ast.walk.
                continue
            if isinstance(stmt, (ast.With,)):
                self._scan_block(
                    stmt.body, axes=axes, aliases=aliases, staged=staged,
                    reads=reads, writes=writes,
                )
                continue
            # Plain statement: walk its expressions in evaluation order.
            for expr in ast.iter_child_nodes(stmt):
                self._scan_expr(expr, axes, aliases, staged, reads, writes)

    def _bind_aliases(
        self,
        body: list[ast.stmt],
        axes: dict[str, int],
        aliases: dict[str, tuple[int, ...]],
    ) -> None:
        """Register ``pe = pes[i]`` / ``pe = pes[i][j]`` / opaque aliases."""
        for stmt in body:
            if not (
                isinstance(stmt, ast.Assign)
                and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Name)
            ):
                continue
            offsets = self._pe_offsets(stmt.value, axes)
            if offsets is not None:
                aliases[stmt.targets[0].id] = offsets

    def _pe_offsets(
        self, node: ast.AST, axes: dict[str, int]
    ) -> tuple[int, ...] | None:
        """Offsets of a ``pes[...]`` (or ``pes[...][...]``) chain.

        Returns a tuple of per-axis offsets, ``()`` for an opaque index
        (the acting PE reached through a lookup table), or ``None`` when
        the expression is not a PE subscript at all.
        """
        chain: list[ast.AST] = []
        cur = node
        while isinstance(cur, ast.Subscript):
            chain.append(cur.slice)
            cur = cur.value
        if not chain or not _is_pes_expr(cur):
            return None
        chain.reverse()
        offsets: list[int] = []
        for index in chain:
            off = _axis_offset(index, axes)
            if off is None:
                return ()  # opaque index: treat as the acting PE itself
            offsets.append(off)
        return tuple(offsets)

    def _scan_expr(
        self,
        node: ast.AST,
        axes: dict[str, int],
        aliases: dict[str, tuple[int, ...]],
        staged: set[str],
        reads: set[tuple[str, str]],
        writes: set[str],
    ) -> None:
        in_pe_loop = bool(aliases) or bool(axes)

        # Latch calls reset the staged-write tracking.
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in ("end_tick", "latch")
            and _machine_like(node.func.value)
        ):
            staged.clear()
            return

        # A .set(...) call on a register expression: arguments are
        # evaluated (read) before the write is staged.
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "set"
        ):
            target = self._register_ref(node.func.value, axes, aliases)
            if target is not None:
                for arg in node.args:
                    self._scan_expr(arg, axes, aliases, staged, reads, writes)
                offsets, regname, key = target
                writes.add(regname)
                if in_pe_loop and any(offsets):
                    self.report(
                        "cross-pe-write",
                        node,
                        f"write to {regname!r} at offset {offsets} from the "
                        "acting PE; systolic PEs drive only their own "
                        "registers",
                    )
                if not any(offsets):
                    if key in staged:
                        self.report(
                            "write-write",
                            node,
                            f"{regname!r} staged twice with no latch between "
                            "the writes (two drivers on one net)",
                        )
                    staged.add(key)
                return

        # A .value read on a register expression.
        if isinstance(node, ast.Attribute) and node.attr == "value":
            target = self._register_ref(node.value, axes, aliases)
            if target is not None:
                offsets, regname, key = target
                reads.add((regname, self._offset_repr(offsets)))
                if not any(offsets) and key in staged:
                    self.report(
                        "read-after-staged-write",
                        node,
                        f"{regname!r} read after its staged write on the "
                        "same path; the read returns stale pre-tick state",
                    )
                if (
                    in_pe_loop
                    and self.topology != "complete"
                    and not self._offsets_linked(offsets)
                ):
                    self.report(
                        "non-neighbor-link",
                        node,
                        f"read of {regname!r} at offset {offsets} is not a "
                        f"neighbor link under topology {self.topology!r}",
                    )
                return

        for child in ast.iter_child_nodes(node):
            self._scan_expr(child, axes, aliases, staged, reads, writes)

    def _offsets_linked(self, offsets: tuple[int, ...]) -> bool:
        """Is a read at these offsets a legal link (self or neighbor)?"""
        return sum(abs(k) for k in offsets) <= 1

    @staticmethod
    def _offset_repr(offsets: tuple[int, ...]) -> str:
        if not offsets:
            return "self"
        if len(offsets) == 1:
            return f"{offsets[0]:+d}" if offsets[0] else "0"
        return "(" + ",".join(str(k) for k in offsets) + ")"

    def _register_ref(
        self,
        node: ast.AST,
        axes: dict[str, int],
        aliases: dict[str, tuple[int, ...]],
    ) -> tuple[tuple[int, ...], str, str] | None:
        """Resolve ``pe["R"]`` / ``pes[i-1]["R"]`` to (offsets, name, key).

        ``key`` identifies the register for staged-write tracking: the
        acting PE's own register keys as ``R@self``; a register reached
        through a non-loop index keys by the index's source text, so
        ``pes[0]["R"]`` and ``pes[1]["R"]`` never collide.
        """
        if not (
            isinstance(node, ast.Subscript)
            and isinstance(node.slice, ast.Constant)
            and isinstance(node.slice.value, str)
        ):
            return None
        regname = node.slice.value
        base = node.value
        if isinstance(base, ast.Name) and base.id in aliases:
            return aliases[base.id], regname, f"{regname}@self"
        offsets = self._pe_offsets(base, axes)
        if offsets is None:
            return None
        if offsets == () and isinstance(base, ast.Subscript):
            key = f"{regname}@{ast.unparse(base)}"
        else:
            key = f"{regname}@{self._offset_repr(offsets)}"
        return offsets, regname, key


# ----------------------------------------------------------------------
# Public entry points
# ----------------------------------------------------------------------


def check_source(
    source: str,
    path: str = "<memory>",
    *,
    include_suppressed: bool = False,
) -> list[StaticFinding]:
    """Run every static rule over ``source``.

    Returns active findings; with ``include_suppressed=True`` the
    suppressed ones are included too (marked, with their justification).
    """
    checker = _Checker(source, path)
    checker.run()
    if include_suppressed:
        return checker.findings
    return [f for f in checker.findings if not f.suppressed]


def check_file(
    path: str | Path, *, include_suppressed: bool = False
) -> list[StaticFinding]:
    """Run :func:`check_source` on a file."""
    p = Path(path)
    return check_source(
        p.read_text(encoding="utf-8"), str(p),
        include_suppressed=include_suppressed,
    )


def extract_link_graph(source: str, path: str = "<memory>") -> list[dict[str, Any]]:
    """Per-function register read/write summary (the design's link graph).

    Each entry lists the registers a function reads (with the offset
    from the acting PE: ``"0"``, ``"-1"``, ``"+1"``, ``"(0,-1)"`` …) and
    the registers it writes, proving the neighbor-only wiring claim at
    a glance.
    """
    checker = _Checker(source, path)
    checker.run()
    return checker.link_graph
