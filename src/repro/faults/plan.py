"""Declarative fault plans for the systolic machine core.

A :class:`FaultPlan` names *what goes wrong, where and when* on an array
run, without saying anything about how the simulation executes: each
:class:`FaultSpec` addresses a PE (and usually one of its registers) in
the design's own register vocabulary (``R``/``ACC``/``X``/``Y`` on the
Fig. 3 array, ``PAIR``/``K``/``H`` on Fig. 5, ``C``/``A``/``B`` on the
mesh, ``M`` on the parenthesizer cells, …) and arms one of the supported
fault modes for a tick window:

``transient_flip``
    A single-event upset: at the first clock edge at or after ``tick``
    where the register holds a numeric value, it is perturbed by
    ``delta`` (for the Fig. 5 moving pair, its partial cost ``h`` is
    perturbed).  Fires once.
``stuck_at``
    From the armed tick on, the register reads ``value`` after every
    clock edge, whatever was latched.
``drop_delivery``
    The staged write(s) to the register during the window never arrive:
    a lost shift/feedback delivery.  Transient by default (one tick).
``duplicate_delivery``
    The value latched at the armed tick is forced back into the
    register at the next clock edge, overwriting the fresh delivery —
    the stream stutters and one datum is consumed twice.
``dead_pe``
    From the armed tick on, every register of the PE stops latching:
    the PE is frozen at its last state.
``dead_link``
    From the armed tick on, the named register (the PE-side latch of an
    inter-PE link) stops latching: the link never delivers again.

Plans serialize to/from JSON (``to_dict``/``from_dict`` and the file
helpers), so fault campaigns are reproducible artifacts;
:func:`random_plan` draws seeded plans against a design's geometry.

See ``docs/fault_tolerance.md`` for the fault model and its
detectability guarantees.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
from typing import Any, Iterable, Sequence

import numpy as np

__all__ = [
    "FAULT_MODES",
    "TRANSIENT_MODES",
    "PERSISTENT_MODES",
    "FaultPlanError",
    "FaultSpec",
    "FaultPlan",
    "random_plan",
]

#: Every supported fault mode.
FAULT_MODES = (
    "transient_flip",
    "stuck_at",
    "drop_delivery",
    "duplicate_delivery",
    "dead_pe",
    "dead_link",
)

#: Modes that fire once (or for one bounded window) and never recur on a
#: re-run — the faults a retry-with-reseed recovers from.
TRANSIENT_MODES = frozenset({"transient_flip", "drop_delivery", "duplicate_delivery"})

#: Modes that model broken hardware: they recur on every re-run and need
#: fencing (spare-PE remap) rather than retries.
PERSISTENT_MODES = frozenset({"stuck_at", "dead_pe", "dead_link"})

#: Default perturbation applied by ``transient_flip`` (a large odd prime
#: offset, so min-plus ties cannot silently re-absorb the flip).
DEFAULT_DELTA = 97.0


class FaultPlanError(ValueError):
    """Raised for malformed fault specs, plans, or plan files."""


@dataclasses.dataclass(frozen=True)
class FaultSpec:
    """One declarative fault: mode + per-design address + tick window.

    ``tick`` is 1-based (the machine's iteration numbering); the fault
    is armed for ``duration`` ticks starting there (``None`` = until the
    end of the run, the default for the persistent modes).  ``reg`` is
    required for the register-addressed modes and ignored by
    ``dead_pe`` (which freezes every register of the PE).
    """

    mode: str
    pe: int
    reg: str | None = None
    tick: int = 1
    duration: int | None = None
    delta: float = DEFAULT_DELTA
    value: float | None = None

    def __post_init__(self) -> None:
        if self.mode not in FAULT_MODES:
            raise FaultPlanError(
                f"unknown fault mode {self.mode!r}; expected one of {FAULT_MODES}"
            )
        if self.pe < 0:
            raise FaultPlanError(f"fault PE index must be nonnegative, got {self.pe}")
        if self.tick < 1:
            raise FaultPlanError(f"fault tick is 1-based, got {self.tick}")
        if self.duration is not None and self.duration < 1:
            raise FaultPlanError(f"fault duration must be >= 1, got {self.duration}")
        if self.mode == "stuck_at" and self.value is None:
            raise FaultPlanError("stuck_at faults need an explicit `value`")
        if self.mode in ("stuck_at", "dead_link", "drop_delivery",
                         "duplicate_delivery", "transient_flip") and self.reg is None:
            raise FaultPlanError(f"{self.mode} faults need a register name")

    @property
    def transient(self) -> bool:
        """True for faults a retry-with-reseed clears."""
        return self.mode in TRANSIENT_MODES

    def window(self) -> tuple[int, float]:
        """The armed tick window as ``(first, last)`` (last may be +inf)."""
        if self.duration is None:
            if self.mode in TRANSIENT_MODES:
                return (self.tick, self.tick)  # transients default to one tick
            return (self.tick, float("inf"))
        return (self.tick, self.tick + self.duration - 1)

    def armed_at(self, tick: int) -> bool:
        """Whether the fault is armed during machine tick ``tick``."""
        first, last = self.window()
        return first <= tick <= last

    def to_dict(self) -> dict[str, Any]:
        out = dataclasses.asdict(self)
        return {k: v for k, v in out.items() if v is not None}

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "FaultSpec":
        if not isinstance(data, dict):
            raise FaultPlanError(f"fault spec must be a dict, got {type(data).__name__}")
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise FaultPlanError(f"unknown fault-spec keys {sorted(unknown)}")
        if "mode" not in data or "pe" not in data:
            raise FaultPlanError("fault spec needs at least `mode` and `pe`")
        kwargs = dict(data)
        kwargs["pe"] = int(kwargs["pe"])
        if "tick" in kwargs:
            kwargs["tick"] = int(kwargs["tick"])
        if "duration" in kwargs and kwargs["duration"] is not None:
            kwargs["duration"] = int(kwargs["duration"])
        return cls(**kwargs)


@dataclasses.dataclass(frozen=True)
class FaultPlan:
    """An ordered set of fault specs, optionally stamped with its seed.

    ``design`` records which array design the plan addresses (register
    names and PE indices are design vocabulary); ``seed`` records the
    RNG seed a generated plan was drawn with, so campaign artifacts are
    reproducible by construction.
    """

    specs: tuple[FaultSpec, ...] = ()
    design: str | None = None
    seed: int | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "specs", tuple(self.specs))
        for spec in self.specs:
            if not isinstance(spec, FaultSpec):
                raise FaultPlanError(f"plan entries must be FaultSpec, got {spec!r}")

    def __len__(self) -> int:
        return len(self.specs)

    def __iter__(self):
        return iter(self.specs)

    @property
    def persistent_specs(self) -> tuple[FaultSpec, ...]:
        """The broken-hardware subset (recurs on every re-run)."""
        return tuple(s for s in self.specs if not s.transient)

    def drop_transients(self) -> "FaultPlan":
        """The plan a retry faces: transients fired once and are gone."""
        return dataclasses.replace(self, specs=self.persistent_specs)

    def without_pe(self, pe: int) -> "FaultPlan":
        """The plan after fencing PE ``pe`` (spare-PE remap)."""
        return dataclasses.replace(
            self, specs=tuple(s for s in self.specs if s.pe != pe)
        )

    def dead_pes(self) -> tuple[int, ...]:
        """PEs a persistent fault targets (candidates for fencing)."""
        return tuple(sorted({s.pe for s in self.specs if not s.transient}))

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "kind": "fault_plan",
            "specs": [s.to_dict() for s in self.specs],
        }
        if self.design is not None:
            out["design"] = self.design
        if self.seed is not None:
            out["seed"] = self.seed
        return out

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "FaultPlan":
        if not isinstance(data, dict) or data.get("kind") != "fault_plan":
            raise FaultPlanError(
                f"not a fault-plan dict: kind={data.get('kind') if isinstance(data, dict) else data!r}"
            )
        specs = data.get("specs", [])
        if not isinstance(specs, list):
            raise FaultPlanError("fault-plan `specs` must be a list")
        return cls(
            specs=tuple(FaultSpec.from_dict(s) for s in specs),
            design=data.get("design"),
            seed=data.get("seed"),
        )

    def save(self, path: str | pathlib.Path) -> None:
        """Write the plan to ``path`` as JSON."""
        pathlib.Path(path).write_text(json.dumps(self.to_dict(), indent=2) + "\n")

    @classmethod
    def load(cls, path: str | pathlib.Path) -> "FaultPlan":
        """Read a plan written by :meth:`save`.

        Raises :class:`FaultPlanError` for unreadable or malformed
        files (including syntactically broken JSON), never ``KeyError``.
        """
        try:
            text = pathlib.Path(path).read_text()
        except OSError as exc:
            raise FaultPlanError(f"cannot read fault plan {path}: {exc}") from exc
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise FaultPlanError(f"fault plan {path} is not valid JSON: {exc}") from exc
        return cls.from_dict(data)


def random_plan(
    rng: np.random.Generator,
    *,
    design: str,
    num_pes: int,
    registers: Sequence[str],
    horizon: int,
    n_faults: int = 1,
    modes: Iterable[str] = FAULT_MODES,
    seed: int | None = None,
) -> FaultPlan:
    """Draw a seeded random plan against one design's geometry.

    ``registers`` is the design's register vocabulary, ``horizon`` the
    schedule length in ticks (faults are armed uniformly inside it).
    Stuck-at values are drawn as small nonnegative costs; transient
    flips use the default ``delta``.
    """
    modes = tuple(modes)
    if not modes:
        raise FaultPlanError("need at least one fault mode")
    for mode in modes:
        if mode not in FAULT_MODES:
            raise FaultPlanError(f"unknown fault mode {mode!r}")
    if num_pes < 1 or horizon < 1:
        raise FaultPlanError("num_pes and horizon must be positive")
    registers = tuple(registers)
    if not registers:
        raise FaultPlanError("need at least one register name")
    specs = []
    for _ in range(n_faults):
        mode = modes[int(rng.integers(0, len(modes)))]
        pe = int(rng.integers(0, num_pes))
        reg = registers[int(rng.integers(0, len(registers)))]
        tick = int(rng.integers(1, horizon + 1))
        specs.append(
            FaultSpec(
                mode=mode,
                pe=pe,
                reg=None if mode == "dead_pe" else reg,
                tick=tick,
                value=float(rng.integers(0, 50)) if mode == "stuck_at" else None,
            )
        )
    return FaultPlan(specs=tuple(specs), design=design, seed=seed)
