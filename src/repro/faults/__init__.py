"""Fault injection, ABFT detection, and degraded-mode recovery.

The paper's arrays are lock-step machines with no control flow to hide
behind: a corrupted register either changes the answer or it does not,
and semiring algebra says which.  This package exploits that:

* :mod:`~repro.faults.plan` — declarative, serializable fault plans
  (transient flips, stuck-at, dropped/duplicated deliveries, dead
  PEs/links) with seeded random generation;
* :mod:`~repro.faults.injector` — the machine-core hook that applies a
  plan inside the :class:`~repro.systolic.fabric.SystolicMachine` tick
  loop and narrates every mutation as a ``fault`` trace event;
* :mod:`~repro.faults.detectors` — semiring checksum (ABFT) equations,
  range/invariant checks, and the crash-as-detection contract;
* :mod:`~repro.faults.harness` — per-design binding of instance,
  detectors, sequential shadow oracle, and the spare-PE degraded model;
* :mod:`~repro.faults.recovery` — fail-fast / warn / retry / spare
  policies and seeded campaign aggregation.

See ``docs/fault_tolerance.md`` for the full design narrative.
"""

from .detectors import (
    Detection,
    FaultDetected,
    abft_matmul,
    abft_matvec,
    bounds_matvec,
    traceback_in_range,
    values_match,
)
from .harness import (
    DESIGNS,
    BroadcastHarness,
    DegradedEstimate,
    DesignHarness,
    FeedbackHarness,
    MeshHarness,
    ParenHarness,
    PipelinedHarness,
    make_harness,
)
from .injector import FaultInjector, InjectedFault
from .plan import (
    FAULT_MODES,
    PERSISTENT_MODES,
    TRANSIENT_MODES,
    FaultPlan,
    FaultPlanError,
    FaultSpec,
    random_plan,
)
from .recovery import (
    OUTCOMES,
    POLICIES,
    CampaignReport,
    FaultRunReport,
    run_campaign,
    run_guarded,
    run_with_recovery,
)

__all__ = [
    "DESIGNS",
    "FAULT_MODES",
    "OUTCOMES",
    "PERSISTENT_MODES",
    "POLICIES",
    "TRANSIENT_MODES",
    "BroadcastHarness",
    "CampaignReport",
    "DegradedEstimate",
    "DesignHarness",
    "Detection",
    "FaultDetected",
    "FaultInjector",
    "FaultPlan",
    "FaultPlanError",
    "FaultRunReport",
    "FaultSpec",
    "FeedbackHarness",
    "InjectedFault",
    "MeshHarness",
    "ParenHarness",
    "PipelinedHarness",
    "abft_matmul",
    "abft_matvec",
    "bounds_matvec",
    "make_harness",
    "random_plan",
    "run_campaign",
    "run_guarded",
    "run_with_recovery",
    "traceback_in_range",
    "values_match",
]
