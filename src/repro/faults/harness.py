"""Per-design fault-campaign harnesses.

A harness binds one concrete problem instance to one systolic array and
exposes the uniform surface the recovery layer and the CLI need:

* ``run(injector=…)`` — execute the instance (RTL whenever an injector
  or sinks are attached);
* ``canonical(result)`` — a JSON-able value capturing everything the
  run is supposed to compute, so "did the fault change the output?" is
  one equality check;
* ``detect(result)`` — the cheap concurrent detectors: semiring
  checksum (ABFT) equations over the observed phase/stage boundaries,
  range checks on traceback pointers, and structural invariants
  (phase chaining, stage-1 all-1̄, cost-table local consistency);
* ``oracle_check(result)`` — the shadow sequential-DP cross-check,
  which is complete (any wrong output is flagged) but costs a full
  recompute;
* ``degraded(dead_pe)`` — the spare-PE model: schedule length and PU
  when the dead PE's work is serialized onto the surviving ``m − 1``,
  reported against the paper's closed-form PU (eq. 9 for the
  Fig. 3/4 arrays, the Fig. 5 expression for the feedback array).

``make_harness`` builds the same random instances as the CLI's design
runner, so campaign results line up with ``python -m repro run``.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Iterable

import numpy as np

from ..core.metrics import eq9_pu
from ..dp import solve_matrix_chain, solve_node_value
from ..semiring import MIN_PLUS, Semiring, chain_product, matmul
from ..systolic import (
    BroadcastMatrixStringArray,
    FeedbackSystolicArray,
    MeshMatrixMultiplier,
    PipelinedMatrixStringArray,
    SystolicParenthesizer,
    feedback_pu,
)
from .detectors import (
    Detection,
    abft_matmul,
    abft_matvec,
    bounds_matvec,
    traceback_in_range,
    values_match,
)
from .plan import FaultPlanError

__all__ = [
    "DESIGNS",
    "DegradedEstimate",
    "DesignHarness",
    "BroadcastHarness",
    "FeedbackHarness",
    "MeshHarness",
    "ParenHarness",
    "PipelinedHarness",
    "make_harness",
]

#: The five array designs a campaign can target (CLI spelling).
DESIGNS = ("pipelined", "broadcast", "feedback", "mesh", "paren")


def _listify(value: Any) -> Any:
    """Nested-list, plain-float form of an array result for canonical dicts."""
    arr = np.asarray(value)
    if arr.ndim == 0:
        return float(arr)
    return [_listify(v) for v in arr]


@dataclasses.dataclass(frozen=True)
class DegradedEstimate:
    """Spare-PE degraded-mode schedule model for one dead PE.

    The dead PE's work is serialized onto the surviving PEs, so the
    schedule stretches by its clean busy-tick count; ``measured_pu`` is
    the resulting utilization of the ``num_pes − 1`` active PEs, and
    ``predicted_pu`` is the paper's closed-form PU for the *healthy*
    array (eq. 9 / Fig. 5), the yardstick the degradation is quoted
    against.  ``None`` prediction means the paper states no closed form
    for the design.
    """

    design: str
    dead_pe: int
    active_pes: int
    iterations: int
    degraded_iterations: int
    measured_pu: float
    clean_pu: float
    predicted_pu: float | None

    def to_dict(self) -> dict[str, Any]:
        return dataclasses.asdict(self)


class DesignHarness:
    """Base harness: geometry, clean-run cache, and the degraded model."""

    design: str = ""
    #: Register names ``random_plan`` should target — the data-plane
    #: registers whose corruption can reach the output.
    registers: tuple[str, ...] = ()

    def __init__(self) -> None:
        self._clean: Any = None

    # -- to be provided by subclasses ----------------------------------
    def run(
        self,
        *,
        injector: object = None,
        sinks: Iterable[Callable[..., None]] = (),
        record_trace: bool = False,
        backend: str | None = None,
        observe: bool | None = None,
    ) -> Any:
        raise NotImplementedError

    def canonical(self, result: Any) -> Any:
        """JSON-able value of everything the run computes."""
        raise NotImplementedError

    def detect(self, result: Any) -> list[Detection]:
        """Run the concurrent (ABFT + invariant) detectors on a result."""
        raise NotImplementedError

    def oracle_check(self, result: Any) -> Detection | None:
        """Shadow sequential-DP cross-check; ``None`` when it agrees."""
        raise NotImplementedError

    def _predicted_pu(self) -> float | None:
        return None

    # -- shared machinery ----------------------------------------------
    def clean_result(self) -> Any:
        """The fault-free reference run (cached; observed, RTL)."""
        if self._clean is None:
            self._clean = self.run(observe=True)
        return self._clean

    @property
    def num_pes(self) -> int:
        return int(self.clean_result().report.num_pes)

    @property
    def horizon(self) -> int:
        """Schedule length in machine ticks — the fault-arming window."""
        return int(self.clean_result().report.wall_ticks)

    def degraded(self, dead_pe: int) -> DegradedEstimate:
        """Spare-PE model: re-run on ``num_pes − 1`` PEs, schedule stretched.

        The surviving array absorbs the dead PE's clean busy ticks as
        extra iterations (its work is replayed serially on a neighbour),
        which is the pessimistic bound the paper's ring/mesh topologies
        admit without rewiring.
        """
        report = self.clean_result().report
        p = int(report.num_pes)
        if not 0 <= dead_pe < p:
            raise FaultPlanError(
                f"dead PE {dead_pe} out of range for {self.design!r} ({p} PEs)"
            )
        if p < 2:
            raise FaultPlanError(f"{self.design!r} has no spare capacity (1 PE)")
        extra = int(report.pe_busy_ticks[dead_pe])
        iterations = int(report.iterations)
        degraded_iterations = iterations + extra
        measured = (
            report.serial_ops / (degraded_iterations * (p - 1))
            if degraded_iterations
            else 0.0
        )
        return DegradedEstimate(
            design=self.design,
            dead_pe=dead_pe,
            active_pes=p - 1,
            iterations=iterations,
            degraded_iterations=degraded_iterations,
            measured_pu=measured,
            clean_pu=report.processor_utilization,
            predicted_pu=self._predicted_pu(),
        )


class _MatrixStringHarness(DesignHarness):
    """Shared detector logic for the Fig. 3/4 matrix-string arrays.

    Phase ``p`` evaluates ``y = M ⊗ x`` with ``M = mats[n_phases−1−p]``
    (the string folds right-to-left); ``phase_values[p]`` is the
    observed ``(x, y)`` boundary pair.
    """

    def __init__(self, mats: list[np.ndarray], semiring: Semiring = MIN_PLUS):
        super().__init__()
        self.sr = semiring
        self.mats = [semiring.asarray(m) for m in mats]

    @property
    def n_phases(self) -> int:
        return len(self.mats) - 1

    def canonical(self, result: Any) -> Any:
        return {"value": _listify(result.value)}

    def detect(self, result: Any) -> list[Detection]:
        sr = self.sr
        out: list[Detection] = []
        pv = result.phase_values
        if not pv:
            return out
        if len(pv) != self.n_phases:
            out.append(
                Detection(
                    detector="invariant",
                    message=f"observed {len(pv)} phases, expected {self.n_phases}",
                )
            )
            return out
        sink = np.asarray(self.mats[-1]).reshape(-1)
        for p, (x, y) in enumerate(pv):
            x = np.asarray(x).reshape(-1)
            y = np.asarray(y).reshape(-1)
            mat = self.mats[self.n_phases - 1 - p]
            # Chaining: each phase must consume exactly what the
            # previous one produced (catches corrupted shift delivery).
            prev = sink if p == 0 else np.asarray(pv[p - 1][1]).reshape(-1)
            if x.shape != prev.shape or not values_match(x, prev):
                out.append(
                    Detection(
                        detector="invariant",
                        message="phase input differs from previous phase output",
                        phase=p,
                    )
                )
            d = abft_matvec(sr, mat, x, y, phase=p)
            if d is not None:
                out.append(d)
            d = bounds_matvec(sr, mat, x, y, phase=p)
            if d is not None:
                out.append(d)
        final = np.asarray(pv[-1][1]).reshape(-1)
        value = np.asarray(result.value).reshape(-1)
        if final.shape != value.shape or not values_match(final, value):
            out.append(
                Detection(
                    detector="invariant",
                    message="drained result differs from last phase output",
                    phase=self.n_phases - 1,
                )
            )
        return out

    def oracle_check(self, result: Any) -> Detection | None:
        expected = np.asarray(chain_product(self.sr, self.mats)).reshape(-1)
        got = np.asarray(result.value).reshape(-1)
        if expected.shape != got.shape or not values_match(expected, got):
            return Detection(
                detector="oracle",
                message=(
                    f"chain product mismatch: expected {expected.tolist()}, "
                    f"got {got.tolist()}"
                ),
            )
        return None

    def _predicted_pu(self) -> float | None:
        # Eq. (9) holds for the single-source/sink shape; the harness
        # instances use an m×m head operand, for which the same formula
        # with N = len(mats) matrices is the paper's quoted form.
        try:
            return eq9_pu(len(self.mats), int(self.mats[-2].shape[0]))
        except (ValueError, IndexError):
            return None


class PipelinedHarness(_MatrixStringHarness):
    design = "pipelined"
    registers = ("R", "ACC", "X", "Y")

    def __init__(self, mats: list[np.ndarray], semiring: Semiring = MIN_PLUS):
        super().__init__(mats, semiring)
        self.array = PipelinedMatrixStringArray(semiring)

    def run(self, **kw: Any) -> Any:
        return self.array.run(self.mats, **kw)


class BroadcastHarness(_MatrixStringHarness):
    design = "broadcast"
    # ARG exists too but is dead state unless track_decisions is on.
    registers = ("ACC", "S")

    def __init__(self, mats: list[np.ndarray], semiring: Semiring = MIN_PLUS):
        super().__init__(mats, semiring)
        self.array = BroadcastMatrixStringArray(semiring)

    def run(self, **kw: Any) -> Any:
        return self.array.run(self.mats, **kw)


class FeedbackHarness(DesignHarness):
    design = "feedback"
    registers = ("PAIR", "K", "H")

    def __init__(self, problem: Any):
        super().__init__()
        self.problem = problem
        self.sr = problem.semiring
        self.array = FeedbackSystolicArray(problem.semiring)
        self.graph = problem.to_graph()

    def run(self, **kw: Any) -> Any:
        return self.array.run(self.problem, **kw)

    def canonical(self, result: Any) -> Any:
        return {
            "optimum": float(result.optimum),
            "path": [int(v) for v in result.path.nodes],
            "final_stage_values": _listify(result.final_stage_values),
        }

    def detect(self, result: Any) -> list[Detection]:
        sr = self.sr
        problem = self.problem
        m = problem.stage_sizes[0]
        n_stages = problem.num_stages
        out: list[Detection] = []
        sv = result.stage_values
        if sv:
            if len(sv) != n_stages:
                out.append(
                    Detection(
                        detector="invariant",
                        message=f"observed {len(sv)} stages, expected {n_stages}",
                    )
                )
            else:
                if not values_match(sv[0], sr.ones(m)):
                    out.append(
                        Detection(
                            detector="invariant",
                            message="stage-1 values are not all 1̄",
                            phase=1,
                        )
                    )
                for k in range(2, n_stages + 1):
                    # h_k = h_{k−1} ⊗ C (a vec-mat product); ⊗ is
                    # commutative in every shipped semiring, so the
                    # checksum identity is abft_matvec against Cᵀ.
                    c = problem.cost_matrix(k - 2)
                    d = abft_matvec(sr, c.T, sv[k - 2], sv[k - 1], phase=k)
                    if d is not None:
                        out.append(d)
                if not values_match(sv[-1], result.final_stage_values):
                    out.append(
                        Detection(
                            detector="invariant",
                            message="final stage values differ from observed stage sweep",
                            phase=n_stages,
                        )
                    )
        d = traceback_in_range(result.path.nodes, m, what="path")
        if d is not None:
            out.append(d)
            return out  # path is unusable; skip the recost
        try:
            recost = self.graph.path_cost(result.path.nodes)
        except Exception as exc:  # malformed path shape
            out.append(
                Detection(detector="invariant", message=f"path recost failed: {exc}")
            )
            return out
        if not values_match(recost, result.optimum):
            out.append(
                Detection(
                    detector="invariant",
                    message=(
                        f"traced path recosts to {recost}, "
                        f"array reported {result.optimum}"
                    ),
                )
            )
        return out

    def oracle_check(self, result: Any) -> Detection | None:
        sol = solve_node_value(self.problem)
        if not values_match(sol.optimum, result.optimum):
            return Detection(
                detector="oracle",
                message=(
                    f"optimum mismatch: sequential DP {sol.optimum}, "
                    f"array {result.optimum}"
                ),
            )
        # The full final-stage vector, not just the optimum: idempotent
        # ⊕ masks corrupted non-winning entries from the checksum, but
        # they are still part of the reported output.
        if not values_match(sol.stage_values[-1], result.final_stage_values):
            return Detection(
                detector="oracle",
                message="final stage values differ from sequential DP",
            )
        return None

    def _predicted_pu(self) -> float | None:
        return feedback_pu(self.problem.num_stages, self.problem.stage_sizes[0])


class MeshHarness(DesignHarness):
    design = "mesh"
    registers = ("C", "A", "B")

    def __init__(self, a: np.ndarray, b: np.ndarray, semiring: Semiring = MIN_PLUS):
        super().__init__()
        self.sr = semiring
        self.a = semiring.asarray(a)
        self.b = semiring.asarray(b)
        self.array = MeshMatrixMultiplier(semiring)

    def run(self, *, observe: bool | None = None, **kw: Any) -> Any:
        # The mesh has no phase structure to observe; the final product
        # itself is the ABFT input.
        return self.array.run(self.a, self.b, **kw)

    def canonical(self, result: Any) -> Any:
        return {"value": _listify(result.value)}

    def detect(self, result: Any) -> list[Detection]:
        d = abft_matmul(self.sr, self.a, self.b, result.value)
        return [d] if d is not None else []

    def oracle_check(self, result: Any) -> Detection | None:
        expected = matmul(self.sr, self.a, self.b)
        if not values_match(expected, result.value):
            return Detection(detector="oracle", message="matmul mismatch vs reference")
        return None


class ParenHarness(DesignHarness):
    design = "paren"
    registers = ("M",)

    def __init__(self, dims: tuple[int, ...]):
        super().__init__()
        self.dims = tuple(int(d) for d in dims)
        self.array = SystolicParenthesizer()

    def run(self, **kw: Any) -> Any:
        return self.array.run(self.dims, **kw)

    def canonical(self, result: Any) -> Any:
        return {
            "cost": int(result.order.cost),
            "expression": repr(result.order.expression),
        }

    def detect(self, result: Any) -> list[Detection]:
        out: list[Detection] = []
        table = result.cost_table
        n = len(self.dims) - 1
        if table is None:
            return out
        r = self.dims

        def cell(i: int, j: int) -> float:
            return 0.0 if i == j else table.get((i, j), float("inf"))

        for (i, j), cost in sorted(table.items()):
            if not np.isfinite(cost):
                out.append(
                    Detection(
                        detector="invariant",
                        message=f"non-finite cost at subproblem {(i, j)}",
                        pe=None,
                    )
                )
                continue
            best = min(
                cell(i, k) + cell(k + 1, j) + float(r[i - 1]) * r[k] * r[j]
                for k in range(i, j)
            )
            # Local consistency: every cell must equal the fold of its
            # own table — a cheap recompute over already-latched state.
            if abs(cost - best) > 1e-6:
                out.append(
                    Detection(
                        detector="recompute",
                        message=(
                            f"cost table cell {(i, j)} holds {cost}, "
                            f"fold of the table gives {best}"
                        ),
                    )
                )
        if n > 1 and abs(cell(1, n) - float(result.order.cost)) > 1e-6:
            out.append(
                Detection(
                    detector="invariant",
                    message="reported chain cost differs from table root",
                )
            )
        return out

    def oracle_check(self, result: Any) -> Detection | None:
        expected = solve_matrix_chain(self.dims)
        if expected.cost != result.order.cost:
            return Detection(
                detector="oracle",
                message=(
                    f"chain cost mismatch: sequential DP {expected.cost}, "
                    f"array {result.order.cost}"
                ),
            )
        return None


def make_harness(
    design: str,
    rng: np.random.Generator,
    *,
    n: int = 8,
    m: int = 5,
) -> DesignHarness:
    """Build a random instance for ``design`` (same shapes as the CLI).

    ``n``/``m`` mean what they mean to ``python -m repro run``: string
    length / width for the matrix-string arrays, stages / values per
    stage for the feedback array, operand shape for the mesh, chain
    length for the parenthesizer.
    """
    if design in ("pipelined", "broadcast"):
        mats = [rng.integers(0, 100, size=(m, m)).astype(float) for _ in range(n - 1)]
        mats.append(rng.integers(0, 100, size=(m, 1)).astype(float))
        cls = PipelinedHarness if design == "pipelined" else BroadcastHarness
        return cls(mats)
    if design == "feedback":
        from ..graphs import traffic_light_problem

        return FeedbackHarness(traffic_light_problem(rng, n, m))
    if design == "mesh":
        a = rng.integers(0, 100, size=(n, m)).astype(float)
        b = rng.integers(0, 100, size=(m, n)).astype(float)
        return MeshHarness(a, b)
    if design == "paren":
        dims = tuple(int(d) for d in rng.integers(2, 50, size=n + 1))
        return ParenHarness(dims)
    raise FaultPlanError(f"unknown design {design!r} (expected one of {DESIGNS})")
