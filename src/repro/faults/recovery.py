"""Recovery policies, guarded execution, and seeded fault campaigns.

``run_with_recovery`` is the policy engine: it executes one harness
instance under a :class:`~repro.faults.injector.FaultInjector`, runs the
concurrent detectors (with the sequential shadow oracle as the
completeness backstop), and then applies one of four policies:

* ``fail_fast`` — raise :class:`FaultDetected` on the first detection;
* ``warn``      — degrade-and-warn: return the faulty result, flagged;
* ``retry``     — re-run with the transient faults dropped (they fired
  once and do not recur); persistent faults survive a retry and the
  report says so;
* ``spare``     — spare-PE remap: persistent faults are removed as if
  the affected PEs were mapped out to spares, the instance re-runs on
  the surviving PEs, and the report carries the
  :class:`~repro.faults.harness.DegradedEstimate` (measured PU on
  ``m − 1`` PEs next to the paper's eq. 9 / Fig. 5 prediction).

Every stage is narrated on the trace bus: the injector emits ``fault``
events from inside the machine, this module emits ``detect`` and
``recover`` events to the same sinks, so ``MetricsSink`` /
``TimelineSink`` count them with no extra wiring.

``run_campaign`` drives seeded batches of random plans and aggregates
effectiveness / detection / recovery rates per fault mode into both a
:class:`CampaignReport` and the metrics registry
(``repro_faults_injected_total{design,mode}`` and friends).
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Iterable

import numpy as np

from ..systolic.fabric import TraceEvent
from .detectors import Detection, FaultDetected
from .harness import DesignHarness, make_harness
from .injector import FaultInjector
from .plan import FAULT_MODES, FaultPlan, FaultPlanError, random_plan

__all__ = [
    "POLICIES",
    "CampaignReport",
    "FaultRunReport",
    "run_campaign",
    "run_guarded",
    "run_with_recovery",
]

#: Recognized recovery policies, in escalation order.
POLICIES = ("fail_fast", "warn", "retry", "spare")

#: Outcomes a guarded run can end in.
OUTCOMES = ("clean", "detected", "recovered", "degraded", "failed")


def run_guarded(
    harness: DesignHarness,
    *,
    injector: FaultInjector | None = None,
    sinks: Iterable[Callable[[TraceEvent], None]] = (),
    record_trace: bool = False,
) -> tuple[Any, list[Detection]]:
    """Run the harness; convert a crash into a ``crash`` detection.

    Faults can corrupt state into shapes the design never produces
    (a float where a pair was staged, a non-finite chain cost), which
    surfaces as an exception mid-run.  That *is* a detection — the
    machine noticed something impossible — so it is reported as
    ``Detection(detector="crash")`` with a ``None`` result rather than
    propagating.
    """
    try:
        result = harness.run(
            injector=injector, sinks=sinks, record_trace=record_trace
        )
    except Exception as exc:  # noqa: BLE001 — any crash is a detection
        return None, [
            Detection(detector="crash", message=f"{type(exc).__name__}: {exc}")
        ]
    return result, []


def _emit(
    sinks: tuple[Callable[[TraceEvent], None], ...],
    kind: str,
    label: str,
    *,
    pe: int = -1,
) -> None:
    """Deliver a synthetic recovery-layer event to the run's sinks."""
    event = TraceEvent(tick=0, pe=pe, kind=kind, label=label)
    for sink in sinks:
        try:
            sink(event)
        except Exception:  # same isolation contract as the bus itself
            pass


@dataclasses.dataclass(frozen=True)
class FaultRunReport:
    """Outcome of one guarded run of one fault plan."""

    design: str
    policy: str
    outcome: str  # one of OUTCOMES
    attempts: int
    #: Did the first (faulty) attempt change the canonical output?
    effective: bool
    detections: tuple[Detection, ...] = ()
    #: Injections actually performed on the first attempt (dict form).
    injections: tuple[dict[str, Any], ...] = ()
    #: Spare-PE degradation estimates (dict form), ``spare`` policy only.
    degraded: tuple[dict[str, Any], ...] = ()
    plan: dict[str, Any] | None = None

    @property
    def recovered(self) -> bool:
        return self.outcome in ("recovered", "degraded")

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": "fault_run",
            "design": self.design,
            "policy": self.policy,
            "outcome": self.outcome,
            "attempts": self.attempts,
            "effective": self.effective,
            "detections": [d.to_dict() for d in self.detections],
            "injections": list(self.injections),
            "degraded": list(self.degraded),
            "plan": self.plan,
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "FaultRunReport":
        if not isinstance(payload, dict) or payload.get("kind") != "fault_run":
            raise FaultPlanError(
                f"not a fault_run payload: kind={payload.get('kind') if isinstance(payload, dict) else payload!r}"
            )
        try:
            return cls(
                design=str(payload["design"]),
                policy=str(payload["policy"]),
                outcome=str(payload["outcome"]),
                attempts=int(payload["attempts"]),
                effective=bool(payload["effective"]),
                detections=tuple(
                    Detection.from_dict(d) for d in payload.get("detections", [])
                ),
                injections=tuple(payload.get("injections", [])),
                degraded=tuple(payload.get("degraded", [])),
                plan=payload.get("plan"),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise FaultPlanError(f"malformed fault_run payload: {exc}") from exc


def _detect_all(
    harness: DesignHarness, result: Any, *, use_oracle: bool
) -> list[Detection]:
    """Concurrent detectors, then the shadow oracle if they stayed silent."""
    detections = harness.detect(result)
    if use_oracle and not detections:
        verdict = harness.oracle_check(result)
        if verdict is not None:
            detections.append(verdict)
    return detections


def run_with_recovery(
    harness: DesignHarness,
    plan: FaultPlan,
    *,
    policy: str = "retry",
    max_retries: int = 2,
    use_oracle: bool = True,
    sinks: Iterable[Callable[[TraceEvent], None]] = (),
) -> tuple[Any, FaultRunReport]:
    """Run ``plan`` against ``harness`` under a recovery ``policy``.

    Returns ``(result, report)``; ``result`` is the final (possibly
    recovered) run output, or ``None`` when every attempt crashed or
    the outcome is ``failed`` with no usable value.  ``fail_fast``
    raises :class:`FaultDetected` instead of returning.
    """
    if policy not in POLICIES:
        raise FaultPlanError(f"unknown policy {policy!r} (expected one of {POLICIES})")
    sinks = tuple(sinks)
    injector = FaultInjector(plan)
    result, detections = run_guarded(harness, injector=injector, sinks=sinks)
    if result is not None:
        detections.extend(_detect_all(harness, result, use_oracle=use_oracle))
    effective = result is None or harness.canonical(result) != harness.canonical(
        harness.clean_result()
    )
    injections = tuple(inj.to_dict() for inj in injector.injections)

    def report(outcome: str, *, attempts: int, degraded: tuple = ()) -> FaultRunReport:
        return FaultRunReport(
            design=harness.design,
            policy=policy,
            outcome=outcome,
            attempts=attempts,
            effective=effective,
            detections=tuple(detections),
            injections=injections,
            degraded=degraded,
            plan=plan.to_dict(),
        )

    if not detections:
        return result, report("clean", attempts=1)

    for d in detections:
        _emit(sinks, "detect", f"{d.detector}: {d.message}", pe=d.pe if d.pe is not None else -1)
    if policy == "fail_fast":
        raise FaultDetected(detections)
    if policy == "warn":
        return result, report("detected", attempts=1)

    if policy == "retry":
        retry_plan = plan.drop_transients()
        attempts = 1
        for _ in range(max_retries):
            attempts += 1
            retry_result, retry_detections = run_guarded(
                harness, injector=FaultInjector(retry_plan), sinks=sinks
            )
            if retry_result is not None:
                retry_detections.extend(
                    _detect_all(harness, retry_result, use_oracle=use_oracle)
                )
            if not retry_detections:
                _emit(sinks, "recover", f"retry: clean on attempt {attempts}")
                return retry_result, report("recovered", attempts=attempts)
        # Persistent faults survive any number of retries.
        return None, report("failed", attempts=attempts)

    # policy == "spare": map the persistently-faulty PEs out to spares.
    dead = plan.dead_pes() or tuple(
        sorted({spec.pe for spec in plan.persistent_specs})
    )
    spare_plan = plan.drop_transients()
    for pe in dead:
        spare_plan = spare_plan.without_pe(pe)
    degraded = []
    for pe in dead:
        try:
            degraded.append(harness.degraded(pe).to_dict())
        except FaultPlanError:
            pass  # PE index outside this design's geometry: nothing to remap
    spare_result, spare_detections = run_guarded(
        harness, injector=FaultInjector(spare_plan), sinks=sinks
    )
    if spare_result is not None:
        spare_detections.extend(
            _detect_all(harness, spare_result, use_oracle=use_oracle)
        )
    if not spare_detections:
        label = f"spare: remapped PEs {list(dead)}" if dead else "spare: clean re-run"
        _emit(sinks, "recover", label)
        outcome = "degraded" if degraded else "recovered"
        return spare_result, report(outcome, attempts=2, degraded=tuple(degraded))
    return None, report("failed", attempts=2, degraded=tuple(degraded))


@dataclasses.dataclass(frozen=True)
class CampaignReport:
    """Aggregate of a seeded fault campaign on one design."""

    design: str
    policy: str
    seed: int
    trials: int
    faults_injected: int
    effective: int
    detected: int
    recovered: int
    #: Effective faults that no detector flagged — silent corruptions.
    #: The acceptance bar is zero.
    undetected_effective: int
    by_mode: dict[str, dict[str, int]]
    by_detector: dict[str, int]

    @property
    def detection_rate(self) -> float:
        return self.detected / self.effective if self.effective else 1.0

    @property
    def recovery_rate(self) -> float:
        return self.recovered / self.detected if self.detected else 1.0

    def to_dict(self) -> dict[str, Any]:
        out = dataclasses.asdict(self)
        out["kind"] = "fault_campaign"
        out["detection_rate"] = self.detection_rate
        out["recovery_rate"] = self.recovery_rate
        return out

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "CampaignReport":
        if not isinstance(payload, dict) or payload.get("kind") != "fault_campaign":
            raise FaultPlanError("not a fault_campaign payload")
        fields = {f.name for f in dataclasses.fields(cls)}
        try:
            return cls(**{k: v for k, v in payload.items() if k in fields})
        except TypeError as exc:
            raise FaultPlanError(f"malformed fault_campaign payload: {exc}") from exc


def run_campaign(
    design: str | DesignHarness,
    *,
    seed: int = 0,
    trials: int = 100,
    faults_per_trial: int = 1,
    n: int = 6,
    m: int = 4,
    modes: Iterable[str] = FAULT_MODES,
    policy: str = "retry",
    use_oracle: bool = True,
    registry: Any = None,
) -> CampaignReport:
    """Seeded random fault campaign: ``trials`` plans against one instance.

    Each trial draws a fresh random plan (mode, PE, register, tick all
    seeded), runs it under ``policy``, and classifies the outcome.  A
    fault is *effective* when the first attempt's canonical output
    differs from the clean run (or the run crashed); the campaign's
    health criterion is ``undetected_effective == 0`` — with the shadow
    oracle on, every output-corrupting fault must be flagged.

    When a ``registry`` (:class:`repro.telemetry.MetricsRegistry`) is
    given, per-mode counters are recorded there:
    ``repro_faults_injected_total{design,mode}``,
    ``repro_faults_effective_total{design,mode}``,
    ``repro_faults_detected_total{design,detector}`` and
    ``repro_faults_recovered_total{design,policy}``.
    """
    rng = np.random.default_rng(seed)
    harness = (
        make_harness(design, rng, n=n, m=m) if isinstance(design, str) else design
    )
    modes = tuple(modes)
    counters = None
    if registry is not None:
        counters = {
            "injected": registry.counter(
                "repro_faults_injected_total",
                "Faults injected by campaigns",
                ("design", "mode"),
            ),
            "effective": registry.counter(
                "repro_faults_effective_total",
                "Faults that corrupted the canonical output",
                ("design", "mode"),
            ),
            "detected": registry.counter(
                "repro_faults_detected_total",
                "Detections raised, by detector",
                ("design", "detector"),
            ),
            "recovered": registry.counter(
                "repro_faults_recovered_total",
                "Runs recovered to a clean output",
                ("design", "policy"),
            ),
        }

    faults_injected = effective = detected = recovered = silent = 0
    by_mode: dict[str, dict[str, int]] = {
        mode: {"injected": 0, "effective": 0, "detected": 0} for mode in modes
    }
    by_detector: dict[str, int] = {}
    for _ in range(trials):
        plan = random_plan(
            rng,
            design=harness.design,
            num_pes=harness.num_pes,
            registers=harness.registers,
            horizon=harness.horizon,
            n_faults=faults_per_trial,
            modes=modes,
        )
        try:
            _, run_report = run_with_recovery(
                harness, plan, policy=policy, use_oracle=use_oracle
            )
        except FaultDetected as exc:  # fail_fast campaigns still aggregate
            run_report = FaultRunReport(
                design=harness.design,
                policy=policy,
                outcome="detected",
                attempts=1,
                effective=True,
                detections=exc.detections,
                plan=plan.to_dict(),
            )
        mode = plan.specs[0].mode
        faults_injected += len(plan)
        by_mode[mode]["injected"] += len(plan)
        if counters:
            counters["injected"].labels(design=harness.design, mode=mode).inc(
                len(plan)
            )
        if run_report.effective:
            effective += 1
            by_mode[mode]["effective"] += 1
            if counters:
                counters["effective"].labels(design=harness.design, mode=mode).inc()
        if run_report.detections:
            if run_report.effective:
                detected += 1
                by_mode[mode]["detected"] += 1
            for d in run_report.detections:
                by_detector[d.detector] = by_detector.get(d.detector, 0) + 1
                if counters:
                    counters["detected"].labels(
                        design=harness.design, detector=d.detector
                    ).inc()
        elif run_report.effective:
            silent += 1
        if run_report.recovered:
            recovered += 1
            if counters:
                counters["recovered"].labels(
                    design=harness.design, policy=policy
                ).inc()
    return CampaignReport(
        design=harness.design,
        policy=policy,
        seed=seed,
        trials=trials,
        faults_injected=faults_injected,
        effective=effective,
        detected=detected,
        recovered=recovered,
        undetected_effective=silent,
        by_mode=by_mode,
        by_detector=by_detector,
    )
