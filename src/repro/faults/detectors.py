"""Fault detectors: ABFT checksums and semiring invariant checks.

Algorithm-based fault tolerance (Huang & Abraham) protects a matrix
computation with *checksum rows/columns* carried through the same
algebra as the data.  The trick transfers verbatim to semirings: for a
matrix-vector step ``y = M ⊗ x`` over ``(⊕, ⊗)``, right-distributivity
gives

    ⊕_i y_i  =  ⊕_j ( (⊕_i M[i,j]) ⊗ x_j )

so one extra "checksum PE" that holds the ⊕-reduced column vector
``r_j = ⊕_i M[i,j]`` and performs one extra ⊗/⊕ sweep predicts the
⊕-reduction of the whole output.  Over MIN_PLUS this costs one min-plus
dot product per phase — O(m) against the O(m²) it protects.

Detectability limits (documented, by design):

* An idempotent ⊕ (min/max) *masks* raised non-winning elements: a
  corrupted ``M[i,j]`` or ``y_i`` that never wins a ⊕-reduction leaves
  the checksum — and the final answer — unchanged.  Such faults are
  *benign* under the fault model: they cannot affect any output.
* A fault that lowers a value (or corrupts the winning element) changes
  the ⊕-reduction and is caught.
* The checksum localizes nothing; it flags the phase.  Pair it with the
  shadow oracle (:mod:`repro.faults.harness`) for exact completeness:
  any run whose output deviates from the sequential DP is flagged.

The invariant detectors are cheaper still: value-bounds checks from the
cost data (over min-plus, ``y_i`` can never beat the best single step
below the best incoming cost), traceback-pointer range checks, and
monotone accumulation checks.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Any, Iterable, Sequence

import numpy as np

from ..semiring import Semiring, matvec

__all__ = [
    "Detection",
    "FaultDetected",
    "values_match",
    "abft_matvec",
    "abft_matmul",
    "bounds_matvec",
    "traceback_in_range",
]


@dataclasses.dataclass(frozen=True)
class Detection:
    """One detector verdict: which detector fired, where, and why."""

    detector: str
    message: str
    phase: int | None = None
    pe: int | None = None

    def to_dict(self) -> dict[str, Any]:
        out = dataclasses.asdict(self)
        return {k: v for k, v in out.items() if v is not None}

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Detection":
        return cls(
            detector=str(data.get("detector", "unknown")),
            message=str(data.get("message", "")),
            phase=data.get("phase"),
            pe=data.get("pe"),
        )


class FaultDetected(RuntimeError):
    """Raised by the fail-fast recovery policy when detectors fire."""

    def __init__(self, detections: Sequence[Detection]):
        self.detections = tuple(detections)
        lines = "; ".join(d.message for d in self.detections) or "unspecified"
        super().__init__(f"fault detected: {lines}")


def _scalar_eq(a: float, b: float, *, atol: float = 1e-9) -> bool:
    """Equality that treats equal-signed infinities as equal."""
    if math.isinf(a) or math.isinf(b):
        return a == b
    return math.isclose(a, b, rel_tol=1e-9, abs_tol=atol)


def values_match(a: Any, b: Any, *, atol: float = 1e-9) -> bool:
    """Compare outputs (scalars or arrays) with inf-aware tolerance."""
    x = np.asarray(a, dtype=np.float64)
    y = np.asarray(b, dtype=np.float64)
    if x.shape != y.shape:
        return False
    with np.errstate(invalid="ignore"):
        both_inf = np.isinf(x) & np.isinf(y) & (np.sign(x) == np.sign(y))
        close = np.isclose(x, y, rtol=1e-9, atol=atol)
    return bool(np.all(both_inf | close))


def abft_matvec(
    sr: Semiring,
    mat: np.ndarray,
    x: np.ndarray,
    y: np.ndarray,
    *,
    phase: int | None = None,
) -> Detection | None:
    """Checksum check for one matrix-vector phase ``y = M ⊗ x``.

    Computes the column-checksum prediction ``⊕_j r_j ⊗ x_j`` with
    ``r = ⊕-reduce(M, axis=0)`` and compares it to ``⊕-reduce(y)``.
    Returns a :class:`Detection` on mismatch, ``None`` when clean.
    """
    mat = sr.asarray(mat)
    x = sr.asarray(x)
    y = sr.asarray(y)
    checksum_row = sr.add_reduce(mat, axis=0)
    predicted = float(sr.add_reduce(sr.mul(checksum_row, x)))
    observed = float(sr.add_reduce(y))
    if _scalar_eq(predicted, observed):
        return None
    return Detection(
        detector="abft_checksum",
        message=(
            f"checksum mismatch in phase {phase}: "
            f"predicted {predicted!r}, observed {observed!r}"
        ),
        phase=phase,
    )


def abft_matmul(
    sr: Semiring, a: np.ndarray, b: np.ndarray, c: np.ndarray
) -> Detection | None:
    """Row+column checksum check for a full product ``C = A ⊗ B``.

    Column side: ``⊕-reduce(C, axis=0)`` must equal
    ``(⊕-reduce(A, axis=0)) ⊗ B``; row side symmetric through
    ``B ⊗`` the row-reduced vector.  Either mismatch flags the run.
    """
    a = sr.asarray(a)
    b = sr.asarray(b)
    c = sr.asarray(c)
    col_pred = sr.add_reduce(sr.mul(sr.add_reduce(a, axis=0)[:, None], b), axis=0)
    col_obs = sr.add_reduce(c, axis=0)
    if not values_match(col_pred, col_obs):
        return Detection(
            detector="abft_checksum",
            message="column-checksum mismatch in C = A (x) B",
        )
    row_pred = matvec(sr, a, sr.add_reduce(b, axis=1))
    row_obs = sr.add_reduce(c, axis=1)
    if not values_match(row_pred, row_obs):
        return Detection(
            detector="abft_checksum",
            message="row-checksum mismatch in C = A (x) B",
        )
    return None


def bounds_matvec(
    sr: Semiring,
    mat: np.ndarray,
    x: np.ndarray,
    y: np.ndarray,
    *,
    phase: int | None = None,
) -> Detection | None:
    """Arithmetic bounds check for min-plus / max-plus phases.

    Over MIN_PLUS, every output satisfies
    ``min_j M[i,j] + min_j x_j  <=  y_i  <=  max over the finite
    candidates`` — a corrupted cost that undercuts every legal path (the
    classic "phantom shortcut") violates the lower bound even when the
    checksum is recomputed consistently.  Only meaningful for the
    ordered semirings; other semirings return ``None``.
    """
    if sr.name not in ("min-plus", "max-plus"):
        return None
    mat = np.asarray(mat, dtype=np.float64)
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    with np.errstate(invalid="ignore"):
        cand = mat + x[None, :]  # candidate costs y_i could have taken
        cand = np.where(np.isnan(cand), sr.zero, cand)
    lo = np.min(cand, axis=1)
    hi = np.max(cand, axis=1)
    if sr.name == "min-plus":
        bad = (y < lo - 1e-9) | (y > hi + 1e-9)
    else:
        bad = (y > hi + 1e-9) | (y < lo - 1e-9)
    bad &= ~(np.isinf(y) & (np.isinf(lo) | np.isinf(hi)))
    if not np.any(bad):
        return None
    i = int(np.argmax(bad))
    return Detection(
        detector="bounds",
        message=(
            f"phase {phase}: output[{i}]={y[i]!r} outside candidate "
            f"range [{lo[i]!r}, {hi[i]!r}]"
        ),
        phase=phase,
        pe=i,
    )


def traceback_in_range(
    indices: Iterable[Any], limit: int, *, what: str = "traceback"
) -> Detection | None:
    """Check that every traceback pointer is an integer in ``[0, limit)``."""
    for pos, idx in enumerate(indices):
        ok = isinstance(idx, (int, np.integer)) and 0 <= int(idx) < limit
        if not ok:
            return Detection(
                detector="traceback_range",
                message=(
                    f"{what}[{pos}] = {idx!r} outside valid range "
                    f"[0, {limit})"
                ),
                pe=pos,
            )
    return None
