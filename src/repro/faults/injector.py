"""The fault injector: executes a :class:`~repro.faults.plan.FaultPlan`.

A :class:`FaultInjector` is handed to the machine
(``SystolicMachine(..., injector=...)`` — every array design forwards an
``injector=`` keyword) and is invoked around each clock edge:

* ``before_latch`` runs while writes are still *staged*: the delivery
  faults (``drop_delivery``, ``dead_link``, ``dead_pe``) cancel them
  there, so the lost word simply never arrives — exactly the hardware
  failure they model.
* ``after_latch`` runs on freshly latched state: the corruption faults
  (``transient_flip``, ``stuck_at``, ``duplicate_delivery``) overwrite
  register contents there, after the clock edge, which no legal
  ``set``/``latch`` sequence can express.

Every fault that actually takes effect is recorded as an
:class:`InjectedFault` and published as a ``fault`` event on the
machine's trace bus (so :class:`~repro.telemetry.metrics.MetricsSink`
and :class:`~repro.telemetry.timeline.TimelineSink` count faults for
free).  Specs that never match a register — wrong design vocabulary,
PE index past the array, or a window the schedule never reaches — are
reported by :meth:`FaultInjector.inert_specs` instead of failing
silently.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Any

import numpy as np

from .plan import FaultPlan, FaultSpec

__all__ = ["InjectedFault", "FaultInjector"]

#: Sentinel: the targeted value cannot be meaningfully perturbed.
_SKIP = object()


def _perturb(value: Any, delta: float) -> Any:
    """Corrupted version of ``value`` under a transient flip of ``delta``.

    Finite numbers shift by ``delta``; an infinite cost (the semiring
    zero of min-plus/max-plus) is corrupted *to* ``delta`` — a phantom
    finite entry, the nastier upset because it fabricates a path that
    does not exist.  The Fig. 5 moving pair is corrupted in its partial
    cost ``h``.  Values with no numeric payload return :data:`_SKIP`.
    """
    if value is None or isinstance(value, bool):
        return _SKIP
    if isinstance(value, (int, float, np.integer, np.floating)):
        v = float(value)
        if math.isinf(v):
            return delta
        return type(value)(value + delta) if isinstance(value, (int, np.integer)) else v + delta
    if dataclasses.is_dataclass(value) and hasattr(value, "h"):
        flipped = _perturb(value.h, delta)
        if flipped is _SKIP:
            return _SKIP
        return dataclasses.replace(value, h=flipped)
    if isinstance(value, np.ndarray) and value.size and np.issubdtype(value.dtype, np.number):
        out = value.copy()
        flat = out.reshape(-1)
        flipped = _perturb(flat[0].item(), delta)
        if flipped is _SKIP:
            return _SKIP
        flat[0] = flipped
        return out
    return _SKIP


def _differs(a: Any, b: Any) -> bool:
    """Inequality that tolerates arrays and mixed payload types."""
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        try:
            return not np.array_equal(np.asarray(a), np.asarray(b))
        except (TypeError, ValueError):
            return True
    try:
        return bool(a != b)
    except (TypeError, ValueError):  # pragma: no cover - exotic payloads
        return True


@dataclasses.dataclass(frozen=True)
class InjectedFault:
    """One fault that actually took effect, for the run's fault report.

    ``before``/``after`` are ``repr`` strings of the register state
    around the mutation (JSON-safe by construction).
    """

    spec_index: int
    mode: str
    pe: int
    reg: str | None
    tick: int
    before: str
    after: str

    def to_dict(self) -> dict[str, Any]:
        return dataclasses.asdict(self)


class FaultInjector:
    """Executes a fault plan against a running machine.

    One injector serves one run: it tracks which one-shot faults have
    fired.  Build a fresh injector per attempt (retries face
    ``plan.drop_transients()``).
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self.injections: list[InjectedFault] = []
        self._fired: set[int] = set()  # one-shot specs already executed
        self._matched: set[int] = set()  # specs that touched a register
        self._stuck_announced: set[int] = set()  # stuck_at: record once
        self._dup_captured: dict[int, Any] = {}  # duplicate_delivery payloads

    # -- bookkeeping -----------------------------------------------------
    def _record(
        self, machine: Any, idx: int, spec: FaultSpec, *, before: Any, after: Any,
        reg: str | None = None,
    ) -> None:
        name = spec.reg if reg is None else reg
        self._matched.add(idx)
        self.injections.append(
            InjectedFault(
                spec_index=idx,
                mode=spec.mode,
                pe=spec.pe,
                reg=name,
                tick=machine.tick,
                before=repr(before),
                after=repr(after),
            )
        )
        machine.emit("fault", spec.pe, f"{spec.mode}:{name if name else '*'}")

    def _registers(self, machine: Any, spec: FaultSpec) -> list[tuple[str, Any]]:
        """The ``(name, Register)`` targets of ``spec`` on this machine."""
        if spec.pe >= len(machine.pes):
            return []
        pe = machine.pes[spec.pe]
        if spec.mode == "dead_pe":
            return list(pe.registers.items())
        reg = pe.registers.get(spec.reg)
        return [(spec.reg, reg)] if reg is not None else []

    def inert_specs(self) -> tuple[int, ...]:
        """Indices of plan specs that never took effect on this run."""
        return tuple(
            i for i in range(len(self.plan.specs)) if i not in self._matched
        )

    # -- machine hooks ---------------------------------------------------
    def before_latch(self, machine: Any) -> None:
        """Delivery faults: cancel staged writes that must never arrive."""
        tick = machine.tick
        for idx, spec in enumerate(self.plan.specs):
            if spec.mode not in ("drop_delivery", "dead_pe", "dead_link"):
                continue
            if not spec.armed_at(tick):
                continue
            for name, reg in self._registers(machine, spec):
                if reg.pending:
                    dropped = reg.cancel()
                    self._record(
                        machine, idx, spec, before=dropped, after=reg.value, reg=name
                    )

    def after_latch(self, machine: Any) -> None:
        """Corruption faults: overwrite freshly latched register state."""
        tick = machine.tick
        for idx, spec in enumerate(self.plan.specs):
            if spec.mode == "transient_flip":
                # Armed from spec.tick on; fires at the first edge where
                # the register holds a perturbable value, then never again.
                if idx in self._fired or tick < spec.tick:
                    continue
                for _name, reg in self._registers(machine, spec):
                    flipped = _perturb(reg.value, spec.delta)
                    if flipped is _SKIP:
                        continue
                    before = reg.value
                    reg.force(flipped)
                    self._fired.add(idx)
                    self._record(machine, idx, spec, before=before, after=flipped)
            elif spec.mode == "stuck_at":
                if not spec.armed_at(tick):
                    continue
                for _name, reg in self._registers(machine, spec):
                    before = reg.value
                    reg.force(spec.value)
                    if idx not in self._stuck_announced and _differs(before, spec.value):
                        self._stuck_announced.add(idx)
                        self._record(machine, idx, spec, before=before, after=spec.value)
            elif spec.mode == "duplicate_delivery":
                if idx in self._fired:
                    continue
                regs = self._registers(machine, spec)
                if not regs:
                    continue
                _name, reg = regs[0]
                if tick == spec.tick:
                    # Capture the word latched at the armed edge …
                    self._dup_captured[idx] = reg.value
                elif tick > spec.tick and idx in self._dup_captured:
                    # … and replay it over the next edge's fresh delivery.
                    stale = self._dup_captured.pop(idx)
                    self._fired.add(idx)
                    before = reg.value
                    if _differs(before, stale):
                        reg.force(stale)
                        self._record(machine, idx, spec, before=before, after=stale)
