"""Performance metrics of the paper: PU, speedup, AT², KT².

Closed forms quoted in the paper, kept next to each other so the
benchmarks can print paper-formula vs. measured side by side:

* eq. (9):   PU of the Fig. 3/4 arrays, ``(N−2)/N + 1/(N·m)``.
* Fig. 5:    PU ``((N−1)m² + m)/((N+1)m²)`` (re-exported from the array).
* eq. (20):  PU of the K-array divide-and-conquer schedule.
* Theorem 1: the AT² bound (re-exported from :mod:`repro.dnc.analysis`).
"""

from __future__ import annotations

from typing import Any

from ..dnc.analysis import at2_lower_bound, at2_surface, kt2, processor_utilization
from ..systolic.fabric import RunReport
from ..systolic.feedback_array import feedback_pu

__all__ = [
    "eq9_pu",
    "feedback_pu",
    "measured_pu",
    "speedup",
    "summarize_report",
    "processor_utilization",
    "kt2",
    "at2_surface",
    "at2_lower_bound",
]


def eq9_pu(n_layers: int, m: int) -> float:
    """Paper eq. (9): PU of the pipelined/broadcast arrays.

    For an ``(N+1)``-stage single-source/sink graph with ``m`` nodes per
    intermediate stage (``N = n_layers`` matrices in the string):
    ``PU = ((N−2)m² + m) / (N·m·m) = (N−2)/N + 1/(N·m)``.
    """
    if n_layers < 1 or m < 1:
        raise ValueError("n_layers and m must be positive")
    return ((n_layers - 2) * m * m + m) / (n_layers * m * m)


def measured_pu(report: RunReport) -> float:
    """Measured PU of a systolic run (serial ops / (iterations × PEs))."""
    return report.processor_utilization


def speedup(serial_ops: int, parallel_time: int) -> float:
    """Plain speedup: sequential step count over parallel schedule length."""
    if parallel_time <= 0:
        raise ValueError("parallel_time must be positive")
    return serial_ops / parallel_time


def summarize_report(report: RunReport) -> dict[str, Any]:
    """One-line-able summary dict of a systolic run report.

    The derived ratios come from the report's own accessors, which
    return 0.0 (never NaN) for empty runs; ``is_empty`` flags that case
    explicitly so logging pipelines can tell "idle array" apart from
    "fully serialized array".
    """
    return {
        "design": report.design,
        "backend": report.backend,
        "num_pes": report.num_pes,
        "iterations": report.iterations,
        "wall_ticks": report.wall_ticks,
        "serial_ops": report.serial_ops,
        "processor_utilization": report.processor_utilization,
        "busy_fraction": report.busy_fraction,
        "is_empty": report.is_empty,
    }
