"""Table-1 dispatch: classify a DP problem and solve it on the
architecture the paper recommends, validating against the sequential
oracle.

``solve()`` is the library's one-call entry point:

* **monadic-serial, node-value form** → Fig. 5 feedback array.
* **monadic-serial, edge-cost form** → Fig. 3 pipelined array (Fig. 4
  broadcast array on request), falling back to the sequential sweep for
  shapes the linear arrays do not support (non-uniform interior stages).
* **polyadic-serial** (many stages) → divide-and-conquer on
  ``K = ⌈N/log₂N⌉`` arrays, the Theorem-1 optimal granularity.
* **monadic-nonserial** → variable elimination; for banded objectives
  also the Section-6.1 grouping transform onto a serial graph.
* **polyadic-nonserial** (matrix-chain) → the serialized systolic
  parenthesization array (broadcast mapping on request).

Every path cross-checks the optimum against the corresponding sequential
solver and reports both values.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Any, Callable, Iterable

import numpy as np

from ..dnc import simulate_chain_product
from ..dp import (
    eliminate,
    solve_backward,
    solve_matrix_chain,
    solve_node_value,
)
from ..dp.nonserial import NonserialObjective
from ..graphs import MultistageGraph, NodeValueProblem
from ..systolic import (
    BroadcastMatrixStringArray,
    BroadcastParenthesizer,
    normalize_backend,
    FeedbackSystolicArray,
    PipelinedMatrixStringArray,
    SystolicParenthesizer,
)
from .classification import DPClass, Recommendation, recommend
from .problem import MatrixChainProblem

__all__ = ["SolveReport", "solve"]


@dataclasses.dataclass(frozen=True)
class SolveReport:
    """Unified result of the dispatch solver.

    ``optimum`` is the parallel architecture's answer; ``reference`` the
    sequential oracle's; ``validated`` asserts they agree.  ``solution``
    is method-specific (a :class:`~repro.graphs.StagePath`, a
    :class:`~repro.dp.matrix_chain.ChainOrder`, an assignment dict, …)
    and ``detail`` carries the raw architecture result object.
    """

    dp_class: DPClass
    method: str
    optimum: float
    reference: float
    validated: bool
    solution: Any
    detail: Any
    recommendation: Recommendation
    #: :class:`~repro.faults.FaultRunReport` when the run executed under
    #: a fault plan; ``None`` on ordinary (healthy) dispatches.
    faults: Any = None

    def __post_init__(self) -> None:
        if not self.validated and not self._degraded_and_warned():
            raise AssertionError(
                f"architecture result {self.optimum} disagrees with the "
                f"sequential reference {self.reference}"
            )

    def _degraded_and_warned(self) -> bool:
        """Degrade-and-warn runs may return a flagged, unvalidated result."""
        return self.faults is not None and self.faults.outcome == "detected"


def _validated(a: float, b: float) -> bool:
    return bool(np.isclose(a, b, rtol=1e-9, atol=1e-9))


def solve(
    problem: object,
    *,
    prefer: str | None = None,
    backend: str = "rtl",
    sinks: Iterable[Callable[..., None]] = (),
    fault_plan: Any = None,
    recovery: str = "retry",
    cache: Any = None,
    strict: bool = False,
) -> SolveReport:
    """Classify ``problem`` per Table 1, solve it, and validate.

    ``prefer`` overrides the architecture within a class:
    ``"pipelined"``/``"broadcast"``/``"sequential"`` for edge-cost serial
    problems, ``"broadcast"``/``"systolic"`` for matrix-chain ordering,
    ``"dnc"`` to force the polyadic-serial path on a multistage graph.

    ``backend`` selects the array execution engine for every systolic
    path: ``"rtl"`` (cycle-accurate machine), ``"fast"`` (vectorized
    whole-array reductions with closed-form counters), or ``"auto"``
    (fast, cross-validated against RTL on small instances).  Paths that
    do not run a systolic array (sequential sweeps, variable
    elimination, divide-and-conquer) ignore it.

    ``sinks`` are telemetry callables (``TraceEvent -> None``, e.g.
    :class:`~repro.telemetry.MetricsSink` or
    :class:`~repro.telemetry.TimelineSink`) subscribed to the array's
    event bus when the dispatch lands on a systolic path; subscribing
    forces the cycle-accurate rtl backend.  Non-array paths ignore them.

    ``fault_plan`` (a :class:`~repro.faults.FaultPlan`) executes the run
    under fault injection with the ``recovery`` policy (``"fail_fast"``,
    ``"warn"``, ``"retry"`` or ``"spare"``; see
    :func:`repro.faults.run_with_recovery`).  The returned report then
    carries a :class:`~repro.faults.FaultRunReport` in ``.faults``;
    ``fail_fast`` raises :class:`~repro.faults.FaultDetected` on the
    first detection, ``warn`` may return a flagged unvalidated result,
    and a plan that cannot be recovered from raises
    :class:`~repro.faults.FaultDetected`.  Fault injection is a
    cycle-level feature: only the systolic-array dispatch paths
    support it.

    ``strict`` runs every systolic path under the hazard sanitizer
    (:mod:`repro.analysis.hazards`), which forces the rtl backend.

    ``cache`` is a :class:`~repro.exec.cache.SolveCache` (or ``True``
    for the process-wide default): identical problems are served from
    the cache as equal-but-independent reports.  Side-effectful runs —
    ``sinks``, ``fault_plan``, ``backend="rtl"`` or ``strict`` — bypass
    it and always execute.
    """
    backend = normalize_backend(backend)
    sinks = tuple(sinks)

    key = None
    cache_obj: Any = None
    if cache is not None and cache is not False:
        cacheable = (
            not sinks and fault_plan is None and backend != "rtl" and not strict
        )
        if cacheable:
            from ..exec.cache import default_cache
            from ..exec.digest import cache_key

            cache_obj = default_cache() if cache is True else cache
            key = cache_key(problem, backend=backend, prefer=prefer)
            if key is not None:
                hit = cache_obj.get(key)
                if hit is not None:
                    return hit

    report = _solve_dispatch(
        problem, prefer, backend, sinks, fault_plan, recovery, strict
    )
    if key is not None and cache_obj is not None:
        cache_obj.put(key, report)
    return report


def _solve_dispatch(
    problem: object,
    prefer: str | None,
    backend: str,
    sinks: tuple,
    fault_plan: Any,
    recovery: str,
    strict: bool,
) -> SolveReport:
    rec = recommend(problem)
    if fault_plan is not None:
        return _solve_faulty(problem, rec, prefer, sinks, fault_plan, recovery)

    if isinstance(problem, NodeValueProblem):
        return _solve_node_value(problem, rec, backend, sinks, strict)
    if isinstance(problem, MultistageGraph):
        return _solve_graph(problem, rec, prefer, backend, sinks, strict)
    if isinstance(problem, MatrixChainProblem):
        return _solve_chain(problem, rec, prefer, backend, sinks, strict)
    if isinstance(problem, NonserialObjective):
        return _solve_nonserial(problem, rec)
    raise TypeError(f"cannot solve object of type {type(problem).__name__}")


def _solve_faulty(
    problem: object,
    rec: Recommendation,
    prefer: str | None,
    sinks: tuple,
    fault_plan: Any,
    recovery: str,
) -> SolveReport:
    """Dispatch ``problem`` onto its array harness under fault injection."""
    import warnings

    from .. import faults as flt

    if isinstance(problem, NodeValueProblem) and problem.is_uniform:
        harness: Any = flt.FeedbackHarness(problem)
        ref = solve_node_value(problem).optimum
        extract = lambda res: (res.optimum, res.path)  # noqa: E731
        method = "fig5-feedback-array"
    elif isinstance(problem, MultistageGraph):
        target = problem
        if not _graph_fits_linear_array(target):
            if len(set(target.stage_sizes)) != 1:
                raise TypeError(
                    "fault injection on graphs needs a linear-array-shaped "
                    f"instance; got stage sizes {target.stage_sizes}"
                )
            from ..graphs import add_virtual_terminals

            target = add_virtual_terminals(target)
        cls = (
            flt.BroadcastHarness if prefer == "broadcast" else flt.PipelinedHarness
        )
        harness = cls(target.as_matrices(), target.semiring)
        ref = solve_backward(problem).optimum
        sr = target.semiring
        extract = lambda res: (  # noqa: E731
            float(sr.add_reduce(np.asarray(res.value), axis=None)),
            res.value,
        )
        method = (
            "fig4-broadcast-array" if prefer == "broadcast" else "fig3-pipelined-array"
        )
    elif isinstance(problem, MatrixChainProblem):
        harness = flt.ParenHarness(problem.dims)
        ref = float(solve_matrix_chain(problem.dims).cost)
        extract = lambda res: (float(res.order.cost), res.order)  # noqa: E731
        method = harness.array.design_name
    else:
        raise TypeError(
            "fault injection is only supported on the systolic-array dispatch "
            f"paths, not for {type(problem).__name__}"
        )

    result, fault_report = flt.run_with_recovery(
        harness, fault_plan, policy=recovery, sinks=sinks
    )
    if result is None:
        raise flt.FaultDetected(fault_report.detections)
    optimum, solution = extract(result)
    validated = _validated(optimum, ref)
    if not validated and fault_report.outcome == "detected":
        warnings.warn(
            f"degrade-and-warn: returning a fault-flagged result for {method} "
            f"({len(fault_report.detections)} detections)",
            RuntimeWarning,
            stacklevel=3,
        )
    return SolveReport(
        dp_class=rec.dp_class,
        method=f"{method}+faults",
        optimum=optimum,
        reference=ref,
        validated=validated,
        solution=solution,
        detail=result,
        recommendation=rec,
        faults=fault_report,
    )


def _solve_node_value(
    problem: NodeValueProblem,
    rec: Recommendation,
    backend: str = "rtl",
    sinks: tuple = (),
    strict: bool = False,
) -> SolveReport:
    ref = solve_node_value(problem)
    if problem.is_uniform and rec.dp_class is DPClass.MONADIC_SERIAL:
        res = FeedbackSystolicArray(problem.semiring).run(
            problem, backend=backend, sinks=sinks, strict=strict
        )
        return SolveReport(
            dp_class=rec.dp_class,
            method="fig5-feedback-array",
            optimum=res.optimum,
            reference=ref.optimum,
            validated=_validated(res.optimum, ref.optimum),
            solution=res.path,
            detail=res,
            recommendation=rec,
        )
    if rec.dp_class is DPClass.POLYADIC_SERIAL:
        return _solve_graph(problem.to_graph(), rec, "dnc", backend, sinks, strict)
    return SolveReport(
        dp_class=rec.dp_class,
        method="sequential-sweep",
        optimum=ref.optimum,
        reference=ref.optimum,
        validated=True,
        solution=ref.path,
        detail=ref,
        recommendation=rec,
    )


def _graph_fits_linear_array(graph: MultistageGraph) -> bool:
    """The Fig. 3/4 arrays need a single sink and uniform interior width."""
    sizes = graph.stage_sizes
    if sizes[-1] != 1 or len(sizes) < 3:
        return False
    interior = sizes[1:-1] if sizes[0] == 1 else sizes[:-1]
    return len(set(interior)) == 1


def _solve_graph(
    graph: MultistageGraph,
    rec: Recommendation,
    prefer: str | None,
    backend: str = "rtl",
    sinks: tuple = (),
    strict: bool = False,
) -> SolveReport:
    ref = solve_backward(graph)
    method = prefer
    if method is None:
        if rec.dp_class is DPClass.POLYADIC_SERIAL:
            method = "dnc"
        elif _graph_fits_linear_array(graph) or len(set(graph.stage_sizes)) == 1:
            method = "pipelined"
        else:
            method = "sequential"

    if method == "dnc":
        mats = graph.as_matrices()
        n = len(mats)
        k = max(1, math.ceil(n / max(math.log2(n), 1.0)))
        # The scheduler needs composable segments; pad shape handling by
        # multiplying the raw string (shapes compose pairwise regardless).
        sched = simulate_chain_product(
            n, k, matrices=mats, semiring=graph.semiring
        )
        assert sched.product is not None
        optimum = float(graph.semiring.add_reduce(sched.product, axis=None))
        return SolveReport(
            dp_class=DPClass.POLYADIC_SERIAL,
            method=f"divide-and-conquer (K={k})",
            optimum=optimum,
            reference=ref.optimum,
            validated=_validated(optimum, ref.optimum),
            solution=sched.product,
            detail=sched,
            recommendation=rec,
        )
    uniform = len(set(graph.stage_sizes)) == 1
    if method in ("pipelined", "broadcast") and (
        _graph_fits_linear_array(graph) or uniform
    ):
        array: Any = (
            PipelinedMatrixStringArray(graph.semiring)
            if method == "pipelined"
            else BroadcastMatrixStringArray(graph.semiring)
        )
        target = graph
        if not _graph_fits_linear_array(graph):
            # Uniform multi-source/sink graphs run after framing with
            # zero-cost virtual terminals (the paper's degenerate
            # row/column-vector boundary).
            from ..graphs import add_virtual_terminals

            target = add_virtual_terminals(graph)
        if method == "broadcast" and target.is_single_source_sink:
            # The Fig. 4 ARG path registers let the dispatcher hand back
            # a traced optimal path instead of only the cost.
            path, res = array.run_graph_with_path(
                target, backend=backend, sinks=sinks, strict=strict
            )
            return SolveReport(
                dp_class=rec.dp_class,
                method="fig4-broadcast-array",
                optimum=path.cost,
                reference=ref.optimum,
                validated=_validated(path.cost, ref.optimum),
                solution=path,
                detail=res,
                recommendation=rec,
            )
        res = array.run_graph(target, backend=backend, sinks=sinks, strict=strict)
        value = np.asarray(res.value)
        optimum = float(graph.semiring.add_reduce(value, axis=None))
        return SolveReport(
            dp_class=rec.dp_class,
            method=f"fig{'3-pipelined' if method == 'pipelined' else '4-broadcast'}-array",
            optimum=optimum,
            reference=ref.optimum,
            validated=_validated(optimum, ref.optimum),
            solution=res.value,
            detail=res,
            recommendation=rec,
        )
    return SolveReport(
        dp_class=rec.dp_class,
        method="sequential-sweep",
        optimum=ref.optimum,
        reference=ref.optimum,
        validated=True,
        solution=ref.path,
        detail=ref,
        recommendation=rec,
    )


def _solve_chain(
    problem: MatrixChainProblem,
    rec: Recommendation,
    prefer: str | None,
    backend: str = "rtl",
    sinks: tuple = (),
    strict: bool = False,
) -> SolveReport:
    ref = solve_matrix_chain(problem.dims)
    engine: Any = (
        BroadcastParenthesizer() if prefer == "broadcast" else SystolicParenthesizer()
    )
    run = engine.run(problem.dims, backend=backend, sinks=sinks, strict=strict)
    return SolveReport(
        dp_class=rec.dp_class,
        method=engine.design_name,
        optimum=float(run.order.cost),
        reference=float(ref.cost),
        validated=run.order.cost == ref.cost,
        solution=run.order,
        detail=run,
        recommendation=rec,
    )


def _solve_nonserial(problem: NonserialObjective, rec: Recommendation) -> SolveReport:
    res = eliminate(problem)
    # The elimination engine *is* the reference; validate against the
    # grouping transform (the Section-6.1 serialization) when the
    # objective has the banded shape it applies to.
    reference = res.optimum
    method = "variable-elimination"
    detail: Any = res
    try:
        from ..dp.nonserial import group_variables_to_serial

        serial_graph, _states = group_variables_to_serial(problem)
        seq = solve_backward(serial_graph)
        reference = seq.optimum
        method = "grouping-transform+serial-sweep"
        detail = (res, seq)
    except ValueError:
        pass  # not banded: elimination result stands alone
    return SolveReport(
        dp_class=rec.dp_class,
        method=method,
        optimum=res.optimum,
        reference=reference,
        validated=_validated(res.optimum, reference),
        solution=res.assignment,
        detail=detail,
        recommendation=rec,
    )
