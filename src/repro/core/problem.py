"""Problem wrapper types used by the classifier and the dispatch solver.

Most problem classes live with their substrate (multistage graphs in
:mod:`repro.graphs`, general objectives in :mod:`repro.dp.nonserial`);
this module adds the thin wrappers that have no substrate of their own.
"""

from __future__ import annotations

import dataclasses

__all__ = ["MatrixChainProblem"]


@dataclasses.dataclass(frozen=True)
class MatrixChainProblem:
    """The matrix-chain ordering (secondary optimization) problem.

    ``dims = (r₀, …, r_N)``: matrix ``M_i`` is ``r_{i-1} × r_i``.  The
    canonical polyadic-nonserial problem of the paper (eq. 6 /
    Figure 2).
    """

    dims: tuple[int, ...]

    def __post_init__(self) -> None:
        dims = tuple(int(d) for d in self.dims)
        if len(dims) < 2:
            raise ValueError("need at least one matrix (two dimensions)")
        if any(d <= 0 for d in dims):
            raise ValueError(f"dimensions must be positive, got {dims}")
        object.__setattr__(self, "dims", dims)

    @property
    def num_matrices(self) -> int:
        return len(self.dims) - 1
