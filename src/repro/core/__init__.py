"""Core API: classification, Table-1 dispatch solving, and metrics."""

from .classification import (
    Arity,
    DPClass,
    Recommendation,
    Structure,
    classify,
    classify_terms,
    recommend,
)
from .metrics import (
    at2_lower_bound,
    at2_surface,
    eq9_pu,
    feedback_pu,
    kt2,
    measured_pu,
    processor_utilization,
    speedup,
    summarize_report,
)
from .problem import MatrixChainProblem
from .solver import SolveReport, solve

__all__ = [
    "Arity",
    "Structure",
    "DPClass",
    "Recommendation",
    "classify",
    "classify_terms",
    "recommend",
    "MatrixChainProblem",
    "SolveReport",
    "solve",
    "eq9_pu",
    "feedback_pu",
    "measured_pu",
    "speedup",
    "summarize_report",
    "processor_utilization",
    "kt2",
    "at2_surface",
    "at2_lower_bound",
]
