"""The paper's four-way classification of DP formulations (Section 2).

Two orthogonal axes:

* **Arity** — *monadic* formulations have one recursive term per cost
  function (eqs. 1–2); *polyadic* ones have several (eq. 3).
* **Structure** — *serial* objectives chain their terms (each shares one
  variable with its predecessor and one with its successor); everything
  else is *nonserial*.

The classifier inspects problem objects (multistage graphs and node-value
problems are serial by construction; general objectives are tested via
their interaction graph; matrix-chain ordering is the canonical
polyadic-nonserial problem) and term lists, and
:func:`recommend` reproduces the Table-1 guidance — including the
"many states → monadic, many stages → polyadic" rule for serial
problems.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Sequence

from ..dp.nonserial import NonserialObjective
from ..graphs import MultistageGraph, NodeValueProblem, Term, is_serial_objective
from .problem import MatrixChainProblem

__all__ = ["Arity", "Structure", "DPClass", "classify", "classify_terms", "recommend", "Recommendation"]


class Arity(enum.Enum):
    MONADIC = "monadic"
    POLYADIC = "polyadic"


class Structure(enum.Enum):
    SERIAL = "serial"
    NONSERIAL = "nonserial"


class DPClass(enum.Enum):
    """The four classes of Table 1."""

    MONADIC_SERIAL = (Arity.MONADIC, Structure.SERIAL)
    POLYADIC_SERIAL = (Arity.POLYADIC, Structure.SERIAL)
    MONADIC_NONSERIAL = (Arity.MONADIC, Structure.NONSERIAL)
    POLYADIC_NONSERIAL = (Arity.POLYADIC, Structure.NONSERIAL)

    @property
    def arity(self) -> Arity:
        return self.value[0]

    @property
    def structure(self) -> Structure:
        return self.value[1]


def classify_terms(terms: Sequence[Term]) -> Structure:
    """Structure of an objective given its terms (paper Section 2.2)."""
    return Structure.SERIAL if is_serial_objective(terms) else Structure.NONSERIAL


def classify(problem: object, *, arity: Arity = Arity.MONADIC) -> DPClass:
    """Classify a problem object into one of the four Table-1 classes.

    Serial problems admit both monadic and polyadic formulations (the
    same multistage graph can be solved by eq. 2 or eq. 3); ``arity``
    selects which formulation is being asked about and defaults to
    monadic, the paper's baseline.  Matrix-chain ordering is inherently
    polyadic-nonserial regardless of ``arity``.
    """
    if isinstance(problem, MatrixChainProblem):
        return DPClass.POLYADIC_NONSERIAL
    if isinstance(problem, (MultistageGraph, NodeValueProblem)):
        return (
            DPClass.MONADIC_SERIAL
            if arity is Arity.MONADIC
            else DPClass.POLYADIC_SERIAL
        )
    if isinstance(problem, NonserialObjective):
        structure = classify_terms(
            [Term(tuple(tvars)) for tvars, _fn in problem.terms]
        )
        if structure is Structure.SERIAL:
            return (
                DPClass.MONADIC_SERIAL
                if arity is Arity.MONADIC
                else DPClass.POLYADIC_SERIAL
            )
        return (
            DPClass.MONADIC_NONSERIAL
            if arity is Arity.MONADIC
            else DPClass.POLYADIC_NONSERIAL
        )
    raise TypeError(f"cannot classify object of type {type(problem).__name__}")


@dataclasses.dataclass(frozen=True)
class Recommendation:
    """Table-1 row for a problem: class, method, architecture."""

    dp_class: DPClass
    method: str
    architecture: str
    rationale: str


def recommend(problem: object, *, stage_ratio_threshold: float = 4.0) -> Recommendation:
    """Reproduce Table 1's method/architecture guidance for a problem.

    For serial problems the paper's rule is: many states/quantized values
    per stage → monadic, solve as a string of matrix multiplications on
    a systolic array; many stages → polyadic, solve by divide-and-conquer
    (loose coupling at fine grain).  The rule of thumb here compares the
    stage count against ``stage_ratio_threshold ×`` the stage width.
    """
    if isinstance(problem, MatrixChainProblem):
        return Recommendation(
            DPClass.POLYADIC_NONSERIAL,
            "search AND/OR-graph; serialize; map to planar systolic array",
            "dataflow or systolic processing",
            "unstructured polyadic recursion (eq. 6)",
        )
    if isinstance(problem, (MultistageGraph, NodeValueProblem)):
        if isinstance(problem, NodeValueProblem):
            n_stages = problem.num_stages
            width = max(problem.stage_sizes)
        else:
            n_stages = problem.num_stages
            width = max(problem.stage_sizes)
        if n_stages > stage_ratio_threshold * width:
            return Recommendation(
                DPClass.POLYADIC_SERIAL,
                "divide-and-conquer over the matrix string "
                "(Θ(N/log₂N) systolic arrays)",
                "loose coupling for fine grain",
                f"many stages ({n_stages}) relative to stage width ({width})",
            )
        return Recommendation(
            DPClass.MONADIC_SERIAL,
            "solve as string of matrix multiplications",
            "systolic processing (Figs. 3-5)",
            f"many states per stage ({width}) relative to stage count ({n_stages})",
        )
    if isinstance(problem, NonserialObjective):
        structure = classify_terms(
            [Term(tuple(tvars)) for tvars, _fn in problem.terms]
        )
        if structure is Structure.SERIAL:
            return Recommendation(
                DPClass.MONADIC_SERIAL,
                "solve as string of matrix multiplications",
                "systolic processing (Figs. 3-5)",
                "objective is already serial",
            )
        return Recommendation(
            DPClass.MONADIC_NONSERIAL,
            "transform into monadic-serial representation by grouping variables",
            "systolic processing after the transform",
            "variables can be eliminated one by one (Section 6.1)",
        )
    raise TypeError(f"cannot recommend for object of type {type(problem).__name__}")
