"""The secondary optimization problem: in what order to reduce stages.

Section 4 of the paper: "When [the matrices do not have identical
dimensions], the order in which the matrices are multiplied together has
a significant effect on the total number of operations.  Finding the
optimal order of multiplying a string of matrices with different
dimensions is itself a polyadic-nonserial DP problem, the so-called
secondary optimization problem."  Theorem 2's closing remark makes the
same point for irregular multistage graphs: eliminating stages in the
wrong order (or with wider-than-binary reductions) wastes comparisons.

This module closes that loop inside the library: for an *irregular*
multistage graph, the optimal stage-reduction order is exactly the
matrix-chain problem over the stage-size vector.  It computes the
order, quantifies the waste of naive orders and of ternary (3-arc
AND-node) reductions, and executes the reduction over the graph's
semiring to confirm the optimum is order-invariant.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..graphs import MultistageGraph
from ..semiring import matmul
from .matrix_chain import ChainOrder, count_scalar_multiplications, solve_matrix_chain

__all__ = [
    "ReductionPlan",
    "optimal_reduction_order",
    "reduction_cost",
    "execute_reduction",
    "ternary_reduction_cost",
]


@dataclasses.dataclass(frozen=True)
class ReductionPlan:
    """An evaluated stage-reduction order for a multistage graph."""

    order: ChainOrder  # parenthesization over the graph's cost matrices
    optimal_comparisons: int  # semiring ⊗⊕ steps of the optimal order
    naive_comparisons: int  # left-to-right order
    stage_sizes: tuple[int, ...]

    @property
    def savings(self) -> float:
        """Naive over optimal comparison count (≥ 1)."""
        return self.naive_comparisons / max(self.optimal_comparisons, 1)


def reduction_cost(stage_sizes, expression) -> int:
    """⊗⊕ step count of reducing the graph along ``expression``.

    Identical accounting to matrix-chain scalar multiplications: merging
    the sub-results covering stages ``a..b`` and ``b..c`` costs
    ``m_a · m_b · m_c``.
    """
    cost, _shape = count_scalar_multiplications(list(stage_sizes), expression)
    return cost


def optimal_reduction_order(graph: MultistageGraph) -> ReductionPlan:
    """Solve the secondary optimization problem for ``graph``.

    The "dimension vector" is the stage-size vector; the optimal
    reduction order is the eq.-(6) DP over it.
    """
    sizes = graph.stage_sizes
    order = solve_matrix_chain(sizes)
    n = graph.num_layers
    naive_expr: int | tuple = 1
    for i in range(2, n + 1):
        naive_expr = (naive_expr, i)
    return ReductionPlan(
        order=order,
        optimal_comparisons=order.cost,
        naive_comparisons=reduction_cost(sizes, naive_expr),
        stage_sizes=sizes,
    )


def execute_reduction(graph: MultistageGraph, expression) -> np.ndarray:
    """Reduce the graph's matrix string along an explicit order.

    Returns the first-stage × last-stage optimal-cost matrix; semiring
    associativity makes it independent of ``expression`` (the tests
    assert this), while the *work* differs per :func:`reduction_cost`.
    """
    mats = graph.as_matrices()

    def walk(expr) -> tuple[np.ndarray, int, int]:
        if isinstance(expr, int):
            return mats[expr - 1], expr, expr
        left, right = expr
        a, li, lj = walk(left)
        b, ri, rj = walk(right)
        if ri != lj + 1:
            raise ValueError(f"non-contiguous reduction at {expr}")
        return matmul(graph.semiring, a, b), li, rj

    out, i, j = walk(expression)
    if i != 1 or j != graph.num_layers:
        raise ValueError("expression must cover the whole graph")
    return out


def ternary_reduction_cost(m1: int, m2: int, m3: int, m4: int) -> tuple[int, int]:
    """The Theorem-2 irregular-stage comparison (paper's closing argument).

    Reducing stages ``(m1, m2, m3, m4)`` to ``(m1, m4)`` with a 3-arc
    AND-node costs ``m1·m2·m3·m4`` comparisons; binary reduction costs
    ``min(m1·m3·(m2 + m4), m2·m4·(m1 + m3))``.  Returns
    ``(ternary, best binary)``; binary never loses for ``m_i ≥ 2``.
    """
    if min(m1, m2, m3, m4) < 1:
        raise ValueError("stage sizes must be positive")
    ternary = m1 * m2 * m3 * m4
    binary = min(m1 * m3 * (m2 + m4), m2 * m4 * (m1 + m3))
    return ternary, binary
