"""Optimal binary search trees — the paper's other polyadic example.

Section 2.1 names two canonical polyadic formulations: matrix-chain
ordering and "finding the optimal binary search tree".  This module
supplies the OBST substrate (Knuth's classic DP) so the Section-6.2
array machinery can be exercised on the second problem family:

    e[i, j] = min_{i ≤ r ≤ j} ( e[i, r−1] + e[r+1, j] + w(i, j) )

for keys ``i … j`` with access probabilities ``p₁ … p_n`` and miss
probabilities ``q₀ … q_n``; ``w(i, j) = Σ p + Σ q`` over the range and
``e[i, i−1] = q_{i−1}`` are the leaves.  Like eq. (6) this is a
polyadic-nonserial triangular recurrence — two recursive terms, arcs
spanning levels — and maps onto the same broadcast/serialized arrays
via :mod:`repro.systolic.triangular`.
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import Sequence

import numpy as np

__all__ = ["ObstSolution", "solve_obst", "brute_force_obst", "expected_depth_cost", "random_obst_weights"]


@dataclasses.dataclass(frozen=True)
class ObstSolution:
    """Result of the OBST dynamic program.

    ``cost`` is the expected comparison count (weighted path length);
    ``root[i][j]`` (1-based keys, dict keyed by ``(i, j)``) is the
    optimal root of the subtree over keys ``i … j``; ``tree`` is the
    nested ``(key, left, right)`` structure with ``None`` leaves.
    """

    p: tuple[float, ...]
    q: tuple[float, ...]
    cost: float
    root: dict[tuple[int, int], int]
    tree: tuple | None

    @property
    def num_keys(self) -> int:
        return len(self.p)


def _check_weights(p: Sequence[float], q: Sequence[float]) -> tuple[np.ndarray, np.ndarray]:
    p = np.asarray(p, dtype=np.float64)
    q = np.asarray(q, dtype=np.float64)
    if p.ndim != 1 or q.ndim != 1:
        raise ValueError("p and q must be 1-D")
    if q.size != p.size + 1:
        raise ValueError(f"need len(q) == len(p) + 1, got {p.size} and {q.size}")
    if (p < 0).any() or (q < 0).any():
        raise ValueError("probabilities must be nonnegative")
    return p, q


def solve_obst(p: Sequence[float], q: Sequence[float]) -> ObstSolution:
    """Knuth's O(n³) OBST dynamic program (without the speedup —
    the array mappings need every (i, j, r) alternative anyway)."""
    p, q = _check_weights(p, q)
    n = p.size
    # e, w, root are (n+2) x (n+1) tables, 1-based i, (i-1)-based j.
    e = np.zeros((n + 2, n + 1))
    w = np.zeros((n + 2, n + 1))
    root: dict[tuple[int, int], int] = {}
    for i in range(1, n + 2):
        e[i, i - 1] = q[i - 1]
        w[i, i - 1] = q[i - 1]
    for span in range(1, n + 1):
        for i in range(1, n - span + 2):
            j = i + span - 1
            w[i, j] = w[i, j - 1] + p[j - 1] + q[j]
            rs = np.arange(i, j + 1)
            costs = np.array([e[i, r - 1] + e[r + 1, j] for r in rs]) + w[i, j]
            best = int(np.argmin(costs))
            e[i, j] = costs[best]
            root[(i, j)] = int(rs[best])

    def build(i: int, j: int):
        if j < i:
            return None
        r = root[(i, j)]
        return (r, build(i, r - 1), build(r + 1, j))

    return ObstSolution(
        p=tuple(p),
        q=tuple(q),
        cost=float(e[1, n]) if n else float(q[0]),
        root=root,
        tree=build(1, n) if n else None,
    )


def expected_depth_cost(p: Sequence[float], q: Sequence[float], tree) -> float:
    """Expected comparison count of an explicit tree (test oracle).

    Key ``k`` at depth ``d`` (root depth 1) contributes ``p_k · d``;
    miss interval ``q_k`` at leaf depth ``d`` contributes ``q_k · d``.
    """
    p, q = _check_weights(p, q)

    def walk(node, span: tuple[int, int], depth: int) -> float:
        i, j = span
        if node is None:
            if j != i - 1:
                raise ValueError(f"leaf must cover the empty span, got {span}")
            return q[i - 1] * depth
        r, left, right = node
        if not i <= r <= j:
            raise ValueError(f"root {r} outside span {span}")
        return (
            p[r - 1] * depth
            + walk(left, (i, r - 1), depth + 1)
            + walk(right, (r + 1, j), depth + 1)
        )

    n = p.size
    if n == 0:
        return float(q[0])
    return walk(tree, (1, n), 1)


def brute_force_obst(p: Sequence[float], q: Sequence[float]) -> tuple[float, tuple | None]:
    """Exhaustive minimum over all BSTs on the keys (Catalan many)."""
    p, q = _check_weights(p, q)
    n = p.size

    def gen(i: int, j: int):
        if j < i:
            yield None
            return
        for r in range(i, j + 1):
            for left in gen(i, r - 1):
                for right in gen(r + 1, j):
                    yield (r, left, right)

    best_cost, best_tree = float("inf"), None
    for tree in gen(1, n):
        c = expected_depth_cost(p, q, tree)
        if c < best_cost:
            best_cost, best_tree = c, tree
    return best_cost, best_tree


def random_obst_weights(
    rng: np.random.Generator, n_keys: int, *, normalize: bool = True
) -> tuple[np.ndarray, np.ndarray]:
    """Random (p, q) weight vectors for ``n_keys`` keys."""
    if n_keys < 0:
        raise ValueError("n_keys must be nonnegative")
    p = rng.uniform(0.0, 1.0, n_keys)
    q = rng.uniform(0.0, 1.0, n_keys + 1)
    if normalize:
        total = p.sum() + q.sum()
        p, q = p / total, q / total
    return p, q
