"""Sequential dynamic-programming solvers — the reference oracles.

Every parallel/systolic component of the library is validated against
the solvers here: monadic sweeps (eqs. 1–2), polyadic divide-and-conquer
(eq. 3/15), matrix-chain parenthesization (eq. 6), and nonserial
variable elimination (eqs. 34–40).
"""

from .monadic import MonadicSolution, solve_backward, solve_forward, solve_node_value
from .polyadic import MultiplyNode, PolyadicSolution, solve_polyadic, stage_cost_matrix
from .matrix_chain import (
    ChainOrder,
    brute_force_matrix_chain,
    count_scalar_multiplications,
    enumerate_parenthesizations,
    multiply_in_order,
    solve_matrix_chain,
)
from .reduction_order import (
    ReductionPlan,
    execute_reduction,
    optimal_reduction_order,
    reduction_cost,
    ternary_reduction_cost,
)
from .obst import (
    ObstSolution,
    brute_force_obst,
    expected_depth_cost,
    random_obst_weights,
    solve_obst,
)
from .nonserial import (
    EliminationResult,
    NonserialObjective,
    banded_objective,
    banded_objective_w,
    brute_force_minimum,
    eliminate,
    eq40_step_count,
    group_variables_to_serial,
    group_variables_to_serial_w,
)

__all__ = [
    "MonadicSolution",
    "solve_backward",
    "solve_forward",
    "solve_node_value",
    "MultiplyNode",
    "PolyadicSolution",
    "solve_polyadic",
    "stage_cost_matrix",
    "ChainOrder",
    "solve_matrix_chain",
    "brute_force_matrix_chain",
    "count_scalar_multiplications",
    "enumerate_parenthesizations",
    "multiply_in_order",
    "EliminationResult",
    "NonserialObjective",
    "banded_objective",
    "brute_force_minimum",
    "eliminate",
    "eq40_step_count",
    "group_variables_to_serial",
    "group_variables_to_serial_w",
    "banded_objective_w",
    "ObstSolution",
    "solve_obst",
    "brute_force_obst",
    "expected_depth_cost",
    "random_obst_weights",
    "ReductionPlan",
    "optimal_reduction_order",
    "reduction_cost",
    "execute_reduction",
    "ternary_reduction_cost",
]
