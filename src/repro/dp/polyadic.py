"""Polyadic-serial DP: all-pairs stage costs and divide-and-conquer (eq. 3, 15).

The polyadic formulation ``f₃(i, j) = min_k [f₃(i, k) + f₃(k, j)]``
generalizes the monadic recursion to optimal paths between *any* two
stages.  In matrix form (paper eq. 15) the cost matrix between stages
``i`` and ``j`` factors through any intermediate stage ``k``:

    f₃(V_i, V_j) = f₃(V_i, V_k) · f₃(V_k, V_j)      (semiring product)

which lets the matrix string be evaluated as a balanced binary tree — the
divide-and-conquer algorithm whose parallel schedule Section 4 analyzes.
This module provides the functional model; :mod:`repro.dnc` provides the
schedule/timing model.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..graphs import MultistageGraph
from ..semiring import matmul

__all__ = ["MultiplyNode", "PolyadicSolution", "stage_cost_matrix", "solve_polyadic"]


@dataclasses.dataclass(frozen=True)
class MultiplyNode:
    """One node of the divide-and-conquer AND-tree.

    Leaves carry a single edge-layer index; internal nodes carry the
    product of their children's stage ranges.  ``depth`` is the node's
    height above the leaves (leaves are depth 0); the tree height bounds
    the wind-down phase of the parallel schedule (Theorem 1).
    """

    lo: int  # first stage of the covered range
    hi: int  # last stage of the covered range (product maps stage lo -> hi)
    left: "MultiplyNode | None" = None
    right: "MultiplyNode | None" = None

    @property
    def is_leaf(self) -> bool:
        return self.left is None

    @property
    def depth(self) -> int:
        if self.is_leaf:
            return 0
        assert self.left is not None and self.right is not None
        return 1 + max(self.left.depth, self.right.depth)

    def count_internal(self) -> int:
        """Number of matrix multiplications in the subtree."""
        if self.is_leaf:
            return 0
        assert self.left is not None and self.right is not None
        return 1 + self.left.count_internal() + self.right.count_internal()


@dataclasses.dataclass(frozen=True)
class PolyadicSolution:
    """Result of the divide-and-conquer evaluation of a multistage graph."""

    cost_matrix: np.ndarray  # optimal costs, first stage x last stage
    optimum: float
    tree: MultiplyNode
    num_multiplications: int


def _build_tree(lo: int, hi: int) -> MultiplyNode:
    """Balanced binary AND-tree over edge layers ``lo … hi - 1``."""
    if hi - lo == 1:
        return MultiplyNode(lo=lo, hi=hi)
    mid = (lo + hi) // 2
    return MultiplyNode(
        lo=lo, hi=hi, left=_build_tree(lo, mid), right=_build_tree(mid, hi)
    )


def stage_cost_matrix(graph: MultistageGraph, i: int, j: int) -> np.ndarray:
    """Optimal-cost matrix between stage ``i`` and stage ``j > i`` (eq. 15).

    Entry ``(a, b)`` is the optimal cost from vertex ``a`` of stage ``i``
    to vertex ``b`` of stage ``j``, evaluated by the balanced
    divide-and-conquer product.
    """
    if not 0 <= i < j < graph.num_stages:
        raise ValueError(f"need 0 <= i < j < {graph.num_stages}, got ({i}, {j})")

    def evaluate(node: MultiplyNode) -> np.ndarray:
        if node.is_leaf:
            return graph.costs[node.lo]
        assert node.left is not None and node.right is not None
        return matmul(graph.semiring, evaluate(node.left), evaluate(node.right))

    return evaluate(_build_tree(i, j))


def solve_polyadic(graph: MultistageGraph) -> PolyadicSolution:
    """Solve the whole graph by divide-and-conquer (paper Section 4).

    Produces the full first-stage × last-stage cost matrix, the AND-tree
    that structured the evaluation, and the multiplication count
    (``number of layers − 1`` internal nodes — each combining step is one
    semiring matmul).  The optimum equals the monadic solvers' optimum on
    the same graph; tests assert this.
    """
    tree = _build_tree(0, graph.num_layers)
    cost = stage_cost_matrix(graph, 0, graph.num_stages - 1)
    sr = graph.semiring
    optimum = float(sr.add_reduce(cost, axis=None))
    return PolyadicSolution(
        cost_matrix=cost,
        optimum=optimum,
        tree=tree,
        num_multiplications=tree.count_internal(),
    )
