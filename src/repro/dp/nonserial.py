"""Nonserial DP by variable elimination, and the serializing transform.

Section 6.1 of the paper solves a monadic-nonserial problem — an
objective ``min Σ_i g_i(Xⁱ)`` whose terms mention arbitrary variable
subsets — by eliminating variables one at a time (eqs. 34–39) and counts
the work for the banded three-variable-term objective (eq. 36) as

    Σ_{k=1}^{N-2} m_k·m_{k+1}·m_{k+2}  +  m_{N-1}·m_N          (eq. 40)

where a *step* is one cost-function evaluation + one addition + one
comparison.  The paper then serializes the same problem by **grouping
adjacent variables** (eq. 41) so the result can run on the Section-3
systolic arrays.

This module implements the general bucket-elimination engine (any
term structure, any elimination order), exact step accounting matching
eq. (40), assignment recovery, and the grouping transform producing an
equivalent :class:`~repro.graphs.multistage.MultistageGraph`.
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import Callable, Hashable, Mapping, Sequence

import numpy as np

from ..graphs import MultistageGraph, Term
from ..graphs.interaction import InteractionGraph
from ..semiring import MIN_PLUS, Semiring

__all__ = [
    "NonserialObjective",
    "EliminationResult",
    "banded_objective",
    "eliminate",
    "brute_force_minimum",
    "eq40_step_count",
    "group_variables_to_serial",
    "group_variables_to_serial_w",
    "banded_objective_w",
]


@dataclasses.dataclass(frozen=True)
class NonserialObjective:
    """A discrete objective ``⊕-combine of g_i(Xⁱ)`` over named variables.

    Parameters
    ----------
    domains:
        Mapping variable name → 1-D array of its quantized values.
    terms:
        ``(variables, function)`` pairs.  Each function must be
        vectorized: it is called with one broadcastable array per listed
        variable and must return elementwise costs.
    semiring:
        ``mul`` combines terms (``+`` for min-plus), ``add`` eliminates
        variables (``min``).
    """

    domains: Mapping[Hashable, np.ndarray]
    terms: tuple[tuple[tuple[Hashable, ...], Callable[..., np.ndarray]], ...]
    semiring: Semiring = MIN_PLUS

    def __post_init__(self) -> None:
        doms = {k: np.asarray(v, dtype=np.float64) for k, v in self.domains.items()}
        for k, v in doms.items():
            if v.ndim != 1 or v.size == 0:
                raise ValueError(f"domain of {k!r} must be a non-empty 1-D array")
        object.__setattr__(self, "domains", doms)
        if not self.terms:
            raise ValueError("need at least one term")
        for tvars, _fn in self.terms:
            unknown = [v for v in tvars if v not in doms]
            if unknown:
                raise ValueError(f"term mentions unknown variables {unknown}")

    @property
    def variables(self) -> tuple[Hashable, ...]:
        """Variables in order of first appearance across terms."""
        out: list[Hashable] = []
        seen: set[Hashable] = set()
        for tvars, _ in self.terms:
            for v in tvars:
                if v not in seen:
                    seen.add(v)
                    out.append(v)
        return tuple(out)

    def interaction_graph(self) -> InteractionGraph:
        """Structural view consumed by the classifier and order heuristics."""
        return InteractionGraph([Term(tuple(tvars)) for tvars, _ in self.terms])

    def term_table(self, index: int) -> tuple[tuple[Hashable, ...], np.ndarray]:
        """Materialize term ``index`` as a dense table over its variables."""
        tvars, fn = self.terms[index]
        grids = []
        for axis, v in enumerate(tvars):
            shape = [1] * len(tvars)
            shape[axis] = self.domains[v].size
            grids.append(self.domains[v].reshape(shape))
        table = self.semiring.asarray(fn(*grids))
        expected = tuple(self.domains[v].size for v in tvars)
        if table.shape != expected:
            table = np.broadcast_to(table, expected).copy()
        return tuple(tvars), table

    def evaluate(self, assignment: Mapping[Hashable, int]) -> float:
        """Objective value at an assignment of *value indices* per variable."""
        sr = self.semiring
        acc = sr.one
        for tvars, fn in self.terms:
            args = [np.asarray(self.domains[v][assignment[v]]) for v in tvars]
            acc = sr.scalar_mul(acc, float(fn(*args)))
        return acc


@dataclasses.dataclass(frozen=True)
class EliminationResult:
    """Outcome of a full variable-elimination run."""

    optimum: float
    assignment: dict[Hashable, int]  # variable -> winning value index
    order: tuple[Hashable, ...]  # elimination order actually used
    elimination_steps: tuple[int, ...]  # per-eliminated-variable step counts
    final_reduction_steps: int  # joint reduction over the tail variables
    total_steps: int
    max_table_size: int  # peak intermediate-table cardinality


class _Factor:
    """Dense table over an ordered tuple of variables (internal)."""

    __slots__ = ("vars", "table")

    def __init__(self, vars_: tuple[Hashable, ...], table: np.ndarray):
        self.vars = vars_
        self.table = table


def _combine(sr: Semiring, factors: list[_Factor]) -> _Factor:
    """⊗-combine factors onto the union of their variables (broadcasted)."""
    union: list[Hashable] = []
    for f in factors:
        for v in f.vars:
            if v not in union:
                union.append(v)
    axis_of = {v: i for i, v in enumerate(union)}
    var_size: dict[Hashable, int] = {}
    for f in factors:
        for v, s in zip(f.vars, f.table.shape):
            var_size[v] = s
    full_shape = tuple(var_size[v] for v in union)
    out: np.ndarray | None = None
    for f in factors:
        # Permute this factor's axes into union-relative order, then pad
        # missing variables with length-1 axes so broadcasting aligns.
        perm = sorted(range(len(f.vars)), key=lambda a: axis_of[f.vars[a]])
        src = np.transpose(f.table, perm)
        shape = [1] * len(union)
        for axis_in_src, axis_in_factor in enumerate(perm):
            shape[axis_of[f.vars[axis_in_factor]]] = src.shape[axis_in_src]
        src = src.reshape(shape)
        out = src if out is None else sr.mul(out, src)
    assert out is not None
    if out.shape != full_shape:
        out = np.broadcast_to(out, full_shape)
    return _Factor(tuple(union), np.ascontiguousarray(out))


def eliminate(
    objective: NonserialObjective,
    order: Sequence[Hashable] | None = None,
    *,
    joint_tail: int = 2,
) -> EliminationResult:
    """Multistage optimization by step-by-step variable elimination.

    Variables are eliminated in ``order`` (default: order of first
    appearance, the paper's natural order) until at most ``joint_tail``
    variables remain; those are then reduced jointly, mirroring the
    paper's final "compare all values of h_{N-2}(v_{N-1}, v_N)".  With
    ``joint_tail=2`` on the banded objective of eq. (36) the recorded
    ``total_steps`` equals eq. (40) exactly — the benchmark asserts so.

    Step accounting: eliminating ``v`` costs the cardinality of the joint
    table over ``v`` and its co-occurring variables (one f-evaluation,
    one addition, one comparison per cell, per the paper's definition of
    a step).
    """
    sr = objective.semiring
    if sr.add_argreduce is None:
        raise ValueError(f"semiring {sr.name!r} does not support decision extraction")
    all_vars = objective.variables
    if order is None:
        order = all_vars
    order = tuple(order)
    if set(order) != set(all_vars):
        raise ValueError("order must be a permutation of the objective's variables")
    if not 1 <= joint_tail <= len(all_vars):
        raise ValueError("joint_tail must be in [1, number of variables]")

    factors: list[_Factor] = [
        _Factor(*objective.term_table(i)) for i in range(len(objective.terms))
    ]
    records: list[tuple[Hashable, tuple[Hashable, ...], np.ndarray]] = []
    steps: list[int] = []
    max_table = max(f.table.size for f in factors)

    head = order[: len(order) - joint_tail]
    tail = order[len(order) - joint_tail :]
    for v in head:
        involved = [f for f in factors if v in f.vars]
        rest = [f for f in factors if v not in f.vars]
        if not involved:
            # v appears in no remaining factor: pick index 0 arbitrarily.
            records.append((v, (), np.asarray(0)))
            steps.append(int(objective.domains[v].size))
            continue
        combined = _combine(sr, involved)
        steps.append(int(combined.table.size))
        max_table = max(max_table, combined.table.size)
        axis = combined.vars.index(v)
        moved = np.moveaxis(combined.table, axis, -1)
        arg = sr.add_argreduce(moved, axis=-1)
        val = np.take_along_axis(moved, np.expand_dims(arg, -1), axis=-1)[..., 0]
        neighbor_vars = tuple(u for u in combined.vars if u != v)
        records.append((v, neighbor_vars, np.asarray(arg)))
        rest.append(_Factor(neighbor_vars, np.asarray(val)))
        factors = rest

    # Joint reduction over the tail variables.
    combined = _combine(sr, factors)
    # combined.vars ⊆ tail (some tail variables may be absent if they
    # appear in no term — they then take index 0).
    final_steps = int(combined.table.size)
    max_table = max(max_table, combined.table.size)
    flat_idx = int(sr.add_argreduce(combined.table, axis=None))
    optimum = float(combined.table.reshape(-1)[flat_idx])
    tail_assignment = dict(
        zip(combined.vars, np.unravel_index(flat_idx, combined.table.shape))
    )
    assignment: dict[Hashable, int] = {
        v: int(tail_assignment.get(v, 0)) for v in tail
    }
    # Back-substitute through elimination records, newest first.
    for v, neighbor_vars, arg in reversed(records):
        idx = tuple(assignment[u] for u in neighbor_vars)
        assignment[v] = int(arg[idx] if neighbor_vars else arg)

    return EliminationResult(
        optimum=optimum,
        assignment=assignment,
        order=order,
        elimination_steps=tuple(steps),
        final_reduction_steps=final_steps,
        total_steps=int(sum(steps) + final_steps),
        max_table_size=int(max_table),
    )


def brute_force_minimum(objective: NonserialObjective) -> tuple[float, dict[Hashable, int]]:
    """Exhaustive optimum over the full joint domain (test oracle)."""
    sr = objective.semiring
    names = objective.variables
    best = sr.zero
    best_assign: dict[Hashable, int] | None = None
    sizes = [objective.domains[v].size for v in names]
    for combo in itertools.product(*[range(s) for s in sizes]):
        assign = dict(zip(names, combo))
        val = objective.evaluate(assign)
        if best_assign is None or sr.scalar_add(val, best) == val and val != best:
            best, best_assign = val, assign
    assert best_assign is not None
    return best, best_assign


def banded_objective(
    rng: np.random.Generator,
    domain_sizes: Sequence[int],
    *,
    low: float = 0.0,
    high: float = 10.0,
) -> NonserialObjective:
    """The paper's eq. (36) workload: terms ``g_k(V_k, V_{k+1}, V_{k+2})``.

    Each ``g_k`` is a random dense table over three consecutive
    variables.  ``domain_sizes[k]`` is ``m_{k+1}`` of the paper.
    """
    n = len(domain_sizes)
    if n < 3:
        raise ValueError("banded objective needs at least 3 variables")
    domains = {
        f"V{k + 1}": np.arange(int(domain_sizes[k]), dtype=np.float64)
        for k in range(n)
    }

    def make_term(k: int):
        m1, m2, m3 = (int(domain_sizes[k + d]) for d in range(3))
        table = rng.uniform(low, high, size=(m1, m2, m3))

        def fn(a, b, c, _table=table):
            # Domains are index grids (0 … m-1), so values index the table.
            ai = np.asarray(a, dtype=np.intp)
            bi = np.asarray(b, dtype=np.intp)
            ci = np.asarray(c, dtype=np.intp)
            return _table[ai, bi, ci]

        return (tuple(f"V{k + d + 1}" for d in range(3)), fn)

    return NonserialObjective(
        domains=domains, terms=tuple(make_term(k) for k in range(n - 2))
    )


def eq40_step_count(domain_sizes: Sequence[int]) -> int:
    """Closed form of paper eq. (40) for the banded objective.

    ``Σ_{k=1}^{N-2} m_k·m_{k+1}·m_{k+2} + m_{N-1}·m_N``.
    """
    m = [int(s) for s in domain_sizes]
    n = len(m)
    if n < 3:
        raise ValueError("eq. 40 is defined for N >= 3 variables")
    return sum(m[k] * m[k + 1] * m[k + 2] for k in range(n - 2)) + m[-2] * m[-1]


def group_variables_to_serial(objective: NonserialObjective) -> tuple[
    MultistageGraph, tuple[tuple[tuple[int, int], ...], ...]
]:
    """Serialize a banded objective by grouping adjacent variables (eq. 41).

    Builds composite variables ``V'_k = (V_k, V_{k+1})`` whose domains
    are the cartesian products of the originals, and a multistage graph
    whose layer-``k`` cost matrix carries ``g_k`` on *consistent*
    composite pairs (those agreeing on the shared original variable) and
    the semiring zero elsewhere.  The graph's monadic optimum equals the
    nonserial optimum; tests assert this against :func:`eliminate`.

    Returns ``(graph, composite_states)`` where ``composite_states[k]``
    lists, for each composite node of stage ``k``, its pair of original
    value indices.
    """
    names = objective.variables
    n = len(names)
    if n < 3:
        raise ValueError("grouping transform targets objectives with >= 3 variables")
    expected_vars = [tuple(names[k + d] for d in range(3)) for k in range(n - 2)]
    actual_vars = [tuple(tvars) for tvars, _ in objective.terms]
    if actual_vars != expected_vars:
        raise ValueError(
            "grouping transform requires the banded form g_k(V_k, V_{k+1}, V_{k+2}) "
            f"in order; got terms over {actual_vars}"
        )
    sr = objective.semiring
    sizes = [objective.domains[v].size for v in names]
    composite_states = tuple(
        tuple(itertools.product(range(sizes[k]), range(sizes[k + 1])))
        for k in range(n - 1)
    )
    costs = []
    for k in range(n - 2):
        _tvars, table = objective.term_table(k)  # shape (m_k, m_{k+1}, m_{k+2})
        mk, mk1, mk2 = sizes[k], sizes[k + 1], sizes[k + 2]
        layer = sr.zeros((mk * mk1, mk1 * mk2))
        # Composite (a, b) -> (b, c) is consistent; cost g_k(a, b, c).
        a = np.repeat(np.arange(mk), mk1)
        b = np.tile(np.arange(mk1), mk)
        rows = np.arange(mk * mk1)
        for c in range(mk2):
            cols = b * mk2 + c
            layer[rows, cols] = table[a, b, c]
        costs.append(layer)
    graph = MultistageGraph(costs=tuple(costs), semiring=sr)
    return graph, composite_states


def group_variables_to_serial_w(
    objective: NonserialObjective, bandwidth: int
) -> tuple[MultistageGraph, tuple[tuple[tuple[int, ...], ...], ...]]:
    """Serialize a bandwidth-``w`` objective by grouping ``w − 1`` variables.

    The general form of Section 6.1's recipe ("combine several primary
    variables into a new variable"): for an objective whose ``k``-th term
    spans the ``w`` consecutive variables ``V_k … V_{k+w-1}``, the
    composite variables ``V'_k = (V_k, …, V_{k+w-2})`` chain serially —
    adjacent composites overlap on ``w − 2`` originals — and the term
    cost rides on the consistent composite transitions.  ``bandwidth=3``
    reproduces :func:`group_variables_to_serial` (tests assert
    equality); larger bandwidths pay composite domains of size
    ``Π m`` over ``w − 1`` variables, the blow-up the paper's
    "computational time and storage depend on the number of elements in
    the domain of h₁" sentence prices.

    Returns ``(graph, composite_states)`` with
    ``composite_states[k][node]`` the tuple of original value indices.
    """
    w = int(bandwidth)
    if w < 2:
        raise ValueError("bandwidth must be at least 2")
    names = objective.variables
    n = len(names)
    if n < w:
        raise ValueError(f"need at least {w} variables for bandwidth {w}")
    expected = [tuple(names[k + d] for d in range(w)) for k in range(n - w + 1)]
    actual = [tuple(tvars) for tvars, _fn in objective.terms]
    if actual != expected:
        raise ValueError(
            f"grouping requires consecutive bandwidth-{w} terms in order; "
            f"got terms over {actual}"
        )
    sr = objective.semiring
    sizes = [objective.domains[v].size for v in names]
    group = w - 1  # originals per composite variable
    n_composites = n - group + 1
    composite_states = tuple(
        tuple(itertools.product(*(range(sizes[k + d]) for d in range(group))))
        for k in range(n_composites)
    )
    costs = []
    for k in range(n_composites - 1):
        _tvars, table = objective.term_table(k)  # over V_k .. V_{k+w-1}
        rows = composite_states[k]
        cols = composite_states[k + 1]
        col_index = {state: j for j, state in enumerate(cols)}
        layer = sr.zeros((len(rows), len(cols)))
        for i, row in enumerate(rows):
            # Consistent successors share the trailing group-1 originals.
            suffix = row[1:]
            for c_last in range(sizes[k + group]):
                j = col_index[suffix + (c_last,)]
                layer[i, j] = table[row + (c_last,)]
        costs.append(layer)
    graph = MultistageGraph(costs=tuple(costs), semiring=sr)
    return graph, composite_states


def banded_objective_w(
    rng: np.random.Generator,
    domain_sizes: Sequence[int],
    bandwidth: int,
    *,
    low: float = 0.0,
    high: float = 10.0,
) -> NonserialObjective:
    """Random objective with terms over ``bandwidth`` consecutive variables.

    ``bandwidth=3`` reproduces :func:`banded_objective`'s structure; the
    general form feeds :func:`group_variables_to_serial_w`.
    """
    w = int(bandwidth)
    n = len(domain_sizes)
    if w < 2:
        raise ValueError("bandwidth must be at least 2")
    if n < w:
        raise ValueError(f"need at least {w} variables for bandwidth {w}")
    domains = {
        f"V{k + 1}": np.arange(int(domain_sizes[k]), dtype=np.float64)
        for k in range(n)
    }

    def make_term(k: int):
        shape = tuple(int(domain_sizes[k + d]) for d in range(w))
        table = rng.uniform(low, high, size=shape)

        def fn(*args, _table=table):
            idx = tuple(np.asarray(a, dtype=np.intp) for a in args)
            return _table[idx]

        return (tuple(f"V{k + d + 1}" for d in range(w)), fn)

    return NonserialObjective(
        domains=domains, terms=tuple(make_term(k) for k in range(n - w + 1))
    )
