"""Sequential monadic-serial DP solvers (paper eqs. 1, 2 and 12).

These are the uniprocessor reference implementations that every systolic
design in Section 3 is validated against, and whose operation counts form
the numerator of the processor-utilization formula (eq. 9).

* :func:`solve_backward` — eq. (1): ``f₁(i) = min_j [c_{i,j} + f₁(j)]``,
  cost-to-sink, evaluated from the last stage toward the first.
* :func:`solve_forward` — eq. (2): ``f₂(i) = min_j [f₂(j) + c_{j,i}]``,
  cost-from-source, evaluated from the first stage toward the last.

Both record per-stage value vectors, the winning decisions, and the
elementary-operation count (one ``⊗`` + one ``⊕``-merge per examined
edge), then reconstruct one optimal path.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..graphs import MultistageGraph, NodeValueProblem, StagePath
from ..semiring import Semiring

__all__ = ["MonadicSolution", "solve_backward", "solve_forward", "solve_node_value"]


@dataclasses.dataclass(frozen=True)
class MonadicSolution:
    """Result of a monadic-serial DP sweep.

    Attributes
    ----------
    direction:
        ``"forward"`` or ``"backward"``.
    stage_values:
        ``stage_values[k][i]`` is the optimal accumulated cost at vertex
        ``i`` of stage ``k`` — cost-to-sink for backward sweeps,
        cost-from-source for forward sweeps.
    decisions:
        For backward sweeps, ``decisions[k][i]`` is the next-stage vertex
        chosen from vertex ``i`` of stage ``k`` (defined for
        ``k < last``).  For forward sweeps, the previous-stage vertex
        chosen into vertex ``i`` of stage ``k`` (defined for ``k > 0``).
    optimum:
        Overall optimal source→sink cost (⊕ over entry/exit vertices).
    path:
        One optimal path realizing ``optimum``.
    op_count:
        Number of elementary DP steps (edge relaxations) performed.
    """

    direction: str
    stage_values: tuple[np.ndarray, ...]
    decisions: tuple[np.ndarray, ...]
    optimum: float
    path: StagePath
    op_count: int


def _extract(sr: Semiring, values: np.ndarray) -> tuple[float, int]:
    """⊕-reduce a value vector; return (best value, winning index)."""
    idx = int(sr.add_argreduce(values)) if sr.add_argreduce is not None else 0
    return float(values[idx]), idx


def solve_backward(graph: MultistageGraph) -> MonadicSolution:
    """Solve eq. (1) by a right-to-left sweep over the stages.

    ``stage_values[k][i]`` is the optimal cost from vertex ``i`` of stage
    ``k`` to the best sink.  Operation count for an ``(N+1)``-stage
    single-source/sink, ``m``-wide graph is ``(N - 2)·m² + m`` — the
    paper's uniprocessor baseline.
    """
    sr = graph.semiring
    if sr.add_argreduce is None:
        raise ValueError(f"semiring {sr.name!r} does not support decision extraction")
    sizes = graph.stage_sizes
    n_stages = graph.num_stages
    values: list[np.ndarray] = [np.empty(0)] * n_stages
    decisions: list[np.ndarray] = [np.empty(0, dtype=np.intp)] * n_stages
    values[-1] = sr.ones(sizes[-1])  # cost of the empty suffix
    ops = 0
    for k in range(n_stages - 2, -1, -1):
        # candidate[i, j] = c_{i,j} ⊗ f(j); one ⊗⊕ step per edge.
        candidate = sr.mul(graph.costs[k], values[k + 1][None, :])
        decisions[k] = sr.add_argreduce(candidate, axis=1).astype(np.intp)
        values[k] = np.take_along_axis(
            candidate, decisions[k][:, None], axis=1
        )[:, 0]
        ops += sizes[k] * sizes[k + 1]
    optimum, start = _extract(sr, values[0])
    nodes = [start]
    for k in range(n_stages - 1):
        nodes.append(int(decisions[k][nodes[-1]]))
    path = StagePath(nodes=tuple(nodes), cost=optimum)
    return MonadicSolution(
        direction="backward",
        stage_values=tuple(values),
        decisions=tuple(decisions),
        optimum=optimum,
        path=path,
        op_count=ops,
    )


def solve_forward(graph: MultistageGraph) -> MonadicSolution:
    """Solve eq. (2) by a left-to-right sweep over the stages.

    ``stage_values[k][i]`` is the optimal cost from the best source to
    vertex ``i`` of stage ``k``.  Equivalent optimum to
    :func:`solve_backward` (the tests assert this on random instances).
    """
    sr = graph.semiring
    if sr.add_argreduce is None:
        raise ValueError(f"semiring {sr.name!r} does not support decision extraction")
    sizes = graph.stage_sizes
    n_stages = graph.num_stages
    values: list[np.ndarray] = [np.empty(0)] * n_stages
    decisions: list[np.ndarray] = [np.empty(0, dtype=np.intp)] * n_stages
    values[0] = sr.ones(sizes[0])  # cost of the empty prefix
    ops = 0
    for k in range(1, n_stages):
        # candidate[j, i] = f(j) ⊗ c_{j,i}
        candidate = sr.mul(values[k - 1][:, None], graph.costs[k - 1])
        decisions[k] = sr.add_argreduce(candidate, axis=0).astype(np.intp)
        values[k] = np.take_along_axis(
            candidate, decisions[k][None, :], axis=0
        )[0, :]
        ops += sizes[k - 1] * sizes[k]
    optimum, end = _extract(sr, values[-1])
    nodes = [end]
    for k in range(n_stages - 1, 0, -1):
        nodes.append(int(decisions[k][nodes[-1]]))
    nodes.reverse()
    path = StagePath(nodes=tuple(nodes), cost=optimum)
    return MonadicSolution(
        direction="forward",
        stage_values=tuple(values),
        decisions=tuple(decisions),
        optimum=optimum,
        path=path,
        op_count=ops,
    )


def solve_node_value(problem: NodeValueProblem) -> MonadicSolution:
    """Variable-elimination sweep for a node-value problem (eqs. 10–13).

    Eliminates ``X₁, X₂, …`` in order, maintaining ``h(X_k)`` = shortest
    path from any stage-1 vertex to each value of ``X_k`` — exactly the
    recurrence the Fig. 5 feedback array pipelines.  Implemented as a
    forward sweep over the materialized cost matrices.
    """
    return solve_forward(problem.to_graph())
