"""Optimal matrix-chain parenthesization (paper eq. 6) — polyadic-nonserial DP.

The "secondary optimization problem" of Section 4/6.2: given matrices
``M₁ × … × M_N`` with ``M_i`` of shape ``r_{i-1} × r_i``, find the
multiplication order minimizing scalar-multiplication count:

    m[i, j] = 0                                                if i == j
    m[i, j] = min_{i ≤ k < j} (m[i, k] + m[k+1, j] + r_{i-1}·r_k·r_j)

This module is the sequential oracle for the Section 6.2 systolic /
broadcast parenthesization arrays, and supplies order objects consumed by
the divide-and-conquer executor.
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import Sequence

import numpy as np

__all__ = [
    "ChainOrder",
    "solve_matrix_chain",
    "brute_force_matrix_chain",
    "multiply_in_order",
    "count_scalar_multiplications",
    "enumerate_parenthesizations",
]


@dataclasses.dataclass(frozen=True)
class ChainOrder:
    """An evaluated parenthesization of a matrix chain.

    ``expression`` is a nested tuple of 1-based matrix indices, e.g.
    ``((1, 2), (3, 4))`` for ``(M₁M₂)(M₃M₄)``.  ``cost`` is its scalar
    multiplication count for the given dimension vector.
    """

    dims: tuple[int, ...]  # r_0, r_1, …, r_N
    expression: tuple | int
    cost: int

    @property
    def num_matrices(self) -> int:
        return len(self.dims) - 1


def _check_dims(dims: Sequence[int]) -> tuple[int, ...]:
    dims = tuple(int(d) for d in dims)
    if len(dims) < 2:
        raise ValueError("need at least one matrix (two dimensions)")
    if any(d <= 0 for d in dims):
        raise ValueError(f"all dimensions must be positive, got {dims}")
    return dims


def solve_matrix_chain(dims: Sequence[int]) -> ChainOrder:
    """Dynamic-programming solution of eq. (6).

    ``dims`` is ``(r₀, r₁, …, r_N)``; matrix ``M_i`` (1-based) is
    ``r_{i-1} × r_i``.  Runs the classic ``O(N³)`` diagonal-by-diagonal
    recursion; the cost table's diagonal sweep is vectorized with NumPy
    so the inner minimization is one reduction per cell row.
    """
    dims = _check_dims(dims)
    n = len(dims) - 1
    r = np.asarray(dims, dtype=np.int64)
    m = np.zeros((n + 1, n + 1), dtype=np.int64)  # 1-based [i, j]
    split = np.zeros((n + 1, n + 1), dtype=np.int64)
    for span in range(2, n + 1):  # chain length
        for i in range(1, n - span + 2):
            j = i + span - 1
            ks = np.arange(i, j)
            costs = m[i, ks] + m[ks + 1, j] + r[i - 1] * r[ks] * r[j]
            best = int(np.argmin(costs))
            m[i, j] = costs[best]
            split[i, j] = ks[best]

    def build(i: int, j: int):
        if i == j:
            return i
        k = int(split[i, j])
        return (build(i, k), build(k + 1, j))

    return ChainOrder(dims=dims, expression=build(1, n), cost=int(m[1, n]))


def enumerate_parenthesizations(n: int):
    """Yield every full parenthesization of ``n`` matrices (Catalan many).

    1-based nested tuples; exponential — test oracle only.
    """
    if n < 1:
        raise ValueError("need n >= 1")

    def gen(i: int, j: int):
        if i == j:
            yield i
            return
        for k in range(i, j):
            for left in gen(i, k):
                for right in gen(k + 1, j):
                    yield (left, right)

    yield from gen(1, n)


def count_scalar_multiplications(
    dims: Sequence[int], expression: tuple | int
) -> tuple[int, tuple[int, int]]:
    """Cost of an explicit parenthesization; returns (cost, result shape).

    The result shape is ``(r_{i-1}, r_j)`` for the covered range
    ``i … j``; used to validate that DP costs match actually-executed
    multiplication counts.
    """
    dims = _check_dims(dims)

    def walk(expr) -> tuple[int, int, int]:  # (cost, first_index, last_index)
        if isinstance(expr, int):
            if not 1 <= expr <= len(dims) - 1:
                raise ValueError(f"matrix index {expr} out of range")
            return 0, expr, expr
        left, right = expr
        cl, li, lj = walk(left)
        cr, ri, rj = walk(right)
        if ri != lj + 1:
            raise ValueError(f"non-contiguous parenthesization at {expr}")
        cost = cl + cr + dims[li - 1] * dims[lj] * dims[rj]
        return cost, li, rj

    cost, i, j = walk(expression)
    return cost, (dims[i - 1], dims[j])


def brute_force_matrix_chain(dims: Sequence[int]) -> ChainOrder:
    """Exhaustive minimum over all parenthesizations (test oracle)."""
    dims = _check_dims(dims)
    n = len(dims) - 1
    best_expr: tuple | int | None = None
    best_cost = None
    for expr in enumerate_parenthesizations(n):
        cost, _ = count_scalar_multiplications(dims, expr)
        if best_cost is None or cost < best_cost:
            best_cost, best_expr = cost, expr
    assert best_expr is not None and best_cost is not None
    return ChainOrder(dims=dims, expression=best_expr, cost=int(best_cost))


def multiply_in_order(
    matrices: Sequence[np.ndarray], expression: tuple | int
) -> tuple[np.ndarray, int]:
    """Execute a parenthesization on real matrices.

    Returns the product and the scalar-multiplication count actually
    incurred (``rows × inner × cols`` summed over every 2-operand
    multiply).  Used by the examples to demonstrate that the DP order
    beats naive left-to-right evaluation.
    """
    mats = [np.asarray(m) for m in matrices]
    for a, b in itertools.pairwise(mats):
        if a.shape[1] != b.shape[0]:
            raise ValueError("matrix chain has incompatible shapes")

    def walk(expr) -> tuple[np.ndarray, int]:
        if isinstance(expr, int):
            return mats[expr - 1], 0
        left, right = expr
        a, ca = walk(left)
        b, cb = walk(right)
        cost = ca + cb + a.shape[0] * a.shape[1] * b.shape[1]
        return a @ b, cost

    return walk(expression)
