"""Cycle-accurate simulation of a serial AND/OR graph on a planar PE array.

:mod:`repro.andor.mapping` derives the level-synchronous schedule
*analytically*; this module executes it on the RTL fabric — one PE per
node, values latched level by level through two-phase registers — so the
"map the serialized AND/OR-graph directly into a planar systolic array"
recipe of Section 6.2 is demonstrated as clocked hardware, not just as a
formula.  The simulated wall ticks are checked against
:func:`~repro.andor.mapping.map_to_array`'s step count and the computed
root values against :meth:`AndOrGraph.evaluate`.

Per tick, a level's PEs fold up to ``compare_capacity`` ⊕-alternatives
(OR) or complete their ⊗-combination (AND, dummy, leaf); a level latches
its outputs only when every PE in it has finished, matching the paper's
requirement that AND operands arrive simultaneously while OR nodes are
evaluated sequentially.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..systolic.fabric import RunReport, SystolicMachine
from .graph import AndOrGraph, NodeKind

__all__ = ["AndOrArrayRun", "simulate_andor_array"]


@dataclasses.dataclass(frozen=True)
class AndOrArrayRun:
    """Result of a clocked AND/OR-array execution."""

    values: np.ndarray  # final value of every node
    report: RunReport
    level_of: np.ndarray  # node id -> level
    ticks_per_level: tuple[int, ...]


def simulate_andor_array(
    graph: AndOrGraph, *, compare_capacity: int = 2
) -> AndOrArrayRun:
    """Execute a *serial* AND/OR graph level-synchronously on PEs.

    Raises when the graph has level-skipping arcs (serialize first).
    """
    if compare_capacity < 1:
        raise ValueError("compare_capacity must be >= 1")
    if not graph.is_serial():
        raise ValueError("graph has level-skipping arcs; serialize it before mapping")
    sr = graph.semiring
    levels = graph.levels()
    n_levels = int(levels.max()) + 1 if len(graph.nodes) else 0
    # The AND/OR array's links follow the graph arcs, not a chain: every
    # PE reads its children's latches.  All register traffic here runs
    # at array (controller) scope, so strict mode checks only the clock
    # discipline, which the machine now owns.
    machine = SystolicMachine("andor-planar-array", topology="complete")
    pes = machine.add_pes(len(graph.nodes))
    for pe in pes:
        pe.reg("V", None)  # the node's output latch
    ticks_per_level: list[int] = []

    for lv in range(n_levels):
        members = [n for n in graph.nodes if levels[n.id] == lv]
        # Per-PE work queues for this level.
        pending: dict[int, list[float]] = {}
        acc: dict[int, float] = {}
        for node in members:
            if node.kind is NodeKind.LEAF:
                pending[node.id] = []
                acc[node.id] = node.cost
            elif node.kind is NodeKind.AND:
                # Operands arrive simultaneously from the level below:
                # the AND folds them all in its single tick.
                operands = [pes[c]["V"].value for c in node.children]
                val = node.cost
                for op in operands:
                    val = sr.scalar_mul(val, op)
                pending[node.id] = []
                acc[node.id] = val
            else:  # OR: alternatives fold sequentially at capacity/tick
                alts = [pes[c]["V"].value for c in node.children]
                acc[node.id] = alts[0]
                pending[node.id] = alts[1:]
        # Clock the level until every member PE has drained its queue.
        ticks = 0
        while True:
            ticks += 1
            for node in members:
                pe = pes[node.id]
                take = pending[node.id][:compare_capacity]
                pending[node.id] = pending[node.id][compare_capacity:]
                if take:
                    acc_id = acc[node.id]
                    for alt in take:
                        acc_id = sr.scalar_add(acc_id, alt)
                        pe.count_op()
                    acc[node.id] = acc_id
                    machine.emit("op", node.id, f"L{lv}:or-fold")
                if node.kind is not NodeKind.OR and ticks == 1:
                    pe.count_op(max(len(node.children), 1))
                    machine.emit("op", node.id, f"L{lv}:{node.kind.name.lower()}")
            machine.end_tick()
            if all(not pending[n.id] for n in members):
                break
        for node in members:
            pes[node.id]["V"].set(acc[node.id])
        machine.latch()  # level boundary: publish outputs, not a work slot
        ticks_per_level.append(ticks)

    values = np.asarray([pes[n.id]["V"].value for n in graph.nodes], dtype=sr.dtype)
    serial_ops = sum(max(len(n.children), 1) for n in graph.nodes)
    report = machine.finalize(
        iterations=int(sum(ticks_per_level)),
        serial_ops=serial_ops,
    )
    return AndOrArrayRun(
        values=values,
        report=report,
        level_of=levels,
        ticks_per_level=tuple(ticks_per_level),
    )
