"""Search procedures over additive AND/OR graphs.

Two of the paper's evaluation regimes (Section 5, Section 6.2):

* :func:`bottom_up` — the breadth-first bottom-up sweep ("expands nodes
  by levels from the bottom up", after Nilsson/Kumar): evaluates level
  by level and reports per-level work, which is what the
  level-synchronous array mapping consumes.
* :func:`ao_star` — a top-down best-first search with memoization and
  branch-and-bound pruning of AND expansions (the AO*-flavoured
  alternative the paper cites via Martelli–Montanari and Nilsson).  It
  returns the same optimal cost while visiting a (often strict) subset
  of nodes; the benchmark contrasts nodes-visited against the bottom-up
  sweep.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from .graph import AndOrGraph, NodeKind

__all__ = ["BottomUpResult", "bottom_up", "AOStarResult", "ao_star"]


@dataclasses.dataclass(frozen=True)
class BottomUpResult:
    """Level-synchronous bottom-up evaluation record."""

    values: np.ndarray  # value of every node
    levels: np.ndarray  # level of every node
    level_widths: tuple[int, ...]  # nodes evaluated per level
    num_levels: int

    @property
    def max_width(self) -> int:
        """PE count a level-synchronous array needs (widest level)."""
        return max(self.level_widths)


def bottom_up(graph: AndOrGraph) -> BottomUpResult:
    """Evaluate all nodes level by level from the leaves up."""
    levels = graph.levels()
    values = graph.evaluate()
    n_levels = int(levels.max()) + 1 if len(graph.nodes) else 0
    widths = tuple(int(np.count_nonzero(levels == lv)) for lv in range(n_levels))
    return BottomUpResult(
        values=values, levels=levels, level_widths=widths, num_levels=n_levels
    )


@dataclasses.dataclass(frozen=True)
class AOStarResult:
    """Top-down search record."""

    cost: float
    nodes_visited: int  # distinct nodes expanded
    nodes_total: int
    pruned_and_nodes: int  # AND expansions cut by the bound


def ao_star(graph: AndOrGraph, root: int, *, prune: bool = True) -> AOStarResult:
    """Top-down memoized search with additive branch-and-bound pruning.

    Each OR node explores its children in order, threading the best cost
    found so far as an incumbent bound; an AND child aborts as soon as
    its partial ⊗-accumulation is already strictly dominated by the
    incumbent.  The cut is sound only when ⊗ can never *improve* a value
    (min-plus with nonnegative costs, max-times with factors in [0, 1],
    …); pass ``prune=False`` for cost structures without that
    monotonicity and the search degrades to plain memoized evaluation.

    AND values are memoized only when computed without a cut, so memo
    entries are exact; OR values are always exact (a cut child was
    already strictly worse than the incumbent when it was cut).
    """
    sr = graph.semiring
    if not 0 <= root < len(graph.nodes):
        raise ValueError(f"root {root} out of range")
    memo: dict[int, float] = {}
    visited: set[int] = set()
    pruned = 0
    no_bound = object()

    def strictly_dominates(a: float, b: float) -> bool:
        return a != b and sr.scalar_add(a, b) == a

    def eval_node(nid: int, bound) -> tuple[float, bool]:
        """Returns (value, exact); exact is False when a cut fired."""
        nonlocal pruned
        if nid in memo:
            return memo[nid], True
        visited.add(nid)
        node = graph.nodes[nid]
        if node.kind is NodeKind.LEAF:
            memo[nid] = node.cost
            return node.cost, True
        if node.kind is NodeKind.AND:
            acc = node.cost
            exact = True
            for c in node.children:
                if (
                    prune
                    and bound is not no_bound
                    and strictly_dominates(bound, acc)
                ):
                    pruned += 1
                    return acc, False
                val, child_exact = eval_node(c, no_bound)
                exact = exact and child_exact
                acc = sr.scalar_mul(acc, val)
            if exact:
                memo[nid] = acc
            return acc, exact
        # OR node: fold the best child, threading the incumbent down.
        best = sr.zero  # ⊕-identity: "no incumbent yet"
        for c in node.children:
            val, _exact = eval_node(c, best if best != sr.zero else no_bound)
            best = sr.scalar_add(best, val)
        memo[nid] = best
        return best, True

    cost, _ = eval_node(root, no_bound)
    return AOStarResult(
        cost=float(cost),
        nodes_visited=len(visited),
        nodes_total=len(graph.nodes),
        pruned_and_nodes=pruned,
    )
