"""Mapping serial AND/OR graphs onto level-synchronous processor arrays.

Section 6.2's recipe: "starting from an AND/OR-graph, a systolic array
with planar interconnections can be designed by first serializing links
that connect nodes not in adjacent levels … and by designing the
appropriate control signals."  This module performs the mapping step:
given a *serial* AND/OR graph (every arc spans exactly one level), it
assigns one PE per node, schedules each level in one synchronous step,
and reports the hardware/time costs — PEs per level, total steps, and
per-step operation counts — against which Propositions 2/3 and the
dummy-node overhead of the serialization are quantified.

An OR node with ``b`` children needs ``b − 1`` sequential comparisons
when evaluated by one PE (the paper's OR nodes are evaluated
sequentially while AND operands must arrive simultaneously, see the
Theorem-2 discussion); the mapping therefore also reports schedule
lengths under a configurable per-step comparison capacity.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from .graph import AndOrGraph, NodeKind

__all__ = ["LevelMapping", "map_to_array"]


@dataclasses.dataclass(frozen=True)
class LevelMapping:
    """A level-synchronous schedule of a serial AND/OR graph."""

    num_levels: int
    level_widths: tuple[int, ...]  # PEs required per level
    steps: int  # total synchronous steps
    ops_per_level: tuple[int, ...]  # ⊗/⊕ operations performed per level
    dummy_nodes: int  # pass-through nodes occupying PEs
    values: np.ndarray  # node values (for validation)

    @property
    def num_pes(self) -> int:
        """Total PEs when each level is its own PE rank (planar layout)."""
        return int(sum(self.level_widths))

    @property
    def max_width(self) -> int:
        return max(self.level_widths) if self.level_widths else 0


def map_to_array(graph: AndOrGraph, *, compare_capacity: int = 2) -> LevelMapping:
    """Schedule a serial AND/OR graph on a planar level-synchronous array.

    ``compare_capacity`` is the number of ⊕-folds a PE performs per step
    (the paper's parenthesization processors fold two alternatives per
    step).  A level's step cost is the worst node in it:
    ``⌈(b − 1)/capacity⌉`` steps for a ``b``-ary OR, 1 step for AND,
    leaf and dummy nodes.  Raises when the graph is not serial — run
    :func:`repro.andor.serialize.serialize` first.
    """
    if compare_capacity < 1:
        raise ValueError("compare_capacity must be >= 1")
    if not graph.is_serial():
        raise ValueError(
            "graph has level-skipping arcs; serialize it before mapping"
        )
    levels = graph.levels()
    n_levels = int(levels.max()) + 1 if len(graph.nodes) else 0
    widths = [0] * n_levels
    ops = [0] * n_levels
    level_steps = [1] * n_levels
    dummies = 0
    for node in graph.nodes:
        lv = int(levels[node.id])
        widths[lv] += 1
        b = len(node.children)
        if node.kind is NodeKind.AND:
            ops[lv] += b  # b - 1 ⊗-folds plus the local-cost ⊗
            level_steps[lv] = max(level_steps[lv], 1)
        elif node.kind is NodeKind.OR:
            if b == 1 and isinstance(node.label, tuple) and node.label[:1] == ("dummy",):
                dummies += 1
            else:
                ops[lv] += max(b - 1, 0)
            level_steps[lv] = max(
                level_steps[lv], -(-(max(b - 1, 1)) // compare_capacity)
            )
    values = graph.evaluate()
    return LevelMapping(
        num_levels=n_levels,
        level_widths=tuple(widths),
        steps=int(sum(level_steps)),
        ops_per_level=tuple(ops),
        dummy_nodes=dummies,
        values=values,
    )
