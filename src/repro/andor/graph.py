"""Additive AND/OR graphs (Martelli–Montanari) — the polyadic substrate.

The paper represents polyadic DP problems as searches of *additive*
acyclic AND/OR-graphs (Section 2.2, Section 5): an AND-node is solved
when **all** children are solved and costs a monotone combination (here:
the semiring ⊗, i.e. ``+`` for min-plus, plus an optional local arc
cost); an OR-node is solved by its **best** child (semiring ⊕ = ``min``).
Leaves carry given costs (edge costs of the multistage graph, or the 0 of
``m_{i,i}``).

Graphs are built bottom-up, so children always have smaller ids than
parents and a single forward pass is a valid topological evaluation
order — a property :meth:`AndOrGraph.evaluate` exploits and
:meth:`AndOrGraph.add_and`/:meth:`add_or` enforce.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Iterable

import numpy as np

from ..semiring import MIN_PLUS, Semiring

__all__ = ["NodeKind", "AndOrNode", "AndOrGraph", "SolutionTree"]


class NodeKind(enum.Enum):
    LEAF = "leaf"
    AND = "and"
    OR = "or"


@dataclasses.dataclass(frozen=True)
class AndOrNode:
    """One node: id, kind, children ids, local cost, free-form label."""

    id: int
    kind: NodeKind
    children: tuple[int, ...]
    cost: float  # LEAF value, or AND local arc cost (⊗-combined in)
    label: object = None


@dataclasses.dataclass(frozen=True)
class SolutionTree:
    """A minimal-cost solution tree rooted at ``root``.

    ``chosen[or_id]`` is the winning child of each OR node on the tree;
    ``nodes`` is the set of node ids the tree touches.
    """

    root: int
    cost: float
    chosen: dict[int, int]
    nodes: frozenset[int]


class AndOrGraph:
    """A mutable additive AND/OR graph with bottom-up construction."""

    def __init__(self, semiring: Semiring = MIN_PLUS):
        self.semiring = semiring
        self.nodes: list[AndOrNode] = []

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_leaf(self, cost: float, label: object = None) -> int:
        """Add a terminal node with the given cost; returns its id."""
        nid = len(self.nodes)
        self.nodes.append(AndOrNode(nid, NodeKind.LEAF, (), float(cost), label))
        return nid

    def _check_children(self, children: Iterable[int]) -> tuple[int, ...]:
        ch = tuple(children)
        if not ch:
            raise ValueError("internal nodes need at least one child")
        nid = len(self.nodes)
        for c in ch:
            if not 0 <= c < nid:
                raise ValueError(
                    f"child {c} does not exist yet (bottom-up construction required)"
                )
        return ch

    def add_and(
        self, children: Iterable[int], cost: float | None = None, label: object = None
    ) -> int:
        """Add an AND node (⊗ of children, plus optional local cost)."""
        ch = self._check_children(children)
        local = self.semiring.one if cost is None else float(cost)
        nid = len(self.nodes)
        self.nodes.append(AndOrNode(nid, NodeKind.AND, ch, local, label))
        return nid

    def add_or(self, children: Iterable[int], label: object = None) -> int:
        """Add an OR node (⊕ over children)."""
        ch = self._check_children(children)
        nid = len(self.nodes)
        self.nodes.append(AndOrNode(nid, NodeKind.OR, ch, self.semiring.one, label))
        return nid

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.nodes)

    def count_kind(self, kind: NodeKind) -> int:
        return sum(1 for n in self.nodes if n.kind is kind)

    def num_arcs(self) -> int:
        return sum(len(n.children) for n in self.nodes)

    def height(self, root: int) -> int:
        """Longest leaf-to-root arc count below ``root`` (memoized)."""
        memo: dict[int, int] = {}

        def h(nid: int) -> int:
            if nid in memo:
                return memo[nid]
            node = self.nodes[nid]
            out = 0 if not node.children else 1 + max(h(c) for c in node.children)
            memo[nid] = out
            return out

        return h(root)

    def levels(self) -> np.ndarray:
        """Longest-path-from-leaves level of every node (leaves = 0).

        This is the layering the serialization transform and the
        level-synchronous array mapping use.
        """
        out = np.zeros(len(self.nodes), dtype=np.int64)
        for node in self.nodes:  # ids are topologically ordered
            if node.children:
                out[node.id] = 1 + max(out[c] for c in node.children)
        return out

    def is_serial(self) -> bool:
        """True when every arc connects adjacent levels (paper Section 5).

        Serial AND/OR graphs map directly onto planar systolic arrays;
        nonserial ones must pass through
        :func:`repro.andor.serialize.serialize` first.
        """
        lv = self.levels()
        return all(
            lv[n.id] - lv[c] == 1 for n in self.nodes for c in n.children
        )

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def evaluate(self) -> np.ndarray:
        """Bottom-up value of every node (one topological forward pass)."""
        sr = self.semiring
        values = np.empty(len(self.nodes), dtype=sr.dtype)
        for node in self.nodes:
            if node.kind is NodeKind.LEAF:
                values[node.id] = node.cost
            elif node.kind is NodeKind.AND:
                acc = node.cost
                for c in node.children:
                    acc = sr.scalar_mul(acc, float(values[c]))
                values[node.id] = acc
            else:  # OR
                acc = sr.zero
                for c in node.children:
                    acc = sr.scalar_add(acc, float(values[c]))
                values[node.id] = acc
        return values

    def solution_tree(self, root: int, values: np.ndarray | None = None) -> SolutionTree:
        """Extract a minimal-cost solution tree below ``root``.

        OR nodes keep their single best child; AND nodes keep all
        children.  ``values`` may be passed to reuse an
        :meth:`evaluate` result.
        """
        sr = self.semiring
        if values is None:
            values = self.evaluate()
        chosen: dict[int, int] = {}
        touched: set[int] = set()
        stack = [root]
        while stack:
            nid = stack.pop()
            if nid in touched:
                continue
            touched.add(nid)
            node = self.nodes[nid]
            if node.kind is NodeKind.OR:
                # First child achieving the OR value (ties break low-id).
                best = node.children[0]
                for c in node.children:
                    if float(values[c]) == float(values[nid]):
                        best = c
                        break
                chosen[nid] = best
                stack.append(best)
            elif node.kind is NodeKind.AND:
                stack.extend(node.children)
        return SolutionTree(
            root=root,
            cost=float(values[root]),
            chosen=chosen,
            nodes=frozenset(touched),
        )
