"""Serialization of nonserial AND/OR graphs (paper Section 6.2, Figure 8).

A nonserial AND/OR graph has arcs that skip levels (e.g. the Figure-2
matrix-chain graph, where a size-``k`` subproblem consumes size-1 leaves
directly).  Systolic arrays want planar, adjacent-level-only
interconnect, so the paper's transform inserts **dummy pass-through
nodes** along every level-skipping arc — the dotted lines of Figure 8 —
at the price of extra hardware and transfer delay, both of which this
module measures.

A dummy is represented as a single-child OR node (a pure latch: its
value equals its child's), so the serialized graph evaluates to exactly
the same values — tests assert value preservation node-for-node.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from .graph import AndOrGraph, NodeKind

__all__ = ["SerializationResult", "serialize"]


@dataclasses.dataclass(frozen=True)
class SerializationResult:
    """Outcome of the Figure-8 transform."""

    graph: AndOrGraph  # the serialized graph (arcs adjacent-level only)
    node_map: dict[int, int]  # original node id -> new node id
    dummies_added: int  # redundant hardware introduced
    original_levels: int  # level count before
    serialized_levels: int  # level count after (unchanged: dummies fill gaps)


def serialize(graph: AndOrGraph) -> SerializationResult:
    """Insert dummy pass-through nodes until every arc spans one level.

    Levels are the longest-path-from-leaves layering; leaves of an
    already-serial graph pass through untouched (zero dummies).  Dummy
    chains are shared per (child, target level): if several parents at
    one level consume the same deep child, one chain serves them all,
    matching the figure (one dotted path per forwarded value).
    """
    levels = graph.levels()
    out = AndOrGraph(graph.semiring)
    node_map: dict[int, int] = {}
    # lifted[(orig id, level)] = id of the dummy carrying orig's value at level
    lifted: dict[tuple[int, int], int] = {}
    dummies = 0

    def at_level(orig: int, level: int) -> int:
        """New-graph node presenting ``orig``'s value at ``level``."""
        nonlocal dummies
        base_level = int(levels[orig])
        if level == base_level:
            return node_map[orig]
        if level < base_level:
            raise ValueError("cannot present a value below its own level")
        key = (orig, level)
        if key in lifted:
            return lifted[key]
        below = at_level(orig, level - 1)
        nid = out.add_or([below], label=("dummy", orig, level))
        dummies += 1
        lifted[key] = nid
        return nid

    for node in graph.nodes:  # topological order by construction
        lv = int(levels[node.id])
        if node.kind is NodeKind.LEAF:
            node_map[node.id] = out.add_leaf(node.cost, label=node.label)
            continue
        children = [at_level(c, lv - 1) for c in node.children]
        if node.kind is NodeKind.AND:
            node_map[node.id] = out.add_and(children, cost=node.cost, label=node.label)
        else:
            node_map[node.id] = out.add_or(children, label=node.label)

    new_levels = out.levels()
    result = SerializationResult(
        graph=out,
        node_map=dict(node_map),
        dummies_added=dummies,
        original_levels=int(levels.max()) + 1 if len(graph.nodes) else 0,
        serialized_levels=int(new_levels.max()) + 1 if len(out.nodes) else 0,
    )
    return result
