"""AND/OR graphs: construction, counting, search, serialization, mapping.

The Section-5/6.2 machinery: folded AND/OR-trees of multistage problems
(Figure 7), the matrix-chain graph (Figure 2), node-count analysis
(Theorem 2 / eq. 32), bottom-up and AO*-style search, the Figure-8
serialization transform and the planar array mapping.
"""

from .graph import AndOrGraph, AndOrNode, NodeKind, SolutionTree
from .build import FoldedMultistage, MatrixChainGraph, fold_multistage, matrix_chain_andor
from .counts import (
    du_dp,
    is_valid_instance,
    optimal_partition,
    u_and_nodes,
    u_or_nodes,
    u_total_nodes,
)
from .search import AOStarResult, BottomUpResult, ao_star, bottom_up
from .serialize import SerializationResult, serialize
from .mapping import LevelMapping, map_to_array
from .array_sim import AndOrArrayRun, simulate_andor_array
from .aostar import AOStarExplicitResult, ao_star_explicit

__all__ = [
    "AndOrGraph",
    "AndOrNode",
    "NodeKind",
    "SolutionTree",
    "FoldedMultistage",
    "MatrixChainGraph",
    "fold_multistage",
    "matrix_chain_andor",
    "u_total_nodes",
    "u_and_nodes",
    "u_or_nodes",
    "du_dp",
    "optimal_partition",
    "is_valid_instance",
    "bottom_up",
    "BottomUpResult",
    "ao_star",
    "AOStarResult",
    "serialize",
    "SerializationResult",
    "map_to_array",
    "LevelMapping",
    "simulate_andor_array",
    "AndOrArrayRun",
    "ao_star_explicit",
    "AOStarExplicitResult",
]
