"""Node-count analysis of folded AND/OR-trees — Theorem 2 / eq. (32).

The paper derives the total node count of the Figure-7 construction for
an ``(N+1)``-stage, width-``m`` graph partitioned with factor ``p``:

    u(p) = (N − 1)/(p − 1) · m^{p+1}  +  (N·p − 1)/(p − 1) · m²

and proves (Theorem 2) that ``u`` increases monotonically in ``p`` for
``m ≥ 3, p ≥ 2`` (and ``m ≥ 2, p ≥ 3``), so the binary partition is
optimal.  These closed forms are validated against *constructed* graphs
in the tests and swept by the Theorem-2 benchmark.
"""

from __future__ import annotations

import math

__all__ = [
    "u_total_nodes",
    "u_and_nodes",
    "u_or_nodes",
    "du_dp",
    "optimal_partition",
    "is_valid_instance",
]


def is_valid_instance(n_layers: int, p: int) -> bool:
    """True when ``n_layers`` is an exact power of ``p`` (paper's N = p^Q)."""
    if n_layers < 1 or p < 2:
        return False
    while n_layers % p == 0:
        n_layers //= p
    return n_layers == 1


def u_and_nodes(n_layers: int, m: int, p: int) -> int:
    """AND-node count: ``Σ_{i=0}^{log_p N − 1} p^i · m^{p+1} = (N−1)/(p−1)·m^{p+1}``."""
    _check(n_layers, m, p)
    return (n_layers - 1) // (p - 1) * m ** (p + 1)


def u_or_nodes(n_layers: int, m: int, p: int) -> int:
    """OR/leaf-level count: ``Σ_{j=0}^{log_p N} p^j · m² = (N·p−1)/(p−1)·m²``.

    Includes the bottom level of ``N·m²`` cost leaves, which the paper
    counts among the OR levels.
    """
    _check(n_layers, m, p)
    return (n_layers * p - 1) // (p - 1) * m * m


def u_total_nodes(n_layers: int, m: int, p: int) -> int:
    """Total node count ``u(p)`` of eq. (32)."""
    return u_and_nodes(n_layers, m, p) + u_or_nodes(n_layers, m, p)


def du_dp(n_layers: int, m: int, p: float) -> float:
    """The derivative of eq. (33) with ``p`` relaxed to a real.

    ``∂u/∂p = (N−1)·(m^{p+1}·((p−1)·ln m − 1) − m²) / (p−1)²`` — positive
    for ``m ≥ 3, p ≥ 2`` and ``m ≥ 2, p ≥ 3``, the monotonicity Theorem 2
    rests on.
    """
    if p <= 1:
        raise ValueError("p must exceed 1")
    n, mm = float(n_layers), float(m)
    return (n - 1) * (mm ** (p + 1) * ((p - 1) * math.log(mm) - 1) - mm * mm) / (
        (p - 1) ** 2
    )


def optimal_partition(n_layers: int, m: int, *, p_max: int | None = None) -> tuple[int, int]:
    """Integer argmin of ``u(p)`` over valid partition factors.

    Only factors with ``N = p^Q`` are admissible.  Returns
    ``(best p, u(best p))``; Theorem 2 says this is ``p = 2`` whenever 2
    is admissible and ``m ≥ 2`` (for ``m = 2`` the theorem's strict
    monotonicity needs ``p ≥ 3``, but ``u(2) ≤ u(p)`` still holds —
    checked by the benchmark sweep).
    """
    if p_max is None:
        p_max = n_layers
    candidates = [p for p in range(2, p_max + 1) if is_valid_instance(n_layers, p)]
    if not candidates:
        raise ValueError(f"no admissible partition factor for N={n_layers}")
    best = min(candidates, key=lambda p: u_total_nodes(n_layers, m, p))
    return best, u_total_nodes(n_layers, m, best)


def _check(n_layers: int, m: int, p: int) -> None:
    if not is_valid_instance(n_layers, p):
        raise ValueError(f"N={n_layers} is not a power of p={p}")
    if m < 1:
        raise ValueError("m must be positive")
