"""Builders for the paper's AND/OR-graph representations.

Two constructions:

* :func:`fold_multistage` — the Section-5 / Figure-7 regular folded
  AND/OR-tree of a uniform multistage graph with partition factor ``p``:
  the ``N = p^Q``-layer graph is recursively split into ``p`` equal
  segments; every stage-pair cost matrix entry is an OR node whose
  ``m^{p-1}`` AND children enumerate the intermediate-vertex choices at
  the ``p − 1`` split boundaries.  Its node count is the ``u(p)`` of
  eq. (32), which Theorem 2 minimizes at ``p = 2``.
* :func:`matrix_chain_andor` — the Figure-2 graph of the matrix-chain
  ordering problem (eq. 6): OR node per subchain ``(i, j)``, AND node per
  split ``k`` carrying the local cost ``r_{i-1}·r_k·r_j``.  This graph is
  *nonserial* (arcs skip levels) and is the input to the Figure-8
  serialization transform.
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import Sequence

import numpy as np

from ..graphs import MultistageGraph
from .graph import AndOrGraph

__all__ = ["FoldedMultistage", "fold_multistage", "MatrixChainGraph", "matrix_chain_andor"]


@dataclasses.dataclass(frozen=True)
class FoldedMultistage:
    """The folded AND/OR-tree of a multistage graph, plus its root index.

    ``root_or[u, v]`` is the OR node holding the optimal stage-0→stage-N
    cost from source vertex ``u`` to sink vertex ``v``.
    """

    graph: AndOrGraph
    root_or: np.ndarray  # (m0, mN) array of node ids
    partition: int
    num_layers: int
    width: int


def _is_power(n: int, p: int) -> bool:
    while n % p == 0:
        n //= p
    return n == 1


def fold_multistage(graph: MultistageGraph, p: int = 2) -> FoldedMultistage:
    """Build the Figure-7 folded AND/OR-tree with partition factor ``p``.

    Requires a uniform graph whose layer count ``N`` is a power of
    ``p``.  All stages must have the same width ``m`` (sources/sinks
    included — the paper's Section-5 setting); single-source problems are
    read off the root matrix afterwards.
    """
    if p < 2:
        raise ValueError("partition factor p must be >= 2")
    n_layers = graph.num_layers
    sizes = set(graph.stage_sizes)
    if len(sizes) != 1:
        raise ValueError(
            f"fold_multistage needs uniform stage sizes, got {graph.stage_sizes}"
        )
    m = sizes.pop()
    if not _is_power(n_layers, p):
        raise ValueError(f"layer count {n_layers} is not a power of p={p}")

    ag = AndOrGraph(graph.semiring)
    memo: dict[tuple[int, int], np.ndarray] = {}

    def build(a: int, b: int) -> np.ndarray:
        """Node-id matrix for stage interval [a, b]; entry (u, v)."""
        key = (a, b)
        if key in memo:
            return memo[key]
        span = b - a
        ids = np.empty((m, m), dtype=np.int64)
        if span == 1:
            for u in range(m):
                for v in range(m):
                    ids[u, v] = ag.add_leaf(
                        float(graph.costs[a][u, v]), label=("edge", a, u, v)
                    )
        else:
            seg = span // p
            bounds = [a + i * seg for i in range(p + 1)]
            subs = [build(bounds[i], bounds[i + 1]) for i in range(p)]
            for u in range(m):
                for v in range(m):
                    and_ids = []
                    for mids in itertools.product(range(m), repeat=p - 1):
                        chain = (u,) + mids + (v,)
                        children = [
                            int(subs[i][chain[i], chain[i + 1]]) for i in range(p)
                        ]
                        and_ids.append(
                            ag.add_and(children, label=("sum", a, b, chain))
                        )
                    ids[u, v] = ag.add_or(and_ids, label=("min", a, b, u, v))
        memo[key] = ids
        return ids

    root = build(0, n_layers)
    return FoldedMultistage(
        graph=ag, root_or=root, partition=p, num_layers=n_layers, width=m
    )


@dataclasses.dataclass(frozen=True)
class MatrixChainGraph:
    """The Figure-2 AND/OR graph of eq. (6), plus its root OR node."""

    graph: AndOrGraph
    root: int
    or_node: dict[tuple[int, int], int]  # (i, j) 1-based -> node id
    dims: tuple[int, ...]


def matrix_chain_andor(dims: Sequence[int]) -> MatrixChainGraph:
    """Build the AND/OR graph of the matrix-chain ordering problem.

    Leaves are the trivial ``m_{i,i} = 0`` subproblems; the AND node for
    split ``k`` of subchain ``(i, j)`` carries local cost
    ``r_{i-1}·r_k·r_j`` (the multiplication the paper's AND-nodes
    denote); OR nodes compare the splits.  Arcs connect levels of
    different spans, so the graph is nonserial — ``graph.is_serial()`` is
    False for ``N ≥ 3`` — until serialized (Figure 8).
    """
    dims = tuple(int(d) for d in dims)
    if len(dims) < 2:
        raise ValueError("need at least one matrix")
    if any(d <= 0 for d in dims):
        raise ValueError("dimensions must be positive")
    n = len(dims) - 1
    ag = AndOrGraph()
    or_node: dict[tuple[int, int], int] = {}
    for i in range(1, n + 1):
        or_node[(i, i)] = ag.add_leaf(0.0, label=("m", i, i))
    for span in range(2, n + 1):
        for i in range(1, n - span + 2):
            j = i + span - 1
            ands = []
            for k in range(i, j):
                local = dims[i - 1] * dims[k] * dims[j]
                ands.append(
                    ag.add_and(
                        [or_node[(i, k)], or_node[(k + 1, j)]],
                        cost=float(local),
                        label=("mul", i, k, j),
                    )
                )
            or_node[(i, j)] = ag.add_or(ands, label=("m", i, j))
    return MatrixChainGraph(graph=ag, root=or_node[(1, n)], or_node=or_node, dims=dims)
