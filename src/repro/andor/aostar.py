"""Nilsson-style AO* with explicit expansion and cost revision.

The paper (Section 5) points at Martelli–Montanari's top-down search of
additive AND/OR graphs and Nilsson's AO* for hypergraphs.  The
:func:`repro.andor.search.ao_star` routine is a memoized DFS with
bound cuts — fast and exact, but it does not exhibit AO*'s defining
behaviour: *expanding only the nodes the current best partial solution
needs, under an admissible heuristic*.  This module is the faithful
algorithm:

1. maintain cost estimates ``q(n)`` (initialized from the heuristic) and
   SOLVED marks over the explicit graph;
2. trace the marked best partial solution tree from the root to an
   unexpanded tip;
3. expand the tip (reveal its children; leaves become SOLVED with their
   exact cost);
4. revise costs bottom-up through the expanded ancestors, re-marking
   best OR arcs, until quiescent;
5. stop when the root is SOLVED.

With an admissible heuristic (never overestimating under min-plus) the
returned cost is optimal; a perfectly informed heuristic collapses the
expansion count to the solution tree alone, which the tests measure.
"""

from __future__ import annotations

import dataclasses
from typing import Callable

from .graph import AndOrGraph, NodeKind

__all__ = ["AOStarExplicitResult", "ao_star_explicit"]


@dataclasses.dataclass(frozen=True)
class AOStarExplicitResult:
    """Outcome and effort accounting of an explicit AO* run."""

    cost: float
    nodes_expanded: int
    nodes_total: int
    revisions: int  # cost-revision updates performed
    solution_nodes: frozenset[int]  # marked solution tree at termination


def ao_star_explicit(
    graph: AndOrGraph,
    root: int,
    heuristic: Callable[[int], float] | None = None,
) -> AOStarExplicitResult:
    """Run explicit AO* from ``root``.

    ``heuristic(node_id)`` must be an admissible (non-overestimating)
    lower bound on the node's exact min-plus value; ``None`` means the
    trivial bound 0.  Only min-plus graphs are supported — AO*'s cost
    revision assumes totally ordered, monotone additive costs.
    """
    sr = graph.semiring
    if sr.name != "min-plus":
        raise ValueError("explicit AO* requires the min-plus semiring")
    if not 0 <= root < len(graph.nodes):
        raise ValueError(f"root {root} out of range")
    h = heuristic if heuristic is not None else (lambda _n: 0.0)

    parents: dict[int, list[int]] = {n.id: [] for n in graph.nodes}
    for node in graph.nodes:
        for c in node.children:
            parents[c].append(node.id)

    q: dict[int, float] = {root: float(h(root))}
    solved: set[int] = set()
    expanded: set[int] = set()
    best_child: dict[int, int] = {}
    revisions = 0

    def node_cost(n: int) -> float:
        """Recompute q(n) from current child estimates; update marks."""
        node = graph.nodes[n]
        if node.kind is NodeKind.AND:
            return node.cost + sum(q[c] for c in node.children)
        best = min(node.children, key=lambda c: q[c])
        best_child[n] = best
        return q[best]

    def is_solved(n: int) -> bool:
        node = graph.nodes[n]
        if node.kind is NodeKind.AND:
            return all(c in solved for c in node.children)
        return best_child.get(n) in solved

    def revise_from(n: int) -> None:
        """Bottom-up cost revision starting at n (Nilsson step 7)."""
        nonlocal revisions
        frontier = {n}
        while frontier:
            m = frontier.pop()
            if m not in expanded and graph.nodes[m].kind is not NodeKind.LEAF:
                continue
            node = graph.nodes[m]
            if node.kind is NodeKind.LEAF:
                new_q, now_solved = node.cost, True
            else:
                new_q = node_cost(m)
                now_solved = is_solved(m)
            changed = q.get(m) != new_q or (now_solved and m not in solved)
            if changed:
                revisions += 1
                q[m] = new_q
                if now_solved:
                    solved.add(m)
                for p in parents[m]:
                    if p in expanded:
                        frontier.add(p)

    def find_tip() -> int | None:
        """Walk the marked partial solution tree to an unexpanded node."""
        stack = [root]
        seen: set[int] = set()
        while stack:
            n = stack.pop()
            if n in seen or n in solved:
                continue
            seen.add(n)
            node = graph.nodes[n]
            if n not in expanded:
                return n
            if node.kind is NodeKind.OR:
                stack.append(best_child[n])
            else:
                stack.extend(c for c in node.children if c not in solved)
        return None

    guard = 0
    while root not in solved:
        guard += 1
        if guard > 4 * len(graph.nodes) * max(len(graph.nodes), 4):
            raise RuntimeError("AO* failed to converge")  # pragma: no cover
        tip = find_tip()
        if tip is None:  # pragma: no cover - defensive
            raise RuntimeError("no expandable tip but root unsolved")
        node = graph.nodes[tip]
        expanded.add(tip)
        if node.kind is NodeKind.LEAF:
            revise_from(tip)
            continue
        for c in node.children:
            if c not in q:
                child = graph.nodes[c]
                if child.kind is NodeKind.LEAF:
                    q[c] = child.cost
                    solved.add(c)
                else:
                    q[c] = float(h(c))
        revise_from(tip)

    # Collect the final marked solution tree.
    tree: set[int] = set()
    stack = [root]
    while stack:
        n = stack.pop()
        if n in tree:
            continue
        tree.add(n)
        node = graph.nodes[n]
        if node.kind is NodeKind.OR:
            stack.append(best_child[n])
        elif node.kind is NodeKind.AND:
            stack.extend(node.children)
    return AOStarExplicitResult(
        cost=float(q[root]),
        nodes_expanded=len(expanded),
        nodes_total=len(graph.nodes),
        revisions=revisions,
        solution_nodes=frozenset(tree),
    )
