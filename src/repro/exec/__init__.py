"""Batch execution engine: vectorized kernels, sharding, solve cache.

The paper's Sections 4–5 treat the systolic array as a *throughput*
device fed a stream of instances; this subpackage is that reading made
operational.  :func:`solve_batch` groups same-shape instances into
stacked vectorized kernels, shards large groups across a process pool
sized by the eq.-29 KT² rule, and serves repeats from a digest-keyed
LRU cache shared with single-problem ``solve(cache=...)`` calls.  See
``docs/scaling.md``.
"""

from .cache import CacheStats, SolveCache, default_cache
from .digest import cache_key, problem_digest
from .engine import BatchResult, BatchStats, solve_batch
from .grouping import Group, group_problems

__all__ = [
    "BatchResult",
    "BatchStats",
    "CacheStats",
    "Group",
    "SolveCache",
    "cache_key",
    "default_cache",
    "group_problems",
    "problem_digest",
    "solve_batch",
]
