"""Canonical problem digests for the solve cache.

A digest is a SHA-256 over a canonical byte serialization of everything
that determines a problem's answer: the problem kind, the semiring, the
shape, and the cost data.  Two problems with equal digests are
interchangeable as far as :func:`repro.core.solver.solve` is concerned.

Node-value problems are digested through their *materialized* cost
matrices — the paper's own eq.-(4) equivalence between the node-value
and edge-cost forms — because the ``edge_cost`` callable itself has no
canonical byte form.  Problems with no canonical serialization (general
nonserial objectives, whose terms are arbitrary callables) digest to
``None`` and are simply never cached.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["problem_digest", "cache_key"]


def _update_array(h: "hashlib._Hash", a: np.ndarray) -> None:
    a = np.ascontiguousarray(a)
    h.update(str(a.dtype).encode())
    h.update(repr(a.shape).encode())
    h.update(a.tobytes())


def problem_digest(problem: object) -> str | None:
    """SHA-256 hex digest of a problem's canonical form, or ``None``.

    ``None`` means the problem has no canonical byte serialization and
    must bypass the cache.
    """
    from ..core.problem import MatrixChainProblem
    from ..graphs import MultistageGraph, NodeValueProblem

    h = hashlib.sha256()
    if isinstance(problem, NodeValueProblem):
        h.update(b"node_value\x00")
        h.update(problem.semiring.name.encode())
        for v in problem.values:
            _update_array(h, v)
        # Eq.-4 equivalence: the materialized edge costs are the
        # canonical content of the stage cost function.
        for k in range(problem.num_stages - 1):
            _update_array(h, problem.cost_matrix(k))
        return h.hexdigest()
    if isinstance(problem, MultistageGraph):
        h.update(b"multistage_graph\x00")
        h.update(problem.semiring.name.encode())
        for c in problem.costs:
            _update_array(h, c)
        return h.hexdigest()
    if isinstance(problem, MatrixChainProblem):
        h.update(b"matrix_chain\x00")
        h.update(repr(problem.dims).encode())
        return h.hexdigest()
    return None


def cache_key(
    problem: object, *, backend: str, prefer: str | None
) -> tuple[str, str, str] | None:
    """The cache key for one ``solve()`` configuration, or ``None``.

    The key folds in the backend and architecture preference: the same
    problem solved on a different architecture may legitimately return a
    different (equal-cost) solution object, so those results are cached
    separately.
    """
    digest = problem_digest(problem)
    if digest is None:
        return None
    return (digest, backend, prefer or "")
