"""Digest-keyed LRU cache of :class:`~repro.core.solver.SolveReport`.

The cache maps canonical problem digests (:mod:`repro.exec.digest`) to
finished solve reports.  Hits return a *deep copy* — callers get an
equal but independent report, so mutating nested arrays in one caller's
report can never corrupt another's.

Side-effectful runs never touch the cache: ``sinks`` (telemetry must
observe every event of every run), ``fault_plan`` (injections must
happen), and the cycle-accurate ``backend="rtl"`` / ``strict`` paths
(their value *is* the execution) all bypass it — the bypass rule lives
in :func:`repro.exec.engine.cacheable` and is enforced by both
``solve()`` and ``solve_batch()``.
"""

from __future__ import annotations

import copy
import dataclasses
import threading
from collections import OrderedDict
from typing import Any, Hashable

__all__ = ["CacheStats", "SolveCache", "default_cache"]


@dataclasses.dataclass(frozen=True)
class CacheStats:
    """Monotonic counters of one cache's lifetime."""

    hits: int
    misses: int
    evictions: int
    size: int
    capacity: int

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class SolveCache:
    """Thread-safe LRU cache keyed by problem digests.

    ``capacity`` bounds the number of retained reports; the least
    recently *used* (hit or stored) entry is evicted first.
    """

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError("cache capacity must be positive")
        self.capacity = int(capacity)
        self._entries: OrderedDict[Hashable, Any] = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key: Hashable) -> Any | None:
        """The cached report for ``key`` (an independent deep copy), or ``None``."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
        return copy.deepcopy(entry)

    def put(self, key: Hashable, report: Any) -> None:
        """Store ``report`` under ``key``, evicting the LRU entry if full."""
        stored = copy.deepcopy(report)
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = stored
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self._evictions += 1

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    @property
    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                size=len(self._entries),
                capacity=self.capacity,
            )


_DEFAULT_CACHE = SolveCache()


def default_cache() -> SolveCache:
    """The process-wide shared cache (used when callers pass ``cache=True``)."""
    return _DEFAULT_CACHE
