"""Process-pool sharding of batch payloads.

Shards are picklable payload dicts (:mod:`repro.exec.vectorized`):
stacked cost arrays for the vectorized kernels, or raw picklable
problems for scalar groups.  Each worker process executes its shard with
:func:`repro.exec.vectorized.run_payload` — constructing its *own*
machines, harnesses and (under ``strict=``) its own
:class:`~repro.analysis.HazardSanitizer` per run, so no monitor state is
ever shared across workers — and returns the finished
:class:`~repro.core.solver.SolveReport` list plus its measured wall
time.  Reports, run reports and their nested fault/hazard payloads are
all plain frozen dataclasses, so the results pickle back unchanged.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from typing import Any

__all__ = ["ShardResult", "execute_payloads"]


def _run_shard(payload: dict[str, Any]) -> tuple[list[Any], float]:
    """Top-level worker entry point (must be importable for pickling)."""
    from .vectorized import run_payload

    start = time.perf_counter()
    reports = run_payload(payload)
    return reports, time.perf_counter() - start


class ShardResult:
    """Reports and wall time of one executed shard."""

    __slots__ = ("reports", "wall_seconds")

    def __init__(self, reports: list[Any], wall_seconds: float) -> None:
        self.reports = reports
        self.wall_seconds = wall_seconds


def execute_payloads(
    payloads: list[dict[str, Any]], workers: int
) -> list[ShardResult]:
    """Execute payloads, in submission order, across ``workers`` processes.

    ``workers <= 1`` (or a single payload) runs everything in-process —
    the pool is pure overhead then.  Worker failures propagate: a shard
    that raises re-raises here, matching the looped ``solve()`` contract.
    """
    if workers <= 1 or len(payloads) <= 1:
        return [ShardResult(*_run_shard(p)) for p in payloads]
    results: list[ShardResult] = []
    with ProcessPoolExecutor(max_workers=workers) as pool:
        futures = [pool.submit(_run_shard, p) for p in payloads]
        for future in futures:
            reports, wall = future.result()
            results.append(ShardResult(reports, wall))
    return results
