"""Stacked multi-instance kernels for the batch engine.

Each kernel here is the *batched* twin of one per-design fast backend:
the same NumPy reduction, with a leading batch axis, applied to a whole
group of same-shape instances at once.  Bit-identity with the looped
path is a hard requirement (the cross-backend fuzz suite asserts exact
equality), so every reduction uses exactly the operand order and axes of
the unbatched kernel:

* **Fig. 5 feedback** — the stage recurrence of
  :meth:`~repro.systolic.feedback_array.FeedbackSystolicArray._run_fast`:
  ``cand = mul(h[:, :, None], C)`` reduced (and arg-reduced) along the
  predecessor axis, per stage.  NumPy's arg-reductions keep the
  first-occurrence tie-break per batch row, so traced paths match too.
* **Fig. 3 pipelined** — the right-to-left mat-vec chain of
  :meth:`~repro.systolic.pipelined_array.PipelinedMatrixStringArray._run_fast`
  via :func:`repro.semiring.batched_matvec`.

Both kernels are driven through picklable *payloads* (plain dicts of
stacked ``ndarray``s plus the semiring name), so the same code runs
in-process and inside pool workers: a group is prepared once, optionally
sliced into shards, and each shard executes independently.  Reports come
back with the fast backend's closed-form counters — identical to what a
looped ``solve(backend="fast")`` reports per instance.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..core.solver import SolveReport
from ..graphs import MultistageGraph, NodeValueProblem, StagePath, add_virtual_terminals
from ..graphs.multistage import GraphError
from ..semiring import batched_matvec, by_name
from ..systolic.fabric import RunReport
from ..systolic.feedback_array import FeedbackArrayResult
from ..systolic.pipelined_array import PipelinedArrayResult
from .grouping import Group

__all__ = [
    "prepare_payload",
    "slice_payload",
    "run_payload",
]


# ----------------------------------------------------------------------
# Payload preparation (runs in the parent process)
# ----------------------------------------------------------------------
def prepare_payload(group: Group) -> dict[str, Any]:
    """A picklable execution payload for one vectorizable group."""
    if group.kind == "feedback":
        return _prepare_feedback(group)
    if group.kind == "pipelined":
        return _prepare_pipelined(group)
    raise ValueError(f"group kind {group.kind!r} has no vectorized payload")


def _prepare_feedback(group: Group) -> dict[str, Any]:
    problems: list[NodeValueProblem] = group.problems
    first = problems[0]
    n_stages = first.num_stages
    m = first.stage_sizes[0]
    layers = [
        np.stack([p.cost_matrix(k) for p in problems])
        for k in range(n_stages - 1)
    ]
    return {
        "kind": "feedback",
        "semiring": first.semiring.name,
        "n_stages": n_stages,
        "m": m,
        "layers": layers,  # list of (B, m, m)
        "recommendations": list(group.recommendations),
    }


def _prepare_pipelined(group: Group) -> dict[str, Any]:
    problems: list[MultistageGraph] = group.problems
    first = problems[0]
    from ..core.solver import _graph_fits_linear_array

    framed = not _graph_fits_linear_array(first)
    targets = [add_virtual_terminals(g) if framed else g for g in problems]
    num_layers = targets[0].num_layers
    mats = [
        np.stack([np.asarray(t.costs[k]) for t in targets])
        for k in range(num_layers)
    ]
    return {
        "kind": "pipelined",
        "semiring": first.semiring.name,
        "mats": mats,  # list of (B, rows, cols); last is the (B, m, 1) sink column
        "recommendations": list(group.recommendations),
    }


def slice_payload(payload: dict[str, Any], start: int, stop: int) -> dict[str, Any]:
    """The payload restricted to batch rows ``[start, stop)`` (views, no copy)."""
    out = dict(payload)
    for field in ("layers", "mats"):
        if field in out:
            out[field] = [a[start:stop] for a in out[field]]
    if "recommendations" in out:
        out["recommendations"] = out["recommendations"][start:stop]
    if "problems" in out:
        out["problems"] = out["problems"][start:stop]
    return out


# ----------------------------------------------------------------------
# Payload execution (runs in-process or inside a pool worker)
# ----------------------------------------------------------------------
def run_payload(payload: dict[str, Any]) -> list[SolveReport]:
    """Execute one payload, returning per-instance solve reports in order."""
    kind = payload["kind"]
    if kind == "feedback":
        return _run_feedback(payload)
    if kind == "pipelined":
        return _run_pipelined(payload)
    if kind == "scalar":
        return _run_scalar(payload)
    raise ValueError(f"unknown payload kind {kind!r}")


def _run_feedback(payload: dict[str, Any]) -> list[SolveReport]:
    sr = by_name(payload["semiring"])
    if sr.add_argreduce is None:  # pragma: no cover - all stock semirings have one
        raise GraphError(f"semiring {sr.name!r} has no arg-reduction")
    n_stages = int(payload["n_stages"])
    m = int(payload["m"])
    layers = [sr.asarray(a) for a in payload["layers"]]
    recs = payload["recommendations"]
    batch = layers[0].shape[0] if layers else len(recs)

    # Stage recurrence with a leading batch axis; per batch row this is
    # exactly the unbatched ``mul(h[:, None], C)`` reduced along axis 0.
    h = np.full((batch, m), sr.one, dtype=float)
    preds: dict[int, np.ndarray] = {}
    for k in range(2, n_stages + 1):
        cand = sr.mul(h[:, :, None], layers[k - 2])
        preds[k] = np.asarray(sr.add_argreduce(cand, axis=1), dtype=np.intp)
        h = sr.add_reduce(cand, axis=1)
    optima = sr.add_reduce(h, axis=1)
    best_final = np.asarray(sr.add_argreduce(h, axis=1), dtype=np.intp)

    total_iterations = (n_stages + 1) * m
    serial_ops = (n_stages - 1) * m * m + m
    ops = tuple((n_stages - 1) * m + (m - i) for i in range(m))
    report = RunReport(
        design="fig5-feedback",
        num_pes=m,
        iterations=total_iterations,
        wall_ticks=total_iterations,
        pe_busy_ticks=ops,
        pe_op_counts=ops,
        serial_ops=serial_ops,
        input_words=n_stages * m,
        output_words=m + 1,
        broadcast_words=2 * n_stages * m,
        backend="fast",
    )

    reports: list[SolveReport] = []
    for b in range(batch):
        optimum = float(optima[b])
        nodes = [0] * n_stages
        nodes[n_stages - 1] = int(best_final[b])
        for k in range(n_stages, 1, -1):
            nodes[k - 2] = int(preds[k][b, nodes[k - 1]])
        path = StagePath(nodes=tuple(nodes), cost=optimum)
        detail = FeedbackArrayResult(
            optimum=optimum,
            path=path,
            final_stage_values=sr.asarray(h[b]),
            report=report,
        )
        rec = recs[b]
        reports.append(
            SolveReport(
                dp_class=rec.dp_class,
                method="fig5-feedback-array",
                optimum=optimum,
                reference=optimum,
                validated=True,
                solution=path,
                detail=detail,
                recommendation=rec,
            )
        )
    return reports


def _run_pipelined(payload: dict[str, Any]) -> list[SolveReport]:
    sr = by_name(payload["semiring"])
    mats = [sr.asarray(a) for a in payload["mats"]]
    recs = payload["recommendations"]
    batch = mats[0].shape[0]

    # Mirror ``_normalize_string``: the last operand is the sink column.
    vec = mats[-1][:, :, 0]  # (B, m)
    m = vec.shape[1]
    chain = mats[:-1]
    value = vec
    for a in reversed(chain):
        value = batched_matvec(sr, a, value)
    is_row_vector = chain[0].shape[1] == 1 and m > 1

    num_phases = len(chain)
    serial_ops = int(sum(a.shape[1] * a.shape[2] for a in chain))
    ops = [0] * m
    for phase in range(num_phases):
        a = chain[num_phases - 1 - phase]
        if a.shape[1] == 1 and m > 1:
            if phase % 2 == 0:
                ops[0] += m
            else:
                for i in range(m):
                    ops[i] += 1
        else:
            for i in range(m):
                ops[i] += m
    out_words = 1 if is_row_vector else int(value.shape[1])
    report = RunReport(
        design="fig3-pipelined",
        num_pes=m,
        iterations=num_phases * m,
        wall_ticks=num_phases * m + (m - 1),
        pe_busy_ticks=tuple(ops),
        pe_op_counts=tuple(ops),
        serial_ops=serial_ops,
        input_words=m + serial_ops,
        output_words=out_words,
        broadcast_words=0,
        backend="fast",
    )

    reports: list[SolveReport] = []
    for b in range(batch):
        if is_row_vector:
            inst_value = sr.asarray(float(value[b, 0]))
        else:
            inst_value = sr.asarray(value[b])
        optimum = float(sr.add_reduce(np.asarray(inst_value), axis=None))
        detail = PipelinedArrayResult(value=inst_value, report=report)
        rec = recs[b]
        reports.append(
            SolveReport(
                dp_class=rec.dp_class,
                method="fig3-pipelined-array",
                optimum=optimum,
                reference=optimum,
                validated=True,
                solution=inst_value,
                detail=detail,
                recommendation=rec,
            )
        )
    return reports


def _run_scalar(payload: dict[str, Any]) -> list[SolveReport]:
    """Loop ``solve()`` over a scalar group (shipped or in-process)."""
    from ..core.solver import solve

    kwargs = dict(payload.get("solve_kwargs", {}))
    return [solve(p, **kwargs) for p in payload["problems"]]
