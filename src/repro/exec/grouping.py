"""Partition a batch of problems into same-kernel, same-shape groups.

The batch engine mirrors the Table-1 dispatch of
:func:`repro.core.solver.solve` *statically*: every problem is
classified, and problems that ``solve()`` would send to the same fast
systolic kernel with the same shape are grouped so one stacked 3-D
semiring pass (:mod:`repro.exec.vectorized`) can carry the whole group.
Everything else lands in scalar groups that loop ``solve()`` —
partitioned by whether the problems are picklable, since only picklable
scalar groups can be shipped to a worker process.
"""

from __future__ import annotations

import dataclasses
from typing import Any

from ..core.classification import DPClass, Recommendation, recommend
from ..core.problem import MatrixChainProblem
from ..core.solver import _graph_fits_linear_array
from ..graphs import MultistageGraph, NodeValueProblem

__all__ = ["Group", "group_problems", "VECTORIZED_KINDS"]

#: Group kinds executed by a stacked vectorized kernel.
VECTORIZED_KINDS = ("feedback", "pipelined")


@dataclasses.dataclass
class Group:
    """One executable unit of a batch: a kernel kind plus its members."""

    kind: str  # "feedback" | "pipelined" | "scalar"
    key: tuple[Any, ...]
    indices: list[int]  # positions in the original batch
    problems: list[Any]
    recommendations: list[Recommendation]
    picklable: bool  # safe to ship to a worker process

    def __len__(self) -> int:
        return len(self.indices)


def _plan(problem: object, rec: Recommendation, prefer: str | None) -> tuple[str, tuple[Any, ...], bool]:
    """(kind, group key, picklable) for one problem, mirroring ``solve()``."""
    if isinstance(problem, NodeValueProblem):
        # ``edge_cost`` is frequently a closure, so node-value problems
        # are conservatively treated as unpicklable; their *vectorized*
        # payloads (materialized cost matrices) still ship fine.
        if problem.is_uniform and rec.dp_class is DPClass.MONADIC_SERIAL:
            key = ("feedback", problem.num_stages, problem.stage_sizes[0],
                   problem.semiring.name)
            return "feedback", key, True
        return "scalar", ("scalar", False), False
    if isinstance(problem, MultistageGraph):
        method = prefer
        if method is None:
            if rec.dp_class is DPClass.POLYADIC_SERIAL:
                method = "dnc"
            elif _graph_fits_linear_array(problem) or len(set(problem.stage_sizes)) == 1:
                method = "pipelined"
            else:
                method = "sequential"
        if method == "pipelined" and (
            _graph_fits_linear_array(problem) or len(set(problem.stage_sizes)) == 1
        ):
            key = ("pipelined", problem.stage_sizes, problem.semiring.name)
            return "pipelined", key, True
        return "scalar", ("scalar", True), True
    if isinstance(problem, MatrixChainProblem):
        return "scalar", ("scalar", True), True
    return "scalar", ("scalar", False), False


def group_problems(
    problems: list[Any],
    indices: list[int],
    *,
    prefer: str | None,
    vectorize: bool,
) -> list[Group]:
    """Partition ``problems`` (at batch positions ``indices``) into groups.

    With ``vectorize=False`` (side-effectful or cycle-accurate batches)
    every problem joins a scalar group — the kernels below are fast-path
    only — but scalar grouping by picklability still applies, so rtl
    batches can be sharded across workers.
    """
    groups: dict[tuple[Any, ...], Group] = {}
    for pos, problem in zip(indices, problems):
        rec = recommend(problem)
        kind, key, picklable = _plan(problem, rec, prefer)
        if not vectorize and kind in VECTORIZED_KINDS:
            kind, key = "scalar", ("scalar", picklable)
        group = groups.get(key)
        if group is None:
            group = Group(
                kind=kind, key=key, indices=[], problems=[],
                recommendations=[], picklable=picklable,
            )
            groups[key] = group
        group.indices.append(pos)
        group.problems.append(problem)
        group.recommendations.append(rec)
    return list(groups.values())
