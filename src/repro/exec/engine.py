"""The batch execution engine: ``solve_batch()``.

Throughput comes from three stacked levels, in the spirit of the
paper's Section 4 (an array fed a *stream* of instances, not a one-shot
device):

1. **Vectorized multi-instance kernels** — same-shape, same-class
   instances are grouped (:mod:`repro.exec.grouping`) and run through
   the fast backends as one stacked 3-D semiring pass
   (:mod:`repro.exec.vectorized`), bit-identical per instance to a
   looped :func:`repro.core.solver.solve`.
2. **Process-pool sharding** — large groups are split across a worker
   pool (:mod:`repro.exec.pool`), with shard count and sizes chosen by
   the paper's own KT² rule (:func:`repro.dnc.plan_shards`, eq. 29 /
   Theorem 1); ``shard_strategy="even"`` is the naive ablation baseline.
3. **A digest-keyed result cache** — canonical problem digest →
   ``SolveReport`` (:mod:`repro.exec.cache`), shared with single-problem
   ``solve(cache=...)`` calls.

Side-effectful runs bypass both the cache and the vectorized kernels:
``sinks`` and ``fault_plan`` force a sequential in-process loop (their
observers must see every event of every run), while ``backend="rtl"``
and ``strict`` runs stay cycle-accurate per instance but can still be
sharded across workers when the problems are picklable — each worker
builds its own machines and hazard sanitizers, so no monitor state is
shared.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Any, Callable, Iterable, Sequence

from ..core.solver import SolveReport, solve
from ..dnc import plan_shards
from ..systolic import normalize_backend
from .cache import SolveCache, default_cache
from .digest import cache_key
from .grouping import VECTORIZED_KINDS, Group, group_problems
from .pool import ShardResult, execute_payloads
from .vectorized import prepare_payload, run_payload, slice_payload

__all__ = ["BatchResult", "BatchStats", "solve_batch"]

#: Below this group size the pool's pickle + fork overhead outweighs any
#: parallelism, so groups stay in-process.
DEFAULT_MIN_SHARD_ITEMS = 64

_SHARD_WALL_BUCKETS = (0.001, 0.004, 0.016, 0.064, 0.25, 1.0, 4.0)


@dataclasses.dataclass(frozen=True)
class BatchStats:
    """Throughput accounting of one ``solve_batch`` call."""

    total: int  # problems in the batch
    cache_hits: int
    executed: int  # total - cache_hits
    groups: int
    vectorized_groups: int
    vectorized_problems: int
    #: Share of executed problems that rode a stacked vectorized kernel
    #: (1.0 = every executed instance was carried by a batched pass).
    fill_factor: float
    shards: int  # payloads dispatched to the worker pool
    shard_sizes: tuple[int, ...]
    per_shard_seconds: tuple[float, ...]
    workers: int
    shard_strategy: str
    backend: str
    wall_seconds: float

    @property
    def problems_per_second(self) -> float:
        return self.total / self.wall_seconds if self.wall_seconds > 0 else 0.0


@dataclasses.dataclass(frozen=True)
class BatchResult:
    """Per-problem reports (batch order) plus throughput stats."""

    reports: tuple[SolveReport, ...]
    stats: BatchStats

    def __len__(self) -> int:
        return len(self.reports)

    def __iter__(self):
        return iter(self.reports)


def _publish_metrics(registry: Any, stats: BatchStats) -> None:
    registry.counter(
        "repro_batch_problems_total",
        "Problems submitted to solve_batch",
        ("backend",),
    ).labels(backend=stats.backend).inc(stats.total)
    registry.counter(
        "repro_batch_cache_hits_total", "Batch problems served from the solve cache"
    ).labels().inc(stats.cache_hits)
    registry.counter(
        "repro_batch_cache_misses_total", "Batch problems actually executed"
    ).labels().inc(stats.executed)
    registry.counter(
        "repro_batch_shards_total", "Payload shards dispatched to the worker pool"
    ).labels().inc(stats.shards)
    registry.gauge(
        "repro_batch_problems_per_second",
        "Throughput of the most recent solve_batch call",
        ("backend",),
    ).labels(backend=stats.backend).set(stats.problems_per_second)
    registry.gauge(
        "repro_batch_group_fill_factor",
        "Share of executed problems carried by vectorized kernels",
    ).labels().set(stats.fill_factor)
    hist = registry.histogram(
        "repro_batch_shard_wall_seconds",
        "Wall time of each executed shard/group payload",
        (),
        buckets=_SHARD_WALL_BUCKETS,
    ).labels()
    for wall in stats.per_shard_seconds:
        hist.observe(wall)


def solve_batch(
    problems: Iterable[object],
    *,
    prefer: str | None = None,
    backend: str = "fast",
    workers: int = 1,
    cache: SolveCache | bool | None = None,
    strict: bool = False,
    sinks: Iterable[Callable[..., None]] = (),
    fault_plan: Any = None,
    recovery: str = "retry",
    registry: Any = None,
    min_shard_items: int = DEFAULT_MIN_SHARD_ITEMS,
    shard_strategy: str = "kt2",
) -> BatchResult:
    """Solve a batch of problems, returning reports in batch order.

    Results are identical — bit-for-bit, including counters and traced
    paths — to calling :func:`repro.core.solver.solve` on each problem
    with the same ``prefer``/``backend``; only the execution strategy
    differs.  ``backend`` defaults to ``"fast"`` (unlike ``solve()``):
    a batch engine exists for throughput.

    ``cache`` is a :class:`~repro.exec.cache.SolveCache`, or ``True``
    for the process-wide default cache.  Runs with ``sinks``,
    ``fault_plan``, ``backend="rtl"`` or ``strict`` bypass it entirely
    (every instance re-executes).  ``workers > 1`` shards groups of at
    least ``min_shard_items`` problems across a process pool, sized by
    ``shard_strategy`` (``"kt2"``: the eq.-29 planner; ``"even"``: naive
    equal split).  ``registry`` (a
    :class:`~repro.telemetry.MetricsRegistry`) receives the throughput
    counters described in ``docs/scaling.md``.
    """
    problem_list = list(problems)
    total = len(problem_list)
    backend = normalize_backend(backend)
    sinks = tuple(sinks)
    start = time.perf_counter()

    cache_obj: SolveCache | None
    if cache is True:
        cache_obj = default_cache()
    elif cache is False:
        cache_obj = None
    else:
        cache_obj = cache
    side_effectful = bool(sinks) or fault_plan is not None or backend == "rtl" or strict
    cache_active = cache_obj is not None and not side_effectful

    reports: list[SolveReport | None] = [None] * total
    keys: list[tuple | None] = [None] * total
    cache_hits = 0
    if cache_active:
        assert cache_obj is not None
        for i, problem in enumerate(problem_list):
            keys[i] = cache_key(problem, backend=backend, prefer=prefer)
            if keys[i] is None:
                continue
            hit = cache_obj.get(keys[i])
            if hit is not None:
                reports[i] = hit
                cache_hits += 1

    pending = [i for i in range(total) if reports[i] is None]
    groups: list[Group] = []
    shard_sizes: list[int] = []
    per_shard_seconds: list[float] = []
    pooled_shards = 0

    if pending and (sinks or fault_plan is not None):
        # Observers and injectors must see every run: sequential loop.
        for i in pending:
            reports[i] = solve(
                problem_list[i],
                prefer=prefer,
                backend=backend,
                sinks=sinks,
                fault_plan=fault_plan,
                recovery=recovery,
                strict=strict,
            )
    elif pending:
        vectorize = backend != "rtl" and not strict
        groups = group_problems(
            [problem_list[i] for i in pending],
            pending,
            prefer=prefer,
            vectorize=vectorize,
        )
        local: list[tuple[list[int], dict[str, Any]]] = []
        pooled: list[tuple[list[int], dict[str, Any]]] = []
        for group in groups:
            if group.kind in VECTORIZED_KINDS:
                payload = prepare_payload(group)
            else:
                payload = {
                    "kind": "scalar",
                    "problems": list(group.problems),
                    "solve_kwargs": {
                        "prefer": prefer,
                        "backend": backend,
                        "strict": strict,
                        "recovery": recovery,
                    },
                }
            shardable = (
                workers > 1
                and len(group) >= min_shard_items
                and (group.kind in VECTORIZED_KINDS or group.picklable)
            )
            if shardable:
                plan = plan_shards(len(group), workers, strategy=shard_strategy)
                for lo, hi in plan.offsets():
                    pooled.append(
                        (group.indices[lo:hi], slice_payload(payload, lo, hi))
                    )
                    shard_sizes.append(hi - lo)
            else:
                local.append((group.indices, payload))

        pooled_shards = len(pooled)
        if pooled:
            results = execute_payloads([p for _, p in pooled], workers)
            for (indices, _), shard in zip(pooled, results):
                _scatter(reports, indices, shard)
                per_shard_seconds.append(shard.wall_seconds)
        for indices, payload in local:
            t0 = time.perf_counter()
            out = run_payload(payload)
            wall = time.perf_counter() - t0
            _scatter(reports, indices, ShardResult(out, wall))
            per_shard_seconds.append(wall)

    if cache_active:
        assert cache_obj is not None
        for i in pending:
            if keys[i] is not None and reports[i] is not None:
                cache_obj.put(keys[i], reports[i])

    final = tuple(r for r in reports if r is not None)
    if len(final) != total:  # pragma: no cover - internal invariant
        raise RuntimeError("batch execution dropped a problem")

    vectorized_groups = [g for g in groups if g.kind in VECTORIZED_KINDS]
    stats = BatchStats(
        total=total,
        cache_hits=cache_hits,
        executed=len(pending),
        groups=len(groups),
        vectorized_groups=len(vectorized_groups),
        vectorized_problems=sum(len(g) for g in vectorized_groups),
        fill_factor=(
            sum(len(g) for g in vectorized_groups) / len(pending) if pending else 0.0
        ),
        shards=pooled_shards,
        shard_sizes=tuple(shard_sizes),
        per_shard_seconds=tuple(per_shard_seconds),
        workers=workers,
        shard_strategy=shard_strategy,
        backend=backend,
        wall_seconds=time.perf_counter() - start,
    )
    if registry is not None:
        _publish_metrics(registry, stats)
    return BatchResult(reports=final, stats=stats)


def _scatter(
    reports: list[SolveReport | None],
    indices: Sequence[int],
    shard: ShardResult,
) -> None:
    if len(shard.reports) != len(indices):  # pragma: no cover - internal invariant
        raise RuntimeError(
            f"shard returned {len(shard.reports)} reports for {len(indices)} problems"
        )
    for i, report in zip(indices, shard.reports):
        reports[i] = report
