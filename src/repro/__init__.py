"""repro — Systolic Processing for Dynamic Programming Problems.

A complete reproduction of Wah & Li (ICPP 1985): the four-way
classification of dynamic-programming formulations, the three
monadic-serial systolic-array designs (Figures 3-5), divide-and-conquer
scheduling of polyadic-serial problems with the Theorem-1 granularity
analysis (Figure 6), folded AND/OR-graph search with the Theorem-2
partition result, and the nonserial→serial transformations of Section 6.

Quick start::

    import numpy as np
    from repro import graphs, solve

    rng = np.random.default_rng(0)
    problem = graphs.traffic_light_problem(rng, num_intersections=8, num_timings=6)
    report = solve(problem)          # Table-1 dispatch → Fig. 5 array
    print(report.method, report.optimum, report.solution.nodes)

Subpackages
-----------
``repro.semiring``  — closed-semiring algebra (min-plus etc.) and matmuls.
``repro.graphs``    — multistage graphs, workloads, interaction graphs.
``repro.dp``        — sequential DP oracles (monadic, polyadic, chain, nonserial).
``repro.systolic``  — cycle-accurate array simulators (Figs. 3, 4, 5, §6.2).
``repro.dnc``       — divide-and-conquer schedules and granularity analysis.
``repro.andor``     — AND/OR graphs: build, count, search, serialize, map.
``repro.search``    — DP as branch-and-bound with dominance tests.
``repro.dataflow``  — asynchronous dataflow execution of multiply trees.
``repro.core``      — classification, Table-1 dispatch ``solve()``, metrics.
``repro.telemetry`` — trace-bus observability: metrics, timelines, exporters.
``repro.faults``    — fault injection, ABFT detection, recovery policies.
``repro.exec``      — batch engine: stacked kernels, KT² sharding, solve cache.
"""

from . import (
    andor,
    core,
    dataflow,
    dnc,
    dp,
    exec,
    faults,
    graphs,
    io,
    search,
    semiring,
    systolic,
    telemetry,
)
from .core import (
    Arity,
    DPClass,
    MatrixChainProblem,
    Recommendation,
    SolveReport,
    Structure,
    classify,
    recommend,
    solve,
)
from .exec import BatchResult, BatchStats, SolveCache, solve_batch

__version__ = "1.0.0"

__all__ = [
    "semiring",
    "faults",
    "graphs",
    "dp",
    "systolic",
    "dnc",
    "andor",
    "search",
    "dataflow",
    "io",
    "core",
    "telemetry",
    "solve",
    "solve_batch",
    "BatchResult",
    "BatchStats",
    "SolveCache",
    "classify",
    "recommend",
    "Arity",
    "Structure",
    "DPClass",
    "Recommendation",
    "MatrixChainProblem",
    "SolveReport",
    "__version__",
]
