"""Top-down search procedures: DP as branch-and-bound with dominance.

The paper's introduction identifies DP with branch-and-bound plus
dominance tests; this subpackage makes the identification executable and
measurable.
"""

from .bnb import BnBResult, branch_and_bound

__all__ = ["BnBResult", "branch_and_bound"]
