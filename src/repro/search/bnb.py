"""Branch-and-bound with dominance tests on multistage graphs.

The paper's introduction places DP among search procedures: "DP can also
be formulated as a special case of the branch-and-bound algorithm, which
is a general top-down OR-tree search procedure with dominance tests"
(citing Morin & Marsten and the authors' own multiprocessing work).
This module makes that identification executable:

* the OR-tree is the tree of partial source→vertex paths;
* the **dominance test** is DP's state merge: a partial path to vertex
  ``v`` of stage ``k`` is killed when another partial path to the same
  ``(k, v)`` is already at least as good — with it, the search expands
  exactly one representative per state and degenerates to the monadic
  DP sweep;
* an optional admissible **lower bound** (cheapest remaining edge per
  stage, a "min edge" heuristic) adds classical cost-based pruning.

The node-expansion accounting lets benchmarks show the collapse from
exponential (no dominance) to ``Σ m_k·m_{k+1}`` (with dominance), i.e.
the paper's claim that the Principle of Optimality *is* dominance.
"""

from __future__ import annotations

import dataclasses
import heapq

import numpy as np

from ..graphs import MultistageGraph, StagePath

__all__ = ["BnBResult", "branch_and_bound"]


@dataclasses.dataclass(frozen=True)
class BnBResult:
    """Outcome and search-effort accounting of a B&B run."""

    optimum: float
    path: StagePath
    nodes_expanded: int  # partial paths popped and branched
    nodes_generated: int  # children created
    pruned_by_dominance: int
    pruned_by_bound: int

    @property
    def total_pruned(self) -> int:
        return self.pruned_by_dominance + self.pruned_by_bound


def _remaining_bounds(graph: MultistageGraph) -> np.ndarray:
    """Admissible cost-to-go bound per stage: sum of cheapest edges.

    ``bound[k]`` underestimates the cost of any path from stage ``k`` to
    the final stage (0 for the final stage).  Only meaningful for
    min-plus; other semirings fall back to the zero bound.
    """
    n_stages = graph.num_stages
    bound = np.zeros(n_stages)
    if graph.semiring.name != "min-plus":
        return bound
    for k in range(n_stages - 2, -1, -1):
        cheapest = float(np.min(graph.costs[k]))
        bound[k] = bound[k + 1] + cheapest
    return bound


def branch_and_bound(
    graph: MultistageGraph,
    *,
    dominance: bool = True,
    use_bound: bool = True,
) -> BnBResult:
    """Best-first branch-and-bound search for the optimal path.

    Only min-plus graphs are supported (best-first ordering needs a
    totally ordered, monotone cost).  With ``dominance=True`` the search
    is the DP algorithm in search clothing; with both switches off it
    enumerates the full OR-tree (exponential — intended for the
    expansion-count comparison on small instances).
    """
    if graph.semiring.name != "min-plus":
        raise ValueError("branch_and_bound requires the min-plus semiring")
    sizes = graph.stage_sizes
    n_stages = graph.num_stages
    bounds = _remaining_bounds(graph) if use_bound else np.zeros(n_stages)

    # Frontier entries: (priority, tiebreak, cost, stage, vertex, parent id)
    # Parents are tracked in an arena for path reconstruction.
    arena: list[tuple[int, int]] = []  # (parent index, vertex)
    heap: list[tuple[float, int, float, int, int, int]] = []
    counter = 0
    for v in range(sizes[0]):
        arena.append((-1, v))
        heapq.heappush(heap, (bounds[0], counter, 0.0, 0, v, counter))
        counter += 1

    best_at_state: dict[tuple[int, int], float] = {}
    incumbent = float("inf")
    incumbent_leaf = -1
    expanded = 0
    generated = len(heap)
    pruned_dom = 0
    pruned_bound = 0

    while heap:
        prio, _tb, cost, stage, vertex, node_id = heapq.heappop(heap)
        if use_bound and prio >= incumbent and incumbent_leaf >= 0:
            pruned_bound += 1
            continue
        if dominance:
            seen = best_at_state.get((stage, vertex))
            if seen is not None and seen < cost:
                pruned_dom += 1
                continue
        if stage == n_stages - 1:
            if cost < incumbent:
                incumbent, incumbent_leaf = cost, node_id
            continue
        expanded += 1
        for w in range(sizes[stage + 1]):
            edge = float(graph.costs[stage][vertex, w])
            if not np.isfinite(edge):
                continue
            child_cost = cost + edge
            child_state = (stage + 1, w)
            if dominance:
                seen = best_at_state.get(child_state)
                if seen is not None and seen <= child_cost:
                    pruned_dom += 1
                    continue
                best_at_state[child_state] = child_cost
            prio_child = child_cost + bounds[stage + 1]
            if use_bound and prio_child >= incumbent and incumbent_leaf >= 0:
                pruned_bound += 1
                continue
            arena.append((node_id, w))
            child_id = len(arena) - 1
            heapq.heappush(
                heap, (prio_child, child_id, child_cost, stage + 1, w, child_id)
            )
            generated += 1

    if incumbent_leaf < 0:
        raise ValueError("graph has no finite source->sink path")
    nodes = []
    cur = incumbent_leaf
    while cur >= 0:
        parent, vertex = arena[cur]
        nodes.append(vertex)
        cur = parent
    nodes.reverse()
    return BnBResult(
        optimum=incumbent,
        path=StagePath(nodes=tuple(nodes), cost=incumbent),
        nodes_expanded=expanded,
        nodes_generated=generated,
        pruned_by_dominance=pruned_dom,
        pruned_by_bound=pruned_bound,
    )
