"""Command-line interface: ``python -m repro <command>``.

Small demonstration front-end over the library:

* ``python -m repro demo`` — classify and solve one representative
  problem per Table-1 class, printing the dispatch report.
* ``python -m repro fig6 [--n N]`` — regenerate the Figure-6 sweep.
* ``python -m repro spacetime [--stages N] [--values M]`` — run the
  Fig. 5 array on a random instance and print its space-time diagram.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np


def _cmd_demo(args: argparse.Namespace) -> int:
    from . import MatrixChainProblem, solve
    from .dp import banded_objective
    from .graphs import traffic_light_problem, uniform_multistage

    rng = np.random.default_rng(args.seed)
    problems = [
        ("monadic-serial", traffic_light_problem(rng, 6, 5)),
        ("polyadic-serial", uniform_multistage(rng, 40, 3)),
        ("monadic-nonserial", banded_objective(rng, [4, 3, 4, 3])),
        ("polyadic-nonserial", MatrixChainProblem((30, 35, 15, 5, 10, 20, 25))),
    ]
    print(f"{'class':20s} {'method':36s} {'optimum':>12s}  validated")
    for name, problem in problems:
        rep = solve(problem)
        print(f"{name:20s} {rep.method:36s} {rep.optimum:12.3f}  {rep.validated}")
    return 0


def _cmd_fig6(args: argparse.Namespace) -> int:
    from .dnc import argmin_kt2, kt2, optimal_granularity, schedule_time

    n = args.n
    best_k, best_v = argmin_kt2(n, k_min=2, k_max=n)
    print(f"N = {n}: argmin of K*T^2 is K = {best_k} (KT^2 = {best_v:.0f}); "
          f"N/log2(N) = {optimal_granularity(n):.0f}")
    ks = sorted({max(2, n // d) for d in (64, 32, 16, 12, 10, 8, 6, 4, 2)} | {best_k})
    print(f"{'K':>6s} {'T_c':>5s} {'T_w':>5s} {'T':>5s} {'K*T^2':>12s}")
    for k in ks:
        st = schedule_time(n, k)
        print(f"{k:6d} {st.computation:5d} {st.wind_down:5d} {st.total:5d} "
              f"{kt2(n, k):12.0f}")
    return 0


def _cmd_spacetime(args: argparse.Namespace) -> int:
    from .graphs import traffic_light_problem
    from .systolic import FeedbackSystolicArray, render_spacetime

    rng = np.random.default_rng(args.seed)
    problem = traffic_light_problem(rng, args.stages, args.values)
    res = FeedbackSystolicArray().run(problem, record_trace=True)
    print(
        f"Fig. 5 array on {args.stages} stages x {args.values} values: "
        f"optimum {res.optimum:.3f}, path {res.path.nodes}, "
        f"{res.report.iterations} iterations\n"
    )
    print(render_spacetime(res.trace, args.values, res.report.iterations))
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Systolic processing for dynamic programming (Wah & Li, 1985)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_demo = sub.add_parser("demo", help="solve one problem per Table-1 class")
    p_demo.add_argument("--seed", type=int, default=0)
    p_demo.set_defaults(func=_cmd_demo)

    p_fig6 = sub.add_parser("fig6", help="regenerate the Figure-6 sweep")
    p_fig6.add_argument("--n", type=int, default=4096)
    p_fig6.set_defaults(func=_cmd_fig6)

    p_st = sub.add_parser("spacetime", help="Fig. 5 space-time diagram")
    p_st.add_argument("--stages", type=int, default=4)
    p_st.add_argument("--values", type=int, default=3)
    p_st.add_argument("--seed", type=int, default=0)
    p_st.set_defaults(func=_cmd_spacetime)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via tests calling main()
    sys.exit(main())
