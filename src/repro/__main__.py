"""Command-line interface: ``python -m repro <command>``.

Small demonstration front-end over the library:

* ``python -m repro demo`` — classify and solve one representative
  problem per Table-1 class, printing the dispatch report.
* ``python -m repro fig6 [--n N]`` — regenerate the Figure-6 sweep.
* ``python -m repro spacetime [--stages N] [--values M]`` — run the
  Fig. 5 array on a random instance and print its space-time diagram.
* ``python -m repro bench [--design D|all] [--n N] [--m M]
  [--backend B]`` — time any of the five array designs on a random
  instance, per backend, and optionally write uniform ``BENCH_*.json``
  records (the CI smoke step and the perf-trajectory corpus).
* ``python -m repro batch [--kind K] [--batch B] [--workers W]`` —
  throughput demo of the batch engine (:mod:`repro.exec`): solve a
  random batch with ``solve_batch`` and a looped ``solve()``, print the
  speedup, grouping/sharding stats and second-pass cache hit rate.
* ``python -m repro trace --design D [--export chrome|json|ascii]`` —
  run one design with telemetry sinks subscribed and export a
  Chrome-trace/Perfetto JSON, a full run record (report + events +
  metrics + timings, consumable by ``compare``), or an ASCII space-time
  occupancy heatmap.
* ``python -m repro compare A.json B.json`` — per-metric delta table
  between two saved run records.
* ``python -m repro inject [--design D|all] [--trials T]
  [--policy P] [--fault-plan F.json]`` — seeded fault-injection
  campaigns (or one explicit plan) with ABFT detection and recovery;
  exits 1 if any output-corrupting fault went undetected.
* ``python -m repro lint [paths...] [--json F] [--include-suppressed]
  [--no-tools]`` — the systolic discipline checker
  (:mod:`repro.analysis`): static fabric rules over the tree plus
  gated ruff/mypy sections; exits 1 on findings, the CI lint gate.

``demo`` and ``bench`` accept ``--backend rtl|fast|auto`` to pick the
array execution engine (cycle-accurate machine vs. vectorized
whole-array reductions).

File and plan errors (unreadable run records, corrupted JSON, invalid
fault plans) exit with status 2 and a one-line ``error:`` message, the
same convention argparse uses for bad flags.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

#: CLI design names for the five array simulators.
DESIGNS = ("pipelined", "broadcast", "feedback", "mesh", "paren")


def _design_runner(design: str, rng: np.random.Generator, n: int, m: int):
    """Build a random instance for ``design``; return ``(name, run)``.

    ``name`` is the simulator's ``design_name``; the ``run`` closure has
    a uniform signature across designs —
    ``run(backend=None, sinks=(), record_trace=False) -> result`` where
    the result carries ``.report`` (and ``.events`` when traced).
    """
    if design in ("pipelined", "broadcast"):
        from .systolic import BroadcastMatrixStringArray, PipelinedMatrixStringArray

        mats = [
            rng.integers(0, 100, size=(m, m)).astype(float) for _ in range(n - 1)
        ]
        mats.append(rng.integers(0, 100, size=(m, 1)).astype(float))
        array = (
            PipelinedMatrixStringArray()
            if design == "pipelined"
            else BroadcastMatrixStringArray()
        )
        return array.design_name, lambda **kw: array.run(mats, **kw)
    if design == "feedback":
        from .graphs import traffic_light_problem
        from .systolic import FeedbackSystolicArray

        problem = traffic_light_problem(rng, n, m)
        array = FeedbackSystolicArray()
        return array.design_name, lambda **kw: array.run(problem, **kw)
    if design == "mesh":
        from .systolic import MeshMatrixMultiplier

        a = rng.integers(0, 100, size=(n, m)).astype(float)
        b = rng.integers(0, 100, size=(m, n)).astype(float)
        array = MeshMatrixMultiplier()
        return array.design_name, lambda **kw: array.run(a, b, **kw)
    if design == "paren":
        from .systolic import SystolicParenthesizer

        dims = tuple(int(d) for d in rng.integers(2, 50, size=n + 1))
        array = SystolicParenthesizer()
        return array.design_name, lambda **kw: array.run(dims, **kw)
    raise ValueError(f"unknown design {design!r}")


def _cmd_demo(args: argparse.Namespace) -> int:
    from . import MatrixChainProblem, solve
    from .dp import banded_objective
    from .graphs import traffic_light_problem, uniform_multistage

    rng = np.random.default_rng(args.seed)
    problems = [
        ("monadic-serial", traffic_light_problem(rng, 6, 5)),
        ("polyadic-serial", uniform_multistage(rng, 40, 3)),
        ("monadic-nonserial", banded_objective(rng, [4, 3, 4, 3])),
        ("polyadic-nonserial", MatrixChainProblem((30, 35, 15, 5, 10, 20, 25))),
    ]
    print(f"{'class':20s} {'method':36s} {'optimum':>12s}  validated")
    for name, problem in problems:
        rep = solve(problem, backend=args.backend)
        print(f"{name:20s} {rep.method:36s} {rep.optimum:12.3f}  {rep.validated}")
    return 0


def _cmd_fig6(args: argparse.Namespace) -> int:
    from .dnc import argmin_kt2, kt2, optimal_granularity, schedule_time

    n = args.n
    best_k, best_v = argmin_kt2(n, k_min=2, k_max=n)
    print(f"N = {n}: argmin of K*T^2 is K = {best_k} (KT^2 = {best_v:.0f}); "
          f"N/log2(N) = {optimal_granularity(n):.0f}")
    ks = sorted({max(2, n // d) for d in (64, 32, 16, 12, 10, 8, 6, 4, 2)} | {best_k})
    print(f"{'K':>6s} {'T_c':>5s} {'T_w':>5s} {'T':>5s} {'K*T^2':>12s}")
    for k in ks:
        st = schedule_time(n, k)
        print(f"{k:6d} {st.computation:5d} {st.wind_down:5d} {st.total:5d} "
              f"{kt2(n, k):12.0f}")
    return 0


def _cmd_spacetime(args: argparse.Namespace) -> int:
    import json

    from .graphs import traffic_light_problem
    from .systolic import FeedbackSystolicArray
    from .telemetry import TimelineSink

    rng = np.random.default_rng(args.seed)
    problem = traffic_light_problem(rng, args.stages, args.values)
    timeline = TimelineSink()
    res = FeedbackSystolicArray().run(problem, sinks=[timeline])
    if args.json:
        print(json.dumps(timeline.to_json(res.report), indent=2))
        return 0
    print(
        f"Fig. 5 array on {args.stages} stages x {args.values} values: "
        f"optimum {res.optimum:.3f}, path {res.path.nodes}, "
        f"{res.report.iterations} iterations\n"
    )
    print(timeline.render_spacetime(args.values, res.report.iterations))
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    import json
    import pathlib

    from .analysis import HazardError
    from .telemetry import (
        MetricsSink,
        TimelineSink,
        collect_timings,
        validate_chrome_trace,
        write_chrome_trace,
    )

    rng = np.random.default_rng(args.seed)
    design_name, run = _design_runner(args.design, rng, args.n, args.m)
    injector = None
    fault_plan = None
    if args.fault_plan:
        from .faults import FaultInjector, FaultPlan, FaultPlanError

        fault_plan = FaultPlan.load(args.fault_plan)
        if fault_plan.design and fault_plan.design != args.design:
            raise FaultPlanError(
                f"fault plan targets design {fault_plan.design!r}, "
                f"trace is running {args.design!r}"
            )
        injector = FaultInjector(fault_plan)
    timeline = TimelineSink(design_name)
    metrics = MetricsSink(design_name)
    try:
        with collect_timings() as timer:
            res = run(
                record_trace=True, sinks=[timeline, metrics],
                injector=injector, strict=args.strict,
            )
    except HazardError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except Exception as exc:
        if injector is None:
            raise
        # Crash-as-detection: injected faults may corrupt state into
        # shapes the schedule cannot finish on.  Report, don't traceback.
        print(
            f"{design_name}: run crashed under fault injection after "
            f"{len(injector.injections)} injection(s): "
            f"{type(exc).__name__}: {exc}"
        )
        return 1
    report = res.report
    print(
        f"{report.design} (rtl): {report.num_pes} PEs, "
        f"{report.iterations} iterations, {report.wall_ticks} wall ticks, "
        f"PU {report.processor_utilization:.3f}"
    )
    if args.strict:
        print(f"hazard sanitizer: {report.hazards} hazard(s)")
    if injector is not None:
        print(
            f"fault plan {args.fault_plan}: {len(fault_plan)} spec(s), "
            f"{len(injector.injections)} injection(s) performed"
        )

    if args.metrics:
        path = pathlib.Path(args.metrics)
        if path.suffix == ".json":
            path.write_text(
                json.dumps(metrics.registry.snapshot(), indent=2) + "\n"
            )
        else:
            path.write_text(metrics.registry.to_prometheus())
        print(f"wrote metrics {path}")

    if args.export == "ascii":
        print()
        print(timeline.render_heatmap())
        breakdown = timeline.pu_breakdown(report)
        print()
        print("phase  label            start  length  busy  occupancy")
        for row in breakdown["phases"]:
            print(
                f"{row['phase']:>5d}  {row['label']:<15s}  {row['start']:>5d}  "
                f"{row['length']:>6d}  {row['busy_ticks']:>4d}  {row['occupancy']:.3f}"
            )
        if "paper_pu" in breakdown:
            print(f"paper closed-form PU: {breakdown['paper_pu']:.4f}")
        return 0

    out = pathlib.Path(
        args.out if args.out else f"trace_{report.design}.{args.export}.json"
    )
    if args.export == "chrome":
        data = write_chrome_trace(out, res.events, design=report.design)
        summary = validate_chrome_trace(data)
        print(
            f"wrote {out}: {summary['events']} events on {summary['lanes']} lanes, "
            f"{summary['phases']} phase spans"
        )
    else:  # json: the full run record, consumable by `compare`
        from .io import save_run

        faults_payload = None
        if injector is not None:
            faults_payload = {
                "kind": "fault_trace",
                "plan": fault_plan.to_dict(),
                "injections": [inj.to_dict() for inj in injector.injections],
            }
        save_run(
            out,
            report,
            res.events,
            metrics=metrics.registry.snapshot(),
            timings=timer.summary(),
            faults=faults_payload,
        )
        print(f"wrote {out}: run record with {len(res.events)} events")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    from .telemetry import RunComparison

    comparison = RunComparison.from_files(args.run_a, args.run_b)
    print(comparison.render(only_changed=args.only_changed))
    return 0


def _bench_record(
    design: str, backend: str, n: int, m: int, wall: float, report
) -> dict:
    """The uniform ``BENCH_*.json`` record shape, for every design."""
    return {
        "bench": "cli_smoke",
        "design": report.design,
        "backend": backend,
        "N": n,
        "m": m,
        "wall_seconds": wall,
        "iterations": report.iterations,
        "pu": report.processor_utilization,
    }


def _cmd_bench(args: argparse.Namespace) -> int:
    import json
    import pathlib
    import time

    from .systolic import BACKENDS

    designs = list(DESIGNS) if args.design == "all" else [args.design]
    backends = list(BACKENDS[:2]) if args.backend == "auto" else [args.backend]
    out_dir = pathlib.Path(args.out_dir) if args.out_dir else None
    if out_dir is not None:
        out_dir.mkdir(parents=True, exist_ok=True)
    records: list[dict] = []
    for design in designs:
        rng = np.random.default_rng(args.seed)
        design_name, run = _design_runner(design, rng, args.n, args.m)
        timings: dict[str, float] = {}
        for backend in backends:
            start = time.perf_counter()
            res = run(backend=backend)
            timings[backend] = time.perf_counter() - start
            print(
                f"{design} N={args.n} m={args.m} backend={backend}: "
                f"{timings[backend]:.4f}s, {res.report.iterations} iterations, "
                f"PU {res.report.processor_utilization:.3f}"
            )
        if len(timings) == 2:
            print(f"speedup fast vs rtl: {timings['rtl'] / timings['fast']:.1f}x")
        backend = backends[-1]
        record = _bench_record(
            design, backend, args.n, args.m, timings[backend], res.report
        )
        records.append(record)
        if out_dir is not None:
            path = out_dir / f"BENCH_{design_name.replace('-', '_')}.json"
            path.write_text(json.dumps(record, indent=2) + "\n")
            print(f"wrote {path}")
    if args.json:
        # One design keeps the historical flat record shape; `--design all`
        # consolidates every design into a single suite record instead of
        # silently keeping only the last one.
        if len(records) == 1:
            payload = records[0]
        else:
            payload = {
                "bench": "cli_smoke_suite",
                "designs": [r["design"] for r in records],
                "records": records,
                "total_wall_seconds": sum(r["wall_seconds"] for r in records),
            }
        pathlib.Path(args.json).write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {args.json}")
    if out_dir is not None and len(records) > 1:
        path = out_dir / "BENCH_all.json"
        path.write_text(
            json.dumps(
                {
                    "bench": "cli_smoke_suite",
                    "designs": [r["design"] for r in records],
                    "records": records,
                    "total_wall_seconds": sum(r["wall_seconds"] for r in records),
                },
                indent=2,
            )
            + "\n"
        )
        print(f"wrote {path}")
    return 0


def _batch_problems(kind: str, rng: np.random.Generator, batch: int, n: int, m: int):
    """Build ``batch`` random instances of ``kind`` for the batch engine."""
    from . import MatrixChainProblem
    from .graphs import traffic_light_problem, uniform_multistage

    if kind == "feedback":
        return [traffic_light_problem(rng, n, m) for _ in range(batch)]
    if kind == "pipelined":
        return [uniform_multistage(rng, n, m) for _ in range(batch)]
    if kind == "chain":
        return [
            MatrixChainProblem(tuple(int(d) for d in rng.integers(2, 50, size=n + 1)))
            for _ in range(batch)
        ]
    # mixed: a third of each, exercising grouping across kinds
    third = max(1, batch // 3)
    probs: list = [traffic_light_problem(rng, n, m) for _ in range(third)]
    probs += [uniform_multistage(rng, n, m) for _ in range(third)]
    while len(probs) < batch:
        probs.append(
            MatrixChainProblem(tuple(int(d) for d in rng.integers(2, 50, size=n + 1)))
        )
    return probs[:batch]


def _cmd_batch(args: argparse.Namespace) -> int:
    import json
    import pathlib
    import time

    from . import SolveCache, solve, solve_batch

    rng = np.random.default_rng(args.seed)
    problems = _batch_problems(args.kind, rng, args.batch, args.n, args.m)

    start = time.perf_counter()
    looped = [solve(p, backend=args.backend) for p in problems]
    looped_wall = time.perf_counter() - start

    cache = SolveCache(capacity=max(2 * args.batch, 64))
    start = time.perf_counter()
    result = solve_batch(
        problems,
        backend=args.backend,
        workers=args.workers,
        cache=cache,
        min_shard_items=args.min_shard_items,
        shard_strategy=args.shard_strategy,
    )
    batched_wall = time.perf_counter() - start
    for rep, ref in zip(result.reports, looped):
        if rep.optimum != ref.optimum:
            print("error: batched optimum diverged from looped solve()",
                  file=sys.stderr)
            return 1

    second = solve_batch(problems, backend=args.backend, cache=cache)
    stats = result.stats
    speedup = looped_wall / batched_wall if batched_wall > 0 else float("inf")
    print(
        f"batch kind={args.kind} B={args.batch} n={args.n} m={args.m} "
        f"backend={stats.backend} workers={stats.workers}"
    )
    print(
        f"  looped solve(): {looped_wall:.4f}s "
        f"({args.batch / looped_wall:.0f} problems/s)"
    )
    print(
        f"  solve_batch():  {batched_wall:.4f}s "
        f"({stats.problems_per_second:.0f} problems/s)  speedup {speedup:.1f}x"
    )
    print(
        f"  groups={stats.groups} vectorized={stats.vectorized_groups} "
        f"fill={stats.fill_factor:.2f} shards={stats.shards} "
        f"strategy={stats.shard_strategy}"
    )
    print(
        f"  cache second pass: {second.stats.cache_hits}/{second.stats.total} hits "
        f"({cache.stats.hit_rate:.2f} overall hit rate)"
    )
    if args.json:
        payload = {
            "bench": "batch_cli",
            "kind": args.kind,
            "batch": args.batch,
            "n": args.n,
            "m": args.m,
            "backend": stats.backend,
            "workers": stats.workers,
            "shard_strategy": stats.shard_strategy,
            "looped_wall_seconds": looped_wall,
            "batched_wall_seconds": batched_wall,
            "speedup": speedup,
            "problems_per_second": stats.problems_per_second,
            "fill_factor": stats.fill_factor,
            "groups": stats.groups,
            "shards": stats.shards,
            "shard_sizes": list(stats.shard_sizes),
            "second_pass_cache_hits": second.stats.cache_hits,
        }
        pathlib.Path(args.json).write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {args.json}")
    return 0


def _cmd_inject(args: argparse.Namespace) -> int:
    import json
    import pathlib

    from .faults import (
        FaultDetected,
        FaultPlan,
        FaultPlanError,
        make_harness,
        run_campaign,
        run_with_recovery,
    )
    from .telemetry import MetricsRegistry, MetricsSink

    registry = MetricsRegistry()

    if args.fault_plan:
        # One explicit plan against one design instance.
        plan = FaultPlan.load(args.fault_plan)
        design = plan.design or (args.design if args.design != "all" else None)
        if design is None:
            raise FaultPlanError(
                "plan names no design; pass --design with a concrete one"
            )
        if args.design != "all" and args.design != design:
            raise FaultPlanError(
                f"fault plan targets design {design!r}, --design says {args.design!r}"
            )
        rng = np.random.default_rng(args.seed)
        harness = make_harness(design, rng, n=args.n, m=args.m)
        sink = MetricsSink(harness.design, registry)
        try:
            _, run_report = run_with_recovery(
                harness, plan, policy=args.policy, sinks=(sink,)
            )
        except FaultDetected as exc:
            print(f"{design}: fail-fast raised ({len(exc.detections)} detections)")
            return 1
        print(
            f"{design}: outcome {run_report.outcome}, "
            f"{len(run_report.injections)} injection(s), "
            f"{len(run_report.detections)} detection(s), "
            f"{run_report.attempts} attempt(s)"
        )
        for deg in run_report.degraded:
            print(
                f"  spare-PE remap of PE {deg['dead_pe']}: "
                f"PU {deg['measured_pu']:.3f} on {deg['active_pes']} PEs "
                f"(clean {deg['clean_pu']:.3f}, paper "
                + (
                    f"{deg['predicted_pu']:.3f})"
                    if deg["predicted_pu"] is not None
                    else "n/a)"
                )
            )
        if args.json:
            payload = {"kind": "fault_run_record", "run": run_report.to_dict()}
            pathlib.Path(args.json).write_text(json.dumps(payload, indent=2) + "\n")
            print(f"wrote {args.json}")
        ok = run_report.outcome in ("clean", "recovered", "degraded") or (
            run_report.outcome == "detected" and args.policy == "warn"
        )
        return 0 if ok else 1

    designs = list(DESIGNS) if args.design == "all" else [args.design]
    print(
        f"{'design':10s} {'injected':>8s} {'effective':>9s} {'detected':>8s} "
        f"{'recovered':>9s} {'det rate':>8s} {'rec rate':>8s} {'silent':>6s}"
    )
    campaigns = []
    silent_total = 0
    for design in designs:
        rep = run_campaign(
            design,
            seed=args.seed,
            trials=args.trials,
            n=args.n,
            m=args.m,
            policy=args.policy,
            registry=registry,
        )
        campaigns.append(rep)
        silent_total += rep.undetected_effective
        print(
            f"{design:10s} {rep.faults_injected:8d} {rep.effective:9d} "
            f"{rep.detected:8d} {rep.recovered:9d} {rep.detection_rate:8.3f} "
            f"{rep.recovery_rate:8.3f} {rep.undetected_effective:6d}"
        )
    if args.json:
        payload = {
            "kind": "fault_campaign_suite",
            "campaigns": [rep.to_dict() for rep in campaigns],
            "metrics": registry.snapshot(),
        }
        pathlib.Path(args.json).write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {args.json}")
    if silent_total:
        print(
            f"FAIL: {silent_total} effective fault(s) escaped every detector",
            file=sys.stderr,
        )
        return 1
    print("every output-corrupting fault was detected or recovered")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    import pathlib

    from .analysis import run_lint

    paths = [pathlib.Path(p) for p in args.paths] or None
    if paths:
        for p in paths:
            if not p.exists():
                raise FileNotFoundError(f"no such file or directory: {p}")
    report = run_lint(
        paths,
        include_suppressed=args.include_suppressed,
        run_tools=not args.no_tools,
    )
    if args.json:
        pathlib.Path(args.json).write_text(report.to_json() + "\n")
    for finding in report.findings:
        print(finding)
    if args.include_suppressed:
        for finding in report.suppressed:
            print(f"{finding}  [suppressed: {finding.justification}]")
    for name, section in sorted(report.tools.items()):
        status = section.get("status", "?")
        detail = ""
        if status == "failed":
            detail = f" ({section.get('errors', section.get('findings', '?'))} problem(s))"
        print(f"tool {name}: {status}{detail}")
    verdict = "clean" if report.ok else "FAILED"
    print(
        f"lint {verdict}: {report.files_checked} file(s), "
        f"{len(report.findings)} finding(s), "
        f"{len(report.suppressed) if args.include_suppressed else '-'} suppressed"
    )
    return 0 if report.ok else 1


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Systolic processing for dynamic programming (Wah & Li, 1985)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_demo = sub.add_parser("demo", help="solve one problem per Table-1 class")
    p_demo.add_argument("--seed", type=int, default=0)
    p_demo.add_argument(
        "--backend", choices=("rtl", "fast", "auto"), default="rtl",
        help="systolic-array execution engine (default: rtl)",
    )
    p_demo.set_defaults(func=_cmd_demo)

    p_fig6 = sub.add_parser("fig6", help="regenerate the Figure-6 sweep")
    p_fig6.add_argument("--n", type=int, default=4096)
    p_fig6.set_defaults(func=_cmd_fig6)

    p_st = sub.add_parser("spacetime", help="Fig. 5 space-time diagram")
    p_st.add_argument("--stages", type=int, default=4)
    p_st.add_argument("--values", type=int, default=3)
    p_st.add_argument("--seed", type=int, default=0)
    p_st.add_argument(
        "--json", action="store_true",
        help="print the timeline as JSON instead of the labelled diagram",
    )
    p_st.set_defaults(func=_cmd_spacetime)

    p_bench = sub.add_parser("bench", help="time an array design per backend")
    p_bench.add_argument(
        "--design", choices=DESIGNS + ("all",), default="pipelined",
        help="array design to time, or 'all' (default: pipelined)",
    )
    p_bench.add_argument("--n", type=int, default=16, help="instance size (matrices/stages/rows)")
    p_bench.add_argument("--m", type=int, default=8, help="values per stage / columns")
    p_bench.add_argument("--seed", type=int, default=0)
    p_bench.add_argument(
        "--backend", choices=("rtl", "fast", "auto"), default="auto",
        help="backend to time; 'auto' times both and prints the speedup",
    )
    p_bench.add_argument("--json", default=None, help="write a BENCH_*.json record here")
    p_bench.add_argument(
        "--out-dir", default=None,
        help="write one BENCH_<design>.json record per design into this directory",
    )
    p_bench.set_defaults(func=_cmd_bench)

    p_batch = sub.add_parser(
        "batch",
        help="throughput demo: solve_batch vs looped solve() on a random batch",
    )
    p_batch.add_argument(
        "--kind", choices=("feedback", "pipelined", "chain", "mixed"),
        default="feedback",
        help="instance family to batch (default: feedback)",
    )
    p_batch.add_argument("--batch", type=int, default=64, help="instances in the batch")
    p_batch.add_argument("--n", type=int, default=6, help="stages / matrices per instance")
    p_batch.add_argument("--m", type=int, default=5, help="values per stage / columns")
    p_batch.add_argument("--seed", type=int, default=0)
    p_batch.add_argument(
        "--backend", choices=("rtl", "fast", "auto"), default="fast",
        help="array execution engine (default: fast — the throughput engine)",
    )
    p_batch.add_argument(
        "--workers", type=int, default=1,
        help="process-pool workers for sharded groups (default: 1, in-process)",
    )
    p_batch.add_argument(
        "--min-shard-items", type=int, default=64,
        help="smallest group worth sharding across the pool (default: 64)",
    )
    p_batch.add_argument(
        "--shard-strategy", choices=("kt2", "even"), default="kt2",
        help="shard-size planner: eq.-29 KT² rule or naive even split",
    )
    p_batch.add_argument("--json", default=None, help="write a batch_cli record here")
    p_batch.set_defaults(func=_cmd_batch)

    p_trace = sub.add_parser(
        "trace", help="run one design with telemetry sinks and export the trace"
    )
    p_trace.add_argument(
        "--design", choices=DESIGNS, default="feedback",
        help="array design to trace (default: feedback)",
    )
    p_trace.add_argument(
        "--export", choices=("chrome", "json", "ascii"), default="chrome",
        help="chrome: Perfetto-loadable trace; json: full run record "
             "(for `compare`); ascii: space-time occupancy heatmap",
    )
    p_trace.add_argument("--out", default=None, help="output path for chrome/json exports")
    p_trace.add_argument(
        "--metrics", default=None,
        help="also write the metrics registry here (.json: snapshot; "
             "otherwise Prometheus text)",
    )
    p_trace.add_argument("--n", type=int, default=6, help="instance size (matrices/stages/rows)")
    p_trace.add_argument("--m", type=int, default=4, help="values per stage / columns")
    p_trace.add_argument("--seed", type=int, default=0)
    p_trace.add_argument(
        "--fault-plan", default=None,
        help="inject this fault plan (JSON from FaultPlan.save) during the "
             "traced run; fault events land in the exported trace",
    )
    p_trace.add_argument(
        "--strict", action="store_true",
        help="run under the hazard sanitizer (repro.analysis); exits 1 "
             "with the hazard report if the design violates the "
             "register/latch discipline",
    )
    p_trace.set_defaults(func=_cmd_trace)

    p_cmp = sub.add_parser(
        "compare", help="per-metric delta table between two saved run records"
    )
    p_cmp.add_argument("run_a", help="baseline systolic_run JSON file")
    p_cmp.add_argument("run_b", help="candidate systolic_run JSON file")
    p_cmp.add_argument(
        "--only-changed", action="store_true",
        help="hide metrics whose values are identical on both sides",
    )
    p_cmp.set_defaults(func=_cmd_compare)

    p_inj = sub.add_parser(
        "inject",
        help="fault-injection campaign (or one plan) with detection/recovery",
    )
    p_inj.add_argument(
        "--design", choices=DESIGNS + ("all",), default="all",
        help="array design to attack, or 'all' (default: all)",
    )
    p_inj.add_argument(
        "--trials", type=int, default=100,
        help="random fault plans per design (default: 100)",
    )
    p_inj.add_argument(
        "--policy", choices=("fail_fast", "warn", "retry", "spare"),
        default="retry", help="recovery policy (default: retry)",
    )
    p_inj.add_argument("--n", type=int, default=6, help="instance size (matrices/stages/rows)")
    p_inj.add_argument("--m", type=int, default=4, help="values per stage / columns")
    p_inj.add_argument("--seed", type=int, default=0)
    p_inj.add_argument(
        "--fault-plan", default=None,
        help="run this one plan (JSON from FaultPlan.save) instead of a "
             "random campaign",
    )
    p_inj.add_argument(
        "--json", default=None,
        help="write the campaign/run report (with metrics snapshot) here",
    )
    p_inj.set_defaults(func=_cmd_inject)

    p_lint = sub.add_parser(
        "lint",
        help="systolic discipline checker: static fabric rules + ruff/mypy",
    )
    p_lint.add_argument(
        "paths", nargs="*",
        help="files or directories to lint (default: the repro package)",
    )
    p_lint.add_argument(
        "--json", default=None, help="write the full LintReport JSON here"
    )
    p_lint.add_argument(
        "--include-suppressed", action="store_true",
        help="also list findings silenced by `# systolic: allow(...)`",
    )
    p_lint.add_argument(
        "--no-tools", action="store_true",
        help="skip the ruff/mypy subprocess sections (static rules only)",
    )
    p_lint.set_defaults(func=_cmd_lint)

    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except Exception as exc:  # noqa: BLE001 — filtered to the typed CLI errors
        if isinstance(exc, _cli_error_types()):
            print(f"error: {exc}", file=sys.stderr)
            return 2
        raise


def _cli_error_types() -> tuple[type[BaseException], ...]:
    """Errors that exit 2 with a one-line message instead of a traceback."""
    from .faults import FaultPlanError
    from .io import RunRecordError

    return (RunRecordError, FaultPlanError, FileNotFoundError, IsADirectoryError,
            PermissionError)


if __name__ == "__main__":  # pragma: no cover - exercised via tests calling main()
    sys.exit(main())
