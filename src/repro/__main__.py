"""Command-line interface: ``python -m repro <command>``.

Small demonstration front-end over the library:

* ``python -m repro demo`` — classify and solve one representative
  problem per Table-1 class, printing the dispatch report.
* ``python -m repro fig6 [--n N]`` — regenerate the Figure-6 sweep.
* ``python -m repro spacetime [--stages N] [--values M]`` — run the
  Fig. 5 array on a random instance and print its space-time diagram.
* ``python -m repro bench [--n N] [--m M] [--backend B]`` — time the
  pipelined array on a random matrix string, per backend, and
  optionally write a ``BENCH_*.json`` record (the CI smoke step).

``demo`` and ``bench`` accept ``--backend rtl|fast|auto`` to pick the
array execution engine (cycle-accurate machine vs. vectorized
whole-array reductions).
"""

from __future__ import annotations

import argparse
import sys

import numpy as np


def _cmd_demo(args: argparse.Namespace) -> int:
    from . import MatrixChainProblem, solve
    from .dp import banded_objective
    from .graphs import traffic_light_problem, uniform_multistage

    rng = np.random.default_rng(args.seed)
    problems = [
        ("monadic-serial", traffic_light_problem(rng, 6, 5)),
        ("polyadic-serial", uniform_multistage(rng, 40, 3)),
        ("monadic-nonserial", banded_objective(rng, [4, 3, 4, 3])),
        ("polyadic-nonserial", MatrixChainProblem((30, 35, 15, 5, 10, 20, 25))),
    ]
    print(f"{'class':20s} {'method':36s} {'optimum':>12s}  validated")
    for name, problem in problems:
        rep = solve(problem, backend=args.backend)
        print(f"{name:20s} {rep.method:36s} {rep.optimum:12.3f}  {rep.validated}")
    return 0


def _cmd_fig6(args: argparse.Namespace) -> int:
    from .dnc import argmin_kt2, kt2, optimal_granularity, schedule_time

    n = args.n
    best_k, best_v = argmin_kt2(n, k_min=2, k_max=n)
    print(f"N = {n}: argmin of K*T^2 is K = {best_k} (KT^2 = {best_v:.0f}); "
          f"N/log2(N) = {optimal_granularity(n):.0f}")
    ks = sorted({max(2, n // d) for d in (64, 32, 16, 12, 10, 8, 6, 4, 2)} | {best_k})
    print(f"{'K':>6s} {'T_c':>5s} {'T_w':>5s} {'T':>5s} {'K*T^2':>12s}")
    for k in ks:
        st = schedule_time(n, k)
        print(f"{k:6d} {st.computation:5d} {st.wind_down:5d} {st.total:5d} "
              f"{kt2(n, k):12.0f}")
    return 0


def _cmd_spacetime(args: argparse.Namespace) -> int:
    from .graphs import traffic_light_problem
    from .systolic import FeedbackSystolicArray, render_spacetime

    rng = np.random.default_rng(args.seed)
    problem = traffic_light_problem(rng, args.stages, args.values)
    res = FeedbackSystolicArray().run(problem, record_trace=True)
    print(
        f"Fig. 5 array on {args.stages} stages x {args.values} values: "
        f"optimum {res.optimum:.3f}, path {res.path.nodes}, "
        f"{res.report.iterations} iterations\n"
    )
    print(render_spacetime(res.trace, args.values, res.report.iterations))
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    import json
    import pathlib
    import time

    from .systolic import BACKENDS, PipelinedMatrixStringArray

    rng = np.random.default_rng(args.seed)
    mats = [rng.integers(0, 100, size=(args.m, args.m)).astype(float)
            for _ in range(args.n - 1)]
    mats.append(rng.integers(0, 100, size=(args.m, 1)).astype(float))
    array = PipelinedMatrixStringArray()
    backends = list(BACKENDS[:2]) if args.backend == "auto" else [args.backend]
    timings: dict[str, float] = {}
    for backend in backends:
        start = time.perf_counter()
        res = array.run(mats, backend=backend)
        timings[backend] = time.perf_counter() - start
        print(
            f"pipelined N={args.n} m={args.m} backend={backend}: "
            f"{timings[backend]:.4f}s, {res.report.iterations} iterations, "
            f"PU {res.report.processor_utilization:.3f}"
        )
    if len(timings) == 2:
        print(f"speedup fast vs rtl: {timings['rtl'] / timings['fast']:.1f}x")
    if args.json:
        backend = backends[-1]
        record = {
            "bench": "cli_smoke",
            "design": res.report.design,
            "backend": backend,
            "N": args.n,
            "m": args.m,
            "wall_seconds": timings[backend],
            "iterations": res.report.iterations,
            "pu": res.report.processor_utilization,
        }
        pathlib.Path(args.json).write_text(json.dumps(record, indent=2) + "\n")
        print(f"wrote {args.json}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Systolic processing for dynamic programming (Wah & Li, 1985)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_demo = sub.add_parser("demo", help="solve one problem per Table-1 class")
    p_demo.add_argument("--seed", type=int, default=0)
    p_demo.add_argument(
        "--backend", choices=("rtl", "fast", "auto"), default="rtl",
        help="systolic-array execution engine (default: rtl)",
    )
    p_demo.set_defaults(func=_cmd_demo)

    p_fig6 = sub.add_parser("fig6", help="regenerate the Figure-6 sweep")
    p_fig6.add_argument("--n", type=int, default=4096)
    p_fig6.set_defaults(func=_cmd_fig6)

    p_st = sub.add_parser("spacetime", help="Fig. 5 space-time diagram")
    p_st.add_argument("--stages", type=int, default=4)
    p_st.add_argument("--values", type=int, default=3)
    p_st.add_argument("--seed", type=int, default=0)
    p_st.set_defaults(func=_cmd_spacetime)

    p_bench = sub.add_parser("bench", help="time the pipelined array per backend")
    p_bench.add_argument("--n", type=int, default=16, help="matrices in the string")
    p_bench.add_argument("--m", type=int, default=8, help="values per stage")
    p_bench.add_argument("--seed", type=int, default=0)
    p_bench.add_argument(
        "--backend", choices=("rtl", "fast", "auto"), default="auto",
        help="backend to time; 'auto' times both and prints the speedup",
    )
    p_bench.add_argument("--json", default=None, help="write a BENCH_*.json record here")
    p_bench.set_defaults(func=_cmd_bench)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via tests calling main()
    sys.exit(main())
