"""Asynchronous dataflow execution of task graphs.

Section 4 closes with the paper's second processor organization for
polyadic problems: "the processors can be assigned to evaluate the
matrix multiplications in the defined order and in an asynchronous
fashion.  In this sense, the tree of matrix multiplications can be
treated as a dataflow graph"; Section 6.2 adds "a dataflow processor is
an example of the first alternative [flexible interconnection, dynamic
assignment]".  Table 1 accordingly lists "dataflow or systolic
processing" for polyadic-nonserial problems.

This module is that organization: a list-scheduling dataflow engine —
tasks fire when their operands are ready and a processor is free, with
per-task durations (e.g. the mesh array's ``n + k + m − 2`` cycles for a
rectangular multiply).  Unlike the round-synchronous scheduler of
:mod:`repro.dnc.schedule`, processors never idle waiting for a round
barrier, which is exactly what the paper's asynchronous remark buys when
task durations are non-uniform (skewed matrix dimensions).
"""

from __future__ import annotations

import dataclasses
import heapq
from typing import Callable, Hashable, Mapping, Sequence

__all__ = ["Task", "DataflowSchedule", "execute_dataflow"]


@dataclasses.dataclass(frozen=True)
class Task:
    """One dataflow node: fires when all ``deps`` have completed."""

    name: Hashable
    duration: float
    deps: tuple[Hashable, ...] = ()

    def __post_init__(self) -> None:
        if self.duration < 0:
            raise ValueError(f"task {self.name!r} has negative duration")


@dataclasses.dataclass(frozen=True)
class DataflowSchedule:
    """Outcome of a dataflow execution."""

    makespan: float
    start_times: dict[Hashable, float]
    finish_times: dict[Hashable, float]
    processor_of: dict[Hashable, int]
    num_processors: int
    busy_time: float  # summed task durations

    @property
    def utilization(self) -> float:
        """Busy time over (processors × makespan)."""
        denom = self.num_processors * self.makespan
        return self.busy_time / denom if denom else float("nan")

    def critical_path_length(self, tasks: Mapping[Hashable, Task]) -> float:
        """Longest dependency chain (the makespan lower bound)."""
        memo: dict[Hashable, float] = {}

        def longest(name: Hashable) -> float:
            if name in memo:
                return memo[name]
            t = tasks[name]
            out = t.duration + max(
                (longest(d) for d in t.deps), default=0.0
            )
            memo[name] = out
            return out

        return max((longest(n) for n in tasks), default=0.0)


def execute_dataflow(
    tasks: Sequence[Task],
    num_processors: int,
    *,
    priority: Callable[[Task], float] | None = None,
) -> DataflowSchedule:
    """List-schedule ``tasks`` on ``num_processors`` identical processors.

    Event-driven: when a processor frees up (or at time 0), the highest
    priority *ready* task starts on it.  ``priority`` defaults to
    longest-duration-first; ties break on task order.  Deterministic for
    fixed inputs.  Raises on dependency cycles or unknown dependencies.
    """
    if num_processors < 1:
        raise ValueError("need at least one processor")
    by_name: dict[Hashable, Task] = {}
    for t in tasks:
        if t.name in by_name:
            raise ValueError(f"duplicate task name {t.name!r}")
        by_name[t.name] = t
    for t in tasks:
        for d in t.deps:
            if d not in by_name:
                raise ValueError(f"task {t.name!r} depends on unknown {d!r}")
    prio = priority if priority is not None else (lambda t: -t.duration)
    order_index = {t.name: i for i, t in enumerate(tasks)}

    indegree = {t.name: len(t.deps) for t in tasks}
    dependents: dict[Hashable, list[Hashable]] = {t.name: [] for t in tasks}
    for t in tasks:
        for d in t.deps:
            dependents[d].append(t.name)

    ready: list[tuple[float, int, Hashable]] = [
        (prio(t), order_index[t.name], t.name) for t in tasks if indegree[t.name] == 0
    ]
    heapq.heapify(ready)
    # (free time, processor id) heap.
    procs: list[tuple[float, int]] = [(0.0, p) for p in range(num_processors)]
    heapq.heapify(procs)
    running: list[tuple[float, int, Hashable, int]] = []  # finish, tiebreak, name, proc

    start: dict[Hashable, float] = {}
    finish: dict[Hashable, float] = {}
    proc_of: dict[Hashable, int] = {}
    completed = 0
    now = 0.0
    seq = 0

    while completed < len(tasks):
        # Fire every ready task onto every idle processor at `now`.
        launched = False
        while ready and procs and procs[0][0] <= now:
            _p, _idx, name = heapq.heappop(ready)
            free_at, proc = heapq.heappop(procs)
            begin = max(now, free_at)
            t = by_name[name]
            start[name] = begin
            finish[name] = begin + t.duration
            proc_of[name] = proc
            heapq.heappush(running, (finish[name], seq, name, proc))
            seq += 1
            launched = True
        if not running:
            if not launched:
                raise ValueError("dependency cycle: no task can fire")
            continue
        # Advance to the next completion.
        fin, _s, name, proc = heapq.heappop(running)
        now = max(now, fin)
        heapq.heappush(procs, (fin, proc))
        completed += 1
        for dep_name in dependents[name]:
            indegree[dep_name] -= 1
            if indegree[dep_name] == 0:
                heapq.heappush(
                    ready, (prio(by_name[dep_name]), order_index[dep_name], dep_name)
                )

    makespan = max(finish.values(), default=0.0)
    return DataflowSchedule(
        makespan=makespan,
        start_times=start,
        finish_times=finish,
        processor_of=proc_of,
        num_processors=num_processors,
        busy_time=sum(t.duration for t in tasks),
    )
