"""Asynchronous dataflow processing (paper Section 4 end, Table 1).

The paper's alternative to static systolic schedules for polyadic
problems: treat the multiplication tree as a dataflow graph and assign
processors dynamically.  :mod:`~repro.dataflow.engine` is the
list-scheduling engine; :mod:`~repro.dataflow.chains` builds the task
graphs for optimal-order and balanced chain evaluation.
"""

from .engine import DataflowSchedule, Task, execute_dataflow
from .chains import tasks_balanced_tree, tasks_from_expression

__all__ = [
    "Task",
    "DataflowSchedule",
    "execute_dataflow",
    "tasks_from_expression",
    "tasks_balanced_tree",
]
