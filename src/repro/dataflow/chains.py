"""Dataflow task graphs for matrix-string evaluation.

Builders turning the paper's two evaluation trees into
:class:`~repro.dataflow.engine.Task` graphs:

* :func:`tasks_from_expression` — the *optimal-order* tree from the
  secondary optimization problem (eq. 6): rectangular multiplies with
  per-task durations from the mesh array's cycle model, executed
  asynchronously exactly as the paper prescribes once "the optimal
  order is found".
* :func:`tasks_balanced_tree` — the uniform divide-and-conquer tree of
  Section 4 (all operands square), whose dataflow makespan on K
  processors reproduces the eq.-(29) rounds when durations are uniform.
"""

from __future__ import annotations

from typing import Sequence

from ..systolic.mesh_array import mesh_cycles
from .engine import Task

__all__ = ["tasks_from_expression", "tasks_balanced_tree"]


def tasks_from_expression(
    dims: Sequence[int], expression, *, cycle_model=mesh_cycles
) -> tuple[list[Task], str]:
    """Task graph of an explicit parenthesization.

    Returns ``(tasks, root name)``.  Each internal node becomes a task
    named ``"m<i>_<j>"`` (the subchain it produces) whose duration is
    ``cycle_model(rows, inner, cols)`` — by default the mesh array's
    rectangular cycle count — depending on its children.  Leaves cost
    nothing (operands are resident).
    """
    dims = tuple(int(d) for d in dims)
    tasks: list[Task] = []

    def walk(expr) -> tuple[str | None, int, int]:
        """Returns (task name or None for a leaf, i, j) covering M_i..M_j."""
        if isinstance(expr, int):
            return None, expr, expr
        left, right = expr
        ln, li, lj = walk(left)
        rn, ri, rj = walk(right)
        if ri != lj + 1:
            raise ValueError(f"non-contiguous parenthesization at {expr}")
        rows, inner, cols = dims[li - 1], dims[lj], dims[rj]
        deps = tuple(n for n in (ln, rn) if n is not None)
        name = f"m{li}_{rj}"
        tasks.append(
            Task(name=name, duration=float(cycle_model(rows, inner, cols)), deps=deps)
        )
        return name, li, rj

    root, i, j = walk(expression)
    if root is None:
        # Single matrix: nothing to compute.
        root = f"m{i}_{j}"
        tasks.append(Task(name=root, duration=0.0))
    return tasks, root


def tasks_balanced_tree(
    n: int, *, duration: float = 1.0
) -> tuple[list[Task], str]:
    """The Section-4 balanced binary AND-tree as a uniform task graph.

    ``n`` leaves (resident matrices), ``n − 1`` internal multiply tasks
    of equal ``duration`` — the setting of eq. (29).  Note the adaptive
    round scheduler of :func:`repro.dnc.rounds_only` re-pairs segments
    each round (choosing its own tree), so it *lower-bounds* any
    schedule of this fixed tree; the fixed balanced tree matches it at
    K = 1 and K ≥ n/2 and loses slightly in between — a reproduction
    observation the tests pin down.
    """
    if n < 1:
        raise ValueError("need at least one leaf")
    tasks: list[Task] = []

    def build(lo: int, hi: int) -> str | None:
        if hi - lo == 1:
            return None
        mid = (lo + hi + 1) // 2
        left = build(lo, mid)
        right = build(mid, hi)
        name = f"t{lo}_{hi}"
        deps = tuple(d for d in (left, right) if d is not None)
        tasks.append(Task(name=name, duration=duration, deps=deps))
        return name

    root = build(0, n)
    if root is None:
        root = "t0_1"
        tasks.append(Task(name=root, duration=0.0))
    return tasks, root
