"""Semiring algebra substrate.

The paper rewrites monadic-serial dynamic programming as matrix
multiplication over the closed semiring ``(R, MIN, +, +∞, 0)``
(Section 3.1).  This subpackage provides that semiring, several siblings,
and vectorized matrix routines over any of them.
"""

from .base import Semiring, SemiringError
from .standard import (
    ALL_SEMIRINGS,
    BOOLEAN,
    MAX_PLUS,
    MAX_TIMES,
    MIN_MAX,
    MIN_PLUS,
    PLUS_TIMES,
    by_name,
)
from .matrix import (
    batched_chain_product,
    batched_matmul,
    batched_matvec,
    chain_product,
    chain_product_tree,
    closure,
    matmul,
    matmul_with_arg,
    matrix_power,
    matvec,
    vecmat,
)

__all__ = [
    "Semiring",
    "SemiringError",
    "MIN_PLUS",
    "MAX_PLUS",
    "PLUS_TIMES",
    "MAX_TIMES",
    "MIN_MAX",
    "BOOLEAN",
    "ALL_SEMIRINGS",
    "by_name",
    "matmul",
    "matmul_with_arg",
    "batched_matmul",
    "batched_matvec",
    "batched_chain_product",
    "matvec",
    "vecmat",
    "chain_product",
    "chain_product_tree",
    "matrix_power",
    "closure",
]
