"""Closed-semiring abstraction used throughout the library.

The paper (Section 3.1) reformulates the search for a minimum-cost path in
a multistage graph as matrix multiplication over the closed semiring
``(R ∪ {+∞}, MIN, +, +∞, 0)``: the semiring "addition" is ``min`` and the
semiring "multiplication" is ordinary ``+``.  Keeping the semiring
abstract lets every higher-level component (sequential DP solvers,
systolic-array simulators, divide-and-conquer schedulers) work unchanged
for minimization, maximization, path counting or reachability problems.

A :class:`Semiring` bundles

* ``add``        — the ⊕ operation (``min`` for shortest paths),
* ``mul``        — the ⊗ operation (``+`` for shortest paths),
* ``zero``       — identity of ⊕ and annihilator of ⊗ (``+inf``),
* ``one``        — identity of ⊗ (``0``),

in both *scalar* form and *vectorized* (NumPy ufunc-style) form.  The
vectorized entry points are what the performance-sensitive inner loops
use; per the HPC guides, all bulk operations are expressed as whole-array
NumPy reductions rather than Python-level element loops.
"""

from __future__ import annotations

import dataclasses
from typing import Callable

import numpy as np

__all__ = ["Semiring", "SemiringError"]


class SemiringError(ValueError):
    """Raised when semiring laws are violated or operands are malformed."""


@dataclasses.dataclass(frozen=True)
class Semiring:
    """An algebraic structure ``(S, ⊕, ⊗, 0̄, 1̄)``.

    Parameters
    ----------
    name:
        Human-readable identifier (``"min-plus"`` etc.).
    add:
        Vectorized ⊕; must accept NumPy arrays and support broadcasting.
    mul:
        Vectorized ⊗; must accept NumPy arrays and support broadcasting.
    zero:
        Identity element of ⊕ and annihilator of ⊗.
    one:
        Identity element of ⊗.
    add_reduce:
        Reduction form of ⊕ along an axis (e.g. ``np.minimum.reduce``).
        Required so matrix products can be computed as a single reduction
        over a broadcast temporary instead of a Python loop.
    add_argreduce:
        Optional arg-reduction of ⊕ (e.g. :func:`np.argmin`), used for
        decision/traceback extraction.  ``None`` when the semiring has no
        meaningful "winning operand" (e.g. plus-times).
    idempotent_add:
        Whether ``a ⊕ a == a`` holds; true for min/max semirings.  Several
        systolic schedules exploit idempotence (re-accumulating a partial
        result is harmless), so the simulators assert it when they rely
        on it.
    dtype:
        Natural NumPy dtype of semiring elements.
    """

    name: str
    add: Callable[[np.ndarray, np.ndarray], np.ndarray]
    mul: Callable[[np.ndarray, np.ndarray], np.ndarray]
    zero: float
    one: float
    add_reduce: Callable[..., np.ndarray]
    add_argreduce: Callable[..., np.ndarray] | None = None
    idempotent_add: bool = False
    dtype: np.dtype = dataclasses.field(default_factory=lambda: np.dtype(np.float64))

    # ------------------------------------------------------------------
    # Scalar conveniences
    # ------------------------------------------------------------------
    def scalar_add(self, a: float, b: float) -> float:
        """⊕ on two scalars (returns a Python float)."""
        return float(self.add(np.asarray(a, dtype=self.dtype), np.asarray(b, dtype=self.dtype)))

    def scalar_mul(self, a: float, b: float) -> float:
        """⊗ on two scalars (returns a Python float)."""
        return float(self.mul(np.asarray(a, dtype=self.dtype), np.asarray(b, dtype=self.dtype)))

    # ------------------------------------------------------------------
    # Array helpers
    # ------------------------------------------------------------------
    def zeros(self, shape: int | tuple[int, ...]) -> np.ndarray:
        """Array filled with the ⊕-identity (the semiring "zero")."""
        return np.full(shape, self.zero, dtype=self.dtype)

    def ones(self, shape: int | tuple[int, ...]) -> np.ndarray:
        """Array filled with the ⊗-identity (the semiring "one")."""
        return np.full(shape, self.one, dtype=self.dtype)

    def eye(self, n: int) -> np.ndarray:
        """Semiring identity matrix: ``one`` on the diagonal, ``zero`` off it."""
        out = self.zeros((n, n))
        np.fill_diagonal(out, self.one)
        return out

    def asarray(self, values) -> np.ndarray:
        """Coerce ``values`` to this semiring's dtype without copying when possible."""
        return np.asarray(values, dtype=self.dtype)

    # ------------------------------------------------------------------
    # Law checking (used by tests and by ``validate=True`` call sites)
    # ------------------------------------------------------------------
    def check_laws(self, samples: np.ndarray, *, atol: float = 1e-9) -> None:
        """Verify the semiring axioms on a sample of elements.

        Checks associativity and commutativity of ⊕, associativity of ⊗,
        distributivity of ⊗ over ⊕, the identity laws, and the
        annihilator law.  Raises :class:`SemiringError` on the first
        violated axiom.  ``samples`` must be a 1-D array of candidate
        elements; the check is O(len(samples)³) so keep samples small.
        """
        s = self.asarray(samples).ravel()
        if s.size == 0:
            raise SemiringError("need at least one sample element")
        zero = self.asarray(self.zero)
        one = self.asarray(self.one)

        def eq(x, y):
            x, y = np.asarray(x, dtype=self.dtype), np.asarray(y, dtype=self.dtype)
            with np.errstate(invalid="ignore"):
                both_inf = np.isinf(x) & np.isinf(y) & (np.sign(x) == np.sign(y))
                close = np.isclose(x, y, atol=atol)
            return bool(np.all(both_inf | close))

        a = s[:, None, None]
        b = s[None, :, None]
        c = s[None, None, :]
        if not eq(self.add(self.add(a, b), c), self.add(a, self.add(b, c))):
            raise SemiringError(f"{self.name}: ⊕ is not associative")
        if not eq(self.add(a[..., 0], b[..., 0]), self.add(b[..., 0], a[..., 0])):
            raise SemiringError(f"{self.name}: ⊕ is not commutative")
        if not eq(self.mul(self.mul(a, b), c), self.mul(a, self.mul(b, c))):
            raise SemiringError(f"{self.name}: ⊗ is not associative")
        if not eq(self.mul(a, self.add(b, c)), self.add(self.mul(a, b), self.mul(a, c))):
            raise SemiringError(f"{self.name}: ⊗ does not left-distribute over ⊕")
        if not eq(self.mul(self.add(a, b), c), self.add(self.mul(a, c), self.mul(b, c))):
            raise SemiringError(f"{self.name}: ⊗ does not right-distribute over ⊕")
        if not eq(self.add(s, zero), s):
            raise SemiringError(f"{self.name}: 0̄ is not the ⊕-identity")
        if not eq(self.mul(s, one), s) or not eq(self.mul(one, s), s):
            raise SemiringError(f"{self.name}: 1̄ is not the ⊗-identity")
        if not eq(self.mul(s, zero), np.broadcast_to(zero, s.shape)):
            raise SemiringError(f"{self.name}: 0̄ does not annihilate under ⊗")
        if self.idempotent_add and not eq(self.add(s, s), s):
            raise SemiringError(f"{self.name}: ⊕ declared idempotent but is not")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Semiring({self.name!r})"
