"""Vectorized matrix algebra over an arbitrary semiring.

These routines are the sequential reference implementation of the paper's
matrix-string formulation of monadic-serial DP (Section 3.1, eq. 8): the
systolic-array simulators are validated cell-for-cell against
:func:`matmul` / :func:`matvec` / :func:`chain_product`.

Implementation notes (per the HPC guides)
-----------------------------------------
* ``matmul`` is a single broadcast-then-reduce: an ``(n, k, m)`` temporary
  ``mul(A[:, :, None], B[None, :, :])`` reduced with ``add_reduce`` along
  axis 1.  No Python-level loops over matrix elements.
* For large operands the temporary is blocked along the first axis to
  bound peak memory (``block_rows``); blocking keeps the reduction
  cache-friendly without copying inputs.
* Decision extraction (``matmul_with_arg``) reuses the same temporary to
  return the winning ``k`` per output cell, which the DP tracebacks need.
"""

from __future__ import annotations

import numpy as np

from .base import Semiring, SemiringError

__all__ = [
    "matmul",
    "matmul_with_arg",
    "matvec",
    "vecmat",
    "chain_product",
    "chain_product_tree",
    "batched_matmul",
    "batched_matvec",
    "batched_chain_product",
    "matrix_power",
    "closure",
]

#: Rows per block in the broadcast-reduce matmul.  512 rows of a 512-wide
#: float64 temporary is ~2 MB per block — well inside L2/L3 on anything
#: this library will run on.
_DEFAULT_BLOCK_ROWS = 512


def _check_2d(name: str, a: np.ndarray) -> None:
    if a.ndim != 2:
        raise SemiringError(f"{name} must be 2-D, got shape {a.shape}")


def matmul(
    sr: Semiring,
    a: np.ndarray,
    b: np.ndarray,
    *,
    block_rows: int = _DEFAULT_BLOCK_ROWS,
) -> np.ndarray:
    """Semiring matrix product ``C[i, j] = ⊕_k  A[i, k] ⊗ B[k, j]``.

    For :data:`~repro.semiring.standard.MIN_PLUS` this is exactly the
    "matrix multiplication" of the paper's eq. (8):
    ``C[i, j] = min_k (A[i, k] + B[k, j])``.
    """
    a = sr.asarray(a)
    b = sr.asarray(b)
    _check_2d("a", a)
    _check_2d("b", b)
    n, k = a.shape
    k2, m = b.shape
    if k != k2:
        raise SemiringError(f"inner dimensions differ: {a.shape} x {b.shape}")
    out = np.empty((n, m), dtype=sr.dtype)
    for lo in range(0, n, block_rows):
        hi = min(lo + block_rows, n)
        # (rows, k, m) broadcast temporary, reduced over the shared axis.
        prod = sr.mul(a[lo:hi, :, None], b[None, :, :])
        out[lo:hi] = sr.add_reduce(prod, axis=1)
    return out


def matmul_with_arg(
    sr: Semiring, a: np.ndarray, b: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Like :func:`matmul` but also return the winning inner index.

    Returns ``(C, arg)`` where ``arg[i, j]`` is the ``k`` achieving the
    ⊕-reduction for cell ``(i, j)`` (ties broken toward the smallest
    ``k``, matching NumPy's arg-reduction convention).  Only available for
    semirings that define ``add_argreduce``.
    """
    if sr.add_argreduce is None:
        raise SemiringError(f"semiring {sr.name!r} has no arg-reduction")
    a = sr.asarray(a)
    b = sr.asarray(b)
    _check_2d("a", a)
    _check_2d("b", b)
    if a.shape[1] != b.shape[0]:
        raise SemiringError(f"inner dimensions differ: {a.shape} x {b.shape}")
    prod = sr.mul(a[:, :, None], b[None, :, :])
    arg = sr.add_argreduce(prod, axis=1)
    val = np.take_along_axis(prod, arg[:, None, :], axis=1)[:, 0, :]
    return val, arg


def matvec(sr: Semiring, a: np.ndarray, x: np.ndarray) -> np.ndarray:
    """Semiring matrix-vector product ``y[i] = ⊕_k A[i, k] ⊗ x[k]``."""
    a = sr.asarray(a)
    x = sr.asarray(x)
    _check_2d("a", a)
    if x.ndim != 1:
        raise SemiringError(f"x must be 1-D, got shape {x.shape}")
    if a.shape[1] != x.shape[0]:
        raise SemiringError(f"shape mismatch: {a.shape} x {x.shape}")
    return sr.add_reduce(sr.mul(a, x[None, :]), axis=1)


def vecmat(sr: Semiring, x: np.ndarray, a: np.ndarray) -> np.ndarray:
    """Semiring vector-matrix product ``y[j] = ⊕_k x[k] ⊗ A[k, j]``."""
    a = sr.asarray(a)
    x = sr.asarray(x)
    _check_2d("a", a)
    if x.ndim != 1:
        raise SemiringError(f"x must be 1-D, got shape {x.shape}")
    if a.shape[0] != x.shape[0]:
        raise SemiringError(f"shape mismatch: {x.shape} x {a.shape}")
    return sr.add_reduce(sr.mul(x[:, None], a), axis=0)


def chain_product(sr: Semiring, matrices: list[np.ndarray]) -> np.ndarray:
    """Left-to-right product of a string of matrices.

    Evaluates ``M_0 ⊗ M_1 ⊗ … ⊗ M_{n-1}`` in the fixed left-to-right
    order used by the monadic formulation (eq. 8 associates right-to-left;
    semiring associativity makes the result identical, which the tests
    verify).
    """
    if not matrices:
        raise SemiringError("chain_product needs at least one matrix")
    acc = sr.asarray(matrices[0])
    _check_2d("matrices[0]", acc)
    for idx, m in enumerate(matrices[1:], start=1):
        acc = matmul(sr, acc, m)
    return acc


def chain_product_tree(sr: Semiring, matrices: list[np.ndarray]) -> np.ndarray:
    """Balanced-binary-tree product of a string of matrices.

    This is the evaluation order of the paper's divide-and-conquer
    algorithm (Section 4): the string is halved recursively, giving a
    complete binary AND-tree of height ⌈log₂N⌉.  Associativity guarantees
    the same result as :func:`chain_product`; the point of this entry is
    to serve as the functional model that the D&C scheduler
    (:mod:`repro.dnc`) timings refer to.
    """
    if not matrices:
        raise SemiringError("chain_product_tree needs at least one matrix")
    level = [sr.asarray(m) for m in matrices]
    for m in level:
        _check_2d("matrix", m)
    while len(level) > 1:
        nxt = []
        for i in range(0, len(level) - 1, 2):
            nxt.append(matmul(sr, level[i], level[i + 1]))
        if len(level) % 2:
            nxt.append(level[-1])
        level = nxt
    return level[0]


def matrix_power(sr: Semiring, a: np.ndarray, n: int) -> np.ndarray:
    """``A`` to the ``n``-th semiring power (``n ≥ 0``) by binary exponentiation.

    ``n = 0`` returns the semiring identity matrix.  Over MIN_PLUS,
    ``matrix_power(a, n)[i, j]`` is the cheapest walk from ``i`` to ``j``
    using exactly ``n`` edges — the all-pairs analogue of the multistage
    recursion.
    """
    a = sr.asarray(a)
    _check_2d("a", a)
    if a.shape[0] != a.shape[1]:
        raise SemiringError(f"matrix_power needs a square matrix, got {a.shape}")
    if n < 0:
        raise SemiringError("matrix_power requires n >= 0")
    result = sr.eye(a.shape[0])
    base = a
    while n:
        if n & 1:
            result = matmul(sr, result, base)
        base = matmul(sr, base, base)
        n >>= 1
    return result


def closure(sr: Semiring, a: np.ndarray, *, max_iter: int | None = None) -> np.ndarray:
    """Reflexive-transitive closure ``A* = I ⊕ A ⊕ A² ⊕ …``.

    Only meaningful for idempotent semirings, where the series converges
    after at most ``n - 1`` squarings of ``(I ⊕ A)`` for an ``n × n``
    matrix (cheapest walks of unbounded length).  Raises on
    non-idempotent semirings rather than silently diverging.
    """
    if not sr.idempotent_add:
        raise SemiringError(
            f"closure is only defined here for idempotent semirings, not {sr.name!r}"
        )
    a = sr.asarray(a)
    _check_2d("a", a)
    if a.shape[0] != a.shape[1]:
        raise SemiringError(f"closure needs a square matrix, got {a.shape}")
    n = a.shape[0]
    acc = sr.add(sr.eye(n), a)
    steps = max_iter if max_iter is not None else max(1, int(np.ceil(np.log2(max(n, 2)))))
    for _ in range(steps):
        nxt = matmul(sr, acc, acc)
        if np.array_equal(nxt, acc):
            break
        acc = nxt
    return acc


def batched_matmul(sr: Semiring, a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Semiring matmul over leading batch dimensions.

    ``a`` has shape ``(..., n, k)`` and ``b`` ``(..., k, m)``; batch
    dimensions broadcast.  This is the paper's Section-3.2 remark made
    concrete: "each matrix element is a vector with many quantized
    values" (Kalman filtering, inventory, production) — the same
    systolic schedule carries a whole batch per cell, multiplying the
    available parallelism by the batch size.
    """
    a = sr.asarray(a)
    b = sr.asarray(b)
    if a.ndim < 2 or b.ndim < 2:
        raise SemiringError("batched operands need at least 2 dimensions")
    if a.shape[-1] != b.shape[-2]:
        raise SemiringError(
            f"inner dimensions differ: {a.shape} x {b.shape}"
        )
    prod = sr.mul(a[..., :, :, None], b[..., None, :, :])
    return sr.add_reduce(prod, axis=-2)


def batched_matvec(sr: Semiring, a: np.ndarray, x: np.ndarray) -> np.ndarray:
    """Semiring mat-vec over leading batch dimensions.

    ``a`` has shape ``(..., n, k)`` and ``x`` ``(..., k)``; batch
    dimensions broadcast.  Per batch element this performs exactly the
    broadcast-then-reduce of :func:`matvec` — ``mul(a, x[..., None, :])``
    reduced along the last axis — so each slice of the result is
    bit-identical to the unbatched call on that slice.  This is the
    kernel behind the batch execution engine's stacked Fig. 3 passes
    (:mod:`repro.exec`): one 3-D reduction carries a whole group of
    same-shape problem instances.
    """
    a = sr.asarray(a)
    x = sr.asarray(x)
    if a.ndim < 2:
        raise SemiringError(f"a needs at least 2 dimensions, got shape {a.shape}")
    if x.ndim < 1:
        raise SemiringError(f"x needs at least 1 dimension, got shape {x.shape}")
    if a.shape[-1] != x.shape[-1]:
        raise SemiringError(f"shape mismatch: {a.shape} x {x.shape}")
    return sr.add_reduce(sr.mul(a, x[..., None, :]), axis=-1)


def batched_chain_product(sr: Semiring, matrices: list[np.ndarray]) -> np.ndarray:
    """Left-to-right batched chain product (batch dims broadcast)."""
    if not matrices:
        raise SemiringError("batched_chain_product needs at least one matrix")
    acc = sr.asarray(matrices[0])
    for m in matrices[1:]:
        acc = batched_matmul(sr, acc, m)
    return acc
