"""Standard semiring instances.

The paper's central algebraic device (Section 3.1) is the closed semiring
``(R, MIN, +, +∞, 0)`` — :data:`MIN_PLUS` here.  The siblings let the same
machinery solve maximization problems (:data:`MAX_PLUS`), reliability-style
products (:data:`MAX_TIMES`), bottleneck/capacity paths (:data:`MIN_MAX`),
reachability (:data:`BOOLEAN`) and ordinary linear algebra
(:data:`PLUS_TIMES`, used to cross-check the semiring matmul against
``numpy.matmul``).
"""

from __future__ import annotations

import numpy as np

from .base import Semiring

__all__ = [
    "MIN_PLUS",
    "MAX_PLUS",
    "PLUS_TIMES",
    "MAX_TIMES",
    "MIN_MAX",
    "BOOLEAN",
    "by_name",
    "ALL_SEMIRINGS",
]


def _inf_safe_add(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """``a + b`` treating ``(+inf) + (-inf)`` as ``+inf``.

    Only needed by semirings whose zero is infinite while finite elements
    may have either sign; for MIN_PLUS / MAX_PLUS with costs of one sign,
    plain ``np.add`` never produces NaN, but we guard anyway so user cost
    matrices with mixed infinities stay well-defined.
    """
    with np.errstate(invalid="ignore"):
        out = np.add(a, b)
    nan = np.isnan(out)
    if np.any(nan):
        out = np.where(nan, np.inf, out)
    return out


def _neg_inf_safe_add(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """``a + b`` treating ``(+inf) + (-inf)`` as ``-inf`` (max-plus zero)."""
    with np.errstate(invalid="ignore"):
        out = np.add(a, b)
    nan = np.isnan(out)
    if np.any(nan):
        out = np.where(nan, -np.inf, out)
    return out


#: Shortest-path / minimization semiring: ⊕ = min, ⊗ = +.
MIN_PLUS = Semiring(
    name="min-plus",
    add=np.minimum,
    mul=_inf_safe_add,
    zero=np.inf,
    one=0.0,
    add_reduce=np.minimum.reduce,
    add_argreduce=np.argmin,
    idempotent_add=True,
)

#: Longest-path / maximization semiring: ⊕ = max, ⊗ = +.
MAX_PLUS = Semiring(
    name="max-plus",
    add=np.maximum,
    mul=_neg_inf_safe_add,
    zero=-np.inf,
    one=0.0,
    add_reduce=np.maximum.reduce,
    add_argreduce=np.argmax,
    idempotent_add=True,
)

#: Ordinary arithmetic semiring (path counting / reference checks).
PLUS_TIMES = Semiring(
    name="plus-times",
    add=np.add,
    mul=np.multiply,
    zero=0.0,
    one=1.0,
    add_reduce=np.add.reduce,
    add_argreduce=None,
    idempotent_add=False,
)

#: Reliability semiring: ⊕ = max, ⊗ = ×, elements in [0, 1].
MAX_TIMES = Semiring(
    name="max-times",
    add=np.maximum,
    mul=np.multiply,
    zero=0.0,
    one=1.0,
    add_reduce=np.maximum.reduce,
    add_argreduce=np.argmax,
    idempotent_add=True,
)

#: Bottleneck semiring: ⊕ = min, ⊗ = max (minimize the worst edge).
MIN_MAX = Semiring(
    name="min-max",
    add=np.minimum,
    mul=np.maximum,
    zero=np.inf,
    one=-np.inf,
    add_reduce=np.minimum.reduce,
    add_argreduce=np.argmin,
    idempotent_add=True,
)

#: Reachability semiring over {0.0, 1.0}: ⊕ = or, ⊗ = and.
BOOLEAN = Semiring(
    name="boolean",
    add=np.maximum,
    mul=np.minimum,
    zero=0.0,
    one=1.0,
    add_reduce=np.maximum.reduce,
    add_argreduce=np.argmax,
    idempotent_add=True,
)

ALL_SEMIRINGS: tuple[Semiring, ...] = (
    MIN_PLUS,
    MAX_PLUS,
    PLUS_TIMES,
    MAX_TIMES,
    MIN_MAX,
    BOOLEAN,
)

_BY_NAME = {s.name: s for s in ALL_SEMIRINGS}


def by_name(name: str) -> Semiring:
    """Look up a built-in semiring by its ``name`` attribute.

    Raises ``KeyError`` with the list of known names on a miss.
    """
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(
            f"unknown semiring {name!r}; known: {sorted(_BY_NAME)}"
        ) from None
