"""Round-synchronous scheduler for K systolic arrays multiplying a chain.

The measured counterpart of :mod:`repro.dnc.analysis`: simulates the
parallel divide-and-conquer algorithm of Section 4 — ``K`` synchronous
matrix-multiplication systolic arrays reducing a string of ``N``
matrices pair-by-pair — and records per-round activity so the
computation/wind-down split, ``PU`` and ``K·T²`` are *measured*, not just
evaluated from eq. (29).

Each round, every array multiplies one disjoint **adjacent** pair of
current chain segments (adjacency keeps the product order legal — the
semiring is associative but not commutative in general); a round costs
``T₁``.  Two pairing policies are provided for the DESIGN.md ablation:

* ``"leftmost"`` — greedily pair segments left to right, the simplest
  hardware allocation.
* ``"balanced"``  — pair so the surviving segment count halves as evenly
  as possible; equivalent round count (both take
  ``n → n − min(K, ⌊n/2⌋)`` per round) but different trees, which is the
  point of the ablation: the *schedule length* is pairing-invariant.

Optionally executes the products on real semiring matrices to verify the
result against the sequential chain product.
"""

from __future__ import annotations

import dataclasses
from typing import Sequence

import numpy as np

from ..semiring import MIN_PLUS, Semiring, matmul

__all__ = ["ChainScheduleResult", "simulate_chain_product", "rounds_only"]


@dataclasses.dataclass(frozen=True)
class ChainScheduleResult:
    """Measured schedule of a K-array divide-and-conquer chain product."""

    num_matrices: int
    num_processors: int
    policy: str
    rounds: int  # total schedule length T, in units of T1
    computation_rounds: int  # rounds with all K arrays busy (T_c)
    wind_down_rounds: int  # remaining rounds (T_w)
    busy_per_round: tuple[int, ...]  # arrays active in each round
    total_multiplications: int  # always N - 1
    product: np.ndarray | None  # the chain product, when matrices given

    @property
    def processor_utilization(self) -> float:
        """Measured PU: work over (arrays × rounds)."""
        denom = self.num_processors * self.rounds
        return self.total_multiplications / denom if denom else float("nan")

    @property
    def kt2(self) -> float:
        """Measured ``K·T²`` (Figure 6 ordinate) in ``T₁ = 1`` units."""
        return self.num_processors * self.rounds * self.rounds


def _pair_indices(n_segments: int, capacity: int, policy: str) -> list[int]:
    """Left indices of the disjoint adjacent pairs multiplied this round."""
    max_pairs = min(capacity, n_segments // 2)
    if max_pairs == 0:
        return []
    if policy == "leftmost":
        return [2 * i for i in range(max_pairs)]
    if policy == "balanced":
        # Spread the pairs across the chain so leftover segments stay
        # evenly distributed; still disjoint and adjacent.
        out: list[int] = []
        stride = n_segments / max_pairs
        used = -1
        for i in range(max_pairs):
            left = max(int(i * stride), used + 1)
            if left + 1 >= n_segments:
                break
            out.append(left)
            used = left + 1
        # Fill any shortfall greedily from the left.
        need = max_pairs - len(out)
        if need > 0:
            taken = set()
            for left in out:
                taken.add(left)
                taken.add(left + 1)
            left = 0
            while need > 0 and left + 1 < n_segments:
                if left not in taken and (left + 1) not in taken:
                    out.append(left)
                    taken.add(left)
                    taken.add(left + 1)
                    need -= 1
                    left += 2
                else:
                    left += 1
            out.sort()
        return out
    raise ValueError(f"unknown pairing policy {policy!r}")


def simulate_chain_product(
    n: int,
    k: int,
    *,
    policy: str = "leftmost",
    matrices: Sequence[np.ndarray] | None = None,
    semiring: Semiring = MIN_PLUS,
) -> ChainScheduleResult:
    """Simulate ``K`` arrays reducing an ``N``-matrix chain to one matrix.

    With ``matrices`` given (length ``N``), the scheduled multiplications
    are actually executed over ``semiring`` and the final product is
    returned for validation; otherwise only the schedule is simulated
    (segments tracked symbolically), which is what the Figure-6 sweep
    uses for ``N = 4096``.
    """
    if n < 1:
        raise ValueError("need at least one matrix")
    if k < 1:
        raise ValueError("need at least one processor")
    if matrices is not None and len(matrices) != n:
        raise ValueError(f"expected {n} matrices, got {len(matrices)}")

    segments: list[np.ndarray | None]
    if matrices is not None:
        segments = [semiring.asarray(m) for m in matrices]
    else:
        segments = [None] * n

    busy: list[int] = []
    while len(segments) > 1:
        pairs = _pair_indices(len(segments), k, policy)
        if not pairs:  # cannot happen with >=2 segments, defensive
            raise RuntimeError("scheduler stalled")
        busy.append(len(pairs))
        merged: list[np.ndarray | None] = []
        pair_set = set(pairs)
        i = 0
        while i < len(segments):
            if i in pair_set:
                left, right = segments[i], segments[i + 1]
                if left is not None and right is not None:
                    merged.append(matmul(semiring, left, right))
                else:
                    merged.append(None)
                i += 2
            else:
                merged.append(segments[i])
                i += 1
        segments = merged

    rounds = len(busy)
    computation = sum(1 for b in busy if b == k)
    return ChainScheduleResult(
        num_matrices=n,
        num_processors=k,
        policy=policy,
        rounds=rounds,
        computation_rounds=computation,
        wind_down_rounds=rounds - computation,
        busy_per_round=tuple(busy),
        total_multiplications=int(sum(busy)),
        product=segments[0] if matrices is not None else None,
    )


def rounds_only(n: int, k: int) -> int:
    """Fast round count: ``n → n − min(K, ⌊n/2⌋)`` until one segment.

    Equals ``simulate_chain_product(n, k).rounds`` (property-tested) but
    runs in O(rounds) — used for the large Figure-6 sweeps.
    """
    if n < 1 or k < 1:
        raise ValueError("n and k must be positive")
    rounds = 0
    while n > 1:
        n -= min(k, n // 2)
        rounds += 1
    return rounds
