"""AND-tree structure of divide-and-conquer chain products.

Section 4 models the parallel evaluation as a complete binary AND-tree
whose ``N`` leaves are the matrices and whose ``N − 1`` internal nodes
are multiplications; the tree height bounds the wind-down phase.  This
module builds the tree for either pairing policy of the scheduler and
exposes the structural quantities the proofs use (leaf count,
internal-node count, height).
"""

from __future__ import annotations

import dataclasses

__all__ = ["AndTreeNode", "balanced_tree", "schedule_tree_height"]


@dataclasses.dataclass(frozen=True)
class AndTreeNode:
    """A node of the multiplication AND-tree (leaf = one input matrix)."""

    lo: int  # leftmost leaf index covered (0-based)
    hi: int  # one past the rightmost leaf index
    left: "AndTreeNode | None" = None
    right: "AndTreeNode | None" = None

    @property
    def is_leaf(self) -> bool:
        return self.left is None

    @property
    def num_leaves(self) -> int:
        return self.hi - self.lo

    def height(self) -> int:
        if self.is_leaf:
            return 0
        assert self.left is not None and self.right is not None
        return 1 + max(self.left.height(), self.right.height())

    def count_internal(self) -> int:
        if self.is_leaf:
            return 0
        assert self.left is not None and self.right is not None
        return 1 + self.left.count_internal() + self.right.count_internal()

    def iter_internal_by_depth(self) -> dict[int, int]:
        """Internal-node count per height-above-leaves (1 = lowest)."""
        counts: dict[int, int] = {}

        def walk(node: "AndTreeNode") -> int:
            if node.is_leaf:
                return 0
            assert node.left is not None and node.right is not None
            h = 1 + max(walk(node.left), walk(node.right))
            counts[h] = counts.get(h, 0) + 1
            return h

        walk(self)
        return counts


def balanced_tree(n: int) -> AndTreeNode:
    """Complete (balanced) binary AND-tree over ``n`` leaves.

    Height is ``⌈log₂n⌉`` — the minimum possible, which is why the
    balanced grouping attains the Theorem-1 wind-down bound.
    """
    if n < 1:
        raise ValueError("need at least one leaf")

    def build(lo: int, hi: int) -> AndTreeNode:
        if hi - lo == 1:
            return AndTreeNode(lo, hi)
        mid = (lo + hi + 1) // 2
        return AndTreeNode(lo, hi, build(lo, mid), build(mid, hi))

    return build(0, n)


def schedule_tree_height(n: int, k: int) -> int:
    """Height of the tree the K-array greedy scheduler actually builds.

    With ``k ≥ ⌊n/2⌋`` this is the balanced ``⌈log₂n⌉``; with fewer
    arrays the tree is deeper on the late-merged side.  Returned from a
    symbolic replay of the leftmost-pairing schedule.
    """
    if n < 1 or k < 1:
        raise ValueError("n and k must be positive")
    heights = [0] * n
    while len(heights) > 1:
        pairs = min(k, len(heights) // 2)
        merged: list[int] = []
        i = 0
        done = 0
        while i < len(heights):
            if done < pairs and i + 1 < len(heights):
                merged.append(1 + max(heights[i], heights[i + 1]))
                i += 2
                done += 1
            else:
                merged.append(heights[i])
                i += 1
        heights = merged
    return heights[0]
