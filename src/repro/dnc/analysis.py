"""Closed-form analysis of parallel divide-and-conquer chain products.

Implements the analytical side of Section 4 of the paper:

* :func:`schedule_time` — eq. (29): the exact time to multiply ``N``
  matrices on ``K`` synchronous systolic arrays, split into computation
  (``T_c``) and wind-down (``T_w``) phases.
* :func:`processor_utilization` — ``PU(k, N)`` from eq. (20).
* :func:`asymptotic_pu` — the three limit cases of Proposition 1 as a
  function of ``c∞ = lim k(N)/(N/log₂N)``.
* :func:`at2_surface` / :func:`at2_lower_bound` — the Theorem 1 bound
  ``S(N)·T²(N) ≥ Θ(N·log₂N)·T₁²``, attained at ``S(N) = Θ(N/log₂N)``.
* :func:`optimal_granularity` — the ``N/log₂N`` rule of thumb and the
  exact integer argmin of ``K·T²`` (the quantity Figure 6 plots).
"""

from __future__ import annotations

import dataclasses
import math
from typing import Callable, Sequence

import numpy as np

__all__ = [
    "ScheduleTime",
    "ShardPlan",
    "plan_shards",
    "schedule_time",
    "processor_utilization",
    "asymptotic_pu",
    "asymptotic_pu_limit",
    "at2_surface",
    "at2_lower_bound",
    "kt2",
    "kt2_curve",
    "optimal_granularity",
    "argmin_kt2",
]


@dataclasses.dataclass(frozen=True)
class ScheduleTime:
    """Eq. (29) decomposition of the parallel schedule length."""

    num_matrices: int
    num_processors: int
    computation: int  # T_c, in units of T1
    wind_down: int  # T_w, in units of T1

    @property
    def total(self) -> int:
        return self.computation + self.wind_down


def schedule_time(n: int, k: int) -> ScheduleTime:
    """Exact schedule length of eq. (29), in units of ``T₁``.

    ``T = ⌊(N−1)/K⌋ + ⌊log₂(N + K − 1 − K·⌊(N−1)/K⌋)⌋`` — computation
    rounds in which all ``K`` arrays are busy, then a tree-height-bound
    wind-down.  The curve is deliberately jagged: the paper notes the
    wind-down drops by one around divisibility boundaries, which is what
    makes Figure 6 non-smooth.
    """
    if n < 1:
        raise ValueError("need at least one matrix")
    if k < 1:
        raise ValueError("need at least one processor")
    if n == 1:
        return ScheduleTime(n, k, 0, 0)
    t_c = (n - 1) // k
    residue = n + k - 1 - k * t_c
    t_w = int(math.floor(math.log2(residue))) if residue >= 1 else 0
    return ScheduleTime(n, k, t_c, t_w)


@dataclasses.dataclass(frozen=True)
class ShardPlan:
    """An eq.-(29)-guided partition of ``num_items`` across workers.

    Reuses the Section-4 granularity machinery with worker processes
    standing in for the paper's ``K`` systolic arrays: the worker count
    is the integer argmin of ``K·T²`` over ``[1, max_workers]`` (the
    Figure-6 ordinate, minimized near ``N/log₂N`` by Theorem 1), and the
    shard sizes mirror the two phases of eq. (29) — ``K`` equal
    computation-phase shards of ``T_c`` items each, then a halving
    wind-down tail for the residue, so stragglers shrink geometrically
    the way the wind-down tree does.
    """

    num_items: int
    num_workers: int
    sizes: tuple[int, ...]
    schedule: ScheduleTime
    kt2: float

    @property
    def num_shards(self) -> int:
        return len(self.sizes)

    def offsets(self) -> tuple[tuple[int, int], ...]:
        """Half-open ``[start, stop)`` item ranges, one per shard."""
        out: list[tuple[int, int]] = []
        start = 0
        for size in self.sizes:
            out.append((start, start + size))
            start += size
        return tuple(out)


def plan_shards(
    num_items: int, max_workers: int, *, strategy: str = "kt2"
) -> ShardPlan:
    """Partition ``num_items`` work items across at most ``max_workers``.

    ``strategy="kt2"`` (default) picks the worker count minimizing the
    eq.-(29) ``K·T²`` over ``[1, max_workers]`` and emits computation
    shards of ``T_c`` items plus a halving wind-down tail;
    ``strategy="even"`` is the naive ablation baseline — all
    ``max_workers`` workers, sizes as equal as possible.  Sizes always
    sum to ``num_items`` and are all positive.
    """
    if num_items < 0:
        raise ValueError("num_items must be nonnegative")
    if max_workers < 1:
        raise ValueError("need at least one worker")
    if num_items == 0:
        return ShardPlan(0, 1, (), ScheduleTime(1, 1, 0, 0), 0.0)
    if strategy == "even":
        k = min(max_workers, num_items)
        base, rem = divmod(num_items, k)
        sizes = tuple(base + (1 if i < rem else 0) for i in range(k))
        return ShardPlan(num_items, k, sizes, schedule_time(num_items, k), kt2(num_items, k))
    if strategy != "kt2":
        raise ValueError(f"unknown shard strategy {strategy!r}")
    k = min(max_workers, num_items)
    best_k, _best_v = 1, float("inf")
    for cand in range(1, k + 1):
        v = kt2(num_items, cand)
        if v < _best_v:
            best_k, _best_v = cand, v
    sched = schedule_time(num_items, best_k)
    sizes: list[int] = []
    if sched.computation > 0:
        sizes.extend([sched.computation] * best_k)
    residue = num_items - sum(sizes)
    # Wind-down: halve the remaining tail until it is gone, mirroring the
    # ⌊log₂⌋ wind-down phase (the last shards shrink geometrically).
    while residue > 0:
        step = residue - residue // 2  # ceil(residue / 2)
        sizes.append(step)
        residue -= step
    return ShardPlan(num_items, best_k, tuple(sizes), sched, _best_v)


def processor_utilization(n: int, k: int, *, time: int | None = None) -> float:
    """``PU(k, N) = (N − 1) / (K · T)`` (eq. 20).

    ``N − 1`` is the total multiplication count (nonterminals of the
    binary AND-tree); ``T`` defaults to the eq.-(29) schedule length but
    a measured schedule length may be supplied.
    """
    if time is None:
        time = schedule_time(n, k).total
    if time <= 0:
        return float("nan")
    return (n - 1) / (k * time)


def asymptotic_pu(
    k_of_n: Callable[[int], int], n_values: Sequence[int]
) -> list[tuple[int, float]]:
    """Evaluate ``PU(k(N), N)`` along a growth schedule of problem sizes.

    Used by the Proposition-1 benchmark to show convergence toward the
    limits of eq. (17) for ``k(N)`` in the three ``c∞`` regimes.
    """
    out = []
    for n in n_values:
        k = max(1, int(k_of_n(n)))
        out.append((n, processor_utilization(n, k)))
    return out


def asymptotic_pu_limit(c_infinity: float) -> float:
    """The limit value of eq. (17) for a given ``c∞``."""
    if c_infinity < 0:
        raise ValueError("c∞ must be nonnegative")
    if math.isinf(c_infinity):
        return 0.0
    return 1.0 / (1.0 + c_infinity)


def kt2(n: int, k: int, *, t1: float = 1.0) -> float:
    """``K·T²`` for the eq.-(29) schedule (the Figure 6 ordinate)."""
    t = schedule_time(n, k).total * t1
    return k * t * t


def kt2_curve(n: int, k_values: Sequence[int], *, t1: float = 1.0) -> np.ndarray:
    """Vector of ``K·T²`` over a processor-count sweep (Figure 6 series)."""
    return np.asarray([kt2(n, k, t1=t1) for k in k_values], dtype=np.float64)


def argmin_kt2(n: int, *, k_min: int = 1, k_max: int | None = None) -> tuple[int, float]:
    """Integer argmin of ``K·T²`` over ``[k_min, k_max]`` (default up to N).

    Figure 6 reports the minimizing ``K`` for ``N = 4096``; Theorem 1
    predicts it lies near ``N/log₂N``.
    """
    if k_max is None:
        k_max = n
    best_k, best_v = k_min, float("inf")
    for k in range(k_min, k_max + 1):
        v = kt2(n, k)
        if v < best_v:
            best_k, best_v = k, v
    return best_k, best_v


def optimal_granularity(n: int) -> float:
    """The asymptotically optimal array count ``N / log₂N`` (Theorem 1)."""
    if n < 2:
        return 1.0
    return n / math.log2(n)


def at2_surface(n: int, s: int, *, t1: float = 1.0) -> float:
    """``S(N)·T²(N)`` using the Theorem-1 lower-bound time model.

    ``T(N) ≥ (N/S − 1 + log₂S)·T₁`` (eq. 25); this evaluates
    ``S·T²`` at that bound so the benchmark can show the minimum-order
    region sits at ``S = Θ(N/log₂N)``.
    """
    if s < 1 or n < 1:
        raise ValueError("n and s must be positive")
    t = (n / s - 1 + (math.log2(s) if s > 1 else 0.0)) * t1
    t = max(t, t1)  # time can never drop below one multiplication
    return s * t * t


def at2_lower_bound(n: int, *, t1: float = 1.0) -> float:
    """The Theorem-1 bound value ``N·log₂N·T₁²`` (order constant 1)."""
    if n < 2:
        return t1 * t1
    return n * math.log2(n) * t1 * t1
