"""Parallel divide-and-conquer chain products: schedules and analysis.

The Section-4 machinery: the exact eq.-(29) schedule-time model, the
round-synchronous K-array scheduler that measures it, the Proposition-1
asymptotic-PU limits, and the Theorem-1 AT²/KT² granularity analysis
behind Figure 6.
"""

from .analysis import (
    ScheduleTime,
    ShardPlan,
    argmin_kt2,
    asymptotic_pu,
    asymptotic_pu_limit,
    at2_lower_bound,
    at2_surface,
    kt2,
    kt2_curve,
    optimal_granularity,
    plan_shards,
    processor_utilization,
    schedule_time,
)
from .schedule import ChainScheduleResult, rounds_only, simulate_chain_product
from .tree import AndTreeNode, balanced_tree, schedule_tree_height

__all__ = [
    "ScheduleTime",
    "ShardPlan",
    "plan_shards",
    "schedule_time",
    "processor_utilization",
    "asymptotic_pu",
    "asymptotic_pu_limit",
    "at2_surface",
    "at2_lower_bound",
    "kt2",
    "kt2_curve",
    "optimal_granularity",
    "argmin_kt2",
    "ChainScheduleResult",
    "simulate_chain_product",
    "rounds_only",
    "AndTreeNode",
    "balanced_tree",
    "schedule_tree_height",
]
