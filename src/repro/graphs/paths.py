"""Path objects and validation helpers for multistage graphs."""

from __future__ import annotations

import dataclasses
from typing import Sequence

import numpy as np

from .multistage import GraphError, MultistageGraph

__all__ = ["StagePath", "validate_path", "all_shortest_paths_equal"]


@dataclasses.dataclass(frozen=True)
class StagePath:
    """A source→sink path: one vertex index per stage, plus its cost."""

    nodes: tuple[int, ...]
    cost: float

    def __len__(self) -> int:
        return len(self.nodes)

    def edges(self) -> tuple[tuple[int, int], ...]:
        """The path as (from-node, to-node) index pairs per layer."""
        return tuple(
            (self.nodes[k], self.nodes[k + 1]) for k in range(len(self.nodes) - 1)
        )


def validate_path(graph: MultistageGraph, path: StagePath, *, atol: float = 1e-9) -> None:
    """Check that ``path`` is structurally valid and its cost is consistent.

    Raises :class:`~repro.graphs.multistage.GraphError` when the path has
    the wrong length, steps outside a stage, uses a missing edge, or
    carries a cost that disagrees with the graph by more than ``atol``.
    """
    actual = graph.path_cost(path.nodes)
    if actual == graph.semiring.zero and path.cost != graph.semiring.zero:
        raise GraphError("path uses a missing edge")
    if not np.isclose(actual, path.cost, atol=atol, equal_nan=True):
        raise GraphError(
            f"path cost {path.cost} disagrees with recomputed cost {actual}"
        )


def all_shortest_paths_equal(
    graph: MultistageGraph, paths: Sequence[StagePath], *, atol: float = 1e-9
) -> bool:
    """True when every path in ``paths`` is valid and all costs agree.

    Utility for cross-checking results from different solvers (sequential
    DP, systolic arrays, AND/OR search) on the same instance: optimal
    *paths* may legitimately differ under ties, but costs must match.
    """
    if not paths:
        return True
    for p in paths:
        validate_path(graph, p, atol=atol)
    ref = paths[0].cost
    return all(np.isclose(p.cost, ref, atol=atol, equal_nan=True) for p in paths)
