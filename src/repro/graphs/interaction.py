"""Interaction graphs of optimization objectives (paper Section 2.2).

The paper distinguishes serial from nonserial objectives by the
*interaction graph*: vertices are decision variables, and two variables
are adjacent iff they co-occur in a functional term of the objective.  A
problem is **serial** when every term shares exactly one variable with
its predecessor and one with its successor — i.e. the interaction graph
is a simple chain and every term covers one chain edge.

This module builds interaction graphs from term lists, tests seriality,
and computes the structural quantities (bandwidth, elimination width)
that govern the cost of the nonserial→serial transformation of
Section 6.1.
"""

from __future__ import annotations

import dataclasses
from typing import Hashable, Iterable, Sequence

__all__ = ["Term", "InteractionGraph", "is_serial_objective", "chain_order"]


@dataclasses.dataclass(frozen=True)
class Term:
    """One functional term ``g(X_{v_1}, …, X_{v_k})`` of an objective.

    Only the *variable set* matters for structure; the numeric function
    lives in :mod:`repro.dp.nonserial`.
    """

    variables: tuple[Hashable, ...]

    def __post_init__(self) -> None:
        if not self.variables:
            raise ValueError("a term must mention at least one variable")
        if len(set(self.variables)) != len(self.variables):
            raise ValueError(f"duplicate variables in term: {self.variables}")

    @property
    def arity(self) -> int:
        return len(self.variables)


class InteractionGraph:
    """Undirected interaction graph of an objective's terms."""

    def __init__(self, terms: Sequence[Term]):
        if not terms:
            raise ValueError("need at least one term")
        self.terms: tuple[Term, ...] = tuple(terms)
        variables: list[Hashable] = []
        seen: set[Hashable] = set()
        for t in self.terms:
            for v in t.variables:
                if v not in seen:
                    seen.add(v)
                    variables.append(v)
        self.variables: tuple[Hashable, ...] = tuple(variables)
        self._adj: dict[Hashable, set[Hashable]] = {v: set() for v in variables}
        for t in self.terms:
            for i, u in enumerate(t.variables):
                for w in t.variables[i + 1 :]:
                    self._adj[u].add(w)
                    self._adj[w].add(u)

    # ------------------------------------------------------------------
    def neighbors(self, v: Hashable) -> frozenset[Hashable]:
        """Variables sharing at least one term with ``v``."""
        return frozenset(self._adj[v])

    def degree(self, v: Hashable) -> int:
        return len(self._adj[v])

    def num_edges(self) -> int:
        return sum(len(n) for n in self._adj.values()) // 2

    def is_chain(self) -> bool:
        """True iff the graph is a single simple path covering all variables."""
        if len(self.variables) == 1:
            return True
        degs = sorted(self.degree(v) for v in self.variables)
        if degs.count(1) != 2 or degs.count(2) != len(degs) - 2:
            return False
        # Degree profile of a path or of a path + disjoint cycle(s) — walk
        # it to rule the latter out.
        start = next(v for v in self.variables if self.degree(v) == 1)
        seen = {start}
        cur, prev = start, None
        while True:
            nxt = [n for n in self._adj[cur] if n != prev]
            if not nxt:
                break
            prev, cur = cur, nxt[0]
            if cur in seen:
                return False
            seen.add(cur)
        return len(seen) == len(self.variables)

    def elimination_width(self, order: Sequence[Hashable] | None = None) -> int:
        """Max clique size created while eliminating variables in ``order``.

        This is the key cost driver of nonserial DP (Bertelè–Brioschi):
        eliminating variable ``v`` requires optimizing over the joint
        domain of ``v``'s current neighbors.  With ``order=None`` a
        min-degree greedy order is used.  Returns the maximum number of
        neighbors any variable has at its elimination time.
        """
        adj = {v: set(n) for v, n in self._adj.items()}
        remaining = set(self.variables)
        if order is None:
            order_list: list[Hashable] = []
            while remaining:
                v = min(remaining, key=lambda u: (len(adj[u] & remaining), str(u)))
                order_list.append(v)
                remaining.discard(v)
            order = order_list
            adj = {v: set(n) for v, n in self._adj.items()}
            remaining = set(self.variables)
        width = 0
        for v in order:
            if v not in remaining:
                raise ValueError(f"variable {v!r} eliminated twice or unknown")
            nbrs = adj[v] & remaining - {v}
            width = max(width, len(nbrs))
            # Moralize: neighbors of v become a clique.
            for u in nbrs:
                adj[u] |= nbrs - {u}
            remaining.discard(v)
        if remaining:
            raise ValueError(f"order missed variables: {remaining}")
        return width

    def min_degree_order(self) -> tuple[Hashable, ...]:
        """Greedy min-degree elimination order (classic nonserial heuristic)."""
        adj = {v: set(n) for v, n in self._adj.items()}
        remaining = set(self.variables)
        order: list[Hashable] = []
        while remaining:
            v = min(remaining, key=lambda u: (len(adj[u] & remaining), str(u)))
            nbrs = adj[v] & remaining - {v}
            for u in nbrs:
                adj[u] |= nbrs - {u}
            order.append(v)
            remaining.discard(v)
        return tuple(order)


def is_serial_objective(terms: Sequence[Term]) -> bool:
    """Paper's seriality test (Section 2.2).

    An objective is serial when its terms can be linearly ordered so that
    each term shares exactly one variable with its predecessor and one
    with its successor — equivalently here: every term is binary, and the
    terms tile a chain over the variables.
    """
    if any(t.arity != 2 for t in terms):
        return False
    g = InteractionGraph(terms)
    if not g.is_chain():
        return False
    # Chain with E = V - 1 edges, and each term must cover a distinct edge.
    edges = {frozenset(t.variables) for t in terms}
    return len(edges) == len(terms) == len(g.variables) - 1


def chain_order(terms: Sequence[Term]) -> tuple[Hashable, ...]:
    """Variable order of a serial objective's chain (endpoint-to-endpoint).

    Raises ``ValueError`` when the objective is not serial.
    """
    if not is_serial_objective(terms):
        raise ValueError("objective is not serial")
    g = InteractionGraph(terms)
    if len(g.variables) == 1:
        return g.variables
    start = next(v for v in g.variables if g.degree(v) == 1)
    order = [start]
    prev: Hashable | None = None
    cur = start
    while len(order) < len(g.variables):
        nxt = [n for n in g.neighbors(cur) if n != prev]
        prev, cur = cur, nxt[0]
        order.append(cur)
    return tuple(order)
